package bcpqp

import (
	"testing"
	"time"
)

func TestNewBCPQPDefaults(t *testing.T) {
	enf, err := NewBCPQP(BCPQPConfig{Rate: 15 * Mbps, Queues: 16})
	if err != nil {
		t.Fatal(err)
	}
	if enf.NumQueues() != 16 {
		t.Errorf("queues = %d", enf.NumQueues())
	}
	now := 10 * time.Millisecond
	pkt := Packet{
		Key:   FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6},
		Size:  MSS,
		Class: NoClass,
	}
	if v := enf.Submit(now, pkt); v != Transmit {
		t.Errorf("first packet: %v", v)
	}
	st := enf.EnforcerStats()
	if st.AcceptedPackets != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNewBCPQPRejectsBadConfig(t *testing.T) {
	if _, err := NewBCPQP(BCPQPConfig{Rate: 0, Queues: 4}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewBCPQP(BCPQPConfig{Rate: Mbps, Queues: 0}); err == nil {
		t.Error("zero queues accepted")
	}
	if _, err := NewBCPQP(BCPQPConfig{Rate: Mbps, Queues: 4, Policy: Fair(2)}); err == nil {
		t.Error("policy/queue mismatch accepted")
	}
}

func TestPolicyBuilders(t *testing.T) {
	p, err := NewPolicy(Priority(
		Weighted(Leaf(0).WithWeight(2), Leaf(1)),
		Leaf(2),
	))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumClasses() != 3 {
		t.Errorf("classes = %d", p.NumClasses())
	}
	enf, err := NewBCPQP(BCPQPConfig{Rate: 10 * Mbps, Queues: 3, Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	_ = enf
}

func TestBaselineConstructors(t *testing.T) {
	if _, err := NewPolicer(10*Mbps, 0, 50*time.Millisecond); err != nil {
		t.Errorf("NewPolicer: %v", err)
	}
	if _, err := NewFairPolicer(FairPolicerConfig{
		Rate: 10 * Mbps, Bucket: 100 * MSS, Flows: 8,
	}); err != nil {
		t.Errorf("NewFairPolicer: %v", err)
	}
	if _, err := NewPQP(10*Mbps, 4, nil, 0, 0); err != nil {
		t.Errorf("NewPQP: %v", err)
	}
}

func TestSizingHelpers(t *testing.T) {
	req := RenoQueueRequirement(10*Mbps, 100*time.Millisecond)
	rec := RecommendedQueueSize(10*Mbps, 100*time.Millisecond)
	if rec < 10*req {
		t.Errorf("recommended %d < 10× requirement %d", rec, req)
	}
}

func TestSimulationFacade(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{
		Scheme: SchemeBCPQP,
		Rate:   10 * Mbps,
		MaxRTT: 50 * time.Millisecond,
		Queues: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	meter := NewMeter(0)
	if _, err := sim.AttachFlow(SimFlowSpec{
		Key:   FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 80, Proto: 6},
		Class: 0,
		CC:    "cubic",
		RTT:   20 * time.Millisecond,
		Start: 10 * time.Millisecond,
		OnDeliver: func(now time.Duration, b int) {
			meter.Add(now, 0, b)
		},
	}); err != nil {
		t.Fatal(err)
	}
	sim.Run(10 * time.Second)
	// Steady state: the last half of the run should deliver ≈ the
	// enforced rate (the first seconds contain slow-start recovery).
	wb := meter.WindowBytes(0)
	var steady int64
	for _, b := range wb[len(wb)/2:] {
		steady += b
	}
	span := time.Duration(len(wb)-len(wb)/2) * meter.Window()
	want := (10 * Mbps).Bytes(span)
	if float64(steady) < 0.8*want || float64(steady) > 1.2*want {
		t.Errorf("steady delivered %d over %v, want ≈%.0f", steady, span, want)
	}
	if j := Jain([]float64{1, 1}); j != 1 {
		t.Errorf("Jain = %v", j)
	}
}

func TestParseSchemeFacade(t *testing.T) {
	s, err := ParseScheme("bc-pqp")
	if err != nil || s != SchemeBCPQP {
		t.Errorf("ParseScheme: %v %v", s, err)
	}
}

func TestCascadeFacade(t *testing.T) {
	sub, err := NewBCPQP(BCPQPConfig{Rate: 5 * Mbps, Queues: 1})
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewPolicer(8*Mbps, 0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	casc, err := NewCascade(sub, link)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Millisecond
	pkt := Packet{Key: FlowKey{SrcIP: 1, Proto: 6}, Size: MSS, Class: 0}
	if casc.Submit(now, pkt) != Transmit {
		t.Error("first packet through a fresh cascade dropped")
	}
	if _, err := NewCascade(); err == nil {
		t.Error("empty cascade accepted")
	}
}

func TestMiddleboxFacade(t *testing.T) {
	eng := NewMiddlebox(MiddleboxConfig{Shards: 2})
	defer eng.Close()
	enf, err := NewBCPQP(BCPQPConfig{Rate: 5 * Mbps, Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	h, err := eng.Add("sub-1", enf, func(p Packet) { delivered += p.Size })
	if err != nil {
		t.Fatal(err)
	}
	if h == NoAggregate {
		t.Fatal("Add returned no handle")
	}
	// Single-packet handle path, burst path, and the string compat shim.
	for i := 0; i < 4; i++ {
		if err := eng.Submit(h, Packet{
			Key: FlowKey{SrcIP: 1, SrcPort: uint16(i), Proto: 6}, Size: MSS, Class: i % 4,
		}); err != nil {
			t.Fatal(err)
		}
	}
	burst := make([]Packet, 4)
	for i := range burst {
		burst[i] = Packet{Key: FlowKey{SrcIP: 1, SrcPort: uint16(4 + i), Proto: 6}, Size: MSS, Class: i % 4}
	}
	if err := eng.SubmitBatch(h, burst); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 10; i++ {
		if err := eng.SubmitID("sub-1", Packet{
			Key: FlowKey{SrcIP: 1, SrcPort: uint16(i), Proto: 6}, Size: MSS, Class: i % 4,
		}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := eng.Stats("sub-1")
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.Totals(); p != 10 {
		t.Errorf("stats saw %d packets", p)
	}
	if delivered == 0 {
		t.Error("nothing emitted")
	}
}
