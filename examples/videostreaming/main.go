// Videostreaming: the paper's §6.4.1 scenario as a library example. A
// cellular operator enforces 3 Mbps per subscriber; the subscriber runs an
// adaptive-bitrate video session (BBR transport, like YouTube) alongside a
// bulk download. The example streams through a status-quo policer and
// through BC-PQP and reports video quality, rebuffering, and how fairly the
// 3 Mbps was shared.
//
// Run with: go run ./examples/videostreaming
package main

import (
	"fmt"
	"time"

	"bcpqp"
)

func main() {
	const (
		rate = 3 * bcpqp.Mbps
		dur  = 45 * time.Second
	)
	fmt.Printf("one ABR video (BBR) + one bulk download sharing %v\n\n", rate)
	fmt.Printf("%-10s %14s %12s %22s\n", "scheme", "avg quality", "rebuffer", "fairness (video/rest)")

	for _, scheme := range []bcpqp.Scheme{bcpqp.SchemePolicer, bcpqp.SchemeBCPQP} {
		sim, err := bcpqp.NewSimulation(bcpqp.SimulationConfig{
			Scheme: scheme,
			Rate:   rate,
			MaxRTT: 50 * time.Millisecond,
			Queues: 2, // class 0 = video, class 1 = everything else
		})
		if err != nil {
			panic(err)
		}
		meter := bcpqp.NewMeter(0)

		client, err := bcpqp.StartVideo(bcpqp.VideoConfig{
			Harness:      sim,
			Key:          bcpqp.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 9, DstPort: 443, Proto: 6},
			Class:        0,
			CC:           "bbr",
			RTT:          40 * time.Millisecond,
			Start:        100 * time.Millisecond,
			PlayDuration: dur - 5*time.Second,
			OnDeliver:    func(now time.Duration, b int) { meter.Add(now, 0, b) },
		})
		if err != nil {
			panic(err)
		}

		// The competing bulk download.
		if _, err := sim.AttachFlow(bcpqp.SimFlowSpec{
			Key:       bcpqp.FlowKey{SrcIP: 1, SrcPort: 2, DstIP: 9, DstPort: 80, Proto: 6},
			Class:     1,
			CC:        "cubic",
			RTT:       30 * time.Millisecond,
			Start:     200 * time.Millisecond,
			OnDeliver: func(now time.Duration, b int) { meter.Add(now, 1, b) },
		}); err != nil {
			panic(err)
		}

		sim.Run(dur)

		// Fairness over windows where the video was fetching.
		video, rest := meter.WindowBytes(0), meter.WindowBytes(1)
		var jainSum float64
		var jainN int
		for w := 0; w < meter.Windows(); w++ {
			var vb, ob float64
			if w < len(video) {
				vb = float64(video[w])
			}
			if w < len(rest) {
				ob = float64(rest[w])
			}
			if vb > 0 {
				jainSum += bcpqp.Jain([]float64{vb, ob})
				jainN++
			}
		}
		fairness := 0.0
		if jainN > 0 {
			fairness = jainSum / float64(jainN)
		}
		fmt.Printf("%-10v %11.2f Mbps %10.1fs %22.3f\n",
			scheme, client.AvgQuality().Mbps(), client.Rebuffering.Seconds(), fairness)
	}

	fmt.Println("\nthrough the policer the loss-insensitive BBR video starves the")
	fmt.Println("download; BC-PQP's per-class phantom queues split the 3 Mbps fairly.")
}
