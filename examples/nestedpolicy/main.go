// Nestedpolicy: hierarchical rate enforcement with HTB-style borrowing.
// An operator's policy tree — tenant link → service plans → subscribers —
// enforces a ceiling at every level and an assured rate per subscriber:
// a subscriber throttled at its assured share while its sibling is busy
// reclaims the sibling's bandwidth the moment it goes idle, is squeezed
// back to its guarantee when the sibling returns, and — when a whole
// neighboring plan goes quiet — borrows across plans up to its own
// plan's ceiling.
//
// Run with: go run ./examples/nestedpolicy
package main

import (
	"fmt"
	"time"

	"bcpqp"
)

const mss = bcpqp.MSS

// offer drives each subscriber at its offered rate over one phase,
// interleaving their packet streams in virtual time, and returns the
// admitted bytes per subscriber.
func offer(tree *bcpqp.PolicyTree, leaves []bcpqp.NodeID, rates []bcpqp.Rate, from, to time.Duration) []float64 {
	adm := make([]float64, len(leaves))
	owed := make([]float64, len(leaves))
	const step = 250 * time.Microsecond
	for now := from; now < to; now += step {
		for i, leaf := range leaves {
			owed[i] += rates[i].Bytes(step)
			for owed[i] >= mss {
				owed[i] -= mss
				p := bcpqp.Packet{
					Key:  bcpqp.FlowKey{SrcIP: uint32(i + 1), DstIP: 9, SrcPort: 1000, DstPort: 443, Proto: 6},
					Size: mss,
				}
				if tree.SubmitAt(now, leaf, p) == bcpqp.Transmit {
					adm[i] += mss
				}
			}
		}
	}
	return adm
}

func main() {
	// The tree: a 50 Mbps tenant link carries two 20 Mbps plans; plan
	// "gold" hosts subscribers alice and bob, plan "silver" hosts carol,
	// each with an 8 Mbps assured rate. Each plan's borrow pool lends at
	// the sum of its subscribers' assured rates (gold: 16 Mbps) — an idle
	// subscriber's share is what its plan siblings may borrow — and the
	// tenant pool lends idle plan slack across plans.
	mkCeil := func(r bcpqp.Rate) bcpqp.CascadeStage {
		c, err := bcpqp.NewPolicer(r, 0, 100*time.Millisecond)
		if err != nil {
			panic(err)
		}
		return c
	}
	tree, err := bcpqp.NewPolicyTree([]bcpqp.PolicyTreeNode{
		{Name: "tenant", Parent: -1, Stage: mkCeil(50 * bcpqp.Mbps)},
		{Name: "gold", Parent: 0, Stage: mkCeil(20 * bcpqp.Mbps)},
		{Name: "silver", Parent: 0, Stage: mkCeil(20 * bcpqp.Mbps)},
		{Name: "alice", Parent: 1, Assured: 8 * bcpqp.Mbps},
		{Name: "bob", Parent: 1, Assured: 8 * bcpqp.Mbps},
		{Name: "carol", Parent: 2, Assured: 8 * bcpqp.Mbps},
	})
	if err != nil {
		panic(err)
	}
	subs := []bcpqp.NodeID{3, 4, 5} // alice, bob, carol

	mbps := func(bytes float64, d time.Duration) float64 { return bytes * 8 / d.Seconds() / 1e6 }
	const phase = 5 * time.Second
	show := func(label string, adm []float64) {
		fmt.Printf("%-46s %7.1f %8.1f %8.1f\n", label,
			mbps(adm[0], phase), mbps(adm[1], phase), mbps(adm[2], phase))
	}
	fmt.Println("gold plan: 20 Mbps ceiling; alice, bob, carol assured 8 Mbps each")
	fmt.Printf("%-46s %8s %8s %8s   (Mbps admitted)\n", "", "alice", "bob", "carol")

	// Phase 1: everyone backlogged. Gold's 16 Mbps lend rate is fully
	// subscribed, so alice and bob are each held near the 8 Mbps
	// guarantee; carol uses exactly her share, so the tenant pool has no
	// cross-plan slack to lend.
	adm := offer(tree, subs, []bcpqp.Rate{14 * bcpqp.Mbps, 14 * bcpqp.Mbps, 8 * bcpqp.Mbps}, 0, phase)
	show("phase 1: alice & bob offer 14, carol 8", adm)

	// Phase 2: bob idles. Alice borrows his released 8 Mbps through the
	// gold pool and climbs to the pool's 16 Mbps lend rate.
	adm = offer(tree, subs, []bcpqp.Rate{18 * bcpqp.Mbps, 0, 8 * bcpqp.Mbps}, phase, 2*phase)
	show("phase 2: bob idle, alice offers 18", adm)

	// Phase 3: bob returns. His guarantee reasserts immediately; alice is
	// squeezed back to her own share.
	adm = offer(tree, subs, []bcpqp.Rate{18 * bcpqp.Mbps, 14 * bcpqp.Mbps, 8 * bcpqp.Mbps}, 2*phase, 3*phase)
	show("phase 3: bob returns at 14", adm)

	// Phase 4: the whole silver plan goes quiet too. Borrowing cascades:
	// the tenant pool collects silver's idle share and lends it across
	// plans, so alice passes gold's 16 Mbps lend rate — her hard cap is
	// now the gold ceiling itself (20 Mbps).
	adm = offer(tree, subs, []bcpqp.Rate{24 * bcpqp.Mbps, 0, 0}, 3*phase, 4*phase)
	show("phase 4: bob & carol idle, alice offers 24", adm)

	fmt.Println("\nborrowing is conserved: every gain is some idle subscriber's assured")
	fmt.Println("rate, and every level's ceiling still caps its subtree.")
	for _, n := range []bcpqp.NodeID{0, 1, 2, 3, 4, 5} {
		st, err := tree.NodeStats(n)
		if err != nil {
			panic(err)
		}
		_, lend := tree.AssuredRate(n)
		fmt.Printf("  %-8s admitted %5.1f Mbps avg, dropped %6d pkts, lend rate %v\n",
			tree.NodeLabel(n), mbps(float64(st.AcceptedBytes), 4*phase), st.DroppedPackets, lend)
	}
}
