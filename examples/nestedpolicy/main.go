// Nestedpolicy: hierarchical rate sharing with BC-PQP (§6.3.3). A 10 Mbps
// subscriber rate carries two priority groups: interactive traffic (two
// classes in a 3:1 weighted-fair split) strictly above a background class
// that may only use idle capacity. The background flow is backlogged the
// whole run; the interactive flows turn on and off.
//
// Run with: go run ./examples/nestedpolicy
package main

import (
	"fmt"
	"time"

	"bcpqp"
)

func main() {
	const rate = 10 * bcpqp.Mbps
	const dur = 24 * time.Second

	// Priority( Weighted(class0 ×3, class1 ×1), class2 ).
	policy := bcpqp.MustNewPolicy(bcpqp.Priority(
		bcpqp.Weighted(
			bcpqp.Leaf(0).WithWeight(3),
			bcpqp.Leaf(1).WithWeight(1),
		),
		bcpqp.Leaf(2),
	))

	sim, err := bcpqp.NewSimulation(bcpqp.SimulationConfig{
		Scheme: bcpqp.SchemeBCPQP,
		Rate:   rate,
		MaxRTT: 20 * time.Millisecond,
		Queues: 3,
		Policy: policy,
		// A moderate queue keeps the example's time series readable;
		// burst control works for any size above the CC requirement.
		PhantomQueueSize: 300_000,
	})
	if err != nil {
		panic(err)
	}
	meter := bcpqp.NewMeter(500 * time.Millisecond)

	// Two interactive on-off flows: 2 MB bursts, then 4 s of silence.
	for class := 0; class < 2; class++ {
		class := class
		var flowAdd func(int64)
		flow, err := sim.AttachFlow(bcpqp.SimFlowSpec{
			Key:   bcpqp.FlowKey{SrcIP: 1, SrcPort: uint16(class + 1), DstIP: 9, DstPort: 443, Proto: 6},
			Class: class,
			CC:    "cubic",
			RTT:   20 * time.Millisecond,
			Size:  2_000_000,
			Start: 2 * time.Second,
			OnDeliver: func(now time.Duration, b int) {
				meter.Add(now, class, b)
			},
			OnComplete: func(now time.Duration) {
				sim.Loop.After(4*time.Second, func() { flowAdd(2_000_000) })
			},
		})
		if err != nil {
			panic(err)
		}
		flowAdd = flow.AddData
	}

	// The background flow: backlogged, lowest priority.
	if _, err := sim.AttachFlow(bcpqp.SimFlowSpec{
		Key:   bcpqp.FlowKey{SrcIP: 1, SrcPort: 99, DstIP: 9, DstPort: 80, Proto: 6},
		Class: 2,
		CC:    "cubic",
		RTT:   20 * time.Millisecond,
		Start: 10 * time.Millisecond,
		OnDeliver: func(now time.Duration, b int) {
			meter.Add(now, 2, b)
		},
	}); err != nil {
		panic(err)
	}

	sim.Run(dur)

	fmt.Printf("nested policy over %v: Priority( Weighted(3:1), background )\n\n", rate)
	fmt.Printf("%6s %14s %14s %14s\n", "t (s)", "interactive×3", "interactive×1", "background")
	w0, w1, w2 := meter.WindowBytes(0), meter.WindowBytes(1), meter.WindowBytes(2)
	at := func(s []int64, w int) float64 {
		if w < len(s) {
			return float64(s[w]) * 8 / meter.Window().Seconds() / 1e6
		}
		return 0
	}
	for w := 0; w < meter.Windows(); w += 2 {
		fmt.Printf("%6.1f %11.2f %14.2f %14.2f\n",
			float64(w)*meter.Window().Seconds(), at(w0, w), at(w1, w), at(w2, w))
	}
	fmt.Println("\nwhile the interactive bursts run they split the rate ≈3:1 and the")
	fmt.Println("background class is squeezed out; between bursts it takes the idle rate.")
}
