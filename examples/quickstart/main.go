// Quickstart: police a synthetic packet stream with BC-PQP and compare it
// against a classic token-bucket policer on identical arrivals.
//
// Four flows share a 10 Mbps enforced rate. Flows 1-3 each offer exactly
// their fair share (2.5 Mbps); flow 0 misbehaves and offers the full
// 10 Mbps by itself. A shared token bucket admits traffic in proportion to
// how aggressively it arrives, so the greedy flow takes far more than its
// share. BC-PQP classifies each flow into its own phantom queue and drains
// the queues round-robin, so the greedy flow is clamped to its share and
// everyone else keeps theirs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"bcpqp"
)

func main() {
	const (
		rate   = 10 * bcpqp.Mbps
		flows  = 4
		maxRTT = 50 * time.Millisecond
	)

	// The paper's contribution: a burst-controlled phantom-queue policer
	// with per-flow fairness across four classes.
	bc, err := bcpqp.NewBCPQP(bcpqp.BCPQPConfig{
		Rate:   rate,
		Queues: flows,
		MaxRTT: maxRTT,
	})
	if err != nil {
		panic(err)
	}

	// The status-quo baseline: one shared token bucket (BDP-sized).
	pol, err := bcpqp.NewPolicer(rate, 0, maxRTT)
	if err != nil {
		panic(err)
	}

	accepted := map[string][]float64{
		"token bucket": make([]float64, flows),
		"bc-pqp":       make([]float64, flows),
	}
	submit := func(f int, now time.Duration) {
		pkt := bcpqp.Packet{
			Key:   bcpqp.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: uint16(f + 1), DstPort: 443, Proto: 6},
			Size:  bcpqp.MSS,
			Class: f,
		}
		if bc.Submit(now, pkt) == bcpqp.Transmit {
			accepted["bc-pqp"][f]++
		}
		if pol.Submit(now, pkt) == bcpqp.Transmit {
			accepted["token bucket"][f]++
		}
	}

	// Drive both enforcers with identical arrivals for 10 virtual
	// seconds: flow 0 sends every slot (10 Mbps offered); flows 1-3
	// each send every 4th slot (2.5 Mbps offered each).
	gap := rate.DurationForBytes(bcpqp.MSS)
	slot := 0
	const duration = 10 * time.Second
	for now := gap; now < duration; now += gap {
		submit(0, now)
		if f := slot % 4; f < 3 {
			submit(1+f, now)
		}
		slot++
	}

	fmt.Printf("enforced rate %v shared by %d flows\n", rate, flows)
	fmt.Printf("flow 0 offers 10 Mbps; flows 1-3 offer their 2.5 Mbps share each\n\n")
	fmt.Printf("%-13s %10s %10s %10s %10s %8s %8s\n",
		"scheme", "f0 Mbps", "f1 Mbps", "f2 Mbps", "f3 Mbps", "Jain", "drops")
	for _, name := range []string{"token bucket", "bc-pqp"} {
		acc := accepted[name]
		mbps := make([]float64, flows)
		for f := range acc {
			mbps[f] = acc[f] * bcpqp.MSS * 8 / duration.Seconds() / 1e6
		}
		var stats bcpqp.Stats
		if name == "bc-pqp" {
			stats = bc.EnforcerStats()
		} else {
			stats = pol.EnforcerStats()
		}
		fmt.Printf("%-13s %10.2f %10.2f %10.2f %10.2f %8.3f %7.1f%%\n",
			name, mbps[0], mbps[1], mbps[2], mbps[3],
			bcpqp.Jain(acc), 100*stats.DropRate())
	}
	fmt.Println("\nBC-PQP clamps the greedy flow to its round-robin share; the shared")
	fmt.Println("token bucket rewards aggression.")
}
