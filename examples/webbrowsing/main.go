// Webbrowsing: the paper's §6.4.2 scenario as a library example. Page loads
// compete with a bulk download inside a 3 Mbps enforced rate. With BC-PQP
// the operator can express a 4:1 weighted policy favoring the interactive
// class; a plain policer cannot express any policy and page-load times
// suffer behind the bulk transfer.
//
// Run with: go run ./examples/webbrowsing
package main

import (
	"fmt"
	"sort"
	"time"

	"bcpqp"
)

func main() {
	const (
		rate  = 3 * bcpqp.Mbps
		pages = 15
	)
	fmt.Printf("%d page loads vs a bulk download inside %v\n\n", pages, rate)
	fmt.Printf("%-10s %12s %12s %12s\n", "scheme", "median PLT", "p90 PLT", "pages done")

	for _, scheme := range []bcpqp.Scheme{bcpqp.SchemePolicer, bcpqp.SchemeBCPQP} {
		cfg := bcpqp.SimulationConfig{
			Scheme: scheme,
			Rate:   rate,
			MaxRTT: 50 * time.Millisecond,
			Queues: 2, // class 0 = bulk, class 1 = web
		}
		if scheme == bcpqp.SchemeBCPQP {
			// Weight the interactive web class 4:1 over the bulk
			// download — the policy a policer cannot express.
			cfg.Policy = bcpqp.WeightedFair(1, 4)
		}
		sim, err := bcpqp.NewSimulation(cfg)
		if err != nil {
			panic(err)
		}

		if _, err := sim.AttachFlow(bcpqp.SimFlowSpec{
			Key:   bcpqp.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 9, DstPort: 80, Proto: 6},
			Class: 0,
			CC:    "cubic",
			RTT:   30 * time.Millisecond,
			Start: 10 * time.Millisecond,
		}); err != nil {
			panic(err)
		}

		sess, err := bcpqp.StartWeb(bcpqp.WebConfig{
			Harness: sim,
			BaseKey: bcpqp.FlowKey{SrcIP: 1, SrcPort: 100, DstIP: 9, DstPort: 443, Proto: 6},
			Class:   1,
			CC:      "cubic",
			RTT:     30 * time.Millisecond,
			Pages:   pages,
			Start:   time.Second,
			Rand:    bcpqp.NewRand(42),
		})
		if err != nil {
			panic(err)
		}

		sim.Run(time.Duration(pages) * 20 * time.Second)

		plts := append([]time.Duration(nil), sess.PLTs...)
		sort.Slice(plts, func(i, j int) bool { return plts[i] < plts[j] })
		median, p90 := time.Duration(0), time.Duration(0)
		if n := len(plts); n > 0 {
			median = plts[n/2]
			p90 = plts[n*9/10]
		}
		fmt.Printf("%-10v %11.2fs %11.2fs %9d/%d\n",
			scheme, median.Seconds(), p90.Seconds(), len(plts), pages)
	}

	fmt.Println("\nBC-PQP's weighted phantom queues keep pages snappy next to the bulk")
	fmt.Println("download; the policy-free policer makes them wait in line.")
}
