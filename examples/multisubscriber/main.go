// Multisubscriber: a deployment-shaped example. A middlebox hosts many
// subscribers, each with its own BC-PQP enforcer, all cascaded under a
// shared link-level limit — subscriber caps AND an aggregate cap, enforced
// bufferlessly with consistent accounting (two-phase admission).
//
// Four 5 Mbps subscribers share a 12 Mbps link. All offer 8 Mbps. Each must
// be held to ≤5, the total to ≤12, and the link's spare split fairly.
//
// Run with: go run ./examples/multisubscriber
package main

import (
	"fmt"
	"time"

	"bcpqp"
)

func main() {
	const (
		subscribers = 4
		subRate     = 5 * bcpqp.Mbps
		linkRate    = 12 * bcpqp.Mbps
		offered     = 8 * bcpqp.Mbps
		duration    = 10 * time.Second
	)

	// The link level sees one class per subscriber so its capacity is
	// shared fairly when oversubscribed.
	link, err := bcpqp.NewBCPQP(bcpqp.BCPQPConfig{Rate: linkRate, Queues: subscribers})
	if err != nil {
		panic(err)
	}

	cascades := make([]*bcpqp.Cascade, subscribers)
	for i := range cascades {
		sub, err := bcpqp.NewBCPQP(bcpqp.BCPQPConfig{Rate: subRate, Queues: 1})
		if err != nil {
			panic(err)
		}
		cascades[i], err = bcpqp.NewCascade(sub, link)
		if err != nil {
			panic(err)
		}
	}

	// Every subscriber offers 8 Mbps of MSS packets.
	gap := offered.DurationForBytes(bcpqp.MSS)
	accepted := make([]int64, subscribers)
	for now := gap; now < duration; now += gap {
		for s := 0; s < subscribers; s++ {
			pkt := bcpqp.Packet{
				Key:   bcpqp.FlowKey{SrcIP: uint32(s + 1), SrcPort: 80, Proto: 6},
				Size:  bcpqp.MSS,
				Class: s, // the link's per-subscriber class
			}
			if cascades[s].Submit(now, pkt) == bcpqp.Transmit {
				accepted[s] += bcpqp.MSS
			}
		}
	}

	fmt.Printf("%d subscribers (cap %v each) under a %v link; each offers %v\n\n",
		subscribers, subRate, linkRate, offered)
	var total float64
	for s, bytes := range accepted {
		mbps := float64(bytes) * 8 / duration.Seconds() / 1e6
		total += mbps
		fmt.Printf("  subscriber %d: %.2f Mbps\n", s, mbps)
	}
	fmt.Printf("  total:        %.2f Mbps (link cap %.0f)\n", total, linkRate.Mbps())
	fmt.Println("\nthe link level splits its 12 Mbps fairly (3 each), below every")
	fmt.Println("subscriber's own 5 Mbps cap; drop a subscriber offline and the")
	fmt.Println("others may rise to their caps.")
}
