package bcpqp_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp"
)

// TestObserveEndToEnd drives an observed middlebox with a BC-PQP
// aggregate past its rate, then checks the full readback chain: phantom
// drop events with reasons in the trace, per-aggregate counters and the
// burst histogram in the Prometheus exposition, and the expvar adapter.
func TestObserveEndToEnd(t *testing.T) {
	var ticks atomic.Int64
	cfg := bcpqp.MiddleboxConfig{
		Shards: 2,
		Clock: func() time.Duration {
			return time.Duration(ticks.Add(1)) * 100 * time.Microsecond
		},
	}
	col := bcpqp.Observe(&cfg, bcpqp.ObserveOptions{SampleEvery: 1})
	mb := bcpqp.NewMiddlebox(cfg)
	defer mb.Close()

	enf, err := bcpqp.NewBCPQP(bcpqp.BCPQPConfig{Rate: bcpqp.Mbps, Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mb.Add("sub-1", enf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bcpqp.ObserveAggregate(mb, "sub-1", col); err != nil {
		t.Fatal(err)
	}

	// ~25 Mbps offered against a 1 Mbps plan: most packets must drop.
	pkts := make([]bcpqp.Packet, 32)
	for i := range pkts {
		pkts[i] = bcpqp.Packet{Key: bcpqp.FlowKey{SrcIP: 7, Proto: 6}, Size: bcpqp.MSS, Class: i & 3}
	}
	for i := 0; i < 64; i++ {
		if err := mb.SubmitBatch(h, pkts); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mb.Stats("sub-1"); err != nil { // control barrier: drain
		t.Fatal(err)
	}

	// Trace: sampled bursts plus phantom drop events with a reason.
	var bursts, drops int
	for _, ev := range mb.TraceDump() {
		switch ev.Kind {
		case bcpqp.TraceBurst:
			bursts++
			if ev.AggID != "sub-1" {
				t.Errorf("burst event AggID = %q", ev.AggID)
			}
		case bcpqp.TraceDrop:
			drops++
			if r := bcpqp.DropReason(ev.C); r != bcpqp.DropQueueFull && r != bcpqp.DropRED && r != bcpqp.DropFilter {
				t.Errorf("drop event with reason %v", r)
			}
		}
	}
	if bursts == 0 {
		t.Error("no sampled burst events at SampleEvery=1")
	}
	if drops == 0 {
		t.Error("no phantom drop events despite 25× oversubscription")
	}

	// Prometheus exposition.
	var buf bytes.Buffer
	if err := bcpqp.WritePrometheus(&buf, mb.Metrics()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`bcpqp_aggregate_accepted_packets_total{aggregate="sub-1"}`,
		`bcpqp_aggregate_dropped_packets_total{aggregate="sub-1"}`,
		`bcpqp_aggregate_rate_bps{aggregate="sub-1"}`,
		"bcpqp_burst_enforce_seconds_bucket",
		"bcpqp_trace_events_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated token (le="+Inf" label
		// text is fine; a non-finite VALUE is not).
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if val == "NaN" || strings.HasSuffix(val, "Inf") {
			t.Errorf("non-finite value leaked: %q", line)
		}
	}

	// expvar adapter must emit valid JSON.
	var decoded map[string]any
	if err := json.Unmarshal([]byte(bcpqp.MetricsVar(mb).String()), &decoded); err != nil {
		t.Fatalf("MetricsVar output invalid: %v", err)
	}
	if _, ok := decoded["bcpqp_aggregate_accepted_packets_total"]; !ok {
		t.Error("expvar output missing aggregate counters")
	}
}

func TestObserveAggregateNotObservable(t *testing.T) {
	cfg := bcpqp.MiddleboxConfig{Shards: 1}
	col := bcpqp.Observe(&cfg, bcpqp.ObserveOptions{})
	mb := bcpqp.NewMiddlebox(cfg)
	defer mb.Close()
	tb, err := bcpqp.NewPolicer(bcpqp.Mbps, 10*int64(bcpqp.MSS), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Add("tb", tb, nil); err != nil {
		t.Fatal(err)
	}
	err = bcpqp.ObserveAggregate(mb, "tb", col)
	if !errors.Is(err, bcpqp.ErrNotObservable) {
		t.Errorf("ObserveAggregate on a token bucket: %v, want ErrNotObservable", err)
	}
	if err := bcpqp.ObserveAggregate(mb, "missing", col); err == nil {
		t.Error("ObserveAggregate on unknown id succeeded")
	}
}
