package bcpqp

import (
	"time"

	"bcpqp/internal/cascade"
	"bcpqp/internal/enforcer"
	"bcpqp/internal/mbox"
)

// Middlebox is a sharded engine hosting many rate enforcers (one per
// traffic aggregate) concurrently — the deployment shape of a production
// rate-limiting middlebox. The datapath is burst-oriented and handle-based:
// aggregates resolve to an AggregateHandle once at Add time, submissions
// are lock-free reads of an atomically swapped registry snapshot, and
// single-packet Submits coalesce into per-shard bursts flushed on a
// size-or-deadline trigger. Aggregates are hashed across single-goroutine
// shards so enforcers stay lock-free on the datapath; a full shard sheds
// bursts rather than blocking.
type Middlebox = mbox.Engine

// MiddleboxConfig configures NewMiddlebox, including the burst coalescing
// parameters FlushBurst (size trigger, default 32) and FlushInterval
// (deadline trigger, default 500µs).
type MiddleboxConfig = mbox.Config

// AggregateHandle identifies a registered aggregate on the middlebox
// datapath. Handles are returned by Add and resolved by Lookup; they carry
// a generation tag, so although table slots are recycled under churn
// (bounded registry memory), a stale handle can never alias a later
// aggregate — it reports ErrStaleHandle instead.
type AggregateHandle = mbox.Handle

// NoAggregate is the invalid handle returned alongside errors.
const NoAggregate = mbox.NoHandle

// ErrNoStats reports that an aggregate's enforcer exposes no statistics
// (it does not implement StatsReader). Test with errors.Is.
var ErrNoStats = mbox.ErrNoStats

// ErrShardSaturated reports that a middlebox control operation timed out
// against a saturated shard. Test with errors.Is.
var ErrShardSaturated = mbox.ErrSaturated

// ErrStaleHandle reports a submission through a handle whose aggregate has
// been removed or evicted (the slot may already host a new aggregate under
// a different generation). Test with errors.Is.
var ErrStaleHandle = mbox.ErrStale

// ErrAggregateTableFull reports an Add beyond MiddleboxConfig.MaxAggregates.
// Test with errors.Is.
var ErrAggregateTableFull = mbox.ErrTableFull

// ErrWrongShard reports a ring-bypass submission against an aggregate owned
// by a different shard than the submitter's. Pin the aggregate with
// Middlebox.AddPinned or mint the submitter from the aggregate's own handle
// via Middlebox.Local. Test with errors.Is.
var ErrWrongShard = mbox.ErrWrongShard

// LocalSubmitter is the ring-bypass fast path: a shard-affinity submitter
// that enforces bursts inline on the calling goroutine — no channel send,
// no cross-core handoff — for per-core run-to-completion datapaths. Mint
// one with Middlebox.Local or Middlebox.LocalShard; see mbox.LocalSubmitter
// for the ownership and ordering contract.
type LocalSubmitter = mbox.LocalSubmitter

// ErrNotReconfigurable reports a Middlebox.SetRate/SetPolicy against an
// enforcer that does not implement Reconfigurer. Test with errors.Is.
var ErrNotReconfigurable = mbox.ErrNotReconfigurable

// ErrNoSnapshot reports a snapshot operation against an enforcer that does
// not implement Snapshotter. Test with errors.Is.
var ErrNoSnapshot = mbox.ErrNoSnapshot

// ErrBadSnapshot reports a corrupt or incompatible middlebox snapshot blob.
// Test with errors.Is.
var ErrBadSnapshot = mbox.ErrBadSnapshot

// MiddleboxSnapshot is a warm-restart image of a middlebox's enforcement
// state, produced by Middlebox.Snapshot and loaded by Middlebox.Restore. It
// implements encoding.BinaryMarshaler/Unmarshaler with a versioned framing.
type MiddleboxSnapshot = mbox.Snapshot

// AggregateSnapshot is one aggregate's serialized enforcer state inside a
// MiddleboxSnapshot.
type AggregateSnapshot = mbox.AggregateSnapshot

// EmitFunc receives packets an aggregate's enforcer transmitted. It runs on
// a shard goroutine: it must not block and must not call back into the
// Middlebox.
type EmitFunc = mbox.Emit

// NewMiddlebox starts a middlebox engine.
func NewMiddlebox(cfg MiddleboxConfig) *Middlebox { return mbox.New(cfg) }

// DegradeMode selects what a middlebox does with traffic belonging to a
// quarantined (crash-looping) aggregate: FailClosed drops it (the safe
// default for a rate enforcer), FailOpen transmits it unenforced. Both
// count every affected packet.
type DegradeMode = mbox.DegradeMode

// Degrade modes for quarantined aggregates.
const (
	FailClosed = mbox.FailClosed
	FailOpen   = mbox.FailOpen
)

// ShardState classifies a middlebox shard's health: Healthy, Degraded
// (recent faults, shedding, or a near-full queue), or Wedged (has work but
// its goroutine has not made progress within the wedge timeout).
type ShardState = mbox.ShardState

// Shard health states reported by Middlebox.Health.
const (
	ShardHealthy  = mbox.ShardHealthy
	ShardDegraded = mbox.ShardDegraded
	ShardWedged   = mbox.ShardWedged
)

// MiddleboxHealth is a point-in-time health snapshot of the whole engine:
// per-shard states plus engine-wide fault counters.
type MiddleboxHealth = mbox.Health

// ShardHealth is one shard's entry in a MiddleboxHealth snapshot.
type ShardHealth = mbox.ShardHealth

// OverloadConfig configures the middlebox's overload-control plane:
// pressure tracking, the priority-aware harmonic shed policy, pressure-
// tightened idle-TTL, and Add-path admission eviction. Set it on
// MiddleboxConfig.Overload; the zero value keeps the plane off.
type OverloadConfig = mbox.OverloadConfig

// OverloadHealth is the overload plane's slice of a MiddleboxHealth
// snapshot: the composite pressure signal, its components, and the plane's
// shed/eviction counters.
type OverloadHealth = mbox.OverloadHealth

// AggregateFaults reports one aggregate's fault record: panics observed,
// quarantine state, and packets dropped or passed unenforced while
// degraded.
type AggregateFaults = mbox.FaultRecord

// MiddleboxCloseReport summarizes a deadline-bounded Middlebox.Close:
// whether shutdown was clean, how many wedged shards were force-abandoned,
// and how many queued packets were shed in the process.
type MiddleboxCloseReport = mbox.CloseReport

// BatchSubmitter is the burst-oriented enforcement capability: all
// enforcers in this module (PQP/BC-PQP, Policer, FairPolicer, Cascade)
// implement it natively, amortizing clock handling, lazy drains, token
// refills, and burst-control window checks across a whole burst.
type BatchSubmitter = enforcer.BatchSubmitter

// SubmitBatch drives any Enforcer over a burst arriving at virtual time
// now, writing one verdict per packet into verdicts (len(pkts) required):
// natively for BatchSubmitters, via a per-packet fallback loop otherwise.
// Verdicts are byte-identical to per-packet Submit calls at the same time.
func SubmitBatch(enf Enforcer, now time.Duration, pkts []Packet, verdicts []Verdict) {
	enforcer.SubmitBatch(enf, now, pkts, verdicts)
}

// Batched adapts any Enforcer to BatchSubmitter, returning native
// implementations unchanged and wrapping the rest in a Submit loop.
func Batched(enf Enforcer) BatchSubmitter { return enforcer.Batched(enf) }

// StatsReader is implemented by every enforcer in this module.
type StatsReader = enforcer.StatsReader

// CascadeStage is an enforcer supporting two-phase (probe/commit)
// admission; PQP/BC-PQP and token-bucket policers implement it.
type CascadeStage = cascade.Stage

// Cascade enforces hierarchical rate limits: a packet passes only if every
// level admits it, and no level's accounting is charged for packets another
// level drops.
type Cascade = cascade.Cascade

// NewCascade builds a multi-level rate limit, outermost (e.g. subscriber)
// stage first.
func NewCascade(stages ...CascadeStage) (*Cascade, error) {
	return cascade.New(stages...)
}
