package bcpqp

import (
	"bcpqp/internal/cascade"
	"bcpqp/internal/enforcer"
	"bcpqp/internal/mbox"
)

// Middlebox is a sharded engine hosting many rate enforcers (one per
// traffic aggregate) concurrently — the deployment shape of a production
// rate-limiting middlebox. Aggregates are hashed across single-goroutine
// shards so enforcers stay lock-free on the datapath; a full shard sheds
// packets rather than blocking.
type Middlebox = mbox.Engine

// MiddleboxConfig configures NewMiddlebox.
type MiddleboxConfig = mbox.Config

// EmitFunc receives packets an aggregate's enforcer transmitted. It runs on
// a shard goroutine: it must not block and must not call back into the
// Middlebox.
type EmitFunc = mbox.Emit

// NewMiddlebox starts a middlebox engine.
func NewMiddlebox(cfg MiddleboxConfig) *Middlebox { return mbox.New(cfg) }

// StatsReader is implemented by every enforcer in this module.
type StatsReader = enforcer.StatsReader

// CascadeStage is an enforcer supporting two-phase (probe/commit)
// admission; PQP/BC-PQP and token-bucket policers implement it.
type CascadeStage = cascade.Stage

// Cascade enforces hierarchical rate limits: a packet passes only if every
// level admits it, and no level's accounting is charged for packets another
// level drops.
type Cascade = cascade.Cascade

// NewCascade builds a multi-level rate limit, outermost (e.g. subscriber)
// stage first.
func NewCascade(stages ...CascadeStage) (*Cascade, error) {
	return cascade.New(stages...)
}
