GO ?= go

.PHONY: all build test vet race fuzz-smoke bench verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Ten-second smoke run of every fuzz target (seed corpus + a short burst of
# generated inputs); full fuzzing sessions run the targets individually.
fuzz-smoke:
	@for pkg in $$($(GO) list ./...); do \
		for f in $$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$f"; \
			$(GO) test -run '^$$' -fuzz "^$$f$$" -fuzztime 10s $$pkg || exit 1; \
		done; \
	done

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# The gate CI runs: build + vet + race-enabled tests + fuzz smoke.
verify: build vet race fuzz-smoke
