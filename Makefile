GO ?= go

.PHONY: all build test vet staticcheck govulncheck race chaos fuzz-smoke bench bench-compare verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis beyond go vet. Skips with a notice when the staticcheck
# binary is not on PATH (nothing is downloaded here); CI installs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Known-vulnerability scan of the module and its (stdlib) call graph. Like
# staticcheck, it is gated on the binary being present so offline/airgapped
# builds are not blocked; CI installs it.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Chaos gate: the seeded fault-injection suite (panic isolation,
# quarantine, watchdog, deadline-bounded Close, and the cluster
# budget-exchange invariant under injected network faults) plus the
# adversarial-overload suite (UDP floods, flash crowds, mixed-RTT swarms,
# short-flow storms against the load-shed plane) and the conformance-audit
# suite (exact reconciliation against injected over-admission) repeated
# under the race detector. Seeded draws make every repetition identical,
# so -count=3 checks the engine, not the dice.
chaos:
	$(GO) test -race -count=3 -run 'Chaos|Fault|Control|Overload|Storm|Flood|Flash|Audit' ./internal/mbox/ ./internal/faultinject/ ./internal/cluster/ ./internal/workload/

# Ten-second smoke run of every fuzz target (seed corpus + a short burst of
# generated inputs); full fuzzing sessions run the targets individually.
fuzz-smoke:
	@for pkg in $$($(GO) list ./...); do \
		for f in $$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$f"; \
			$(GO) test -run '^$$' -fuzz "^$$f$$" -fuzztime 10s $$pkg || exit 1; \
		done; \
	done

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Base-vs-head datapath benchmark comparison in a throwaway worktree;
# fails on a >10% mean pkts/sec regression. benchstat adds a statistical
# summary when installed — nothing is downloaded here.
bench-compare:
	scripts/bench-compare.sh

# The gate CI runs: build + vet + staticcheck + govulncheck +
# race-enabled tests + chaos suite + fuzz smoke.
verify: build vet staticcheck govulncheck race chaos fuzz-smoke
