package bcpqp

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/experiments"
	"bcpqp/internal/faultinject"
	"bcpqp/internal/harness"
	"bcpqp/internal/packet"
	"bcpqp/internal/sched"
	"bcpqp/internal/timerwheel"
	"bcpqp/internal/units"
)

// BenchmarkEnforcers measures the per-packet datapath cost of every
// rate-enforcement scheme — the paper's Fig 5 (and the cost half of
// Fig 1a). The rig replays a synthetic 16-flow stream at ≈1.3× the
// enforced rate on a virtual clock; the shaper variant runs its dequeue
// scheduling through a hashed timing wheel and copies payloads on dequeue.
//
// Expected shape (paper): policer ≈ cheapest; BC-PQP within a small factor
// of the policer; FairPolicer several times more; shaper the most
// expensive by 5-10×.
func BenchmarkEnforcers(b *testing.B) {
	for _, scheme := range harness.AllSchemes() {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			rig := experiments.NewEfficiencyRig(scheme)
			// Warm up into steady state.
			for i := 0; i < 100_000; i++ {
				rig.Submit(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rig.Submit(i)
			}
		})
	}
}

// BenchmarkEnforcersBatch is the burst-oriented counterpart of
// BenchmarkEnforcers: the same workload submitted through each scheme's
// SubmitBatch path in bursts of DefaultBurst. One benchmark iteration is
// one packet, so ns/op compares directly with BenchmarkEnforcers; the
// deltas show how much per-packet cost each scheme amortizes across a
// burst (token refills, lazy drains, burst-control window checks).
func BenchmarkEnforcersBatch(b *testing.B) {
	for _, scheme := range harness.AllSchemes() {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			rig := experiments.NewEfficiencyRig(scheme)
			// Warm up into steady state.
			for i := 0; i < 100_000; i += DefaultBurst {
				rig.SubmitBurst(i, DefaultBurst)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += DefaultBurst {
				n := b.N - i
				if n > DefaultBurst {
					n = DefaultBurst
				}
				rig.SubmitBurst(i, n)
			}
		})
	}
}

// BenchmarkPhantomPolicies is the ablation for DESIGN.md's policy-engine
// choice: per-packet cost of BC-PQP under increasingly rich rate-sharing
// policies (flat fair fast path vs generic hierarchical GPS).
func BenchmarkPhantomPolicies(b *testing.B) {
	const queues = 16
	policies := map[string]*Policy{
		"fair":     Fair(queues),
		"weighted": WeightedFair(1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8),
		"priority": StrictPriority(queues),
		"nested": MustNewPolicy(Priority(
			Weighted(Leaf(0).WithWeight(2), Leaf(1), Leaf(2), Leaf(3)),
			Weighted(Leaf(4), Leaf(5), Leaf(6), Leaf(7)),
			Weighted(Leaf(8), Leaf(9), Leaf(10), Leaf(11),
				Leaf(12), Leaf(13), Leaf(14), Leaf(15)),
		)),
	}
	for _, name := range []string{"fair", "weighted", "priority", "nested"} {
		policy := policies[name]
		b.Run(name, func(b *testing.B) {
			enf, err := NewBCPQP(BCPQPConfig{
				Rate:   50 * Mbps,
				Queues: queues,
				Policy: policy,
				MaxRTT: 50 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			gap := (50 * Mbps).DurationForBytes(MSS) * 3 / 4 // 1.33× offered
			now := time.Duration(0)
			pkt := Packet{Key: FlowKey{SrcIP: 1, DstIP: 2, Proto: 6}, Size: MSS}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += gap
				pkt.Class = i & (queues - 1)
				enf.Submit(now, pkt)
			}
		})
	}
}

// BenchmarkPolicyDrain measures the shared GPS drain engine in isolation.
func BenchmarkPolicyDrain(b *testing.B) {
	policy := sched.MustNew(sched.Priority(
		sched.Weighted(sched.Leaf(0).WithWeight(3), sched.Leaf(1)),
		sched.Weighted(sched.Leaf(2), sched.Leaf(3), sched.Leaf(4), sched.Leaf(5)),
	))
	lens := make([]int64, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range lens {
			lens[j] = int64(10000 + j*1000)
		}
		policy.Drain(20000,
			func(c int) int64 { return lens[c] },
			func(c int, n int64) { lens[c] -= n })
	}
}

// BenchmarkTimerWheel measures the shaper's dequeue-scheduling substrate.
func BenchmarkTimerWheel(b *testing.B) {
	w := timerwheel.MustNew(100*time.Microsecond, 1024)
	now := time.Duration(0)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 50 * time.Microsecond
		w.Schedule(now+5*time.Millisecond, fn)
		w.Advance(now)
	}
}

// BenchmarkSimulation measures end-to-end simulator throughput: virtual
// packet deliveries per second for one 4-flow aggregate through BC-PQP.
// This bounds how fast the Fig 4 sweep can run.
func BenchmarkSimulation(b *testing.B) {
	b.ReportAllocs()
	var delivered int64
	for i := 0; i < b.N; i++ {
		h, err := harness.New(harness.Config{
			Scheme: harness.SchemeBCPQP,
			Rate:   25 * units.Mbps,
			MaxRTT: 40 * time.Millisecond,
			Queues: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		for f := 0; f < 4; f++ {
			if _, err := h.AttachFlow(harness.FlowSpec{
				Key:   packet.FlowKey{SrcIP: 1, SrcPort: uint16(f + 1), DstIP: 2, DstPort: 443, Proto: 6},
				Class: f,
				CC:    []string{"reno", "cubic", "bbr", "vegas"}[f],
				RTT:   20 * time.Millisecond,
				Start: 10 * time.Millisecond,
				OnDeliver: func(now time.Duration, bytes int) {
					delivered += int64(bytes)
				},
			}); err != nil {
				b.Fatal(err)
			}
		}
		h.Run(2 * time.Second)
	}
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// benchEngine builds a middlebox with aggs BC-PQP aggregates on a virtual
// clock, returning the engine and the aggregate handles.
func benchEngine(b *testing.B, aggs int) (*Middlebox, []AggregateHandle) {
	b.Helper()
	var ticks atomic.Int64
	eng := NewMiddlebox(MiddleboxConfig{
		QueueDepth: 1 << 14,
		Clock: func() time.Duration {
			return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
		},
	})
	handles := make([]AggregateHandle, aggs)
	for i := range handles {
		enf, err := NewBCPQP(BCPQPConfig{Rate: 20 * Mbps, Queues: 16})
		if err != nil {
			b.Fatal(err)
		}
		h, err := eng.Add(fmt.Sprintf("agg-%d", i), enf, nil)
		if err != nil {
			b.Fatal(err)
		}
		handles[i] = h
	}
	return eng, handles
}

// BenchmarkMiddleboxSubmit measures the per-packet ingress path of the
// sharded engine with BC-PQP enforcers — the "thousands of subscribers on
// one box" number, one packet per call. This is the baseline the burst
// path in BenchmarkMiddleboxSubmitBatch is compared against on the same
// workload.
func BenchmarkMiddleboxSubmit(b *testing.B) {
	for _, aggs := range []int{16, 256} {
		aggs := aggs
		b.Run(fmt.Sprintf("aggregates=%d", aggs), func(b *testing.B) {
			eng, handles := benchEngine(b, aggs)
			defer eng.Close()
			pkt := Packet{Key: FlowKey{SrcIP: 1, Proto: 6}, Size: MSS}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					pkt.Class = i & 15
					eng.Submit(handles[i%aggs], pkt)
					i++
				}
			})
			b.StopTimer()
			pps := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(pps, "pkts/sec")
		})
	}
}

// BenchmarkMiddleboxSubmitID measures the deprecated string-keyed
// compatibility shim: the per-packet map lookup the handle API removes.
func BenchmarkMiddleboxSubmitID(b *testing.B) {
	const aggs = 256
	eng, _ := benchEngine(b, aggs)
	defer eng.Close()
	ids := make([]string, aggs)
	for i := range ids {
		ids[i] = fmt.Sprintf("agg-%d", i)
	}
	pkt := Packet{Key: FlowKey{SrcIP: 1, Proto: 6}, Size: MSS}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			pkt.Class = i & 15
			eng.SubmitID(ids[i%aggs], pkt)
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
}

// BenchmarkMiddleboxSubmitBatch measures the burst ingress path: one
// SubmitBatch of DefaultBurst packets per engine call, the rx_burst shape
// of a DPDK middlebox. One benchmark iteration is one PACKET (bursts are
// submitted every DefaultBurst iterations), so ns/op and pkts/sec compare
// directly against BenchmarkMiddleboxSubmit.
func BenchmarkMiddleboxSubmitBatch(b *testing.B) {
	for _, aggs := range []int{16, 256} {
		aggs := aggs
		b.Run(fmt.Sprintf("aggregates=%d", aggs), func(b *testing.B) {
			eng, handles := benchEngine(b, aggs)
			defer eng.Close()
			runBatchBench(b, eng, handles)
		})
	}
}

// runBatchBench is the shared body of the burst-ingress benchmarks: one
// iteration is one packet, bursts are flushed every DefaultBurst packets.
func runBatchBench(b *testing.B, eng *Middlebox, handles []AggregateHandle) {
	aggs := len(handles)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var burst [DefaultBurst]Packet
		for i := range burst {
			burst[i] = Packet{Key: FlowKey{SrcIP: 1, Proto: 6}, Size: MSS, Class: i & 15}
		}
		i, fill := 0, 0
		for pb.Next() {
			// One iteration = one packet; flush the burst
			// every DefaultBurst packets.
			if fill++; fill == len(burst) {
				fill = 0
				eng.SubmitBatch(handles[i%aggs], burst[:])
				i++
			}
		}
		if fill > 0 {
			eng.SubmitBatch(handles[i%aggs], burst[:fill])
		}
	})
	b.StopTimer()
	pps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(pps, "pkts/sec")
}

// BenchmarkMiddleboxSubmitBatchObserved is BenchmarkMiddleboxSubmitBatch
// with the observability layer attached (default options: 1-in-16 burst
// trace sampling, per-aggregate counters and rate meters, per-burst
// latency histograms). The acceptance budget for the obs layer is 0
// allocs/op and ≤10% pkts/sec regression against the unobserved benchmark.
func BenchmarkMiddleboxSubmitBatchObserved(b *testing.B) {
	for _, aggs := range []int{16, 256} {
		aggs := aggs
		b.Run(fmt.Sprintf("aggregates=%d", aggs), func(b *testing.B) {
			var ticks atomic.Int64
			cfg := MiddleboxConfig{
				QueueDepth: 1 << 14,
				Clock: func() time.Duration {
					return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
				},
			}
			Observe(&cfg, ObserveOptions{})
			eng := NewMiddlebox(cfg)
			defer eng.Close()
			handles := make([]AggregateHandle, aggs)
			for i := range handles {
				enf, err := NewBCPQP(BCPQPConfig{Rate: 20 * Mbps, Queues: 16})
				if err != nil {
					b.Fatal(err)
				}
				h, err := eng.Add(fmt.Sprintf("agg-%d", i), enf, nil)
				if err != nil {
					b.Fatal(err)
				}
				handles[i] = h
			}
			runBatchBench(b, eng, handles)
		})
	}
}

// BenchmarkMiddleboxSubmitBatchAudited is the Observed benchmark with a
// conformance auditor additionally armed on every aggregate: each enforced
// burst is checked against the declared r·Δt + B envelope inline on the
// shard goroutine. The acceptance budget for the audit path is 0 allocs/op
// and ≤10% pkts/sec regression against the Observed benchmark.
func BenchmarkMiddleboxSubmitBatchAudited(b *testing.B) {
	for _, aggs := range []int{16, 256} {
		aggs := aggs
		b.Run(fmt.Sprintf("aggregates=%d", aggs), func(b *testing.B) {
			var ticks atomic.Int64
			cfg := MiddleboxConfig{
				QueueDepth: 1 << 14,
				Clock: func() time.Duration {
					return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
				},
			}
			Observe(&cfg, ObserveOptions{})
			eng := NewMiddlebox(cfg)
			defer eng.Close()
			handles := make([]AggregateHandle, aggs)
			for i := range handles {
				enf, err := NewBCPQP(BCPQPConfig{Rate: 20 * Mbps, Queues: 16})
				if err != nil {
					b.Fatal(err)
				}
				id := fmt.Sprintf("agg-%d", i)
				h, err := eng.Add(id, enf, nil)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.ArmAudit(id, 20*Mbps, 1<<30); err != nil {
					b.Fatal(err)
				}
				handles[i] = h
			}
			runBatchBench(b, eng, handles)
		})
	}
}

// BenchmarkMiddleboxDegradedBatch measures the quarantine fast path: the
// cost per packet of a burst belonging to an aggregate whose enforcer has
// been quarantined by the circuit breaker (FailClosed: count-and-drop
// without touching the enforcer). This bounds the blast radius of a
// crash-looping enforcer — degraded traffic must be cheaper than enforced
// traffic, not dearer. One iteration is one packet, comparable to
// BenchmarkMiddleboxSubmitBatch.
func BenchmarkMiddleboxDegradedBatch(b *testing.B) {
	var ticks atomic.Int64
	eng := NewMiddlebox(MiddleboxConfig{
		QueueDepth: 1 << 14,
		Clock: func() time.Duration {
			return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
		},
	})
	defer eng.Close()
	enf, err := NewBCPQP(BCPQPConfig{Rate: 20 * Mbps, Queues: 16})
	if err != nil {
		b.Fatal(err)
	}
	inj := faultinject.New(enf, faultinject.Plan{Seed: 1, Panic: 1, MaxPanics: 1})
	h, err := eng.Add("victim", inj, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Trip the breaker (default PanicThreshold 1), then barrier on the
	// control lane so quarantine is observed before timing starts.
	trip := [1]Packet{{Key: FlowKey{SrcIP: 1, Proto: 6}, Size: MSS}}
	if err := eng.SubmitBatch(h, trip[:]); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Stats("victim"); err != nil {
		b.Fatal(err)
	}
	if q, err := eng.Quarantined("victim"); err != nil || !q {
		b.Fatalf("aggregate not quarantined before timing (q=%v err=%v)", q, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var burst [DefaultBurst]Packet
		for i := range burst {
			burst[i] = Packet{Key: FlowKey{SrcIP: 1, Proto: 6}, Size: MSS, Class: i & 15}
		}
		fill := 0
		for pb.Next() {
			if fill++; fill == len(burst) {
				fill = 0
				eng.SubmitBatch(h, burst[:])
			}
		}
		if fill > 0 {
			eng.SubmitBatch(h, burst[:fill])
		}
	})
	b.StopTimer()
	pps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(pps, "pkts/sec")
}

// BenchmarkMiddleboxSubmitBatchOverloaded measures the priority-shed fast
// path: the per-packet cost of SubmitBatch against a shed-eligible
// aggregate while the overload plane is active and its shard's ring is
// over the aggregate's class threshold. This is the cost the engine pays
// per packet of victim traffic DURING an overload — it must be far below
// the enforced cost (the whole point of load shedding) and allocation-free
// (an overloaded engine must not also be fighting its own garbage).
//
// Rig: a single shard is wedged by a plug aggregate whose emit blocks on a
// gate, so the ring sits full and pressure pins at 1.0; the plane activates
// and publishes the harmonic thresholds; the benchmark then drives bursts
// at a lowest-priority (highest class) victim, every packet of which takes
// the two-atomic-load shed gate. One iteration is one packet, comparable to
// BenchmarkMiddleboxSubmitBatch.
func BenchmarkMiddleboxSubmitBatchOverloaded(b *testing.B) {
	var ticks atomic.Int64
	eng := NewMiddlebox(MiddleboxConfig{
		Shards:     1,
		QueueDepth: 64,
		FlushBurst: 1,
		Clock: func() time.Duration {
			return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
		},
		WatchdogInterval: time.Millisecond,
		CloseTimeout:     5 * time.Second,
		Overload:         OverloadConfig{Enabled: true},
	})
	defer eng.Close()
	gate := make(chan struct{})
	defer close(gate)
	plugEnf, err := NewBCPQP(BCPQPConfig{Rate: 1000 * Mbps, Queues: 16})
	if err != nil {
		b.Fatal(err)
	}
	plug, err := eng.Add("plug", plugEnf, func(pkt Packet) { <-gate })
	if err != nil {
		b.Fatal(err)
	}
	victimEnf, err := NewBCPQP(BCPQPConfig{Rate: 20 * Mbps, Queues: 16})
	if err != nil {
		b.Fatal(err)
	}
	victim, err := eng.Add("victim", victimEnf, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.SetShedClass("victim", 3); err != nil {
		b.Fatal(err)
	}
	// Wedge the shard: the first burst blocks in emit, the rest pack the
	// ring to full occupancy.
	trip := [1]Packet{{Key: FlowKey{SrcIP: 1, Proto: 6}, Size: MSS}}
	for i := 0; i < 80; i++ {
		eng.SubmitBatch(plug, trip[:])
	}
	deadline := time.Now().Add(5 * time.Second)
	for !eng.Health().Overload.Active {
		if time.Now().After(deadline) {
			b.Fatal("overload plane never activated")
		}
		time.Sleep(time.Millisecond)
	}
	runBatchBench(b, eng, []AggregateHandle{victim})
	if eng.Health().Overload.PriorityShed == 0 {
		b.Fatal("benchmark did not exercise the priority-shed path")
	}
}

// BenchmarkMiddleboxChurn measures the aggregate lifecycle: one iteration
// is one full Add (with a fresh BC-PQP enforcer), one burst of traffic, and
// one Remove with its final-stats drain barrier. The registry is
// copy-on-write, so this is the control-plane cost subscribers pay to come
// and go while the datapath keeps running — and thanks to slot recycling it
// runs in bounded memory at any iteration count.
func BenchmarkMiddleboxChurn(b *testing.B) {
	eng, handles := benchEngine(b, 16) // background population
	defer eng.Close()
	var burst [DefaultBurst]Packet
	for i := range burst {
		burst[i] = Packet{Key: FlowKey{SrcIP: 1, Proto: 6}, Size: MSS, Class: i & 15}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enf, err := NewBCPQP(BCPQPConfig{Rate: 20 * Mbps, Queues: 16})
		if err != nil {
			b.Fatal(err)
		}
		h, err := eng.Add("churn", enf, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.SubmitBatch(h, burst[:]); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Remove("churn"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = handles
}

// BenchmarkMiddleboxSetRate measures one in-band hot reconfiguration: the
// cost of a subscriber's rate-plan change applied on the shard ring while
// the engine is live (barrier round-trip plus the enforcer's in-place
// settle-and-retarget).
func BenchmarkMiddleboxSetRate(b *testing.B) {
	eng, _ := benchEngine(b, 16)
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.SetRate("agg-0", Rate(10+i%10)*Mbps); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-figure regeneration benches: each iteration regenerates the figure at
// quick scale, so `go test -bench Fig` reproduces every result under the
// standard Go benchmark harness.
func BenchmarkFig1a(b *testing.B) { benchFig(b, experiments.Fig1a) }
func BenchmarkFig1b(b *testing.B) { benchFig(b, experiments.Fig1b) }
func BenchmarkFig2(b *testing.B)  { benchFig(b, experiments.Fig2) }
func BenchmarkFig3(b *testing.B)  { benchFig(b, experiments.Fig3) }
func BenchmarkFig4(b *testing.B)  { benchFig(b, experiments.Fig4) }
func BenchmarkFig5(b *testing.B)  { benchFig(b, experiments.Fig5) }
func BenchmarkFig6a(b *testing.B) { benchFig(b, experiments.Fig6a) }
func BenchmarkFig6bc(b *testing.B) {
	benchFig(b, experiments.Fig6bc)
}
func BenchmarkFig6d(b *testing.B) { benchFig(b, experiments.Fig6d) }
func BenchmarkFig7a(b *testing.B) { benchFig(b, experiments.Fig7a) }
func BenchmarkFig7b(b *testing.B) { benchFig(b, experiments.Fig7b) }
func BenchmarkFig8(b *testing.B)  { benchFig(b, experiments.Fig8) }
func BenchmarkFig9(b *testing.B)  { benchFig(b, experiments.Fig9) }

func benchFig(b *testing.B, fn experiments.Runner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := fn(experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension-experiment benches (ext-mem is excluded: it measures heap
// directly and would fight the benchmark harness's own accounting).
func BenchmarkExtAQM(b *testing.B) { benchFig(b, experiments.ExtAQM) }
func BenchmarkExtECN(b *testing.B) { benchFig(b, experiments.ExtECN) }

// BenchmarkPolicyTreeSubmitBatch measures the hierarchical datapath at
// depth 3 (root ceiling → pool ceiling → assured leaf) as the tree grows
// from a thousand to a million leaves. Bursts of 32 MSS packets enter at a
// pseudo-randomly rotating leaf, so every admission walks the full
// three-level path (two ceiling probes/commits plus the borrow layer) with
// a cold-ish leaf. One benchmark iteration is one packet; steady state
// must report 0 allocs/op at every size — the flat struct-of-arrays layout
// is what keeps the million-leaf walk pointer-free.
func BenchmarkPolicyTreeSubmitBatch(b *testing.B) {
	shapes := []struct {
		name             string
		pools, leavesPer int
	}{
		{"1k-leaves", 10, 100},
		{"100k-leaves", 100, 1000},
		{"1M-leaves", 1000, 1000},
	}
	for _, sh := range shapes {
		sh := sh
		b.Run(sh.name, func(b *testing.B) {
			mkCeil := func(r Rate) CascadeStage {
				c, err := NewPolicer(r, 0, 100*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				return c
			}
			nLeaves := sh.pools * sh.leavesPer
			spec := make([]PolicyTreeNode, 0, 1+sh.pools+nLeaves)
			spec = append(spec, PolicyTreeNode{Name: "root", Parent: -1, Stage: mkCeil(400 * Gbps)})
			for p := 0; p < sh.pools; p++ {
				spec = append(spec, PolicyTreeNode{Parent: 0, Stage: mkCeil(Gbps)})
			}
			for l := 0; l < nLeaves; l++ {
				spec = append(spec, PolicyTreeNode{Parent: 1 + l/sh.leavesPer, Assured: 10 * Mbps})
			}
			tree := MustNewPolicyTree(spec)
			const burst = 32
			pkts := make([]Packet, burst)
			verdicts := make([]Verdict, burst)
			for i := range pkts {
				pkts[i] = Packet{Key: FlowKey{SrcIP: uint32(i + 1), DstIP: 9, Proto: 6}, Size: MSS}
			}
			leafBase := 1 + sh.pools
			now := time.Duration(0)
			var x uint64 = 0x9e3779b97f4a7c15
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += burst {
				n := b.N - i
				if n > burst {
					n = burst
				}
				// Cheap inline LCG: leaf selection must not allocate or
				// dominate the measured datapath.
				x = x*6364136223846793005 + 1442695040888963407
				leaf := NodeID(leafBase + int(x%uint64(nLeaves)))
				now += 10 * time.Microsecond
				tree.SubmitBatchAt(now, leaf, pkts[:n], verdicts[:n])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
		})
	}
}
