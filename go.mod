module bcpqp

go 1.22
