// Distributed enforcement facade: the public surface of internal/cluster.
// N middleboxes form a peer group; a deterministic consistent-hash ring
// places aggregates on nodes, and aggregates marked shared are enforced
// everywhere at once under a global bound split into per-node shares by a
// partition-tolerant budget exchange on the paper's 250 ms window (see
// DESIGN.md "Distributed enforcement" for the protocol and its safety
// argument).
//
// Wiring, in the order a caller assembles it:
//
//	tr, _ := bcpqp.NewClusterTransport(":7400", map[string]string{"b": "10.0.0.2:7400"})
//	node, _ := bcpqp.NewClusterNode(bcpqp.ClusterConfig{
//	        Self: "a", Peers: []string{"b"}, Transport: tr,
//	}, []bcpqp.SharedAggregate{{
//	        ID:       "tenant-1",
//	        Rate:     100 * bcpqp.Mbps,
//	        Observed: func() (int64, bool) { s, err := mb.Stats("tenant-1"); return s.AcceptedBytes, err == nil },
//	        Apply:    func(r bcpqp.Rate, fb bool) error { return mb.ApplyShare("tenant-1", r, fb) },
//	        Snapshot: func() ([]byte, error) { return mb.SnapshotAggregate("tenant-1") },
//	}})
//	tr.Start(node.Deliver)
//	mb.AttachMetricSource(node.MetricFamilies)
//	node.Run()
package bcpqp

import "bcpqp/internal/cluster"

// ClusterNode runs the budget exchange for one middlebox: peer liveness,
// share rebalancing through the in-band Middlebox.ApplyShare lane, and
// BQSN handoffs for ring changes.
type ClusterNode = cluster.Node

// ClusterConfig configures a ClusterNode (self/peer IDs, the exchange
// window, liveness thresholds, transport, retry policy).
type ClusterConfig = cluster.Config

// SharedAggregate wires one cluster-enforced aggregate to the engine via
// callbacks: Observed (accepted-byte counter), Apply (share enforcement)
// and optionally Snapshot (migration handoffs).
type SharedAggregate = cluster.SharedAggregate

// ClusterStatus is a point-in-time operator view from ClusterNode.Status
// (served as JSON on the proxy's /cluster endpoint).
type ClusterStatus = cluster.Status

// ClusterPeerStatus is one peer's liveness and exchange hygiene.
type ClusterPeerStatus = cluster.PeerStatus

// ClusterAggStatus is one shared aggregate's exchange state.
type ClusterAggStatus = cluster.AggStatus

// PeerState is one rung of the peer liveness ladder.
type PeerState = cluster.PeerState

// Peer liveness states: a valid report within SuspectAfter keeps a peer
// alive; silence degrades it to suspect then dead, and any valid report
// resurrects it.
const (
	PeerAlive   = cluster.PeerAlive
	PeerSuspect = cluster.PeerSuspect
	PeerDead    = cluster.PeerDead
)

// ClusterRing is the deterministic consistent-hash ring used for
// aggregate placement.
type ClusterRing = cluster.Ring

// ClusterTransport delivers budget-exchange frames between nodes.
type ClusterTransport = cluster.Transport

// NewClusterNode builds a node over a fixed peer set and shared aggregate
// list. The transport's receive path must be wired to Node.Deliver before
// Run.
func NewClusterNode(cfg ClusterConfig, shared []SharedAggregate) (*ClusterNode, error) {
	return cluster.New(cfg, shared)
}

// NewClusterRing builds a placement ring over a set of node IDs; identical
// ID sets yield identical rings on every node.
func NewClusterRing(ids []string) *ClusterRing { return cluster.NewRing(ids) }

// NewClusterTransport binds a UDP listener and resolves the peer address
// map (peer ID → host:port). Call Start(node.Deliver) to receive and Close
// to release the socket.
func NewClusterTransport(listen string, peers map[string]string) (*cluster.UDPTransport, error) {
	return cluster.NewUDPTransport(listen, peers)
}
