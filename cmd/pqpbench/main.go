// Command pqpbench measures the per-packet datapath cost of each
// rate-enforcement scheme outside the Go benchmark harness — the
// standalone companion to Fig 5 and `go test -bench BenchmarkEnforcers`.
//
// Usage:
//
//	pqpbench                     # all schemes, 2M packets each
//	pqpbench -scheme bc-pqp -packets 10000000
package main

import (
	"flag"
	"fmt"
	"os"

	"bcpqp/internal/experiments"
	"bcpqp/internal/harness"
)

func main() {
	var (
		schemeName = flag.String("scheme", "", "single scheme to measure (default: all)")
		packets    = flag.Int("packets", 2_000_000, "packets per measurement")
	)
	flag.Parse()

	schemes := harness.AllSchemes()
	if *schemeName != "" {
		s, err := harness.ParseScheme(*schemeName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		schemes = []harness.Scheme{s}
	}

	fmt.Printf("%-12s %12s %14s %10s %14s\n",
		"scheme", "ns/packet", "allocs/packet", "drop rate", "packets/sec")
	for _, s := range schemes {
		e := experiments.MeasureEfficiency(s, *packets)
		fmt.Printf("%-12s %12.1f %14.2f %10.3f %14.0f\n",
			e.Scheme, e.NsPerPacket, e.AllocsPerPacket, e.DropRate, 1e9/e.NsPerPacket)
	}
}
