// Command experiments regenerates the tables and figures of the BC-PQP
// paper's evaluation from the simulator and datapath benchmarks in this
// repository.
//
// Usage:
//
//	experiments -fig 4a           # one figure (quick scale)
//	experiments -all              # every figure
//	experiments -fig 4 -scale full -seed 7
//
// Quick scale preserves every qualitative shape at a fraction of the
// paper's workload so the full suite finishes in minutes; -scale full
// approaches the paper's parameters (100 aggregates, longer runs).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bcpqp/internal/experiments"
)

func main() {
	var (
		fig    = flag.String("fig", "", "figure to regenerate (e.g. 2, 4a, 6bc); empty with -all runs everything")
		all    = flag.Bool("all", false, "run every figure")
		scale  = flag.String("scale", "quick", "experiment scale: quick | full")
		seed   = flag.Uint64("seed", 1, "workload seed (runs are deterministic per seed)")
		list   = flag.Bool("list", false, "list known figure IDs")
		csvDir = flag.String("csv", "", "also write each table/series as CSV into this directory")
	)
	flag.Parse()

	if *list {
		fmt.Println("known figures:", strings.Join(experiments.IDs(), " "))
		return
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}

	switch {
	case *all:
		start := time.Now()
		reports, err := experiments.All(sc, *seed)
		if err != nil {
			fatal(err)
		}
		for _, r := range reports {
			fmt.Println(r)
			if err := writeCSV(*csvDir, r); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "all experiments done in %v\n", time.Since(start).Round(time.Millisecond))
	case *fig != "":
		runner, err := experiments.Lookup(*fig)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		report, err := runner(sc, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report)
		if err := writeCSV(*csvDir, report); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeCSV dumps a report's tables and series into dir (no-op when empty).
func writeCSV(dir string, r *experiments.Report) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, content := range r.CSV() {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
