package main

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"bcpqp"
	"bcpqp/internal/netio"
)

// Per-core run-to-completion datapath (-datapath percore): N workers, each
// pinned to an OS thread, each owning the whole path for its share of the
// traffic — an SO_REUSEPORT socket (the kernel hashes flows across the N
// listeners), a dedicated engine shard, an aggregate enforcing rate/N, and
// a connected transmit socket. A burst travels rx → enforce → tx on one
// goroutine with zero copies and zero handoffs: recvmmsg fills the worker's
// pinned buffers, the ring-bypass LocalSubmitter enforces inline (verdicts
// reach the emit hook before SubmitBatch returns), accepted payloads are
// queued by reference and leave in one sendmmsg. This is the proxy-speed
// analogue of the DPDK deployment model the paper benchmarks against; the
// flat rate/N split mirrors the cluster plane's static-share floor.
//
// The mode is deliberately narrower than the ring datapath: flat -scheme
// enforcers only (no -tree), no snapshot/cluster planes. Flow-consistent
// REUSEPORT hashing keeps each source on one core, so per-flow enforcement
// state never splits; the aggregate bound is enforced as N independent
// rate/N shares.

// perCoreOpts parameterizes servePerCore; see proxyOpts for the shared
// fields' semantics.
type perCoreOpts struct {
	cores        int
	listen       string
	forward      string
	scheme       string
	rate         bcpqp.Rate
	queues       int
	drainTimeout time.Duration
	sig          <-chan os.Signal
	admin        net.Listener
	overload     bool
	// forceSingle selects netio's portable single-datagram fallback
	// backend (tests exercise both datapaths on any platform). ReusePort
	// needs the batched backend, so forceSingle also forces cores=1.
	forceSingle bool
	// ready, when non-nil, receives the bound listen address once every
	// core is up (tests listen on :0 and need the resolved port).
	ready chan<- string
}

// perCoreAggregate names core i's aggregate.
func perCoreAggregate(i int) string { return fmt.Sprintf("proxy/core%d", i) }

// servePerCore runs the per-core datapath until SIGTERM/SIGINT, then drains
// exactly like serve: per-core final stats are summed, the deadline-bounded
// Close runs, and the exit status reflects whether shutdown was clean.
func servePerCore(opts perCoreOpts) int {
	cores := opts.cores
	if cores <= 0 {
		cores = runtime.GOMAXPROCS(0)
	}
	if opts.forceSingle {
		cores = 1
	}
	if cores > 1 && !netio.SupportsBatch() {
		fmt.Fprintln(os.Stderr, "bcpqp-proxy: -datapath percore with -cores > 1 needs SO_REUSEPORT (linux amd64/arm64); falling back to 1 core")
		cores = 1
	}

	var flog faultLog
	cfg := bcpqp.MiddleboxConfig{
		Shards:       cores,
		CloseTimeout: opts.drainTimeout,
		OnFault: func(id string, recovered any, _ []byte) {
			if id == "" {
				id = "(unattributed)"
			}
			if log, n := flog.note(id); log {
				fmt.Fprintf(os.Stderr, "bcpqp-proxy: event=fault aggregate=%q reason=%q count=%d\n",
					id, fmt.Sprint(recovered), n)
			}
		},
	}
	if opts.overload {
		cfg.Overload = bcpqp.OverloadConfig{Enabled: true, EvictOnFull: true}
	}
	var col *bcpqp.Collector
	if opts.admin != nil {
		col = bcpqp.Observe(&cfg, bcpqp.ObserveOptions{})
	}
	mb := bcpqp.NewMiddlebox(cfg)

	ncfg := netio.Config{ReusePort: cores > 1, ForceSingle: opts.forceSingle}
	type core struct {
		rx   *netio.Conn
		tx   *netio.Conn
		h    bcpqp.AggregateHandle
		ls   *bcpqp.LocalSubmitter
		id   string
		shed atomic.Int64
		coreStats
	}
	cs := make([]*core, cores)
	var writeDropped atomic.Int64
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "bcpqp-proxy:", err)
		for _, c := range cs {
			if c == nil {
				continue
			}
			if c.rx != nil {
				c.rx.Close()
			}
			if c.tx != nil {
				c.tx.Close()
			}
		}
		mb.Close()
		return 1
	}
	for i := 0; i < cores; i++ {
		c := &core{id: perCoreAggregate(i)}
		cs[i] = c
		var err error
		if c.rx, err = netio.Listen(opts.listen, ncfg); err != nil {
			return fail(fmt.Errorf("core %d listen: %w", i, err))
		}
		if i == 0 {
			// Kernel REUSEPORT groups require identical bind addresses;
			// later cores must follow the first socket's choice when the
			// listen address was :0 style.
			opts.listen = c.rx.LocalAddr().String()
		}
		if c.tx, err = netio.Dial(opts.forward, ncfg); err != nil {
			return fail(fmt.Errorf("core %d dial: %w", i, err))
		}
		enf, err := buildEnforcer(opts.scheme, opts.rate/bcpqp.Rate(cores), opts.queues)
		if err != nil {
			return fail(err)
		}
		tx := c.tx
		emit := func(p bcpqp.Packet) {
			// Runs inline during the worker's SubmitBatch: queue the
			// accepted payload by reference; it leaves in the worker's
			// FlushTx before the rx buffers are reused.
			if !tx.QueueTx(p.Payload) {
				writeDropped.Add(1)
			}
		}
		if c.h, err = mb.AddPinned(c.id, i, enf, emit); err != nil {
			return fail(err)
		}
		if c.ls, err = mb.LocalShard(i); err != nil {
			return fail(err)
		}
		if col != nil {
			if err := bcpqp.ObserveAggregate(mb, c.id, col); err != nil && !errors.Is(err, bcpqp.ErrNotObservable) {
				fmt.Fprintln(os.Stderr, "bcpqp-proxy: observe:", err)
			}
		}
		// Always-on conformance audit per core: each worker's aggregate
		// is checked against its rate/N plan envelope inline.
		coreRate := opts.rate / bcpqp.Rate(cores)
		if burst := auditEnvelope(opts.scheme, coreRate, opts.queues); burst > 0 {
			if err := mb.ArmAudit(c.id, coreRate, burst); err != nil {
				fmt.Fprintln(os.Stderr, "bcpqp-proxy: audit:", err)
			}
		}
	}
	if col != nil {
		// Per-core cycle telemetry joins the engine's /metrics exposition:
		// one bcpqp_core_* sample per core, plus the kernel's own
		// receive-drop counter so a scrape can reconcile offered load
		// against what the datapath actually saw.
		mb.AttachMetricSource(func() []bcpqp.MetricsFamily {
			b := newCoreFamilies()
			for i, c := range cs {
				drops, haveDrops := int64(0), false
				if c.rx != nil {
					drops, haveDrops = c.rx.KernelDrops()
				}
				b.add(i, &c.coreStats, c.shed.Load(), drops, haveDrops)
			}
			return b.render()
		})
		defer startAdmin(opts.admin, mb, nil).Close()
	}

	var stopping atomic.Bool
	go func() {
		for s := range opts.sig {
			switch s {
			case syscall.SIGHUP:
				fmt.Fprintln(os.Stderr, "bcpqp-proxy: SIGHUP ignored (percore datapath has no snapshot plane)")
			default:
				fmt.Fprintf(os.Stderr, "bcpqp-proxy: %v: draining\n", s)
				stopping.Store(true)
				return
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "bcpqp-proxy: %s -> %s (percore datapath, %d cores, batched=%v)\n",
		opts.listen, opts.forward, cores, cs[0].rx.Batched())
	if opts.ready != nil {
		opts.ready <- opts.listen
	}

	var exit atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < cores; i++ {
		wg.Add(1)
		go func(i int, c *core) {
			defer wg.Done()
			// Run-to-completion: pin the worker to an OS thread so the
			// scheduler never migrates its socket wakeups mid-burst.
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			pkts := make([]bcpqp.Packet, c.rx.Batch())
			for !stopping.Load() {
				// Bounded block so stop is honoured within ~100ms when idle.
				t0 := time.Now()
				c.rx.SetReadDeadline(t0.Add(100 * time.Millisecond))
				n, err := c.rx.RecvBatch()
				c.rxWaitNs.Add(time.Since(t0).Nanoseconds())
				if err != nil {
					var ne net.Error
					if errors.As(err, &ne) && ne.Timeout() {
						c.rxTimeouts.Add(1)
						continue
					}
					if !stopping.Load() {
						fmt.Fprintf(os.Stderr, "bcpqp-proxy: core %d read: %v\n", i, err)
						exit.Store(1)
					}
					return
				}
				for j := 0; j < n; j++ {
					ip, port := c.rx.Src(j)
					pl := c.rx.Payload(j)
					pkts[j] = bcpqp.Packet{
						Key:     bcpqp.FlowKey{SrcIP: ip, SrcPort: port, Proto: 17},
						Size:    len(pl),
						Class:   bcpqp.NoClass,
						Payload: pl,
					}
				}
				c.recvCalls.Add(1)
				c.recvPkts.Add(int64(n))
				// Inline enforcement: verdicts hit emit (queueing tx refs)
				// before SubmitBatch returns, so flushing here completes
				// the burst while the rx views are still valid.
				t1 := time.Now()
				if err := c.ls.SubmitBatch(c.h, pkts[:n]); err != nil {
					c.enforceNs.Add(time.Since(t1).Nanoseconds())
					if errors.Is(err, bcpqp.ErrShardSaturated) {
						c.shed.Add(int64(n))
						continue
					}
					if !stopping.Load() {
						fmt.Fprintf(os.Stderr, "bcpqp-proxy: core %d submit: %v\n", i, err)
						exit.Store(1)
					}
					return
				}
				c.enforceNs.Add(time.Since(t1).Nanoseconds())
				queued := c.tx.QueuedTx()
				t2 := time.Now()
				err = c.tx.FlushTx()
				c.flushNs.Add(time.Since(t2).Nanoseconds())
				if err != nil && !transientNetErr(err) {
					if !stopping.Load() {
						fmt.Fprintf(os.Stderr, "bcpqp-proxy: core %d write: %v\n", i, err)
						exit.Store(1)
					}
					return
				}
				if queued > 0 && err == nil {
					c.txFlushes.Add(1)
					c.txPkts.Add(int64(queued))
				}
			}
		}(i, cs[i])
	}
	wg.Wait()

	var total bcpqp.Stats
	var shed, kernelDrops int64
	kernelDropsKnown := true
	for i, c := range cs {
		if final, err := mb.Remove(c.id); err == nil {
			total.AcceptedPackets += final.AcceptedPackets
			total.AcceptedBytes += final.AcceptedBytes
			total.DroppedPackets += final.DroppedPackets
		}
		shed += c.shed.Load()
		// Per-core cycle accounting, read before the sockets close (the
		// kernel drop row vanishes with the socket). recvPkts + kernel
		// drops = what the wire offered this core.
		drops, ok := c.rx.KernelDrops()
		if ok {
			kernelDrops += drops
		} else {
			kernelDropsKnown = false
		}
		pps := 0.0
		if calls := c.recvCalls.Load(); calls > 0 {
			pps = float64(c.recvPkts.Load()) / float64(calls)
		}
		fmt.Fprintf(os.Stderr, "bcpqp-proxy: core %d: recv %d pkts in %d syscalls (%.1f pkts/syscall), tx %d pkts in %d flushes, kernel-drops %d, busy rx=%v enforce=%v flush=%v\n",
			i, c.recvPkts.Load(), c.recvCalls.Load(), pps,
			c.txPkts.Load(), c.txFlushes.Load(), drops,
			time.Duration(c.rxWaitNs.Load()).Round(time.Millisecond),
			time.Duration(c.enforceNs.Load()).Round(time.Millisecond),
			time.Duration(c.flushNs.Load()).Round(time.Millisecond))
		c.rx.Close()
		c.tx.Close()
	}
	rep := mb.Close()
	fmt.Fprintf(os.Stderr, "bcpqp-proxy: final stats: accepted %d (%d bytes), dropped %d, shed %d, write-dropped %d\n",
		total.AcceptedPackets, total.AcceptedBytes, total.DroppedPackets, shed, writeDropped.Load())
	if kernelDropsKnown {
		fmt.Fprintf(os.Stderr, "bcpqp-proxy: reconciliation: kernel dropped %d datagrams before the datapath (engine saw offered minus exactly these)\n",
			kernelDrops)
	}
	fmt.Fprintf(os.Stderr, "bcpqp-proxy: datapath: inline-bursts %d, inline-fallbacks %d\n",
		mb.InlineBursts.Load(), mb.InlineFallbacks.Load())
	fmt.Fprintf(os.Stderr, "bcpqp-proxy: close report: clean=%v abandoned-shards=%d shed-packets=%d\n",
		rep.Clean, rep.AbandonedShards, rep.ShedPackets)
	if !rep.Clean {
		exit.Store(1)
	}
	return int(exit.Load())
}
