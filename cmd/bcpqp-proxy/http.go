// Admin HTTP surface for bcpqp-proxy (-http): a read-only operational
// endpoint set served off a dedicated listener, separate from the datapath
// socket, so scraping metrics or grabbing a profile can never contend with
// packet relaying.
//
//	/metrics      Prometheus text exposition of the engine's metric families
//	/metrics/tree per-node counters of the policy tree (node + path labels)
//	/healthz      200 when no shard is wedged, 503 otherwise (JSON body)
//	/debug/audit  JSON conformance-audit report (armed auditors + latency digest)
//	/debug/trace  JSON dump of the flight recorder (most recent events)
//	/debug/vars   expvar, including the engine metrics under "bcpqp"
//	/debug/pprof  the standard Go profiling handlers
//
// /healthz body schema (stable; all fields always present unless marked):
//
//	{
//	  "healthy":  bool,       // no shard wedged — mirrors the HTTP status
//	  "degraded": bool,       // serving, but on a conservative posture:
//	                          // cluster fallback share and/or overload shedding
//	  "panics": int, "overloaded_packets": int,
//	  "quarantined": [ids],   // omitted when empty
//	  "shards": [{"shard","state","queue_depth","queue_cap",
//	              "heartbeat_age","processed","panics","shed_packets"}],
//	  "overload": {           // omitted when the overload plane is disabled
//	    "active": bool, "pressure": 0..1, "ring_pressure", "table_fill",
//	    "shed_rate_pps", "priority_shed_packets", "admission_evictions",
//	    "transitions"},
//	  "cluster": {            // omitted when cluster mode is off
//	    "degraded": bool,     // any shared aggregate on its fallback floor
//	    "fallback_aggregates": [ids],  // omitted when empty
//	    "max_report_age": "4.2s"}      // "never" before the first report
//	}
package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bcpqp"
)

// publishMetricsVar exposes the engine metrics under /debug/vars exactly
// once per process: expvar.Publish panics on duplicate names, and tests run
// serve more than once in one process. Later engines re-point the published
// Var at themselves.
var publishMetricsVar = func() func(mb *bcpqp.Middlebox) {
	var once sync.Once
	var mu sync.Mutex
	var current *bcpqp.Middlebox
	return func(mb *bcpqp.Middlebox) {
		mu.Lock()
		current = mb
		mu.Unlock()
		once.Do(func() {
			expvar.Publish("bcpqp", expvar.Func(func() any {
				mu.Lock()
				mb := current
				mu.Unlock()
				if mb == nil {
					return nil
				}
				var v any
				if err := json.Unmarshal([]byte(bcpqp.MetricsVar(mb).String()), &v); err != nil {
					return nil
				}
				return v
			}))
		})
	}
}()

// newAdminMux builds the admin endpoint set for one engine. node is the
// cluster exchange node, or nil when the proxy runs standalone.
func newAdminMux(mb *bcpqp.Middlebox, node *bcpqp.ClusterNode) *http.ServeMux {
	publishMetricsVar(mb)
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := bcpqp.WritePrometheus(w, mb.Metrics()); err != nil {
			// Headers are gone; all we can do is note it server-side.
			fmt.Fprintf(os.Stderr, "bcpqp-proxy: /metrics write: %v\n", err)
		}
	})

	mux.HandleFunc("/metrics/tree", func(w http.ResponseWriter, r *http.Request) {
		// Per-node counters of the proxy aggregate's policy tree, with
		// node index and root→node path labels. Works on a flat aggregate
		// too (one node); bounded export — very large trees report leaf
		// omission through bcpqp_tree_nodes vs bcpqp_tree_nodes_exported.
		snap, err := mb.NodeMetrics(proxyAggregate)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := bcpqp.WritePrometheus(w, snap); err != nil {
			fmt.Fprintf(os.Stderr, "bcpqp-proxy: /metrics/tree write: %v\n", err)
		}
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := mb.Health()
		w.Header().Set("Content-Type", "application/json")
		// Cluster fallback shares are DEGRADED, not down: the node is
		// enforcing its conservative static r/N share, which is safe and
		// serving traffic — a 503 here would make load balancers evict
		// exactly the nodes that are behaving correctly under partition.
		// The same logic applies to an active overload plane: a shedding
		// engine is doing its job (surviving an attack by dropping the
		// lowest-priority traffic), and evicting it would hand the flood
		// to a healthier-looking peer and take that one down too.
		degraded := (node != nil && node.Degraded()) || h.Overload.Active
		if h.Wedged() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		type shardz struct {
			Shard        int    `json:"shard"`
			State        string `json:"state"`
			QueueDepth   int    `json:"queue_depth"`
			QueueCap     int    `json:"queue_cap"`
			HeartbeatAge string `json:"heartbeat_age"`
			Processed    int64  `json:"processed"`
			Panics       int64  `json:"panics"`
			Shed         int64  `json:"shed_packets"`
		}
		type overloadz struct {
			Active             bool    `json:"active"`
			Pressure           float64 `json:"pressure"`
			RingPressure       float64 `json:"ring_pressure"`
			TableFill          float64 `json:"table_fill"`
			ShedRatePPS        float64 `json:"shed_rate_pps"`
			PriorityShed       int64   `json:"priority_shed_packets"`
			AdmissionEvictions int64   `json:"admission_evictions"`
			Transitions        int64   `json:"transitions"`
		}
		type clusterz struct {
			Degraded           bool     `json:"degraded"`
			FallbackAggregates []string `json:"fallback_aggregates,omitempty"`
			MaxReportAge       string   `json:"max_report_age"`
		}
		body := struct {
			Healthy     bool       `json:"healthy"`
			Degraded    bool       `json:"degraded"`
			Shards      []shardz   `json:"shards"`
			Quarantined []string   `json:"quarantined,omitempty"`
			Panics      int64      `json:"panics"`
			Overloaded  int64      `json:"overloaded_packets"`
			Overload    *overloadz `json:"overload,omitempty"`
			Cluster     *clusterz  `json:"cluster,omitempty"`
		}{
			Healthy:     !h.Wedged(),
			Degraded:    degraded,
			Panics:      h.Panics,
			Overloaded:  h.Overloaded,
			Quarantined: h.Quarantined,
		}
		if node != nil {
			st := node.Status()
			cz := &clusterz{Degraded: st.Degraded, MaxReportAge: "never"}
			if st.MaxReportAge >= 0 {
				cz.MaxReportAge = st.MaxReportAge.String()
			}
			for _, a := range st.Shared {
				if a.Fallback {
					cz.FallbackAggregates = append(cz.FallbackAggregates, a.ID)
				}
			}
			body.Cluster = cz
		}
		if h.Overload.Enabled {
			body.Overload = &overloadz{
				Active:             h.Overload.Active,
				Pressure:           h.Overload.Pressure,
				RingPressure:       h.Overload.Ring,
				TableFill:          h.Overload.TableFill,
				ShedRatePPS:        h.Overload.ShedRate,
				PriorityShed:       h.Overload.PriorityShed,
				AdmissionEvictions: h.Overload.AdmissionEvictions,
				Transitions:        h.Overload.Transitions,
			}
		}
		for _, s := range h.Shards {
			body.Shards = append(body.Shards, shardz{
				Shard:        s.Shard,
				State:        s.State.String(),
				QueueDepth:   s.QueueDepth,
				QueueCap:     s.QueueCap,
				HeartbeatAge: s.HeartbeatAge.String(),
				Processed:    s.Processed,
				Panics:       s.Panics,
				Shed:         s.Shed,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})

	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		if node == nil {
			http.Error(w, "cluster mode disabled (no -node-id)", http.StatusNotFound)
			return
		}
		st := node.Status()
		type peerz struct {
			ID              string `json:"id"`
			State           string `json:"state"`
			LastExchangeAge string `json:"last_exchange_age"`
			LastSeq         uint64 `json:"last_seq"`
			Reports         int64  `json:"reports"`
			Stale           int64  `json:"stale_reports"`
		}
		type aggz struct {
			ID            string  `json:"id"`
			RateBps       float64 `json:"rate_bps"`
			FloorBps      float64 `json:"floor_bps"`
			ObservedBps   float64 `json:"observed_bps"`
			AppliedBps    float64 `json:"applied_bps"`
			GrantedInBps  float64 `json:"granted_in_bps"`
			GrantedOutBps float64 `json:"granted_out_bps"`
			Fallback      bool    `json:"fallback"`
		}
		body := struct {
			Self      string  `json:"self"`
			Seq       uint64  `json:"seq"`
			Window    string  `json:"window"`
			Degraded  bool    `json:"degraded"`
			BadFrames int64   `json:"bad_frames"`
			Handoffs  int64   `json:"handoffs"`
			Peers     []peerz `json:"peers"`
			Shared    []aggz  `json:"shared"`
		}{
			Self: st.Self, Seq: st.Seq, Window: st.Window.String(),
			Degraded: st.Degraded, BadFrames: st.BadFrames, Handoffs: st.Handoffs,
		}
		for _, p := range st.Peers {
			age := "never"
			if p.LastExchangeAge >= 0 {
				age = p.LastExchangeAge.String()
			}
			body.Peers = append(body.Peers, peerz{
				ID: p.ID, State: p.State.String(), LastExchangeAge: age,
				LastSeq: p.LastSeq, Reports: p.Reports, Stale: p.Stale,
			})
		}
		for _, a := range st.Shared {
			body.Shared = append(body.Shared, aggz{
				ID: a.ID, RateBps: float64(a.Rate), FloorBps: float64(a.Floor),
				ObservedBps: float64(a.Observed), AppliedBps: float64(a.Applied),
				GrantedInBps: float64(a.GrantedIn), GrantedOutBps: float64(a.GrantedOut),
				Fallback: a.Fallback,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})

	mux.HandleFunc("/debug/audit", func(w http.ResponseWriter, r *http.Request) {
		// Conformance-audit report: every armed auditor's exact envelope
		// counters plus quantiles from the mergeable digests. Quantiles
		// carry the digest's ≤12.5% relative error; the counters are exact.
		rep := mb.AuditReport()
		type digestz struct {
			Count uint64 `json:"count"`
			P50   int64  `json:"p50"`
			P90   int64  `json:"p90"`
			P99   int64  `json:"p99"`
			Max   int64  `json:"max"`
		}
		quant := func(d bcpqp.DigestSnapshot) *digestz {
			if d.Total() == 0 {
				return nil
			}
			return &digestz{
				Count: d.Total(),
				P50:   d.Quantile(0.50),
				P90:   d.Quantile(0.90),
				P99:   d.Quantile(0.99),
				Max:   d.Quantile(1),
			}
		}
		type auditz struct {
			Aggregate     string   `json:"aggregate"`
			Node          int32    `json:"node"` // -1 = whole-aggregate envelope
			NodeLabel     string   `json:"node_label,omitempty"`
			EnvelopeBps   int64    `json:"envelope_bps"`
			BurstBytes    int64    `json:"burst_bytes"`
			AllowedBytes  int64    `json:"allowed_bytes"`
			AcceptedBytes int64    `json:"accepted_bytes"`
			SlackBytes    int64    `json:"slack_bytes"`
			MinSlackBytes int64    `json:"min_slack_bytes"`
			MaxDeficit    int64    `json:"max_deficit_bytes"`
			Violations    int64    `json:"violations"`
			Windows       int64    `json:"windows"`
			SlackBytesQ   *digestz `json:"slack_distribution_bytes,omitempty"`
			RateErrQ      *digestz `json:"rate_error_permille,omitempty"`
		}
		body := struct {
			Armed           int      `json:"armed"`
			ViolationsTotal int64    `json:"violations_total"`
			BurstLatencyNS  *digestz `json:"burst_enforce_latency_ns,omitempty"`
			Audits          []auditz `json:"audits"`
		}{
			Armed:           len(rep),
			ViolationsTotal: mb.AuditViolations(),
			BurstLatencyNS:  quant(mb.BurstLatency()),
			Audits:          make([]auditz, 0, len(rep)),
		}
		for _, e := range rep {
			c := e.Counters
			body.Audits = append(body.Audits, auditz{
				Aggregate: e.Aggregate, Node: int32(e.Node), NodeLabel: e.NodeLabel,
				EnvelopeBps: c.RateBps, BurstBytes: c.BurstBytes,
				AllowedBytes: c.AllowedBytes, AcceptedBytes: c.AcceptedBytes,
				SlackBytes: c.SlackBytes, MinSlackBytes: c.MinSlackBytes,
				MaxDeficit: c.MaxDeficit, Violations: c.Violations, Windows: c.Windows,
				SlackBytesQ: quant(e.Slack), RateErrQ: quant(e.RateErr),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})

	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		events := mb.TraceDump()
		w.Header().Set("Content-Type", "application/json")
		type eventz struct {
			Seq       uint64 `json:"seq"`
			Wall      string `json:"wall,omitempty"`
			VirtualNS int64  `json:"virtual_ns"`
			Kind      string `json:"kind"`
			Shard     int32  `json:"shard"`
			Aggregate string `json:"aggregate,omitempty"`
			A         int64  `json:"a"`
			B         int64  `json:"b"`
			C         int64  `json:"c"`
		}
		out := struct {
			Events []eventz `json:"events"`
		}{Events: make([]eventz, 0, len(events))}
		for _, ev := range events {
			ez := eventz{
				Seq:       ev.Seq,
				VirtualNS: ev.VT,
				Kind:      ev.Kind.String(),
				Shard:     ev.Shard,
				Aggregate: ev.AggID,
				A:         ev.A,
				B:         ev.B,
				C:         ev.C,
			}
			if ev.Wall != 0 {
				ez.Wall = time.Unix(0, ev.Wall).UTC().Format(time.RFC3339Nano)
			}
			out.Events = append(out.Events, ez)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})

	mux.Handle("/debug/vars", expvar.Handler())

	// pprof registers itself only on http.DefaultServeMux; the admin mux is
	// private, so wire the handlers explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// startAdmin serves the admin mux on ln until the returned server is
// closed. Serve errors after shutdown are expected and discarded.
func startAdmin(ln net.Listener, mb *bcpqp.Middlebox, node *bcpqp.ClusterNode) *http.Server {
	srv := &http.Server{Handler: newAdminMux(mb, node), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "bcpqp-proxy: admin listener: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "bcpqp-proxy: admin endpoints on http://%s (/metrics /metrics/tree /healthz /cluster /debug/audit /debug/trace /debug/vars /debug/pprof)\n",
		ln.Addr())
	return srv
}

// faultLog emits one structured line per noteworthy fault-plane event,
// rate-limited so a crash-looping enforcer cannot flood the log: the first
// occurrence always logs, then every faultLogEvery-th. It is called from
// shard goroutines (Config.OnFault/OnEvict contract: fast, non-blocking, no
// calls back into the engine), so it only bumps an atomic and writes stderr.
type faultLog struct {
	faults sync.Map // aggregate id -> *faultCount
}

const faultLogEvery = 64

// note records one fault for id and reports (shouldLog, occurrence count).
func (l *faultLog) note(id string) (bool, int64) {
	v, _ := l.faults.LoadOrStore(id, new(atomic.Int64))
	n := v.(*atomic.Int64).Add(1)
	return n == 1 || n%faultLogEvery == 0, n
}
