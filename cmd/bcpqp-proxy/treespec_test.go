package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"bcpqp"
)

const demoTreeSpec = `[
  {"name": "tenant", "ceiling": {"scheme": "policer", "rate_mbps": 50}},
  {"name": "gold",   "parent": 0, "ceiling": {"scheme": "bc-pqp", "rate_mbps": 20, "queues": 8}},
  {"name": "alice",  "parent": 1, "assured_mbps": 8},
  {"name": "bob",    "parent": 1, "assured_mbps": 8}
]`

func TestParseTreeSpec(t *testing.T) {
	tree, err := parseTreeSpec([]byte(demoTreeSpec), 16)
	if err != nil {
		t.Fatalf("parseTreeSpec: %v", err)
	}
	if tree.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", tree.NumNodes())
	}
	if tree.NodeLabel(1) != "gold" || tree.Parent(2) != 1 {
		t.Errorf("topology: label(1)=%q parent(2)=%d", tree.NodeLabel(1), tree.Parent(2))
	}
	if _, eff := tree.AssuredRate(1); eff != 16*bcpqp.Mbps {
		t.Errorf("gold lend rate = %v, want 16 Mbps", eff)
	}

	bad := []struct{ name, spec string }{
		{"not json", `{`},
		{"empty", `[]`},
		{"unknown scheme", `[{"name": "r", "ceiling": {"scheme": "nope", "rate_mbps": 5}}]`},
		{"buffering scheme", `[{"name": "r", "ceiling": {"scheme": "shaper", "rate_mbps": 5}}]`},
		{"root with parent", `[{"name": "r", "parent": 3}]`},
		{"forward parent", `[{"name": "r"}, {"name": "c", "parent": 2}, {"name": "d", "parent": 1}]`},
		{"negative assured", `[{"name": "r", "assured_mbps": -1}]`},
	}
	for _, tc := range bad {
		if _, err := parseTreeSpec([]byte(tc.spec), 16); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLoadTreeSpecMissingFile(t *testing.T) {
	if _, err := loadTreeSpec(t.TempDir()+"/nope.json", 16); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

// TestServeTreeAggregate runs the engine-hosted proxy over a policy tree:
// datagrams relay through the tree's leaf-routed datapath, and the admin
// /metrics/tree endpoint exports per-node counters with path labels.
func TestServeTreeAggregate(t *testing.T) {
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	var sunk atomic.Int64
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := sink.ReadFrom(buf)
			if err != nil {
				return
			}
			sunk.Add(int64(n))
		}
	}()

	tree, err := parseTreeSpec([]byte(demoTreeSpec), 16)
	if err != nil {
		t.Fatal(err)
	}
	in, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { in.Close() })
	admin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminAddr := admin.Addr().String()
	sigc := make(chan os.Signal, 1)
	code := make(chan int, 1)
	go func() {
		code <- serve(in, sink.LocalAddr().String(), tree, proxyOpts{
			drainTimeout: 5 * time.Second,
			sig:          sigc,
			admin:        admin,
		})
	}()

	conn, err := net.Dial("udp", in.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 600)
	for i := 0; i < 50; i++ {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	// The tree datapath must actually relay: wait for sink bytes.
	deadline := time.Now().Add(5 * time.Second)
	for sunk.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if sunk.Load() == 0 {
		t.Fatal("no traffic reached the sink through the tree datapath")
	}

	resp, err := http.Get("http://" + adminAddr + "/metrics/tree")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/tree status %d: %s", resp.StatusCode, body)
	}
	text := string(body)
	if !strings.Contains(text, "bcpqp_tree_nodes") {
		t.Errorf("/metrics/tree missing bcpqp_tree_nodes:\n%s", text)
	}
	if !strings.Contains(text, `path="tenant/gold"`) {
		t.Errorf("/metrics/tree missing the tenant/gold path label:\n%s", text)
	}

	sigc <- syscall.SIGTERM
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("tree proxy drain exited %d, want 0", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tree proxy did not exit within 10s of SIGTERM")
	}
}
