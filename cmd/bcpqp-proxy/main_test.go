package main

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"bcpqp"
)

func TestBuildEnforcer(t *testing.T) {
	for _, name := range []string{"policer", "policer+", "fairpolicer", "pqp", "bc-pqp"} {
		enf, err := buildEnforcer(name, 5*bcpqp.Mbps, 8)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if enf == nil {
			t.Errorf("%s: nil enforcer", name)
		}
	}
	if _, err := buildEnforcer("shaper", 5*bcpqp.Mbps, 8); err == nil {
		t.Error("buffering scheme accepted for a bufferless relay")
	}
	if _, err := buildEnforcer("nope", 5*bcpqp.Mbps, 8); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestKeyFor(t *testing.T) {
	k := keyFor(mockUDPAddr())
	if k.SrcIP == 0 || k.SrcPort == 0 || k.Proto != 17 {
		t.Errorf("keyFor = %+v", k)
	}
}

// TestSelfTestLoopback runs the full live datapath (sink, proxy, two
// senders) over loopback for a short real-time window.
func TestSelfTestLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time loopback test")
	}
	if err := runSelfTest(5, "bc-pqp", 8, 1500*time.Millisecond); err != nil {
		t.Fatalf("selftest: %v", err)
	}
}

// TestTransientNetErrClassification pins which socket errors the relay
// treats as survivable (drop and count) versus fatal (exit).
func TestTransientNetErrClassification(t *testing.T) {
	transient := []error{
		syscall.ECONNREFUSED,
		syscall.ENETUNREACH,
		syscall.EHOSTUNREACH,
		syscall.ENOBUFS,
		syscall.EAGAIN,
		fmt.Errorf("write udp: %w", syscall.ECONNREFUSED), // wrapped, as net.OpError yields
		&net.OpError{Op: "write", Err: timeoutErr{}},
	}
	for _, err := range transient {
		if !transientNetErr(err) {
			t.Errorf("transientNetErr(%v) = false, want true", err)
		}
	}
	fatal := []error{
		nil,
		syscall.EBADF,
		syscall.EINVAL,
		errors.New("use of closed network connection"),
	}
	for _, err := range fatal {
		if transientNetErr(err) {
			t.Errorf("transientNetErr(%v) = true, want false", err)
		}
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestRelaySurvivesUnreachableForward aims the relay at a loopback port
// with no listener — every accepted datagram's write draws an ICMP
// port-unreachable, surfacing as ECONNREFUSED on the connected socket —
// and verifies the relay neither exits nor errors: it sheds, counts, and
// keeps serving until asked to stop. This is the regression test for the
// old behaviour of exiting fatally on the first transient relay error.
func TestRelaySurvivesUnreachableForward(t *testing.T) {
	in, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	// Reserve a port, then close it so nothing listens there.
	hole, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	forward := hole.LocalAddr().String()
	hole.Close()

	enf, err := buildEnforcer("policer", 100*bcpqp.Mbps, 8)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	done := make(chan error, 1)
	go func() { done <- relay(in, forward, enf, &stop) }()

	conn, err := net.Dial("udp", in.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 256)
	for i := 0; i < 20; i++ {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	select {
	case err := <-done:
		t.Fatalf("relay exited on transient write errors: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	stop.Store(true)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("relay returned error after graceful stop: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("relay did not stop within 2s of the stop flag")
	}
}

// mockUDPAddr builds a loopback UDP address for key derivation tests.
func mockUDPAddr() *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4242}
}

// startServe launches the engine-hosted proxy datapath with a test-fed
// signal channel and returns the listen address, the signal channel and the
// exit-code future.
func startServe(t *testing.T, forward, snapshotPath string) (string, chan os.Signal, chan int) {
	t.Helper()
	in, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { in.Close() })
	enf, err := buildEnforcer("bc-pqp", 50*bcpqp.Mbps, 8)
	if err != nil {
		t.Fatal(err)
	}
	sigc := make(chan os.Signal, 4)
	code := make(chan int, 1)
	go func() {
		code <- serve(in, forward, enf, proxyOpts{
			snapshotPath: snapshotPath,
			drainTimeout: 5 * time.Second,
			sig:          sigc,
		})
	}()
	return in.LocalAddr().String(), sigc, code
}

// TestServeGracefulDrainAndSnapshot exercises the proxy's full signal
// protocol over loopback: traffic relays through the engine datapath,
// SIGHUP persists a decodable warm-restart snapshot, SIGTERM drains
// gracefully with exit status 0, and a second proxy started on the same
// snapshot path warm-restarts from it.
func TestServeGracefulDrainAndSnapshot(t *testing.T) {
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	var sunk atomic.Int64
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := sink.ReadFrom(buf)
			if err != nil {
				return
			}
			sunk.Add(int64(n))
		}
	}()

	snapPath := t.TempDir() + "/proxy.snap"
	addr, sigc, code := startServe(t, sink.LocalAddr().String(), snapPath)

	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 600)
	for i := 0; i < 50; i++ {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	// SIGHUP: snapshot written, proxy keeps serving.
	sigc <- syscall.SIGHUP
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(snapPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP produced no snapshot file")
		}
		time.Sleep(5 * time.Millisecond)
	}
	blob, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap bcpqp.MiddleboxSnapshot
	if err := snap.UnmarshalBinary(blob); err != nil {
		t.Fatalf("snapshot file does not decode: %v", err)
	}
	if len(snap.Aggregates) != 1 || snap.Aggregates[0].ID != proxyAggregate {
		t.Fatalf("snapshot aggregates = %+v, want one %q entry", snap.Aggregates, proxyAggregate)
	}
	select {
	case c := <-code:
		t.Fatalf("proxy exited (%d) on SIGHUP", c)
	default:
	}

	// SIGTERM: graceful drain, clean exit.
	sigc <- syscall.SIGTERM
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("graceful drain exited %d, want 0", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("proxy did not exit within 10s of SIGTERM")
	}
	if sunk.Load() == 0 {
		t.Error("no traffic reached the sink through the engine datapath")
	}

	// Warm restart: a fresh proxy on the same path restores the snapshot
	// and still relays.
	addr2, sigc2, code2 := startServe(t, sink.LocalAddr().String(), snapPath)
	conn2, err := net.Dial("udp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	before := sunk.Load()
	for i := 0; i < 20; i++ {
		if _, err := conn2.Write(payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	relayDeadline := time.Now().Add(5 * time.Second)
	for sunk.Load() == before && time.Now().Before(relayDeadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if sunk.Load() == before {
		t.Error("warm-restarted proxy relayed nothing")
	}
	sigc2 <- syscall.SIGINT
	select {
	case c := <-code2:
		if c != 0 {
			t.Fatalf("warm-restarted proxy drain exited %d, want 0", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("warm-restarted proxy did not exit within 10s of SIGINT")
	}
}

// TestRestoreSnapshotCorruptFile pins startup behaviour on a bad snapshot:
// restoreSnapshot must reject it (the caller then starts cold) rather than
// panic or half-restore.
func TestRestoreSnapshotCorruptFile(t *testing.T) {
	path := t.TempDir() + "/bad.snap"
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	mb := bcpqp.NewMiddlebox(bcpqp.MiddleboxConfig{Shards: 1})
	defer mb.Close()
	if err := restoreSnapshot(mb, path); err == nil {
		t.Fatal("corrupt snapshot restored without error")
	}
	if err := restoreSnapshot(mb, path+".missing"); !os.IsNotExist(err) {
		t.Fatalf("missing snapshot: err = %v, want IsNotExist", err)
	}
}
