package main

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"bcpqp"
)

func TestBuildEnforcer(t *testing.T) {
	for _, name := range []string{"policer", "policer+", "fairpolicer", "pqp", "bc-pqp"} {
		enf, err := buildEnforcer(name, 5*bcpqp.Mbps, 8)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if enf == nil {
			t.Errorf("%s: nil enforcer", name)
		}
	}
	if _, err := buildEnforcer("shaper", 5*bcpqp.Mbps, 8); err == nil {
		t.Error("buffering scheme accepted for a bufferless relay")
	}
	if _, err := buildEnforcer("nope", 5*bcpqp.Mbps, 8); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestKeyFor(t *testing.T) {
	k := keyFor(mockUDPAddr())
	if k.SrcIP == 0 || k.SrcPort == 0 || k.Proto != 17 {
		t.Errorf("keyFor = %+v", k)
	}
}

// TestSelfTestLoopback runs the full live datapath (sink, proxy, two
// senders) over loopback for a short real-time window.
func TestSelfTestLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time loopback test")
	}
	if err := runSelfTest(5, "bc-pqp", 8, 1500*time.Millisecond); err != nil {
		t.Fatalf("selftest: %v", err)
	}
}

// TestTransientNetErrClassification pins which socket errors the relay
// treats as survivable (drop and count) versus fatal (exit).
func TestTransientNetErrClassification(t *testing.T) {
	transient := []error{
		syscall.ECONNREFUSED,
		syscall.ENETUNREACH,
		syscall.EHOSTUNREACH,
		syscall.ENOBUFS,
		syscall.EAGAIN,
		fmt.Errorf("write udp: %w", syscall.ECONNREFUSED), // wrapped, as net.OpError yields
		&net.OpError{Op: "write", Err: timeoutErr{}},
	}
	for _, err := range transient {
		if !transientNetErr(err) {
			t.Errorf("transientNetErr(%v) = false, want true", err)
		}
	}
	fatal := []error{
		nil,
		syscall.EBADF,
		syscall.EINVAL,
		errors.New("use of closed network connection"),
	}
	for _, err := range fatal {
		if transientNetErr(err) {
			t.Errorf("transientNetErr(%v) = true, want false", err)
		}
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestRelaySurvivesUnreachableForward aims the relay at a loopback port
// with no listener — every accepted datagram's write draws an ICMP
// port-unreachable, surfacing as ECONNREFUSED on the connected socket —
// and verifies the relay neither exits nor errors: it sheds, counts, and
// keeps serving until asked to stop. This is the regression test for the
// old behaviour of exiting fatally on the first transient relay error.
func TestRelaySurvivesUnreachableForward(t *testing.T) {
	in, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	// Reserve a port, then close it so nothing listens there.
	hole, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	forward := hole.LocalAddr().String()
	hole.Close()

	enf, err := buildEnforcer("policer", 100*bcpqp.Mbps, 8)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	done := make(chan error, 1)
	go func() { done <- relay(in, forward, enf, &stop) }()

	conn, err := net.Dial("udp", in.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 256)
	for i := 0; i < 20; i++ {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	select {
	case err := <-done:
		t.Fatalf("relay exited on transient write errors: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	stop.Store(true)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("relay returned error after graceful stop: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("relay did not stop within 2s of the stop flag")
	}
}

// mockUDPAddr builds a loopback UDP address for key derivation tests.
func mockUDPAddr() *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4242}
}
