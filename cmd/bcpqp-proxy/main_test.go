package main

import (
	"net"
	"testing"
	"time"

	"bcpqp"
)

func TestBuildEnforcer(t *testing.T) {
	for _, name := range []string{"policer", "policer+", "fairpolicer", "pqp", "bc-pqp"} {
		enf, err := buildEnforcer(name, 5*bcpqp.Mbps, 8)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if enf == nil {
			t.Errorf("%s: nil enforcer", name)
		}
	}
	if _, err := buildEnforcer("shaper", 5*bcpqp.Mbps, 8); err == nil {
		t.Error("buffering scheme accepted for a bufferless relay")
	}
	if _, err := buildEnforcer("nope", 5*bcpqp.Mbps, 8); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestKeyFor(t *testing.T) {
	k := keyFor(mockUDPAddr())
	if k.SrcIP == 0 || k.SrcPort == 0 || k.Proto != 17 {
		t.Errorf("keyFor = %+v", k)
	}
}

// TestSelfTestLoopback runs the full live datapath (sink, proxy, two
// senders) over loopback for a short real-time window.
func TestSelfTestLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time loopback test")
	}
	if err := runSelfTest(5, "bc-pqp", 8, 1500*time.Millisecond); err != nil {
		t.Fatalf("selftest: %v", err)
	}
}

// mockUDPAddr builds a loopback UDP address for key derivation tests.
func mockUDPAddr() *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4242}
}
