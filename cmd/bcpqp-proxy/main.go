// Command bcpqp-proxy is a live (non-simulated) rate-enforcing UDP relay:
// the low-rate real-traffic counterpart of the paper's DPDK middlebox that
// a pure-Go build can provide. Datagrams arriving on the listen socket are
// classified by source address into phantom queues and either relayed to
// the forward address or dropped, according to the selected scheme.
//
// Usage:
//
//	bcpqp-proxy -listen :9000 -forward 127.0.0.1:9001 -rate 5 -scheme bc-pqp
//
// A built-in demonstration needs no external tooling:
//
//	bcpqp-proxy -selftest
//
// runs a sink, the proxy, and two competing UDP senders (one paced at its
// fair share, one greedy) over loopback for a few seconds and reports the
// goodput each flow achieved through the enforcer.
//
// The proxy is a well-behaved middlebox process:
//
//   - SIGTERM/SIGINT drain gracefully: in-flight bursts are enforced, the
//     engine's deadline-bounded Close runs (-drain-timeout), its report is
//     logged, and the exit status is nonzero if the shutdown was unclean.
//   - SIGHUP writes a warm-restart snapshot to the -snapshot path
//     (atomic temp-file + rename); at startup an existing snapshot there
//     is restored, so a restarted proxy resumes with the enforcement state
//     (phantom occupancy, burst windows, token levels) it had.
//
// Bufferless schemes only (policer, policer+, fairpolicer, pqp, bc-pqp):
// a relay cannot hold datagrams the way a shaper holds packets.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"bcpqp"
)

func main() {
	var (
		listen   = flag.String("listen", ":9000", "UDP address to listen on")
		forward  = flag.String("forward", "127.0.0.1:9001", "UDP address to relay to")
		rateMbps = flag.Float64("rate", 5, "enforced rate in Mbps")
		scheme   = flag.String("scheme", "bc-pqp", "enforcement scheme (policer|policer+|fairpolicer|pqp|bc-pqp)")
		queues   = flag.Int("queues", 16, "phantom queues / flow buckets")
		treePath = flag.String("tree", "", "policy-tree JSON spec file: hierarchical ceilings and assured rates enforced instead of the flat -rate/-scheme enforcer (see treespec.go for the format)")
		snapPath = flag.String("snapshot", "", "warm-restart snapshot file: restored at startup if present, written on SIGHUP")
		httpAddr = flag.String("http", "", "admin HTTP listener address serving /metrics, /healthz, /cluster, /debug/trace, /debug/vars and /debug/pprof (disabled when empty)")
		nodeID   = flag.String("node-id", "", "cluster node id: enables the peer budget exchange (requires -cluster-listen)")
		peerSpec = flag.String("peers", "", "cluster peers as id=host:port,id2=host:port (exchange addresses, not datapath)")
		clListen = flag.String("cluster-listen", "", "UDP address the budget exchange listens on (e.g. :7400)")
		clKey    = flag.String("cluster-key", "", "shared secret authenticating budget-exchange frames (HMAC-SHA256); all peers must agree. Empty sends frames unauthenticated — only safe on a trusted network")
		sharedFl = flag.Bool("shared", false, "enforce -rate as the CLUSTER-WIDE bound for the proxy aggregate: start at the static r/N share and let the budget exchange reclaim idle peers' headroom")
		overload = flag.Bool("overload", false, "enable the overload-control plane: pressure-driven priority shedding, tightened idle eviction and admission-eviction under table pressure; /healthz reports an active plane as degraded (still 200)")
		datapath = flag.String("datapath", "ring", "datapath mode: ring (shared socket, engine shard ring) or percore (per-core run-to-completion: SO_REUSEPORT batched sockets, ring-bypass inline enforcement at rate/N per core)")
		coresFl  = flag.Int("cores", 0, "percore datapath worker count (0 = GOMAXPROCS); each core enforces rate/cores")
		drain    = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain deadline on SIGTERM/SIGINT")
		selftest = flag.Bool("selftest", false, "run the loopback demonstration and exit")
		duration = flag.Duration("selftest-duration", 5*time.Second, "selftest run length")
	)
	flag.Parse()

	if *selftest {
		if err := runSelfTest(*rateMbps, *scheme, *queues, *duration); err != nil {
			fmt.Fprintln(os.Stderr, "selftest:", err)
			os.Exit(1)
		}
		return
	}

	if *datapath == "percore" {
		// The percore plane is deliberately narrow: flat enforcers split
		// rate/N across pinned cores; the tree, snapshot and cluster
		// planes stay ring-mode features.
		for flagName, set := range map[string]bool{
			"-tree": *treePath != "", "-snapshot": *snapPath != "",
			"-node-id": *nodeID != "", "-peers": *peerSpec != "",
			"-cluster-listen": *clListen != "", "-shared": *sharedFl,
		} {
			if set {
				fmt.Fprintf(os.Stderr, "bcpqp-proxy: %s is not supported with -datapath percore\n", flagName)
				os.Exit(1)
			}
		}
		var admin net.Listener
		var err error
		if *httpAddr != "" {
			if admin, err = net.Listen("tcp", *httpAddr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer admin.Close()
		}
		sigc := make(chan os.Signal, 4)
		signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
		os.Exit(servePerCore(perCoreOpts{
			cores:        *coresFl,
			listen:       *listen,
			forward:      *forward,
			scheme:       *scheme,
			rate:         bcpqp.Rate(*rateMbps) * bcpqp.Mbps,
			queues:       *queues,
			drainTimeout: *drain,
			sig:          sigc,
			admin:        admin,
			overload:     *overload,
		}))
	} else if *datapath != "ring" {
		fmt.Fprintf(os.Stderr, "bcpqp-proxy: unknown -datapath %q (ring|percore)\n", *datapath)
		os.Exit(1)
	}

	var clOpts clusterOpts
	if *nodeID != "" || *peerSpec != "" || *clListen != "" || *sharedFl {
		peers, err := parsePeers(*peerSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcpqp-proxy:", err)
			os.Exit(1)
		}
		if *nodeID == "" || *clListen == "" {
			fmt.Fprintln(os.Stderr, "bcpqp-proxy: cluster mode needs both -node-id and -cluster-listen")
			os.Exit(1)
		}
		if _, self := peers[*nodeID]; self {
			fmt.Fprintf(os.Stderr, "bcpqp-proxy: -peers must not include this node's own id %q\n", *nodeID)
			os.Exit(1)
		}
		clOpts = clusterOpts{
			nodeID: *nodeID,
			peers:  peers,
			listen: *clListen,
			shared: *sharedFl,
			rate:   bcpqp.Rate(*rateMbps) * bcpqp.Mbps,
			key:    *clKey,
		}
	}

	var enf bcpqp.Enforcer
	var err error
	if *treePath != "" {
		enf, err = loadTreeSpec(*treePath, *queues)
	} else {
		enf, err = buildEnforcer(*scheme, bcpqp.Rate(*rateMbps)*bcpqp.Mbps, *queues)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	in, err := net.ListenPacket("udp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer in.Close()
	var admin net.Listener
	if *httpAddr != "" {
		admin, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer admin.Close()
	}
	sigc := make(chan os.Signal, 4)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	auditBurst := int64(0)
	if *treePath == "" {
		auditBurst = auditEnvelope(*scheme, bcpqp.Rate(*rateMbps)*bcpqp.Mbps, *queues)
	}
	os.Exit(serve(in, *forward, enf, proxyOpts{
		snapshotPath: *snapPath,
		drainTimeout: *drain,
		sig:          sigc,
		admin:        admin,
		cluster:      clOpts,
		overload:     *overload,
		auditRate:    bcpqp.Rate(*rateMbps) * bcpqp.Mbps,
		auditBurst:   auditBurst,
	}))
}

// proxyAggregate is the id the proxy registers its single enforcer under on
// the middlebox engine; snapshots key on it, so a restarted proxy restores
// into the same id.
const proxyAggregate = "proxy"

// proxyOpts parameterizes serve. sig delivers shutdown and snapshot
// requests; in production it is a signal.Notify channel, in tests a plain
// channel fed directly.
type proxyOpts struct {
	snapshotPath string
	drainTimeout time.Duration
	sig          <-chan os.Signal
	// admin, when non-nil, serves the observability endpoints (/metrics,
	// /healthz, /cluster, /debug/trace, /debug/vars, /debug/pprof) until
	// shutdown; serve closes it. It also switches the engine's trace
	// collector on.
	admin net.Listener
	// cluster, when enabled, joins the peer budget exchange (and, with
	// shared set, enforces the proxy aggregate's rate cluster-wide).
	cluster clusterOpts
	// overload enables the engine's overload-control plane (defaults:
	// pressure thresholds, harmonic shed classes, admission eviction).
	overload bool
	// auditRate/auditBurst, when burst > 0, arm the always-on conformance
	// auditor on the proxy aggregate: every enforced burst is checked
	// against the Theorem-1 envelope auditRate·Δt + auditBurst.
	auditRate  bcpqp.Rate
	auditBurst int64
}

// auditEnvelope sizes the plan-rate conformance envelope for a scheme: the
// plan rate plus a burst term covering the scheme's worst-case buffering
// (phantom capacity or bucket depth) with 2× slop, so a correct enforcer
// can never trip it while real over-admission — which grows without bound —
// still does. Returns burst 0 (audit off) for unknown schemes and policy
// trees, whose per-node ceilings are armed individually via ArmNodeAudit.
func auditEnvelope(name string, rate bcpqp.Rate, queues int) int64 {
	scheme, err := bcpqp.ParseScheme(name)
	if err != nil {
		return 0
	}
	const maxRTT = 100 * time.Millisecond
	switch scheme {
	case bcpqp.SchemeBCPQP:
		return 2 * int64(queues) * bcpqp.RecommendedQueueSize(rate, maxRTT)
	case bcpqp.SchemePQP:
		return 2 * int64(queues) * bcpqp.RenoQueueRequirement(rate, maxRTT)
	case bcpqp.SchemePolicer, bcpqp.SchemePolicerPlus, bcpqp.SchemeFairPolicer:
		bdp := int64(float64(rate) / 8 * maxRTT.Seconds())
		reno := bcpqp.RenoQueueRequirement(rate, maxRTT)
		if reno > bdp {
			bdp = reno
		}
		return 2 * (bdp + int64(bcpqp.MSS))
	default:
		return 0
	}
}

// serve runs the engine-hosted datapath until SIGTERM/SIGINT, then drains
// gracefully: the middlebox Close is deadline-bounded (drainTimeout), its
// CloseReport is logged, and the exit code is nonzero when the shutdown was
// unclean (wedged shards abandoned or queued packets shed). SIGHUP writes a
// warm-restart snapshot to snapshotPath (temp file + atomic rename); at
// startup an existing snapshot at that path is restored, so a restarted
// proxy resumes enforcement with the phantom occupancy, burst-control
// windows and token levels it had — instead of re-admitting a burst storm
// from every subscriber at once.
func serve(in net.PacketConn, forward string, enf bcpqp.Enforcer, opts proxyOpts) int {
	dst, err := net.ResolveUDPAddr("udp", forward)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcpqp-proxy:", err)
		return 1
	}
	out, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcpqp-proxy:", err)
		return 1
	}
	defer out.Close()

	var writeDropped, writeErrs atomic.Int64
	// Structured, rate-limited fault-plane logging: one line on the first
	// enforcer panic / eviction per aggregate, then every 64th, so a
	// crash-looping enforcer cannot flood stderr. Both hooks run on shard
	// goroutines and must not call back into the engine.
	var flog faultLog
	cfg := bcpqp.MiddleboxConfig{
		CloseTimeout: opts.drainTimeout,
		OnFault: func(id string, recovered any, _ []byte) {
			if id == "" {
				id = "(unattributed)"
			}
			if log, n := flog.note(id); log {
				fmt.Fprintf(os.Stderr, "bcpqp-proxy: event=fault aggregate=%q reason=%q count=%d\n",
					id, fmt.Sprint(recovered), n)
			}
		},
		OnEvict: func(id string, final bcpqp.Stats) {
			if log, n := flog.note("evict:" + id); log {
				fmt.Fprintf(os.Stderr, "bcpqp-proxy: event=evict aggregate=%q reason=%q count=%d accepted=%d dropped=%d\n",
					id, "idle-ttl", n, final.AcceptedPackets, final.DroppedPackets)
			}
		},
	}
	if opts.overload {
		cfg.Overload = bcpqp.OverloadConfig{Enabled: true, EvictOnFull: true}
	}
	// The admin listener switches the trace collector on: flight-recorder
	// rings, burst-latency histograms and per-aggregate meters feed
	// /metrics and /debug/trace. Without -http the engine runs unobserved
	// (fault counters still exist — they are engine-native).
	var col *bcpqp.Collector
	if opts.admin != nil {
		col = bcpqp.Observe(&cfg, bcpqp.ObserveOptions{})
	}
	mb := bcpqp.NewMiddlebox(cfg)
	emit := func(p bcpqp.Packet) {
		if err := writeTransient(out, p.Payload); err != nil {
			writeDropped.Add(1)
			if n := writeErrs.Add(1); n == 1 || n%1024 == 0 {
				fmt.Fprintf(os.Stderr, "bcpqp-proxy: transient write error (%d so far, dropping): %v\n", n, err)
			}
		}
	}
	// A policy tree registers node-addressable (per-node stats, in-band
	// node reconfiguration, the /metrics/tree export); a flat enforcer is
	// the degenerate one-node aggregate.
	var h bcpqp.AggregateHandle
	if tree, ok := enf.(bcpqp.TreeEnforcer); ok {
		h, err = mb.AddTree(proxyAggregate, tree, emit)
	} else {
		h, err = mb.Add(proxyAggregate, enf, emit)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcpqp-proxy:", err)
		return 1
	}
	if col != nil {
		// Wire enforcer-internal events (drops with reason, ECN marks,
		// magic fill/reclaim) into the flight recorder. Token-bucket
		// schemes expose no event hook; that only thins the trace.
		if err := bcpqp.ObserveAggregate(mb, proxyAggregate, col); err != nil && !errors.Is(err, bcpqp.ErrNotObservable) {
			fmt.Fprintln(os.Stderr, "bcpqp-proxy: observe:", err)
		}
	}
	if opts.auditBurst > 0 {
		// Always-on conformance audit: the plan envelope (with the
		// scheme's buffering slop) is live from the first packet, so
		// bcpqp_conformance_violations_total staying at zero is a
		// continuously-checked claim, not an assumption.
		if err := mb.ArmAudit(proxyAggregate, opts.auditRate, opts.auditBurst); err != nil {
			fmt.Fprintln(os.Stderr, "bcpqp-proxy: audit:", err)
		}
	}

	if opts.snapshotPath != "" {
		switch err := restoreSnapshot(mb, opts.snapshotPath); {
		case err == nil:
			fmt.Fprintf(os.Stderr, "bcpqp-proxy: warm restart from %s\n", opts.snapshotPath)
		case os.IsNotExist(err):
			// First start: nothing to restore.
		default:
			// A stale or incompatible snapshot must not block startup:
			// log and start cold.
			fmt.Fprintf(os.Stderr, "bcpqp-proxy: snapshot restore failed, starting cold: %v\n", err)
		}
	}

	// Cluster exchange: joined after the warm restart so the exchange
	// observes restored counters, and before traffic so a shared aggregate
	// starts at its conservative r/N share, never the full global rate.
	var node *bcpqp.ClusterNode
	if opts.cluster.enabled() {
		var stopCluster func()
		node, stopCluster, err = startCluster(mb, col, opts.cluster)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcpqp-proxy: cluster:", err)
			return 1
		}
		defer stopCluster()
		fmt.Fprintf(os.Stderr, "bcpqp-proxy: cluster node %q: %d peers, shared=%v\n",
			opts.cluster.nodeID, len(opts.cluster.peers), opts.cluster.shared)
	}
	if col != nil {
		defer startAdmin(opts.admin, mb, node).Close()
	}

	var stopping atomic.Bool
	sigDone := make(chan struct{})
	go func() {
		defer close(sigDone)
		for s := range opts.sig {
			switch s {
			case syscall.SIGHUP:
				if opts.snapshotPath == "" {
					fmt.Fprintln(os.Stderr, "bcpqp-proxy: SIGHUP ignored (no -snapshot path)")
					continue
				}
				if err := writeSnapshot(mb, opts.snapshotPath); err != nil {
					fmt.Fprintf(os.Stderr, "bcpqp-proxy: snapshot failed: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "bcpqp-proxy: snapshot written to %s\n", opts.snapshotPath)
				}
			default: // SIGTERM, SIGINT
				fmt.Fprintf(os.Stderr, "bcpqp-proxy: %v: draining\n", s)
				stopping.Store(true)
				return
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "bcpqp-proxy: %s -> %s (engine datapath)\n", in.LocalAddr(), dst)
	var (
		bufs [bcpqp.DefaultBurst][]byte
		pkts [bcpqp.DefaultBurst]bcpqp.Packet
	)
	for i := range bufs {
		bufs[i] = make([]byte, 65536)
	}
	readErr := func(err error) bool { // true = fatal
		var ne net.Error
		return !(errors.As(err, &ne) && ne.Timeout())
	}
	var kc keyCache
	exit := 0
	for !stopping.Load() {
		// First datagram of the burst: block briefly, then re-check the
		// stop flag so a signal is honoured within ~100ms even when idle.
		if err := in.SetReadDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
			fmt.Fprintln(os.Stderr, "bcpqp-proxy: set read deadline:", err)
			exit = 1
			break
		}
		n, from, err := in.ReadFrom(bufs[0])
		if err != nil {
			if readErr(err) {
				fmt.Fprintln(os.Stderr, "bcpqp-proxy: read:", err)
				exit = 1
				break
			}
			continue
		}
		// Each datagram's payload is copied out of the reusable read
		// buffer: the engine enforces asynchronously and the emit hook
		// relays from Packet.Payload.
		pkts[0] = bcpqp.Packet{
			Key:     kc.keyFor(from),
			Size:    n,
			Class:   bcpqp.NoClass,
			Payload: append([]byte(nil), bufs[0][:n]...),
		}
		count := 1
		// Opportunistic drain under ONE absolute deadline for the whole
		// burst: re-arming the deadline before every drain read costs a
		// timer update per datagram and lets a slow trickle stretch the
		// window far past drainDeadline.
		if err := in.SetReadDeadline(time.Now().Add(drainDeadline)); err == nil {
			for count < len(bufs) {
				n, from, err = in.ReadFrom(bufs[count])
				if err != nil {
					break
				}
				pkts[count] = bcpqp.Packet{
					Key:     kc.keyFor(from),
					Size:    n,
					Class:   bcpqp.NoClass,
					Payload: append([]byte(nil), bufs[count][:n]...),
				}
				count++
			}
		}
		if err := mb.SubmitBatch(h, pkts[:count]); err != nil {
			fmt.Fprintln(os.Stderr, "bcpqp-proxy: submit:", err)
			exit = 1
			break
		}
	}

	// Graceful drain: Remove's final-stats barrier enforces every burst
	// submitted above, then the deadline-bounded Close stops the shards.
	final, statErr := mb.Remove(proxyAggregate)
	rep := mb.Close()
	if statErr == nil {
		fmt.Fprintf(os.Stderr, "bcpqp-proxy: final stats: accepted %d (%d bytes), dropped %d, write-dropped %d\n",
			final.AcceptedPackets, final.AcceptedBytes, final.DroppedPackets, writeDropped.Load())
	}
	fmt.Fprintf(os.Stderr, "bcpqp-proxy: close report: clean=%v abandoned-shards=%d shed-packets=%d\n",
		rep.Clean, rep.AbandonedShards, rep.ShedPackets)
	if !rep.Clean {
		exit = 1
	}
	return exit
}

// writeSnapshot captures a warm-restart image of the engine and persists it
// atomically: temp file in the same directory, then rename, so a crash
// mid-write can never corrupt the previous snapshot.
func writeSnapshot(mb *bcpqp.Middlebox, path string) error {
	snap, err := mb.Snapshot()
	if err != nil {
		return err
	}
	blob, err := snap.MarshalBinary()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// restoreSnapshot loads a snapshot file into the engine. The error is
// os.IsNotExist-compatible when no snapshot exists yet.
func restoreSnapshot(mb *bcpqp.Middlebox, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap bcpqp.MiddleboxSnapshot
	if err := snap.UnmarshalBinary(blob); err != nil {
		return err
	}
	return mb.Restore(&snap)
}

// buildEnforcer constructs a bufferless enforcer for live traffic.
func buildEnforcer(name string, rate bcpqp.Rate, queues int) (bcpqp.Enforcer, error) {
	scheme, err := bcpqp.ParseScheme(name)
	if err != nil {
		return nil, err
	}
	const maxRTT = 100 * time.Millisecond
	switch scheme {
	case bcpqp.SchemeBCPQP:
		return bcpqp.NewBCPQP(bcpqp.BCPQPConfig{Rate: rate, Queues: queues, MaxRTT: maxRTT})
	case bcpqp.SchemePQP:
		return bcpqp.NewPQP(rate, queues, nil, 0, maxRTT)
	case bcpqp.SchemePolicer, bcpqp.SchemePolicerPlus:
		return bcpqp.NewPolicer(rate, 0, maxRTT)
	case bcpqp.SchemeFairPolicer:
		return bcpqp.NewFairPolicer(bcpqp.FairPolicerConfig{
			Rate: rate, Bucket: bcpqp.RenoQueueRequirement(rate, maxRTT), Flows: queues,
		})
	default:
		return nil, fmt.Errorf("scheme %v buffers packets and cannot run as a bufferless relay", scheme)
	}
}

// drainDeadline bounds the opportunistic follow-up reads that assemble a
// burst: after the first (blocking) datagram of a burst arrives, the relay
// keeps reading until the socket is empty for this long or the burst is
// full. It trades ≤200µs of added relay latency for batch amortization of
// the enforcer datapath — the userspace analogue of a DPDK rx_burst.
const drainDeadline = 200 * time.Microsecond

// relayRetries bounds how many times a transiently failing write to the
// out-socket is retried (with a short backoff) before the datagram is
// dropped and counted; the relay itself keeps running either way.
const (
	relayRetries    = 3
	relayRetryDelay = 200 * time.Microsecond
)

// transientNetErr reports whether a socket error is transient for a live
// relay: an ICMP-induced ECONNREFUSED on the connected out-socket (the
// forward target briefly down), an unreachable network/host during a
// routing flap, exhausted socket buffers, or a plain timeout. A policer
// must degrade on these — drop and count — not exit.
func transientNetErr(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ENETUNREACH) ||
		errors.Is(err, syscall.EHOSTUNREACH) ||
		errors.Is(err, syscall.ENOBUFS) ||
		errors.Is(err, syscall.EAGAIN) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// relay runs the datapath over the already-open listen socket until the
// socket closes. The caller owns in (passing it open avoids any
// close-and-rebind race for callers that need to learn the bound address
// first). stop, when non-nil, is polled to terminate gracefully (used by
// the selftest).
//
// Datagrams are received in bursts of up to bcpqp.DefaultBurst: one
// blocking read, then opportunistic reads that drain whatever the kernel
// has already queued. The whole burst is pushed through the enforcer with
// a single SubmitBatch call at one arrival timestamp — the same burst
// granularity a polling middlebox observes — and accepted datagrams are
// relayed in order.
//
// Transient errors on the connected out-socket (ECONNREFUSED from ICMP
// port-unreachable, ENETUNREACH, full socket buffers) are retried a bounded
// number of times and then dropped and counted — the relay only exits on
// hard errors or when its listen socket is closed.
func relay(in net.PacketConn, forward string, enf bcpqp.Enforcer, stop *atomic.Bool) error {
	dst, err := net.ResolveUDPAddr("udp", forward)
	if err != nil {
		return err
	}
	out, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		return err
	}
	defer out.Close()

	fmt.Fprintf(os.Stderr, "bcpqp-proxy: %s -> %s\n", in.LocalAddr(), dst)
	var (
		bufs     [bcpqp.DefaultBurst][]byte
		lens     [bcpqp.DefaultBurst]int
		pkts     [bcpqp.DefaultBurst]bcpqp.Packet
		verdicts [bcpqp.DefaultBurst]bcpqp.Verdict
	)
	for i := range bufs {
		bufs[i] = make([]byte, 65536)
	}
	start := time.Now()
	var kc keyCache
	var accepted, dropped, writeDropped, writeErrs int64
	for {
		if stop != nil && stop.Load() {
			fmt.Fprintf(os.Stderr, "bcpqp-proxy: accepted %d, dropped %d, write-dropped %d\n",
				accepted, dropped, writeDropped)
			return nil
		}
		// First datagram of the burst: wait for traffic (polling the
		// stop flag when one is wired up).
		var deadline time.Time
		if stop != nil {
			deadline = time.Now().Add(100 * time.Millisecond)
		}
		if err := in.SetReadDeadline(deadline); err != nil {
			return fmt.Errorf("set read deadline: %w", err)
		}
		n, from, err := in.ReadFrom(bufs[0])
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		lens[0] = n
		pkts[0] = bcpqp.Packet{Key: kc.keyFor(from), Size: n, Class: bcpqp.NoClass}
		count := 1
		// Opportunistic drain: collect datagrams the kernel already
		// buffered, under ONE absolute deadline for the whole burst (a
		// per-read deadline would cost a timer update per datagram and let
		// a trickle stretch the window far past drainDeadline).
		if err := in.SetReadDeadline(time.Now().Add(drainDeadline)); err != nil {
			return fmt.Errorf("set read deadline: %w", err)
		}
		for count < len(bufs) {
			n, from, err = in.ReadFrom(bufs[count])
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break
				}
				return err
			}
			lens[count] = n
			pkts[count] = bcpqp.Packet{Key: kc.keyFor(from), Size: n, Class: bcpqp.NoClass}
			count++
		}
		bcpqp.SubmitBatch(enf, time.Since(start), pkts[:count], verdicts[:count])
		for i := 0; i < count; i++ {
			switch verdicts[i] {
			case bcpqp.Transmit, bcpqp.TransmitCE:
				accepted++
				if err := writeTransient(out, bufs[i][:lens[i]]); err != nil {
					if !transientNetErr(err) {
						return fmt.Errorf("relay write: %w", err)
					}
					// Still failing after bounded retries: shed the
					// datagram, keep the relay alive, and say so
					// (first occurrence, then every 1024th).
					writeDropped++
					if writeErrs++; writeErrs == 1 || writeErrs%1024 == 0 {
						fmt.Fprintf(os.Stderr,
							"bcpqp-proxy: transient write error (%d so far, dropping): %v\n",
							writeErrs, err)
					}
				}
			default:
				dropped++
			}
		}
	}
}

// writeTransient writes one datagram with a bounded retry on transient
// errors; the final error (nil on success) is returned for accounting.
func writeTransient(out *net.UDPConn, buf []byte) error {
	var err error
	for attempt := 0; attempt <= relayRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(relayRetryDelay)
		}
		if _, err = out.Write(buf); err == nil || !transientNetErr(err) {
			return err
		}
	}
	return err
}

// keyFor derives a flow key from a UDP source address.
func keyFor(addr net.Addr) bcpqp.FlowKey {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return bcpqp.FlowKey{}
	}
	var ip uint32
	if v4 := ua.IP.To4(); v4 != nil {
		ip = uint32(v4[0])<<24 | uint32(v4[1])<<16 | uint32(v4[2])<<8 | uint32(v4[3])
	}
	return bcpqp.FlowKey{SrcIP: ip, SrcPort: uint16(ua.Port), Proto: 17}
}

// keyCache memoizes the last resolved source address → flow key: within a
// burst, consecutive datagrams overwhelmingly share a sender, so the common
// case is one port compare and one IP compare against a reused buffer
// instead of re-deriving the key per datagram. Single-goroutine, like the
// read loop that owns it.
type keyCache struct {
	ip   net.IP
	port int
	key  bcpqp.FlowKey
	ok   bool
}

func (c *keyCache) keyFor(addr net.Addr) bcpqp.FlowKey {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return bcpqp.FlowKey{}
	}
	if c.ok && ua.Port == c.port && ua.IP.Equal(c.ip) {
		return c.key
	}
	c.ip = append(c.ip[:0], ua.IP...)
	c.port = ua.Port
	c.key = keyFor(ua)
	c.ok = true
	return c.key
}

// runSelfTest demonstrates live enforcement over loopback: two senders — a
// greedy one and one paced at its fair share — push datagrams through the
// proxy to a counting sink.
func runSelfTest(rateMbps float64, scheme string, queues int, dur time.Duration) error {
	rate := bcpqp.Rate(rateMbps) * bcpqp.Mbps

	// Sink: counts received bytes per sending flow (first payload byte
	// carries the flow id).
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer sink.Close()
	var got [2]atomic.Int64
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := sink.ReadFrom(buf)
			if err != nil {
				return
			}
			if n > 0 && buf[0] < 2 {
				got[buf[0]].Add(int64(n))
			}
		}
	}()

	enf, err := buildEnforcer(scheme, rate, queues)
	if err != nil {
		return err
	}
	var stop atomic.Bool
	// Bind the proxy socket once and hand it to the relay still open: the
	// senders learn the bound address from the same socket the relay reads,
	// so there is no close-and-rebind window in which another process could
	// grab the port (or early datagrams could be lost).
	in, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer in.Close()
	listenAddr := in.LocalAddr().String()
	proxyDone := make(chan error, 1)
	go func() {
		proxyDone <- relay(in, sink.LocalAddr().String(), enf, &stop)
	}()
	time.Sleep(50 * time.Millisecond)

	// Sender 0: greedy, sends as fast as pacing at 2× the full rate.
	// Sender 1: well-behaved, paced at half the enforced rate.
	send := func(flow byte, pace time.Duration) {
		conn, err := net.Dial("udp", listenAddr)
		if err != nil {
			return
		}
		defer conn.Close()
		payload := make([]byte, 1200)
		payload[0] = flow
		deadline := time.Now().Add(dur)
		ticker := time.NewTicker(pace)
		defer ticker.Stop()
		for time.Now().Before(deadline) {
			<-ticker.C
			conn.Write(payload)
		}
	}
	fullGap := rate.DurationForBytes(1200)
	go send(0, fullGap/2) // 2× the enforced rate
	done := make(chan struct{})
	go func() { send(1, 2*fullGap); close(done) }() // half the rate (its fair share)

	<-done
	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	<-proxyDone

	fmt.Printf("enforced %.1f Mbps via %s for %v over loopback\n", rateMbps, scheme, dur)
	for f := 0; f < 2; f++ {
		mbps := float64(got[f].Load()) * 8 / dur.Seconds() / 1e6
		role := "greedy (2x rate)"
		if f == 1 {
			role = "paced (0.5x rate)"
		}
		fmt.Printf("  flow %d %-18s delivered %.2f Mbps\n", f, role, mbps)
	}
	total := float64(got[0].Load()+got[1].Load()) * 8 / dur.Seconds() / 1e6
	fmt.Printf("  total %.2f Mbps (enforced %.1f)\n", total, rateMbps)
	return nil
}
