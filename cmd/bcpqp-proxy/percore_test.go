package main

import (
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"bcpqp"
)

// runPerCore drives the percore datapath end to end over loopback: N
// senders overdrive a 5 Mbps bound, the sink counts what gets through, and
// SIGTERM must drain cleanly (exit 0).
func runPerCore(t *testing.T, cores int, forceSingle bool) {
	t.Helper()
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("sink: %v", err)
	}
	defer sink.Close()
	var sunkBytes atomic.Int64
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := sink.ReadFrom(buf)
			if err != nil {
				return
			}
			sunkBytes.Add(int64(n))
		}
	}()

	sig := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- servePerCore(perCoreOpts{
			cores:        cores,
			listen:       "127.0.0.1:0",
			forward:      sink.LocalAddr().String(),
			scheme:       "bc-pqp",
			rate:         5 * bcpqp.Mbps,
			queues:       16,
			drainTimeout: 3 * time.Second,
			sig:          sig,
			forceSingle:  forceSingle,
			ready:        ready,
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("servePerCore exited early with %d", code)
	case <-time.After(5 * time.Second):
		t.Fatalf("servePerCore never came up")
	}

	// Overdrive: 4 sources × 500 × 1200 B over ~400 ms ≈ 48 Mbps against
	// the 5 Mbps bound — the enforcer must shed most of it.
	const senders, perSender, size = 4, 500, 1200
	var sent atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("udp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			payload := make([]byte, size)
			for i := 0; i < perSender; i++ {
				if _, err := conn.Write(payload); err == nil {
					sent.Add(size)
				}
				if i%25 == 0 {
					time.Sleep(10 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond) // let in-flight bursts settle

	sig <- syscall.SIGTERM
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("servePerCore exit code %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("servePerCore did not drain after SIGTERM")
	}

	got, offered := sunkBytes.Load(), sent.Load()
	if got == 0 {
		t.Fatalf("sink received nothing (offered %d bytes)", offered)
	}
	if got >= offered*3/4 {
		t.Fatalf("sink received %d of %d offered bytes — enforcement did not bite", got, offered)
	}
	t.Logf("cores=%d forceSingle=%v: offered %d bytes, delivered %d", cores, forceSingle, offered, got)
}

func TestServePerCoreEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback datapath test")
	}
	runPerCore(t, 2, false)
}

func TestServePerCoreFallbackBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback datapath test")
	}
	runPerCore(t, 1, true)
}

func TestServePerCoreFailsFastOnBadScheme(t *testing.T) {
	done := make(chan int, 1)
	go func() {
		done <- servePerCore(perCoreOpts{
			cores:   1,
			listen:  "127.0.0.1:0",
			forward: "127.0.0.1:9",
			scheme:  "no-such-scheme",
			rate:    bcpqp.Mbps,
			queues:  4,
			sig:     make(chan os.Signal),
		})
	}()
	select {
	case code := <-done:
		if code != 1 {
			t.Fatalf("exit code %d, want 1", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("servePerCore with a bad scheme did not fail fast")
	}
}
