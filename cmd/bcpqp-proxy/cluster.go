// Cluster wiring for bcpqp-proxy: N proxies form a peer group that
// enforces the -rate bound CLUSTER-WIDE for the proxy aggregate when
// -shared is set. Each node starts at the conservative static share r/N
// and the budget exchange reclaims headroom from idle peers; on partition,
// silence or corruption every node is back at r/N within one exchange
// window, so the group can only ever under-admit, never over-admit.
//
//	bcpqp-proxy -listen :9000 -forward sink:9001 -rate 90 -shared \
//	    -node-id a -cluster-listen :7400 \
//	    -peers b=10.0.0.2:7400,c=10.0.0.3:7400
//
// The admin listener (-http) then serves /cluster with peer liveness and
// per-aggregate shares, /healthz reports degraded:true (still 200) while
// the exchange is on fallback shares, and /metrics carries the
// bcpqp_peer_* / bcpqp_cluster_* families.
package main

import (
	"fmt"
	"strings"

	"bcpqp"
)

// clusterOpts carries the parsed cluster flags into serve.
type clusterOpts struct {
	nodeID string
	peers  map[string]string // peer ID → host:port
	listen string            // exchange UDP listener
	shared bool              // enforce the proxy aggregate cluster-wide
	rate   bcpqp.Rate        // global bound r for the shared aggregate
	key    string            // shared frame-authentication secret ("" = trusted net)
}

func (o clusterOpts) enabled() bool { return o.nodeID != "" }

// parsePeers parses the -peers flag: comma-separated id=host:port entries.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	if s == "" {
		return peers, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, addr, ok := strings.Cut(entry, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("-peers entry %q: want id=host:port", entry)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("-peers: duplicate peer id %q", id)
		}
		peers[id] = addr
	}
	return peers, nil
}

// startCluster assembles the exchange: UDP transport, cluster node over the
// engine's proxy aggregate, metric attachment, receive loop, tick loop.
// The returned stop function tears everything down in reverse order.
func startCluster(mb *bcpqp.Middlebox, col *bcpqp.Collector, o clusterOpts) (*bcpqp.ClusterNode, func(), error) {
	tr, err := bcpqp.NewClusterTransport(o.listen, o.peers)
	if err != nil {
		return nil, nil, err
	}
	peerIDs := make([]string, 0, len(o.peers))
	for id := range o.peers {
		peerIDs = append(peerIDs, id)
	}
	var shared []bcpqp.SharedAggregate
	if o.shared {
		shared = append(shared, bcpqp.SharedAggregate{
			ID:   proxyAggregate,
			Rate: o.rate,
			Observed: func() (int64, bool) {
				st, err := mb.Stats(proxyAggregate)
				return st.AcceptedBytes, err == nil
			},
			Apply: func(share bcpqp.Rate, fallback bool) error {
				return mb.ApplyShare(proxyAggregate, share, fallback)
			},
			Snapshot: func() ([]byte, error) {
				return mb.SnapshotAggregate(proxyAggregate)
			},
		})
	}
	cfg := bcpqp.ClusterConfig{
		Self:      o.nodeID,
		Peers:     peerIDs,
		Transport: tr,
	}
	if o.key != "" {
		cfg.Key = []byte(o.key)
	}
	if col != nil { // a typed-nil Recorder would defeat the node's nil check
		cfg.Recorder = col
	}
	node, err := bcpqp.NewClusterNode(cfg, shared)
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	if o.shared && len(peerIDs) > 0 {
		// Pull the engine down to the conservative static share BEFORE any
		// traffic and before the exchange starts: the enforcer was built at
		// the full global rate, and safety requires every node to begin at
		// r/N — headroom is reclaimed by grants, never assumed.
		floor := o.rate / bcpqp.Rate(len(peerIDs)+1)
		if err := mb.ApplyShare(proxyAggregate, floor, true); err != nil {
			node.Close()
			tr.Close()
			return nil, nil, fmt.Errorf("apply initial share: %w", err)
		}
	}
	tr.Start(node.Deliver)
	mb.AttachMetricSource(node.MetricFamilies)
	node.Run()
	stop := func() {
		node.Close()
		tr.Close()
	}
	return node, stop, nil
}
