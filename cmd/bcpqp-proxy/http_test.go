package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"bcpqp"
)

// TestAdminEndpointsEndToEnd runs the full proxy (serve, engine datapath,
// admin listener) over loopback and scrapes every admin endpoint the way an
// operator's curl would: /healthz must go 200 with a JSON body, /metrics
// must expose the engine families in Prometheus text format, /debug/trace
// must return the flight recorder as JSON, /debug/vars must be valid
// expvar output, and /debug/pprof must serve its index. SIGTERM must still
// drain to exit 0 with the admin server attached.
func TestAdminEndpointsEndToEnd(t *testing.T) {
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	go func() {
		buf := make([]byte, 65536)
		for {
			if _, _, err := sink.ReadFrom(buf); err != nil {
				return
			}
		}
	}()

	in, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	admin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr().String()

	enf, err := buildEnforcer("bc-pqp", bcpqp.Rate(1)*bcpqp.Mbps, 8)
	if err != nil {
		t.Fatal(err)
	}
	sigc := make(chan os.Signal, 4)
	code := make(chan int, 1)
	go func() {
		code <- serve(in, sink.LocalAddr().String(), enf, proxyOpts{
			drainTimeout: 5 * time.Second,
			sig:          sigc,
			admin:        admin,
		})
	}()

	// Offered load far beyond the 1 Mbps plan, so the trace and counters
	// have drops to show.
	conn, err := net.Dial("udp", in.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 1200)
	for i := 0; i < 200; i++ {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		if i%20 == 0 {
			time.Sleep(time.Millisecond)
		}
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// The admin server starts with serve; poll /healthz until it answers.
	deadline := time.Now().Add(5 * time.Second)
	var healthStatus int
	var healthBody string
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				healthStatus, healthBody = resp.StatusCode, string(body)
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("admin listener never answered /healthz: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if healthStatus != http.StatusOK {
		t.Fatalf("/healthz = %d, body %s", healthStatus, healthBody)
	}
	var health struct {
		Healthy bool `json:"healthy"`
		Shards  []struct {
			State string `json:"state"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(healthBody), &health); err != nil {
		t.Fatalf("/healthz body not JSON: %v\n%s", err, healthBody)
	}
	if !health.Healthy || len(health.Shards) == 0 {
		t.Errorf("/healthz = %+v, want healthy with shards", health)
	}

	// /metrics: Prometheus exposition with engine, shard and aggregate
	// families, and only finite sample values.
	status, metrics := get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics = %d", status)
	}
	for _, want := range []string{
		"bcpqp_aggregates",
		`bcpqp_shard_state{shard="0"}`,
		`bcpqp_aggregate_accepted_packets_total{aggregate="proxy"}`,
		"bcpqp_burst_enforce_seconds_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(metrics, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if val == "NaN" || strings.HasSuffix(val, "Inf") {
			t.Errorf("/metrics non-finite value: %q", line)
		}
	}

	// /debug/trace: the flight recorder decodes and holds sampled bursts
	// for the proxy aggregate.
	status, trace := get("/debug/trace")
	if status != http.StatusOK {
		t.Fatalf("/debug/trace = %d", status)
	}
	var dump struct {
		Events []struct {
			Kind      string `json:"kind"`
			Aggregate string `json:"aggregate"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(trace), &dump); err != nil {
		t.Fatalf("/debug/trace body not JSON: %v", err)
	}
	var bursts int
	for _, ev := range dump.Events {
		if ev.Kind == "burst" && ev.Aggregate == proxyAggregate {
			bursts++
		}
	}
	if bursts == 0 {
		t.Errorf("/debug/trace holds no sampled bursts for %q among %d events", proxyAggregate, len(dump.Events))
	}

	// /debug/vars: valid expvar JSON including the published engine metrics.
	status, vars := get("/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars = %d", status)
	}
	var varsDoc map[string]any
	if err := json.Unmarshal([]byte(vars), &varsDoc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := varsDoc["bcpqp"]; !ok {
		t.Error("/debug/vars missing published bcpqp metrics")
	}

	// /debug/pprof: index page served off the private mux.
	status, index := get("/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(index, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, want profile index", status)
	}

	// Graceful drain still works with the admin server attached.
	sigc <- syscall.SIGTERM
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("drain with admin server exited %d, want 0", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("proxy did not exit within 10s of SIGTERM")
	}
}

// TestHealthzOverloadDegradedBut200 pins the load-balancer contract during
// an overload: an engine whose overload plane is ACTIVE (shedding the
// lowest-priority traffic to survive a flood) reports degraded=true on
// /healthz but keeps answering 200 — evicting a shedding node would hand
// the flood to a healthier-looking peer and take that one down too. Only a
// wedged shard (watchdog: has work, no progress) turns /healthz 503.
func TestHealthzOverloadDegradedBut200(t *testing.T) {
	gate := make(chan struct{})
	mb := bcpqp.NewMiddlebox(bcpqp.MiddleboxConfig{
		Shards:           1,
		QueueDepth:       8,
		FlushBurst:       1,
		WatchdogInterval: time.Millisecond,
		CloseTimeout:     5 * time.Second,
		Overload:         bcpqp.OverloadConfig{Enabled: true},
	})
	defer mb.Close()
	defer close(gate) // LIFO: unblock the emit BEFORE Close so the drain is fast
	enf, err := buildEnforcer("bc-pqp", bcpqp.Rate(1000)*bcpqp.Mbps, 8)
	if err != nil {
		t.Fatal(err)
	}
	h, err := mb.Add("plug", enf, func(p bcpqp.Packet) { <-gate })
	if err != nil {
		t.Fatal(err)
	}
	// Pack the shard ring behind the blocked emit until pressure trips the
	// plane.
	pkt := [1]bcpqp.Packet{{Key: bcpqp.FlowKey{SrcIP: 1, Proto: 17}, Size: bcpqp.MSS}}
	for i := 0; i < 16; i++ {
		mb.SubmitBatch(h, pkt[:])
	}
	deadline := time.Now().Add(5 * time.Second)
	for !mb.Health().Overload.Active {
		if time.Now().After(deadline) {
			t.Fatal("overload plane never activated")
		}
		time.Sleep(time.Millisecond)
	}

	srv := httptest.NewServer(newAdminMux(mb, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during overload = %d, want 200 (degraded, not down)", resp.StatusCode)
	}
	var body struct {
		Healthy  bool `json:"healthy"`
		Degraded bool `json:"degraded"`
		Overload *struct {
			Active       bool    `json:"active"`
			Pressure     float64 `json:"pressure"`
			PriorityShed int64   `json:"priority_shed_packets"`
		} `json:"overload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Degraded {
		t.Error("degraded=false while the overload plane is active, want true")
	}
	if body.Overload == nil || !body.Overload.Active {
		t.Errorf("overload block missing or inactive in /healthz body: %+v", body.Overload)
	}
	if body.Overload != nil && body.Overload.Pressure <= 0 {
		t.Errorf("overload pressure %v, want > 0 under a packed ring", body.Overload.Pressure)
	}
}

// TestFaultLogRateLimits pins the structured fault log's cadence: first
// occurrence always logs, then every 64th, independently per key.
func TestFaultLogRateLimits(t *testing.T) {
	var l faultLog
	var logged int
	for i := 0; i < 2*faultLogEvery; i++ {
		if ok, _ := l.note("agg-a"); ok {
			logged++
		}
	}
	if logged != 3 { // 1st, 64th, 128th
		t.Errorf("agg-a logged %d times over %d faults, want 3", logged, 2*faultLogEvery)
	}
	if ok, n := l.note("agg-b"); !ok || n != 1 {
		t.Errorf("first fault of a new key: log=%v n=%d, want true 1", ok, n)
	}
}

// TestDebugAuditEndpoint arms a conformance auditor with a deliberately
// understated envelope, pushes traffic through, and asserts /debug/audit
// reports the armed auditor with nonzero violations and exact counters.
func TestDebugAuditEndpoint(t *testing.T) {
	mb := bcpqp.NewMiddlebox(bcpqp.MiddleboxConfig{Shards: 1, QueueDepth: 256, FlushBurst: 64})
	defer mb.Close()
	enf, err := buildEnforcer("tbf", bcpqp.Rate(100)*bcpqp.Mbps, 8)
	if err != nil {
		t.Fatal(err)
	}
	h, err := mb.Add("audited", enf, func(bcpqp.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	// Envelope claims 1 kbps with a tiny burst while the enforcer admits
	// 100 Mbps: every accepted burst breaches it.
	if err := mb.ArmAudit("audited", bcpqp.Rate(1000), 64); err != nil {
		t.Fatal(err)
	}
	pkts := make([]bcpqp.Packet, 64)
	for i := range pkts {
		pkts[i] = bcpqp.Packet{Key: bcpqp.FlowKey{SrcIP: uint32(i), Proto: 17}, Size: bcpqp.MSS}
	}
	for i := 0; i < 20; i++ {
		if err := mb.SubmitBatch(h, pkts); err != nil {
			t.Fatal(err)
		}
	}
	mb.Stats("audited") // in-band barrier: all submitted batches enforced

	srv := httptest.NewServer(newAdminMux(mb, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/audit = %d", resp.StatusCode)
	}
	var body struct {
		Armed           int   `json:"armed"`
		ViolationsTotal int64 `json:"violations_total"`
		BurstLatencyNS  *struct {
			Count uint64 `json:"count"`
			P99   int64  `json:"p99"`
		} `json:"burst_enforce_latency_ns"`
		Audits []struct {
			Aggregate     string `json:"aggregate"`
			Node          int32  `json:"node"`
			EnvelopeBps   int64  `json:"envelope_bps"`
			AcceptedBytes int64  `json:"accepted_bytes"`
			Violations    int64  `json:"violations"`
		} `json:"audits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Armed != 1 || len(body.Audits) != 1 {
		t.Fatalf("armed=%d audits=%d, want 1/1", body.Armed, len(body.Audits))
	}
	a := body.Audits[0]
	if a.Aggregate != "audited" || a.Node != -1 || a.EnvelopeBps != 1000 {
		t.Errorf("audit row %+v, want whole-aggregate envelope at 1000 bps", a)
	}
	if a.Violations == 0 || body.ViolationsTotal != a.Violations {
		t.Errorf("violations=%d total=%d, want nonzero and equal", a.Violations, body.ViolationsTotal)
	}
	st, err := mb.Stats("audited")
	if err != nil {
		t.Fatal(err)
	}
	if a.AcceptedBytes != st.AcceptedBytes {
		t.Errorf("audited accepted %d bytes, engine counted %d", a.AcceptedBytes, st.AcceptedBytes)
	}
	// No Observer is attached, so the latency digest must be omitted rather
	// than rendered as a zero-count object.
	if body.BurstLatencyNS != nil {
		t.Errorf("burst_enforce_latency_ns = %+v, want omitted without an Observer", body.BurstLatencyNS)
	}
}
