// Policy-tree configuration for bcpqp-proxy (-tree): a JSON spec file
// describing a whole hierarchy of rate limits — tenant link → plans →
// subscribers — enforced as one aggregate instead of the flat -rate/-scheme
// enforcer. Datagrams are spread over the tree's leaves by source-key hash
// (the same classification a flat multi-queue scheme applies), so each
// leaf's assured rate and every level's ceiling bind per source bucket.
//
// Spec format — a JSON array in topological order (the root first, every
// node after its parent):
//
//	[
//	  {"name": "tenant", "ceiling": {"scheme": "bc-pqp", "rate_mbps": 50, "queues": 16}},
//	  {"name": "gold",   "parent": 0, "ceiling": {"scheme": "policer", "rate_mbps": 20}},
//	  {"name": "alice",  "parent": 1, "assured_mbps": 8},
//	  {"name": "bob",    "parent": 1, "assured_mbps": 8}
//	]
//
// "parent" defaults to 0 (handy: most nodes hang off the root) and must be
// -1 on the first node. "ceiling" is optional per node, as is
// "assured_mbps" (it enables HTB-style borrowing at that node) and
// "burst_bytes" (assured bucket capacity). Ceiling schemes are the proxy's
// bufferless set: policer, policer+, fairpolicer, pqp, bc-pqp.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"bcpqp"
)

// treeNodeJSON is one node of the -tree spec file.
type treeNodeJSON struct {
	Name    string `json:"name"`
	Parent  *int   `json:"parent,omitempty"`
	Ceiling *struct {
		Scheme   string  `json:"scheme"`
		RateMbps float64 `json:"rate_mbps"`
		Queues   int     `json:"queues,omitempty"`
	} `json:"ceiling,omitempty"`
	AssuredMbps float64 `json:"assured_mbps,omitempty"`
	BurstBytes  int64   `json:"burst_bytes,omitempty"`
}

// loadTreeSpec reads a -tree JSON file and builds the policy tree.
func loadTreeSpec(path string, defaultQueues int) (*bcpqp.PolicyTree, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseTreeSpec(blob, defaultQueues)
}

// parseTreeSpec builds a policy tree from spec-file bytes. The enforcer
// stages behind each ceiling come from the same bufferless constructor set
// as the flat -scheme flag; defaultQueues applies when a ceiling omits
// "queues".
func parseTreeSpec(blob []byte, defaultQueues int) (*bcpqp.PolicyTree, error) {
	var nodes []treeNodeJSON
	if err := json.Unmarshal(blob, &nodes); err != nil {
		return nil, fmt.Errorf("tree spec: %w", err)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("tree spec: empty")
	}
	spec := make([]bcpqp.PolicyTreeNode, len(nodes))
	for i, n := range nodes {
		parent := 0
		if i == 0 {
			parent = -1
		}
		if n.Parent != nil {
			parent = *n.Parent
		}
		var stage bcpqp.CascadeStage
		if c := n.Ceiling; c != nil {
			queues := c.Queues
			if queues <= 0 {
				queues = defaultQueues
			}
			enf, err := buildEnforcer(c.Scheme, bcpqp.Rate(c.RateMbps)*bcpqp.Mbps, queues)
			if err != nil {
				return nil, fmt.Errorf("tree spec node %d (%s): %w", i, n.Name, err)
			}
			s, ok := enf.(bcpqp.CascadeStage)
			if !ok {
				return nil, fmt.Errorf("tree spec node %d (%s): scheme %s cannot serve as a tree ceiling",
					i, n.Name, c.Scheme)
			}
			stage = s
		}
		spec[i] = bcpqp.PolicyTreeNode{
			Name:    n.Name,
			Parent:  parent,
			Stage:   stage,
			Assured: bcpqp.Rate(n.AssuredMbps) * bcpqp.Mbps,
			Burst:   n.BurstBytes,
		}
	}
	tree, err := bcpqp.NewPolicyTree(spec)
	if err != nil {
		return nil, fmt.Errorf("tree spec: %w", err)
	}
	return tree, nil
}
