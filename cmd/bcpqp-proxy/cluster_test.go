package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"bcpqp"
)

// freeUDPPort reserves an OS-assigned UDP port and releases it for the
// caller to bind. The tiny close-and-rebind race is the standard trade for
// needing the address BEFORE the component that binds it exists (both ends
// of the exchange must know each other's port up front).
func freeUDPPort(t *testing.T) string {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := c.LocalAddr().String()
	c.Close()
	return addr
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("b=10.0.0.2:7400, c=10.0.0.3:7400,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers["b"] != "10.0.0.2:7400" || peers["c"] != "10.0.0.3:7400" {
		t.Fatalf("parsed %v", peers)
	}
	for _, bad := range []string{"nocolonhere", "=addr", "id=", "b=x,b=y"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
	if peers, err := parsePeers(""); err != nil || len(peers) != 0 {
		t.Errorf("empty spec: %v, %v", peers, err)
	}
}

// TestClusterProxyEndToEnd: a full proxy in cluster mode (serve, engine,
// admin endpoints, UDP exchange transport) peered over loopback with a
// facade-level cluster node. The proxy must start degraded on its
// conservative share, report that on /healthz with a 200 (degraded, not
// down), establish the exchange once the peer speaks, expose peer state on
// /cluster and the cluster metric families on /metrics, and still drain to
// exit 0 on SIGTERM.
func TestClusterProxyEndToEnd(t *testing.T) {
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	go func() {
		buf := make([]byte, 65536)
		for {
			if _, _, err := sink.ReadFrom(buf); err != nil {
				return
			}
		}
	}()
	in, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	admin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr().String()

	addrA, addrB := freeUDPPort(t), freeUDPPort(t)
	enf, err := buildEnforcer("bc-pqp", bcpqp.Rate(8)*bcpqp.Mbps, 8)
	if err != nil {
		t.Fatal(err)
	}
	sigc := make(chan os.Signal, 4)
	code := make(chan int, 1)
	go func() {
		code <- serve(in, sink.LocalAddr().String(), enf, proxyOpts{
			drainTimeout: 5 * time.Second,
			sig:          sigc,
			admin:        admin,
			cluster: clusterOpts{
				nodeID: "a",
				peers:  map[string]string{"b": addrB},
				listen: addrA,
				shared: true,
				rate:   bcpqp.Rate(8) * bcpqp.Mbps,
				key:    "proxy-e2e-secret",
			},
		})
	}()

	get := func(path string) (int, []byte) {
		t.Helper()
		var lastErr error
		for i := 0; i < 50; i++ {
			resp, err := http.Get(base + path)
			if err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				return resp.StatusCode, body
			}
			lastErr = err
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("GET %s never succeeded: %v", path, lastErr)
		return 0, nil
	}

	// Alone, the proxy must be on its conservative fallback share: healthy
	// (200) but degraded, with the peer not yet heard.
	var hz struct {
		Healthy  bool `json:"healthy"`
		Degraded bool `json:"degraded"`
	}
	status, body := get("/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz = %d before peer: %s", status, body)
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("/healthz body: %v", err)
	}
	if !hz.Healthy || !hz.Degraded {
		t.Fatalf("/healthz before peer: %+v (want healthy AND degraded)", hz)
	}
	var cl struct {
		Self     string `json:"self"`
		Degraded bool   `json:"degraded"`
		Peers    []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"peers"`
		Shared []struct {
			ID         string  `json:"id"`
			FloorBps   float64 `json:"floor_bps"`
			AppliedBps float64 `json:"applied_bps"`
			Fallback   bool    `json:"fallback"`
		} `json:"shared"`
	}
	_, body = get("/cluster")
	if err := json.Unmarshal(body, &cl); err != nil {
		t.Fatalf("/cluster body: %v\n%s", err, body)
	}
	if cl.Self != "a" || len(cl.Peers) != 1 || cl.Peers[0].ID != "b" || len(cl.Shared) != 1 {
		t.Fatalf("/cluster: %s", body)
	}
	if !cl.Shared[0].Fallback || cl.Shared[0].ID != proxyAggregate {
		t.Fatalf("/cluster shared before peer: %s", body)
	}

	// Bring up peer b (idle: observed 0, surplus to grant).
	trB, err := bcpqp.NewClusterTransport(addrB, map[string]string{"a": addrA})
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()
	var bShare atomic.Int64
	nodeB, err := bcpqp.NewClusterNode(bcpqp.ClusterConfig{
		Self: "b", Peers: []string{"a"}, Transport: trB,
		Key: []byte("proxy-e2e-secret"),
	}, []bcpqp.SharedAggregate{{
		ID:       proxyAggregate,
		Rate:     bcpqp.Rate(8) * bcpqp.Mbps,
		Observed: func() (int64, bool) { return 0, true },
		Apply: func(r bcpqp.Rate, fb bool) error {
			bShare.Store(int64(r))
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	trB.Start(nodeB.Deliver)
	nodeB.Run()

	// The exchange establishes within a few 250 ms windows.
	deadline := time.Now().Add(8 * time.Second)
	for {
		_, body = get("/cluster")
		if err := json.Unmarshal(body, &cl); err != nil {
			t.Fatalf("/cluster body: %v", err)
		}
		if !cl.Degraded && cl.Peers[0].State == "alive" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("exchange never established: %s", body)
		}
		time.Sleep(100 * time.Millisecond)
	}
	status, body = get("/healthz")
	if err := json.Unmarshal(body, &hz); err != nil || status != http.StatusOK {
		t.Fatalf("/healthz after peer: %d %v", status, err)
	}
	if !hz.Healthy || hz.Degraded {
		t.Fatalf("/healthz after peer: %+v (want healthy, not degraded)", hz)
	}

	// The engine /metrics exposition now carries the cluster families.
	_, body = get("/metrics")
	for _, fam := range []string{"bcpqp_peer_state", "bcpqp_cluster_share_bps", "bcpqp_cluster_fallback"} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}

	sigc <- syscall.SIGTERM
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("serve exit code %d", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain after SIGTERM")
	}
}
