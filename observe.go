package bcpqp

import (
	"errors"
	"expvar"
	"fmt"
	"io"
	"time"

	"bcpqp/internal/mbox"
	"bcpqp/internal/obs"
	"bcpqp/internal/phantom"
)

// Collector is the observability hub a Middlebox reports into: per-shard
// flight-recorder rings of trace events, per-burst enforcement-latency
// histograms, and per-aggregate traffic counters with windowed rate
// meters. Attach one with Observe before NewMiddlebox; read it back
// through Middlebox.TraceDump and Middlebox.Metrics. All recording paths
// are lock-free and allocation-free — SubmitBatch with observability
// enabled stays zero-allocation.
type Collector = obs.Collector

// ObserveOptions sizes the observability layer: flight-recorder ring
// depth, KindBurst trace sampling cadence, and rate-meter window/horizon.
// The zero value applies defaults (1024-event rings, 1-in-16 burst
// sampling, the paper's 250 ms measurement window).
type ObserveOptions = obs.Options

// TraceRecorder consumes trace events; the Collector's rings implement it.
// Custom recorders can be fed by replaying TraceDump output.
type TraceRecorder = obs.Recorder

// TraceEvent is one flight-recorder entry from Middlebox.TraceDump: the
// raw event (global sequence, wall and virtual timestamps, kind, shard,
// aggregate handle, kind-specific A/B/C payload) plus the aggregate's
// string id when its handle still resolves.
type TraceEvent = mbox.TraceEvent

// TraceKind identifies what a TraceEvent records.
type TraceKind = obs.Kind

// Trace event kinds recorded by an observed Middlebox.
const (
	// TraceBurst: one sampled enforced run (A=accepted packets,
	// B=dropped packets, C=total bytes).
	TraceBurst = obs.KindBurst
	// TraceDrop: a phantom-queue drop (A=bytes, B=queue occupancy,
	// C=DropReason), from an aggregate wired with ObserveAggregate.
	TraceDrop = obs.KindDrop
	// TraceMark: an ECN CE mark (A=bytes, B=queue occupancy).
	TraceMark = obs.KindMark
	// TraceMagicFill / TraceMagicReclaim: §5.2 burst control filled or
	// reclaimed magic bytes (A=magic bytes, B=queue occupancy).
	TraceMagicFill    = obs.KindMagicFill
	TraceMagicReclaim = obs.KindMagicReclaim
	// TraceRateUpdate / TracePolicyUpdate: a live reconfiguration was
	// applied in-band.
	TraceRateUpdate   = obs.KindRateUpdate
	TracePolicyUpdate = obs.KindPolicyUpdate
	// TraceQuarantine / TraceReinstate: an aggregate's panic circuit
	// breaker opened (A=panic count) or was closed again.
	TraceQuarantine = obs.KindQuarantine
	TraceReinstate  = obs.KindReinstate
	// TraceRemove / TraceEvict: an aggregate left the registry by Remove
	// or by the idle-TTL sweeper.
	TraceRemove = obs.KindRemove
	TraceEvict  = obs.KindEvict
	// TraceFailover: a control operation failed over to the priority
	// lane against a saturated shard.
	TraceFailover = obs.KindFailover
	// TraceShed: a full shard ring shed a burst (A=packets).
	TraceShed = obs.KindShed
	// TracePanic: a recovered enforcer/emit panic.
	TracePanic = obs.KindPanic
	// TracePeerState: a cluster peer moved on the liveness ladder
	// (A=previous state, B=new state, C=peer index).
	TracePeerState = obs.KindPeerState
	// TraceShareApply: a cluster rebalance applied a per-node share via
	// the in-band rate-update lane (A=share bits/sec, B=1 on fallback).
	TraceShareApply = obs.KindShareApply
	// TraceOverload: the overload plane engaged (A=1) or disengaged
	// (A=0); B=composite pressure in milli-units, C=shed-rate EWMA in
	// packets/sec.
	TraceOverload = obs.KindOverload
	// TraceViolation: an armed conformance auditor caught accepted bytes
	// exceeding the declared r·Δt + B envelope (A=deficit bytes,
	// B=envelope rate in bits/sec, C=cumulative accepted bytes).
	// Coalesced at the burst-sampling cadence while a breach persists.
	TraceViolation = obs.KindViolation
)

// DropReason qualifies a TraceDrop event (carried in its C field): the
// arrival filter, RED early detection, or drop-tail on the full phantom
// queue.
type DropReason = phantom.DropReason

// Phantom-queue drop reasons.
const (
	DropNone      = phantom.DropNone
	DropFilter    = phantom.DropFilter
	DropRED       = phantom.DropRED
	DropQueueFull = phantom.DropQueueFull
)

// MetricsSnapshot is a point-in-time metrics export from
// Middlebox.Metrics, ready for serialization with WritePrometheus or
// MetricsVar.
type MetricsSnapshot = obs.Snapshot

// MetricsFamily is one metric family within a MetricsSnapshot.
type MetricsFamily = obs.Family

// MetricsSample is one labeled sample within a MetricsFamily; MetricsLabel
// is one of its label pairs. Exported so embedders can build families for
// Middlebox.AttachMetricSource without importing internal packages.
type (
	MetricsSample = obs.Sample
	MetricsLabel  = obs.Label
)

// AuditEntry is one armed conformance auditor's state from
// Middlebox.AuditReport: identity (aggregate, node, label), exact envelope
// counters, and the slack / rate-error distributions.
type AuditEntry = mbox.AuditEntry

// AuditCounters is the exact counter block of one conformance auditor —
// allowed vs accepted bytes, worst slack and deficit, violation and
// window counts.
type AuditCounters = obs.AuditCounters

// DigestSnapshot is a point-in-time copy of a mergeable log-bucket
// quantile digest (burst-latency, slack, rate-error distributions). Merge
// is exact and associative; Quantile carries the digest's ≤12.5% relative
// error.
type DigestSnapshot = obs.DigestSnapshot

// Observe attaches a new Collector to a middlebox configuration. Call it
// on the config before NewMiddlebox:
//
//	cfg := bcpqp.MiddleboxConfig{}
//	col := bcpqp.Observe(&cfg, bcpqp.ObserveOptions{})
//	mb := bcpqp.NewMiddlebox(cfg)
func Observe(cfg *MiddleboxConfig, opts ObserveOptions) *Collector {
	c := obs.NewCollector(opts)
	cfg.Observer = c
	return c
}

// ObserveAggregate wires a PQP/BC-PQP aggregate's enforcer-internal events
// (drops with reason, ECN marks, §5.2 magic fill/reclaim) into the
// collector's flight recorder. The hook is installed in-band on the owning
// shard goroutine, so it is safe during full-rate traffic. Accept events
// are intentionally not traced — the per-aggregate counters and rate
// meters already cover admitted traffic, and tracing per-packet accepts
// would dominate the ring. Drop/mark/magic events are recorded unsampled:
// they are the rare, diagnostic transitions the recorder exists for.
//
// The aggregate's enforcer must be a *PQP; ErrNotObservable otherwise
// (wrap a cascade's member queues before composing them instead).
func ObserveAggregate(mb *Middlebox, id string, c *Collector) error {
	if c == nil {
		return fmt.Errorf("bcpqp: nil collector for %q", id)
	}
	h, err := mb.Lookup(id)
	if err != nil {
		return err
	}
	agg := int64(h)
	return mb.Update(id, func(now time.Duration, enf Enforcer) error {
		pq, ok := enf.(*phantom.PQP)
		if !ok {
			return fmt.Errorf("bcpqp: aggregate %q (%T): %w", id, enf, ErrNotObservable)
		}
		pq.SetOnEvent(func(ev phantom.Event) {
			var kind TraceKind
			switch ev.Kind {
			case phantom.EventDrop:
				kind = TraceDrop
			case phantom.EventMark:
				kind = TraceMark
			case phantom.EventMagicFill:
				kind = TraceMagicFill
			case phantom.EventMagicReclaim:
				kind = TraceMagicReclaim
			default:
				return // accepts: counted, not traced
			}
			c.Record(obs.Event{
				Kind:  kind,
				VT:    int64(ev.Time),
				Shard: -1, // aux-ring event: the hook has no shard attribution
				Agg:   agg,
				A:     ev.Bytes,
				B:     ev.QueueLen,
				C:     int64(ev.Reason),
			})
		})
		return nil
	})
}

// ErrNotObservable reports an ObserveAggregate call against an enforcer
// that exposes no event hook (only PQP/BC-PQP enforcers do). Test with
// errors.Is.
var ErrNotObservable = errors.New("enforcer exposes no event hook")

// WritePrometheus serializes a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Names are sanitized, label values
// escaped, and non-finite values written as 0, so the output always parses.
func WritePrometheus(w io.Writer, s MetricsSnapshot) error {
	return obs.WritePrometheus(w, s)
}

// MetricsVar adapts a middlebox's metrics to expvar.Var, for publishing
// under /debug/vars:
//
//	expvar.Publish("bcpqp", bcpqp.MetricsVar(mb))
func MetricsVar(mb *Middlebox) expvar.Var {
	return obs.Var(func() obs.Snapshot { return mb.Metrics() })
}
