// Package bcpqp implements policy-rich traffic rate enforcement with
// burst-controlled phantom queues (BC-PQP), reproducing "Efficient
// Policy-Rich Rate Enforcement with Phantom Queues" (SIGCOMM 2024), along
// with every baseline the paper compares against and the simulation
// infrastructure used to evaluate them.
//
// # The datapath API
//
// An Enforcer polices one traffic aggregate: Submit hands it a packet at a
// (virtual or real) timestamp and returns Transmit, Drop, or Queued. The
// flagship constructor is NewBCPQP:
//
//	enf, err := bcpqp.NewBCPQP(bcpqp.BCPQPConfig{
//		Rate:   15 * bcpqp.Mbps,
//		Queues: 16, // per-flow fairness across 16 hash classes
//	})
//	...
//	if enf.Submit(now, pkt) == bcpqp.Transmit {
//		forward(pkt)
//	}
//
// Rate-sharing policies beyond fairness are built with the policy
// constructors (Fair, WeightedFair, StrictPriority, and the Weighted /
// Priority / Leaf node combinators for nested hierarchies).
//
// Baselines from the paper are available under the same interface:
// NewPolicer (token bucket), NewFairPolicer, and NewShaper (the buffering
// reference).
//
// # The simulation API
//
// NewSimulation wires an enforcer into a virtual-time network (TCP senders
// with Reno/Cubic/BBR/Vegas congestion control, propagation delays,
// optional secondary bottleneck) so enforcement behaviour can be evaluated
// end-to-end. See examples/ and internal/experiments for complete usages,
// and cmd/experiments for the paper's figure reproductions.
package bcpqp

import (
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/fairpolicer"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/shaper"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// Core datapath types, re-exported from the implementation packages.
type (
	// Packet is the unit of work submitted to an enforcer.
	Packet = packet.Packet
	// FlowKey is a 5-tuple flow identity used for classification.
	FlowKey = packet.FlowKey
	// Verdict is an enforcer's decision for a packet.
	Verdict = enforcer.Verdict
	// Enforcer is a rate limiter for one traffic aggregate.
	Enforcer = enforcer.Enforcer
	// Stats is accept/drop accounting shared by all enforcers.
	Stats = enforcer.Stats
	// Rate is a traffic rate in bits per second.
	Rate = units.Rate
)

// Reconfigurer is the hot-reconfiguration capability: enforcers that
// implement it (PQP/BC-PQP, Policer, FairPolicer, Cascade) change their
// enforced rate or rate-sharing policy in place, preserving admission state
// (phantom occupancy, burst-control windows, token levels) so the Theorem 1
// bound holds piecewise across the change. Middlebox.SetRate/SetPolicy
// apply it in-band on the owning shard.
type Reconfigurer = enforcer.Reconfigurer

// Snapshotter is the warm-restart capability: enforcers that implement it
// serialize their admission state to a versioned blob and restore it into
// an identically configured instance. Middlebox.Snapshot/Restore build on
// it.
type Snapshotter = enforcer.Snapshotter

// ErrNoPolicy reports SetPolicy on an enforcer without a policy dimension
// (e.g. a token bucket). Test with errors.Is.
var ErrNoPolicy = enforcer.ErrNoPolicy

// Verdicts.
const (
	Transmit   = enforcer.Transmit
	Drop       = enforcer.Drop
	Queued     = enforcer.Queued
	TransmitCE = enforcer.TransmitCE
)

// DefaultBurst is the burst size the batch datapath is tuned for (the
// rx_burst size of a DPDK-style middlebox).
const DefaultBurst = enforcer.DefaultBurst

// NoClass marks packets classified by flow-key hash.
const NoClass = packet.NoClass

// MSS is the segment size used throughout (bytes).
const MSS = units.MSS

// Rate units.
const (
	Kbps = units.Kbps
	Mbps = units.Mbps
	Gbps = units.Gbps
)

// PQP is a phantom-queue policer (burst-controlled when configured as
// BC-PQP). It implements Enforcer.
type PQP = phantom.PQP

// BCPQPConfig configures NewBCPQP.
type BCPQPConfig struct {
	// Rate is the aggregate rate to enforce.
	Rate Rate
	// Queues is the number of phantom queues; flows hash into them
	// unless packets carry explicit classes.
	Queues int
	// Policy is the intra-aggregate rate-sharing policy (nil = per-flow
	// fairness over Queues classes). Its class count must equal Queues.
	Policy *Policy
	// MaxRTT is the worst-case flow RTT used for default queue sizing;
	// zero selects 100 ms (the paper's p99 WAN figure).
	MaxRTT time.Duration
	// QueueSize overrides the phantom queue size B in bytes. Zero
	// selects the paper's recommendation: ≥10× the largest
	// congestion-control requirement at MaxRTT (burst control removes
	// the upper limit, §4).
	QueueSize int64
}

// NewBCPQP builds the paper's contribution: a burst-controlled
// phantom-queue policer with the default θ⁺=1.5, θ⁻=0.5, T=100 ms
// parameters.
func NewBCPQP(cfg BCPQPConfig) (*PQP, error) {
	maxRTT := cfg.MaxRTT
	if maxRTT <= 0 {
		maxRTT = 100 * time.Millisecond
	}
	size := cfg.QueueSize
	if size == 0 {
		size = RecommendedQueueSize(cfg.Rate, maxRTT)
	}
	return phantom.New(phantom.Config{
		Rate:         cfg.Rate,
		Queues:       cfg.Queues,
		QueueSize:    size,
		Policy:       cfg.Policy,
		BurstControl: true,
	})
}

// NewPQP builds a phantom-queue policer without burst control (§3), mostly
// useful for studying why burst control is needed. QueueSize zero selects
// the exact Reno requirement at maxRTT.
func NewPQP(rate Rate, queues int, policy *Policy, queueSize int64, maxRTT time.Duration) (*PQP, error) {
	if maxRTT <= 0 {
		maxRTT = 100 * time.Millisecond
	}
	if queueSize == 0 {
		queueSize = units.RenoPhantomRequirement(rate, maxRTT)
	}
	return phantom.New(phantom.Config{
		Rate:      rate,
		Queues:    queues,
		QueueSize: queueSize,
		Policy:    policy,
	})
}

// PhantomConfig exposes the full phantom-queue configuration surface
// (burst-control thresholds, window, drain batching) for advanced use.
type PhantomConfig = phantom.Config

// NewPhantom builds a PQP/BC-PQP from the full configuration.
func NewPhantom(cfg PhantomConfig) (*PQP, error) { return phantom.New(cfg) }

// RecommendedQueueSize returns the paper's default phantom queue size for
// BC-PQP: ten times the largest (New Reno vs Cubic) bucket requirement for
// correct average-rate enforcement at the worst-case RTT.
func RecommendedQueueSize(rate Rate, maxRTT time.Duration) int64 {
	return 10 * tbf.PlusBucket(rate, maxRTT)
}

// RenoQueueRequirement returns the Appendix A minimum phantom queue size
// (BDP²/18 × MSS bytes) for a backlogged Reno flow.
func RenoQueueRequirement(rate Rate, rtt time.Duration) int64 {
	return units.RenoPhantomRequirement(rate, rtt)
}

// Policer is the token-bucket baseline. It implements Enforcer.
type Policer = tbf.Policer

// NewPolicer builds a token-bucket policer. bucketBytes zero selects one
// bandwidth-delay product at maxRTT (the paper's "Policer" baseline).
func NewPolicer(rate Rate, bucketBytes int64, maxRTT time.Duration) (*Policer, error) {
	if bucketBytes == 0 {
		if maxRTT <= 0 {
			maxRTT = 100 * time.Millisecond
		}
		bucketBytes = tbf.BDPBucket(rate, maxRTT)
	}
	return tbf.New(rate, bucketBytes)
}

// FairPolicer is the per-flow-fair token-distribution baseline.
type FairPolicer = fairpolicer.FairPolicer

// FairPolicerConfig configures NewFairPolicer.
type FairPolicerConfig = fairpolicer.Config

// NewFairPolicer builds the FairPolicer baseline.
func NewFairPolicer(cfg FairPolicerConfig) (*FairPolicer, error) {
	return fairpolicer.New(cfg)
}

// Shaper is the buffering multi-queue reference implementation.
type Shaper = shaper.Shaper

// ShaperConfig configures NewShaper; the caller supplies the dequeue
// scheduler (a simulation loop or timing wheel) and the egress sink.
type ShaperConfig = shaper.Config

// NewShaper builds the shaper baseline.
func NewShaper(cfg ShaperConfig) (*Shaper, error) { return shaper.New(cfg) }
