package bcpqp

import (
	"bcpqp/internal/sched"
)

// Policy is a validated rate-sharing policy tree over traffic classes.
// Policies express how an aggregate's rate divides among its queues:
// per-flow fairness, weighted fairness, strict prioritization, or nested
// combinations of these (§3.2 of the paper).
type Policy = sched.Policy

// PolicyNode is one vertex of a policy tree under construction.
type PolicyNode = sched.Node

// Fair returns a per-flow fairness policy over n classes.
func Fair(n int) *Policy { return sched.Fair(n) }

// WeightedFair returns a weighted-fair policy; class i gets weight ws[i].
func WeightedFair(ws ...float64) *Policy { return sched.WeightedFair(ws...) }

// StrictPriority returns a strict-priority policy; class 0 is highest.
func StrictPriority(n int) *Policy { return sched.StrictPriority(n) }

// Leaf returns a terminal policy node bound to a traffic class.
func Leaf(class int) *PolicyNode { return sched.Leaf(class) }

// Weighted returns a node whose children share the parent rate by weight
// (set child weights with PolicyNode.WithWeight).
func Weighted(children ...*PolicyNode) *PolicyNode { return sched.Weighted(children...) }

// Priority returns a node serving its children in strict order.
func Priority(children ...*PolicyNode) *PolicyNode { return sched.Priority(children...) }

// NewPolicy validates a hand-built policy tree.
func NewPolicy(root *PolicyNode) (*Policy, error) { return sched.New(root) }

// MustNewPolicy is NewPolicy that panics on error, for static policies.
func MustNewPolicy(root *PolicyNode) *Policy { return sched.MustNew(root) }
