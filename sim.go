package bcpqp

import (
	"time"

	"bcpqp/internal/apps/video"
	"bcpqp/internal/apps/web"
	"bcpqp/internal/harness"
	"bcpqp/internal/metrics"
	"bcpqp/internal/rng"
)

// Simulation wires an enforcement point into a virtual-time network:
// sender → enforcer → optional secondary bottleneck → propagation delay →
// receiver, with TCP flows (Reno/Cubic/BBR/Vegas) attached on top. It
// corresponds to the paper's three-machine testbed.
type Simulation = harness.Harness

// SimulationConfig configures one enforcement point for simulation.
type SimulationConfig = harness.Config

// Scheme selects the enforcement mechanism of a Simulation.
type Scheme = harness.Scheme

// Available schemes.
const (
	SchemeShaper       = harness.SchemeShaper
	SchemeSingleShaper = harness.SchemeSingleShaper
	SchemePolicer      = harness.SchemePolicer
	SchemePolicerPlus  = harness.SchemePolicerPlus
	SchemeFairPolicer  = harness.SchemeFairPolicer
	SchemePQP          = harness.SchemePQP
	SchemeBCPQP        = harness.SchemeBCPQP
)

// SimFlowSpec describes a TCP flow attached to a Simulation.
type SimFlowSpec = harness.FlowSpec

// NewSimulation builds a simulation around the configured scheme.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) {
	return harness.New(cfg)
}

// ParseScheme maps a scheme name ("bc-pqp", "policer", "shaper", ...) to a
// Scheme.
func ParseScheme(name string) (Scheme, error) { return harness.ParseScheme(name) }

// Meter accumulates receiver-side bytes into fixed windows for throughput
// measurement (the paper meters 250 ms windows).
type Meter = metrics.Meter

// NewMeter returns a Meter; window 0 selects 250 ms.
func NewMeter(window time.Duration) *Meter { return metrics.NewMeter(window) }

// Jain computes Jain's fairness index over allocations.
func Jain(xs []float64) float64 { return metrics.Jain(xs) }

// VideoConfig configures an adaptive-bitrate streaming session over a
// Simulation (the §6.4.1 application model).
type VideoConfig = video.Config

// VideoClient is a running ABR session.
type VideoClient = video.Client

// StartVideo attaches an ABR streaming session to a Simulation.
func StartVideo(cfg VideoConfig) (*VideoClient, error) { return video.Start(cfg) }

// WebConfig configures a sequential page-load session (the §6.4.2 model).
type WebConfig = web.Config

// WebSession is a running page-load session.
type WebSession = web.Session

// StartWeb attaches a page-load session to a Simulation.
func StartWeb(cfg WebConfig) (*WebSession, error) { return web.Start(cfg) }

// RandSource is the deterministic random stream used by workload models.
type RandSource = rng.Source

// NewRand returns a deterministic random source for workload generation.
func NewRand(seed uint64) *RandSource { return rng.New(seed) }
