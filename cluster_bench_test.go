package bcpqp

import (
	"testing"
	"time"
)

// nopTransport swallows frames: the benchmark measures the rebalance
// computation, not the wire.
type nopTransport struct{}

func (nopTransport) Send(string, []byte) error { return nil }

// BenchmarkClusterRebalance measures one budget-exchange rebalance tick on
// the cluster node: peer-ladder classification, grant planning into the
// hold ring, hold accounting and share computation for every shared
// aggregate. This path runs once per 250 ms window off the SubmitBatch hot
// path, but it shares the engine's discipline: 0 allocs/op, so a node with
// thousands of shared aggregates never pressures the GC from its control
// loop. One iteration = one full rebalance across all shared aggregates;
// the custom metric reports per-aggregate share recomputations.
func BenchmarkClusterRebalance(b *testing.B) {
	const nAggs = 16
	aggs := make([]SharedAggregate, nAggs)
	var applied Rate
	for i := range aggs {
		aggs[i] = SharedAggregate{
			ID:       "tenant-" + string(rune('a'+i)),
			Rate:     100 * Mbps,
			Observed: func() (int64, bool) { return 0, true },
			Apply:    func(r Rate, fb bool) error { applied = r; return nil },
		}
	}
	node, err := NewClusterNode(ClusterConfig{
		Self:      "a",
		Peers:     []string{"b", "c", "d"},
		Transport: nopTransport{},
		Clock:     func() time.Duration { return 0 },
	}, aggs)
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()

	window := 250 * time.Millisecond
	now := time.Duration(0)
	node.Rebalance(now) // first tick applies initial shares (allocates the ops)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += window
		node.Rebalance(now)
	}
	b.StopTimer()
	_ = applied
	b.ReportMetric(float64(nAggs)*float64(b.N)/b.Elapsed().Seconds(), "shares/sec")
}
