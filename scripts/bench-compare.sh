#!/bin/sh
# bench-compare: benchmark the datapath at HEAD (including uncommitted
# changes) against a base revision in a throwaway git worktree, and fail
# when the mean throughput (pkts/sec or shares/sec) of any compared
# benchmark regresses beyond the budget. benchstat, when installed, adds its statistical summary; the
# pass/fail gate itself needs only git, go and awk — nothing is ever
# downloaded here.
#
# Usage: scripts/bench-compare.sh [base-ref]
#
# With no argument the base is the merge-base with origin/main (then main),
# falling back to HEAD~1 when that is HEAD itself (e.g. running on main).
#
# Environment:
#   BENCH   benchmark regexp      (default: the middlebox + policy-tree SubmitBatch pair
#                                  plus the cluster rebalance tick)
#   COUNT   repetitions per side  (default 6)
#   BUDGET  allowed mean pkts/sec regression in percent (default 10)
#   OUTDIR  where base.txt / head.txt are written (default: a temp dir)
set -eu

cd "$(dirname "$0")/.."

BENCH="${BENCH:-^(BenchmarkMiddleboxSubmitBatch|BenchmarkMiddleboxSubmitBatchOverloaded|BenchmarkMiddleboxSubmitBatchLocal|BenchmarkMiddleboxSubmitBatchObserved|BenchmarkMiddleboxSubmitBatchAudited|BenchmarkPolicyTreeSubmitBatch|BenchmarkClusterRebalance|BenchmarkDatapathSingleSocket|BenchmarkDatapathPerCore)\$}"
COUNT="${COUNT:-6}"
BUDGET="${BUDGET:-10}"

# Committed BENCH_*.json snapshots must reference benchmarks that still
# exist: a renamed or deleted benchmark silently turns a snapshot into
# unrefreshable stale data, so fail loudly instead.
stale=""
have="$(go test -run '^$' -list '^Benchmark' . 2>/dev/null)"
for f in BENCH_*.json; do
	[ -e "$f" ] || continue
	for b in $(grep -o '"benchmark"[[:space:]]*:[[:space:]]*"[^"]*"' "$f" | sed 's/.*"\(Benchmark[^"]*\)"/\1/' | sort -u); do
		if ! printf '%s\n' "$have" | grep -qx "$b"; then
			echo "bench-compare: FAIL: $f is stale — $b no longer exists (refresh or remove the snapshot)" >&2
			stale=1
		fi
	done
done
[ -z "$stale" ] || exit 1

base_ref=""
if [ -n "${1:-}" ]; then
	base_ref="$(git merge-base "$1" HEAD 2>/dev/null || git rev-parse "$1")"
else
	for cand in origin/main main; do
		if git rev-parse --verify --quiet "$cand" >/dev/null; then
			base_ref="$(git merge-base "$cand" HEAD)"
			break
		fi
	done
	if [ -z "$base_ref" ] || [ "$base_ref" = "$(git rev-parse HEAD)" ]; then
		base_ref="$(git rev-parse HEAD~1)"
	fi
fi

OUTDIR="${OUTDIR:-$(mktemp -d)}"
mkdir -p "$OUTDIR"
worktree="$(mktemp -d)"
trap 'git worktree remove --force "$worktree" >/dev/null 2>&1 || true; rm -rf "$worktree"' EXIT

dirty=""
git diff --quiet 2>/dev/null || dirty=" (+uncommitted changes)"
echo "bench-compare: base $(git rev-parse --short "$base_ref"), head $(git rev-parse --short HEAD)$dirty"
echo "bench-compare: bench $BENCH, $COUNT reps per side, budget ${BUDGET}%"
git worktree add --quiet --detach "$worktree" "$base_ref"

run_bench() { # run_bench <dir> <outfile>
	(cd "$1" && go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" .) | tee "$2"
}

echo "bench-compare: running base"
run_bench "$worktree" "$OUTDIR/base.txt"
echo "bench-compare: running head"
run_bench . "$OUTDIR/head.txt"

if command -v benchstat >/dev/null 2>&1; then
	benchstat "$OUTDIR/base.txt" "$OUTDIR/head.txt" | tee "$OUTDIR/benchstat.txt" || true
else
	echo "bench-compare: benchstat not installed; skipping the statistical summary" \
		"(go install golang.org/x/perf/cmd/benchstat@latest)"
fi

# The gate: per benchmark present on both sides, the head's mean throughput
# (pkts/sec for the datapath, shares/sec for the cluster rebalance) must not
# be more than BUDGET percent below the base's. A benchmark present on only
# one side (e.g. newly added at head) is skipped, not failed. Lines that
# report both pkts/sec and pkts/sec/core (the datapath benchmarks) are gated
# on the per-core figure only — never summed twice.
awk -v budget="$BUDGET" '
	FNR == 1 { side++ }
	/^Benchmark/ {
		v = ""
		for (i = 2; i < NF; i++) {
			if ($(i + 1) == "pkts/sec/core") { v = $i; break }
			if ($(i + 1) == "pkts/sec" || $(i + 1) == "shares/sec") v = $i
		}
		if (v != "") {
			sum[side, $1] += v; n[side, $1]++
			if (side == 1) names[$1] = 1
		}
	}
	END {
		fail = 0; compared = 0
		for (b in names) {
			if (!n[1, b] || !n[2, b]) continue
			compared++
			base = sum[1, b] / n[1, b]; head = sum[2, b] / n[2, b]
			delta = (head - base) / base * 100
			printf "%-55s base %14.0f  head %14.0f  %+7.2f%%\n", b, base, head, delta
			if (delta < -budget) fail = 1
		}
		if (!compared) { print "bench-compare: FAIL: no benchmark present on both sides"; exit 1 }
		if (fail) { print "bench-compare: FAIL: mean throughput regression beyond " budget "%"; exit 1 }
		print "bench-compare: OK (within the " budget "% budget)"
	}
' "$OUTDIR/base.txt" "$OUTDIR/head.txt"
