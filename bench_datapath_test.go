package bcpqp

// Datapath benchmarks: real loopback UDP through the engine, comparing the
// single-socket ring datapath (one ReadFrom syscall per datagram, payload
// copy, shard-ring handoff — what `bcpqp-proxy` does in ring mode) against
// the per-core run-to-completion datapath (`-datapath percore`: recvmmsg
// bursts into pinned buffers, zero-copy inline enforcement through the
// ring-bypass LocalSubmitter, one sendmmsg per burst out).
//
// The rig is a closed loop: each worker feeds a DefaultBurst of datagrams to
// its own listener through an identical batched feeder socket, then drains
// them through the datapath under test. The loop is starvation-free
// regardless of how many CPUs the host has (free-running senders would
// steal the receive loop's only core on small machines).
//
// The gated pkts/sec metrics time the INGEST WINDOW only — from feed
// completion to enforcement handoff (32 ReadFrom syscalls + payload copies
// + ring enqueue for single-socket; one recvmmsg + inline enforcement for
// percore). Load generation and transmit are excluded from the window in
// both modes: on a shared-CPU host the feeder's per-packet loopback
// delivery cost would otherwise time-share with — and swamp — the datapath
// under test, where in any real deployment the traffic source is other
// machines. The exclusion is conservative for the comparison: the
// single-socket path's enforcement and per-packet Write syscalls run on the
// shard goroutine outside its window, while percore's window includes
// enforcement. ns/op still reflects the whole closed loop. pkts/sec/core is
// packets per second of worker busy time; pkts/sec multiplies by the worker
// count (the run-to-completion scaling model: one independent socket,
// shard, and enforcer per core).
//
// BenchmarkMiddleboxSubmitBatchLocal isolates the ring-bypass enforcement
// layer alone (no sockets) — the inline counterpart of
// BenchmarkMiddleboxSubmitBatch, 0 allocs/op in steady state.

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/netio"
)

// BenchmarkMiddleboxSubmitBatchLocal measures the ring-bypass fast path in
// isolation: bursts enforced inline through LocalSubmitter.SubmitBatch with
// BC-PQP aggregates pinned across shards — no channel send, no cross-core
// handoff. One iteration is one packet, directly comparable to
// BenchmarkMiddleboxSubmitBatch (the ring path on the same workload).
func BenchmarkMiddleboxSubmitBatchLocal(b *testing.B) {
	for _, aggs := range []int{16, 256} {
		aggs := aggs
		b.Run(fmt.Sprintf("aggregates=%d", aggs), func(b *testing.B) {
			shards := runtime.GOMAXPROCS(0)
			if shards > aggs {
				shards = aggs
			}
			var ticks atomic.Int64
			eng := NewMiddlebox(MiddleboxConfig{
				Shards:     shards,
				QueueDepth: 1 << 14,
				Clock: func() time.Duration {
					return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
				},
			})
			defer eng.Close()
			handles := make([]AggregateHandle, aggs)
			for i := range handles {
				enf, err := NewBCPQP(BCPQPConfig{Rate: 20 * Mbps, Queues: 16})
				if err != nil {
					b.Fatal(err)
				}
				h, err := eng.AddPinned(fmt.Sprintf("agg-%d", i), i%shards, enf, nil)
				if err != nil {
					b.Fatal(err)
				}
				handles[i] = h
			}
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each parallel goroutine owns one shard's submitter and
				// round-robins the aggregates pinned there.
				shard := int(next.Add(1)-1) % shards
				ls, err := eng.LocalShard(shard)
				if err != nil {
					b.Error(err)
					return
				}
				var mine []AggregateHandle
				for i := shard; i < aggs; i += shards {
					mine = append(mine, handles[i])
				}
				var burst [DefaultBurst]Packet
				for i := range burst {
					burst[i] = Packet{Key: FlowKey{SrcIP: 1, Proto: 6}, Size: MSS, Class: i & 15}
				}
				i, fill := 0, 0
				for pb.Next() {
					// One iteration = one packet; flush every DefaultBurst.
					if fill++; fill == len(burst) {
						fill = 0
						if err := ls.SubmitBatch(mine[i%len(mine)], burst[:]); err != nil {
							b.Error(err)
							return
						}
						i++
					}
				}
				if fill > 0 {
					ls.SubmitBatch(mine[i%len(mine)], burst[:fill])
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
		})
	}
}

// benchSink binds a UDP socket nobody reads: loopback tx to it always
// succeeds (overflow drops at its receive buffer), so emit cost is measured
// without backpressure or a competing reader.
func benchSink(b *testing.B) (string, func()) {
	b.Helper()
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	return sink.LocalAddr().String(), func() { sink.Close() }
}

// benchFeeder dials a batched feeder socket for the closed-loop rig. Every
// datapath mode feeds through this same conn type, so its per-burst cost
// (one sendmmsg) cancels out of cross-mode comparisons.
func benchFeeder(b *testing.B, dst string) *netio.Conn {
	b.Helper()
	conn, err := netio.Dial(dst, netio.Config{BufBytes: 256})
	if err != nil {
		b.Fatal(err)
	}
	return conn
}

// feedBurst queues and flushes n copies of payload — the closed loop's
// "offered load" for one burst. Loopback tx never blocks; if the listener's
// buffer were to overflow the drain side's deadline bounds the stall.
func feedBurst(c *netio.Conn, payload []byte, n int) {
	for i := 0; i < n; i++ {
		c.QueueTx(payload)
	}
	c.FlushTx()
}

// benchEnforcer builds the high-ceiling BC-PQP used by the datapath rigs:
// fast virtual time (one tick per burst) needs a rate well above the
// offered load so accepted traffic actually exercises the emit/tx path.
func benchEnforcer(b *testing.B) Enforcer {
	b.Helper()
	enf, err := NewBCPQP(BCPQPConfig{Rate: 40 * Gbps, Queues: 16})
	if err != nil {
		b.Fatal(err)
	}
	return enf
}

// BenchmarkDatapathSingleSocket is the ring-mode proxy datapath: one shared
// socket, one ReadFrom syscall and one payload copy per datagram, bursts
// assembled under a drain deadline, enforcement via the shard ring, one
// Write syscall per accepted datagram. This is the baseline the percore
// mode is gated against (≥2× at burst 32).
func BenchmarkDatapathSingleSocket(b *testing.B) {
	rx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer rx.Close()
	sinkAddr, closeSink := benchSink(b)
	defer closeSink()
	dst, err := net.ResolveUDPAddr("udp", sinkAddr)
	if err != nil {
		b.Fatal(err)
	}
	out, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		b.Fatal(err)
	}
	defer out.Close()

	var ticks atomic.Int64
	eng := NewMiddlebox(MiddleboxConfig{
		QueueDepth: 1 << 14,
		Clock: func() time.Duration {
			return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
		},
	})
	defer eng.Close()
	h, err := eng.Add("proxy", benchEnforcer(b), func(p Packet) { out.Write(p.Payload) })
	if err != nil {
		b.Fatal(err)
	}

	feed := benchFeeder(b, rx.LocalAddr().String())
	defer feed.Close()
	payload := make([]byte, 200)
	var (
		bufs [DefaultBurst][]byte
		pkts [DefaultBurst]Packet
	)
	for i := range bufs {
		bufs[i] = make([]byte, 2048)
	}
	b.ReportAllocs()
	b.ResetTimer()
	received := 0
	var drain time.Duration
	for received < b.N {
		feedBurst(feed, payload, DefaultBurst)
		// One drain deadline per burst, as the (fixed) proxy read loop; the
		// whole burst is already queued on loopback so reads never park.
		rx.SetReadDeadline(time.Now().Add(2 * time.Second))
		t0 := time.Now()
		count := 0
		for count < DefaultBurst {
			n, from, err := rx.ReadFrom(bufs[count])
			if err != nil {
				break // deadline: the kernel shed part of the burst
			}
			pkts[count] = Packet{Key: benchKey(from), Size: n, Class: NoClass,
				Payload: append([]byte(nil), bufs[count][:n]...)}
			count++
		}
		if count == 0 {
			continue
		}
		if err := eng.SubmitBatch(h, pkts[:count]); err != nil {
			b.Fatal(err)
		}
		drain += time.Since(t0)
		received += count
	}
	b.StopTimer()
	pps := float64(received) / drain.Seconds()
	b.ReportMetric(pps, "pkts/sec")
	b.ReportMetric(pps, "pkts/sec/core") // one datapath worker
}

func benchKey(addr net.Addr) FlowKey {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return FlowKey{}
	}
	var ip uint32
	if v4 := ua.IP.To4(); v4 != nil {
		ip = uint32(v4[0])<<24 | uint32(v4[1])<<16 | uint32(v4[2])<<8 | uint32(v4[3])
	}
	return FlowKey{SrcIP: ip, SrcPort: uint16(ua.Port), Proto: 17}
}

// BenchmarkDatapathPerCore is the percore-mode datapath: per-core
// SO_REUSEPORT sockets, recvmmsg bursts into pinned buffers, zero-copy
// inline enforcement through the ring-bypass submitter, sendmmsg out. The
// counter is global across workers, so pkts/sec is the whole datapath and
// pkts/sec/core the per-worker figure the paper's run-to-completion
// comparison wants.
func BenchmarkDatapathPerCore(b *testing.B) {
	for _, cores := range []int{1, 4} {
		cores := cores
		if cores > 1 && !netio.SupportsBatch() {
			continue // REUSEPORT fan-out needs the batched backend
		}
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			sinkAddr, closeSink := benchSink(b)
			defer closeSink()
			var ticks atomic.Int64
			eng := NewMiddlebox(MiddleboxConfig{
				Shards:     cores,
				QueueDepth: 1 << 10,
				Clock: func() time.Duration {
					return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
				},
			})
			defer eng.Close()

			ncfg := netio.Config{ReusePort: cores > 1, ForceSingle: !netio.SupportsBatch()}
			type worker struct {
				rx, tx *netio.Conn
				ls     *LocalSubmitter
				h      AggregateHandle
			}
			ws := make([]*worker, cores)
			listen := "127.0.0.1:0"
			for i := range ws {
				w := &worker{}
				ws[i] = w
				var err error
				if w.rx, err = netio.Listen(listen, ncfg); err != nil {
					b.Fatal(err)
				}
				defer w.rx.Close()
				if i == 0 {
					listen = w.rx.LocalAddr().String()
				}
				if w.tx, err = netio.Dial(sinkAddr, ncfg); err != nil {
					b.Fatal(err)
				}
				defer w.tx.Close()
				tx := w.tx
				if w.h, err = eng.AddPinned(fmt.Sprintf("proxy/core%d", i), i, benchEnforcer(b),
					func(p Packet) { tx.QueueTx(p.Payload) }); err != nil {
					b.Fatal(err)
				}
				if w.ls, err = eng.LocalShard(i); err != nil {
					b.Fatal(err)
				}
			}

			// Each worker closed-loops against its own socket: REUSEPORT
			// hashes a feeder's fixed 4-tuple to one listener, so every
			// worker needs its own feeder dialed at the group address. A
			// feeder may land on a sibling's listener — workers drain
			// whatever arrives, and the global counter keeps the loop
			// honest either way.
			feeds := make([]*netio.Conn, cores)
			for i := range feeds {
				feeds[i] = benchFeeder(b, listen)
				defer feeds[i].Close()
			}
			payload := make([]byte, 200)
			var received, drainNanos atomic.Int64
			var wwg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			for i := range ws {
				wwg.Add(1)
				go func(i int, w *worker, feed *netio.Conn) {
					defer wwg.Done()
					runtime.LockOSThread()
					defer runtime.UnlockOSThread()
					pkts := make([]Packet, w.rx.Batch())
					var drain time.Duration
					defer func() { drainNanos.Add(int64(drain)) }()
					for received.Load() < int64(b.N) {
						// Strict feed-one/drain-one: globally the feeds and
						// drains balance, so any REUSEPORT hash imbalance is
						// bounded by a listener's rcvbuf (kernel drops the
						// excess) rather than growing without bound.
						feedBurst(feed, payload, w.rx.Batch())
						w.rx.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
						t0 := time.Now()
						n, err := w.rx.RecvBatch()
						if err != nil {
							continue // deadline: burst hashed to a sibling
						}
						for j := 0; j < n; j++ {
							ip, port := w.rx.Src(j)
							pl := w.rx.Payload(j)
							pkts[j] = Packet{Key: FlowKey{SrcIP: ip, SrcPort: port, Proto: 17},
								Size: len(pl), Class: NoClass, Payload: pl}
						}
						if err := w.ls.SubmitBatch(w.h, pkts[:n]); err != nil {
							b.Error(err)
							return
						}
						drain += time.Since(t0)
						w.tx.FlushTx()
						received.Add(int64(n))
					}
				}(i, ws[i], feeds[i])
			}
			wwg.Wait()
			b.StopTimer()
			perCore := float64(received.Load()) * 1e9 / float64(drainNanos.Load())
			b.ReportMetric(perCore*float64(cores), "pkts/sec")
			b.ReportMetric(perCore, "pkts/sec/core")
		})
	}
}
