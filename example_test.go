package bcpqp_test

import (
	"fmt"
	"time"

	"bcpqp"
)

// ExampleNewBCPQP polices a burst of packets from two flows and shows the
// per-flow verdicts a datapath would act on.
func ExampleNewBCPQP() {
	enf, err := bcpqp.NewBCPQP(bcpqp.BCPQPConfig{
		Rate:   8 * bcpqp.Mbps, // 1 MB/s
		Queues: 2,
	})
	if err != nil {
		panic(err)
	}

	now := time.Millisecond
	accepted := 0
	for i := 0; i < 10; i++ {
		pkt := bcpqp.Packet{
			Key:   bcpqp.FlowKey{SrcIP: 1, SrcPort: uint16(i%2 + 1), Proto: 6},
			Size:  bcpqp.MSS,
			Class: i % 2,
		}
		if enf.Submit(now, pkt) == bcpqp.Transmit {
			accepted++
		}
	}
	fmt.Println("accepted:", accepted, "of 10")
	// Output: accepted: 10 of 10
}

// ExampleMustNewPolicy builds the paper's nested example: two priority
// tiers with weighted fairness inside the high tier.
func ExampleMustNewPolicy() {
	policy := bcpqp.MustNewPolicy(bcpqp.Priority(
		bcpqp.Weighted(
			bcpqp.Leaf(0).WithWeight(2),
			bcpqp.Leaf(1),
		),
		bcpqp.Leaf(2),
	))
	fmt.Println("classes:", policy.NumClasses())
	// Output: classes: 3
}

// ExampleNewSimulation runs one congestion-controlled flow through BC-PQP
// in virtual time and reports the goodput.
func ExampleNewSimulation() {
	sim, err := bcpqp.NewSimulation(bcpqp.SimulationConfig{
		Scheme: bcpqp.SchemeBCPQP,
		Rate:   10 * bcpqp.Mbps,
		MaxRTT: 50 * time.Millisecond,
		Queues: 4,
	})
	if err != nil {
		panic(err)
	}
	var delivered int64
	_, err = sim.AttachFlow(bcpqp.SimFlowSpec{
		Key:   bcpqp.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 443, Proto: 6},
		Class: 0,
		CC:    "cubic",
		RTT:   20 * time.Millisecond,
		Start: 10 * time.Millisecond,
		OnDeliver: func(now time.Duration, bytes int) {
			delivered += int64(bytes)
		},
	})
	if err != nil {
		panic(err)
	}
	sim.Run(10 * time.Second)

	// ≈ 10 Mbps × 10 s = 12.5 MB, minus the slow-start transient.
	mb := float64(delivered) / 1e6
	fmt.Println("delivered ≈ enforced rate:", mb > 8 && mb < 13)
	// Output: delivered ≈ enforced rate: true
}

// ExampleNewPolicer contrasts the token bucket's burst admission with its
// long-term rate.
func ExampleNewPolicer() {
	pol, err := bcpqp.NewPolicer(8*bcpqp.Mbps, 5*bcpqp.MSS, 0)
	if err != nil {
		panic(err)
	}
	now := time.Millisecond
	burst := 0
	for i := 0; i < 10; i++ { // 10 packets arrive at once
		pkt := bcpqp.Packet{Key: bcpqp.FlowKey{SrcPort: 1}, Size: bcpqp.MSS}
		if pol.Submit(now, pkt) == bcpqp.Transmit {
			burst++
		}
	}
	fmt.Println("instant burst admitted:", burst, "packets (the bucket)")
	// Output: instant burst admitted: 5 packets (the bucket)
}
