package shaper

import (
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/sched"
	"bcpqp/internal/sim"
	"bcpqp/internal/units"
)

func pkt(class, size int) packet.Packet {
	return packet.Packet{Key: packet.FlowKey{SrcPort: uint16(class + 1)}, Class: class, Size: size}
}

// testRig wires a shaper to a sim loop and records emissions.
type testRig struct {
	loop *sim.Loop
	s    *Shaper
	out  []emission
}

type emission struct {
	at  time.Duration
	pkt packet.Packet
}

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	rig := &testRig{loop: sim.NewLoop()}
	cfg.Scheduler = SchedulerFunc(func(at time.Duration, fn func()) {
		rig.loop.At(at, func() { fn() })
	})
	cfg.Sink = func(now time.Duration, p packet.Packet) {
		rig.out = append(rig.out, emission{at: now, pkt: p})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rig.s = s
	return rig
}

func TestValidation(t *testing.T) {
	sink := func(time.Duration, packet.Packet) {}
	schedule := SchedulerFunc(func(time.Duration, func()) {})
	base := Config{Rate: units.Mbps, Queues: 2, QueueSize: 10 * units.MSS,
		Scheduler: schedule, Sink: sink}
	if _, err := New(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"zero rate":     func(c *Config) { c.Rate = 0 },
		"no queues":     func(c *Config) { c.Queues = 0 },
		"tiny queue":    func(c *Config) { c.QueueSize = 10 },
		"nil scheduler": func(c *Config) { c.Scheduler = nil },
		"nil sink":      func(c *Config) { c.Sink = nil },
		"policy excess": func(c *Config) { c.Policy = sched.Fair(4) },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestServiceAtRate(t *testing.T) {
	rate := 8 * units.Mbps // 1 MB/s → MSS per 1.5 ms
	rig := newRig(t, Config{Rate: rate, Queues: 1, QueueSize: 100 * units.MSS})
	// 10 packets arrive at once.
	rig.loop.At(time.Millisecond, func() {
		for i := 0; i < 10; i++ {
			rig.s.Submit(rig.loop.Now(), pkt(0, units.MSS))
		}
	})
	rig.loop.Run(time.Second)
	if len(rig.out) != 10 {
		t.Fatalf("emitted %d packets, want 10", len(rig.out))
	}
	// Packets must be spaced ≈ MSS/rate apart, not released in a burst.
	for i := 1; i < len(rig.out); i++ {
		gap := rig.out[i].at - rig.out[i-1].at
		if gap < time.Millisecond || gap > 2*time.Millisecond {
			t.Errorf("gap %d = %v, want ≈1.5ms", i, gap)
		}
	}
	last := rig.out[len(rig.out)-1].at
	if last < 14*time.Millisecond || last > 17*time.Millisecond {
		t.Errorf("last emission at %v, want ≈16ms (15 KB at 1 MB/s)", last)
	}
}

func TestDropTail(t *testing.T) {
	rig := newRig(t, Config{Rate: units.Mbps, Queues: 1, QueueSize: 3 * units.MSS})
	now := time.Millisecond
	verdicts := make([]enforcer.Verdict, 4)
	rig.loop.At(now, func() {
		for i := range verdicts {
			verdicts[i] = rig.s.Submit(now, pkt(0, units.MSS))
		}
	})
	rig.loop.Run(2 * now)
	for i := 0; i < 3; i++ {
		if verdicts[i] != enforcer.Queued {
			t.Errorf("packet %d: %v, want queued", i, verdicts[i])
		}
	}
	if verdicts[3] != enforcer.Drop {
		t.Errorf("4th packet: %v, want drop", verdicts[3])
	}
}

func TestDRRFairness(t *testing.T) {
	rate := 8 * units.Mbps
	rig := newRig(t, Config{Rate: rate, Queues: 2, QueueSize: 1000 * units.MSS})
	rig.loop.At(time.Millisecond, func() {
		for i := 0; i < 100; i++ {
			rig.s.Submit(rig.loop.Now(), pkt(0, units.MSS))
			rig.s.Submit(rig.loop.Now(), pkt(1, units.MSS))
		}
	})
	// Run long enough to serve ~100 packets (150 ms).
	rig.loop.Run(150 * time.Millisecond)
	counts := map[int]int{}
	for _, e := range rig.out[:90] {
		counts[e.pkt.Class]++
	}
	if diff := counts[0] - counts[1]; diff < -2 || diff > 2 {
		t.Errorf("unfair service in first 90 emissions: %v", counts)
	}
}

func TestWeightedService(t *testing.T) {
	rate := 8 * units.Mbps
	rig := newRig(t, Config{
		Rate: rate, Queues: 2, QueueSize: 1000 * units.MSS,
		Policy: sched.WeightedFair(3, 1),
	})
	rig.loop.At(time.Millisecond, func() {
		for i := 0; i < 200; i++ {
			rig.s.Submit(rig.loop.Now(), pkt(0, units.MSS))
			rig.s.Submit(rig.loop.Now(), pkt(1, units.MSS))
		}
	})
	rig.loop.Run(200 * time.Millisecond)
	counts := map[int]int{}
	for _, e := range rig.out[:120] {
		counts[e.pkt.Class]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weighted service ratio %.2f, want ≈3 (%v)", ratio, counts)
	}
}

func TestPriorityService(t *testing.T) {
	rate := 8 * units.Mbps
	rig := newRig(t, Config{
		Rate: rate, Queues: 2, QueueSize: 1000 * units.MSS,
		Policy: sched.StrictPriority(2),
	})
	rig.loop.At(time.Millisecond, func() {
		for i := 0; i < 20; i++ {
			rig.s.Submit(rig.loop.Now(), pkt(1, units.MSS)) // low first
			rig.s.Submit(rig.loop.Now(), pkt(0, units.MSS))
		}
	})
	rig.loop.Run(time.Second)
	if len(rig.out) != 40 {
		t.Fatalf("emitted %d, want 40", len(rig.out))
	}
	for i := 0; i < 20; i++ {
		if rig.out[i].pkt.Class != 0 {
			t.Fatalf("emission %d is class %d; high priority must drain first", i, rig.out[i].pkt.Class)
		}
	}
}

func TestWorkConservingAcrossQueues(t *testing.T) {
	rate := 8 * units.Mbps
	rig := newRig(t, Config{Rate: rate, Queues: 2, QueueSize: 1000 * units.MSS})
	rig.loop.At(time.Millisecond, func() {
		// Only queue 1 has traffic; it should get the full rate.
		for i := 0; i < 20; i++ {
			rig.s.Submit(rig.loop.Now(), pkt(1, units.MSS))
		}
	})
	rig.loop.Run(40 * time.Millisecond)
	if len(rig.out) != 20 {
		t.Fatalf("emitted %d of 20 in 39 ms (30 KB needs 30 ms at 1 MB/s)", len(rig.out))
	}
}

func TestFIFOOrderWithinQueue(t *testing.T) {
	rig := newRig(t, Config{Rate: units.Mbps, Queues: 1, QueueSize: 1000 * units.MSS})
	rig.loop.At(time.Millisecond, func() {
		for i := 0; i < 30; i++ {
			p := pkt(0, units.MSS)
			p.Seq = int64(i)
			rig.s.Submit(rig.loop.Now(), p)
		}
	})
	rig.loop.Run(2 * time.Second)
	for i, e := range rig.out {
		if e.pkt.Seq != int64(i) {
			t.Fatalf("emission %d has seq %d; FIFO violated", i, e.pkt.Seq)
		}
	}
}

func TestIdleRestart(t *testing.T) {
	rate := 8 * units.Mbps
	rig := newRig(t, Config{Rate: rate, Queues: 1, QueueSize: 100 * units.MSS})
	rig.loop.At(time.Millisecond, func() { rig.s.Submit(rig.loop.Now(), pkt(0, units.MSS)) })
	// Long idle gap, then another packet; it must not be served
	// instantly at an accumulated credit burst.
	rig.loop.At(500*time.Millisecond, func() { rig.s.Submit(rig.loop.Now(), pkt(0, units.MSS)) })
	rig.loop.Run(time.Second)
	if len(rig.out) != 2 {
		t.Fatalf("emitted %d, want 2", len(rig.out))
	}
	gap := rig.out[1].at - 500*time.Millisecond
	if gap < time.Millisecond || gap > 3*time.Millisecond {
		t.Errorf("post-idle service delay %v, want ≈1.5ms (no credit accumulation)", gap)
	}
}

func TestQueueingDelayAccounting(t *testing.T) {
	rate := 8 * units.Mbps
	rig := newRig(t, Config{Rate: rate, Queues: 1, QueueSize: 100 * units.MSS})
	rig.loop.At(time.Millisecond, func() {
		for i := 0; i < 10; i++ {
			rig.s.Submit(rig.loop.Now(), pkt(0, units.MSS))
		}
	})
	rig.loop.Run(time.Second)
	avg := rig.s.AvgQueueingDelay()
	// Average wait of 10 packets served at 1.5 ms each ≈ 8 ms.
	if avg < 5*time.Millisecond || avg > 12*time.Millisecond {
		t.Errorf("avg queueing delay %v, want ≈8ms", avg)
	}
}

func TestFlushDrainsEverything(t *testing.T) {
	rig := newRig(t, Config{Rate: units.Kbps, Queues: 2, QueueSize: 1000 * units.MSS})
	rig.loop.At(time.Millisecond, func() {
		for i := 0; i < 25; i++ {
			rig.s.Submit(rig.loop.Now(), pkt(i%2, units.MSS))
		}
	})
	rig.loop.Run(10 * time.Millisecond)
	rig.s.Flush(rig.loop.Now())
	if rig.s.Backlog() != 0 {
		t.Errorf("backlog %d after flush", rig.s.Backlog())
	}
	if len(rig.out) != 25 {
		t.Errorf("emitted %d of 25 after flush", len(rig.out))
	}
}

func TestPayloadCopyOnDequeue(t *testing.T) {
	rig := newRig(t, Config{Rate: 8 * units.Mbps, Queues: 1, QueueSize: 100 * units.MSS})
	payload := make([]byte, units.MSS)
	payload[0] = 0xAB
	p := pkt(0, units.MSS)
	p.Payload = payload
	rig.loop.At(time.Millisecond, func() { rig.s.Submit(rig.loop.Now(), p) })
	rig.loop.Run(time.Second)
	if len(rig.out) != 1 || rig.out[0].pkt.Payload[0] != 0xAB {
		t.Fatal("payload not preserved through the queue")
	}
}

func TestStats(t *testing.T) {
	rig := newRig(t, Config{Rate: units.Mbps, Queues: 1, QueueSize: 2 * units.MSS})
	rig.loop.At(time.Millisecond, func() {
		for i := 0; i < 4; i++ {
			rig.s.Submit(rig.loop.Now(), pkt(0, units.MSS))
		}
	})
	rig.loop.Run(2 * time.Millisecond)
	st := rig.s.EnforcerStats()
	if st.AcceptedPackets != 2 || st.DroppedPackets != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNestedPolicyService(t *testing.T) {
	// Priority( Weighted(3:1), background ): while the high group is
	// backlogged, the background class must be starved and the high
	// classes split ≈3:1.
	rate := 8 * units.Mbps
	rig := newRig(t, Config{
		Rate: rate, Queues: 3, QueueSize: 1000 * units.MSS,
		Policy: sched.MustNew(sched.Priority(
			sched.Weighted(sched.Leaf(0).WithWeight(3), sched.Leaf(1)),
			sched.Leaf(2),
		)),
	})
	rig.loop.At(time.Millisecond, func() {
		for i := 0; i < 200; i++ {
			rig.s.Submit(rig.loop.Now(), pkt(0, units.MSS))
			rig.s.Submit(rig.loop.Now(), pkt(1, units.MSS))
			rig.s.Submit(rig.loop.Now(), pkt(2, units.MSS))
		}
	})
	rig.loop.Run(300 * time.Millisecond)
	counts := map[int]int{}
	for _, e := range rig.out[:160] {
		counts[e.pkt.Class]++
	}
	if counts[2] != 0 {
		t.Errorf("background served %d packets while high group backlogged", counts[2])
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("high-group split %.2f, want ≈3 (%v)", ratio, counts)
	}
}
