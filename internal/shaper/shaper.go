// Package shaper implements the traffic-shaper baseline of §2.1: a
// multi-queue buffering rate limiter. Packets are stored in per-class
// drop-tail queues and served at the enforced rate by a scheduler that
// realizes the configured policy (DRR-style weighted fairness, strict
// priority, or nested combinations) through the shared policy-tree GPS
// drain.
//
// Unlike the bufferless schemes, the shaper genuinely holds packets —
// including their payload buffers when present — and revisits them at
// dequeue time, paying the memory-movement and scheduling cost the paper's
// efficiency comparison attributes to shaping. Dequeue work is driven by
// periodic service callbacks scheduled every MSS/r through a pluggable
// scheduler (the discrete-event loop in simulations, a hashed timing wheel
// in the scale benchmarks), matching the paper's description of shaper
// implementations.
package shaper

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// Scheduler is the timer facility the shaper uses to schedule its periodic
// dequeue callbacks. *sim.Loop and *timerwheel.Wheel both satisfy it via
// small adapters (see SimScheduler / WheelScheduler in this package's
// callers).
type Scheduler interface {
	// Schedule runs fn at virtual time at.
	Schedule(at time.Duration, fn func())
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(at time.Duration, fn func())

// Schedule implements Scheduler.
func (f SchedulerFunc) Schedule(at time.Duration, fn func()) { f(at, fn) }

// Config configures a Shaper for one traffic aggregate.
type Config struct {
	// Rate is the aggregate service rate.
	Rate units.Rate
	// Queues is the number of per-class queues (1 gives the single-queue
	// shaper used as a status-quo baseline in §6.4).
	Queues int
	// QueueSize is the per-queue buffer capacity in bytes. The paper
	// sizes shaper queues at one maximum BDP.
	QueueSize int64
	// Policy is the service policy across queues; nil means fair sharing.
	Policy *sched.Policy
	// Scheduler provides dequeue timers.
	Scheduler Scheduler
	// Sink receives packets as they are served.
	Sink enforcer.Sink
}

// Shaper is a buffering rate limiter. Not safe for concurrent use.
type Shaper struct {
	cfg   Config
	stats enforcer.Stats

	queues  []pktQueue
	credit  []int64 // GPS byte credit not yet redeemed for whole packets
	backlog int     // total buffered packets

	serviceArmed bool
	lastService  time.Duration
	svcCredit    float64 // fractional service bytes carried between events
	started      bool

	scratch []byte // dequeue copy buffer modeling the memory trip to the NIC

	// QueueingDelaySum/DequeuedPackets expose average queueing delay.
	QueueingDelaySum time.Duration
	DequeuedPackets  int64
}

// pktQueue is a drop-tail FIFO of buffered packets.
type pktQueue struct {
	pkts    []queuedPacket
	head    int
	bytes   int64
	dropped int64
}

type queuedPacket struct {
	pkt      packet.Packet
	enqueued time.Duration
}

// New validates cfg and returns a Shaper.
func New(cfg Config) (*Shaper, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("shaper: non-positive rate %v", cfg.Rate)
	}
	if cfg.Queues <= 0 {
		return nil, fmt.Errorf("shaper: need at least one queue, got %d", cfg.Queues)
	}
	if cfg.QueueSize < units.MSS {
		return nil, fmt.Errorf("shaper: queue size %d below one MSS", cfg.QueueSize)
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("shaper: nil scheduler")
	}
	if cfg.Sink == nil {
		return nil, fmt.Errorf("shaper: nil sink")
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.Fair(cfg.Queues)
	}
	if cfg.Policy.NumClasses() > cfg.Queues {
		return nil, fmt.Errorf("shaper: policy covers %d classes but only %d queues",
			cfg.Policy.NumClasses(), cfg.Queues)
	}
	return &Shaper{
		cfg:     cfg,
		queues:  make([]pktQueue, cfg.Queues),
		credit:  make([]int64, cfg.Queues),
		scratch: make([]byte, 2*units.MSS),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Shaper {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Submit implements enforcer.Enforcer: enqueue into the class queue,
// drop-tail on overflow, and arm the service timer.
func (s *Shaper) Submit(now time.Duration, pkt packet.Packet) enforcer.Verdict {
	if !s.started {
		s.started = true
		s.lastService = now
	}
	class := pkt.ClassIn(s.cfg.Queues)
	q := &s.queues[class]
	if q.bytes+int64(pkt.Size) > s.cfg.QueueSize {
		q.dropped++
		s.stats.Reject(pkt.Size)
		return enforcer.Drop
	}
	q.pkts = append(q.pkts, queuedPacket{pkt: pkt, enqueued: now})
	q.bytes += int64(pkt.Size)
	s.backlog++
	s.stats.Accept(pkt.Size)
	s.armService(now)
	return enforcer.Queued
}

// armService schedules the next dequeue callback MSS/r ahead, the cadence
// the paper describes for shaper implementations.
func (s *Shaper) armService(now time.Duration) {
	if s.serviceArmed || s.backlog == 0 {
		return
	}
	s.serviceArmed = true
	s.lastService = now
	s.svcCredit = 0
	quantum := s.cfg.Rate.DurationForBytes(units.MSS)
	s.cfg.Scheduler.Schedule(now+quantum, func() { s.service(now + quantum) })
}

// service runs one dequeue round: it converts elapsed time into a byte
// budget and distributes it across occupied queues per the policy, emitting
// every packet whose accumulated per-class credit covers it.
func (s *Shaper) service(now time.Duration) {
	s.serviceArmed = false
	budget := s.svcCredit + s.cfg.Rate.Bytes(now-s.lastService)
	s.lastService = now
	whole := int64(budget)
	s.svcCredit = budget - float64(whole)
	if whole > 0 {
		s.cfg.Policy.Drain(whole,
			func(class int) int64 { return s.queues[class].bytes - s.credit[class] },
			func(class int, n int64) { s.serve(now, class, n) })
	}
	if s.backlog > 0 {
		s.serviceArmed = true
		quantum := s.cfg.Rate.DurationForBytes(units.MSS)
		s.cfg.Scheduler.Schedule(now+quantum, func() { s.service(now + quantum) })
	}
}

// serve grants n service bytes to class and pops every whole packet the
// accumulated credit covers, copying payloads out through the scratch
// buffer to model the per-packet memory trip a real shaper pays when
// gathering packets for the NIC.
func (s *Shaper) serve(now time.Duration, class int, n int64) {
	s.credit[class] += n
	q := &s.queues[class]
	for q.head < len(q.pkts) {
		head := &q.pkts[q.head]
		size := int64(head.pkt.Size)
		if s.credit[class] < size {
			break
		}
		s.credit[class] -= size
		q.bytes -= size
		if head.pkt.Payload != nil {
			copy(s.scratch, head.pkt.Payload)
		}
		s.QueueingDelaySum += now - head.enqueued
		s.DequeuedPackets++
		pkt := head.pkt
		*head = queuedPacket{}
		q.head++
		s.backlog--
		s.cfg.Sink(now, pkt)
	}
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
		s.credit[class] = 0
	} else if q.head > 64 && q.head > len(q.pkts)/2 {
		m := copy(q.pkts, q.pkts[q.head:])
		q.pkts = q.pkts[:m]
		q.head = 0
	}
}

// Flush drains all remaining buffered packets as if served until now plus
// however long full service takes. Experiments call it at the end of a run
// so in-flight packets are accounted for.
func (s *Shaper) Flush(now time.Duration) {
	for s.backlog > 0 {
		quantum := s.cfg.Rate.DurationForBytes(units.MSS)
		now += quantum
		budget := s.svcCredit + s.cfg.Rate.Bytes(quantum)
		whole := int64(budget)
		s.svcCredit = budget - float64(whole)
		s.cfg.Policy.Drain(whole,
			func(class int) int64 { return s.queues[class].bytes - s.credit[class] },
			func(class int, n int64) { s.serve(now, class, n) })
	}
	s.lastService = now
}

// QueuedBytes returns the bytes buffered in queue class.
func (s *Shaper) QueuedBytes(class int) int64 { return s.queues[class].bytes }

// Backlog returns the total number of buffered packets.
func (s *Shaper) Backlog() int { return s.backlog }

// AvgQueueingDelay returns the mean time packets spent buffered.
func (s *Shaper) AvgQueueingDelay() time.Duration {
	if s.DequeuedPackets == 0 {
		return 0
	}
	return s.QueueingDelaySum / time.Duration(s.DequeuedPackets)
}

// EnforcerStats implements enforcer.StatsReader.
func (s *Shaper) EnforcerStats() enforcer.Stats { return s.stats }

var _ enforcer.Enforcer = (*Shaper)(nil)
var _ enforcer.StatsReader = (*Shaper)(nil)
var _ enforcer.Flusher = (*Shaper)(nil)
