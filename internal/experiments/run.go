package experiments

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/harness"
	"bcpqp/internal/metrics"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/sched"
	"bcpqp/internal/tcp"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// RunOpts configures a single-aggregate simulation run.
type RunOpts struct {
	// Scheme is the enforcement mechanism under test.
	Scheme harness.Scheme
	// Duration is the virtual run length.
	Duration time.Duration
	// Window is the throughput measurement window (default 250 ms).
	Window time.Duration
	// Queues overrides the queue count (default: one per flow).
	Queues int
	// Policy overrides the rate-sharing policy (default: fair).
	Policy *sched.Policy
	// FPWeights feeds the FairPolicer weighted variant.
	FPWeights []float64
	// Secondary inserts a downstream bottleneck of this rate.
	Secondary units.Rate
	// SecondaryBuf overrides the secondary bottleneck's buffer.
	SecondaryBuf int64
	// PhantomQueueSize overrides B for PQP/BC-PQP.
	PhantomQueueSize int64
	// PhantomRED enables the RED AQM extension on PQP/BC-PQP.
	PhantomRED *phantom.REDConfig
	// SrcIP namespaces flow keys (one value per aggregate).
	SrcIP uint32
}

// FlowOutcome summarizes one flow after a run.
type FlowOutcome struct {
	Spec        workload.FlowSpec
	Completed   time.Duration // last completion (0 = backlogged/incomplete)
	Delivered   int64         // receiver-side bytes (any order)
	Completions int           // bursts completed (on-off flows)

	// Transport counters, copied from the flow after the run.
	Sent       int64
	Rtx        int64
	Timeouts   int64
	ECNSignals int64
	CEMarks    int64
}

// AggResult is the outcome of one aggregate run.
type AggResult struct {
	Rate     units.Rate
	Duration time.Duration
	Meter    *metrics.Meter // keyed by flow index
	Flows    []FlowOutcome
	Stats    enforcer.Stats
}

// RunAggregate simulates one aggregate through one enforcement scheme.
func RunAggregate(agg workload.Aggregate, opts RunOpts) (*AggResult, error) {
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("experiments: non-positive duration")
	}
	queues := opts.Queues
	if queues <= 0 {
		queues = len(agg.Flows)
	}
	maxRTT := agg.MaxRTT()
	if maxRTT <= 0 {
		return nil, fmt.Errorf("experiments: aggregate has no flows")
	}
	h, err := harness.New(harness.Config{
		Scheme:           opts.Scheme,
		Rate:             agg.Rate,
		MaxRTT:           maxRTT,
		Queues:           queues,
		Policy:           opts.Policy,
		FPWeights:        opts.FPWeights,
		PhantomQueueSize: opts.PhantomQueueSize,
		PhantomRED:       opts.PhantomRED,
		Secondary:        opts.Secondary,
		SecondaryBuf:     opts.SecondaryBuf,
	})
	if err != nil {
		return nil, err
	}

	res := &AggResult{
		Rate:     agg.Rate,
		Duration: opts.Duration,
		Meter:    metrics.NewMeter(opts.Window),
		Flows:    make([]FlowOutcome, len(agg.Flows)),
	}

	flows := make([]*tcpFlowRef, len(agg.Flows))
	for i, spec := range agg.Flows {
		i, spec := i, spec
		res.Flows[i].Spec = spec
		key := packet.FlowKey{
			SrcIP:   opts.SrcIP + 1,
			DstIP:   0xC0A80001,
			SrcPort: uint16(i + 1),
			DstPort: 443,
			Proto:   6,
		}
		var flowAdd func(int64)
		fs := harness.FlowSpec{
			Key:   key,
			Class: spec.Class,
			CC:    spec.CC,
			RTT:   spec.RTT,
			Size:  spec.Size,
			ECN:   spec.ECN,
			Start: spec.Start,
			OnDeliver: func(now time.Duration, bytes int) {
				res.Meter.Add(now, i, bytes)
				res.Flows[i].Delivered += int64(bytes)
			},
		}
		if spec.OnOff != nil {
			onoff := spec.OnOff
			fs.OnComplete = func(now time.Duration) {
				res.Flows[i].Completed = now
				res.Flows[i].Completions++
				h.Loop.After(onoff.Idle, func() { flowAdd(onoff.BurstBytes) })
			}
		} else {
			fs.OnComplete = func(now time.Duration) {
				res.Flows[i].Completed = now
				res.Flows[i].Completions++
			}
		}
		flow, err := h.AttachFlow(fs)
		if err != nil {
			return nil, err
		}
		flowAdd = flow.AddData
		flows[i] = &tcpFlowRef{flow: flow}
	}

	h.Run(opts.Duration)
	res.Stats = h.Stats()
	for i, ref := range flows {
		res.Flows[i].Sent = ref.flow.SentSegments
		res.Flows[i].Rtx = ref.flow.RtxSegments
		res.Flows[i].Timeouts = ref.flow.Timeouts
		res.Flows[i].ECNSignals = ref.flow.ECNSignals
		res.Flows[i].CEMarks = ref.flow.CEMarks
	}
	return res, nil
}

// tcpFlowRef defers counter copying until the run completes.
type tcpFlowRef struct {
	flow *tcp.Flow
}

// AggregateWindowBytes sums per-flow window bytes into the aggregate's
// per-window series.
func (r *AggResult) AggregateWindowBytes() []int64 {
	var out []int64
	for i := range r.Flows {
		wb := r.Meter.WindowBytes(i)
		if len(wb) > len(out) {
			grown := make([]int64, len(wb))
			copy(grown, out)
			out = grown
		}
		for w, b := range wb {
			out[w] += b
		}
	}
	return out
}

// NormalizedAggSamples returns the aggregate's per-window throughput divided
// by the enforced rate, skipping windows before any flow started.
func (r *AggResult) NormalizedAggSamples() []float64 {
	wb := r.AggregateWindowBytes()
	window := r.Meter.Window()
	firstStart := time.Duration(1<<62 - 1)
	for _, f := range r.Flows {
		if f.Spec.Start < firstStart {
			firstStart = f.Spec.Start
		}
	}
	skip := int(firstStart / window)
	var out []float64
	for w := skip; w < len(wb); w++ {
		rate := float64(wb[w]) * 8 / window.Seconds()
		out = append(out, rate/float64(r.Rate))
	}
	return out
}

// JainPerWindow computes Jain's index across flows for every window in
// which at least one flow was active. A flow counts as active in a window
// if it delivered bytes, or if it is backlogged and had started.
func (r *AggResult) JainPerWindow() []float64 {
	window := r.Meter.Window()
	n := r.Meter.Windows()
	perFlow := make([][]int64, len(r.Flows))
	for i := range r.Flows {
		perFlow[i] = r.Meter.WindowBytes(i)
	}
	var out []float64
	shares := make([]float64, 0, len(r.Flows))
	for w := 0; w < n; w++ {
		at := time.Duration(w) * window
		shares = shares[:0]
		for i, f := range r.Flows {
			var bytes int64
			if w < len(perFlow[i]) {
				bytes = perFlow[i][w]
			}
			backloggedActive := f.Spec.Size == 0 && f.Spec.Start <= at
			if bytes > 0 || backloggedActive {
				shares = append(shares, float64(bytes))
			}
		}
		if len(shares) >= 2 {
			out = append(out, metrics.Jain(shares))
		}
	}
	return out
}

// secondHalf returns the steady-state half of a sample series.
func secondHalf(xs []float64) []float64 {
	return xs[len(xs)/2:]
}

// mean returns the arithmetic mean (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// meanNonZero returns the mean of the non-zero samples, the paper's Fig 4c
// statistic ("average of all non-zero aggregate throughput measurements").
func meanNonZero(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x != 0 {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
