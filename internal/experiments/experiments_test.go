package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

func TestRunAggregateBasics(t *testing.T) {
	agg := workload.Backlogged(5*units.Mbps, []string{"reno"},
		[]time.Duration{20 * time.Millisecond}, 2, 10*time.Millisecond)
	res, err := RunAggregate(agg, RunOpts{
		Scheme:   harness.SchemeBCPQP,
		Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate != 5*units.Mbps {
		t.Errorf("rate = %v", res.Rate)
	}
	total := res.Flows[0].Delivered + res.Flows[1].Delivered
	want := (5 * units.Mbps).Bytes(5 * time.Second)
	if float64(total) < 0.7*want || float64(total) > 1.3*want {
		t.Errorf("delivered %d bytes, want ≈%.0f", total, want)
	}
	samples := res.NormalizedAggSamples()
	if len(samples) == 0 {
		t.Fatal("no normalized samples")
	}
	if m := mean(secondHalf(samples)); m < 0.8 || m > 1.2 {
		t.Errorf("steady normalized throughput %v", m)
	}
}

func TestRunAggregateOnOff(t *testing.T) {
	agg := workload.Aggregate{
		Rate: 5 * units.Mbps,
		Flows: []workload.FlowSpec{{
			CC:    "cubic",
			RTT:   20 * time.Millisecond,
			Size:  200 * units.KB,
			Start: 10 * time.Millisecond,
			OnOff: &workload.OnOff{BurstBytes: 200 * units.KB, Idle: 500 * time.Millisecond},
			Class: 0,
		}},
	}
	res, err := RunAggregate(agg, RunOpts{
		Scheme:   harness.SchemeBCPQP,
		Duration: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Completions < 3 {
		t.Errorf("on-off flow completed %d bursts, want several", res.Flows[0].Completions)
	}
}

func TestRunAggregateValidation(t *testing.T) {
	agg := workload.Backlogged(units.Mbps, []string{"reno"},
		[]time.Duration{time.Millisecond}, 1, 0)
	if _, err := RunAggregate(agg, RunOpts{Scheme: harness.SchemeBCPQP}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := RunAggregate(workload.Aggregate{Rate: units.Mbps},
		RunOpts{Scheme: harness.SchemeBCPQP, Duration: time.Second}); err == nil {
		t.Error("empty aggregate accepted")
	}
}

func TestJainPerWindowCountsStarvedFlows(t *testing.T) {
	// One backlogged flow gets everything, the other is synthetic-starved
	// (never delivers); Jain must reflect the starvation, not ignore it.
	agg := workload.Backlogged(2*units.Mbps, []string{"cubic", "vegas"},
		[]time.Duration{10 * time.Millisecond}, 2, 10*time.Millisecond)
	res, err := RunAggregate(agg, RunOpts{
		Scheme:   harness.SchemeBCPQP,
		Duration: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	jains := res.JainPerWindow()
	if len(jains) == 0 {
		t.Fatal("no Jain samples despite two backlogged flows")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Columns: []string{"a", "bbbb"}}
	tab.AddRow("x", "y")
	out := tab.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "bbbb") || !strings.Contains(out, "x") {
		t.Errorf("table render missing content:\n%s", out)
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "figX", Title: "demo", Sections: []Section{{
		Heading: "part",
		Table:   &Table{Columns: []string{"c"}, Rows: [][]string{{"v"}}},
		Series:  []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}},
		Notes:   []string{"n"},
	}}}
	out := r.String()
	for _, want := range []string{"figX", "demo", "part", "series s", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, id := range IDs() {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%q): %v", id, err)
		}
		if _, err := Lookup("fig" + id); err != nil {
			t.Errorf("Lookup(fig%q): %v", id, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale(""); err != nil || s != Quick {
		t.Error("empty scale should be Quick")
	}
	if s, err := ParseScale("full"); err != nil || s != Full {
		t.Error("full scale parse failed")
	}
	if _, err := ParseScale("xl"); err == nil {
		t.Error("bad scale accepted")
	}
}

// TestFig2Shape runs the sizing experiment and asserts the paper's three
// qualitative findings.
func TestFig2Shape(t *testing.T) {
	r, err := Fig2(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Sections[0].Table.Rows
	parse := func(row int, col int) float64 {
		var v float64
		if _, err := fmt.Sscan(rows[row][col], &v); err != nil {
			t.Fatalf("parse %q: %v", rows[row][col], err)
		}
		return v
	}
	small := parse(0, 2) // 250 KB steady ratio
	right := parse(2, 2) // 1000 KB steady ratio
	large := parse(3, 2) // 4000 KB steady ratio
	if small >= 0.95 {
		t.Errorf("undersized queue achieved %.3f, expected clear under-enforcement", small)
	}
	if right < 0.93 || right > 1.07 {
		t.Errorf("requirement-sized queue achieved %.3f, want ≈1", right)
	}
	if large < 0.93 || large > 1.07 {
		t.Errorf("oversized queue achieved %.3f, want ≈1 (size does not matter beyond the requirement)", large)
	}
	smallPeak := parse(0, 3)
	largePeak := parse(3, 3)
	if largePeak <= smallPeak {
		t.Errorf("oversized queue peak %.2f not larger than undersized %.2f", largePeak, smallPeak)
	}
}

// TestFig3Shape asserts that burst control restores fairness under the
// secondary bottleneck.
func TestFig3Shape(t *testing.T) {
	r, err := Fig3(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	jain := func(section int) float64 {
		for _, n := range r.Sections[section].Notes {
			var v float64
			if _, err := fmt.Sscanf(n, "mean Jain index over run: %f", &v); err == nil {
				return v
			}
		}
		t.Fatalf("no Jain note in section %d", section)
		return 0
	}
	pqp, bc := jain(0), jain(1)
	if bc < 0.95 {
		t.Errorf("BC-PQP Jain %.3f, want ≥0.95", bc)
	}
	if bc <= pqp {
		t.Errorf("BC-PQP Jain (%.3f) not better than large-queue PQP (%.3f)", bc, pqp)
	}
}

// TestFig5Shape asserts the efficiency ordering the paper reports.
func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const n = 200_000
	policer := MeasureEfficiency(harness.SchemePolicer, n)
	bcpqp := MeasureEfficiency(harness.SchemeBCPQP, n)
	shaper := MeasureEfficiency(harness.SchemeShaper, n)
	if bcpqp.NsPerPacket < policer.NsPerPacket {
		t.Logf("bc-pqp (%.0f ns) cheaper than policer (%.0f ns)?",
			bcpqp.NsPerPacket, policer.NsPerPacket)
	}
	if bcpqp.NsPerPacket > 6*policer.NsPerPacket {
		t.Errorf("bc-pqp %.0f ns vs policer %.0f ns: ratio %.1f, want ≲6 (paper: 1.5-2)",
			bcpqp.NsPerPacket, policer.NsPerPacket, bcpqp.NsPerPacket/policer.NsPerPacket)
	}
	if shaper.NsPerPacket < 3*bcpqp.NsPerPacket {
		t.Errorf("shaper %.0f ns vs bc-pqp %.0f ns: ratio %.1f, want ≳3 (paper: 5-7)",
			shaper.NsPerPacket, bcpqp.NsPerPacket, shaper.NsPerPacket/bcpqp.NsPerPacket)
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{ID: "figX", Sections: []Section{{
		Table: &Table{Columns: []string{"a", "b,c"}, Rows: [][]string{{"1", `say "hi"`}}},
		Series: []Series{{
			Name: "flow 1", XLabel: "t", YLabel: "Mbps",
			X: []float64{0, 0.25}, Y: []float64{1.5, 2},
		}},
	}}}
	files := r.CSV()
	if len(files) != 2 {
		t.Fatalf("CSV produced %d files, want 2 (%v)", len(files), files)
	}
	table, ok := files["figX_1_table.csv"]
	if !ok {
		t.Fatalf("missing table file: %v", files)
	}
	if !strings.Contains(table, `"b,c"`) || !strings.Contains(table, `"say ""hi"""`) {
		t.Errorf("CSV quoting broken:\n%s", table)
	}
	series, ok := files["figX_1_flow_1.csv"]
	if !ok {
		t.Fatalf("missing series file: %v", files)
	}
	if !strings.Contains(series, "t,Mbps") || !strings.Contains(series, "0.25,2") {
		t.Errorf("series CSV content broken:\n%s", series)
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	out := Plot([]Series{
		{Name: "a", XLabel: "t", YLabel: "Mbps", X: []float64{0, 1, 2}, Y: []float64{1, 2, 3}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}},
	})
	for _, want := range []string{"Mbps", "t", "* a", "+ b", "3.0", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	if Plot(nil) != "" {
		t.Error("empty plot should render nothing")
	}
	if Plot([]Series{{Name: "e"}}) != "" {
		t.Error("pointless series should render nothing")
	}
	// A flat series must not divide by zero.
	out := Plot([]Series{{Name: "flat", X: []float64{0, 1}, Y: []float64{5, 5}}})
	if !strings.Contains(out, "flat") {
		t.Error("flat series did not render")
	}
}

// TestFig1bShape asserts the trade-off monotonicity: steady rate grows with
// the bucket while the peak grows too.
func TestFig1bShape(t *testing.T) {
	r, err := Fig1b(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Sections[0].Table.Rows
	var prevRate float64
	for i, row := range rows {
		var rate float64
		fmt.Sscan(row[2], &rate)
		if i > 0 && rate < prevRate-0.08 {
			t.Errorf("steady rate not (roughly) monotone in bucket size: row %d %.3f after %.3f",
				i, rate, prevRate)
		}
		prevRate = rate
	}
	var smallPeak, bigPeak float64
	fmt.Sscan(rows[0][3], &smallPeak)
	fmt.Sscan(rows[len(rows)-1][3], &bigPeak)
	if bigPeak <= smallPeak {
		t.Errorf("peak did not grow with bucket: %.2f -> %.2f", smallPeak, bigPeak)
	}
}

// TestFig6bcShape asserts FairPolicer's weighted failure vs BC-PQP.
func TestFig6bcShape(t *testing.T) {
	r, err := Fig6bc(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(section int) float64 {
		var v float64
		for _, n := range r.Sections[section].Notes {
			if _, err := fmt.Sscanf(n, "completion-time spread max/min = %f", &v); err == nil {
				return v
			}
		}
		t.Fatalf("no spread note in section %d", section)
		return 0
	}
	fp, bc := spread(0), spread(1)
	if bc >= fp {
		t.Errorf("BC-PQP spread (%.2f) not better than FairPolicer (%.2f)", bc, fp)
	}
	if bc > 2.0 {
		t.Errorf("BC-PQP completion spread %.2f, want ≲2 (near-simultaneous)", bc)
	}
}

// TestExtMemShape asserts the §2.1 memory argument: the shaper holds orders
// of magnitude more memory per aggregate than BC-PQP.
// TestExtOverloadShape pins the survival table's qualitative shape: every
// adversarial row disposes of its full offered load (the runner errors on a
// conservation mismatch), the floods genuinely overdrive the engine (most
// of the offered load shed, not enforced), and every scenario ends with the
// shards healthy. The name matches the chaos regex, so `make chaos` runs
// this under the race detector too.
func TestExtOverloadShape(t *testing.T) {
	r, err := ExtOverload(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Sections[0].Table.Rows
	if len(rows) != 4 {
		t.Fatalf("got %d scenario rows, want 4", len(rows))
	}
	for _, row := range rows {
		var offered, accepted, dropped, shed int64
		fmt.Sscan(row[1], &offered)
		fmt.Sscan(row[2], &accepted)
		fmt.Sscan(row[3], &dropped)
		fmt.Sscan(row[4], &shed)
		if offered == 0 || accepted == 0 {
			t.Errorf("%s: offered %d accepted %d, want both > 0", row[0], offered, accepted)
		}
		if accepted+dropped+shed != offered {
			t.Errorf("%s: disposition %d != offered %d", row[0], accepted+dropped+shed, offered)
		}
		if shed < offered/2 {
			t.Errorf("%s: shed %d of %d — the adversarial load did not overdrive the engine", row[0], shed, offered)
		}
		if row[5] != "true" {
			t.Errorf("%s: shards not healthy after the storm", row[0])
		}
	}
}

func TestExtMemShape(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates heavily")
	}
	r, err := ExtMem(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range r.Sections[0].Table.Rows {
		var kb float64
		fmt.Sscan(row[1], &kb)
		vals[row[0]] = kb
	}
	if vals["shaper"] < 20*vals["bc-pqp"] {
		t.Errorf("shaper %.1f KB vs bc-pqp %.1f KB; expected ≥20x gap", vals["shaper"], vals["bc-pqp"])
	}
}

// TestExtECNShape asserts marks displace retransmissions.
func TestExtECNShape(t *testing.T) {
	r, err := ExtECN(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Sections[0].Table.Rows
	var dropRtx, ecnRtx float64
	fmt.Sscan(rows[0][3], &dropRtx)
	fmt.Sscan(rows[1][3], &ecnRtx)
	if ecnRtx >= dropRtx {
		t.Errorf("ECN retransmissions (%v) not below drop-based (%v)", ecnRtx, dropRtx)
	}
	var ecnRate float64
	fmt.Sscan(rows[1][1], &ecnRate)
	if ecnRate < 0.9 {
		t.Errorf("ECN-marked flow at %.3f of rate, want ≥0.9", ecnRate)
	}
}

// TestAllFiguresSmoke regenerates every registered figure at quick scale:
// each must produce a non-empty report with at least one section.
func TestAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	reports, err := All(Quick, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(IDs()) {
		t.Fatalf("All produced %d reports for %d ids", len(reports), len(IDs()))
	}
	for _, r := range reports {
		if r.ID == "" || r.Title == "" || len(r.Sections) == 0 {
			t.Errorf("report %q is empty", r.ID)
		}
		if out := r.String(); len(out) < 100 {
			t.Errorf("report %q renders suspiciously short output", r.ID)
		}
		for name, csv := range r.CSV() {
			if len(csv) == 0 {
				t.Errorf("report %q produced empty CSV %q", r.ID, name)
			}
		}
	}
}
