package experiments

import (
	"fmt"
	"strings"
)

// CSV renders the report's tables and series as CSV documents, keyed by a
// stable filename (e.g. "fig4_1_table.csv", "fig2_2_B=250KB.csv"), so the
// figures can be plotted with external tooling. Series are exported at
// full resolution, unlike the subsampled text rendering.
func (r *Report) CSV() map[string]string {
	out := make(map[string]string)
	for si, sec := range r.Sections {
		if sec.Table != nil {
			name := fmt.Sprintf("%s_%d_table.csv", r.ID, si+1)
			out[name] = tableCSV(sec.Table)
		}
		for _, ser := range sec.Series {
			name := fmt.Sprintf("%s_%d_%s.csv", r.ID, si+1, sanitize(ser.Name))
			out[name] = seriesCSV(ser)
		}
	}
	return out
}

// tableCSV encodes one table.
func tableCSV(t *Table) string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

// seriesCSV encodes one series with labeled columns.
func seriesCSV(s Series) string {
	var b strings.Builder
	x, y := s.XLabel, s.YLabel
	if x == "" {
		x = "x"
	}
	if y == "" {
		y = "y"
	}
	writeCSVRow(&b, []string{x, y})
	for i := range s.X {
		writeCSVRow(&b, []string{
			fmt.Sprintf("%g", s.X[i]),
			fmt.Sprintf("%g", s.Y[i]),
		})
	}
	return b.String()
}

// writeCSVRow writes one RFC 4180 record.
func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// sanitize turns a series name into a filename fragment.
func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == '-', r == '_', r == '.', r == '=':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "series"
	}
	return b.String()
}
