package experiments

import (
	"fmt"
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// Fig6bc reproduces the weighted-fairness microbenchmark: 7 flows with
// weights 1..7 share 50 Mbps; each flow's size is proportional to its
// weight, so under correct weighted sharing all flows complete together.
// FairPolicer's weighted variant fails (its dynamic threshold equalizes
// bucket capacities); BC-PQP succeeds.
func Fig6bc(scale Scale, seed uint64) (*Report, error) {
	rate := 50 * units.Mbps
	const flows = 7
	rtt := 20 * time.Millisecond
	// Total transfer ≈ rate × target; flow i carries weight/(Σw) of it.
	target := 16 * time.Second
	if scale == Full {
		target = 30 * time.Second
	}
	totalBytes := rate.Bytes(target)

	weights := make([]float64, flows)
	var wsum float64
	for i := range weights {
		weights[i] = float64(i + 1)
		wsum += weights[i]
	}

	agg := workload.Aggregate{Label: "weighted", Rate: rate}
	for i := 0; i < flows; i++ {
		agg.Flows = append(agg.Flows, workload.FlowSpec{
			CC:     "cubic",
			RTT:    rtt,
			Size:   int64(totalBytes * weights[i] / wsum),
			Start:  10 * time.Millisecond,
			Class:  i,
			Weight: weights[i],
		})
	}

	report := &Report{
		ID:    "fig6bc",
		Title: "Weighted fairness: 7 flows, weights 1-7, sizes ∝ weight, r = 50 Mbps",
	}
	variants := []struct {
		name string
		opts RunOpts
	}{
		{"fig6b FairPolicer (weighted token allocation)", RunOpts{
			Scheme:    harness.SchemeFairPolicer,
			FPWeights: weights,
			Duration:  4 * target,
		}},
		{"fig6c BC-PQP (weighted fair policy)", RunOpts{
			Scheme:   harness.SchemeBCPQP,
			Policy:   sched.WeightedFair(weights...),
			Duration: 4 * target,
		}},
	}
	for _, v := range variants {
		res, err := RunAggregate(agg, v.opts)
		if err != nil {
			return nil, err
		}
		table := &Table{Columns: []string{"flow", "weight", "size (MB)",
			"completed (s)", "avg rate (Mbps)", "rate/weight (Mbps)"}}
		var minDone, maxDone float64
		for i, f := range res.Flows {
			done := f.Completed.Seconds()
			if done == 0 {
				done = v.opts.Duration.Seconds() // incomplete
			}
			start := f.Spec.Start.Seconds()
			avg := float64(f.Spec.Size) * 8 / (done - start) / 1e6
			table.AddRow(
				fmt.Sprintf("%d", i),
				f1(weights[i]),
				f1(float64(f.Spec.Size)/1e6),
				f2(done),
				f2(avg),
				f2(avg/weights[i]),
			)
			if i == 0 || done < minDone {
				minDone = done
			}
			if done > maxDone {
				maxDone = done
			}
		}
		report.Sections = append(report.Sections, Section{
			Heading: v.name,
			Table:   table,
			Notes: []string{
				fmt.Sprintf("completion-time spread max/min = %.2f (1.0 = perfect weighted sharing)",
					maxDone/minDone),
			},
		})
	}
	return report, nil
}

// Fig6d reproduces the nested-policy microbenchmark: priority group p1
// holds three on-off flows sharing in a 3:2:1 weighted-fair manner; p2
// holds one backlogged flow that should receive bandwidth only while p1 is
// idle.
func Fig6d(scale Scale, seed uint64) (*Report, error) {
	rate := 10 * units.Mbps
	rtt := 20 * time.Millisecond
	dur := 24 * time.Second
	if scale == Full {
		dur = 60 * time.Second
	}

	policy := sched.MustNew(sched.Priority(
		sched.Weighted(
			sched.Leaf(0).WithWeight(3),
			sched.Leaf(1).WithWeight(2),
			sched.Leaf(2).WithWeight(1),
		),
		sched.Leaf(3),
	))

	burst := int64(2 * units.MB)
	agg := workload.Aggregate{Label: "nested", Rate: rate}
	for i := 0; i < 3; i++ {
		agg.Flows = append(agg.Flows, workload.FlowSpec{
			CC:   "cubic",
			RTT:  rtt,
			Size: burst,
			// The p1 flows share on/off phase so the run has clear
			// all-idle gaps in which p2 should claim the rate.
			Start: 2 * time.Second,
			OnOff: &workload.OnOff{BurstBytes: burst, Idle: 4 * time.Second},
			Class: i,
		})
	}
	agg.Flows = append(agg.Flows, workload.FlowSpec{
		CC:    "cubic",
		RTT:   rtt,
		Size:  0, // backlogged low-priority flow
		Start: 10 * time.Millisecond,
		Class: 3,
	})

	res, err := RunAggregate(agg, RunOpts{
		Scheme:   harness.SchemeBCPQP,
		Policy:   policy,
		Duration: dur,
	})
	if err != nil {
		return nil, err
	}

	names := []string{"p1-w3 (on-off)", "p1-w2 (on-off)", "p1-w1 (on-off)", "p2 (backlogged)"}
	var series []Series
	for i, name := range names {
		rates := res.Meter.Series(i)
		x := make([]float64, len(rates))
		y := make([]float64, len(rates))
		for w, r := range rates {
			x[w] = float64(w) * res.Meter.Window().Seconds()
			y[w] = r.Mbps()
		}
		series = append(series, Series{
			Name: name, XLabel: "time (s)", YLabel: "throughput (Mbps)", X: x, Y: y,
		})
	}

	// Quantify the priority property: p2's rate while any p1 flow is
	// active vs while p1 is idle.
	p1Bytes := make([]int64, res.Meter.Windows())
	for i := 0; i < 3; i++ {
		for w, b := range res.Meter.WindowBytes(i) {
			p1Bytes[w] += b
		}
	}
	p2 := res.Meter.WindowBytes(3)
	var p2WhileP1, p2WhileIdle float64
	var busyWins, idleWins int
	for w := range p1Bytes {
		var p2b int64
		if w < len(p2) {
			p2b = p2[w]
		}
		if p1Bytes[w] > 0 {
			p2WhileP1 += float64(p2b)
			busyWins++
		} else {
			p2WhileIdle += float64(p2b)
			idleWins++
		}
	}
	window := res.Meter.Window().Seconds()
	busyRate, idleRate := 0.0, 0.0
	if busyWins > 0 {
		busyRate = p2WhileP1 * 8 / (float64(busyWins) * window) / 1e6
	}
	if idleWins > 0 {
		idleRate = p2WhileIdle * 8 / (float64(idleWins) * window) / 1e6
	}

	return &Report{
		ID:    "fig6d",
		Title: "Nested policy: priority over weighted fairness (BC-PQP, r = 10 Mbps)",
		Sections: []Section{
			{Series: series},
			{Notes: []string{
				fmt.Sprintf("p2 rate while p1 active: %.2f Mbps over %d windows", busyRate, busyWins),
				fmt.Sprintf("p2 rate while p1 idle:   %.2f Mbps over %d windows", idleRate, idleWins),
				"paper: p1 flows get all bandwidth (weighted) when active; p2 only fills idle gaps",
			}},
		},
	}, nil
}
