package experiments

import (
	"fmt"
	"math"
	"strings"
)

// plotWidth/plotHeight size the ASCII charts embedded in reports.
const (
	plotWidth  = 72
	plotHeight = 14
)

// Plot renders a group of series as one ASCII chart (shared axes), giving
// the text reports actual figure shapes. Each series draws with its own
// glyph; a legend follows the chart.
func Plot(series []Series) string {
	if len(series) == 0 {
		return ""
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	// Shared bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return ""
	}
	if ymin > 0 && ymin < ymax/4 {
		ymin = 0 // anchor rate-like plots at zero
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, plotHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotWidth))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(plotWidth-1))
			row := int((s.Y[i] - ymin) / (ymax - ymin) * float64(plotHeight-1))
			row = plotHeight - 1 - row
			if col >= 0 && col < plotWidth && row >= 0 && row < plotHeight {
				if grid[row][col] == ' ' || grid[row][col] == g {
					grid[row][col] = g
				} else {
					grid[row][col] = '?' // overlapping series
				}
			}
		}
	}

	var b strings.Builder
	yl := series[0].YLabel
	if yl != "" {
		fmt.Fprintf(&b, "%s\n", yl)
	}
	for r, row := range grid {
		var label string
		switch r {
		case 0:
			label = trimNum(ymax)
		case plotHeight - 1:
			label = trimNum(ymin)
		}
		fmt.Fprintf(&b, "%8s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", plotWidth))
	fmt.Fprintf(&b, "%8s  %-*s%s\n", "", plotWidth-len(trimNum(xmax)), trimNum(xmin), trimNum(xmax))
	if xl := series[0].XLabel; xl != "" {
		fmt.Fprintf(&b, "%8s  %s\n", "", xl)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// trimNum formats an axis bound compactly.
func trimNum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
