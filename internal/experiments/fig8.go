package experiments

import (
	"fmt"
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/metrics"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// Fig8 validates the Appendix A sizing analysis empirically: for a grid of
// (rate, RTT) pairs, a phantom queue at exactly the BDP²/18×MSS requirement
// sustains the enforced rate for a Reno flow, a queue at a quarter of the
// requirement under-enforces, and in steady state the flow's instantaneous
// rate oscillates within roughly [2r/3, 4r/3].
func Fig8(scale Scale, seed uint64) (*Report, error) {
	type point struct {
		rate units.Rate
		rtt  time.Duration
	}
	grid := []point{
		{5 * units.Mbps, 50 * time.Millisecond},
		{10 * units.Mbps, 50 * time.Millisecond},
		{10 * units.Mbps, 100 * time.Millisecond},
		{20 * units.Mbps, 100 * time.Millisecond},
	}
	dur := 30 * time.Second
	if scale == Full {
		dur = 60 * time.Second
		grid = append(grid, point{40 * units.Mbps, 100 * time.Millisecond})
	}

	table := &Table{Columns: []string{"rate", "RTT (ms)", "B=req: rate/r",
		"B=req/4: rate/r", "steady min/r", "steady max/r"}}
	for _, p := range grid {
		req := units.RenoPhantomRequirement(p.rate, p.rtt)
		agg := workload.Backlogged(p.rate, []string{"reno"},
			[]time.Duration{p.rtt}, 1, 10*time.Millisecond)

		run := func(b int64) (*AggResult, error) {
			return RunAggregate(agg, RunOpts{
				Scheme:           harness.SchemePQP,
				PhantomQueueSize: b,
				Queues:           1,
				Duration:         dur,
				// Window ≈ RTT so the oscillation bounds are
				// visible (the paper's analysis is per-RTT).
				Window: p.rtt,
			})
		}
		full, err := run(req)
		if err != nil {
			return nil, err
		}
		quarter, err := run(req / 4)
		if err != nil {
			return nil, err
		}
		steady := secondHalf(full.NormalizedAggSamples())
		d := metrics.NewDist(steady)
		table.AddRow(
			p.rate.String(),
			f1(float64(p.rtt.Milliseconds())),
			f3(mean(steady)),
			f3(mean(secondHalf(quarter.NormalizedAggSamples()))),
			f2(d.Quantile(0.02)),
			f2(d.Quantile(0.98)),
		)
	}
	return &Report{
		ID:    "fig8",
		Title: "Appendix A validation: Reno needs B ≥ BDP²/18 × MSS; steady rate ∈ [≈2r/3, ≈4r/3]",
		Sections: []Section{{
			Table: table,
			Notes: []string{
				fmt.Sprintf("run length %v per cell; min/max are 2nd/98th percentiles of per-RTT rate", dur),
			},
		}},
	}, nil
}
