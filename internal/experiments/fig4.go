package experiments

import (
	"fmt"
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/metrics"
	"bcpqp/internal/rng"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// fig4Schemes is the paper's comparison set for the rate-enforcement study.
var fig4Schemes = []harness.Scheme{
	harness.SchemeShaper,
	harness.SchemePolicer,
	harness.SchemePolicerPlus,
	harness.SchemeFairPolicer,
	harness.SchemeBCPQP,
}

// fig4Run holds the workload sweep results shared by Figs 4a-4d and 6a.
type fig4Run struct {
	rates   []units.Rate
	schemes []harness.Scheme
	// normalized[scheme][rate] = pooled normalized window samples
	normalized map[harness.Scheme]map[units.Rate][]float64
	// dropRate[scheme][rate] = pooled drop rate
	dropRate map[harness.Scheme]map[units.Rate]float64
	// jain[scheme] = pooled per-window Jain samples across rates
	jain map[harness.Scheme][]float64
}

// runFig4 executes the §6.1 sweep: aggregates of mixed composition per
// rate, each pushed through every scheme.
func runFig4(scale Scale, seed uint64) (*fig4Run, error) {
	rates := []units.Rate{
		units.Rate(1.5 * units.Mbps),
		units.Rate(7.5 * units.Mbps),
		25 * units.Mbps,
	}
	aggregates := 6
	dur := 10 * time.Second
	if scale == Full {
		rates = append(rates, 50*units.Mbps, 100*units.Mbps)
		aggregates = 100
		dur = 30 * time.Second
	}

	run := &fig4Run{
		rates:      rates,
		schemes:    fig4Schemes,
		normalized: map[harness.Scheme]map[units.Rate][]float64{},
		dropRate:   map[harness.Scheme]map[units.Rate]float64{},
		jain:       map[harness.Scheme][]float64{},
	}
	src := rng.New(seed)
	for _, scheme := range run.schemes {
		run.normalized[scheme] = map[units.Rate][]float64{}
		run.dropRate[scheme] = map[units.Rate]float64{}
	}
	for ri, rate := range rates {
		aggs := workload.Section61(src.Split(uint64(ri)), workload.Section61Config{
			Aggregates: aggregates,
			Rate:       rate,
			Duration:   dur,
		})
		for _, scheme := range run.schemes {
			var dropped, total int64
			for ai, agg := range aggs {
				res, err := RunAggregate(agg, RunOpts{
					Scheme:   scheme,
					Duration: dur,
					SrcIP:    uint32(ai),
				})
				if err != nil {
					return nil, err
				}
				run.normalized[scheme][rate] = append(
					run.normalized[scheme][rate], res.NormalizedAggSamples()...)
				run.jain[scheme] = append(run.jain[scheme], res.JainPerWindow()...)
				dropped += res.Stats.DroppedPackets
				p, _ := res.Stats.Totals()
				total += p
			}
			if total > 0 {
				run.dropRate[scheme][rate] = float64(dropped) / float64(total)
			}
		}
	}
	return run, nil
}

// Fig4 produces the full rate-enforcement report (4a body CDF, 4b tail,
// 4c mean normalized throughput, 4d drop rates).
func Fig4(scale Scale, seed uint64) (*Report, error) {
	run, err := runFig4(scale, seed)
	if err != nil {
		return nil, err
	}
	report := &Report{
		ID:    "fig4",
		Title: "Aggregate rate enforcement across schemes (§6.1 workload)",
	}

	// 4a: distribution body of normalized aggregate throughput.
	body := &Table{Columns: []string{"scheme", "p10", "p25", "p50", "p75", "p90"}}
	for _, s := range run.schemes {
		var pooled []float64
		for _, r := range run.rates {
			pooled = append(pooled, run.normalized[s][r]...)
		}
		d := metrics.NewDist(pooled)
		body.AddRow(s.String(), f3(d.Quantile(0.10)), f3(d.Quantile(0.25)),
			f3(d.Quantile(0.50)), f3(d.Quantile(0.75)), f3(d.Quantile(0.90)))
	}
	report.Sections = append(report.Sections, Section{
		Heading: "fig4a: normalized aggregate throughput distribution (250 ms windows)",
		Table:   body,
		Notes:   []string{"paper: body stays within ≈0.8-1.2 for all schemes; shaper tightest"},
	})

	// 4b: tail (burst) of the same distribution.
	tail := &Table{Columns: []string{"scheme", "p99", "p99.9", "max"}}
	for _, s := range run.schemes {
		var pooled []float64
		for _, r := range run.rates {
			pooled = append(pooled, run.normalized[s][r]...)
		}
		d := metrics.NewDist(pooled)
		tail.AddRow(s.String(), f2(d.Quantile(0.99)), f2(d.Quantile(0.999)), f2(d.Max()))
	}
	report.Sections = append(report.Sections, Section{
		Heading: "fig4b: tail of normalized aggregate throughput (burst)",
		Table:   tail,
		Notes:   []string{"paper: Policer+ and FairPolicer burst >10×; BC-PQP small"},
	})

	// 4c: mean of non-zero normalized samples per scheme × rate.
	meanTable := &Table{Columns: append([]string{"scheme"}, rateHeaders(run.rates)...)}
	for _, s := range run.schemes {
		row := []string{s.String()}
		for _, r := range run.rates {
			row = append(row, f3(meanNonZero(run.normalized[s][r])))
		}
		meanTable.AddRow(row...)
	}
	report.Sections = append(report.Sections, Section{
		Heading: "fig4c: mean normalized aggregate throughput (non-zero windows)",
		Table:   meanTable,
		Notes:   []string{"paper: plain policer sits below 1; FP/Policer+ above 1 (burst-skewed)"},
	})

	// 4d: drop rates per scheme × rate.
	dropTable := &Table{Columns: append([]string{"scheme"}, rateHeaders(run.rates)...)}
	for _, s := range run.schemes {
		row := []string{s.String()}
		for _, r := range run.rates {
			row = append(row, f3(run.dropRate[s][r]))
		}
		dropTable.AddRow(row...)
	}
	report.Sections = append(report.Sections, Section{
		Heading: "fig4d: packet drop rate",
		Table:   dropTable,
		Notes: []string{
			"paper: drops fall as BDP grows; BC-PQP ≈ BDP policer, below FP/Policer+; shaper lowest",
		},
	})
	return report, nil
}

// Fig6a renders the per-flow fairness CDF from the same sweep.
func Fig6a(scale Scale, seed uint64) (*Report, error) {
	run, err := runFig4(scale, seed)
	if err != nil {
		return nil, err
	}
	table := &Table{Columns: []string{"scheme", "p10", "p25", "p50", "mean"}}
	var series []Series
	for _, s := range run.schemes {
		d := metrics.NewDist(run.jain[s])
		table.AddRow(s.String(), f3(d.Quantile(0.10)), f3(d.Quantile(0.25)),
			f3(d.Quantile(0.50)), f3(d.Mean()))
		vals, fracs := d.CDF(40)
		series = append(series, Series{
			Name: s.String(), XLabel: "Jain index", YLabel: "CDF", X: vals, Y: fracs,
		})
	}
	return &Report{
		ID:    "fig6a",
		Title: "Per-flow fairness (Jain index over 250 ms windows) across schemes",
		Sections: []Section{
			{Table: table, Notes: []string{
				"paper: shaper ≈ BC-PQP near 1; FairPolicer below; plain policers lowest",
			}},
			{Heading: "CDF series", Series: series},
		},
	}, nil
}

func rateHeaders(rates []units.Rate) []string {
	out := make([]string, len(rates))
	for i, r := range rates {
		out[i] = fmt.Sprintf("%gMbps", r.Mbps())
	}
	return out
}
