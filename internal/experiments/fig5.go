package experiments

import (
	"runtime"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/fairpolicer"
	"bcpqp/internal/harness"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/rng"
	"bcpqp/internal/shaper"
	"bcpqp/internal/tbf"
	"bcpqp/internal/timerwheel"
	"bcpqp/internal/units"
)

// EfficiencyRig drives one enforcer's real datapath with a pre-generated
// synthetic packet stream on a virtual clock, measuring the per-packet CPU
// cost the paper uses as its scalability proxy (Fig 5). The same rig backs
// the testing.B benchmarks in bench_test.go.
//
// The stream models 16 flows offering ≈1.3× the enforced rate with
// per-flow jitter and occasional micro-bursts, so every scheme exercises
// its full decision path (admission, drops, token/queue maintenance). The
// shaper is driven through a hashed timing wheel — its production dequeue
// scheduling structure — advanced inline with the virtual clock, and its
// dequeues copy real payload bytes, charging it the memory-movement cost
// §2.1 describes.
type EfficiencyRig struct {
	enf   enforcer.Enforcer
	wheel *timerwheel.Wheel // nil for bufferless schemes

	gaps    []time.Duration
	classes []int
	pkts    []packet.Packet
	now     time.Duration

	// burstBuf/burstVerdicts are reusable scratch for SubmitBurst, so the
	// batch measurement loop performs no allocation.
	burstBuf      []packet.Packet
	burstVerdicts []enforcer.Verdict

	// Sunk prevents the sink from being optimized away.
	Sunk int64
}

// Rig sizing shared with Fig 1a.
const (
	rigRate   = 50 * units.Mbps
	rigFlows  = 16
	rigMaxRTT = 50 * time.Millisecond
)

// NewEfficiencyRig builds the rig for one scheme.
func NewEfficiencyRig(scheme harness.Scheme) *EfficiencyRig {
	rig := &EfficiencyRig{}

	// Pre-generate the arrival pattern so measurement loops contain no
	// RNG work. Mean inter-arrival = MSS / (1.3 × rate), with jitter
	// and a 1-in-16 chance of a back-to-back burst of 4.
	src := rng.New(0xEFF1C1)
	const patternLen = 1 << 14
	meanGap := time.Duration(float64(rigRate.DurationForBytes(units.MSS)) / 1.3)
	payload := make([]byte, units.MSS)
	for i := 0; i < patternLen; i++ {
		gap := time.Duration(src.Range(0.5, 1.5) * float64(meanGap))
		if src.IntN(16) == 0 {
			gap = 0 // micro-burst
		}
		class := src.IntN(rigFlows)
		rig.gaps = append(rig.gaps, gap)
		rig.classes = append(rig.classes, class)
		rig.pkts = append(rig.pkts, packet.Packet{
			Key: packet.FlowKey{
				SrcIP: 10, DstIP: 20,
				SrcPort: uint16(class + 1), DstPort: 443, Proto: 6,
			},
			Class:   class,
			Size:    units.MSS,
			Payload: payload,
		})
	}

	switch scheme {
	case harness.SchemeShaper, harness.SchemeSingleShaper:
		queues := rigFlows
		if scheme == harness.SchemeSingleShaper {
			queues = 1
		}
		qsize := units.BDPBytes(rigRate, rigMaxRTT)
		wheel := timerwheel.MustNew(50*time.Microsecond, 1024)
		rig.wheel = wheel
		rig.enf = shaper.MustNew(shaper.Config{
			Rate:      rigRate,
			Queues:    queues,
			QueueSize: qsize,
			Scheduler: shaper.SchedulerFunc(func(at time.Duration, fn func()) {
				wheel.Schedule(at, fn)
			}),
			Sink: func(now time.Duration, p packet.Packet) {
				rig.Sunk += int64(p.Size)
			},
		})
	case harness.SchemePolicer:
		rig.enf = tbf.MustNew(rigRate, tbf.BDPBucket(rigRate, rigMaxRTT))
	case harness.SchemePolicerPlus:
		rig.enf = tbf.MustNew(rigRate, tbf.PlusBucket(rigRate, rigMaxRTT))
	case harness.SchemeFairPolicer:
		rig.enf = fairpolicer.MustNew(fairpolicer.Config{
			Rate:   rigRate,
			Bucket: tbf.PlusBucket(rigRate, rigMaxRTT),
			Flows:  rigFlows,
		})
	case harness.SchemePQP:
		rig.enf = phantom.MustNew(phantom.Config{
			Rate:      rigRate,
			Queues:    rigFlows,
			QueueSize: units.RenoPhantomRequirement(rigRate, rigMaxRTT),
		})
	case harness.SchemeBCPQP:
		rig.enf = phantom.MustNew(phantom.Config{
			Rate:         rigRate,
			Queues:       rigFlows,
			QueueSize:    10 * tbf.PlusBucket(rigRate, rigMaxRTT),
			BurstControl: true,
		})
	default:
		panic("experiments: unknown scheme for efficiency rig")
	}
	return rig
}

// Submit pushes the i-th packet of the (wrapping) pattern through the
// datapath, advancing the virtual clock and, for the shaper, the timing
// wheel.
func (r *EfficiencyRig) Submit(i int) enforcer.Verdict {
	idx := i & (len(r.gaps) - 1)
	r.now += r.gaps[idx]
	v := r.enf.Submit(r.now, r.pkts[idx])
	if r.wheel != nil {
		r.wheel.Advance(r.now)
	}
	return v
}

// SubmitBurst pushes the n pattern packets starting at index i through the
// enforcer's batch datapath in one call. Virtual time advances by the
// burst's total inter-arrival gap and every packet in the burst is
// enforced at the burst arrival time — the granularity a burst-polling
// (DPDK-style) middlebox actually observes. Native batch implementations
// are used when the enforcer provides one, the generic Submit loop
// otherwise.
func (r *EfficiencyRig) SubmitBurst(i, n int) {
	if cap(r.burstBuf) < n {
		r.burstBuf = make([]packet.Packet, n)
		r.burstVerdicts = make([]enforcer.Verdict, n)
	}
	buf := r.burstBuf[:n]
	for k := 0; k < n; k++ {
		idx := (i + k) & (len(r.gaps) - 1)
		r.now += r.gaps[idx]
		buf[k] = r.pkts[idx]
	}
	enforcer.SubmitBatch(r.enf, r.now, buf, r.burstVerdicts[:n])
	if r.wheel != nil {
		r.wheel.Advance(r.now)
	}
}

// Stats exposes the enforcer's accounting.
func (r *EfficiencyRig) Stats() enforcer.Stats {
	if sr, ok := r.enf.(enforcer.StatsReader); ok {
		return sr.EnforcerStats()
	}
	return enforcer.Stats{}
}

// Efficiency is one scheme's measured datapath cost.
type Efficiency struct {
	Scheme          harness.Scheme
	NsPerPacket     float64
	AllocsPerPacket float64
	DropRate        float64
}

// efficiencyPackets scales the measurement length.
func efficiencyPackets(scale Scale) int {
	if scale == Full {
		return 3_000_000
	}
	return 500_000
}

// MeasureEfficiency times n packets through the scheme's datapath.
func MeasureEfficiency(scheme harness.Scheme, n int) Efficiency {
	rig := NewEfficiencyRig(scheme)
	// Warm up caches and steady-state token/queue levels.
	for i := 0; i < n/10+1; i++ {
		rig.Submit(i)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		rig.Submit(i)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	stats := rig.Stats()
	return Efficiency{
		Scheme:          scheme,
		NsPerPacket:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerPacket: float64(after.Mallocs-before.Mallocs) / float64(n),
		DropRate:        stats.DropRate(),
	}
}

// Fig5 reports per-packet datapath cost for every scheme.
func Fig5(scale Scale, seed uint64) (*Report, error) {
	n := efficiencyPackets(scale)
	table := &Table{Columns: []string{"scheme", "ns/packet", "allocs/packet",
		"relative to policer", "drop rate"}}
	var policerNs float64
	results := make([]Efficiency, 0, len(harness.AllSchemes()))
	for _, s := range harness.AllSchemes() {
		e := MeasureEfficiency(s, n)
		results = append(results, e)
		if s == harness.SchemePolicer {
			policerNs = e.NsPerPacket
		}
	}
	for _, e := range results {
		rel := "-"
		if policerNs > 0 {
			rel = f2(e.NsPerPacket / policerNs)
		}
		table.AddRow(e.Scheme.String(), f1(e.NsPerPacket), f2(e.AllocsPerPacket),
			rel, f3(e.DropRate))
	}
	return &Report{
		ID:    "fig5",
		Title: "CPU cost per packet (datapath micro-benchmark; cycles proxy)",
		Sections: []Section{{
			Table: table,
			Notes: []string{
				"paper: BC-PQP 5-7× cheaper than the shaper, within 1.5-2× of a plain policer",
				"the shaper pays buffering, payload copies, and timing-wheel dequeue scheduling",
				"FairPolicer pays per-enqueue token distribution",
			},
		}},
	}, nil
}
