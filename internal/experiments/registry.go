package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one figure/table of the paper.
type Runner func(scale Scale, seed uint64) (*Report, error)

// registry maps figure IDs to their runners.
var registry = map[string]Runner{
	"1a":  Fig1a,
	"1b":  Fig1b,
	"2":   Fig2,
	"3":   Fig3,
	"3a":  Fig3, // 3a and 3b are two sections of the same run
	"3b":  Fig3,
	"4":   Fig4,
	"4a":  Fig4,
	"4b":  Fig4,
	"4c":  Fig4,
	"4d":  Fig4,
	"5":   Fig5,
	"6a":  Fig6a,
	"6b":  Fig6bc,
	"6c":  Fig6bc,
	"6bc": Fig6bc,
	"6d":  Fig6d,
	"7a":  Fig7a,
	"7b":  Fig7b,
	"8":   Fig8,
	"9":   Fig9,
	// Extensions beyond the paper's figures.
	"ext-aqm":      ExtAQM,
	"ext-audit":    ExtAudit,
	"ext-datapath": ExtDatapath,
	"ext-ecn":      ExtECN,
	"ext-mem":      ExtMem,
	"ext-overload": ExtOverload,
}

// Lookup resolves a figure ID (with or without a "fig" prefix).
func Lookup(id string) (Runner, error) {
	key := id
	if len(key) > 3 && key[:3] == "fig" {
		key = key[3:]
	}
	r, ok := registry[key]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (known: %v)", id, IDs())
	}
	return r, nil
}

// IDs lists the canonical set of figure IDs, deduplicated and sorted.
func IDs() []string {
	canonical := []string{"1a", "1b", "2", "3", "4", "5", "6a", "6bc", "6d",
		"7a", "7b", "8", "9", "ext-aqm", "ext-audit", "ext-datapath", "ext-ecn", "ext-mem", "ext-overload"}
	sort.Strings(canonical)
	return canonical
}

// All runs every experiment at the given scale, in figure order.
func All(scale Scale, seed uint64) ([]*Report, error) {
	order := []string{"1a", "1b", "2", "3", "4", "5", "6a", "6bc", "6d",
		"7a", "7b", "8", "9", "ext-aqm", "ext-audit", "ext-datapath", "ext-ecn", "ext-mem", "ext-overload"}
	var out []*Report
	for _, id := range order {
		r, err := registry[id](scale, seed)
		if err != nil {
			return nil, fmt.Errorf("fig%s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}
