package experiments

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bcpqp/internal/mbox"
	"bcpqp/internal/netio"
	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// ExtDatapath is an extension experiment beyond the paper's figures: the
// datapath-mode comparison. The paper's evaluation runs BC-PQP inside a
// DPDK-style run-to-completion datapath; this repo's proxy offers two
// socket datapaths — the single-socket ring mode (one ReadFrom syscall per
// datagram, payload copy, shard-ring handoff) and the per-core mode
// (SO_REUSEPORT sockets, recvmmsg bursts, zero-copy inline enforcement
// through the ring-bypass submitter). This experiment drives the same
// paced open-loop schedule (netio.Blast over real loopback UDP, a
// workload.Flood pinned to a fixed packet rate) at each mode and accounts
// for every datagram: ingested and enforced, or shed by the kernel at the
// listener's receive buffer because the datapath could not drain in time.
// The rx-syscall column is the paper's batching argument made concrete —
// the per-core datapath ingests ≈one burst per syscall where the
// single-socket path pays one syscall per packet.
//
// On platforms without the batched backend (non-Linux, or exotic arches)
// the per-core rows fall back to one portable single-datagram worker and
// the table says so rather than failing.
func ExtDatapath(scale Scale, seed uint64) (*Report, error) {
	pkts := int64(6400)
	if scale == Full {
		pkts = 64000
	}

	type mode struct {
		name  string
		cores int
	}
	modes := []mode{
		{"single-socket ring", 1},
		{"percore inline ×1", 1},
		{"percore inline ×2", 2},
	}

	table := &Table{Columns: []string{"datapath mode", "offered pkts",
		"ingested", "kernel-shed", "accepted", "rx syscalls", "pkts/syscall"}}
	notes := []string{
		"offered = ingested + kernel-shed exactly: the generator is open-loop",
		"(paced to a fixed packet rate, blind to drops), so datagrams the",
		"datapath cannot drain are dropped by the kernel at the listener's",
		"receive buffer, never queued against the enforcer; rx syscalls counts",
		"successful receive calls — batched ingest amortizes one syscall over",
		"a whole burst where the single-socket path pays one per packet",
	}
	if !netio.SupportsBatch() {
		notes = append(notes,
			"batched backend unavailable on this platform: percore rows ran the",
			"portable single-datagram fallback on one worker")
	}
	for _, m := range modes {
		row, err := runDatapathMode(m.name, m.cores, pkts, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		perSyscall := 0.0
		if row.rxCalls > 0 {
			perSyscall = float64(row.ingested) / float64(row.rxCalls)
		}
		table.AddRow(m.name,
			fmt.Sprintf("%d", row.offered),
			fmt.Sprintf("%d", row.ingested),
			fmt.Sprintf("%d", row.offered-row.ingested),
			fmt.Sprintf("%d", row.accepted),
			fmt.Sprintf("%d", row.rxCalls),
			fmt.Sprintf("%.1f", perSyscall),
		)
	}
	return &Report{
		ID:    "ext-datapath",
		Title: "Extension: datapath modes at a fixed open-loop blast",
		Sections: []Section{{
			Table: table,
			Notes: notes,
		}},
	}, nil
}

// pacedSource paces an open-loop schedule to a fixed packet rate: Next
// still never blocks on the consumer (drops stay invisible to the
// generator), but bursts leave the blaster on a clock instead of at line
// rate, which is what "offered load" means on a host where the generator
// and the datapath share CPUs.
type pacedSource struct {
	inner    workload.Source
	interval time.Duration // between bursts of up to one batch
	next     time.Time
}

func (p *pacedSource) Next(buf []packet.Packet) (time.Duration, int, bool) {
	now := time.Now()
	if p.next.IsZero() {
		p.next = now
	}
	if d := p.next.Sub(now); d > 0 {
		time.Sleep(d)
	}
	p.next = p.next.Add(p.interval)
	return p.inner.Next(buf)
}

func (p *pacedSource) Offered() (int64, int64) { return p.inner.Offered() }

type datapathRow struct {
	offered  int64
	ingested int64
	accepted int64
	rxCalls  int64
}

// runDatapathMode drives pkts paced datagrams at one datapath
// configuration and accounts for every one of them. The enforcer bound is
// set far above the offered load so the disposition isolates the datapath.
func runDatapathMode(name string, cores int, pkts int64, seed uint64) (datapathRow, error) {
	percore := name != "single-socket ring"
	if percore && cores > 1 && !netio.SupportsBatch() {
		cores = 1
	}

	var ticks atomic.Int64
	e := mbox.New(mbox.Config{
		Shards:     cores,
		QueueDepth: 1 << 12,
		Clock: func() time.Duration {
			return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
		},
		CloseTimeout: 10 * time.Second,
	})
	defer e.Close()

	const rate, bucket = units.Gbps, int64(1000 * units.MSS)
	ncfg := netio.Config{ReusePort: percore && cores > 1, ForceSingle: !netio.SupportsBatch()}

	type worker struct {
		rx *netio.Conn
		pc net.PacketConn // single-socket mode
		ls *mbox.LocalSubmitter
		h  mbox.Handle
	}
	ws := make([]*worker, cores)
	listen := "127.0.0.1:0"
	ids := make([]string, cores)
	for i := range ws {
		w := &worker{}
		ws[i] = w
		ids[i] = fmt.Sprintf("dp-%d", i)
		var err error
		if percore {
			if w.rx, err = netio.Listen(listen, ncfg); err != nil {
				return datapathRow{}, err
			}
			defer w.rx.Close()
			if i == 0 {
				listen = w.rx.LocalAddr().String()
			}
			if w.h, err = e.AddPinned(ids[i], i, tbf.MustNew(rate, bucket), nil); err != nil {
				return datapathRow{}, err
			}
			if w.ls, err = e.LocalShard(i); err != nil {
				return datapathRow{}, err
			}
		} else {
			if w.pc, err = net.ListenPacket("udp", listen); err != nil {
				return datapathRow{}, err
			}
			defer w.pc.Close()
			listen = w.pc.LocalAddr().String()
			if w.h, err = e.Add(ids[i], tbf.MustNew(rate, bucket), nil); err != nil {
				return datapathRow{}, err
			}
		}
	}

	// One blaster per worker: each gets its own source socket so REUSEPORT
	// spreads the load, and the per-blaster counts sum to offered. 16k pps
	// aggregate (32-packet bursts every 2ms per blaster at cores=1) keeps a
	// shared-CPU host honest: the datapath must drain between bursts.
	const aggregatePPS = 16000
	var offered atomic.Int64
	var blasters sync.WaitGroup
	blastDone := make(chan struct{})
	var blastErr error
	var blastMu sync.Mutex
	for i := 0; i < cores; i++ {
		blasters.Add(1)
		go func(i int) {
			defer blasters.Done()
			src := &pacedSource{
				inner: workload.NewFlood(workload.FloodConfig{
					Rate: 10 * units.Gbps, Duration: time.Hour,
					PktSize: 200, Flows: 8, SrcIP: uint32(seed) + uint32(i) + 1,
				}),
				interval: time.Duration(int64(time.Second) * 32 * int64(cores) / aggregatePPS),
			}
			n, _, err := netio.Blast(listen, src, netio.BlastConfig{
				Config: netio.Config{BufBytes: 256}, MaxPackets: pkts / int64(cores),
			})
			offered.Add(n)
			if err != nil {
				blastMu.Lock()
				blastErr = err
				blastMu.Unlock()
			}
		}(i)
	}
	go func() { blasters.Wait(); close(blastDone) }()

	// Workers drain until the blast is over and their socket has gone idle
	// for a beat — anything still unread past that point was never going to
	// arrive (the kernel shed it at the receive buffer).
	const idle = 100 * time.Millisecond
	var ingested, rxCalls atomic.Int64
	var workers sync.WaitGroup
	for i := range ws {
		workers.Add(1)
		go func(w *worker) {
			defer workers.Done()
			if percore {
				batch := make([]packet.Packet, w.rx.Batch())
				for {
					w.rx.SetReadDeadline(time.Now().Add(idle))
					n, err := w.rx.RecvBatch()
					if err != nil {
						select {
						case <-blastDone:
							return
						default:
							continue
						}
					}
					rxCalls.Add(1)
					for j := 0; j < n; j++ {
						ip, port := w.rx.Src(j)
						pl := w.rx.Payload(j)
						batch[j] = packet.Packet{
							Key:  packet.FlowKey{SrcIP: ip, SrcPort: port, Proto: 17},
							Size: len(pl), Class: packet.NoClass,
						}
					}
					if err := w.ls.SubmitBatch(w.h, batch[:n]); err != nil {
						return
					}
					ingested.Add(int64(n))
				}
			}
			buf := make([]byte, 2048)
			var batch [32]packet.Packet
			count := 0
			flush := func() error {
				if count == 0 {
					return nil
				}
				if err := e.SubmitBatch(w.h, batch[:count]); err != nil {
					return err
				}
				ingested.Add(int64(count))
				count = 0
				return nil
			}
			for {
				w.pc.SetReadDeadline(time.Now().Add(idle))
				n, from, err := w.pc.ReadFrom(buf)
				if err != nil {
					if err := flush(); err != nil {
						return
					}
					select {
					case <-blastDone:
						return
					default:
						continue
					}
				}
				rxCalls.Add(1)
				ua, _ := from.(*net.UDPAddr)
				var ip uint32
				if v4 := ua.IP.To4(); v4 != nil {
					ip = uint32(v4[0])<<24 | uint32(v4[1])<<16 | uint32(v4[2])<<8 | uint32(v4[3])
				}
				batch[count] = packet.Packet{
					Key:  packet.FlowKey{SrcIP: ip, SrcPort: uint16(ua.Port), Proto: 17},
					Size: n, Class: packet.NoClass,
				}
				count++
				if count == len(batch) {
					if err := flush(); err != nil {
						return
					}
				}
			}
		}(ws[i])
	}
	workers.Wait()
	if blastErr != nil {
		return datapathRow{}, blastErr
	}

	var row datapathRow
	row.offered = offered.Load()
	row.ingested = ingested.Load()
	row.rxCalls = rxCalls.Load()
	// Stats is an in-band barrier on the ring path, so after it every
	// ingested packet has been enforced; the tbf bound is far above the
	// paced load, so enforced must reconcile exactly with ingested.
	var enforced int64
	for _, id := range ids {
		st, err := e.Stats(id)
		if err != nil {
			return datapathRow{}, err
		}
		enforced += st.AcceptedPackets + st.DroppedPackets
		row.accepted += st.AcceptedPackets
	}
	if enforced != row.ingested {
		return datapathRow{}, fmt.Errorf("enforced %d != ingested %d", enforced, row.ingested)
	}
	if row.ingested > row.offered {
		return datapathRow{}, fmt.Errorf("ingested %d > offered %d", row.ingested, row.offered)
	}
	return row, nil
}
