// Package experiments contains one runner per table/figure of the paper's
// evaluation. Each runner builds its workload, drives the simulator, and
// returns a Report whose rendered rows/series correspond to what the paper
// plots. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"
)

// Report is the printable result of one experiment.
type Report struct {
	// ID is the figure identifier, e.g. "fig4a".
	ID string
	// Title describes the experiment.
	Title string
	// Sections hold tables and series in presentation order.
	Sections []Section
}

// Section is one table or series group within a report.
type Section struct {
	Heading string
	Table   *Table
	Series  []Series
	Notes   []string
}

// Table is a simple column-aligned table.
type Table struct {
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Series is a named (x, y) sequence — a CDF or a time series.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, s := range r.Sections {
		if s.Heading != "" {
			fmt.Fprintf(&b, "\n-- %s --\n", s.Heading)
		}
		if s.Table != nil {
			b.WriteString(s.Table.String())
		}
		if len(s.Series) > 0 {
			b.WriteString(Plot(s.Series))
		}
		for _, ser := range s.Series {
			b.WriteString(ser.String())
		}
		for _, n := range s.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the series as x y pairs, subsampled to at most 40 points
// so reports stay readable; full resolution is available programmatically.
func (s Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series %s (%s vs %s), %d points:\n", s.Name, s.YLabel, s.XLabel, len(s.X))
	n := len(s.X)
	step := 1
	if n > 40 {
		step = n / 40
	}
	for i := 0; i < n; i += step {
		fmt.Fprintf(&b, "  %10.4f  %10.4f\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// f2, f3 and f1 format floats at fixed precision for table cells.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Scale selects experiment sizing: Quick keeps every shape visible at a
// fraction of the paper's scale so the full suite runs in minutes; Full
// approaches the paper's parameters.
type Scale int

const (
	// Quick is the default CI-friendly scale.
	Quick Scale = iota
	// Full approaches the paper's evaluation scale.
	Full
)

// ParseScale maps a name to a Scale.
func ParseScale(name string) (Scale, error) {
	switch strings.ToLower(name) {
	case "", "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q", name)
}
