package experiments

import (
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/metrics"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// Fig1a reproduces the motivation figure: a shaper enforces per-flow
// fairness at a high per-packet CPU cost, while a policer is cheap but
// cannot enforce fairness. Fairness comes from a mixed-CC aggregate
// simulation; CPU cost from the real datapath micro-measurement shared
// with Fig 5.
func Fig1a(scale Scale, seed uint64) (*Report, error) {
	dur := 12 * time.Second
	flows := 8
	if scale == Full {
		dur = 30 * time.Second
	}
	agg := workload.Backlogged(
		units.Rate(20*units.Mbps),
		[]string{"reno", "cubic", "bbr", "vegas"},
		[]time.Duration{10 * time.Millisecond, 25 * time.Millisecond, 40 * time.Millisecond},
		flows, 10*time.Millisecond)

	table := &Table{Columns: []string{"scheme", "avg Jain index", "ns/packet", "allocs/packet"}}
	for _, scheme := range []harness.Scheme{harness.SchemeShaper, harness.SchemePolicer} {
		res, err := RunAggregate(agg, RunOpts{Scheme: scheme, Duration: dur})
		if err != nil {
			return nil, err
		}
		jain := mean(secondHalf(res.JainPerWindow()))
		eff := MeasureEfficiency(scheme, efficiencyPackets(scale))
		table.AddRow(scheme.String(), f3(jain), f1(eff.NsPerPacket), f2(eff.AllocsPerPacket))
	}
	return &Report{
		ID:    "fig1a",
		Title: "Shapers enforce policy at high CPU cost; policers are cheap but policy-blind",
		Sections: []Section{{
			Table: table,
			Notes: []string{
				"fairness from an 8-flow mixed-CC aggregate at 20 Mbps",
				"cost from the live datapath micro-benchmark (see fig5)",
			},
		}},
	}, nil
}

// Fig1b reproduces the policer configuration trade-off: small buckets
// under-enforce the average rate, large buckets admit multi-×r bursts.
func Fig1b(scale Scale, seed uint64) (*Report, error) {
	rate := 10 * units.Mbps
	rtt := 100 * time.Millisecond
	dur := 20 * time.Second
	if scale == Full {
		dur = 40 * time.Second
	}
	bdp := units.BDPBytes(rate, rtt)
	buckets := []int64{bdp / 8, bdp / 4, bdp / 2, bdp, 2 * bdp, 4 * bdp, 8 * bdp, 16 * bdp}

	agg := workload.Backlogged(rate, []string{"reno"},
		[]time.Duration{rtt}, 1, 10*time.Millisecond)

	table := &Table{Columns: []string{"bucket (KB)", "bucket (BDP)",
		"steady rate / r", "peak 250ms window / r", "drop rate"}}
	for _, b := range buckets {
		res, err := RunAggregate(agg, RunOpts{
			Scheme:           harness.SchemePQP, // single phantom queue ≡ TBF with bucket B
			PhantomQueueSize: b,
			Queues:           1,
			Duration:         dur,
		})
		if err != nil {
			return nil, err
		}
		samples := res.NormalizedAggSamples()
		steady := mean(secondHalf(samples))
		peak := metrics.NewDist(samples).Max()
		table.AddRow(
			f1(float64(b)/1000),
			f2(float64(b)/float64(bdp)),
			f3(steady),
			f2(peak),
			f3(res.Stats.DropRate()),
		)
	}
	return &Report{
		ID:    "fig1b",
		Title: "Policer bucket sizing trade-off: average rate vs burst (Reno, 10 Mbps, 100 ms RTT)",
		Sections: []Section{{
			Table: table,
			Notes: []string{"single phantom queue of size B is exactly a token bucket of size B (§3.1)"},
		}},
	}, nil
}
