package experiments

import (
	"fmt"
	"runtime"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/fairpolicer"
	"bcpqp/internal/harness"
	"bcpqp/internal/metrics"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/shaper"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// ExtAQM is an extension experiment beyond the paper's figures: it
// exercises the §3.3 remark that phantom queues can apply active queue
// management at arrival time. A Reno flow runs through a plain drop-tail
// PQP and through the same queue with RED early drops, comparing drop
// clustering, retransmission-timeout pressure, and achieved rate.
func ExtAQM(scale Scale, seed uint64) (*Report, error) {
	rate := 10 * units.Mbps
	rtt := 50 * time.Millisecond
	dur := 30 * time.Second
	if scale == Full {
		dur = 60 * time.Second
	}
	req := units.RenoPhantomRequirement(rate, rtt)
	B := 4 * req

	agg := workload.Backlogged(rate, []string{"reno"},
		[]time.Duration{rtt}, 1, 10*time.Millisecond)

	table := &Table{Columns: []string{"queue discipline", "steady rate / r",
		"peak window / r", "drop rate"}}
	variants := []struct {
		name string
		red  *phantom.REDConfig
	}{
		{"drop-tail", nil},
		// RED parameters for a policed TCP flow: the early-drop region
		// starts above the Appendix A occupancy swing (±BDP²/18) so
		// the rate law still holds, and MaxProb is gentle — with a
		// W-packet window, a per-packet probability p costs ≈ W·p
		// drops per RTT, and anything near one drop per RTT keeps the
		// window halving forever.
		{"RED", &phantom.REDConfig{
			MinBytes: req,
			MaxBytes: B,
			MaxProb:  0.01,
			Weight:   0.01,
			Seed:     seed,
		}},
	}
	for _, v := range variants {
		res, err := RunAggregate(agg, RunOpts{
			Scheme:           harness.SchemePQP,
			PhantomQueueSize: B,
			PhantomRED:       v.red,
			Queues:           1,
			Duration:         dur,
		})
		if err != nil {
			return nil, err
		}
		samples := res.NormalizedAggSamples()
		table.AddRow(v.name,
			f3(mean(secondHalf(samples))),
			f2(metrics.NewDist(samples).Max()),
			f3(res.Stats.DropRate()),
		)
	}
	return &Report{
		ID:    "ext-aqm",
		Title: "Extension: RED active queue management on phantom queues (§3.3)",
		Sections: []Section{{
			Table: table,
			Notes: []string{
				"RED drops early and probabilistically on the simulated occupancy:",
				"fewer total drops (no synchronized full-queue loss bursts) traded",
				"against a few percent of steady rate — the classic AQM trade",
			},
		}},
	}, nil
}

// ExtECN extends ExtAQM with ECN marking: because a phantom-queue policer
// decides each packet's fate at arrival, it can deliver congestion signals
// as CE marks instead of drops — a capability the paper's AQM lineage
// (§3) has and ordinary token-bucket policers lack. An ECN-capable Reno
// flow through a marking RED phantom queue should reach the enforced rate
// with (nearly) zero losses and zero retransmissions.
func ExtECN(scale Scale, seed uint64) (*Report, error) {
	rate := 10 * units.Mbps
	rtt := 50 * time.Millisecond
	dur := 30 * time.Second
	if scale == Full {
		dur = 60 * time.Second
	}
	req := units.RenoPhantomRequirement(rate, rtt)
	B := 4 * req

	agg := workload.Backlogged(rate, []string{"reno"},
		[]time.Duration{rtt}, 1, 10*time.Millisecond)
	agg.Flows[0].ECN = true

	table := &Table{Columns: []string{"signal", "steady rate / r",
		"drop rate", "retransmits", "congestion signals"}}
	variants := []struct {
		name string
		red  *phantom.REDConfig
		ecn  bool
	}{
		{"drop-tail drops", nil, false},
		// Marks are cheaper than drops (no retransmission), but each
		// one still halves the window, so the marking curve is kept
		// gentler than the dropping RED of ext-aqm.
		{"RED + ECN marks", &phantom.REDConfig{
			MinBytes: req,
			MaxBytes: B,
			MaxProb:  0.003,
			Weight:   0.01,
			Seed:     seed,
			MarkECN:  true,
		}, true},
	}
	for _, v := range variants {
		aggV := agg
		aggV.Flows = append([]workload.FlowSpec(nil), agg.Flows...)
		aggV.Flows[0].ECN = v.ecn
		res, err := RunAggregate(aggV, RunOpts{
			Scheme:           harness.SchemePQP,
			PhantomQueueSize: B,
			PhantomRED:       v.red,
			Queues:           1,
			Duration:         dur,
		})
		if err != nil {
			return nil, err
		}
		samples := res.NormalizedAggSamples()
		table.AddRow(v.name,
			f3(mean(secondHalf(samples))),
			f3(res.Stats.DropRate()),
			fmt.Sprintf("%d", res.Flows[0].Rtx),
			fmt.Sprintf("%d", res.Flows[0].ECNSignals),
		)
	}
	return &Report{
		ID:    "ext-ecn",
		Title: "Extension: ECN marking from a bufferless phantom-queue policer",
		Sections: []Section{{
			Table: table,
			Notes: []string{
				"a phantom queue decides packet fate at arrival, so it can signal",
				"congestion with CE marks instead of drops: losses and",
				"retransmissions fall away while the enforced rate holds",
			},
		}},
	}, nil
}

// ExtMem is an extension experiment quantifying the §2.1 motivation: the
// memory a shaper must hold for buffered packets versus the counters a
// phantom-queue policer keeps, measured as live heap per operating
// aggregate while both are under 1.3× offered load.
func ExtMem(scale Scale, seed uint64) (*Report, error) {
	aggregates := 100
	packetsPer := 4000
	if scale == Full {
		aggregates = 1000
		packetsPer = 8000
	}
	rate := 20 * units.Mbps
	maxRTT := 50 * time.Millisecond
	const queues = 16

	type build struct {
		name string
		make func(sink enforcer.Sink, sched shaper.Scheduler) (enforcer.Enforcer, error)
	}
	builds := []build{
		{"shaper", func(sink enforcer.Sink, sc shaper.Scheduler) (enforcer.Enforcer, error) {
			qsize := units.BDPBytes(rate, maxRTT)
			if qsize < 16*units.MSS {
				qsize = 16 * units.MSS
			}
			return shaper.New(shaper.Config{
				Rate: rate, Queues: queues, QueueSize: qsize,
				Scheduler: sc, Sink: sink,
			})
		}},
		{"policer", func(enforcer.Sink, shaper.Scheduler) (enforcer.Enforcer, error) {
			return tbf.New(rate, tbf.BDPBucket(rate, maxRTT))
		}},
		{"fairpolicer", func(enforcer.Sink, shaper.Scheduler) (enforcer.Enforcer, error) {
			return fairpolicer.New(fairpolicer.Config{
				Rate: rate, Bucket: tbf.PlusBucket(rate, maxRTT), Flows: queues,
			})
		}},
		{"bc-pqp", func(enforcer.Sink, shaper.Scheduler) (enforcer.Enforcer, error) {
			return phantom.New(phantom.Config{
				Rate: rate, Queues: queues,
				QueueSize:    10 * tbf.PlusBucket(rate, maxRTT),
				BurstControl: true,
			})
		}},
	}

	table := &Table{Columns: []string{"scheme",
		fmt.Sprintf("KB held / aggregate (n=%d)", aggregates)}}
	for _, b := range builds {
		perAgg, err := measureHeldMemory(b.make, aggregates, packetsPer, rate)
		if err != nil {
			return nil, err
		}
		table.AddRow(b.name, f1(perAgg/1000))
	}
	return &Report{
		ID:    "ext-mem",
		Title: "Extension: live memory per operating aggregate (§2.1 motivation)",
		Sections: []Section{{
			Table: table,
			Notes: []string{
				"each aggregate processes a 16-flow stream at 1.3× its rate with",
				"per-packet payload buffers; shapers retain the buffered payloads,",
				"bufferless schemes retain only counters",
			},
		}},
	}, nil
}

// measureHeldMemory loads n enforcers with traffic (freshly allocated
// payload per packet so buffering is visible to the heap) and returns the
// live bytes per enforcer after GC, with everything still reachable.
func measureHeldMemory(
	build func(enforcer.Sink, shaper.Scheduler) (enforcer.Enforcer, error),
	n, packets int,
	rate units.Rate,
) (float64, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	enfs := make([]enforcer.Enforcer, 0, n)
	timers := make([]*pendingTimers, 0, n)
	for i := 0; i < n; i++ {
		pt := &pendingTimers{}
		enf, err := build(func(time.Duration, packet.Packet) {}, pt)
		if err != nil {
			return 0, err
		}
		enfs = append(enfs, enf)
		timers = append(timers, pt)
	}
	// Drive each enforcer to steady occupancy at 1.3× its rate.
	gap := time.Duration(float64(rate.DurationForBytes(units.MSS)) / 1.3)
	for i, enf := range enfs {
		now := time.Duration(0)
		for p := 0; p < packets; p++ {
			now += gap
			payload := make([]byte, units.MSS)
			payload[0] = byte(p)
			enf.Submit(now, packet.Packet{
				Key:     packet.FlowKey{SrcIP: uint32(i), SrcPort: uint16(p % 16), Proto: 6},
				Class:   p % 16,
				Size:    units.MSS,
				Payload: payload,
			})
			timers[i].advance(now)
		}
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	perAgg := float64(after.HeapAlloc-before.HeapAlloc) / float64(n)

	// Keep everything reachable until after the measurement.
	runtime.KeepAlive(enfs)
	runtime.KeepAlive(timers)
	return perAgg, nil
}

// pendingTimers is a minimal in-line scheduler for the shaper during the
// memory measurement: service callbacks run when the virtual clock passes
// their due time.
type pendingTimers struct {
	due []timerEntry
}

type timerEntry struct {
	at time.Duration
	fn func()
}

// Schedule implements shaper.Scheduler.
func (p *pendingTimers) Schedule(at time.Duration, fn func()) {
	p.due = append(p.due, timerEntry{at: at, fn: fn})
}

func (p *pendingTimers) advance(now time.Duration) {
	for i := 0; i < len(p.due); {
		if p.due[i].at <= now {
			fn := p.due[i].fn
			p.due[i] = p.due[len(p.due)-1]
			p.due = p.due[:len(p.due)-1]
			fn()
			i = 0 // callbacks may schedule more
			continue
		}
		i++
	}
}
