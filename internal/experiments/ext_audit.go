package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"bcpqp/internal/mbox"
	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// ExtAudit is an extension experiment beyond the paper's figures: the
// conformance-audit summary. Theorem 1 bounds every aggregate's accepted
// bytes by the piecewise envelope r·Δt + B; the always-on auditor tracks
// that envelope exactly (128-bit accrual, rebased in-band on every rate
// change) and records the worst observed slack. This experiment floods an
// audited aggregate at a multiple of its plan — with and without rate churn
// — and prints the observed extremes against the analytic bound: a correct
// enforcer never dips below zero slack, so the first two rows must show
// zero violations no matter the offered multiple or churn cadence. The
// third row arms a deliberately understated envelope (r/8) to prove the
// detector is live: it must flag violations with a positive worst deficit.
func ExtAudit(scale Scale, seed uint64) (*Report, error) {
	dur := 300 * time.Millisecond
	if scale == Full {
		dur = 2 * time.Second
	}

	const (
		rate   = 8 * units.Mbps
		bucket = int64(64 * units.MSS)
	)

	type scenario struct {
		name     string
		envelope units.Rate // audited envelope rate
		burst    int64      // audited envelope burst
		churn    bool       // flip the plan rate mid-flood
		wantVio  bool
	}
	scenarios := []scenario{
		{"flood ×4, exact envelope", rate, bucket, false, false},
		{"flood ×4 + rate churn 2↔16 Mbps", rate, bucket, true, false},
		{"flood ×4, envelope understated (r/8, B/8)", rate / 8, bucket / 8, false, true},
	}

	table := &Table{Columns: []string{"scenario", "offered pkts", "accepted B",
		"accrued B (r·Δt)", "min slack B", "max deficit B", "violations", "verdict"}}
	for _, sc := range scenarios {
		row, err := runAuditScenario(sc.envelope, sc.burst, bucket, rate, dur, sc.churn, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		verdict := "conforms"
		if row.violations > 0 {
			verdict = "VIOLATES"
			if sc.wantVio {
				verdict = "violates (expected)"
			}
		}
		if (row.violations > 0) != sc.wantVio {
			return nil, fmt.Errorf("%s: %d violations, want violations=%v",
				sc.name, row.violations, sc.wantVio)
		}
		table.AddRow(sc.name,
			fmt.Sprintf("%d", row.offered),
			fmt.Sprintf("%d", row.accepted),
			fmt.Sprintf("%d", row.allowed),
			fmt.Sprintf("%d", row.minSlack),
			fmt.Sprintf("%d", row.maxDeficit),
			fmt.Sprintf("%d", row.violations),
			verdict,
		)
	}
	return &Report{
		ID:    "ext-audit",
		Title: "Extension: live conformance audit vs the Theorem-1 envelope",
		Sections: []Section{{
			Table: table,
			Notes: []string{
				"the analytic bound is accrued + B, tracked exactly (128-bit) and",
				"rebased in-band at every rate change; min slack is the closest",
				"the enforcer came to the bound, max deficit how far an",
				"understated envelope was exceeded; a violation is any audit",
				"observation with accepted > accrued + B on the 250 ms window",
			},
		}},
	}, nil
}

type auditRow struct {
	offered    int64
	accepted   int64
	allowed    int64
	minSlack   int64
	maxDeficit int64
	violations int64
}

// runAuditScenario floods one audited tbf aggregate at 4× its plan rate,
// optionally churning the plan between rate/4 and 2×rate every 32 batches,
// and returns the auditor's exact counters.
func runAuditScenario(envelope units.Rate, burst, bucket int64, rate units.Rate,
	dur time.Duration, churn bool, seed uint64) (auditRow, error) {
	var ticks atomic.Int64
	e := mbox.New(mbox.Config{
		Shards: 1, QueueDepth: 256,
		Clock: func() time.Duration {
			return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
		},
		CloseTimeout: 10 * time.Second,
	})
	defer e.Close()

	const id = "audited"
	h, err := e.Add(id, tbf.MustNew(rate, bucket), nil)
	if err != nil {
		return auditRow{}, err
	}
	if err := e.ArmAudit(id, envelope, burst); err != nil {
		return auditRow{}, err
	}

	src := workload.NewFlood(workload.FloodConfig{
		Rate: 4 * rate, Duration: dur, Flows: 8, SrcIP: uint32(seed%250 + 1),
	})
	var buf [64]packet.Packet
	churnRates := [2]units.Rate{rate / 4, 2 * rate}
	for i := 0; ; i++ {
		_, n, ok := src.Next(buf[:])
		if !ok {
			break
		}
		if churn && i%32 == 31 {
			// SetRate rebases the audit envelope in-band at the same clock
			// reading the enforcer adopts the new rate, so churn alone can
			// never manufacture a violation.
			if err := e.SetRate(id, churnRates[(i/32)%2]); err != nil {
				return auditRow{}, err
			}
		}
		if err := e.SubmitBatch(h, buf[:n]); err != nil {
			return auditRow{}, err
		}
	}
	if _, err := e.Stats(id); err != nil { // in-band barrier: all batches enforced
		return auditRow{}, err
	}

	var row auditRow
	row.offered, _ = src.Offered()
	for _, ent := range e.AuditReport() {
		if ent.Aggregate != id || ent.Node >= 0 {
			continue
		}
		c := ent.Counters
		row.accepted = c.AcceptedBytes
		row.allowed = c.AllowedBytes
		row.minSlack = c.MinSlackBytes
		row.maxDeficit = c.MaxDeficit
		row.violations = c.Violations
		return row, nil
	}
	return auditRow{}, fmt.Errorf("aggregate %q not in audit report", id)
}
