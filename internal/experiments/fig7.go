package experiments

import (
	"fmt"
	"time"

	"bcpqp/internal/apps/video"
	"bcpqp/internal/apps/web"
	"bcpqp/internal/harness"
	"bcpqp/internal/metrics"
	"bcpqp/internal/packet"
	"bcpqp/internal/rng"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// fig7Schemes is the §6.4 status-quo-vs-BC-PQP comparison set.
var fig7Schemes = []harness.Scheme{
	harness.SchemePolicer,
	harness.SchemeSingleShaper,
	harness.SchemeShaper, // DRR shaper
	harness.SchemeBCPQP,
}

// videoRun simulates one streaming session sharing an enforced rate with
// background traffic and returns QoE plus fairness metrics.
type videoRunResult struct {
	avgQuality units.Rate
	rebuffer   time.Duration
	fairness   float64
	videoMeter *metrics.Meter // key 0 = video, 1 = rest
}

func videoRun(scheme harness.Scheme, cc string, dur time.Duration, seed uint64) (*videoRunResult, error) {
	rate := 3 * units.Mbps
	h, err := harness.New(harness.Config{
		Scheme: scheme,
		Rate:   rate,
		MaxRTT: 50 * time.Millisecond,
		Queues: 2,
	})
	if err != nil {
		return nil, err
	}
	meter := metrics.NewMeter(250 * time.Millisecond)

	// The video session (class 0).
	client, err := video.Start(video.Config{
		Harness:      h,
		Key:          packet.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 9, DstPort: 443, Proto: 6},
		Class:        0,
		CC:           cc,
		RTT:          40 * time.Millisecond,
		Start:        100 * time.Millisecond,
		PlayDuration: dur - 5*time.Second,
		OnDeliver:    func(now time.Duration, b int) { meter.Add(now, 0, b) },
	})
	if err != nil {
		return nil, err
	}

	// "The rest of the traffic" (class 1): a bulk download plus
	// rolling short web-ish fetches.
	if _, err := h.AttachFlow(harness.FlowSpec{
		Key:       packet.FlowKey{SrcIP: 1, SrcPort: 100, DstIP: 9, DstPort: 80, Proto: 6},
		Class:     1,
		CC:        "cubic",
		RTT:       30 * time.Millisecond,
		Size:      0,
		Start:     200 * time.Millisecond,
		OnDeliver: func(now time.Duration, b int) { meter.Add(now, 1, b) },
	}); err != nil {
		return nil, err
	}
	src := rng.New(seed)
	if _, err := web.Start(web.Config{
		Harness:   h,
		BaseKey:   packet.FlowKey{SrcIP: 1, SrcPort: 200, DstIP: 9, DstPort: 80, Proto: 6},
		Class:     1,
		CC:        "cubic",
		RTT:       30 * time.Millisecond,
		Pages:     1000, // effectively "until the run ends"
		ThinkTime: 2 * time.Second,
		Start:     500 * time.Millisecond,
		Rand:      src,
		OnDeliver: func(now time.Duration, b int) { meter.Add(now, 1, b) },
	}); err != nil {
		return nil, err
	}

	h.Run(dur)

	// Fairness between the video and the rest, measured over windows in
	// which the video was actually fetching: an ABR client with a full
	// playback buffer idles deliberately, and counting those windows
	// would charge the enforcer for the application's own pauses.
	v, o := meter.WindowBytes(0), meter.WindowBytes(1)
	var jains []float64
	for w := 4; w < meter.Windows(); w++ {
		var vb, ob int64
		if w < len(v) {
			vb = v[w]
		}
		if w < len(o) {
			ob = o[w]
		}
		if vb > 0 {
			jains = append(jains, metrics.Jain([]float64{float64(vb), float64(ob)}))
		}
	}
	return &videoRunResult{
		avgQuality: client.AvgQuality(),
		rebuffer:   client.Rebuffering,
		fairness:   mean(jains),
		videoMeter: meter,
	}, nil
}

// Fig7a reproduces the video-streaming QoE study: a 3 Mbps enforced rate
// shared between one ABR video session and background traffic, across the
// status-quo schemes and BC-PQP, for both a BBR ("YouTube") and a Reno
// ("Netflix") video service.
func Fig7a(scale Scale, seed uint64) (*Report, error) {
	dur := 40 * time.Second
	if scale == Full {
		dur = 90 * time.Second
	}
	table := &Table{Columns: []string{"scheme", "service (cc)",
		"avg video quality (Mbps)", "rebuffer (s)", "fairness (video vs rest)"}}
	for _, scheme := range fig7Schemes {
		for _, svc := range []struct{ name, cc string }{
			{"youtube-like", "bbr"},
			{"netflix-like", "reno"},
		} {
			res, err := videoRun(scheme, svc.cc, dur, seed)
			if err != nil {
				return nil, err
			}
			table.AddRow(scheme.String(),
				fmt.Sprintf("%s (%s)", svc.name, svc.cc),
				f2(res.avgQuality.Mbps()),
				f2(res.rebuffer.Seconds()),
				f3(res.fairness))
		}
	}
	return &Report{
		ID:    "fig7a",
		Title: "Video quality vs fairness at a shared 3 Mbps enforced rate (§6.4.1)",
		Sections: []Section{{
			Table: table,
			Notes: []string{
				"paper: BC-PQP shares fairly at high quality; a policer lets the BBR video hog;",
				"single-queue shapers sacrifice either quality or fairness",
			},
		}},
	}, nil
}

// Fig9 renders the Appendix B time series: the video stream's throughput
// against the rest of the traffic under each scheme (BBR video).
func Fig9(scale Scale, seed uint64) (*Report, error) {
	dur := 40 * time.Second
	if scale == Full {
		dur = 90 * time.Second
	}
	report := &Report{
		ID:    "fig9",
		Title: "Video stream vs other traffic over time at 3 Mbps (Appendix B, BBR video)",
	}
	for _, scheme := range fig7Schemes {
		res, err := videoRun(scheme, "bbr", dur, seed)
		if err != nil {
			return nil, err
		}
		var series []Series
		for key, name := range map[int]string{0: "video", 1: "other"} {
			rates := res.videoMeter.Series(key)
			x := make([]float64, len(rates))
			y := make([]float64, len(rates))
			for w, r := range rates {
				x[w] = float64(w) * res.videoMeter.Window().Seconds()
				y[w] = r.Mbps()
			}
			series = append(series, Series{
				Name: name, XLabel: "time (s)", YLabel: "Mbps", X: x, Y: y,
			})
		}
		report.Sections = append(report.Sections, Section{
			Heading: scheme.String(),
			Series:  series,
		})
	}
	return report, nil
}

// Fig7b reproduces the web-browsing study: page loads compete with a bulk
// download for 3 Mbps under a 4:1 weighted policy (where the scheme can
// express one), reporting the PLT distribution.
func Fig7b(scale Scale, seed uint64) (*Report, error) {
	pages := 20
	if scale == Full {
		pages = 50
	}
	rate := 3 * units.Mbps
	table := &Table{Columns: []string{"scheme", "p25 PLT (s)", "median PLT (s)",
		"p75 PLT (s)", "p95 PLT (s)", "pages done"}}
	for _, scheme := range fig7Schemes {
		cfg := harness.Config{
			Scheme: scheme,
			Rate:   rate,
			MaxRTT: 50 * time.Millisecond,
			Queues: 2,
		}
		// Weighted 4:1 sharing where the scheme supports classes.
		// The weighting favors the latency-sensitive web class over
		// the bulk download (class 0 = bulk, class 1 = web), which is
		// the assignment under which the paper's 2-8× PLT improvement
		// over policy-free baselines is achievable.
		switch scheme {
		case harness.SchemeShaper, harness.SchemeBCPQP:
			cfg.Policy = sched.WeightedFair(1, 4)
		case harness.SchemeFairPolicer:
			cfg.FPWeights = []float64{1, 4}
		}
		h, err := harness.New(cfg)
		if err != nil {
			return nil, err
		}
		// Bulk download flow (class 0, weight 4).
		if _, err := h.AttachFlow(harness.FlowSpec{
			Key:   packet.FlowKey{SrcIP: 2, SrcPort: 1, DstIP: 9, DstPort: 80, Proto: 6},
			Class: 0,
			CC:    "cubic",
			RTT:   30 * time.Millisecond,
			Size:  0,
			Start: 10 * time.Millisecond,
		}); err != nil {
			return nil, err
		}
		sess, err := web.Start(web.Config{
			Harness:   h,
			BaseKey:   packet.FlowKey{SrcIP: 2, SrcPort: 1000, DstIP: 9, DstPort: 443, Proto: 6},
			Class:     1,
			CC:        "cubic",
			RTT:       30 * time.Millisecond,
			Pages:     pages,
			ThinkTime: 500 * time.Millisecond,
			Start:     time.Second,
			Rand:      rng.New(seed),
		})
		if err != nil {
			return nil, err
		}
		h.Run(time.Duration(pages) * 20 * time.Second)

		plts := make([]float64, 0, len(sess.PLTs))
		for _, p := range sess.PLTs {
			plts = append(plts, p.Seconds())
		}
		d := metrics.NewDist(plts)
		table.AddRow(scheme.String(), f2(d.Quantile(0.25)), f2(d.Quantile(0.5)),
			f2(d.Quantile(0.75)), f2(d.Quantile(0.95)),
			fmt.Sprintf("%d/%d", len(sess.PLTs), pages))
	}
	return &Report{
		ID:    "fig7b",
		Title: "Web page load times vs a bulk download at 3 Mbps, 4:1 weighted sharing (§6.4.2)",
		Sections: []Section{{
			Table: table,
			Notes: []string{
				"paper: BC-PQP achieves 2-8× lower PLT than the status-quo policer / single-queue shaper",
				"policer and single-queue shaper cannot express the 4:1 policy at all",
			},
		}},
	}, nil
}
