package experiments

import (
	"fmt"
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// Fig3 reproduces the secondary-bottleneck scenario: four flows with
// different congestion control algorithms fair-sharing 7.5 Mbps, with an
// 8.5 Mbps FIFO hop after the enforcer. Large plain phantom queues
// (Fig 3a) let bursts collide at the downstream hop and fairness suffers;
// BC-PQP (Fig 3b) keeps the burst small and restores fairness.
func Fig3(scale Scale, seed uint64) (*Report, error) {
	rate := units.Rate(7.5 * units.Mbps)
	secondary := units.Rate(8.5 * units.Mbps)
	dur := 30 * time.Second
	if scale == Full {
		dur = 60 * time.Second
	}
	ccs := []string{"reno", "cubic", "bbr", "vegas"}
	agg := workload.Backlogged(rate, ccs,
		[]time.Duration{40 * time.Millisecond}, 4, 10*time.Millisecond)

	largeB := 10 * tbf.PlusBucket(rate, 50*time.Millisecond)

	type variant struct {
		name string
		opts RunOpts
	}
	variants := []variant{
		{"fig3a PQP (large queues, no burst control)", RunOpts{
			Scheme:           harness.SchemePQP,
			PhantomQueueSize: largeB,
			Secondary:        secondary,
			Duration:         dur,
		}},
		{"fig3b BC-PQP", RunOpts{
			Scheme:    harness.SchemeBCPQP,
			Secondary: secondary,
			Duration:  dur,
		}},
	}

	report := &Report{
		ID:    "fig3",
		Title: "Fair sharing of 7.5 Mbps across 4 CC algorithms with an 8.5 Mbps secondary bottleneck",
	}
	for _, v := range variants {
		res, err := RunAggregate(agg, v.opts)
		if err != nil {
			return nil, err
		}
		table := &Table{Columns: []string{"flow", "cc", "avg throughput (Mbps)", "share"}}
		var total float64
		totals := make([]float64, len(ccs))
		for i := range ccs {
			totals[i] = float64(res.Meter.TotalBytes(i))
			total += totals[i]
		}
		for i, cc := range ccs {
			mbps := totals[i] * 8 / dur.Seconds() / 1e6
			share := 0.0
			if total > 0 {
				share = totals[i] / total
			}
			table.AddRow(fmt.Sprintf("%d", i), cc, f2(mbps), f3(share))
		}
		jains := res.JainPerWindow()
		var series []Series
		for i, cc := range ccs {
			rates := res.Meter.Series(i)
			x := make([]float64, len(rates))
			y := make([]float64, len(rates))
			for w, r := range rates {
				x[w] = float64(w) * res.Meter.Window().Seconds()
				y[w] = r.Mbps()
			}
			series = append(series, Series{
				Name: cc, XLabel: "time (s)", YLabel: "throughput (Mbps)", X: x, Y: y,
			})
		}
		report.Sections = append(report.Sections, Section{
			Heading: v.name,
			Table:   table,
			Series:  series,
			Notes: []string{
				fmt.Sprintf("mean Jain index over run: %.3f", mean(jains)),
				fmt.Sprintf("mean Jain index steady state: %.3f", mean(secondHalf(jains))),
				fmt.Sprintf("aggregate drop rate: %.3f", res.Stats.DropRate()),
			},
		})
	}
	return report, nil
}
