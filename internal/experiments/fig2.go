package experiments

import (
	"fmt"
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/metrics"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// Fig2 reproduces the phantom-queue sizing study: a Reno flow at 10 Mbps
// and 100 ms RTT against phantom queues of 250 KB (too small — rate
// under-enforced), 1000 KB (at the BDP²/18 requirement — correct), and
// 4000 KB (above it — equally correct in steady state, bigger burst).
func Fig2(scale Scale, seed uint64) (*Report, error) {
	rate := 10 * units.Mbps
	rtt := 100 * time.Millisecond
	dur := 30 * time.Second
	if scale == Full {
		dur = 60 * time.Second
	}
	req := units.RenoPhantomRequirement(rate, rtt)
	sizes := []int64{250 * units.KB, 500 * units.KB, 1000 * units.KB, 4000 * units.KB}

	agg := workload.Backlogged(rate, []string{"reno"},
		[]time.Duration{rtt}, 1, 10*time.Millisecond)

	table := &Table{Columns: []string{"B (KB)", "B / requirement",
		"steady rate / r", "peak window / r", "drop rate"}}
	var series []Series
	for _, b := range sizes {
		res, err := RunAggregate(agg, RunOpts{
			Scheme:           harness.SchemePQP,
			PhantomQueueSize: b,
			Queues:           1,
			Duration:         dur,
			Window:           250 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		samples := res.NormalizedAggSamples()
		steady := mean(secondHalf(samples))
		peak := metrics.NewDist(samples).Max()
		table.AddRow(
			f1(float64(b)/1000),
			f2(float64(b)/float64(req)),
			f3(steady),
			f2(peak),
			f3(res.Stats.DropRate()),
		)

		rateSeries := res.Meter.Series(0)
		x := make([]float64, len(rateSeries))
		y := make([]float64, len(rateSeries))
		for i, r := range rateSeries {
			x[i] = float64(i) * 0.25
			y[i] = r.Mbps()
		}
		series = append(series, Series{
			Name:   fmt.Sprintf("B=%dKB", b/1000),
			XLabel: "time (s)",
			YLabel: "throughput (Mbps)",
			X:      x,
			Y:      y,
		})
	}
	return &Report{
		ID:    "fig2",
		Title: "Reno flow vs phantom queue size (r = 10 Mbps, RTT = 100 ms)",
		Sections: []Section{
			{Table: table, Notes: []string{
				fmt.Sprintf("Appendix A requirement BDP²/18×MSS = %d KB", req/1000),
				"undersized queues go empty and under-enforce; oversized only add burst",
			}},
			{Heading: "throughput time series", Series: series},
		},
	}, nil
}
