package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"bcpqp/internal/mbox"
	"bcpqp/internal/packet"
	"bcpqp/internal/rng"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
	"bcpqp/internal/workload"
)

// ExtOverload is an extension experiment beyond the paper's figures: the
// overload-survival summary. The paper's §6 evaluation drives
// congestion-controlled mixes; production policers also meet traffic that
// does not negotiate. This experiment replays the four adversarial
// families from internal/workload — a constant-rate UDP flood, a hard
// on/off bursty flood, a mixed-RTT swarm and a short-flow storm — against
// an engine with the overload-control plane enabled, and reports how the
// load was disposed of: enforced (accepted/dropped by Theorem-1
// admission), ring-shed, or priority-shed, and whether the engine ended
// the storm healthy.
//
// Every generator is open-loop and seeded, so the table is deterministic
// per seed and the disposition columns sum exactly to the offered column.
func ExtOverload(scale Scale, seed uint64) (*Report, error) {
	dur := 300 * time.Millisecond
	if scale == Full {
		dur = 2 * time.Second
	}

	type scenario struct {
		name string
		src  workload.Source
	}
	scenarios := []scenario{
		{"constant flood ×25", workload.NewFlood(workload.FloodConfig{
			Rate: 200 * units.Mbps, Duration: dur, Flows: 8, SrcIP: 1,
		})},
		{"bursty flood ×25 (20% duty)", workload.NewFlood(workload.FloodConfig{
			Rate: 200 * units.Mbps, Duration: dur,
			Period: 50 * time.Millisecond, Duty: 0.2, Flows: 8, SrcIP: 2,
		})},
		{"mixed-RTT swarm (2–50 ms)", workload.NewSwarm(rng.New(seed), workload.SwarmConfig{
			Flows: 128, Duration: dur, SrcIP: 3,
		})},
		{"short-flow storm (slow start)", workload.NewStorm(rng.New(seed+1), workload.StormConfig{
			Concurrency: 64, Duration: dur, SrcIP: 4,
		})},
	}

	table := &Table{Columns: []string{"adversarial workload", "offered pkts",
		"accepted", "dropped", "shed", "healthy after"}}
	for _, sc := range scenarios {
		row, err := runOverloadScenario(sc.src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		table.AddRow(sc.name,
			fmt.Sprintf("%d", row.offered),
			fmt.Sprintf("%d", row.accepted),
			fmt.Sprintf("%d", row.dropped),
			fmt.Sprintf("%d", row.shed),
			fmt.Sprintf("%v", row.healthy),
		)
	}
	return &Report{
		ID:    "ext-overload",
		Title: "Extension: overload survival under adversarial workloads",
		Sections: []Section{{
			Table: table,
			Notes: []string{
				"offered = accepted + dropped + shed exactly (open-loop generators);",
				"accepted stays within the Theorem-1 bound r·Δt + B per aggregate no",
				"matter the offered multiple; shed counts both full-ring and",
				"priority (overload-plane) sheds; healthy = every shard back to",
				"Healthy once the storm ends",
			},
		}},
	}, nil
}

type overloadRow struct {
	offered  int64
	accepted int64
	dropped  int64
	shed     int64
	healthy  bool
}

// runOverloadScenario drives one adversarial source through a fresh
// overload-enabled engine (8 tbf aggregates spanning all four shed
// classes, deliberately shallow rings) and reconciles the disposition.
func runOverloadScenario(src workload.Source) (overloadRow, error) {
	const (
		aggs   = 8
		rate   = 8 * units.Mbps
		bucket = int64(64 * units.MSS)
	)
	var ticks atomic.Int64
	e := mbox.New(mbox.Config{
		Shards: 2, QueueDepth: 16,
		Clock: func() time.Duration {
			return time.Duration(ticks.Add(1)) * 10 * time.Microsecond
		},
		WatchdogInterval: time.Millisecond,
		CloseTimeout:     10 * time.Second,
		Overload:         mbox.OverloadConfig{Enabled: true},
	})
	defer e.Close()
	ids := make([]string, aggs)
	handles := make([]mbox.Handle, aggs)
	for i := 0; i < aggs; i++ {
		ids[i] = fmt.Sprintf("adv-%d", i)
		h, err := e.Add(ids[i], tbf.MustNew(rate, bucket), nil)
		if err != nil {
			return overloadRow{}, err
		}
		if err := e.SetShedClass(ids[i], i%4); err != nil {
			return overloadRow{}, err
		}
		handles[i] = h
	}

	var buf [64]packet.Packet
	for i := 0; ; i++ {
		_, n, ok := src.Next(buf[:])
		if !ok {
			break
		}
		h := handles[(int(buf[0].Key.SrcPort)+i)%aggs]
		if err := e.SubmitBatch(h, buf[:n]); err != nil {
			return overloadRow{}, err
		}
	}

	// Drain: every ring empty, then check the shards reclassified Healthy.
	deadline := time.Now().Add(10 * time.Second)
	for {
		idle := true
		for _, sh := range e.Health().Shards {
			if sh.QueueDepth != 0 || sh.Busy {
				idle = false
			}
		}
		if idle {
			break
		}
		if time.Now().After(deadline) {
			return overloadRow{}, fmt.Errorf("shard rings never drained")
		}
		time.Sleep(time.Millisecond)
	}
	healthy := true
	for time.Now().Before(deadline) {
		healthy = true
		for _, sh := range e.Health().Shards {
			if sh.State != mbox.ShardHealthy {
				healthy = false
			}
		}
		if healthy {
			break
		}
		time.Sleep(time.Millisecond)
	}

	var row overloadRow
	row.healthy = healthy
	row.offered, _ = src.Offered()
	for _, id := range ids {
		st, err := e.Stats(id)
		if err != nil {
			return overloadRow{}, err
		}
		row.accepted += st.AcceptedPackets
		row.dropped += st.DroppedPackets
	}
	h := e.Health()
	row.shed = h.Overloaded + h.Overload.PriorityShed
	if got := row.accepted + row.dropped + row.shed; got != row.offered {
		return overloadRow{}, fmt.Errorf("disposition %d != offered %d", got, row.offered)
	}
	return row, nil
}
