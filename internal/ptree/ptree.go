// Package ptree implements an allocation-free hierarchical policy-tree
// enforcer: one object covering a whole rooted tree of rate limits —
// tenant → plan → subscriber — the shape the paper's operators (ISPs,
// cellular carriers) actually configure, rather than the linear chains
// internal/cascade composes.
//
// # Layout
//
// The tree lives in flat arrays with index-linked nodes: parent,
// first-child and next-sibling are int32 indices, node state (stages,
// token levels, refill clocks, per-node counters) is struct-of-arrays, and
// a NodeID is an array offset. There are no per-node heap objects and no
// pointers between nodes, so a million-leaf tree is a handful of
// contiguous slices (~100 B/node), the datapath never chases pointers, and
// steady-state SubmitBatchAt performs zero allocations. Specs are given in
// topological order (every parent precedes its children), which makes
// cycles unrepresentable at build time; the snapshot decoder re-validates
// topology independently because its input is untrusted.
//
// # Admission
//
// Each node optionally carries a ceiling Stage (enforcer.Stage: a phantom
// queue or token-bucket policer) — the hard cap on its subtree, enforced
// with the same two-phase packet-major probe/commit discipline as
// internal/cascade, so every level's Theorem 1 bound (accepted ≤ r·Δt + B)
// holds exactly per interior node. A packet submitted at a leaf probes
// every ceiling on the leaf → root path and is committed to all of them or
// none.
//
// # Borrowing
//
// On top of the ceilings sits an HTB-style assured-rate layer (after
// HTBQueue, arXiv 2109.12879). A leaf with Assured > 0 owns a guarantee
// bucket refilled at its assured rate and clamped at zero; an interior
// node carries a borrow-pool ledger refilled at its own assured rate if
// set, else at the sum of its children's effective rates (its "lend
// rate") — the bandwidth its subtree was promised. Admission requires
// the packet's size be covered cumulatively by the positive buckets
// along its path, nearest first; a packet that cannot be covered is over
// its subtree's share with no idle bandwidth to borrow, and is dropped
// at the entry node. On accept, every assured node on the path is
// charged the full packet size — but leaf guarantee buckets clamp at
// zero while pool ledgers may run into debt (floored at -burst). The
// debt is what makes borrowing exact: a child spending its own guarantee
// still charges the pool (whose lend rate already counts that child's
// share), so the pool's level tracks pooled income minus subtree
// consumption and goes positive — lendable — only while some descendant
// underuses its share. An idle child's unused assured rate is exactly
// what the pool collects, released for siblings to borrow; a lone busy
// child tops out at the pool's lend rate instead of double-dipping its
// own bucket on top of it. Borrowing cascades: when a whole plan's
// subscribers underuse, the level above collects the slack and lends it
// across plans, so a subtree may exceed its own lend rate by drawing an
// ancestor pool's surplus — its ceiling, not its lend rate, is the hard
// cap. A pool bypassed that way sinks to its -burst debt floor and stops
// lending until demand recedes and its income repays the debt. Ceilings
// always bind above the borrow layer, so borrowing never lets a subtree
// exceed any ancestor's ceiling.
package ptree

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/units"
)

// DefaultBurstWindow sizes a defaulted assured bucket or borrow pool: the
// bucket holds this much time at the node's refill rate (with a one-MSS
// floor), the classic "rate × small window" policer sizing.
const DefaultBurstWindow = 100 * time.Millisecond

// NodeSpec describes one node of a policy tree.
type NodeSpec struct {
	// Name optionally labels the node for metrics and traces; defaults to
	// "node<i>".
	Name string
	// Parent is the index of the node's parent in the spec slice, -1 for
	// the root. Specs are topologically ordered: the root is spec[0] and
	// every parent index is smaller than its child's.
	Parent int
	// Stage is the node's ceiling — the hard cap on its subtree's rate
	// (a *phantom.PQP, *tbf.Policer, or any enforcer.Stage). Nil means no
	// ceiling at this node.
	Stage enforcer.Stage
	// Assured enables the borrowing layer at this node: the rate its
	// subtree is guaranteed even when siblings are backlogged, and the
	// rate it lends to siblings while idle. Zero disables the layer here
	// (an interior node still pools its children's assured rates).
	Assured units.Rate
	// Burst is the assured bucket (leaf) or borrow pool (interior)
	// capacity in bytes; 0 selects DefaultBurstWindow at the node's
	// refill rate. Only meaningful on nodes participating in the assured
	// layer.
	Burst int64
}

// Tree is a policy-tree enforcer. It implements enforcer.TreeEnforcer,
// enforcer.Enforcer (leaf-routing by packet class), enforcer.BatchSubmitter,
// enforcer.StatsReader, enforcer.Reconfigurer (targeting the root) and
// enforcer.Snapshotter. Not safe for concurrent use.
type Tree struct {
	// Topology, immutable after New. Index-linked: no pointers.
	parent      []int32
	firstChild  []int32 // -1 = leaf
	nextSibling []int32 // -1 = last sibling
	names       []string
	stages      []enforcer.Stage
	leaves      []enforcer.NodeID
	maxDepth    int // nodes on the longest leaf→root path

	// Assured/borrow layer, hot state. ownAssured is the configured rate;
	// effRate is the node's effective refill rate in bytes/sec: its own
	// assured rate if set, else the sum of its children's effective rates
	// (the lend rate of an interior pool). effRate == 0 means the node
	// does not participate.
	ownAssured []float64 // configured, bytes/sec
	effRate    []float64 // effective refill, bytes/sec
	burst      []float64 // bucket/pool capacity, bytes
	floor      []float64 // token floor: 0 for leaf buckets, -burst for pools
	tokens     []float64
	lastFill   []time.Duration

	// Per-node accounting: interior nodes see their whole subtree's
	// admitted traffic (every packet on a path through them), drops are
	// attributed to the rejecting node (the first ceiling that refused,
	// or the entry leaf for borrow-layer rejections).
	accPkts  []int64
	accBytes []int64
	drpPkts  []int64
	drpBytes []int64

	stats enforcer.Stats

	path []int32 // leaf→root scratch, cap maxDepth; reused per packet
}

// New builds a policy tree from a topologically ordered spec: spec[0] is
// the root (Parent == -1) and every other node's Parent precedes it. The
// ordering makes cyclic or multi-root specs unrepresentable.
func New(spec []NodeSpec) (*Tree, error) {
	n := len(spec)
	if n == 0 {
		return nil, fmt.Errorf("ptree: empty spec")
	}
	if spec[0].Parent != -1 {
		return nil, fmt.Errorf("ptree: spec[0] must be the root (Parent -1, got %d)", spec[0].Parent)
	}
	t := &Tree{
		parent:      make([]int32, n),
		firstChild:  make([]int32, n),
		nextSibling: make([]int32, n),
		stages:      make([]enforcer.Stage, n),
		ownAssured:  make([]float64, n),
		effRate:     make([]float64, n),
		burst:       make([]float64, n),
		floor:       make([]float64, n),
		tokens:      make([]float64, n),
		lastFill:    make([]time.Duration, n),
		accPkts:     make([]int64, n),
		accBytes:    make([]int64, n),
		drpPkts:     make([]int64, n),
		drpBytes:    make([]int64, n),
	}
	named := false
	for i, s := range spec {
		if i > 0 && (s.Parent < 0 || s.Parent >= i) {
			return nil, fmt.Errorf("ptree: node %d: parent %d not topologically ordered (want [0,%d))",
				i, s.Parent, i)
		}
		if s.Assured < 0 {
			return nil, fmt.Errorf("ptree: node %d: negative assured rate %v", i, s.Assured)
		}
		if s.Burst < 0 {
			return nil, fmt.Errorf("ptree: node %d: negative burst %d", i, s.Burst)
		}
		if s.Burst > 0 && s.Burst < units.MSS {
			return nil, fmt.Errorf("ptree: node %d: burst %d below one MSS", i, s.Burst)
		}
		t.parent[i] = int32(s.Parent)
		t.firstChild[i] = -1
		t.nextSibling[i] = -1
		t.stages[i] = s.Stage
		t.ownAssured[i] = s.Assured.BytesPerSecond()
		if s.Name != "" {
			named = true
		}
	}
	t.parent[0] = -1
	// Link children in spec order: iterating high-to-low and prepending
	// leaves each child list sorted ascending.
	for i := n - 1; i >= 1; i-- {
		p := t.parent[i]
		t.nextSibling[i] = t.firstChild[p]
		t.firstChild[p] = int32(i)
	}
	if named {
		t.names = make([]string, n)
		for i, s := range spec {
			t.names[i] = s.Name
		}
	}
	// Effective refill rates, children before parents (reverse spec
	// order): a node's own assured rate overrides; otherwise it pools its
	// children's effective rates.
	for i := n - 1; i >= 0; i-- {
		if t.ownAssured[i] > 0 {
			t.effRate[i] = t.ownAssured[i]
		}
		// else effRate[i] already accumulated from children below.
		if p := t.parent[i]; p >= 0 && t.ownAssured[p] == 0 {
			t.effRate[p] += t.effRate[i]
		}
	}
	// Bucket capacities: configured, or DefaultBurstWindow at the refill
	// rate. Buckets start full, as deployed policers do.
	for i := 0; i < n; i++ {
		if spec[i].Burst > 0 && t.effRate[i] == 0 {
			return nil, fmt.Errorf("ptree: node %d: burst %d without an assured rate in its subtree",
				i, spec[i].Burst)
		}
		if t.effRate[i] == 0 {
			continue
		}
		if spec[i].Burst > 0 {
			t.burst[i] = float64(spec[i].Burst)
		} else {
			t.burst[i] = t.effRate[i] * DefaultBurstWindow.Seconds()
			if t.burst[i] < units.MSS {
				t.burst[i] = units.MSS
			}
		}
		t.tokens[i] = t.burst[i]
		if t.firstChild[i] != -1 {
			t.floor[i] = -t.burst[i]
		}
	}
	// Leaves, and the deepest leaf→root path for the scratch buffer.
	for i := 0; i < n; i++ {
		if t.firstChild[i] != -1 {
			continue
		}
		t.leaves = append(t.leaves, enforcer.NodeID(i))
		depth := 0
		for v := int32(i); v >= 0; v = t.parent[v] {
			depth++
		}
		if depth > t.maxDepth {
			t.maxDepth = depth
		}
	}
	t.path = make([]int32, 0, t.maxDepth)
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(spec []NodeSpec) *Tree {
	t, err := New(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// NumNodes implements enforcer.TreeEnforcer.
func (t *Tree) NumNodes() int { return len(t.parent) }

// Parent implements enforcer.TreeEnforcer.
func (t *Tree) Parent(node enforcer.NodeID) enforcer.NodeID {
	if int(node) < 0 || int(node) >= len(t.parent) {
		return enforcer.NoNode
	}
	return enforcer.NodeID(t.parent[node])
}

// IsLeaf implements enforcer.TreeEnforcer.
func (t *Tree) IsLeaf(node enforcer.NodeID) bool {
	return int(node) >= 0 && int(node) < len(t.parent) && t.firstChild[node] == -1
}

// NodeLabel implements enforcer.TreeEnforcer.
func (t *Tree) NodeLabel(node enforcer.NodeID) string {
	if int(node) < 0 || int(node) >= len(t.parent) {
		return ""
	}
	if t.names != nil && t.names[node] != "" {
		return t.names[node]
	}
	return fmt.Sprintf("node%d", node)
}

// Leaves returns the tree's leaf nodes in index order. The slice is the
// tree's own: callers must not mutate it.
func (t *Tree) Leaves() []enforcer.NodeID { return t.leaves }

// AssuredRate returns a node's configured assured rate (zero when the
// borrowing layer is disabled there) and its effective refill rate — for
// interior pools, the lend rate pooled from its children.
func (t *Tree) AssuredRate(node enforcer.NodeID) (configured, effective units.Rate) {
	if int(node) < 0 || int(node) >= len(t.parent) {
		return 0, 0
	}
	return units.Rate(t.ownAssured[node] * 8), units.Rate(t.effRate[node] * 8)
}

// NodeStats implements enforcer.TreeEnforcer. Interior nodes account their
// whole subtree's admitted traffic; drops are attributed to the rejecting
// node.
func (t *Tree) NodeStats(node enforcer.NodeID) (enforcer.Stats, error) {
	if int(node) < 0 || int(node) >= len(t.parent) {
		return enforcer.Stats{}, fmt.Errorf("ptree: node %d out of range [0,%d): %w",
			node, len(t.parent), enforcer.ErrBadNode)
	}
	return enforcer.Stats{
		AcceptedPackets: t.accPkts[node],
		AcceptedBytes:   t.accBytes[node],
		DroppedPackets:  t.drpPkts[node],
		DroppedBytes:    t.drpBytes[node],
	}, nil
}

// EnforcerStats implements enforcer.StatsReader with the tree-level
// (root-subtree) verdict accounting.
func (t *Tree) EnforcerStats() enforcer.Stats { return t.stats }

// fillPath writes the node → root index path into the tree's scratch
// buffer (preallocated to the deepest path: no allocation) and returns it.
func (t *Tree) fillPath(node enforcer.NodeID) []int32 {
	p := t.path[:0]
	for v := int32(node); v >= 0; v = t.parent[v] {
		p = append(p, v)
	}
	return p
}

var _ enforcer.TreeEnforcer = (*Tree)(nil)
var _ enforcer.StatsReader = (*Tree)(nil)
