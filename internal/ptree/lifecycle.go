package ptree

import (
	"fmt"
	"math"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// treeSnapVersion is the format version of Tree snapshot blobs.
const treeSnapVersion = 1

// NodeReconfigurer implements enforcer.TreeEnforcer, exposing the node's
// ceiling stage for in-place rate/policy changes.
func (t *Tree) NodeReconfigurer(node enforcer.NodeID) (enforcer.Reconfigurer, error) {
	if int(node) < 0 || int(node) >= len(t.parent) {
		return nil, fmt.Errorf("ptree: node %d out of range [0,%d): %w",
			node, len(t.parent), enforcer.ErrBadNode)
	}
	r, ok := t.stages[node].(enforcer.Reconfigurer)
	if !ok || t.stages[node] == nil {
		return nil, fmt.Errorf("ptree: node %d (%T): %w",
			node, t.stages[node], enforcer.ErrNotReconfigurable)
	}
	return r, nil
}

// SetNodeRate changes one node's ceiling rate in place. Like every
// Reconfigurer, the old rate's accounting is settled first, so acceptance
// over any reconfiguration obeys the piecewise bound r₁·Δt₁ + r₂·Δt₂ + B.
func (t *Tree) SetNodeRate(now time.Duration, node enforcer.NodeID, rate units.Rate) error {
	r, err := t.NodeReconfigurer(node)
	if err != nil {
		return err
	}
	return r.SetRate(now, rate)
}

// SetNodePolicy changes one node's ceiling rate-sharing policy in place.
func (t *Tree) SetNodePolicy(now time.Duration, node enforcer.NodeID, policy *sched.Policy) error {
	r, err := t.NodeReconfigurer(node)
	if err != nil {
		return err
	}
	return r.SetPolicy(now, policy)
}

// setEffRate retargets one node's effective refill rate, settling accrued
// income at the old rate first (the same settle-then-switch discipline as
// tbf.SetRate). A node joining the assured layer gets a fresh full default
// bucket; one leaving it drops its bucket entirely.
func (t *Tree) setEffRate(now time.Duration, n int32, eff float64) {
	if eff == t.effRate[n] {
		return
	}
	if t.effRate[n] > 0 {
		t.refillNode(n, now)
	}
	t.effRate[n] = eff
	switch {
	case eff == 0:
		t.burst[n], t.tokens[n] = 0, 0
	case t.burst[n] == 0:
		b := eff * DefaultBurstWindow.Seconds()
		if b < units.MSS {
			b = units.MSS
		}
		t.burst[n], t.tokens[n] = b, b
		t.lastFill[n] = now
	}
	t.floor[n] = 0
	if t.firstChild[n] != -1 {
		t.floor[n] = -t.burst[n]
	}
	if t.tokens[n] < t.floor[n] {
		t.tokens[n] = t.floor[n]
	}
}

func (t *Tree) childEffSum(n int32) float64 {
	var s float64
	for c := t.firstChild[n]; c >= 0; c = t.nextSibling[c] {
		s += t.effRate[c]
	}
	return s
}

// SetNodeAssured changes one node's assured rate in place and re-derives
// the lend rates of every ancestor pool that inherits from its children
// (propagation stops at the first ancestor with its own assured rate).
// Every touched bucket settles income at its old rate before switching, so
// borrow-layer admission obeys the same piecewise bound as ceiling
// reconfiguration. Zero removes the node from the assured layer.
func (t *Tree) SetNodeAssured(now time.Duration, node enforcer.NodeID, rate units.Rate) error {
	if int(node) < 0 || int(node) >= len(t.parent) {
		return fmt.Errorf("ptree: node %d out of range [0,%d): %w",
			node, len(t.parent), enforcer.ErrBadNode)
	}
	if rate < 0 {
		return fmt.Errorf("ptree: node %d: negative assured rate %v", node, rate)
	}
	n := int32(node)
	t.ownAssured[n] = rate.BytesPerSecond()
	eff := t.ownAssured[n]
	if eff == 0 {
		eff = t.childEffSum(n)
	}
	t.setEffRate(now, n, eff)
	for p := t.parent[n]; p >= 0; p = t.parent[p] {
		if t.ownAssured[p] > 0 {
			break
		}
		t.setEffRate(now, p, t.childEffSum(p))
	}
	return nil
}

// SetRate implements enforcer.Reconfigurer by forwarding to the root
// ceiling — retargeting the whole tree's aggregate limit, the operation a
// link-capacity change maps to. Per-node changes go through SetNodeRate.
func (t *Tree) SetRate(now time.Duration, rate units.Rate) error {
	return t.SetNodeRate(now, 0, rate)
}

// SetPolicy implements enforcer.Reconfigurer by forwarding to the root
// ceiling (see SetRate for why).
func (t *Tree) SetPolicy(now time.Duration, policy *sched.Policy) error {
	return t.SetNodePolicy(now, 0, policy)
}

// NodeSnapshotter implements enforcer.TreeEnforcer, exposing the node's
// ceiling stage for per-node state capture.
func (t *Tree) NodeSnapshotter(node enforcer.NodeID) (enforcer.Snapshotter, error) {
	if int(node) < 0 || int(node) >= len(t.parent) {
		return nil, fmt.Errorf("ptree: node %d out of range [0,%d): %w",
			node, len(t.parent), enforcer.ErrBadNode)
	}
	snap, ok := t.stages[node].(enforcer.Snapshotter)
	if !ok || t.stages[node] == nil {
		return nil, fmt.Errorf("ptree: node %d (%T): %w",
			node, t.stages[node], enforcer.ErrNotSnapshottable)
	}
	return snap, nil
}

// SnapshotState implements enforcer.Snapshotter: the tree's verdict
// accounting plus every node's borrow-layer state, counters and ceiling
// blob, in index order.
//
// Layout: u8 version, stats, u32 node count, then per node: u32 index,
// i64 parent, f64 tokens, dur lastFill, i64 ×4 (accepted pkts/bytes,
// dropped pkts/bytes), length-prefixed ceiling blob (empty for stageless
// nodes). The index and parent fields are config echo: they let the
// decoder structurally validate an untrusted blob — ordering, duplicate
// nodes, cycles — before trusting any of it.
func (t *Tree) SnapshotState() ([]byte, error) {
	var e enforcer.Enc
	e.U8(treeSnapVersion)
	e.Stats(t.stats)
	e.U32(uint32(len(t.parent)))
	for i := range t.parent {
		var blob []byte
		if s := t.stages[i]; s != nil {
			snap, ok := s.(enforcer.Snapshotter)
			if !ok {
				return nil, fmt.Errorf("ptree: node %d (%T): %w", i, s, enforcer.ErrNotSnapshottable)
			}
			var err error
			if blob, err = snap.SnapshotState(); err != nil {
				return nil, fmt.Errorf("ptree: snapshotting node %d: %w", i, err)
			}
		}
		e.U32(uint32(i))
		e.I64(int64(t.parent[i]))
		e.F64(t.tokens[i])
		e.Dur(t.lastFill[i])
		e.I64(t.accPkts[i])
		e.I64(t.accBytes[i])
		e.I64(t.drpPkts[i])
		e.I64(t.drpBytes[i])
		e.Bytes(blob)
	}
	return e.Out(), nil
}

// RestoreState implements enforcer.Snapshotter. The receiver must be built
// over the same topology and per-node configuration. The blob is fully
// structurally validated — node ordering, duplicates, parent range,
// multiple roots, cycles, token ranges — before any receiver state is
// touched; only per-node ceiling blob errors can interrupt mid-restore
// (after which, like every Snapshotter, the receiver is discardable).
func (t *Tree) RestoreState(data []byte) error {
	d := enforcer.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != treeSnapVersion {
		d.Fail("ptree: unsupported snapshot version %d (want %d)", v, treeSnapVersion)
	}
	stats := d.Stats()
	n := len(t.parent)
	if cnt := d.U32(); d.Err() == nil && int(cnt) != n {
		d.Fail("ptree: snapshot has %d nodes, tree has %d", cnt, n)
	}
	if d.Err() != nil {
		return d.Err()
	}
	parents := make([]int64, n)
	tokens := make([]float64, n)
	lastFill := make([]time.Duration, n)
	counters := make([][4]int64, n)
	blobs := make([][]byte, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		idx := d.U32()
		if d.Err() == nil && int(idx) != i {
			d.Fail("ptree: node entry %d carries index %d (duplicate, out-of-order, or out-of-range node)", i, idx)
		}
		parents[i] = d.I64()
		tokens[i] = d.F64()
		lastFill[i] = d.Dur()
		for k := 0; k < 4; k++ {
			counters[i][k] = d.I64()
		}
		blobs[i] = d.Bytes()
		if d.Err() != nil {
			break
		}
		switch p := parents[i]; {
		case i == 0 && p != -1:
			d.Fail("ptree: root entry has parent %d (want -1)", p)
		case i > 0 && p == -1:
			d.Fail("ptree: node %d claims to be a second root", i)
		case i > 0 && (p < 0 || p >= int64(n)):
			d.Fail("ptree: node %d parent %d out of range [0,%d)", i, p, n)
		case p == int64(i):
			d.Fail("ptree: node %d is its own parent", i)
		case math.IsNaN(tokens[i]) || math.IsInf(tokens[i], 0) || tokens[i] > t.burst[i]:
			d.Fail("ptree: node %d tokens %g above capacity %g (or not finite)", i, tokens[i], t.burst[i])
		case tokens[i] < 0 && (t.firstChild[i] == -1 || t.effRate[i] == 0):
			// Only interior borrow pools may carry debt; leaf guarantee
			// buckets clamp at zero and non-participating nodes hold none.
			d.Fail("ptree: node %d negative tokens %g on a non-pool node", i, tokens[i])
		case tokens[i] < t.floor[i]:
			d.Fail("ptree: node %d tokens %g below the pool debt floor %g", i, tokens[i], t.floor[i])
		case lastFill[i] < 0:
			d.Fail("ptree: node %d negative refill clock %v", i, lastFill[i])
		case counters[i][0] < 0 || counters[i][1] < 0 || counters[i][2] < 0 || counters[i][3] < 0:
			d.Fail("ptree: node %d negative counters", i)
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}
	// Acyclicity: walk each node rootward; a walk that does not terminate
	// within n steps can only be circling. Independent of the receiver's
	// topology — the blob is untrusted on its own terms.
	for i := 0; i < n; i++ {
		steps := 0
		for v := int64(i); v >= 0; v = parents[v] {
			if steps++; steps > n {
				return fmt.Errorf("ptree: snapshot topology has a cycle through node %d", i)
			}
		}
	}
	for i := 0; i < n; i++ {
		if parents[i] != int64(t.parent[i]) {
			return fmt.Errorf("ptree: snapshot node %d has parent %d, tree has %d",
				i, parents[i], t.parent[i])
		}
		if t.stages[i] == nil && len(blobs[i]) > 0 {
			return fmt.Errorf("ptree: snapshot node %d carries a ceiling blob, tree node has no ceiling", i)
		}
	}
	// Validate every ceiling is snapshottable before restoring any, so a
	// structural mismatch cannot leave the tree half-restored.
	snaps := make([]enforcer.Snapshotter, n)
	for i, s := range t.stages {
		if s == nil {
			continue
		}
		snap, ok := s.(enforcer.Snapshotter)
		if !ok {
			return fmt.Errorf("ptree: node %d (%T): %w", i, s, enforcer.ErrNotSnapshottable)
		}
		snaps[i] = snap
	}
	for i, snap := range snaps {
		if snap == nil {
			continue
		}
		if err := snap.RestoreState(blobs[i]); err != nil {
			return fmt.Errorf("ptree: restoring node %d: %w", i, err)
		}
	}
	t.stats = stats
	for i := 0; i < n; i++ {
		t.tokens[i] = tokens[i]
		t.lastFill[i] = lastFill[i]
		t.accPkts[i] = counters[i][0]
		t.accBytes[i] = counters[i][1]
		t.drpPkts[i] = counters[i][2]
		t.drpBytes[i] = counters[i][3]
	}
	return nil
}

var _ enforcer.Reconfigurer = (*Tree)(nil)
var _ enforcer.Snapshotter = (*Tree)(nil)
