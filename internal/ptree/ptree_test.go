package ptree

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bcpqp/internal/cascade"
	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/rng"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

func pkt(class, size int) packet.Packet {
	return packet.Packet{
		Key:   packet.FlowKey{SrcIP: 10, DstIP: 20, SrcPort: uint16(class + 1), DstPort: 443, Proto: 6},
		Size:  size,
		Class: class,
	}
}

func newPQP(rate units.Rate, queues int) *phantom.PQP {
	return phantom.MustNew(phantom.Config{
		Rate:         rate,
		Queues:       queues,
		QueueSize:    200 * units.MSS,
		BurstControl: true,
	})
}

func newTBF(rate units.Rate) *tbf.Policer {
	return tbf.MustNew(rate, units.BDPBytes(rate, 100*time.Millisecond))
}

// tenantPlanSub builds the canonical 3-level shape: root link ceiling, two
// plan pools, two subscribers per plan with assured rates.
func tenantPlanSub() *Tree {
	return MustNew([]NodeSpec{
		{Name: "link", Parent: -1, Stage: newTBF(20 * units.Mbps)},
		{Name: "planA", Parent: 0, Stage: newTBF(12 * units.Mbps)},
		{Name: "planB", Parent: 0, Stage: newTBF(12 * units.Mbps)},
		{Name: "a1", Parent: 1, Assured: 4 * units.Mbps},
		{Name: "a2", Parent: 1, Assured: 4 * units.Mbps},
		{Name: "b1", Parent: 2, Assured: 4 * units.Mbps},
		{Name: "b2", Parent: 2, Assured: 4 * units.Mbps},
	})
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		spec []NodeSpec
	}{
		{"empty", nil},
		{"root with parent", []NodeSpec{{Parent: 0}}},
		{"second root", []NodeSpec{{Parent: -1}, {Parent: -1}}},
		{"forward parent", []NodeSpec{{Parent: -1}, {Parent: 2}, {Parent: 0}}},
		{"self parent", []NodeSpec{{Parent: -1}, {Parent: 1}}},
		{"negative assured", []NodeSpec{{Parent: -1, Assured: -units.Mbps}}},
		{"sub-MSS burst", []NodeSpec{{Parent: -1, Assured: units.Mbps, Burst: units.MSS - 1}}},
		{"burst without assured", []NodeSpec{{Parent: -1, Burst: 10 * units.MSS}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := New([]NodeSpec{{Parent: -1, Stage: newTBF(units.Mbps)}}); err != nil {
		t.Errorf("single ceiling node rejected: %v", err)
	}
}

func TestTopology(t *testing.T) {
	tr := tenantPlanSub()
	if got := tr.NumNodes(); got != 7 {
		t.Fatalf("NumNodes = %d, want 7", got)
	}
	wantParent := []enforcer.NodeID{enforcer.NoNode, 0, 0, 1, 1, 2, 2}
	for i, want := range wantParent {
		if got := tr.Parent(enforcer.NodeID(i)); got != want {
			t.Errorf("Parent(%d) = %d, want %d", i, got, want)
		}
	}
	if tr.Parent(-3) != enforcer.NoNode || tr.Parent(99) != enforcer.NoNode {
		t.Error("out-of-range Parent should be NoNode")
	}
	wantLeaf := []bool{false, false, false, true, true, true, true}
	for i, want := range wantLeaf {
		if got := tr.IsLeaf(enforcer.NodeID(i)); got != want {
			t.Errorf("IsLeaf(%d) = %v, want %v", i, got, want)
		}
	}
	if got := len(tr.Leaves()); got != 4 {
		t.Errorf("len(Leaves) = %d, want 4", got)
	}
	if got := tr.NodeLabel(3); got != "a1" {
		t.Errorf("NodeLabel(3) = %q, want a1", got)
	}
	if got := tr.NodeLabel(99); got != "" {
		t.Errorf("NodeLabel(99) = %q, want empty", got)
	}
	// Unnamed nodes fall back to node<i>.
	anon := MustNew([]NodeSpec{{Parent: -1, Stage: newTBF(units.Mbps)}})
	if got := anon.NodeLabel(0); got != "node0" {
		t.Errorf("anonymous NodeLabel(0) = %q, want node0", got)
	}
	// Interior pool rate derives from children; leaves report their own.
	cfg, eff := tr.AssuredRate(1)
	if cfg != 0 || eff != 8*units.Mbps {
		t.Errorf("AssuredRate(planA) = (%v, %v), want (0, 8Mbps)", cfg, eff)
	}
}

// chainSpec mirrors a cascade's stages as a linear ptree: spec[0] (root) is
// the innermost stage, the last node the outermost leaf — the cascade's
// stage 0. No assured rates, so the borrow layer is disabled and the tree
// must reproduce cascade verdicts exactly.
func chainStages(seed uint64) (mk func() []enforcer.Stage) {
	return func() []enforcer.Stage {
		r := rng.New(seed)
		n := 2 + r.IntN(3)
		stages := make([]enforcer.Stage, n)
		for i := range stages {
			rate := units.Rate(4+r.IntN(17)) * units.Mbps
			if r.IntN(2) == 0 {
				stages[i] = newTBF(rate)
			} else {
				stages[i] = newPQP(rate, 1+r.IntN(4))
			}
		}
		return stages
	}
}

// TestChainEquivalence: a linear-chain policy tree produces byte-identical
// verdicts, stats and per-stage drop attribution to a Cascade over the same
// stage configurations, under randomized bursty traffic.
func TestChainEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			mk := chainStages(seed)
			cascStages := mk()
			treeStages := mk()
			casc := cascade.MustNew(cascStages...)
			n := len(treeStages)
			spec := make([]NodeSpec, n)
			for i := range spec {
				// Tree node i holds cascade stage n-1-i: root = innermost.
				spec[i] = NodeSpec{Parent: i - 1, Stage: treeStages[n-1-i]}
			}
			tr := MustNew(spec)
			leaf := enforcer.NodeID(n - 1)
			if !tr.IsLeaf(leaf) || tr.IsLeaf(0) && n > 1 {
				t.Fatalf("chain leaf/root mixed up")
			}

			r := rng.New(seed ^ 0x9e3779b97f4a7c15)
			now := time.Duration(0)
			meanGap := (10 * units.Mbps).DurationForBytes(units.MSS)
			for b := 0; b < 400; b++ {
				np := 1 + r.IntN(48)
				now += time.Duration(float64(meanGap) * float64(np) * r.Range(0.3, 0.9))
				if r.IntN(20) == 0 {
					now += 150 * time.Millisecond
				}
				for k := 0; k < np; k++ {
					size := units.MSS
					if r.IntN(4) == 0 {
						size = 64 + r.IntN(units.MSS-64)
					}
					p := pkt(r.IntN(4), size)
					vc := casc.Submit(now, p)
					vt := tr.SubmitAt(now, leaf, p)
					if vc != vt {
						t.Fatalf("burst %d pkt %d: cascade %v, tree %v", b, k, vc, vt)
					}
				}
			}
			if cs, ts := casc.EnforcerStats(), tr.EnforcerStats(); cs != ts {
				t.Errorf("stats diverged: cascade %+v, tree %+v", cs, ts)
			}
			for i := 0; i < n; i++ {
				// Cascade stage i == tree node n-1-i.
				ns, err := tr.NodeStats(enforcer.NodeID(n - 1 - i))
				if err != nil {
					t.Fatalf("NodeStats: %v", err)
				}
				if ns.DroppedPackets != casc.DroppedAt[i] {
					t.Errorf("stage %d drop attribution: cascade %d, tree %d",
						i, casc.DroppedAt[i], ns.DroppedPackets)
				}
			}
		})
	}
}

// TestBatchEquivalence: SubmitBatchAt verdicts are byte-identical to
// per-packet SubmitAt calls on an identically configured tree.
func TestBatchEquivalence(t *testing.T) {
	mkTree := func() *Tree { return tenantPlanSub() }
	one, batch := mkTree(), mkTree()
	r := rng.New(42)
	now := time.Duration(0)
	leaves := one.Leaves()
	pkts := make([]packet.Packet, 0, 64)
	verdicts := make([]enforcer.Verdict, 64)
	for b := 0; b < 300; b++ {
		now += time.Duration(r.IntN(int(5 * time.Millisecond)))
		leaf := leaves[r.IntN(len(leaves))]
		pkts = pkts[:0]
		np := 1 + r.IntN(48)
		for k := 0; k < np; k++ {
			size := 64 + r.IntN(units.MSS-64)
			pkts = append(pkts, pkt(k%4, size))
		}
		batch.SubmitBatchAt(now, leaf, pkts, verdicts)
		for k := range pkts {
			want := one.SubmitAt(now, leaf, pkts[k])
			if verdicts[k] != want {
				t.Fatalf("burst %d pkt %d at leaf %d: batch %v, single %v",
					b, k, leaf, verdicts[k], want)
			}
		}
	}
	if s1, s2 := one.EnforcerStats(), batch.EnforcerStats(); s1 != s2 {
		t.Errorf("stats diverged: single %+v, batch %+v", s1, s2)
	}
}

// drive offers traffic at a fixed rate to one leaf over a window and
// returns the bytes admitted.
func drive(tr *Tree, leaf enforcer.NodeID, offered units.Rate, from, to time.Duration) int64 {
	gap := offered.DurationForBytes(units.MSS)
	var acc int64
	for now := from; now < to; now += gap {
		if tr.SubmitAt(now, leaf, pkt(int(leaf), units.MSS)) == enforcer.Transmit {
			acc += units.MSS
		}
	}
	return acc
}

// driveMulti offers traffic to several leaves concurrently over a window:
// one time-ordered stream of interleaved MSS packets, each source pacing
// itself at its own offered rate. Returns the bytes admitted per source.
func driveMulti(tr *Tree, leaves []enforcer.NodeID, offered []units.Rate, from, to time.Duration) []int64 {
	acc := make([]int64, len(leaves))
	owed := make([]float64, len(leaves))
	const step = 250 * time.Microsecond
	for now := from; now < to; now += step {
		for i, leaf := range leaves {
			owed[i] += offered[i].Bytes(step)
			for owed[i] >= units.MSS {
				owed[i] -= units.MSS
				if tr.SubmitAt(now, leaf, pkt(int(leaf), units.MSS)) == enforcer.Transmit {
					acc[i] += units.MSS
				}
			}
		}
	}
	return acc
}

// TestBorrowingReclaim is the HTB contract end to end: a subscriber
// throttled at its assured rate while its sibling is active reclaims the
// sibling's released bandwidth when it idles, and falls back to its
// assured share when the sibling returns. The 20 Mbps link ceiling is
// deliberately slack — every cap seen here is the borrow layer's doing.
func TestBorrowingReclaim(t *testing.T) {
	tr := MustNew([]NodeSpec{
		{Name: "link", Parent: -1, Stage: newTBF(20 * units.Mbps)},
		{Name: "subA", Parent: 0, Assured: 5 * units.Mbps},
		{Name: "subB", Parent: 0, Assured: 5 * units.Mbps},
	})
	const subA, subB = enforcer.NodeID(1), enforcer.NodeID(2)
	both := []enforcer.NodeID{subA, subB}
	sec := func(r units.Rate, d time.Duration) float64 { return r.Bytes(d) }

	// Phase 1 (0–5 s): both offer 8 Mbps. The pool's 10 Mbps lend rate is
	// fully subscribed, so each is held near its 5 Mbps assured share.
	acc := driveMulti(tr, both, []units.Rate{8 * units.Mbps, 8 * units.Mbps}, 0, 5*time.Second)
	for i, name := range []string{"A/contended", "B/contended"} {
		lo, hi := 0.85*sec(5*units.Mbps, 5*time.Second), 1.25*sec(5*units.Mbps, 5*time.Second)
		if f := float64(acc[i]); f < lo || f > hi {
			t.Errorf("phase 1 %s admitted %d bytes, want ~5 Mbps share [%.0f, %.0f]", name, acc[i], lo, hi)
		}
	}
	// Phase 2 (5–10 s): A idles; B offers 12 Mbps and reclaims A's
	// released 5 Mbps through the parent pool — topping out at the pool's
	// 10 Mbps lend rate, well under the 20 Mbps ceiling.
	acc = driveMulti(tr, both, []units.Rate{0, 12 * units.Mbps}, 5*time.Second, 10*time.Second)
	lo, hi := 0.85*sec(10*units.Mbps, 5*time.Second), 1.2*sec(10*units.Mbps, 5*time.Second)
	if f := float64(acc[1]); f < lo || f > hi {
		t.Errorf("phase 2 B admitted %d bytes, want ~10 Mbps (A's idle share borrowed) [%.0f, %.0f]", acc[1], lo, hi)
	}
	// Phase 3 (10–15 s): A returns at 8 Mbps. A recovers its guaranteed
	// 5 Mbps immediately; B is squeezed back to its own share.
	acc = driveMulti(tr, both, []units.Rate{8 * units.Mbps, 12 * units.Mbps}, 10*time.Second, 15*time.Second)
	if f := float64(acc[0]); f < 0.85*sec(5*units.Mbps, 5*time.Second) {
		t.Errorf("phase 3 A admitted %d bytes, want back near its 5 Mbps assured share", acc[0])
	}
	if f := float64(acc[1]); f > 1.35*sec(5*units.Mbps, 5*time.Second) {
		t.Errorf("phase 3 B admitted %d bytes, want throttled back near 5 Mbps", acc[1])
	}
}

// TestBorrowConservation is the property test: under randomized trees and
// traffic, (1) every node with a ceiling obeys Theorem 1 — accepted bytes
// through its subtree ≤ rate·Δt + burst — so borrowing can never exceed
// any subtree ceiling; (2) the topmost assured node's subtree obeys the
// same bound at its pooled lend rate (borrowed bandwidth is conserved:
// only released assured income is re-admitted).
func TestBorrowConservation(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		r := rng.New(seed * 7919)
		// Random 3-level tree: root ceiling, 2-3 pools, 2-4 leaves each.
		type ceil struct {
			node enforcer.NodeID
			rate units.Rate
			blen int64
		}
		var ceils []ceil
		rootRate := units.Rate(10+r.IntN(20)) * units.Mbps
		spec := []NodeSpec{{Parent: -1, Stage: newTBF(rootRate)}}
		ceils = append(ceils, ceil{0, rootRate, units.BDPBytes(rootRate, 100*time.Millisecond)})
		pools := 2 + r.IntN(2)
		var leaves []enforcer.NodeID
		for p := 0; p < pools; p++ {
			prate := units.Rate(5+r.IntN(10)) * units.Mbps
			pidx := len(spec)
			spec = append(spec, NodeSpec{Parent: 0, Stage: newTBF(prate)})
			ceils = append(ceils, ceil{enforcer.NodeID(pidx), prate, units.BDPBytes(prate, 100*time.Millisecond)})
			for l := 0; l < 2+r.IntN(3); l++ {
				leaves = append(leaves, enforcer.NodeID(len(spec)))
				spec = append(spec, NodeSpec{
					Parent:  pidx,
					Assured: units.Rate(1+r.IntN(5)) * units.Mbps,
				})
			}
		}
		tr := MustNew(spec)

		const horizon = 4 * time.Second
		now := time.Duration(0)
		for now < horizon {
			leaf := leaves[r.IntN(len(leaves))]
			np := 1 + r.IntN(32)
			for k := 0; k < np; k++ {
				tr.SubmitAt(now, leaf, pkt(int(leaf), 64+r.IntN(units.MSS-64)))
			}
			now += time.Duration(r.IntN(int(3 * time.Millisecond)))
		}

		for _, c := range ceils {
			st, err := tr.NodeStats(c.node)
			if err != nil {
				t.Fatalf("NodeStats(%d): %v", c.node, err)
			}
			bound := float64(c.rate.Bytes(horizon)) + float64(c.blen) + units.MSS
			if f := float64(st.AcceptedBytes); f > bound {
				t.Errorf("seed %d node %d: subtree accepted %d bytes > ceiling bound %.0f (r·Δt+B)",
					seed, c.node, st.AcceptedBytes, bound)
			}
		}
		// Topmost assured bound: borrowed bandwidth is conserved — the
		// borrow layer redistributes released assured income, it does not
		// mint it. Every admitted packet charges the root pool ledger the
		// full packet size, so root-subtree admission can never exceed the
		// pooled lend income over the horizon plus the banked token
		// capital the run started with (every bucket and pool begins
		// full).
		_, eff := tr.AssuredRate(0)
		rootStats, _ := tr.NodeStats(0)
		var capital float64
		for _, b := range tr.burst {
			capital += b
		}
		bound := eff.Bytes(horizon) + capital + units.MSS
		if f := float64(rootStats.AcceptedBytes); f > bound {
			t.Errorf("seed %d: root admitted %d bytes > assured-layer bound %.0f", seed, rootStats.AcceptedBytes, bound)
		}
	}
}

// TestSubmitFailsClosed: out-of-range nodes drop and count, never pass.
func TestSubmitFailsClosed(t *testing.T) {
	tr := tenantPlanSub()
	if v := tr.SubmitAt(0, 99, pkt(0, units.MSS)); v != enforcer.Drop {
		t.Errorf("out-of-range SubmitAt = %v, want Drop", v)
	}
	if v := tr.SubmitAt(0, -2, pkt(0, units.MSS)); v != enforcer.Drop {
		t.Errorf("negative SubmitAt = %v, want Drop", v)
	}
	pkts := []packet.Packet{pkt(0, units.MSS)}
	verdicts := make([]enforcer.Verdict, 1)
	tr.SubmitBatchAt(0, 99, pkts, verdicts)
	if verdicts[0] != enforcer.Drop {
		t.Errorf("out-of-range SubmitBatchAt = %v, want Drop", verdicts[0])
	}
	if st := tr.EnforcerStats(); st.DroppedPackets != 3 {
		t.Errorf("fail-closed drops not counted: %+v", st)
	}
}

// TestNodeErrors: sentinel-typed addressing errors.
func TestNodeErrors(t *testing.T) {
	tr := tenantPlanSub()
	if _, err := tr.NodeStats(99); !errors.Is(err, enforcer.ErrBadNode) {
		t.Errorf("NodeStats(99): %v, want ErrBadNode", err)
	}
	if _, err := tr.NodeReconfigurer(99); !errors.Is(err, enforcer.ErrBadNode) {
		t.Errorf("NodeReconfigurer(99): %v, want ErrBadNode", err)
	}
	// Node 3 is a stageless assured leaf: no ceiling to reconfigure.
	if _, err := tr.NodeReconfigurer(3); !errors.Is(err, enforcer.ErrNotReconfigurable) {
		t.Errorf("NodeReconfigurer(leaf): %v, want ErrNotReconfigurable", err)
	}
	if _, err := tr.NodeSnapshotter(3); !errors.Is(err, enforcer.ErrNotSnapshottable) {
		t.Errorf("NodeSnapshotter(leaf): %v, want ErrNotSnapshottable", err)
	}
	if err := tr.SetNodeAssured(0, 99, units.Mbps); !errors.Is(err, enforcer.ErrBadNode) {
		t.Errorf("SetNodeAssured(99): %v, want ErrBadNode", err)
	}
}

// TestInteriorHotSetRate: reconfiguring an interior ceiling mid-traffic
// obeys the piecewise bound r₁·Δt₁ + r₂·Δt₂ + B — admission state is
// settled, not reset, across the change.
func TestInteriorHotSetRate(t *testing.T) {
	const r1, r2 = 8 * units.Mbps, 2 * units.Mbps
	tr := MustNew([]NodeSpec{
		{Name: "link", Parent: -1, Stage: newTBF(50 * units.Mbps)},
		{Name: "plan", Parent: 0, Stage: newTBF(r1)},
		{Name: "sub", Parent: 1},
	})
	const leaf = enforcer.NodeID(2)
	const phase = 3 * time.Second
	acc1 := drive(tr, leaf, 20*units.Mbps, 0, phase)
	if err := tr.SetNodeRate(phase, 1, r2); err != nil {
		t.Fatalf("SetNodeRate: %v", err)
	}
	acc2 := drive(tr, leaf, 20*units.Mbps, phase, 2*phase)
	slack := float64(units.BDPBytes(r1, 100*time.Millisecond)) + 2*units.MSS
	if f := float64(acc1 + acc2); f > float64(r1.Bytes(phase))+float64(r2.Bytes(phase))+slack {
		t.Errorf("piecewise bound violated: admitted %d bytes", acc1+acc2)
	}
	// And the second phase really is enforced at r2, not r1.
	if f := float64(acc2); f > 1.3*float64(r2.Bytes(phase))+slack {
		t.Errorf("post-change admission %d bytes, want ~r2·Δt", acc2)
	}
}

// TestSetNodeAssuredPropagation: changing a leaf's assured rate re-derives
// every inheriting ancestor pool's lend rate.
func TestSetNodeAssuredPropagation(t *testing.T) {
	tr := MustNew([]NodeSpec{
		{Name: "root", Parent: -1},
		{Name: "pool", Parent: 0},
		{Name: "x", Parent: 1, Assured: 3 * units.Mbps},
		{Name: "y", Parent: 1, Assured: 5 * units.Mbps},
	})
	if _, eff := tr.AssuredRate(1); eff != 8*units.Mbps {
		t.Fatalf("pool lend rate = %v, want 8 Mbps", eff)
	}
	if err := tr.SetNodeAssured(time.Second, 2, 7*units.Mbps); err != nil {
		t.Fatalf("SetNodeAssured: %v", err)
	}
	if _, eff := tr.AssuredRate(1); eff != 12*units.Mbps {
		t.Errorf("pool lend rate after change = %v, want 12 Mbps", eff)
	}
	if _, eff := tr.AssuredRate(0); eff != 12*units.Mbps {
		t.Errorf("root lend rate after change = %v, want 12 Mbps", eff)
	}
	// Removing the last assured rates disables the layer everywhere.
	if err := tr.SetNodeAssured(2*time.Second, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetNodeAssured(2*time.Second, 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, eff := tr.AssuredRate(0); eff != 0 {
		t.Errorf("root lend rate = %v after disabling all assured rates, want 0", eff)
	}
	if v := tr.SubmitAt(3*time.Second, 2, pkt(0, units.MSS)); v != enforcer.Transmit {
		t.Errorf("stage-less, assured-less tree should pass: %v", v)
	}
}
