package ptree

import (
	"runtime"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/rng"
	"bcpqp/internal/units"
)

// millionLeafSpec builds the acceptance-scale tree: root ceiling, 1000
// interior pools, 1000 assured leaves per pool — 1,001,001 nodes.
func millionLeafSpec(leavesPerPool, pools int) []NodeSpec {
	spec := make([]NodeSpec, 0, 1+pools+pools*leavesPerPool)
	spec = append(spec, NodeSpec{Parent: -1, Stage: newTBF(10 * units.Gbps)})
	for p := 0; p < pools; p++ {
		pidx := len(spec)
		spec = append(spec, NodeSpec{Parent: 0, Stage: newTBF(100 * units.Mbps)})
		for l := 0; l < leavesPerPool; l++ {
			spec = append(spec, NodeSpec{Parent: pidx, Assured: 64 * units.Kbps})
		}
	}
	return spec
}

// TestMillionLeafScale is the scaling acceptance test: a million-leaf,
// depth-3 policy tree builds in bounded memory (flat arrays, ~100 B/node),
// steady-state batch submission performs zero allocations, and both
// Theorem 1 per interior ceiling and the assured-layer conservation bound
// hold at scale exactly as they do on a 7-node tree.
func TestMillionLeafScale(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node build in -short mode")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	tr := MustNew(millionLeafSpec(1000, 1000))
	runtime.GC()
	runtime.ReadMemStats(&after)
	n := tr.NumNodes()
	if n != 1_001_001 {
		t.Fatalf("NumNodes = %d, want 1001001", n)
	}
	perNode := float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
	// Flat struct-of-arrays layout: ~100 B of tree state per node plus the
	// interior ceilings. 400 B/node of headroom guards against a
	// regression to per-node heap objects without flaking on GC noise.
	if perNode > 400 {
		t.Errorf("tree costs %.0f B/node, want flat-array footprint (≤ 400)", perNode)
	}

	// Steady state: warm up the paths, then batches must not allocate.
	leaves := tr.Leaves()
	if len(leaves) != 1_000_000 {
		t.Fatalf("leaves = %d, want 1e6", len(leaves))
	}
	r := rng.New(1234)
	pkts := make([]packet.Packet, 32)
	verdicts := make([]enforcer.Verdict, 32)
	for i := range pkts {
		pkts[i] = pkt(i, units.MSS)
	}
	now := time.Duration(0)
	submitOnce := func() {
		now += 100 * time.Microsecond
		tr.SubmitBatchAt(now, leaves[r.IntN(len(leaves))], pkts, verdicts)
	}
	submitOnce()
	if avg := testing.AllocsPerRun(100, submitOnce); avg != 0 {
		t.Errorf("SubmitBatchAt allocates %.1f times per batch at 1M leaves, want 0", avg)
	}

	// Hammer a handful of leaves under two pools hard enough to engage
	// both ceilings and the borrow layer, then check the bounds.
	const horizon = 2 * time.Second
	hot := []enforcer.NodeID{leaves[0], leaves[1], leaves[999_999]}
	start := now
	for ; now < start+horizon; now += 500 * time.Microsecond {
		for _, leaf := range hot {
			tr.SubmitAt(now, leaf, pkt(int(leaf), units.MSS))
		}
	}
	elapsed := now // ceilings have been refilling since t=0
	for _, node := range []enforcer.NodeID{0, tr.Parent(hot[0]), tr.Parent(hot[2])} {
		st, err := tr.NodeStats(node)
		if err != nil {
			t.Fatalf("NodeStats(%d): %v", node, err)
		}
		_, eff := tr.AssuredRate(node)
		rate := 10 * units.Gbps
		burst := units.BDPBytes(rate, 100*time.Millisecond)
		if node != 0 {
			rate = 100 * units.Mbps
			burst = units.BDPBytes(rate, 100*time.Millisecond)
		}
		if f := float64(st.AcceptedBytes); f > rate.Bytes(elapsed)+float64(burst)+units.MSS {
			t.Errorf("node %d: accepted %d bytes > ceiling bound", node, st.AcceptedBytes)
		}
		// Assured layer: a pool's subtree stays within its lend income
		// plus banked capital even when its leaves overdrive 30x.
		if node != 0 {
			var capital float64
			for c := tr.firstChild[node]; c >= 0; c = tr.nextSibling[c] {
				capital += tr.burst[c]
			}
			capital += tr.burst[node]
			if f := float64(st.AcceptedBytes); f > eff.Bytes(elapsed)+capital+units.MSS {
				t.Errorf("pool %d: accepted %d bytes > assured bound %.0f",
					node, st.AcceptedBytes, eff.Bytes(elapsed)+capital)
			}
		}
	}
}
