package ptree

import (
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
)

// refillNode advances one assured bucket/borrow pool to now: continuous
// refill at the node's effective rate, capped at its capacity. Buckets
// start full, so no started flag is needed; refill never runs time
// backwards (now <= lastFill is a no-op, matching tbf).
func (t *Tree) refillNode(n int32, now time.Duration) {
	last := t.lastFill[n]
	if now <= last {
		return
	}
	t.lastFill[n] = now
	tok := t.tokens[n] + t.effRate[n]*(now-last).Seconds()
	if tok > t.burst[n] {
		tok = t.burst[n]
	}
	t.tokens[n] = tok
}

// admit runs one packet through the two admission layers along path
// (node → root) and returns the verdict. On drop, the rejection is
// attributed to the responsible node's counters; on accept, every path
// node's accounting and every assured bucket on the path is charged.
func (t *Tree) admit(now time.Duration, path []int32, pkt packet.Packet) enforcer.Verdict {
	// Layer 1: ceilings, two-phase. Probe every stage on the path; the
	// first to refuse owns the drop. Probes advance lazy drains/refills
	// but no admission state, so a later borrow-layer rejection cannot
	// corrupt any ceiling's Theorem 1 accounting.
	for _, n := range path {
		if s := t.stages[n]; s != nil && !s.Probe(now, pkt) {
			t.drpPkts[n]++
			t.drpBytes[n] += int64(pkt.Size)
			t.stats.Reject(pkt.Size)
			return enforcer.Drop
		}
	}
	// Layer 2: assured/borrow. The packet must be covered cumulatively by
	// the buckets along its path, nearest first: own assured tokens, then
	// ancestor pool tokens (idle siblings' released bandwidth). Every
	// assured node is refilled here even once covered — income must not
	// be deferred past the bucket cap. A pool ledger in debt (negative
	// tokens, see the commit below) contributes nothing until its income
	// repays the debt.
	need := float64(pkt.Size)
	assured := false
	for _, n := range path {
		if t.effRate[n] <= 0 {
			continue
		}
		assured = true
		t.refillNode(n, now)
		if tok := t.tokens[n]; need > 0 && tok > 0 {
			if tok >= need {
				need = 0
			} else {
				need -= tok
			}
		}
	}
	if assured && need > 0 {
		// Over assured rate and no borrowable pool tokens. The entry
		// node owns the drop: the subtree that burst past its share.
		n := path[0]
		t.drpPkts[n]++
		t.drpBytes[n] += int64(pkt.Size)
		t.stats.Reject(pkt.Size)
		return enforcer.Drop
	}
	// Commit: charge every ceiling, and charge every assured node on the
	// path the full packet size. The two bucket roles charge differently:
	//
	//   - A leaf guarantee bucket clamps at zero. Its refill income can
	//     then never be pre-spent, so traffic within the leaf's assured
	//     rate always finds cover there — the guarantee.
	//
	//   - An interior pool is a debt ledger, floored at -burst. A child
	//     spending its own guarantee still charges the pool (whose lend
	//     income already counts that child's rate), so the pool's level
	//     tracks pooled income minus subtree consumption: it is positive
	//     — lendable — only while some descendant underuses its share,
	//     which is precisely the HTB borrowing condition. Without the
	//     ledger a lone busy child would double-dip, spending its own
	//     bucket while the pool's trickle (fed partly by that same
	//     child's rate) covers the rest; and clamping would compound
	//     level to level, so interior nodes with their own assured rate
	//     are ledgers too. The -burst floor keeps a pool bypassed by
	//     upper-level borrowing (its subtree drawing a higher pool's
	//     surplus past this pool's own lend rate) from sinking so deep
	//     it can never lend again once demand recedes.
	for _, n := range path {
		if s := t.stages[n]; s != nil {
			s.Commit(now, pkt)
		}
		if t.effRate[n] > 0 {
			t.tokens[n] -= float64(pkt.Size)
			if floor := t.floor[n]; t.tokens[n] < floor {
				t.tokens[n] = floor
			}
		}
		t.accPkts[n]++
		t.accBytes[n] += int64(pkt.Size)
	}
	t.stats.Accept(pkt.Size)
	return enforcer.Transmit
}

// SubmitAt implements enforcer.TreeEnforcer: enforce one packet along the
// path node → root. An out-of-range node fails closed.
func (t *Tree) SubmitAt(now time.Duration, node enforcer.NodeID, pkt packet.Packet) enforcer.Verdict {
	if int(node) < 0 || int(node) >= len(t.parent) {
		t.stats.Reject(pkt.Size)
		return enforcer.Drop
	}
	return t.admit(now, t.fillPath(node), pkt)
}

// SubmitBatchAt implements enforcer.TreeEnforcer: the whole burst enters at
// one node and virtual time, so the node → root path is resolved once and
// the loop touches only the flat per-node arrays — zero allocations.
// Verdicts are byte-identical to per-packet SubmitAt calls in order.
func (t *Tree) SubmitBatchAt(now time.Duration, node enforcer.NodeID, pkts []packet.Packet, verdicts []enforcer.Verdict) {
	verdicts = verdicts[:len(pkts)]
	if int(node) < 0 || int(node) >= len(t.parent) {
		for i := range pkts {
			t.stats.Reject(pkts[i].Size)
			verdicts[i] = enforcer.Drop
		}
		return
	}
	path := t.fillPath(node)
	for i := range pkts {
		verdicts[i] = t.admit(now, path, pkts[i])
	}
}

// Submit implements enforcer.Enforcer by routing the packet to a leaf by
// its class (explicit Class if set, else the flow-key hash), exactly how a
// flat aggregate spreads flows over queues. This is what lets a whole tree
// stand wherever a single enforcer does — one mbox aggregate, the facade,
// the proxy — with leaf-addressed submission layered on top.
func (t *Tree) Submit(now time.Duration, pkt packet.Packet) enforcer.Verdict {
	return t.SubmitAt(now, t.leaves[pkt.ClassIn(len(t.leaves))], pkt)
}

// SubmitBatch implements enforcer.BatchSubmitter. Packets in a mixed burst
// may route to different leaves, so each is path-resolved individually;
// the path scratch is reused and nothing allocates.
func (t *Tree) SubmitBatch(now time.Duration, pkts []packet.Packet, verdicts []enforcer.Verdict) {
	verdicts = verdicts[:len(pkts)]
	for i := range pkts {
		verdicts[i] = t.Submit(now, pkts[i])
	}
}

var _ enforcer.Enforcer = (*Tree)(nil)
var _ enforcer.BatchSubmitter = (*Tree)(nil)
