package ptree

import (
	"testing"
	"time"

	"bcpqp/internal/enforcer"
)

// FuzzTreeSnapshotDecode hardens the tree snapshot decoder against hostile
// input: RestoreState must never panic, must reject duplicate or cyclic
// node topology, and any blob it accepts must leave the tree in a state
// whose own snapshot restores cleanly (decode → encode → decode is stable).
func FuzzTreeSnapshotDecode(f *testing.F) {
	// Seed with well-formed images — cold and warm — so mutation starts
	// from deep inside the versioned framing rather than at the version
	// check, plus degenerate prefixes.
	cold := tenantPlanSub()
	if blob, err := cold.SnapshotState(); err == nil {
		f.Add(blob)
	}
	warm := tenantPlanSub()
	runTraffic(warm, 11, time.Second)
	if blob, err := warm.SnapshotState(); err == nil {
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{treeSnapVersion})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := tenantPlanSub()
		if err := tr.RestoreState(data); err != nil {
			return // rejected is fine; panicking is not
		}
		// Accepted input restored real state: the tree must remain fully
		// serviceable — its own snapshot re-applies, and traffic flows.
		re, err := tr.SnapshotState()
		if err != nil {
			t.Fatalf("re-snapshot of accepted state failed: %v", err)
		}
		tr2 := tenantPlanSub()
		if err := tr2.RestoreState(re); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if s1, s2 := tr.EnforcerStats(), tr2.EnforcerStats(); s1 != s2 {
			t.Fatalf("round trip changed stats: %+v != %+v", s1, s2)
		}
		for i := 0; i < tr.NumNodes(); i++ {
			n1, _ := tr.NodeStats(enforcer.NodeID(i))
			n2, _ := tr2.NodeStats(enforcer.NodeID(i))
			if n1 != n2 {
				t.Fatalf("round trip changed node %d counters: %+v != %+v", i, n1, n2)
			}
		}
		tr.Submit(time.Hour, pkt(0, 1500))
	})
}
