package ptree

import (
	"errors"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/rng"
	"bcpqp/internal/units"
)

// runTraffic pushes a deterministic randomized load through the tree so
// snapshots carry non-trivial state.
func runTraffic(tr *Tree, seed uint64, horizon time.Duration) {
	r := rng.New(seed)
	leaves := tr.Leaves()
	now := time.Duration(0)
	for now < horizon {
		leaf := leaves[r.IntN(len(leaves))]
		for k, np := 0, 1+r.IntN(16); k < np; k++ {
			tr.SubmitAt(now, leaf, pkt(int(leaf), 64+r.IntN(units.MSS-64)))
		}
		now += time.Duration(r.IntN(int(2 * time.Millisecond)))
	}
}

// TestSnapshotRoundTrip: a warm tree's state moves onto an identically
// configured cold tree, which then produces byte-identical verdicts.
func TestSnapshotRoundTrip(t *testing.T) {
	warm, cold := tenantPlanSub(), tenantPlanSub()
	runTraffic(warm, 99, 2*time.Second)
	blob, err := warm.SnapshotState()
	if err != nil {
		t.Fatalf("SnapshotState: %v", err)
	}
	if err := cold.RestoreState(blob); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if ws, cs := warm.EnforcerStats(), cold.EnforcerStats(); ws != cs {
		t.Fatalf("restored stats %+v, want %+v", cs, ws)
	}
	for i := 0; i < warm.NumNodes(); i++ {
		ws, _ := warm.NodeStats(enforcer.NodeID(i))
		cs, _ := cold.NodeStats(enforcer.NodeID(i))
		if ws != cs {
			t.Fatalf("node %d restored stats %+v, want %+v", i, cs, ws)
		}
	}
	// Post-restore the two trees are the same machine: identical verdicts
	// on identical continued traffic.
	r := rng.New(7)
	leaves := warm.Leaves()
	for now := 2 * time.Second; now < 3*time.Second; now += time.Duration(r.IntN(int(time.Millisecond))) {
		leaf := leaves[r.IntN(len(leaves))]
		p := pkt(int(leaf), 64+r.IntN(units.MSS-64))
		if vw, vc := warm.SubmitAt(now, leaf, p), cold.SubmitAt(now, leaf, p); vw != vc {
			t.Fatalf("post-restore divergence at %v: warm %v, cold %v", now, vw, vc)
		}
	}
}

// mutateAt returns a copy of blob with one byte changed.
func mutateAt(blob []byte, off int, b byte) []byte {
	m := append([]byte(nil), blob...)
	m[off] = b
	return m
}

// TestSnapshotRejection: structurally broken blobs are rejected before any
// receiver state is touched.
func TestSnapshotRejection(t *testing.T) {
	warm := tenantPlanSub()
	runTraffic(warm, 5, time.Second)
	blob, err := warm.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, bad []byte) {
		t.Helper()
		cold := tenantPlanSub()
		before, _ := cold.SnapshotState()
		if err := cold.RestoreState(bad); err == nil {
			t.Errorf("%s: accepted", name)
			return
		}
		after, _ := cold.SnapshotState()
		if string(before) != string(after) {
			t.Errorf("%s: rejected blob still mutated the receiver", name)
		}
	}

	check("empty", nil)
	check("bad version", mutateAt(blob, 0, treeSnapVersion+1))
	check("truncated", blob[:len(blob)-3])
	check("trailing garbage", append(append([]byte(nil), blob...), 0xff))
	// Node entry 0 carrying index 1 reads as a duplicate/out-of-order node.
	// Layout: u8 version, stats (4×i64 = 32 bytes), u32 count, then entries
	// beginning with their u32 index.
	check("duplicate node index", mutateAt(blob, 1+32+4, 1))
	// Topology echo mismatches: node 1's parent field (i64 after its u32
	// index). Entry 0 spans 4+8+8+8+4*8+4+len(rootBlob); find node 1's
	// parent by decoding offsets is brittle — instead flip entry 0's parent
	// from -1 to 0 (self-parent ⇒ cycle/second-root class rejections).
	check("root with parent", mutateAt(blob, 1+32+4+4, 0x00))

	// Wrong shape: a snapshot of a different topology never applies.
	other := MustNew([]NodeSpec{
		{Name: "root", Parent: -1, Stage: newTBF(20 * units.Mbps)},
		{Name: "leaf", Parent: 0, Assured: 5 * units.Mbps},
	})
	oblob, err := other.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	check("node count mismatch", oblob)
}

// TestSnapshotPoolDebt: a borrow pool's negative ledger survives the round
// trip — and negative tokens on leaf guarantee buckets, or below a pool's
// -burst debt floor, are rejected.
func TestSnapshotPoolDebt(t *testing.T) {
	mk := func() *Tree {
		return MustNew([]NodeSpec{
			{Name: "root", Parent: -1},
			{Name: "x", Parent: 0, Assured: 5 * units.Mbps},
			{Name: "y", Parent: 0, Assured: 5 * units.Mbps},
		})
	}
	warm := mk()
	// Engineer a debt moment: empty x's bucket and the pool, then wait
	// 900µs — x's bucket holds 562 B, the pool 1125 B, together covering
	// one MSS — and send one packet. The commit charges the pool the full
	// packet size, driving its ledger negative (x's guarantee clamps at
	// zero).
	warm.tokens[0], warm.tokens[1] = 0, 0
	if v := warm.SubmitAt(900*time.Microsecond, 1, pkt(1, units.MSS)); v != enforcer.Transmit {
		t.Fatalf("engineered borrow packet dropped")
	}
	if warm.tokens[0] >= 0 {
		t.Fatalf("expected root pool in debt, tokens = %g", warm.tokens[0])
	}
	blob, err := warm.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	cold := mk()
	if err := cold.RestoreState(blob); err != nil {
		t.Fatalf("RestoreState rejected legitimate pool debt: %v", err)
	}
	if cold.tokens[0] != warm.tokens[0] {
		t.Errorf("debt not restored: %g, want %g", cold.tokens[0], warm.tokens[0])
	}

	// An interior node with its own assured rate is still a ledger, so
	// the same debt applies to a guarded variant of the tree too.
	guarded := MustNew([]NodeSpec{
		{Name: "root", Parent: -1, Assured: 10 * units.Mbps},
		{Name: "x", Parent: 0, Assured: 5 * units.Mbps},
		{Name: "y", Parent: 0, Assured: 5 * units.Mbps},
	})
	if err := guarded.RestoreState(blob); err != nil {
		t.Errorf("RestoreState rejected pool debt on an own-assured interior node: %v", err)
	}

	// Debt is only legal on interior pools, and only down to -burst: a
	// leaf guarantee bucket in debt and a below-floor ledger are both
	// rejected before any state is touched.
	warm.tokens[1] = -100
	leafDebt, err := warm.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := mk().RestoreState(leafDebt); err == nil {
		t.Error("negative tokens accepted on a leaf guarantee bucket")
	}
	warm.tokens[1] = 0
	warm.tokens[0] = warm.floor[0] - 1
	deepDebt, err := warm.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := mk().RestoreState(deepDebt); err == nil {
		t.Error("tokens below the -burst debt floor accepted")
	}
}

// TestSnapshotCeilingMismatch: per-node ceiling blobs only apply to nodes
// that actually carry a ceiling.
func TestSnapshotCeilingMismatch(t *testing.T) {
	warm := tenantPlanSub()
	blob, err := warm.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	bare := MustNew([]NodeSpec{
		{Name: "link", Parent: -1}, // no ceiling here
		{Name: "planA", Parent: 0, Stage: newTBF(12 * units.Mbps)},
		{Name: "planB", Parent: 0, Stage: newTBF(12 * units.Mbps)},
		{Name: "a1", Parent: 1, Assured: 4 * units.Mbps},
		{Name: "a2", Parent: 1, Assured: 4 * units.Mbps},
		{Name: "b1", Parent: 2, Assured: 4 * units.Mbps},
		{Name: "b2", Parent: 2, Assured: 4 * units.Mbps},
	})
	if err := bare.RestoreState(blob); err == nil {
		t.Error("ceiling blob accepted by a ceiling-less node")
	}
}

// TestSnapshotErrNotSnapshottable: a tree with a non-snapshottable ceiling
// refuses to snapshot with the typed sentinel.
type opaqueStage struct{}

func (opaqueStage) Probe(time.Duration, packet.Packet) bool { return true }
func (opaqueStage) Commit(time.Duration, packet.Packet)     {}

func TestSnapshotErrNotSnapshottable(t *testing.T) {
	tr := MustNew([]NodeSpec{{Parent: -1, Stage: opaqueStage{}}})
	if _, err := tr.SnapshotState(); !errors.Is(err, enforcer.ErrNotSnapshottable) {
		t.Errorf("SnapshotState: %v, want ErrNotSnapshottable", err)
	}
	if _, err := tr.NodeSnapshotter(0); !errors.Is(err, enforcer.ErrNotSnapshottable) {
		t.Errorf("NodeSnapshotter: %v, want ErrNotSnapshottable", err)
	}
}
