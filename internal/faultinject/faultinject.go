// Package faultinject provides deterministic, seeded fault-injecting
// enforcer wrappers for chaos-testing the middlebox runtime.
//
// An Injector wraps any enforcer.Enforcer and, driven by an internal/rng
// stream, injects the fault classes a production policer must survive:
//
//   - panics (the wrapped enforcer "crashes" mid-burst),
//   - verdict corruption (an out-of-range verdict, as a memory-corrupting
//     or buggy enforcer would produce),
//   - processing stalls (the enforcer blocks the shard goroutine),
//   - clock skew (the enforcer observes a jumped-forward arrival time;
//     skew is clamped monotone so the Enforcer contract's non-decreasing
//     virtual time still holds and only genuinely injected faults fire), and
//   - over-admission (Drop verdicts flipped to Transmit — the
//     bound-breaking bug class only a conformance auditor catches).
//
// Fault draws are deterministic in (seed, call sequence): the same seed
// over the same submission sequence injects the same faults, so chaos tests
// reproduce exactly. Injected faults are counted on the injector, letting
// tests reconcile engine-side fault counters against ground truth.
//
// An Injector is driven from a single goroutine at a time, exactly the
// discipline the mbox shard datapath guarantees; it is not safe for
// concurrent Submit calls (the fault counters, read from other goroutines,
// are atomics).
package faultinject

import (
	"errors"
	"sync/atomic"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/rng"
)

// ErrInjectedPanic is the value injected panics carry, so recovery sites
// and chaos tests can tell an injected fault from an organic bug. Test
// with errors.Is on the recovered value.
var ErrInjectedPanic = errors.New("faultinject: injected panic")

// CorruptVerdict is the out-of-range verdict injected by verdict
// corruption — far outside the defined enforcer.Verdict range, as a buggy
// or corrupted enforcer would produce.
const CorruptVerdict = enforcer.Verdict(0xBAD)

// Plan configures which faults an Injector injects and how often. All
// probabilities are per enforcement call (one Submit or one SubmitBatch),
// drawn independently in a fixed order.
type Plan struct {
	// Seed selects the deterministic fault stream.
	Seed uint64

	// Panic is the per-call probability of panicking with
	// ErrInjectedPanic before the wrapped enforcer runs.
	Panic float64
	// MaxPanics bounds the total number of injected panics (0 = no
	// bound). A bound of 1 models a transient crash: after it fires the
	// enforcer behaves again, so tests can exercise Reinstate.
	MaxPanics int64

	// Corrupt is the per-call probability of overwriting one verdict of
	// the call with CorruptVerdict after the wrapped enforcer ran.
	Corrupt float64

	// Stall is the per-call probability of sleeping StallFor before the
	// wrapped enforcer runs, wedging the calling goroutine.
	Stall float64
	// StallFor is the stall duration (default 1ms when Stall > 0).
	StallFor time.Duration

	// Skew is the per-call probability of adding SkewBy to the arrival
	// time passed to the wrapped enforcer. The skewed clock is clamped
	// monotone across calls.
	Skew float64
	// SkewBy is the forward clock jump (default 10ms when Skew > 0).
	SkewBy time.Duration

	// OverAdmit is the per-call probability of flipping every Drop
	// verdict of the call to Transmit after the wrapped enforcer ran —
	// the admission-bound-breaking bug class: a broken enforcer letting
	// traffic through above its configured rate. Unlike Corrupt (whose
	// out-of-range verdict the engine coerces to Drop, i.e. an
	// under-admission), an over-admission is invisible to verdict
	// validation and only a conformance auditor catches it. The exact
	// flipped packet and byte counts are recorded so audit tests can
	// reconcile violations against ground truth.
	OverAdmit float64
}

// Injector wraps an enforcer with seeded fault injection. It implements
// enforcer.Enforcer, enforcer.BatchSubmitter, and enforcer.StatsReader
// (delegating to the wrapped enforcer when it implements StatsReader, zero
// stats otherwise).
type Injector struct {
	inner enforcer.Enforcer
	src   *rng.Source
	plan  Plan

	lastNow time.Duration // monotone clamp for skewed time

	// Injected-fault ground truth, readable from any goroutine.
	Panics      atomic.Int64
	Corruptions atomic.Int64
	Stalls      atomic.Int64
	Skews       atomic.Int64
	// OverAdmits counts calls whose Drop verdicts were flipped;
	// OverAdmittedPackets/Bytes total exactly what the flips let through
	// beyond the wrapped enforcer's admissions.
	OverAdmits          atomic.Int64
	OverAdmittedPackets atomic.Int64
	OverAdmittedBytes   atomic.Int64
}

// New wraps inner with the given fault plan.
func New(inner enforcer.Enforcer, plan Plan) *Injector {
	if plan.Stall > 0 && plan.StallFor <= 0 {
		plan.StallFor = time.Millisecond
	}
	if plan.Skew > 0 && plan.SkewBy <= 0 {
		plan.SkewBy = 10 * time.Millisecond
	}
	return &Injector{
		inner: inner,
		src:   rng.New(plan.Seed),
		plan:  plan,
	}
}

// Injected returns the total number of faults injected so far.
func (f *Injector) Injected() int64 {
	return f.Panics.Load() + f.Corruptions.Load() + f.Stalls.Load() + f.Skews.Load() + f.OverAdmits.Load()
}

// Submit enforces one packet through the wrapped enforcer with faults
// applied per the plan.
func (f *Injector) Submit(now time.Duration, pkt packet.Packet) enforcer.Verdict {
	now = f.preFaults(now)
	v := f.inner.Submit(now, pkt)
	if f.plan.Corrupt > 0 && f.src.Float64() < f.plan.Corrupt {
		f.Corruptions.Add(1)
		v = CorruptVerdict
	}
	if f.plan.OverAdmit > 0 && f.src.Float64() < f.plan.OverAdmit {
		f.OverAdmits.Add(1)
		if v == enforcer.Drop {
			f.OverAdmittedPackets.Add(1)
			f.OverAdmittedBytes.Add(int64(pkt.Size))
			v = enforcer.Transmit
		}
	}
	return v
}

// SubmitBatch enforces a burst through the wrapped enforcer's batch path
// with faults applied per the plan. Verdict corruption overwrites one
// uniformly chosen verdict of the burst.
func (f *Injector) SubmitBatch(now time.Duration, pkts []packet.Packet, verdicts []enforcer.Verdict) {
	now = f.preFaults(now)
	enforcer.SubmitBatch(f.inner, now, pkts, verdicts)
	if f.plan.Corrupt > 0 && len(verdicts) > 0 && f.src.Float64() < f.plan.Corrupt {
		f.Corruptions.Add(1)
		verdicts[f.src.IntN(len(verdicts))] = CorruptVerdict
	}
	if f.plan.OverAdmit > 0 && len(verdicts) > 0 && f.src.Float64() < f.plan.OverAdmit {
		f.OverAdmits.Add(1)
		var pktsFlipped, bytesFlipped int64
		for i := range verdicts[:len(pkts)] {
			if verdicts[i] == enforcer.Drop {
				verdicts[i] = enforcer.Transmit
				pktsFlipped++
				bytesFlipped += int64(pkts[i].Size)
			}
		}
		f.OverAdmittedPackets.Add(pktsFlipped)
		f.OverAdmittedBytes.Add(bytesFlipped)
	}
}

// preFaults draws the pre-call faults (skew, stall, panic) in a fixed
// order and returns the (possibly skewed, always monotone) arrival time.
func (f *Injector) preFaults(now time.Duration) time.Duration {
	if f.plan.Skew > 0 && f.src.Float64() < f.plan.Skew {
		f.Skews.Add(1)
		now += f.plan.SkewBy
	}
	// Monotone clamp: a skewed call must not make a later unskewed call
	// appear to travel back in time.
	if now < f.lastNow {
		now = f.lastNow
	}
	f.lastNow = now
	if f.plan.Stall > 0 && f.src.Float64() < f.plan.Stall {
		f.Stalls.Add(1)
		time.Sleep(f.plan.StallFor)
	}
	if f.plan.Panic > 0 && f.src.Float64() < f.plan.Panic {
		if f.plan.MaxPanics <= 0 || f.Panics.Load() < f.plan.MaxPanics {
			f.Panics.Add(1)
			panic(ErrInjectedPanic)
		}
	}
	return now
}

// EnforcerStats delegates to the wrapped enforcer when it reads stats.
func (f *Injector) EnforcerStats() enforcer.Stats {
	if sr, ok := f.inner.(enforcer.StatsReader); ok {
		return sr.EnforcerStats()
	}
	return enforcer.Stats{}
}
