// Network fault injection: deterministic, seeded fault injectors for
// message-passing components (the cluster budget-exchange protocol, or any
// future wire protocol). A NetLink wraps one DIRECTIONAL delivery function
// with the five fault classes a distributed protocol must survive:
//
//   - message loss (the frame silently disappears),
//   - duplication (the frame is delivered twice),
//   - reordering (the frame is held back and delivered after later ones),
//   - delay (the frame is held until virtual time advances past its due
//     time), and
//   - one-way partition (Cut: every frame in this direction is swallowed
//     until Heal — the asymmetric failure mode that breaks protocols which
//     conflate "I hear you" with "you hear me").
//
// Fault draws are deterministic in (seed, call sequence): the same seed over
// the same Send sequence injects the same faults, so chaos tests reproduce
// exactly. Every injected fault is counted, letting tests reconcile
// protocol-side counters against ground truth.
//
// Delay is virtual-time based: delayed frames are parked and released by
// Advance(now), never by wall-clock timers, so a chaos test driving a
// virtual clock stays deterministic. Frames are copied on ingestion — the
// caller may reuse its buffer immediately, exactly like a real socket send.
package faultinject

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bcpqp/internal/rng"
)

// NetPlan configures which faults a NetLink injects and how often. All
// probabilities are per Send call, drawn independently in a fixed order:
// drop, duplicate, delay, reorder.
type NetPlan struct {
	// Seed selects the deterministic fault stream.
	Seed uint64

	// Drop is the per-send probability of losing the frame.
	Drop float64
	// Duplicate is the per-send probability of delivering the frame twice.
	Duplicate float64
	// Delay is the per-send probability of parking the frame until virtual
	// time advances past now+DelayBy (released by Advance).
	Delay float64
	// DelayBy is the injected delay (default 10ms when Delay > 0).
	DelayBy time.Duration
	// Reorder is the per-send probability of holding the frame back and
	// delivering it after the next undelayed frame on the link.
	Reorder float64
}

// delayedFrame is one parked frame awaiting Advance past its due time.
type delayedFrame struct {
	due   time.Duration
	seq   int64 // arrival order, for a stable release order at equal due
	frame []byte
}

// NetLink injects faults on one directional message link. Send and Advance
// are safe for concurrent use; deliveries run on the calling goroutine.
type NetLink struct {
	deliver func([]byte)
	plan    NetPlan

	mu      sync.Mutex
	src     *rng.Source
	cut     bool
	held    [][]byte // reorder buffer, delivered after the next clean send
	delayed []delayedFrame
	seq     int64

	// Injected-fault ground truth, readable from any goroutine.
	Dropped    atomic.Int64 // frames lost to the Drop draw
	Duplicated atomic.Int64 // extra deliveries from the Duplicate draw
	Delayed    atomic.Int64 // frames parked by the Delay draw
	Reordered  atomic.Int64 // frames held back by the Reorder draw
	CutDropped atomic.Int64 // frames swallowed while the link was Cut
	Delivered  atomic.Int64 // frames actually handed to deliver
}

// NewNetLink wraps deliver with the given fault plan.
func NewNetLink(deliver func([]byte), plan NetPlan) *NetLink {
	if plan.Delay > 0 && plan.DelayBy <= 0 {
		plan.DelayBy = 10 * time.Millisecond
	}
	return &NetLink{deliver: deliver, plan: plan, src: rng.New(plan.Seed)}
}

// Cut opens a one-way partition: every subsequent Send in this direction is
// swallowed (and counted) until Heal. Frames already parked stay parked.
func (l *NetLink) Cut() {
	l.mu.Lock()
	l.cut = true
	l.mu.Unlock()
}

// Heal closes the partition opened by Cut.
func (l *NetLink) Heal() {
	l.mu.Lock()
	l.cut = false
	l.mu.Unlock()
}

// Send offers one frame to the link at virtual time now, applying the fault
// plan. The frame is copied, so the caller may reuse its buffer.
func (l *NetLink) Send(now time.Duration, frame []byte) {
	l.mu.Lock()
	if l.cut {
		l.CutDropped.Add(1)
		l.mu.Unlock()
		return
	}
	// Draws happen in a fixed order (drop, duplicate, delay, reorder) and
	// only for enabled fault classes, so for a given plan the fault stream
	// is a pure function of (seed, send sequence).
	if l.plan.Drop > 0 && l.src.Float64() < l.plan.Drop {
		l.Dropped.Add(1)
		l.mu.Unlock()
		return
	}
	dup := l.plan.Duplicate > 0 && l.src.Float64() < l.plan.Duplicate
	copied := append([]byte(nil), frame...)
	if l.plan.Delay > 0 && l.src.Float64() < l.plan.Delay {
		l.Delayed.Add(1)
		l.seq++
		l.delayed = append(l.delayed, delayedFrame{due: now + l.plan.DelayBy, seq: l.seq, frame: copied})
		if dup {
			// The duplicate of a delayed frame is delivered promptly: the
			// two copies then also arrive out of order, compounding the
			// fault exactly as real networks do.
			l.Duplicated.Add(1)
			l.deliverLocked(copied)
		}
		l.mu.Unlock()
		return
	}
	if l.plan.Reorder > 0 && l.src.Float64() < l.plan.Reorder {
		l.Reordered.Add(1)
		l.held = append(l.held, copied)
		l.mu.Unlock()
		return
	}
	// Clean send: deliver this frame, then flush anything held for
	// reordering (it now arrives after a frame sent later).
	l.deliverLocked(copied)
	if dup {
		l.Duplicated.Add(1)
		l.deliverLocked(copied)
	}
	l.flushHeldLocked()
	l.mu.Unlock()
}

// Advance releases every delayed frame whose due time is at or before now,
// in due-time order (arrival order at equal due times). Call it whenever
// the test's virtual clock advances.
func (l *NetLink) Advance(now time.Duration) {
	l.mu.Lock()
	if len(l.delayed) == 0 {
		l.mu.Unlock()
		return
	}
	sort.SliceStable(l.delayed, func(i, j int) bool {
		if l.delayed[i].due != l.delayed[j].due {
			return l.delayed[i].due < l.delayed[j].due
		}
		return l.delayed[i].seq < l.delayed[j].seq
	})
	i := 0
	for ; i < len(l.delayed) && l.delayed[i].due <= now; i++ {
		l.deliverLocked(l.delayed[i].frame)
	}
	l.delayed = append(l.delayed[:0], l.delayed[i:]...)
	l.mu.Unlock()
}

// Flush delivers everything still parked (reorder holds first, then delayed
// frames in due order) regardless of time — the end-of-test drain.
func (l *NetLink) Flush() {
	l.Advance(1 << 62)
	l.mu.Lock()
	l.flushHeldLocked()
	l.mu.Unlock()
}

// Pending reports how many frames are parked (reorder holds + delayed).
func (l *NetLink) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.held) + len(l.delayed)
}

// InjectedNet returns the total number of injected network faults so far.
func (l *NetLink) InjectedNet() int64 {
	return l.Dropped.Load() + l.Duplicated.Load() + l.Delayed.Load() +
		l.Reordered.Load() + l.CutDropped.Load()
}

func (l *NetLink) flushHeldLocked() {
	for _, f := range l.held {
		l.deliverLocked(f)
	}
	l.held = l.held[:0]
}

func (l *NetLink) deliverLocked(frame []byte) {
	l.Delivered.Add(1)
	l.deliver(frame)
}
