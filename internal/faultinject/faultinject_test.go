package faultinject

import (
	"errors"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

func pkt(i int) packet.Packet {
	return packet.Packet{
		Key:  packet.FlowKey{SrcPort: uint16(i + 1), Proto: 17},
		Size: units.MSS,
	}
}

// recording wraps an enforcer and logs the arrival times it observes.
type recording struct {
	inner enforcer.Enforcer
	times []time.Duration
}

func (r *recording) Submit(now time.Duration, p packet.Packet) enforcer.Verdict {
	r.times = append(r.times, now)
	return r.inner.Submit(now, p)
}

// run drives an injector over n bursts, recovering injected panics, and
// returns the fault sequence (which calls panicked) for determinism checks.
func run(t *testing.T, inj *Injector, n int) []bool {
	t.Helper()
	panicked := make([]bool, n)
	verdicts := make([]enforcer.Verdict, 4)
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					err, ok := r.(error)
					if !ok || !errors.Is(err, ErrInjectedPanic) {
						t.Fatalf("unexpected panic value: %v", r)
					}
					panicked[i] = true
				}
			}()
			pkts := []packet.Packet{pkt(i), pkt(i + 1), pkt(i + 2), pkt(i + 3)}
			inj.SubmitBatch(time.Duration(i)*time.Millisecond, pkts, verdicts)
		}()
	}
	return panicked
}

func TestDeterministicFaultSequence(t *testing.T) {
	plan := Plan{Seed: 42, Panic: 0.3, Corrupt: 0.2, Skew: 0.2, SkewBy: 5 * time.Millisecond}
	a := New(tbf.MustNew(units.Mbps, 10*units.MSS), plan)
	b := New(tbf.MustNew(units.Mbps, 10*units.MSS), plan)
	const n = 200
	seqA, seqB := run(t, a, n), run(t, b, n)
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("fault sequences diverge at call %d with identical seeds", i)
		}
	}
	if a.Panics.Load() == 0 {
		t.Fatal("panic probability 0.3 over 200 calls injected nothing")
	}
	if a.Panics.Load() != b.Panics.Load() || a.Corruptions.Load() != b.Corruptions.Load() ||
		a.Skews.Load() != b.Skews.Load() {
		t.Fatalf("fault counters diverge: %d/%d/%d vs %d/%d/%d",
			a.Panics.Load(), a.Corruptions.Load(), a.Skews.Load(),
			b.Panics.Load(), b.Corruptions.Load(), b.Skews.Load())
	}
	c := New(tbf.MustNew(units.Mbps, 10*units.MSS), Plan{Seed: 43, Panic: 0.3, Corrupt: 0.2, Skew: 0.2, SkewBy: 5 * time.Millisecond})
	seqC := run(t, c, n)
	same := true
	for i := range seqA {
		if seqA[i] != seqC[i] {
			same = false
			break
		}
	}
	if same && a.Panics.Load() == c.Panics.Load() {
		t.Error("different seeds produced an identical fault sequence")
	}
}

func TestMaxPanicsBoundsInjection(t *testing.T) {
	inj := New(tbf.MustNew(units.Mbps, 10*units.MSS), Plan{Seed: 7, Panic: 1, MaxPanics: 3})
	run(t, inj, 50)
	if got := inj.Panics.Load(); got != 3 {
		t.Errorf("injected %d panics, want exactly MaxPanics=3", got)
	}
}

func TestSkewStaysMonotone(t *testing.T) {
	rec := &recording{inner: tbf.MustNew(units.Mbps, 10*units.MSS)}
	inj := New(rec, Plan{Seed: 11, Skew: 0.5, SkewBy: 50 * time.Millisecond})
	for i := 0; i < 200; i++ {
		inj.Submit(time.Duration(i)*time.Millisecond, pkt(i))
	}
	if inj.Skews.Load() == 0 {
		t.Fatal("skew probability 0.5 over 200 calls injected nothing")
	}
	for i := 1; i < len(rec.times); i++ {
		if rec.times[i] < rec.times[i-1] {
			t.Fatalf("observed time went backwards at call %d: %v < %v",
				i, rec.times[i], rec.times[i-1])
		}
	}
}

func TestCorruptionProducesOutOfRangeVerdict(t *testing.T) {
	inj := New(tbf.MustNew(units.Mbps, 1000*units.MSS), Plan{Seed: 3, Corrupt: 1})
	verdicts := make([]enforcer.Verdict, 4)
	inj.SubmitBatch(0, []packet.Packet{pkt(0), pkt(1), pkt(2), pkt(3)}, verdicts)
	if inj.Corruptions.Load() != 1 {
		t.Fatalf("corruptions = %d, want 1 per batch", inj.Corruptions.Load())
	}
	found := false
	for _, v := range verdicts {
		if v == CorruptVerdict {
			found = true
		}
	}
	if !found {
		t.Errorf("no corrupted verdict in %v", verdicts)
	}
	if v := inj.Submit(0, pkt(0)); v != CorruptVerdict {
		t.Errorf("single-submit corruption: verdict %v, want %v", v, CorruptVerdict)
	}
}

func TestStallInjection(t *testing.T) {
	inj := New(tbf.MustNew(units.Mbps, 10*units.MSS), Plan{Seed: 5, Stall: 1, StallFor: 2 * time.Millisecond})
	start := time.Now()
	inj.Submit(0, pkt(0))
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("stall of 2ms took only %v", elapsed)
	}
	if inj.Stalls.Load() != 1 {
		t.Errorf("stalls = %d, want 1", inj.Stalls.Load())
	}
}

func TestStatsDelegation(t *testing.T) {
	inner := tbf.MustNew(units.Mbps, 10*units.MSS)
	inj := New(inner, Plan{Seed: 1})
	inj.Submit(0, pkt(0))
	st := inj.EnforcerStats()
	if p, _ := st.Totals(); p != 1 {
		t.Errorf("delegated stats saw %d packets, want 1", p)
	}
}
