package faultinject

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// collect builds a NetLink whose deliveries append to a shared slice.
func collect(plan NetPlan) (*NetLink, *[][]byte) {
	var got [][]byte
	l := NewNetLink(func(f []byte) { got = append(got, f) }, plan)
	return l, &got
}

func frames(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("frame-%03d", i))
	}
	return out
}

// TestNetFaultPassthrough: a zero plan delivers every frame, in order,
// with zero injected faults.
func TestNetFaultPassthrough(t *testing.T) {
	l, got := collect(NetPlan{Seed: 1})
	in := frames(50)
	for i, f := range in {
		l.Send(time.Duration(i)*time.Millisecond, f)
	}
	if len(*got) != len(in) {
		t.Fatalf("delivered %d of %d frames", len(*got), len(in))
	}
	for i, f := range *got {
		if !bytes.Equal(f, in[i]) {
			t.Fatalf("frame %d: got %q want %q", i, f, in[i])
		}
	}
	if n := l.InjectedNet(); n != 0 {
		t.Fatalf("injected %d faults with a zero plan", n)
	}
	if n := l.Delivered.Load(); n != int64(len(in)) {
		t.Fatalf("Delivered = %d, want %d", n, len(in))
	}
}

// TestNetFaultCopiesFrames: the caller's buffer may be reused after Send.
func TestNetFaultCopiesFrames(t *testing.T) {
	l, got := collect(NetPlan{Seed: 1})
	buf := []byte("original")
	l.Send(0, buf)
	copy(buf, "CLOBBER!")
	if !bytes.Equal((*got)[0], []byte("original")) {
		t.Fatalf("delivered frame aliases the caller's buffer: %q", (*got)[0])
	}
}

// TestNetFaultDeterministic: identical (plan, send sequence) pairs produce
// identical deliveries and identical exact counters.
func TestNetFaultDeterministic(t *testing.T) {
	plan := NetPlan{Seed: 42, Drop: 0.2, Duplicate: 0.1, Delay: 0.15, DelayBy: 7 * time.Millisecond, Reorder: 0.1}
	run := func() ([][]byte, [5]int64) {
		l, got := collect(plan)
		for i, f := range frames(400) {
			now := time.Duration(i) * time.Millisecond
			l.Send(now, f)
			l.Advance(now)
		}
		l.Flush()
		return *got, [5]int64{
			l.Dropped.Load(), l.Duplicated.Load(), l.Delayed.Load(),
			l.Reordered.Load(), l.CutDropped.Load(),
		}
	}
	a, ca := run()
	b, cb := run()
	if ca != cb {
		t.Fatalf("counters differ across identical runs: %v vs %v", ca, cb)
	}
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("delivery %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	// The exact counters for this (seed, sequence) are part of the
	// reproducibility contract: a PCG or draw-order change must be noticed.
	want := [5]int64{80, 27, 57, 31, 0}
	if ca != want {
		t.Fatalf("counters = %v, want %v (seeded stream changed)", ca, want)
	}
}

// TestNetFaultDropAccounting: sent = delivered + dropped + parked, exactly.
func TestNetFaultDropAccounting(t *testing.T) {
	plan := NetPlan{Seed: 7, Drop: 0.5}
	l, got := collect(plan)
	const n = 1000
	for i, f := range frames(n) {
		l.Send(time.Duration(i)*time.Millisecond, f)
	}
	if int64(len(*got))+l.Dropped.Load() != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", len(*got), l.Dropped.Load(), n)
	}
	if l.Dropped.Load() == 0 || l.Dropped.Load() == n {
		t.Fatalf("drop fault never/always fired: %d of %d", l.Dropped.Load(), n)
	}
}

// TestNetFaultDuplicate: duplicates add exactly Duplicated extra deliveries.
func TestNetFaultDuplicate(t *testing.T) {
	plan := NetPlan{Seed: 9, Duplicate: 0.3}
	l, got := collect(plan)
	const n = 500
	for i, f := range frames(n) {
		l.Send(time.Duration(i)*time.Millisecond, f)
	}
	if int64(len(*got)) != n+l.Duplicated.Load() {
		t.Fatalf("delivered %d, want %d + %d duplicates", len(*got), n, l.Duplicated.Load())
	}
	if l.Duplicated.Load() == 0 {
		t.Fatal("duplicate fault never fired")
	}
}

// TestNetFaultDelay: delayed frames stay parked until Advance passes their
// due time, then arrive in due order.
func TestNetFaultDelay(t *testing.T) {
	plan := NetPlan{Seed: 3, Delay: 1.0, DelayBy: 10 * time.Millisecond}
	l, got := collect(plan)
	l.Send(0, []byte("a"))
	l.Send(2*time.Millisecond, []byte("b"))
	if len(*got) != 0 {
		t.Fatalf("delayed frames delivered early: %d", len(*got))
	}
	if l.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", l.Pending())
	}
	l.Advance(9 * time.Millisecond)
	if len(*got) != 0 {
		t.Fatalf("frame released before due time")
	}
	l.Advance(10 * time.Millisecond) // a due at 10ms, b due at 12ms
	if len(*got) != 1 || !bytes.Equal((*got)[0], []byte("a")) {
		t.Fatalf("after 10ms got %q, want [a]", *got)
	}
	l.Advance(12 * time.Millisecond)
	if len(*got) != 2 || !bytes.Equal((*got)[1], []byte("b")) {
		t.Fatalf("after 12ms got %q, want [a b]", *got)
	}
	if l.Delayed.Load() != 2 {
		t.Fatalf("Delayed = %d, want 2", l.Delayed.Load())
	}
}

// TestNetFaultReorder: a held frame is delivered after the next clean one.
func TestNetFaultReorder(t *testing.T) {
	// Seed chosen so the first draw reorders and the second does not; assert
	// on observed behavior rather than hardcoding which seed does what.
	for seed := uint64(0); seed < 64; seed++ {
		l, got := collect(NetPlan{Seed: seed, Reorder: 0.5})
		l.Send(0, []byte("first"))
		l.Send(0, []byte("second"))
		l.Flush()
		if l.Reordered.Load() == 1 && len(*got) == 2 &&
			bytes.Equal((*got)[0], []byte("second")) && bytes.Equal((*got)[1], []byte("first")) {
			return // observed a genuine inversion
		}
	}
	t.Fatal("no seed in [0,64) produced a first-frame reorder inversion")
}

// TestNetFaultCut: a one-way partition swallows everything until Heal, and
// only the cut direction is affected.
func TestNetFaultCut(t *testing.T) {
	l, got := collect(NetPlan{Seed: 1})
	l.Send(0, []byte("pre"))
	l.Cut()
	for i, f := range frames(10) {
		l.Send(time.Duration(i)*time.Millisecond, f)
	}
	if l.CutDropped.Load() != 10 {
		t.Fatalf("CutDropped = %d, want 10", l.CutDropped.Load())
	}
	l.Heal()
	l.Send(20*time.Millisecond, []byte("post"))
	if len(*got) != 2 || !bytes.Equal((*got)[0], []byte("pre")) || !bytes.Equal((*got)[1], []byte("post")) {
		t.Fatalf("got %q, want [pre post]", *got)
	}
}

// TestNetFaultFlush: Flush drains every parked frame exactly once.
func TestNetFaultFlush(t *testing.T) {
	plan := NetPlan{Seed: 11, Delay: 0.5, DelayBy: time.Hour, Reorder: 0.5}
	l, got := collect(plan)
	const n = 200
	for i, f := range frames(n) {
		l.Send(time.Duration(i)*time.Millisecond, f)
	}
	l.Flush()
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d after Flush", l.Pending())
	}
	if int64(len(*got)) != n+l.Duplicated.Load()-l.Dropped.Load() {
		t.Fatalf("delivered %d of %d after Flush (dup %d, drop %d)",
			len(*got), n, l.Duplicated.Load(), l.Dropped.Load())
	}
}
