package fairpolicer

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// snapVersion is the format version of FairPolicer snapshot blobs.
const snapVersion = 1

// SetRate implements enforcer.Reconfigurer: flow buckets, the shared main
// bucket and statistics survive the change. Token generation for the time
// already elapsed is settled at the old rate first (generateExpireCap at
// now), so admission across the change respects the piecewise bound; only
// time after the call accrues tokens at the new rate.
func (f *FairPolicer) SetRate(now time.Duration, rate units.Rate) error {
	if rate <= 0 {
		return fmt.Errorf("fairpolicer: non-positive rate %v", rate)
	}
	f.generateExpireCap(now) // settle elapsed time at the old rate
	f.cfg.Rate = rate
	return nil
}

// SetPolicy implements enforcer.Reconfigurer. FairPolicer's policy
// dimension is per-flow weights, so only single-level weighted (flat)
// policies translate: the policy's per-class weights become the per-bucket
// weights. Hierarchical or priority policies have no FairPolicer analogue
// and are rejected — which is itself one of the baseline's documented
// limitations. Nil restores the original equal-weight design. Token levels
// are untouched; the next allocation round distributes under the new
// weights.
func (f *FairPolicer) SetPolicy(now time.Duration, policy *sched.Policy) error {
	if policy == nil {
		f.generateExpireCap(now)
		f.cfg.Weights = nil
		return nil
	}
	if policy.NumClasses() != f.cfg.Flows {
		return fmt.Errorf("fairpolicer: policy covers %d classes but enforcer has %d flow buckets",
			policy.NumClasses(), f.cfg.Flows)
	}
	ws := policy.FlatWeighted()
	if ws == nil {
		return fmt.Errorf("fairpolicer: hierarchical policies are not expressible as per-flow weights")
	}
	f.generateExpireCap(now)
	f.cfg.Weights = ws
	return nil
}

// SnapshotState implements enforcer.Snapshotter.
//
// Layout: u8 version, bool started, i64 last (ns), f64 main, stats,
// u32 flow count, then per flow: f64 tokens, i64 lastSeen (ns), bool
// active, 4×i64 counters.
func (f *FairPolicer) SnapshotState() ([]byte, error) {
	var e enforcer.Enc
	e.U8(snapVersion)
	e.Bool(f.started)
	e.Dur(f.last)
	e.F64(f.main)
	e.Stats(f.stats)
	e.U32(uint32(len(f.flows)))
	for i := range f.flows {
		fb := &f.flows[i]
		e.F64(fb.tokens)
		e.Dur(fb.lastSeen)
		e.Bool(fb.active)
		e.I64(fb.acceptedPackets)
		e.I64(fb.acceptedBytes)
		e.I64(fb.droppedPackets)
		e.I64(fb.droppedBytes)
	}
	return e.Out(), nil
}

// RestoreState implements enforcer.Snapshotter. Token levels must be
// non-negative and their total must fit the configured bucket (the same
// invariant generateExpireCap maintains), so a forged blob cannot grant an
// over-budget token supply.
func (f *FairPolicer) RestoreState(data []byte) error {
	d := enforcer.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != snapVersion {
		d.Fail("fairpolicer: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	started := d.Bool()
	last := d.Dur()
	main := d.F64()
	if d.Err() == nil && main < 0 {
		d.Fail("fairpolicer: negative main bucket %v", main)
	}
	stats := d.Stats()
	if n := d.U32(); d.Err() == nil && int(n) != f.cfg.Flows {
		d.Fail("fairpolicer: snapshot has %d flow buckets, enforcer has %d", n, f.cfg.Flows)
	}
	if d.Err() != nil {
		return d.Err()
	}
	flows := make([]flowBucket, f.cfg.Flows)
	total := main
	for i := range flows {
		fb := &flows[i]
		fb.tokens = d.F64()
		fb.lastSeen = d.Dur()
		fb.active = d.Bool()
		fb.acceptedPackets = d.I64()
		fb.acceptedBytes = d.I64()
		fb.droppedPackets = d.I64()
		fb.droppedBytes = d.I64()
		if d.Err() == nil && (fb.tokens < 0 || fb.acceptedPackets < 0 || fb.acceptedBytes < 0 ||
			fb.droppedPackets < 0 || fb.droppedBytes < 0) {
			d.Fail("fairpolicer: invalid flow bucket %d in snapshot", i)
		}
		total += fb.tokens
	}
	// Tolerate a hair of float accumulation slack above B, nothing more.
	if d.Err() == nil && total > float64(f.cfg.Bucket)*(1+1e-9)+1 {
		d.Fail("fairpolicer: snapshot token total %v exceeds bucket %d", total, f.cfg.Bucket)
	}
	if err := d.Finish(); err != nil {
		return err
	}
	f.started = started
	f.last = last
	f.main = main
	f.stats = stats
	f.flows = flows
	return nil
}

var _ enforcer.Reconfigurer = (*FairPolicer)(nil)
var _ enforcer.Snapshotter = (*FairPolicer)(nil)
