// Package fairpolicer reimplements the FairPolicer baseline (Shan et al.,
// INFOCOM 2021 / ToN 2023) from its published description and the summary in
// §2.2 and §6 of the BC-PQP paper.
//
// FairPolicer augments a token-bucket policer with per-flow fairness: tokens
// generated at the enforced rate are distributed equally (or by weight, for
// the §6.3.2 variant) among the buckets of active flows, and each flow's
// bucket capacity is dynamically set to the number of tokens remaining in
// the shared main bucket — a dynamic-threshold rule analogous to shared
// buffer management. A packet passes iff its flow bucket holds enough
// tokens.
//
// The known shortcomings the paper evaluates are inherent in this design and
// reproduced here: all flow buckets get roughly the same capacity regardless
// of weight (breaking weighted sharing), large-RTT AIMD flows cannot keep
// their bucket active when the capacity is too small for their BDP²
// requirement (RTT unfairness), and token distribution work happens on every
// enqueue (higher per-packet cost than batched schemes).
package fairpolicer

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/units"
)

// Config configures a FairPolicer for one traffic aggregate.
type Config struct {
	// Rate is the aggregate rate to enforce.
	Rate units.Rate
	// Bucket is the total token capacity B in bytes, shared between the
	// main bucket and per-flow buckets. The paper sizes it as
	// tbf.PlusBucket (max of New Reno and Cubic requirements).
	Bucket int64
	// Flows is the number of flow buckets; flows hash into them like
	// phantom queues (the original uses exact per-flow state; hashing to
	// a fixed set matches how both systems are deployed at scale).
	Flows int
	// Weights optionally assigns per-bucket weights for the weighted
	// variant of §6.3.2. Nil means equal weights (the original design).
	Weights []float64
	// IdleTimeout is how long a flow bucket stays "active" after its last
	// arrival; inactive flows stop receiving tokens. Zero selects 100 ms.
	IdleTimeout time.Duration
}

// FairPolicer enforces an aggregate rate with approximate per-flow fairness.
// It is not safe for concurrent use.
type FairPolicer struct {
	cfg   Config
	stats enforcer.Stats

	main  float64 // unallocated tokens in the shared main bucket
	flows []flowBucket

	last    time.Duration
	started bool
}

type flowBucket struct {
	tokens   float64
	lastSeen time.Duration
	active   bool

	acceptedPackets int64
	acceptedBytes   int64
	droppedPackets  int64
	droppedBytes    int64
}

// New validates cfg and returns a FairPolicer.
func New(cfg Config) (*FairPolicer, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("fairpolicer: non-positive rate %v", cfg.Rate)
	}
	if cfg.Bucket < units.MSS {
		return nil, fmt.Errorf("fairpolicer: bucket %d below one MSS", cfg.Bucket)
	}
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("fairpolicer: need at least one flow bucket, got %d", cfg.Flows)
	}
	if cfg.Weights != nil && len(cfg.Weights) != cfg.Flows {
		return nil, fmt.Errorf("fairpolicer: %d weights for %d flows", len(cfg.Weights), cfg.Flows)
	}
	for _, w := range cfg.Weights {
		if w <= 0 {
			return nil, fmt.Errorf("fairpolicer: non-positive weight %v", w)
		}
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 100 * time.Millisecond
	}
	return &FairPolicer{
		cfg:   cfg,
		main:  float64(cfg.Bucket),
		flows: make([]flowBucket, cfg.Flows),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *FairPolicer {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Submit implements enforcer.Enforcer.
func (f *FairPolicer) Submit(now time.Duration, pkt packet.Packet) enforcer.Verdict {
	idx := pkt.ClassIn(f.cfg.Flows)
	fb := &f.flows[idx]
	fb.lastSeen = now
	fb.active = true

	// Token generation and distribution happen on every enqueue — the
	// per-packet cost the paper's efficiency comparison (Fig 5) charges
	// FairPolicer for.
	f.distribute(now)

	s := float64(pkt.Size)
	if fb.tokens >= s {
		fb.tokens -= s
		fb.acceptedPackets++
		fb.acceptedBytes += int64(pkt.Size)
		f.stats.Accept(pkt.Size)
		return enforcer.Transmit
	}
	fb.droppedPackets++
	fb.droppedBytes += int64(pkt.Size)
	f.stats.Reject(pkt.Size)
	return enforcer.Drop
}

// distribute generates tokens for the elapsed time and allocates them (plus
// any unallocated main-bucket tokens) to active flow buckets in proportion
// to their weights, capping each flow bucket at the dynamic threshold equal
// to the main bucket's remaining tokens. Tokens that do not fit return to
// the main bucket; the total never exceeds B.
func (f *FairPolicer) distribute(now time.Duration) {
	f.generateExpireCap(now)
	f.allocate()
}

// generateExpireCap is the time-driven half of token distribution: token
// generation for the elapsed virtual time, idle-flow expiry, and the
// total-tokens-at-B cap. At a fixed now every part is idempotent (no time
// elapses, expiry conditions cannot newly trigger, and the token total only
// shrinks), so the burst path runs it once per burst.
func (f *FairPolicer) generateExpireCap(now time.Duration) {
	if !f.started {
		f.started = true
		f.last = now
	}
	if now > f.last {
		f.main += f.cfg.Rate.Bytes(now - f.last)
		f.last = now
	}

	// Expire idle flows, returning their tokens to the main bucket so a
	// departed flow's share is reusable.
	for i := range f.flows {
		fb := &f.flows[i]
		if fb.active && now-fb.lastSeen > f.cfg.IdleTimeout {
			fb.active = false
			f.main += fb.tokens
			fb.tokens = 0
		}
	}

	// Cap total tokens at B.
	total := f.main
	for i := range f.flows {
		total += f.flows[i].tokens
	}
	if excess := total - float64(f.cfg.Bucket); excess > 0 {
		if f.main >= excess {
			f.main -= excess
		} else {
			f.main = 0
		}
	}
}

// allocate distributes the main bucket's unallocated tokens to active flow
// buckets by weight under the dynamic threshold. Unlike generateExpireCap it
// is NOT idempotent (leftover tokens re-distribute each round, and newly
// activated flows join the next round), so both the per-packet and the
// burst path run it per packet — this is the per-enqueue distribution cost
// the paper charges FairPolicer for.
func (f *FairPolicer) allocate() {
	var wsum float64
	for i := range f.flows {
		if f.flows[i].active {
			wsum += f.weight(i)
		}
	}
	if wsum == 0 || f.main <= 0 {
		return
	}

	// Dynamic threshold: each flow bucket may hold at most as many
	// tokens as remain unallocated in the main bucket (computed before
	// this round's allocation, per the published description).
	threshold := f.main
	share := f.main
	var leftover float64
	for i := range f.flows {
		fb := &f.flows[i]
		if !fb.active {
			continue
		}
		grant := share * f.weight(i) / wsum
		room := threshold - fb.tokens
		if room < 0 {
			room = 0
		}
		if grant > room {
			leftover += grant - room
			grant = room
		}
		fb.tokens += grant
	}
	f.main = leftover
}

func (f *FairPolicer) weight(i int) float64 {
	if f.cfg.Weights == nil {
		return 1
	}
	return f.cfg.Weights[i]
}

// SubmitBatch implements enforcer.BatchSubmitter. The time-driven token
// work (generation, idle expiry, the B cap — each an O(flows) pass) runs
// once per burst instead of once per packet; the allocation round stays
// per-packet because it is not idempotent (leftover tokens re-distribute,
// and a flow activated mid-burst joins the next round), exactly as in the
// per-packet path. Verdicts and statistics are byte-identical to calling
// Submit for each packet in order at the same now.
func (f *FairPolicer) SubmitBatch(now time.Duration, pkts []packet.Packet, verdicts []enforcer.Verdict) {
	verdicts = verdicts[:len(pkts)]
	for i := range pkts {
		pkt := &pkts[i]
		idx := pkt.ClassIn(f.cfg.Flows)
		fb := &f.flows[idx]
		fb.lastSeen = now
		fb.active = true

		if i == 0 {
			f.generateExpireCap(now)
		}
		f.allocate()

		s := float64(pkt.Size)
		if fb.tokens >= s {
			fb.tokens -= s
			fb.acceptedPackets++
			fb.acceptedBytes += int64(pkt.Size)
			f.stats.Accept(pkt.Size)
			verdicts[i] = enforcer.Transmit
		} else {
			fb.droppedPackets++
			fb.droppedBytes += int64(pkt.Size)
			f.stats.Reject(pkt.Size)
			verdicts[i] = enforcer.Drop
		}
	}
}

// FlowTokens returns the token level of flow bucket i.
func (f *FairPolicer) FlowTokens(i int) float64 { return f.flows[i].tokens }

// MainTokens returns the unallocated tokens in the main bucket.
func (f *FairPolicer) MainTokens() float64 { return f.main }

// FlowStats returns accepted/dropped counters for flow bucket i.
func (f *FairPolicer) FlowStats(i int) (acceptedPkts, acceptedBytes, droppedPkts, droppedBytes int64) {
	fb := &f.flows[i]
	return fb.acceptedPackets, fb.acceptedBytes, fb.droppedPackets, fb.droppedBytes
}

// EnforcerStats implements enforcer.StatsReader.
func (f *FairPolicer) EnforcerStats() enforcer.Stats { return f.stats }

var _ enforcer.Enforcer = (*FairPolicer)(nil)
var _ enforcer.BatchSubmitter = (*FairPolicer)(nil)
var _ enforcer.StatsReader = (*FairPolicer)(nil)
