package fairpolicer

import (
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/units"
)

func pkt(flow, size int) packet.Packet {
	return packet.Packet{Key: packet.FlowKey{SrcPort: uint16(flow + 1)}, Class: flow, Size: size}
}

func TestValidation(t *testing.T) {
	base := Config{Rate: units.Mbps, Bucket: 100 * units.MSS, Flows: 4}
	if _, err := New(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := base
	bad.Rate = 0
	if _, err := New(bad); err == nil {
		t.Error("zero rate accepted")
	}
	bad = base
	bad.Bucket = 10
	if _, err := New(bad); err == nil {
		t.Error("tiny bucket accepted")
	}
	bad = base
	bad.Flows = 0
	if _, err := New(bad); err == nil {
		t.Error("zero flows accepted")
	}
	bad = base
	bad.Weights = []float64{1, 2}
	if _, err := New(bad); err == nil {
		t.Error("weight/flow mismatch accepted")
	}
	bad = base
	bad.Weights = []float64{1, 2, -1, 1}
	if _, err := New(bad); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestLongTermRate(t *testing.T) {
	rate := 8 * units.Mbps
	f := MustNew(Config{Rate: rate, Bucket: 50 * units.MSS, Flows: 2})
	now := time.Duration(0)
	var accepted int64
	// Two flows each offering 2× the total rate.
	for i := 0; i < 20000; i++ {
		now += 375 * time.Microsecond
		if f.Submit(now, pkt(i%2, units.MSS)) == enforcer.Transmit {
			accepted += units.MSS
		}
	}
	ratio := float64(accepted) / rate.Bytes(now)
	if ratio < 0.95 || ratio > 1.1 {
		t.Errorf("long-term accepted ratio %.3f, want ≈1", ratio)
	}
}

func TestFairSplitBetweenAggressiveFlows(t *testing.T) {
	rate := 8 * units.Mbps
	f := MustNew(Config{Rate: rate, Bucket: 50 * units.MSS, Flows: 2})
	now := time.Duration(0)
	// Flow 0 offers 4×, flow 1 offers 1× its fair share; with equal
	// token allocation flow 1 should still get close to its share.
	var acc [2]int64
	for i := 0; i < 40000; i++ {
		now += 250 * time.Microsecond
		// Flow 0 sends every step (6 Mbps×8 = 48 Mbps offered),
		// flow 1 every 5th step.
		if f.Submit(now, pkt(0, units.MSS)) == enforcer.Transmit {
			acc[0] += units.MSS
		}
		if i%5 == 0 {
			if f.Submit(now, pkt(1, units.MSS)) == enforcer.Transmit {
				acc[1] += units.MSS
			}
		}
	}
	share1 := float64(acc[1]) / float64(acc[0]+acc[1])
	if share1 < 0.35 {
		t.Errorf("meek flow got %.2f of the rate, want ≈0.5 (token distribution broken)", share1)
	}
}

func TestUnfairWithoutDistribution(t *testing.T) {
	// Sanity: a plain bucket (1 flow bucket) lets the aggressive flow
	// dominate; this is the contrast FairPolicer exists to fix.
	rate := 8 * units.Mbps
	f := MustNew(Config{Rate: rate, Bucket: 50 * units.MSS, Flows: 1})
	now := time.Duration(0)
	var acc [2]int64
	for i := 0; i < 40000; i++ {
		now += 250 * time.Microsecond
		if f.Submit(now, pkt(0, units.MSS)) == enforcer.Transmit {
			acc[0] += units.MSS
		}
		if i%5 == 0 {
			if f.Submit(now, pkt(0, units.MSS)) == enforcer.Transmit {
				acc[1] += units.MSS
			}
		}
	}
	// Both flows hash into one bucket; the 5× sender gets ~5× more.
	if acc[0] < 3*acc[1] {
		t.Errorf("shared bucket did not favor the aggressive sender: %v", acc)
	}
}

// TestWeightedAllocationFails reproduces the §6.3.2 finding: even with
// weighted token allocation, FairPolicer's dynamic-threshold rule gives
// every flow approximately the same bucket capacity, so backlogged flows
// end up with near-equal throughput despite a 3:1 weight configuration.
// ("It is not trivial to extend FP's bucket sizing algorithm to support
// arbitrary rate-sharing policies.")
func TestWeightedAllocationFails(t *testing.T) {
	rate := 8 * units.Mbps
	f := MustNew(Config{
		Rate: rate, Bucket: 50 * units.MSS, Flows: 2,
		Weights: []float64{3, 1},
	})
	now := time.Duration(0)
	var acc [2]int64
	// Both flows backlogged at far above their shares.
	for i := 0; i < 40000; i++ {
		now += 250 * time.Microsecond
		for fl := 0; fl < 2; fl++ {
			if f.Submit(now, pkt(fl, units.MSS)) == enforcer.Transmit {
				acc[fl] += units.MSS
			}
		}
	}
	ratio := float64(acc[0]) / float64(acc[1])
	if ratio > 1.5 {
		t.Errorf("weighted allocation ratio %.2f; FP's dynamic threshold is expected "+
			"to blunt the 3:1 split toward ≈1 (the paper's Fig 6b failure)", ratio)
	}
	if ratio < 0.67 {
		t.Errorf("weighted allocation inverted: ratio %.2f", ratio)
	}
}

func TestIdleFlowTokensReturned(t *testing.T) {
	rate := 8 * units.Mbps
	f := MustNew(Config{Rate: rate, Bucket: 50 * units.MSS, Flows: 2,
		IdleTimeout: 50 * time.Millisecond})
	now := time.Millisecond
	// Flow 1 appears once, then goes idle.
	f.Submit(now, pkt(1, units.MSS))
	// Flow 0 keeps sending; after flow 1 expires, flow 0 should receive
	// the full token rate again.
	var acceptedLate int64
	for i := 0; i < 8000; i++ {
		now += 250 * time.Microsecond
		v := f.Submit(now, pkt(0, units.MSS))
		if i > 4000 && v == enforcer.Transmit {
			acceptedLate += units.MSS
		}
	}
	// Last second of the run: 4000 steps ≈ 1 s ≈ 1 MB at full rate.
	ratio := float64(acceptedLate) / rate.Bytes(time.Second)
	if ratio < 0.9 {
		t.Errorf("flow 0 got %.2f of rate after competitor left, want ≈1", ratio)
	}
}

func TestTotalTokensBounded(t *testing.T) {
	rate := 8 * units.Mbps
	bucket := int64(20 * units.MSS)
	f := MustNew(Config{Rate: rate, Bucket: bucket, Flows: 3})
	now := time.Millisecond
	for i := 0; i < 1000; i++ {
		now += time.Duration(i%50) * time.Millisecond
		f.Submit(now, pkt(i%3, units.MSS))
		total := f.MainTokens()
		for fl := 0; fl < 3; fl++ {
			total += f.FlowTokens(fl)
		}
		if total > float64(bucket)+1 {
			t.Fatalf("total tokens %v exceed bucket %d", total, bucket)
		}
	}
}

func TestFlowStats(t *testing.T) {
	f := MustNew(Config{Rate: units.Mbps, Bucket: 2 * units.MSS, Flows: 2})
	now := time.Millisecond
	f.Submit(now, pkt(0, units.MSS))
	f.Submit(now, pkt(0, 10*units.MSS)) // too big, dropped
	ap, ab, dp, db := f.FlowStats(0)
	if ap != 1 || ab != units.MSS || dp != 1 || db != 10*units.MSS {
		t.Errorf("flow stats = %d/%d/%d/%d", ap, ab, dp, db)
	}
}
