package tcp

import (
	"testing"
	"time"

	"bcpqp/internal/cc"
	"bcpqp/internal/packet"
	"bcpqp/internal/sim"
	"bcpqp/internal/units"
)

// fixedWindowCC holds a constant congestion window so recovery tests can
// construct precise loss patterns without AIMD dynamics interfering.
// With halve set, it halves on loss like a real controller.
type fixedWindowCC struct {
	cwnd   int64
	losses int
	halve  bool
}

func (f *fixedWindowCC) Name() string { return "fixed" }
func (f *fixedWindowCC) OnAck(cc.Ack) {}
func (f *fixedWindowCC) OnLoss(time.Duration) {
	f.losses++
	if f.halve {
		f.cwnd /= 2
		if f.cwnd < 2*units.MSS {
			f.cwnd = 2 * units.MSS
		}
	}
}
func (f *fixedWindowCC) OnECN(now time.Duration)        { f.OnLoss(now) }
func (f *fixedWindowCC) OnTimeout(now time.Duration)    { f.OnLoss(now) }
func (f *fixedWindowCC) CongestionWindow() int64        { return f.cwnd }
func (f *fixedWindowCC) PacingRate() (units.Rate, bool) { return 0, false }

// fixedRig builds a flow with a fixed window over a programmable path.
func fixedRig(t *testing.T, windowSegs int64, size int64, drop func(arrival int) bool) (*sim.Loop, *Flow, *fixedWindowCC) {
	t.Helper()
	loop := sim.NewLoop()
	ctrl := &fixedWindowCC{cwnd: windowSegs * units.MSS}
	var flow *Flow
	arrivals := 0
	rtt := 20 * time.Millisecond
	path := func(now time.Duration, pkt packet.Packet) {
		idx := arrivals
		arrivals++
		if drop != nil && drop(idx) {
			return
		}
		loop.At(now+rtt/2, func() { flow.Deliver(now+rtt/2, pkt) })
	}
	flow = MustNewFlow(Config{
		Loop: loop,
		Key:  packet.FlowKey{SrcPort: 9},
		CC:   ctrl,
		RTT:  rtt,
		Path: path,
		Size: size,
	})
	loop.At(time.Millisecond, flow.Start)
	return loop, flow, ctrl
}

// TestOneLossSignalPerWindow: many drops within one window of data must
// produce exactly one congestion signal (fast-recovery semantics).
func TestOneLossSignalPerWindow(t *testing.T) {
	// Window of 20; drop arrivals 5..9 (five losses in one flight).
	loop, flow, ctrl := fixedRig(t, 20, 40*units.MSS, func(i int) bool {
		return i >= 5 && i < 10
	})
	loop.Run(5 * time.Second)
	if !flow.Finished() {
		t.Fatal("flow incomplete")
	}
	if ctrl.losses != 1 {
		t.Errorf("congestion signals = %d, want 1 for one window of losses", ctrl.losses)
	}
}

// TestRACKMarksWholeTail: dropping a run that includes the very last
// segments must be recovered promptly by TLP + RACK, not one-per-RTO.
func TestRACKMarksWholeTail(t *testing.T) {
	const segs = 60
	loop, flow, _ := fixedRig(t, 30, segs*units.MSS, func(i int) bool {
		return i >= 40 && i < 55 // 15 consecutive, incl. window tail
	})
	loop.Run(10 * time.Second)
	if !flow.Finished() {
		t.Fatal("flow incomplete")
	}
	// Recovery via per-RTO crawling would need ≥15 timeouts; RACK after
	// a TLP probe should mark the whole run at once.
	if flow.Timeouts > 3 {
		t.Errorf("timeouts = %d; tail run should recover via TLP+RACK", flow.Timeouts)
	}
	if flow.RtxSegments < 15 {
		t.Errorf("retransmitted %d, want ≥15 (every dropped segment)", flow.RtxSegments)
	}
}

// TestPRRLimitsRecoveryBurst: after a mass drop, the sender must not blast
// the full window again while holes remain; transmissions during recovery
// are clocked by deliveries.
func TestPRRLimitsRecoveryBurst(t *testing.T) {
	var sends []time.Duration
	loop := sim.NewLoop()
	ctrl := &fixedWindowCC{cwnd: 100 * units.MSS, halve: true}
	var flow *Flow
	arrivals := 0
	rtt := 20 * time.Millisecond
	path := func(now time.Duration, pkt packet.Packet) {
		idx := arrivals
		arrivals++
		sends = append(sends, now)
		if idx >= 20 && idx < 80 { // mass drop of 60 segments
			return
		}
		loop.At(now+rtt/2, func() { flow.Deliver(now+rtt/2, pkt) })
	}
	flow = MustNewFlow(Config{
		Loop: loop,
		Key:  packet.FlowKey{SrcPort: 9},
		CC:   ctrl,
		RTT:  rtt,
		Path: path,
		Size: 300 * units.MSS,
	})
	loop.At(time.Millisecond, flow.Start)
	loop.Run(10 * time.Second)
	if !flow.Finished() {
		t.Fatal("flow incomplete")
	}
	// Inspect the send pattern after loss detection: in any 1 ms bucket
	// past the initial (pre-feedback) window burst, sends must stay far
	// below the original 100-segment window. Without PRR the sender
	// would re-blast pipe-to-cwnd the moment 60 segments are marked
	// lost; with PRR sends are clocked one-per-delivery during
	// recovery, and the post-recovery refill is bounded by the halved
	// window.
	counts := map[int64]int{}
	for _, s := range sends {
		counts[int64(s/time.Millisecond)]++
	}
	worst := 0
	for ms, c := range counts {
		if ms < 5 { // skip the initial window burst before any feedback
			continue
		}
		if c > worst {
			worst = c
		}
	}
	if worst > 55 {
		t.Errorf("burst of %d sends in one ms during/after recovery; PRR should clock sends", worst)
	}
}

// TestTLPFiresOnAckSilence: with everything outstanding dropped, the
// tail-loss probe fires before the RTO.
func TestTLPFiresOnAckSilence(t *testing.T) {
	// Let everything through except the final three segments — a pure
	// tail loss with no later arrivals to SACK, so only a probe (or an
	// RTO) can discover it.
	loop, flow, _ := fixedRig(t, 10, 20*units.MSS, func(i int) bool {
		return i >= 17 && i < 20
	})
	loop.Run(5 * time.Second)
	if !flow.Finished() {
		t.Fatal("flow incomplete")
	}
	if flow.TLPProbes == 0 {
		t.Error("no TLP probes despite a pure tail loss")
	}
}

// TestNoSpuriousRetransmissionsOnCleanPath: the recovery machinery must
// stay quiet when nothing is lost, even with a long transfer.
func TestNoSpuriousRetransmissionsOnCleanPath(t *testing.T) {
	loop, flow, ctrl := fixedRig(t, 40, 2000*units.MSS, nil)
	loop.Run(60 * time.Second)
	if !flow.Finished() {
		t.Fatal("flow incomplete")
	}
	if flow.RtxSegments != 0 || flow.TLPProbes != 0 || flow.Timeouts != 0 {
		t.Errorf("spurious recovery on a clean path: rtx=%d tlp=%d rto=%d",
			flow.RtxSegments, flow.TLPProbes, flow.Timeouts)
	}
	if ctrl.losses != 0 {
		t.Errorf("spurious congestion signals: %d", ctrl.losses)
	}
}

// TestReorderingToleratedByDupThresh: swapping adjacent segments must not
// trigger loss recovery (the dupThresh=3 guard).
func TestReorderingToleratedByDupThresh(t *testing.T) {
	loop := sim.NewLoop()
	ctrl := &fixedWindowCC{cwnd: 20 * units.MSS}
	var flow *Flow
	rtt := 20 * time.Millisecond
	arrivals := 0
	var held *packet.Packet
	path := func(now time.Duration, pkt packet.Packet) {
		idx := arrivals
		arrivals++
		// Hold every 10th packet and release it after the next one
		// (swap of adjacent segments).
		if idx%10 == 5 && held == nil {
			p := pkt
			held = &p
			return
		}
		deliver := func(p packet.Packet) {
			loop.At(now+rtt/2, func() { flow.Deliver(now+rtt/2, p) })
		}
		deliver(pkt)
		if held != nil {
			deliver(*held)
			held = nil
		}
	}
	flow = MustNewFlow(Config{
		Loop: loop,
		Key:  packet.FlowKey{SrcPort: 9},
		CC:   ctrl,
		RTT:  rtt,
		Path: path,
		Size: 200 * units.MSS,
	})
	loop.At(time.Millisecond, flow.Start)
	loop.Run(30 * time.Second)
	if !flow.Finished() {
		t.Fatal("flow incomplete")
	}
	if ctrl.losses != 0 {
		t.Errorf("adjacent reordering triggered %d loss signals", ctrl.losses)
	}
}

// TestAddDataOnBackloggedIsNoop and other small API edges.
func TestAddDataEdges(t *testing.T) {
	loop, flow, _ := fixedRig(t, 10, 0, nil) // backlogged
	flow.AddData(1000)                       // no-op on backlogged flows
	loop.Run(100 * time.Millisecond)
	if flow.Finished() {
		t.Error("backlogged flow finished")
	}

	loop2, flow2, _ := fixedRig(t, 10, 10*units.MSS, nil)
	flow2.AddData(-5) // ignored
	loop2.Run(5 * time.Second)
	if !flow2.Finished() {
		t.Error("finite flow incomplete")
	}
	if flow2.AckedBytes() != 10*units.MSS {
		t.Errorf("acked %d, want %d", flow2.AckedBytes(), 10*units.MSS)
	}
}

// TestControllerAccessor covers the inspection hook used by experiments.
func TestControllerAccessor(t *testing.T) {
	_, flow, ctrl := fixedRig(t, 10, 10*units.MSS, nil)
	if flow.Controller() != cc.Controller(ctrl) {
		t.Error("Controller() does not return the configured controller")
	}
}

// TestDebugStateConsistency: the pipe estimate must equal an independent
// scoreboard recount at arbitrary points under loss.
func TestDebugStateConsistency(t *testing.T) {
	loop, flow, _ := fixedRig(t, 30, 500*units.MSS, func(i int) bool {
		return i%7 == 3
	})
	for i := 0; i < 50; i++ {
		loop.Run(time.Duration(i+1) * 100 * time.Millisecond)
		pipe, recount, _, _, _ := flow.DebugState()
		if pipe != recount {
			t.Fatalf("t=%v: pipe=%d recount=%d", loop.Now(), pipe, recount)
		}
	}
}
