package tcp

import (
	"testing"
	"time"

	"bcpqp/internal/cc"
	"bcpqp/internal/netem"
	"bcpqp/internal/packet"
	"bcpqp/internal/sim"
	"bcpqp/internal/units"
)

// rig wires a flow over a configurable path on a fresh loop.
type rig struct {
	loop *sim.Loop
	flow *Flow
}

// lossyPath drops the packets whose (0-based) arrival index is in drop.
func newRig(t *testing.T, ccName string, size int64, rtt time.Duration, drop map[int]bool) *rig {
	t.Helper()
	loop := sim.NewLoop()
	factory, ok := cc.NewByName(ccName)
	if !ok {
		t.Fatalf("unknown cc %q", ccName)
	}
	r := &rig{loop: loop}
	arrivals := 0
	var path netem.Forward = func(now time.Duration, pkt packet.Packet) {
		idx := arrivals
		arrivals++
		if drop[idx] {
			return
		}
		loop.At(now+rtt/2, func() { r.flow.Deliver(now+rtt/2, pkt) })
	}
	flow, err := NewFlow(Config{
		Loop: loop,
		Key:  packet.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 80, Proto: 6},
		CC:   factory(),
		RTT:  rtt,
		Path: path,
		Size: size,
	})
	if err != nil {
		t.Fatalf("NewFlow: %v", err)
	}
	r.flow = flow
	loop.At(time.Millisecond, flow.Start)
	return r
}

func TestValidation(t *testing.T) {
	loop := sim.NewLoop()
	factory, _ := cc.NewByName("reno")
	path := func(time.Duration, packet.Packet) {}
	valid := Config{Loop: loop, CC: factory(), RTT: time.Millisecond, Path: path}
	if _, err := NewFlow(valid); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"nil loop": func(c *Config) { c.Loop = nil },
		"nil cc":   func(c *Config) { c.CC = nil },
		"zero rtt": func(c *Config) { c.RTT = 0 },
		"nil path": func(c *Config) { c.Path = nil },
	} {
		cfg := valid
		mutate(&cfg)
		if _, err := NewFlow(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLosslessTransferCompletes(t *testing.T) {
	const size = 500 * 1500
	r := newRig(t, "reno", size, 20*time.Millisecond, nil)
	var completedAt time.Duration
	r.flow.cfg.OnComplete = func(now time.Duration) { completedAt = now }
	r.loop.Run(30 * time.Second)
	if !r.flow.Finished() {
		t.Fatal("flow never completed")
	}
	if completedAt == 0 {
		t.Fatal("OnComplete not invoked")
	}
	if r.flow.RtxSegments != 0 {
		t.Errorf("lossless path caused %d retransmissions", r.flow.RtxSegments)
	}
	if r.flow.AckedBytes() < size {
		t.Errorf("acked %d < size %d", r.flow.AckedBytes(), size)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	// In pure slow start over a clean path, the transfer of N segments
	// takes ~log2(N/IW) RTTs.
	const segs = 640
	r := newRig(t, "reno", segs*1500, 100*time.Millisecond, nil)
	var completedAt time.Duration
	r.flow.cfg.OnComplete = func(now time.Duration) { completedAt = now }
	r.loop.Run(30 * time.Second)
	// IW=10: rounds 10+20+40+80+160+320 ≥ 630 → ~6-7 RTTs ≈ 700 ms.
	if completedAt > 1200*time.Millisecond {
		t.Errorf("640 segments took %v; slow start is not doubling", completedAt)
	}
}

func TestSingleLossFastRetransmit(t *testing.T) {
	// Drop the 15th wire arrival once; recovery must use fast
	// retransmit (no RTO) and complete promptly.
	r := newRig(t, "reno", 300*1500, 20*time.Millisecond, map[int]bool{15: true})
	r.loop.Run(30 * time.Second)
	if !r.flow.Finished() {
		t.Fatal("flow never completed")
	}
	if r.flow.RtxSegments == 0 {
		t.Error("no retransmission despite a drop")
	}
	if r.flow.Timeouts != 0 {
		t.Errorf("single loss caused %d timeouts; SACK recovery broken", r.flow.Timeouts)
	}
}

func TestBurstLossRecovers(t *testing.T) {
	// Drop 30 consecutive arrivals mid-flow.
	drop := map[int]bool{}
	for i := 40; i < 70; i++ {
		drop[i] = true
	}
	r := newRig(t, "reno", 500*1500, 20*time.Millisecond, drop)
	r.loop.Run(60 * time.Second)
	if !r.flow.Finished() {
		t.Fatalf("flow never completed after burst loss (rtx=%d timeouts=%d)",
			r.flow.RtxSegments, r.flow.Timeouts)
	}
}

func TestTailLossRecovers(t *testing.T) {
	// Drop the last 5 arrivals of a 50-segment flow: no later SACKs
	// exist, so only TLP/RACK (or RTO) can recover.
	drop := map[int]bool{45: true, 46: true, 47: true, 48: true, 49: true}
	r := newRig(t, "reno", 50*1500, 20*time.Millisecond, drop)
	r.loop.Run(60 * time.Second)
	if !r.flow.Finished() {
		t.Fatal("tail loss never recovered")
	}
	if r.flow.TLPProbes == 0 && r.flow.Timeouts == 0 {
		t.Error("tail loss recovered without TLP or RTO?")
	}
}

func TestEverythingDroppedThenRecovered(t *testing.T) {
	// The first 12 arrivals (the whole initial window plus the first
	// timeout retransmissions) are dropped — an empty token bucket at
	// connection start — then the path heals. Recovery must punch
	// through via backed-off RTOs.
	drop := map[int]bool{}
	for i := 0; i < 12; i++ {
		drop[i] = true
	}
	r := newRig(t, "reno", 100*1500, 20*time.Millisecond, drop)
	r.loop.Run(120 * time.Second)
	if !r.flow.Finished() {
		t.Fatalf("flow never completed (timeouts=%d)", r.flow.Timeouts)
	}
	if r.flow.Timeouts == 0 {
		t.Error("total blackout must trigger at least one RTO")
	}
}

func TestBackloggedNeverFinishes(t *testing.T) {
	// Periodic drops keep the window bounded; an infinitely fast
	// lossless path would let slow start double without limit.
	drop := map[int]bool{}
	for i := 100; i < 1_000_000; i += 100 {
		drop[i] = true
	}
	r := newRig(t, "reno", 0, 20*time.Millisecond, drop)
	r.loop.Run(5 * time.Second)
	if r.flow.Finished() {
		t.Error("backlogged flow reported finished")
	}
	if r.flow.SentSegments < 1000 {
		t.Errorf("backlogged flow sent only %d segments in 5s", r.flow.SentSegments)
	}
}

func TestAddDataResumes(t *testing.T) {
	r := newRig(t, "reno", 10*1500, 20*time.Millisecond, nil)
	completions := 0
	r.flow.cfg.OnComplete = func(now time.Duration) {
		completions++
		if completions == 1 {
			r.flow.AddData(10 * 1500)
		}
	}
	r.loop.Run(10 * time.Second)
	if completions != 2 {
		t.Errorf("completions = %d, want 2 (AddData must resume)", completions)
	}
	if r.flow.AckedBytes() != 20*1500 {
		t.Errorf("acked %d, want %d", r.flow.AckedBytes(), 20*1500)
	}
}

func TestOnAckedMonotonic(t *testing.T) {
	r := newRig(t, "cubic", 200*1500, 10*time.Millisecond, map[int]bool{20: true, 21: true})
	var last int64 = -1
	r.flow.cfg.OnAcked = func(now time.Duration, total int64) {
		if total <= last {
			t.Fatalf("OnAcked went backwards: %d after %d", total, last)
		}
		last = total
	}
	r.loop.Run(30 * time.Second)
	if last != 200*1500 {
		t.Errorf("final OnAcked total = %d, want %d", last, 200*1500)
	}
}

func TestOnDeliverCountsWireBytes(t *testing.T) {
	r := newRig(t, "reno", 100*1500, 10*time.Millisecond, nil)
	var delivered int64
	r.flow.cfg.OnDeliver = func(now time.Duration, b int) { delivered += int64(b) }
	r.loop.Run(10 * time.Second)
	if delivered != 100*1500 {
		t.Errorf("OnDeliver counted %d, want %d (lossless)", delivered, 100*1500)
	}
}

func TestBBRPacesSmoothly(t *testing.T) {
	loop := sim.NewLoop()
	factory, _ := cc.NewByName("bbr")
	// Path with a real 10 Mbps bottleneck so BBR has something to learn.
	var flow *Flow
	deliver := func(now time.Duration, pkt packet.Packet) {
		loop.At(now+10*time.Millisecond, func() { flow.Deliver(now+10*time.Millisecond, pkt) })
	}
	bn := netem.NewBottleneck(loop, 10*units.Mbps, 64*1500, deliver)
	var arrivalTimes []time.Duration
	path := func(now time.Duration, pkt packet.Packet) {
		arrivalTimes = append(arrivalTimes, now)
		bn.Forward(now, pkt)
	}
	flow = MustNewFlow(Config{
		Loop: loop,
		Key:  packet.FlowKey{SrcPort: 1},
		CC:   factory(),
		RTT:  20 * time.Millisecond,
		Path: path,
	})
	loop.At(time.Millisecond, flow.Start)
	loop.Run(5 * time.Second)

	// After convergence the steady send rate should be ≈ bottleneck.
	n := len(arrivalTimes)
	if n < 100 {
		t.Fatalf("only %d sends", n)
	}
	tail := arrivalTimes[n-500:]
	rate := float64(499*1500*8) / (tail[499] - tail[0]).Seconds() / 1e6
	if rate < 8 || rate > 13 {
		t.Errorf("BBR steady send rate %.1f Mbps, want ≈10", rate)
	}
}

func TestSegmentsAreMSS(t *testing.T) {
	r := newRig(t, "reno", 10*1500, 10*time.Millisecond, nil)
	sizes := map[int]bool{}
	orig := r.flow.cfg.Path
	r.flow.cfg.Path = func(now time.Duration, pkt packet.Packet) {
		sizes[pkt.Size] = true
		orig(now, pkt)
	}
	r.loop.Run(5 * time.Second)
	if len(sizes) != 1 || !sizes[units.MSS] {
		t.Errorf("segment sizes %v, want only MSS", sizes)
	}
}

func TestRingGrowth(t *testing.T) {
	var rg ring
	// Insert far more than the initial capacity with holes.
	for s := int64(0); s < 5000; s += 2 {
		rg.put(s, segState{sent: true, sentAt: time.Duration(s)})
	}
	for s := int64(0); s < 5000; s += 2 {
		st, ok := rg.get(s)
		if !ok || st.sentAt != time.Duration(s) {
			t.Fatalf("lost record %d after growth", s)
		}
	}
	if _, ok := rg.get(1); ok {
		t.Error("hole reported present")
	}
	// Clearing advances the base.
	for s := int64(0); s < 1000; s++ {
		rg.clear(s)
	}
	if _, ok := rg.get(998); ok {
		t.Error("cleared record still present")
	}
	if st, ok := rg.get(1000); !ok || st.sentAt != 1000 {
		t.Error("record after cleared prefix lost")
	}
}

func TestRTOBackoffBounded(t *testing.T) {
	// Total blackout forever: timeouts must back off but keep firing.
	loop := sim.NewLoop()
	factory, _ := cc.NewByName("reno")
	flow := MustNewFlow(Config{
		Loop: loop,
		Key:  packet.FlowKey{SrcPort: 1},
		CC:   factory(),
		RTT:  10 * time.Millisecond,
		Path: func(time.Duration, packet.Packet) {}, // black hole
		Size: 100 * 1500,
	})
	loop.At(time.Millisecond, flow.Start)
	loop.Run(5 * time.Minute)
	if flow.Timeouts < 3 {
		t.Errorf("only %d timeouts against a black hole", flow.Timeouts)
	}
	if flow.Finished() {
		t.Error("flow completed through a black hole")
	}
}

// TestDelayedAcksHalveAckTraffic: with delayed ACKs on a clean path, a
// transfer completes with roughly half the acknowledgments and no spurious
// recovery.
func TestDelayedAcksHalveAckTraffic(t *testing.T) {
	run := func(delayed bool) (acks int64, flow *Flow) {
		loop := sim.NewLoop()
		factory, _ := cc.NewByName("reno")
		rtt := 20 * time.Millisecond
		var f *Flow
		path := func(now time.Duration, pkt packet.Packet) {
			loop.At(now+rtt/2, func() { f.Deliver(now+rtt/2, pkt) })
		}
		f = MustNewFlow(Config{
			Loop:        loop,
			Key:         packet.FlowKey{SrcPort: 1},
			CC:          factory(),
			RTT:         rtt,
			Path:        path,
			Size:        400 * units.MSS,
			DelayedAcks: delayed,
		})
		// Count ACK arrivals via OnAcked plus dup/sack events: use a
		// wrapper around onAck by counting sendAck effects indirectly —
		// the scoreboard makes every ACK advance or SACK, so count via
		// a path-side proxy: each Deliver triggers at most one ACK, so
		// instrument sendAck through the ack-event side effect on the
		// loop is invasive; instead, expose the count through
		// DebugState-adjacent counters: we recount by instrumenting
		// Deliver calls and comparing against flow.SentSegments.
		loop.At(time.Millisecond, f.Start)
		loop.Run(60 * time.Second)
		return f.ackEvents, f
	}
	immediateAcks, f1 := run(false)
	delayedAcks, f2 := run(true)
	if !f1.Finished() || !f2.Finished() {
		t.Fatal("transfers incomplete")
	}
	if f2.RtxSegments != 0 || f2.Timeouts != 0 {
		t.Errorf("delayed ACKs caused spurious recovery: rtx=%d rto=%d",
			f2.RtxSegments, f2.Timeouts)
	}
	if delayedAcks >= immediateAcks*3/4 {
		t.Errorf("delayed ACKs = %d vs immediate %d; expected ≈half", delayedAcks, immediateAcks)
	}
}
