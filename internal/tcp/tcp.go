// Package tcp implements the event-driven reliable transport that drives
// the congestion controllers of internal/cc through the simulated network.
//
// Each Flow bundles a sender and a receiver. Reliability uses selective
// acknowledgments: the receiver acknowledges every arriving segment
// individually (alongside the cumulative point), and the sender keeps a
// SACK scoreboard with an RFC 6675-style pipe model — a segment is marked
// lost once three segments sent after it have been acknowledged, losses are
// retransmitted from a queue, and a retransmission timeout remains as the
// last resort. This matches the Linux-kernel senders used in the paper's
// testbed, whose policer experiments depend on SACK surviving the long
// consecutive drop runs an empty token bucket produces.
//
// Segments are MSS-sized; flow sizes round up to whole segments. ACKs
// travel over the flow's reverse propagation delay and are not enforced
// (the middlebox polices one direction, as in the paper's testbed).
package tcp

import (
	"fmt"
	"time"

	"bcpqp/internal/cc"
	"bcpqp/internal/netem"
	"bcpqp/internal/packet"
	"bcpqp/internal/sim"
	"bcpqp/internal/units"
)

// dupThresh is the reordering tolerance: a segment is deemed lost once this
// many segments sent after it have been SACKed (RFC 6675 DupThresh).
const dupThresh = 3

// Config describes one flow.
type Config struct {
	// Loop is the event loop the flow runs on.
	Loop *sim.Loop
	// Key is the flow's 5-tuple, used by enforcers for classification.
	Key packet.FlowKey
	// Class optionally pins the flow to an explicit enforcer class
	// (queue index); packet.NoClass classifies by Key hash.
	Class int
	// CC is the flow's congestion controller.
	CC cc.Controller
	// RTT is the two-way propagation delay (no queueing component).
	RTT time.Duration
	// Path is the forward path from sender to receiver. The harness must
	// end the path at this flow's Deliver method.
	Path netem.Forward
	// Size is the number of bytes to send; 0 means backlogged (send
	// until the run ends). More data can be added later with AddData.
	Size int64
	// ECN marks outgoing segments ECN-capable; congestion-experienced
	// marks from AQM hops are echoed back and trigger the controller's
	// OnECN response (once per window, RFC 3168 style).
	ECN bool
	// DelayedAcks makes the receiver acknowledge every second in-order
	// segment (or after a 40 ms timer, or immediately on out-of-order
	// arrival), as kernel receivers do by default. Off by default: the
	// paper's policing dynamics are clearest with per-segment ACKs.
	DelayedAcks bool
	// OnDeliver, if set, is called for every data segment arriving at
	// the receiver (receiver-side throughput metering).
	OnDeliver func(now time.Duration, bytes int)
	// OnAcked, if set, is called whenever the cumulative acknowledgment
	// point advances, with the new prefix byte count.
	OnAcked func(now time.Duration, totalAcked int64)
	// OnComplete, if set, is called when a finite flow's last byte is
	// acknowledged.
	OnComplete func(now time.Duration)
}

// segState is the per-segment scoreboard entry.
type segState struct {
	sentAt          time.Duration
	deliveredAtSend int64
	sent            bool
	acked           bool
	lost            bool // marked lost and queued for retransmission
	retransmitted   bool
}

// Flow is one simulated TCP connection.
type Flow struct {
	cfg Config

	// Sender state. Sequence numbers count MSS-sized segments.
	sndUna     int64 // first unacknowledged segment
	sndNxt     int64 // next new segment to send
	limit      int64 // segments available to send (grows via AddData)
	backlogged bool

	board     ring  // SACK scoreboard
	maxSacked int64 // highest SACKed segment + 1 (loss-detection frontier)
	lossScan  int64 // first segment not yet examined for loss marking
	pipeSegs  int64 // segments believed in flight

	// RACK state (RFC 8985): the latest send time among delivered
	// segments. Any un-SACKed segment sent a reordering-window earlier
	// than this is lost — the rule that recovers mass tail drops, which
	// the DupThresh rule cannot see (no later segments to SACK).
	rackXmit    time.Duration
	rackScanned time.Duration
	minRTT      time.Duration // smallest RTT sample seen (ambiguity guard)

	inRecovery  bool
	recoveryEnd int64
	prrQuota    int64   // segments sendable during recovery (PRR, RFC 6937)
	ecnEnd      int64   // end of the current ECN response window
	rtx         []int64 // segments queued for retransmission

	delivered int64 // cumulative bytes acked (rate-sample baseline)

	// RTO state.
	srtt, rttvar time.Duration
	rto          time.Duration
	rtoBackoff   int
	rtoTimer     *sim.Event
	tlpTimer     *sim.Event
	tlpCount     int // consecutive probes without cumulative progress

	// Pacing state.
	nextSendAt  time.Duration
	paceTimer   *sim.Event
	sendPending bool

	// Receiver state.
	rcvNxt int64
	ooo    map[int64]struct{}

	// Delayed-ACK state.
	unacked    int   // in-order segments received since the last ACK
	ceSinceAck bool  // CE seen since the last ACK
	lastSeq    int64 // newest segment received (SACK payload)
	delayTimer *sim.Event

	started  bool
	finished bool

	// Counters.
	SentSegments  int64
	RtxSegments   int64
	Timeouts      int64
	FastRetx      int64
	TLPProbes     int64
	ECNSignals    int64 // once-per-window congestion responses to CE
	CEMarks       int64 // CE-marked segments seen at the receiver
	DeliveredData int64 // bytes arrived at receiver (any order)
	ackEvents     int64 // acknowledgments generated by the receiver
}

// NewFlow validates cfg and returns a Flow. Call Start (or schedule it) to
// begin transmission.
func NewFlow(cfg Config) (*Flow, error) {
	if cfg.Loop == nil {
		return nil, fmt.Errorf("tcp: nil loop")
	}
	if cfg.CC == nil {
		return nil, fmt.Errorf("tcp: nil congestion controller")
	}
	if cfg.RTT <= 0 {
		return nil, fmt.Errorf("tcp: non-positive RTT %v", cfg.RTT)
	}
	if cfg.Path == nil {
		return nil, fmt.Errorf("tcp: nil path")
	}
	f := &Flow{
		cfg: cfg,
		ooo: make(map[int64]struct{}),
		rto: time.Second,
	}
	if cfg.Size == 0 {
		f.backlogged = true
		f.limit = 1 << 62
	} else {
		f.limit = (cfg.Size + units.MSS - 1) / units.MSS
	}
	return f, nil
}

// MustNewFlow is NewFlow that panics on error.
func MustNewFlow(cfg Config) *Flow {
	f, err := NewFlow(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Start begins transmission at the loop's current time.
func (f *Flow) Start() {
	if f.started {
		return
	}
	f.started = true
	f.trySend(f.cfg.Loop.Now())
}

// AddData extends a finite flow by n bytes (rounded up to whole segments)
// and resumes sending. Used by application models for chunked transfers
// over a persistent connection.
func (f *Flow) AddData(n int64) {
	if f.backlogged || n <= 0 {
		return
	}
	f.limit += (n + units.MSS - 1) / units.MSS
	f.finished = false
	if f.started {
		f.trySend(f.cfg.Loop.Now())
	}
}

// Finished reports whether a finite flow has delivered and acknowledged all
// its data.
func (f *Flow) Finished() bool { return f.finished }

// Controller returns the flow's congestion controller (for inspection).
func (f *Flow) Controller() cc.Controller { return f.cfg.CC }

// DebugState exposes sender internals for tests and diagnostics: the pipe
// estimate, an independent recount from the scoreboard, the congestion
// window, the retransmission queue length, and the pacing gate.
func (f *Flow) DebugState() (pipe, recount, cwnd int64, rtxq int, nextSendAt time.Duration) {
	for s := f.sndUna; s < f.sndNxt; s++ {
		st, ok := f.board.get(s)
		if ok && st.sent && !st.acked && !st.lost {
			recount++
		}
	}
	return f.pipeSegs, recount, f.cfg.CC.CongestionWindow(), len(f.rtx), f.nextSendAt
}

// AckedBytes returns the cumulatively acknowledged (prefix) byte count.
func (f *Flow) AckedBytes() int64 { return f.sndUna * units.MSS }

// pipeBytes returns the congestion-accounted bytes in flight.
func (f *Flow) pipeBytes() int64 { return f.pipeSegs * units.MSS }

// trySend transmits as much as the window (and pacing) allows,
// retransmissions first.
func (f *Flow) trySend(now time.Duration) {
	if f.finished || !f.started {
		return
	}
	for {
		seq, isRtx, ok := f.nextToSend()
		if !ok {
			return
		}
		if f.pipeBytes() >= f.cfg.CC.CongestionWindow() {
			return
		}
		// Proportional rate reduction (RFC 6937, conservation mode):
		// during loss recovery, transmissions are clocked by
		// deliveries rather than the full window, so a sender whose
		// retransmissions are themselves being dropped cannot keep
		// offering a multiple of the enforced rate.
		if f.inRecovery {
			if f.prrQuota <= 0 {
				return
			}
			f.prrQuota--
		}
		// Pacing: space transmissions at the controller's rate.
		if rate, paced := f.cfg.CC.PacingRate(); paced && rate > 0 {
			if now < f.nextSendAt {
				f.armPacing(now)
				return
			}
			gap := rate.DurationForBytes(units.MSS)
			if f.nextSendAt < now {
				f.nextSendAt = now
			}
			f.nextSendAt += gap
		}
		f.popSend(isRtx)
		f.transmit(now, seq, isRtx)
	}
}

// nextToSend picks the next segment (retransmissions first) without
// consuming it.
func (f *Flow) nextToSend() (seq int64, isRtx, ok bool) {
	for len(f.rtx) > 0 {
		s := f.rtx[0]
		if st, exists := f.board.get(s); exists && !st.acked {
			return s, true, true
		}
		f.rtx = f.rtx[1:] // already acked; discard
	}
	if f.sndNxt < f.limit {
		return f.sndNxt, false, true
	}
	return 0, false, false
}

// popSend consumes the segment chosen by nextToSend.
func (f *Flow) popSend(isRtx bool) {
	if isRtx {
		f.rtx = f.rtx[1:]
	} else {
		f.sndNxt++
	}
}

// transmit sends one segment into the path and arms the RTO.
func (f *Flow) transmit(now time.Duration, seq int64, isRtx bool) {
	f.SentSegments++
	if isRtx {
		f.RtxSegments++
	}
	f.board.put(seq, segState{
		sentAt:          now,
		deliveredAtSend: f.delivered,
		sent:            true,
		retransmitted:   isRtx,
	})
	f.pipeSegs++
	pkt := packet.Packet{
		Key:   f.cfg.Key,
		Size:  units.MSS,
		Class: f.cfg.Class,
		Seq:   seq,
		ECT:   f.cfg.ECN,
	}
	f.armRTO(now)
	f.cfg.Path(now, pkt)
}

// armPacing schedules the pacing-gated send.
func (f *Flow) armPacing(now time.Duration) {
	if f.sendPending {
		return
	}
	f.sendPending = true
	at := f.nextSendAt
	if at < now {
		at = now
	}
	f.paceTimer = f.cfg.Loop.At(at, func() {
		f.sendPending = false
		f.trySend(at)
	})
}

// Deliver is the receiver's entry point; harness paths must terminate here.
func (f *Flow) Deliver(now time.Duration, pkt packet.Packet) {
	f.DeliveredData += int64(pkt.Size)
	if f.cfg.OnDeliver != nil {
		f.cfg.OnDeliver(now, pkt.Size)
	}
	seq := pkt.Seq
	wasExpected := seq == f.rcvNxt
	if seq >= f.rcvNxt {
		if _, dup := f.ooo[seq]; !dup {
			f.ooo[seq] = struct{}{}
			for {
				if _, ok := f.ooo[f.rcvNxt]; !ok {
					break
				}
				delete(f.ooo, f.rcvNxt)
				f.rcvNxt++
			}
		}
	}
	if pkt.CE {
		f.CEMarks++
		f.ceSinceAck = true
	}
	f.lastSeq = seq

	if !f.cfg.DelayedAcks {
		f.sendAck(now, seq)
		return
	}
	// Delayed ACKs (RFC 1122): every second in-order segment, any
	// out-of-order arrival, or the 40 ms delayed-ACK timer.
	f.unacked++
	if !wasExpected || f.unacked >= 2 {
		f.sendAck(now, seq)
		return
	}
	if f.delayTimer == nil || f.delayTimer.Cancelled() {
		f.delayTimer = f.cfg.Loop.At(now+40*time.Millisecond, func() {
			if f.unacked > 0 {
				f.sendAck(f.cfg.Loop.Now(), f.lastSeq)
			}
		})
	}
}

// sendAck emits one acknowledgment (cumulative point + SACK of seq + ECN
// echo) over the reverse propagation delay.
func (f *Flow) sendAck(now time.Duration, seq int64) {
	f.ackEvents++
	f.unacked = 0
	ce := f.ceSinceAck
	f.ceSinceAck = false
	f.cfg.Loop.Cancel(f.delayTimer)
	cum := f.rcvNxt
	ackAt := now + f.cfg.RTT/2
	f.cfg.Loop.At(ackAt, func() { f.onAck(ackAt, cum, seq, ce) })
}

// onAck processes one acknowledgment at the sender. cum is the receiver's
// cumulative point; sack is the individual segment being acknowledged; ce
// echoes the segment's ECN congestion-experienced mark.
func (f *Flow) onAck(now time.Duration, cum, sack int64, ce bool) {
	if f.finished {
		return
	}
	// ECN response, once per window of data (RFC 3168).
	if ce && sack >= f.ecnEnd {
		f.ecnEnd = f.sndNxt
		f.ECNSignals++
		f.cfg.CC.OnECN(now)
	}
	var ackedBytes int64
	var rttSample time.Duration
	var bwSample units.Rate

	if st, ok := f.board.get(sack); ok && st.sent && !st.acked {
		if !st.lost {
			f.pipeSegs--
		}
		f.delivered += units.MSS
		ackedBytes = units.MSS
		if !st.retransmitted {
			rttSample = now - st.sentAt
			if dt := now - st.sentAt; dt > 0 {
				bwSample = units.Rate(float64(f.delivered-st.deliveredAtSend) * 8 / dt.Seconds())
			}
		}
		st.acked = true
		st.lost = false
		f.board.update(sack, st)
		if sack >= f.maxSacked {
			f.maxSacked = sack + 1
		}
		// RACK ambiguity guard (RFC 8985 §6.1): for a retransmitted
		// segment, the ACK may be for the original transmission. If it
		// returned faster than the minimum path RTT it cannot be for
		// the retransmission, so its send time must not advance the
		// RACK clock (doing so would spuriously mark the whole window
		// lost and trigger retransmission storms).
		ambiguous := st.retransmitted && f.minRTT > 0 && now-st.sentAt < f.minRTT
		if st.sentAt > f.rackXmit && !ambiguous {
			f.rackXmit = st.sentAt
		}
	}

	// Advance the cumulative point, freeing scoreboard entries.
	prevUna := f.sndUna
	if cum > prevUna {
		f.tlpCount = 0
	}
	target := cum
	if target > f.sndNxt {
		target = f.sndNxt
	}
	for f.sndUna < target {
		st, ok := f.board.get(f.sndUna)
		if ok && !st.acked {
			// Cumulative point says delivered but we never saw the
			// per-segment ack (possible after a timeout rewind):
			// account it now.
			if st.sent && !st.lost {
				f.pipeSegs--
			}
			f.delivered += units.MSS
		}
		f.board.clear(f.sndUna)
		f.sndUna++
	}
	if f.lossScan < f.sndUna {
		f.lossScan = f.sndUna
	}

	f.markLosses(now)
	f.rackScan(now)

	if f.inRecovery && f.sndUna >= f.recoveryEnd {
		f.inRecovery = false
	}

	if rttSample > 0 {
		f.updateRTO(rttSample)
		if f.minRTT == 0 || rttSample < f.minRTT {
			f.minRTT = rttSample
		}
	}
	if ackedBytes > 0 {
		if f.inRecovery {
			f.prrQuota++
		}
		f.rtoBackoff = 0
		f.cfg.CC.OnAck(cc.Ack{
			Now:             now,
			RTT:             rttSample,
			Acked:           ackedBytes,
			Inflight:        f.pipeBytes(),
			BandwidthSample: bwSample,
		})
	}
	if f.sndUna > prevUna && f.cfg.OnAcked != nil {
		f.cfg.OnAcked(now, f.sndUna*units.MSS)
	}

	if !f.backlogged && f.sndUna >= f.limit {
		f.complete(now)
		return
	}
	f.armRTO(now)
	f.trySend(now)
}

// markLosses applies the RFC 6675 rule: every sent, un-SACKed segment with
// at least dupThresh SACKed segments after it is lost. The scan frontier
// advances monotonically so each segment is examined once per epoch.
func (f *Flow) markLosses(now time.Duration) {
	frontier := f.maxSacked - dupThresh
	if frontier > f.sndNxt {
		frontier = f.sndNxt
	}
	newLoss := false
	for s := f.lossScan; s < frontier; s++ {
		st, ok := f.board.get(s)
		if !ok || !st.sent || st.acked || st.lost {
			continue
		}
		st.lost = true
		f.board.update(s, st)
		f.pipeSegs--
		f.rtx = append(f.rtx, s)
		newLoss = true
	}
	if frontier > f.lossScan {
		f.lossScan = frontier
	}
	if newLoss {
		f.enterRecovery(now)
	}
}

// rackScan applies the RACK rule: any sent, un-SACKed, un-marked segment
// whose (re)transmission happened more than a reordering window before the
// newest delivered segment's send time is lost. The scan is rate-limited to
// once per reordering window of virtual time to keep per-ack cost constant.
func (f *Flow) rackScan(now time.Duration) {
	if f.rackXmit == 0 {
		return
	}
	reoWnd := f.srtt / 4
	if reoWnd < time.Millisecond {
		reoWnd = time.Millisecond
	}
	if now < f.rackScanned+reoWnd {
		return
	}
	f.rackScanned = now
	threshold := f.rackXmit - reoWnd
	newLoss := false
	for s := f.sndUna; s < f.sndNxt; s++ {
		st, ok := f.board.get(s)
		if !ok || !st.sent || st.acked || st.lost {
			continue
		}
		if st.sentAt >= threshold {
			continue
		}
		st.lost = true
		f.board.update(s, st)
		f.pipeSegs--
		f.rtx = append(f.rtx, s)
		newLoss = true
	}
	if newLoss {
		f.enterRecovery(now)
	}
}

// enterRecovery counts a fast-retransmit event and signals the controller
// once per window of data.
func (f *Flow) enterRecovery(now time.Duration) {
	f.FastRetx++
	if !f.inRecovery {
		f.inRecovery = true
		f.recoveryEnd = f.sndNxt
		f.prrQuota = 1 // allow the first retransmission out immediately
		f.cfg.CC.OnLoss(now)
	}
}

// updateRTO maintains SRTT/RTTVAR per RFC 6298 with a 200 ms floor
// (Linux's minimum).
func (f *Flow) updateRTO(sample time.Duration) {
	if f.srtt == 0 {
		f.srtt = sample
		f.rttvar = sample / 2
	} else {
		d := f.srtt - sample
		if d < 0 {
			d = -d
		}
		f.rttvar = (3*f.rttvar + d) / 4
		f.srtt = (7*f.srtt + sample) / 8
	}
	f.rto = f.srtt + 4*f.rttvar
	if f.rto < 200*time.Millisecond {
		f.rto = 200 * time.Millisecond
	}
}

// outstanding reports whether any data is unacknowledged or queued.
func (f *Flow) outstanding() bool {
	return f.sndUna < f.sndNxt || len(f.rtx) > 0
}

// armRTO (re)schedules the retransmission and tail-loss-probe timers.
func (f *Flow) armRTO(now time.Duration) {
	f.cfg.Loop.Cancel(f.rtoTimer)
	f.cfg.Loop.Cancel(f.tlpTimer)
	if !f.outstanding() {
		f.rtoTimer = nil
		f.tlpTimer = nil
		return
	}
	d := f.rto << f.rtoBackoff
	if d > time.Minute {
		d = time.Minute
	}
	f.rtoTimer = f.cfg.Loop.At(now+d, func() { f.onTimeout(now + d) })

	// Tail loss probe (RFC 8985 / Linux TLP): if acknowledgments go
	// silent for ~2 SRTT while data is outstanding — the window-limited
	// tail-drop case where no later segments exist to trigger SACK loss
	// detection — retransmit the first hole without collapsing the
	// window. At most two consecutive probes fire without cumulative
	// progress; after that the RTO takes over (probing a path that is
	// dropping retransmissions too must not starve full recovery).
	p := 2 * f.srtt
	if p < 10*time.Millisecond {
		p = 10 * time.Millisecond
	}
	if f.srtt > 0 && p < d && f.tlpCount < 2 {
		f.tlpTimer = f.cfg.Loop.At(now+p, func() { f.onTLP(now + p) })
	}
}

// onTLP retransmits the first unacknowledged segment as a loss probe. The
// probe is sent regardless of the congestion window (as Linux TLP does):
// when the entire tail of the window was dropped, the pipe estimate stays
// pinned at the window and a window-gated probe could never leave.
func (f *Flow) onTLP(now time.Duration) {
	if f.finished || !f.outstanding() {
		return
	}
	f.TLPProbes++
	f.tlpCount++
	probe := f.sndUna
	if st, ok := f.board.get(probe); ok && st.sent && !st.acked {
		if !st.lost {
			st.lost = true
			f.board.update(probe, st)
			f.pipeSegs--
		}
		// Drop a queued copy so the probe is not sent twice.
		for i, s := range f.rtx {
			if s == probe {
				f.rtx = append(f.rtx[:i], f.rtx[i+1:]...)
				break
			}
		}
		f.transmit(now, probe, true) // re-arms RTO and TLP
		return
	}
	f.trySend(now)
	if f.outstanding() && (f.tlpTimer == nil || f.tlpTimer.Cancelled()) {
		p := 2 * f.srtt
		if p < 10*time.Millisecond {
			p = 10 * time.Millisecond
		}
		f.tlpTimer = f.cfg.Loop.At(now+p, func() { f.onTLP(now + p) })
	}
}

// onTimeout retransmits everything outstanding (the scoreboard equivalent
// of go-back-N) after collapsing the window.
func (f *Flow) onTimeout(now time.Duration) {
	if f.finished || !f.outstanding() {
		return
	}
	f.Timeouts++
	f.rtx = f.rtx[:0]
	f.pipeSegs = 0
	for s := f.sndUna; s < f.sndNxt; s++ {
		st, ok := f.board.get(s)
		if !ok || st.acked {
			continue
		}
		st.lost = true
		f.board.update(s, st)
		f.rtx = append(f.rtx, s)
	}
	f.lossScan = f.sndUna
	f.inRecovery = false
	f.tlpCount = 0
	f.rtoBackoff++
	if f.rtoBackoff > 6 {
		f.rtoBackoff = 6
	}
	f.cfg.CC.OnTimeout(now)
	f.armRTO(now)
	f.trySend(now)
}

// complete finalizes a finite flow.
func (f *Flow) complete(now time.Duration) {
	f.finished = true
	f.cfg.Loop.Cancel(f.rtoTimer)
	f.cfg.Loop.Cancel(f.paceTimer)
	f.sendPending = false
	if f.cfg.OnComplete != nil {
		f.cfg.OnComplete(now)
	}
}

// ring is a growable circular buffer of scoreboard entries indexed by
// segment sequence number. It avoids per-segment map allocation on the hot
// path.
type ring struct {
	recs  []segState
	used  []bool
	base  int64 // lowest sequence number retained
	limit int64 // highest stored sequence + 1
}

func (r *ring) ensure(seq int64) {
	if r.recs == nil {
		r.recs = make([]segState, 512)
		r.used = make([]bool, 512)
		r.base = seq
		r.limit = seq
	}
	for seq-r.base >= int64(len(r.recs)) {
		r.grow()
	}
}

func (r *ring) put(seq int64, st segState) {
	r.ensure(seq)
	if seq < r.base {
		return // too old to track
	}
	i := seq % int64(len(r.recs))
	r.recs[i] = st
	r.used[i] = true
	if seq+1 > r.limit {
		r.limit = seq + 1
	}
}

func (r *ring) update(seq int64, st segState) { r.put(seq, st) }

func (r *ring) get(seq int64) (segState, bool) {
	if r.recs == nil || seq < r.base || seq >= r.limit {
		return segState{}, false
	}
	i := seq % int64(len(r.recs))
	if !r.used[i] {
		return segState{}, false
	}
	return r.recs[i], true
}

func (r *ring) clear(seq int64) {
	if r.recs == nil || seq < r.base || seq >= r.limit {
		return
	}
	i := seq % int64(len(r.recs))
	r.recs[i] = segState{}
	r.used[i] = false
	for r.base < r.limit {
		j := r.base % int64(len(r.recs))
		if r.used[j] {
			break
		}
		r.base++
	}
}

func (r *ring) grow() {
	oldRecs, oldUsed := r.recs, r.used
	n := int64(len(oldRecs))
	recs := make([]segState, 2*n)
	used := make([]bool, 2*n)
	for seq := r.base; seq < r.limit; seq++ {
		if oldUsed[seq%n] {
			recs[seq%(2*n)] = oldRecs[seq%n]
			used[seq%(2*n)] = true
		}
	}
	r.recs = recs
	r.used = used
}
