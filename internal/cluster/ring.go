// Package cluster turns N independent bcpqp engines into one logical
// enforcer for aggregates whose traffic spans machines.
//
// Two mechanisms, both deterministic:
//
//   - A consistent-hash ring places each aggregate on exactly one owner
//     node. Every node computes the same placement from the same peer set —
//     no coordination, no metadata service — and a single join or leave
//     moves only ~1/N of the aggregates (whose state travels in BQSN
//     snapshot handoffs).
//
//   - For aggregates marked shared (enforced at every node at once), a
//     budget-exchange protocol on the paper's 250 ms window splits the
//     global drain rate r into per-node shares r_i with Σ r_i ≤ r at all
//     times, even while messages are lost, duplicated, reordered, delayed,
//     or one-way partitioned. See rebalance.go for the share calculus and
//     the safety argument.
//
// The package deliberately depends only on internal/enforcer (wire codec
// helpers), internal/obs (trace events), internal/rng (retry jitter) and
// internal/units; engines plug in through the SharedAggregate callbacks, so
// cluster logic is testable without a datapath.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the number of virtual points each node contributes to
// the ring. 64 keeps the expected placement imbalance under ~15% for small
// clusters while the whole ring stays a few KB.
const vnodesPerNode = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the index of the owning node.
type ringPoint struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is a deterministic consistent-hash ring over a set of node IDs.
// Construction sorts the peer set, so any permutation of the same IDs
// yields an identical ring and identical placements on every node.
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	nodes  []string
	points []ringPoint
}

// NewRing builds a ring over ids (duplicates are collapsed). An empty peer
// set yields a ring on which Owner returns "".
func NewRing(ids []string) *Ring {
	seen := make(map[string]bool, len(ids))
	nodes := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		nodes = append(nodes, id)
	}
	sort.Strings(nodes)
	r := &Ring{nodes: nodes, points: make([]ringPoint, 0, len(nodes)*vnodesPerNode)}
	for i, id := range nodes {
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", id, v)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node index, which is itself
		// determined by the sorted ID order — still deterministic.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's node IDs in sorted order. Callers must not
// mutate the returned slice.
func (r *Ring) Nodes() []string { return r.nodes }

// Size returns the number of distinct nodes on the ring.
func (r *Ring) Size() int { return len(r.nodes) }

// Owner returns the node that owns key: the first virtual point at or
// clockwise of the key's hash, wrapping at the top of the circle.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].node]
}

// Owns reports whether node id owns key on this ring.
func (r *Ring) Owns(id, key string) bool { return r.Owner(key) == id }

// hash64 is FNV-1a over the key with a splitmix64 finalizer. Placement
// only needs an even, stable, platform-independent spread — not
// cryptographic strength — but raw FNV-1a of short, similar keys (vnode
// labels differ in a suffix digit) clusters badly on the circle; the
// finalizer's avalanche fixes the dispersion.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
