package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestSealOpenRoundtrip: the seal/open pair is lossless under the right
// key and rejects everything else — tampered bodies, truncated tags, wrong
// keys, and unsealed frames.
func TestSealOpenRoundtrip(t *testing.T) {
	key := []byte("cluster-secret")
	frame := EncodeReport("b", 1, 1, nil, nil)

	sealed := sealFrame(key, frame)
	if len(sealed) != len(frame)+macLen {
		t.Fatalf("sealed length %d, want %d", len(sealed), len(frame)+macLen)
	}
	body, err := openFrame(key, sealed)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !bytes.Equal(body, frame) {
		t.Fatal("opened body differs from the original frame")
	}

	for name, data := range map[string][]byte{
		"unsealed frame": frame,
		"short":          sealed[:macLen],
		"tampered body": func() []byte {
			c := append([]byte(nil), sealed...)
			c[10] ^= 1
			return c
		}(),
		"tampered tag": func() []byte {
			c := append([]byte(nil), sealed...)
			c[len(c)-1] ^= 1
			return c
		}(),
	} {
		if _, err := openFrame(key, data); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
	if _, err := openFrame([]byte("other-key"), sealed); !errors.Is(err, ErrBadFrame) {
		t.Errorf("wrong key accepted: %v", err)
	}

	// Empty key: both directions are the identity (trusted-network mode).
	if got := sealFrame(nil, frame); !bytes.Equal(got, frame) {
		t.Fatal("empty-key seal altered the frame")
	}
	if got, err := openFrame(nil, frame); err != nil || !bytes.Equal(got, frame) {
		t.Fatalf("empty-key open: %v", err)
	}
}

// TestClusterAuthEndToEnd: keyed nodes exchange sealed reports normally,
// while forged frames — unauthenticated, or carrying a poisonous huge Seq
// meant to mute the peer — are dropped without touching peer state.
func TestClusterAuthEndToEnd(t *testing.T) {
	key := []byte("cluster-secret")
	var now time.Duration
	var a, b *Node
	mk := func(self, other string, dst **Node) *Node {
		n, err := New(Config{
			Self: self, Peers: []string{other}, Window: simWindow,
			Transport: transportFunc(func(peer string, f []byte) error {
				return (*dst).Deliver(append([]byte(nil), f...))
			}),
			Clock: func() time.Duration { return now },
			Key:   key,
			Epoch: 1,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a = mk("a", "b", &b)
	b = mk("b", "a", &a)
	defer a.Close()
	defer b.Close()

	a.Tick(now)
	b.Tick(now)
	for _, n := range []*Node{a, b} {
		if st := n.Status(); st.Peers[0].Reports != 1 {
			t.Fatalf("%s accepted %d reports after one exchange, want 1", st.Self, st.Peers[0].Reports)
		}
	}

	// Forgery 1: a plain (unsealed) frame claiming to be b, with grants an
	// attacker would use to inflate a's share.
	forged := EncodeReport("b", 1, 50, nil, []AggReport{{ID: "x", Grants: []Grant{{To: "a", Bps: 1e12}}}})
	if err := a.Deliver(forged); err == nil {
		t.Fatal("unauthenticated forged frame accepted")
	}
	// Forgery 2: the mute attack — Seq = 2^64-1 would permanently shadow
	// every future legitimate report via the stale-drop path.
	if err := a.Deliver(EncodeReport("b", 1, ^uint64(0), nil, nil)); err == nil {
		t.Fatal("unauthenticated max-seq frame accepted")
	}
	st := a.Status()
	if st.BadFrames != 2 {
		t.Fatalf("BadFrames = %d, want 2", st.BadFrames)
	}
	if st.Peers[0].LastSeq != 1 {
		t.Fatalf("forged frames moved peer seq to %d", st.Peers[0].LastSeq)
	}

	// The legitimate peer still gets through afterwards.
	now += simWindow
	a.Tick(now)
	b.Tick(now)
	if st := a.Status(); st.Peers[0].Reports != 2 || st.Peers[0].LastSeq != 2 {
		t.Fatalf("legitimate exchange broken after forgeries: %+v", st.Peers[0])
	}
}
