// Peer state machine: per-peer liveness tracking driven by report arrival
// and the tick clock, with the timeout → suspect → dead ladder the ISSUE's
// degrade ladder is built on. All transitions are functions of (last valid
// report time, now), so they are deterministic under a virtual clock.
package cluster

import (
	"time"

	"bcpqp/internal/units"
)

// PeerState is one rung of the liveness ladder.
type PeerState uint8

const (
	// PeerAlive: a valid report arrived within SuspectAfter.
	PeerAlive PeerState = iota
	// PeerSuspect: silent for SuspectAfter — grants from this peer have
	// already died (freshFor < SuspectAfter); we keep retrying sends.
	PeerSuspect
	// PeerDead: silent for DeadAfter. Still retried at the tick cadence —
	// a healed partition resurrects the peer on its next valid report.
	PeerDead
)

// String names the state for logs, metrics and the /cluster endpoint.
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return "unknown"
	}
}

// peerAgg is the newest per-aggregate data heard from one peer.
type peerAgg struct {
	observed  units.Rate
	applied   units.Rate
	grantToMe units.Rate
	stamp     int64 // peer.reports value of the report that last carried it
}

// peer is the node's view of one cluster peer. Guarded by Node.mu.
type peer struct {
	id    string
	index int // position in the node's sorted peer list (stable label)

	state     PeerState
	everHeard bool
	lastHeard time.Duration // virtual receive time of the newest valid report
	epoch     uint64        // boot incarnation of the newest accepted report
	lastSeq   uint64        // newest report sequence accepted within that epoch
	echoOfMe  uint64        // my seq (this boot) echoed by that report
	aggs      map[string]*peerAgg

	// Wire hygiene counters (exported via Status/metrics).
	reports   int64 // valid reports accepted
	stale     int64 // duplicate / out-of-order reports dropped by seq
	badFrames int64 // frames from this peer that failed validation

	retrying bool // a retry goroutine is in flight for this peer
}

// classify maps silence duration to a state. Pure function — the caller
// records transitions.
func classify(silence, suspectAfter, deadAfter time.Duration) PeerState {
	switch {
	case silence >= deadAfter:
		return PeerDead
	case silence >= suspectAfter:
		return PeerSuspect
	default:
		return PeerAlive
	}
}

// fresh reports whether the peer's newest report may still be honored at
// virtual time now: received within freshFor (1.5 windows) AND echoing a
// recent sequence number of ours (within echoSlack ticks). mySeq is the
// node's current report sequence.
func (p *peer) fresh(now, window time.Duration, mySeq uint64) bool {
	if !p.everHeard {
		return false
	}
	if now-p.lastHeard > window*freshForNum/freshForDen {
		return false
	}
	return p.echoOfMe+echoSlack >= mySeq
}
