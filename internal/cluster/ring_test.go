package cluster

import (
	"fmt"
	"testing"
)

func aggIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("agg-%04d", i)
	}
	return ids
}

// TestRingDeterminism: every permutation of the same peer set yields
// identical placements for every key — the property that lets N nodes
// agree on ownership with zero coordination.
func TestRingDeterminism(t *testing.T) {
	perms := [][]string{
		{"node-a", "node-b", "node-c", "node-d"},
		{"node-d", "node-c", "node-b", "node-a"},
		{"node-c", "node-a", "node-d", "node-b"},
		{"node-b", "node-d", "node-a", "node-c", "node-b"}, // duplicate collapsed
	}
	ref := NewRing(perms[0])
	keys := aggIDs(500)
	for pi, perm := range perms[1:] {
		r := NewRing(perm)
		if r.Size() != ref.Size() {
			t.Fatalf("perm %d: size %d != %d", pi, r.Size(), ref.Size())
		}
		for _, k := range keys {
			if got, want := r.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("perm %d: owner(%q) = %q, want %q", pi, k, got, want)
			}
		}
	}
}

// TestRingSpread: placements land on every node, and no node owns a wildly
// disproportionate share (vnode smoothing keeps small clusters roughly
// balanced).
func TestRingSpread(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	r := NewRing(nodes)
	counts := map[string]int{}
	keys := aggIDs(5000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	want := len(keys) / len(nodes)
	for _, n := range nodes {
		c := counts[n]
		if c == 0 {
			t.Fatalf("node %s owns nothing", n)
		}
		if c < want/2 || c > want*2 {
			t.Errorf("node %s owns %d of %d keys (expected ~%d)", n, c, len(keys), want)
		}
	}
}

// TestRingJoinLeaveMovement is the consistent-hashing contract, table
// driven: a single join or leave moves only ~1/N of the keys, and every
// move involves the changed node — no key shuffles between two surviving
// nodes.
func TestRingJoinLeaveMovement(t *testing.T) {
	keys := aggIDs(4000)
	cases := []struct {
		name    string
		before  []string
		after   []string
		changed string // the joined or departed node
	}{
		{"join 2nd", []string{"a"}, []string{"a", "b"}, "b"},
		{"join 4th", []string{"a", "b", "c"}, []string{"a", "b", "c", "d"}, "d"},
		{"join 8th", []string{"n1", "n2", "n3", "n4", "n5", "n6", "n7"},
			[]string{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"}, "n8"},
		{"leave of 4", []string{"a", "b", "c", "d"}, []string{"a", "b", "d"}, "c"},
		{"leave of 8", []string{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"},
			[]string{"n1", "n2", "n3", "n4", "n5", "n6", "n8"}, "n7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before, after := NewRing(tc.before), NewRing(tc.after)
			moved := 0
			for _, k := range keys {
				ob, oa := before.Owner(k), after.Owner(k)
				if ob == oa {
					continue
				}
				moved++
				if ob != tc.changed && oa != tc.changed {
					t.Fatalf("key %q moved %q → %q without involving changed node %q", k, ob, oa, tc.changed)
				}
			}
			// Expected movement is len(keys)/max(N_before, N_after); allow
			// 2.5x for vnode variance at these small N.
			n := len(before.Nodes())
			if len(after.Nodes()) > n {
				n = len(after.Nodes())
			}
			expect := len(keys) / n
			if moved == 0 {
				t.Fatal("no keys moved across a ring change")
			}
			if moved > expect*5/2 {
				t.Errorf("moved %d keys, expected ~%d (1/%d of %d)", moved, expect, n, len(keys))
			}
		})
	}
}

// TestRingEmptyAndSingle: degenerate rings behave.
func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil).Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	r := NewRing([]string{"only"})
	for _, k := range aggIDs(20) {
		if got := r.Owner(k); got != "only" {
			t.Fatalf("single-node ring owner(%q) = %q", k, got)
		}
	}
	if !r.Owns("only", "anything") {
		t.Fatal("single node must own everything")
	}
}
