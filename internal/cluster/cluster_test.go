package cluster

// Node-level exchange tests on a deterministic in-memory network: a
// virtual clock, synchronous delivery through faultinject.NetLink (so the
// chaos suite reuses the same harness with fault plans), and a fluid
// traffic model — each simulated node accepts min(demand, applied share)
// during every window, which is exactly the regime the share calculus
// reasons about.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bcpqp/internal/faultinject"
	"bcpqp/internal/units"
)

const (
	simWindow = 250 * time.Millisecond
	simRate   = units.Rate(90e6) // global bound r: 90 Mbit/s
	simAgg    = "tenant-1"
)

// simNode is one simulated cluster member: a Node plus the fluid traffic
// model feeding its Observed callback.
type simNode struct {
	node     *Node
	epoch    uint64     // boot incarnation, advanced by restart
	down     bool       // stopped by stop(); skipped by step until restart
	demand   units.Rate // offered load
	applied  units.Rate // share the exchange last applied
	fallback bool
	accepted float64 // cumulative accepted bytes (fluid)
}

// memTransport routes frames from one sender through per-direction
// NetLinks straight into the receivers' Deliver.
type memTransport struct {
	from string
	sim  *clusterSim
}

func (m *memTransport) Send(peer string, frame []byte) error {
	link := m.sim.links[m.from][peer]
	if link == nil {
		return fmt.Errorf("no link %s→%s", m.from, peer)
	}
	link.Send(m.sim.now, frame)
	return nil
}

// clusterSim is a virtual-time cluster of simNodes. Everything runs on the
// test goroutine: Send delivers synchronously (possibly through fault
// injectors), so runs are bit-for-bit reproducible per seed.
type clusterSim struct {
	t     *testing.T
	now   time.Duration
	ids   []string
	nodes map[string]*simNode
	links map[string]map[string]*faultinject.NetLink // sender → receiver
}

// newClusterSim builds n nodes named node-0..n-1 sharing one aggregate at
// simRate, every directional link wrapped in a NetLink with plan(sender,
// receiver).
func newClusterSim(t *testing.T, n int, plan func(from, to string) faultinject.NetPlan) *clusterSim {
	t.Helper()
	sim := &clusterSim{
		t:     t,
		nodes: make(map[string]*simNode),
		links: make(map[string]map[string]*faultinject.NetLink),
	}
	for i := 0; i < n; i++ {
		sim.ids = append(sim.ids, fmt.Sprintf("node-%d", i))
	}
	for _, id := range sim.ids {
		sn := &simNode{epoch: 1}
		sim.nodes[id] = sn
		sn.node = sim.makeNode(id, sn)
	}
	for _, from := range sim.ids {
		sim.links[from] = make(map[string]*faultinject.NetLink)
		for _, to := range sim.ids {
			if from == to {
				continue
			}
			to := to
			p := faultinject.NetPlan{}
			if plan != nil {
				p = plan(from, to)
			}
			// Look the receiver up at delivery time, not link-creation time,
			// so restart() can swap a node's incarnation under live links.
			sim.links[from][to] = faultinject.NewNetLink(func(f []byte) { sim.nodes[to].node.Deliver(f) }, p)
		}
	}
	t.Cleanup(func() {
		for _, sn := range sim.nodes {
			sn.node.Close()
		}
	})
	return sim
}

// makeNode builds one incarnation of a sim member at sn's current epoch.
func (s *clusterSim) makeNode(id string, sn *simNode) *Node {
	s.t.Helper()
	peers := make([]string, 0, len(s.ids)-1)
	for _, p := range s.ids {
		if p != id {
			peers = append(peers, p)
		}
	}
	node, err := New(Config{
		Self:      id,
		Peers:     peers,
		Window:    simWindow,
		Transport: &memTransport{from: id, sim: s},
		Clock:     func() time.Duration { return s.now },
		Seed:      1,
		Epoch:     sn.epoch,
	}, []SharedAggregate{{
		ID:   simAgg,
		Rate: simRate,
		Observed: func() (int64, bool) {
			return int64(sn.accepted), true
		},
		Apply: func(share units.Rate, fallback bool) error {
			sn.applied, sn.fallback = share, fallback
			return nil
		},
	}})
	if err != nil {
		s.t.Fatal(err)
	}
	return node
}

// stop takes id down: its Node is closed and step stops ticking it, as if
// the process exited.
func (s *clusterSim) stop(id string) {
	s.nodes[id].down = true
	s.nodes[id].node.Close()
}

// restart brings id back as a fresh incarnation — sequence numbers back to
// zero under an advanced epoch, the documented ring-change / restart
// procedure. The engine-side byte counter (sn.accepted) survives, as the
// real engine's would across a cluster-layer restart.
func (s *clusterSim) restart(id string) {
	sn := s.nodes[id]
	if !sn.down {
		sn.node.Close()
	}
	sn.epoch++
	sn.node = s.makeNode(id, sn)
	sn.down = false
}

// step advances one window: accrue fluid traffic, advance virtual time
// (releasing delayed frames), and tick every node.
func (s *clusterSim) step() {
	for _, id := range s.ids {
		sn := s.nodes[id]
		rate := sn.demand
		if sn.applied < rate {
			rate = sn.applied
		}
		sn.accepted += float64(rate) / 8 * simWindow.Seconds()
	}
	s.now += simWindow
	for _, m := range s.links {
		for _, l := range m {
			l.Advance(s.now)
		}
	}
	for _, id := range s.ids {
		if sn := s.nodes[id]; !sn.down {
			sn.node.Tick(s.now)
		}
	}
}

// appliedSum returns Σ applied across the cluster.
func (s *clusterSim) appliedSum() units.Rate {
	var sum units.Rate
	for _, id := range s.ids {
		sum += s.nodes[id].applied
	}
	return sum
}

// assertInvariant fails the test if the cluster-wide share sum exceeds the
// global bound (tiny float epsilon only).
func (s *clusterSim) assertInvariant() {
	s.t.Helper()
	if sum := s.appliedSum(); float64(sum) > float64(simRate)*(1+1e-9) {
		s.t.Fatalf("t=%v: Σ applied = %.0f exceeds r = %.0f", s.now, float64(sum), float64(simRate))
	}
}

// cutAll opens one-way partitions for every link touching id in the given
// directions.
func (s *clusterSim) cutAll(id string, outbound, inbound bool) {
	for _, other := range s.ids {
		if other == id {
			continue
		}
		if outbound {
			s.links[id][other].Cut()
		}
		if inbound {
			s.links[other][id].Cut()
		}
	}
}

func (s *clusterSim) healAll(id string) {
	for _, other := range s.ids {
		if other == id {
			continue
		}
		s.links[id][other].Heal()
		s.links[other][id].Heal()
	}
}

// TestClusterConvergence: on a clean network, surplus nodes cede budget to
// the loaded node within a few windows, the loaded node's share rises well
// above the static floor, and the sum never exceeds r.
func TestClusterConvergence(t *testing.T) {
	sim := newClusterSim(t, 3, nil)
	floor := simRate / 3
	sim.nodes["node-0"].demand = 80e6 // hot node; the others are idle
	for i := 0; i < 40; i++ {
		sim.step()
		sim.assertInvariant()
	}
	hot := sim.nodes["node-0"]
	if hot.fallback {
		t.Fatal("hot node still in fallback on a clean network")
	}
	if hot.applied < floor*2 {
		t.Fatalf("hot node share %.0f never grew past 2×floor (floor %.0f)", float64(hot.applied), float64(floor))
	}
	// The hot node's demand is satisfiable: 80 Mbit/s < r.
	if hot.applied < hot.demand*95/100 {
		t.Fatalf("hot node share %.0f does not cover demand %.0f", float64(hot.applied), float64(hot.demand))
	}
	for _, id := range []string{"node-1", "node-2"} {
		if sn := sim.nodes[id]; sn.applied > floor {
			t.Fatalf("%s idle but share %.0f exceeds floor %.0f", id, float64(sn.applied), float64(floor))
		}
	}
}

// TestClusterFallbackWithinOneWindow: after a full partition of the hot
// node, every surviving node stops honoring its grants within one window
// of the first missed exchange (≤ 2 ticks), lands back at ≤ floor, and
// reports fallback. On heal the exchange re-establishes.
func TestClusterFallbackWithinOneWindow(t *testing.T) {
	sim := newClusterSim(t, 3, nil)
	floor := simRate / 3
	sim.nodes["node-0"].demand = 80e6
	for i := 0; i < 20; i++ {
		sim.step()
		sim.assertInvariant()
	}
	if sim.nodes["node-0"].applied <= floor {
		t.Fatal("setup: grants never flowed")
	}

	sim.cutAll("node-0", true, true)
	// Tick 1 after the cut: node-0's last report is one window old — still
	// within freshFor. Tick 2: stale everywhere. That is one window after
	// the first missed exchange, the ISSUE's bound.
	for i := 0; i < 2; i++ {
		sim.step()
		sim.assertInvariant()
	}
	hot := sim.nodes["node-0"]
	if !hot.fallback {
		t.Fatal("partitioned node not in fallback after 2 ticks")
	}
	if hot.applied > floor*(1+1e-9) {
		t.Fatalf("partitioned node still enforcing %.0f > floor %.0f", float64(hot.applied), float64(floor))
	}
	for _, id := range []string{"node-1", "node-2"} {
		sn := sim.nodes[id]
		if !sn.fallback {
			t.Fatalf("%s not in fallback though node-0 is silent", id)
		}
	}
	// Survivors must keep the sum bounded through the hold window drain.
	for i := 0; i < holdTicks+2; i++ {
		sim.step()
		sim.assertInvariant()
	}

	sim.healAll("node-0")
	for i := 0; i < 10; i++ {
		sim.step()
		sim.assertInvariant()
	}
	if sim.nodes["node-0"].fallback {
		t.Fatal("exchange did not re-establish after heal")
	}
	if sim.nodes["node-0"].applied <= floor {
		t.Fatal("grants did not resume after heal")
	}
}

// TestClusterSilentPeerDegradeLadder: a peer that stops ticking walks
// alive → suspect → dead on the configured thresholds, and its state is
// visible in Status and the peer-state callback.
func TestClusterSilentPeerDegradeLadder(t *testing.T) {
	sim := newClusterSim(t, 2, nil)
	for i := 0; i < 3; i++ {
		sim.step()
	}
	st := sim.nodes["node-0"].node.Status()
	if st.Peers[0].State != PeerAlive {
		t.Fatalf("peer state %v after clean exchange, want alive", st.Peers[0].State)
	}

	// Silence node-1: it stops ticking (no reports) but node-0 keeps going.
	silent := 0
	for i := 0; i < 12; i++ {
		for _, id := range sim.ids {
			sn := sim.nodes[id]
			rate := sn.demand
			if sn.applied < rate {
				rate = sn.applied
			}
			sn.accepted += float64(rate) / 8 * simWindow.Seconds()
		}
		sim.now += simWindow
		sim.nodes["node-0"].node.Tick(sim.now)
		silent++
		st = sim.nodes["node-0"].node.Status()
		state := st.Peers[0].State
		age := time.Duration(silent) * simWindow
		want := classify(age, 3*simWindow, 10*simWindow)
		if state != want {
			t.Fatalf("after %d silent windows: state %v, want %v", silent, state, want)
		}
	}
	if st.Peers[0].State != PeerDead {
		t.Fatalf("peer never reached dead: %v", st.Peers[0].State)
	}
	if !st.Degraded {
		t.Fatal("node not degraded with a dead peer")
	}

	// Resurrection: one tick from the silent peer revives it.
	sim.nodes["node-1"].node.Tick(sim.now)
	st = sim.nodes["node-0"].node.Status()
	if st.Peers[0].State != PeerAlive {
		t.Fatalf("peer not resurrected by a valid report: %v", st.Peers[0].State)
	}
}

// TestClusterStaleAndCorruptFrames: duplicates are dropped by sequence
// number, corrupted frames are counted and ignored, and neither disturbs
// the share invariant.
func TestClusterStaleAndCorruptFrames(t *testing.T) {
	sim := newClusterSim(t, 2, nil)
	for i := 0; i < 5; i++ {
		sim.step()
		sim.assertInvariant()
	}
	n0 := sim.nodes["node-0"].node

	// Replay node-1's current report twice by hand.
	frame := EncodeReport("node-1", 1, 3, nil, nil) // seq 3 < current (5): stale
	if err := n0.Deliver(frame); err != nil {
		t.Fatalf("stale frame returned delivery error: %v", err)
	}
	st := n0.Status()
	if st.Peers[0].Stale == 0 {
		t.Fatal("stale replay not counted")
	}

	// A frame from a PREVIOUS incarnation is stale no matter how high its
	// seq: epoch 0 predates node-1's current boot (epoch 1).
	staleBefore := st.Peers[0].Stale
	if err := n0.Deliver(EncodeReport("node-1", 0, 999, nil, nil)); err != nil {
		t.Fatalf("old-incarnation frame returned delivery error: %v", err)
	}
	st = n0.Status()
	if st.Peers[0].Stale != staleBefore+1 {
		t.Fatal("old-incarnation replay not dropped as stale")
	}
	if st.Peers[0].LastSeq == 999 {
		t.Fatal("old-incarnation seq 999 overwrote the live sequence")
	}

	if err := n0.Deliver([]byte("garbage-not-a-frame")); err == nil {
		t.Fatal("garbage frame accepted")
	}
	if err := n0.Deliver(EncodeReport("node-9", 1, 99, nil, nil)); err == nil {
		t.Fatal("unknown-sender frame accepted")
	}
	st = n0.Status()
	if st.BadFrames != 2 {
		t.Fatalf("BadFrames = %d, want 2", st.BadFrames)
	}
	for i := 0; i < 5; i++ {
		sim.step()
		sim.assertInvariant()
	}
}

// TestClusterMigrateHandoff: when the ring changes, Migrate snapshots the
// moved aggregate and the new owner consumes it through OnTakeover.
func TestClusterMigrateHandoff(t *testing.T) {
	var mu sync.Mutex
	taken := map[string][]byte{}

	delivered := func(dst *Node) func([]byte) {
		return func(f []byte) { dst.Deliver(f) }
	}
	mk := func(self string, peers []string, tr Transport) *Node {
		n, err := New(Config{Self: self, Peers: peers, Transport: tr,
			Clock: func() time.Duration { return 0 },
			OnTakeover: func(agg string, state []byte) error {
				mu.Lock()
				defer mu.Unlock()
				taken[agg] = append([]byte(nil), state...)
				return nil
			}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	var linkAB *faultinject.NetLink
	trA := transportFunc(func(peer string, f []byte) error {
		if peer != "b" {
			return errors.New("unexpected peer")
		}
		linkAB.Send(0, f)
		return nil
	})
	a := mk("a", []string{"b"}, trA)
	b := mk("b", []string{"a"}, transportFunc(func(string, []byte) error { return nil }))
	linkAB = faultinject.NewNetLink(delivered(b), faultinject.NetPlan{})
	defer a.Close()
	defer b.Close()

	// Previously a was alone and owned everything; now the ring is {a,b}.
	prev := NewRing([]string{"a"})
	ids := aggIDs(64)
	wantMoved := 0
	for _, id := range ids {
		if a.Ring().Owner(id) == "b" {
			wantMoved++
		}
	}
	seqBefore := a.Status().Seq
	sent, err := a.Migrate(prev, ids, func(id string) ([]byte, error) {
		return []byte("state-of-" + id), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Handoffs ride their own sequence space: migrating dozens of
	// aggregates must not advance the report seq (which would make every
	// peer's echo look stale and drop the node into full fallback).
	if got := a.Status().Seq; got != seqBefore {
		t.Fatalf("Migrate advanced the report seq %d → %d", seqBefore, got)
	}
	if sent != wantMoved || sent == 0 {
		t.Fatalf("migrated %d aggregates, want %d (nonzero)", sent, wantMoved)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(taken) != wantMoved {
		t.Fatalf("new owner consumed %d handoffs, want %d", len(taken), wantMoved)
	}
	for id, state := range taken {
		if string(state) != "state-of-"+id {
			t.Fatalf("handoff state for %s corrupted: %q", id, state)
		}
	}
	if b.Status().Handoffs != int64(wantMoved) {
		t.Fatalf("Handoffs counter = %d, want %d", b.Status().Handoffs, wantMoved)
	}
}

// transportFunc adapts a function to the Transport interface.
type transportFunc func(peer string, frame []byte) error

func (f transportFunc) Send(peer string, frame []byte) error { return f(peer, frame) }

// TestClusterSendRetryBackoff: a transport that fails transiently is
// retried with backoff until it succeeds, and a permanently dead transport
// gives up after RetryMax attempts.
func TestClusterSendRetryBackoff(t *testing.T) {
	var mu sync.Mutex
	fails, sends := 2, 0
	tr := transportFunc(func(peer string, frame []byte) error {
		mu.Lock()
		defer mu.Unlock()
		sends++
		if sends <= fails {
			return errors.New("transient")
		}
		return nil
	})
	n, err := New(Config{Self: "a", Peers: []string{"b"}, Transport: tr,
		RetryBase: time.Millisecond, RetryMax: 5,
		Clock: func() time.Duration { return 0 }}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.Tick(0) // broadcast fails twice, then the retry loop succeeds
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		done := sends == fails+1
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry never succeeded: %d sends", sends)
		}
		time.Sleep(time.Millisecond)
	}
	n.Close()
}

// TestClusterMetricsFamilies: the exported families carry per-peer and
// per-aggregate samples with the expected names.
func TestClusterMetricsFamilies(t *testing.T) {
	sim := newClusterSim(t, 3, nil)
	for i := 0; i < 5; i++ {
		sim.step()
	}
	fams := sim.nodes["node-0"].node.MetricFamilies()
	byName := map[string]int{}
	for _, f := range fams {
		byName[f.Name] = len(f.Samples)
	}
	for name, want := range map[string]int{
		"bcpqp_peer_state":                     2,
		"bcpqp_peer_last_exchange_age_seconds": 2,
		"bcpqp_peer_reports_total":             2,
		"bcpqp_cluster_share_bps":              1,
		"bcpqp_cluster_fallback":               1,
		"bcpqp_cluster_bad_frames_total":       1,
		"bcpqp_cluster_handoffs_total":         1,
	} {
		if byName[name] != want {
			t.Fatalf("family %s has %d samples, want %d (families: %v)", name, byName[name], want, byName)
		}
	}
}

// TestClusterConfigValidation: the constructor rejects unusable configs.
func TestClusterConfigValidation(t *testing.T) {
	tr := transportFunc(func(string, []byte) error { return nil })
	if _, err := New(Config{Transport: tr}, nil); err == nil {
		t.Fatal("missing Self accepted")
	}
	if _, err := New(Config{Self: "a"}, nil); err == nil {
		t.Fatal("missing Transport accepted")
	}
	if _, err := New(Config{Self: "a", Transport: tr},
		[]SharedAggregate{{ID: "x"}}); err == nil {
		t.Fatal("shared aggregate without callbacks accepted")
	}
	if _, err := New(Config{Self: "a", Transport: tr},
		[]SharedAggregate{{ID: "x",
			Observed: func() (int64, bool) { return 0, true },
			Apply:    func(units.Rate, bool) error { return nil }}}); err == nil {
		t.Fatal("shared aggregate without a positive rate accepted")
	}
}

// TestClusterPeerRestartResync: a restarted peer (sequence numbers back to
// zero under a fresh boot epoch) is re-accepted by the cluster within a
// round trip. Without the epoch in the wire protocol its post-restart
// reports would all fail the seq-monotonic stale check until the new seq
// re-exceeded the pre-restart value — pinning every node at its r/N floor
// for roughly the peer's previous uptime.
func TestClusterPeerRestartResync(t *testing.T) {
	sim := newClusterSim(t, 3, nil)
	floor := simRate / 3
	sim.nodes["node-0"].demand = 80e6
	for i := 0; i < 30; i++ { // node-1's seq climbs to ~30
		sim.step()
		sim.assertInvariant()
	}
	if sim.nodes["node-0"].applied <= floor {
		t.Fatal("setup: grants never flowed")
	}

	// node-1 crashes; its grants age out on the freshness horizon and the
	// cluster degrades to floors.
	sim.stop("node-1")
	for i := 0; i < 3; i++ {
		sim.step()
		sim.assertInvariant()
	}
	if !sim.nodes["node-0"].fallback {
		t.Fatal("setup: cluster not degraded while node-1 is down")
	}

	// node-1 comes back: epoch 2, seq restarting at 1.
	sim.restart("node-1")
	for i := 0; i < 4; i++ {
		sim.step()
		sim.assertInvariant()
	}
	st := sim.nodes["node-0"].node.Status()
	for _, p := range st.Peers {
		if p.ID != "node-1" {
			continue
		}
		if p.State != PeerAlive {
			t.Fatalf("restarted peer is %v on node-0, want alive", p.State)
		}
		if p.Epoch != 2 {
			t.Fatalf("node-0 tracks node-1 epoch %d, want 2", p.Epoch)
		}
		if p.LastSeq >= 30 {
			t.Fatalf("node-0 still holds pre-restart seq %d for node-1", p.LastSeq)
		}
	}
	for _, id := range sim.ids {
		if sim.nodes[id].fallback {
			t.Fatalf("%s still in fallback 4 windows after node-1 restarted", id)
		}
	}
	// And the grant flow re-establishes, not just liveness.
	for i := 0; i < 20; i++ {
		sim.step()
		sim.assertInvariant()
	}
	if sim.nodes["node-0"].applied <= floor {
		t.Fatal("grants never resumed after peer restart")
	}
}

// TestClusterOmittedAggregateRevokesGrant: a fresh report that no longer
// carries an aggregate revokes any standing grant for it. Otherwise config
// skew (a peer restarted with a different shared set) leaves the grantee
// honoring a grant the grantor no longer holds back — over-admission the
// per-peer freshness check cannot see.
func TestClusterOmittedAggregateRevokesGrant(t *testing.T) {
	var now time.Duration
	var mu sync.Mutex
	var applied units.Rate
	a, err := New(Config{
		Self: "a", Peers: []string{"b"}, Window: simWindow,
		Transport: transportFunc(func(string, []byte) error { return nil }),
		Clock:     func() time.Duration { return now },
		Epoch:     7,
	}, []SharedAggregate{{
		ID: simAgg, Rate: simRate,
		Observed: func() (int64, bool) { return 0, true },
		Apply: func(s units.Rate, fb bool) error {
			mu.Lock()
			applied = s
			mu.Unlock()
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	floor := simRate / 2
	got := func() units.Rate {
		mu.Lock()
		defer mu.Unlock()
		return applied
	}
	deliver := func(seq uint64, aggs []AggReport) {
		echo := []Echo{{Peer: "a", Epoch: 7, Seq: a.Status().Seq}}
		if err := a.Deliver(EncodeReport("b", 5, seq, echo, aggs)); err != nil {
			t.Fatal(err)
		}
	}

	a.Tick(now) // seq 1
	deliver(1, []AggReport{{ID: simAgg, Grants: []Grant{{To: "a", Bps: 10e6}}}})
	now += simWindow
	a.Tick(now)
	if want := floor + 10e6; got() != want {
		t.Fatalf("granted share %.0f, want %.0f", float64(got()), float64(want))
	}

	// b's next report is fresh and echo-valid but omits the aggregate.
	deliver(2, nil)
	now += simWindow
	a.Tick(now)
	if got() > floor {
		t.Fatalf("share %.0f still honors the revoked grant (floor %.0f)", float64(got()), float64(floor))
	}
}

// TestClusterRunAppliesInitialShare: Run's first tick is synchronous, so a
// library user gets the conservative floor applied before Run returns — not
// after one full window during which the engine would keep enforcing the
// full configured rate (transient N·r over-admission).
func TestClusterRunAppliesInitialShare(t *testing.T) {
	var mu sync.Mutex
	var applied units.Rate
	var fallback bool
	calls := 0
	n, err := New(Config{
		Self: "a", Peers: []string{"b"},
		Transport: transportFunc(func(string, []byte) error { return nil }),
		Clock:     func() time.Duration { return 0 },
	}, []SharedAggregate{{
		ID: simAgg, Rate: simRate,
		Observed: func() (int64, bool) { return 0, true },
		Apply: func(s units.Rate, fb bool) error {
			mu.Lock()
			applied, fallback, calls = s, fb, calls+1
			mu.Unlock()
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	mu.Lock()
	if calls == 0 {
		t.Fatal("Run returned without applying an initial share")
	}
	if applied != simRate/2 {
		t.Fatalf("initial share %.0f, want the floor %.0f", float64(applied), float64(simRate/2))
	}
	if !fallback {
		t.Fatal("initial share not marked fallback with unheard peers")
	}
	mu.Unlock()
	n.Close()
}
