package cluster

// Conformance roll-up tests: the cluster-wide audit figures (Σ applied vs
// the bound, grant churn, convergence episodes, report staleness) on the
// same deterministic sim the exchange tests use.

import (
	"testing"
	"time"
)

func nodeAggStatus(t *testing.T, n *Node) AggStatus {
	t.Helper()
	st := n.Status()
	if len(st.Shared) != 1 {
		t.Fatalf("Status has %d shared aggregates, want 1", len(st.Shared))
	}
	return st.Shared[0]
}

// TestClusterConformanceClean: on a healthy cluster the roll-up shows the
// invariant holding — Σ applied within the bound, zero overcommit ticks,
// bounded report staleness — while the convergence-to-steady-state episode
// and its grant churn are visible in the digest and counter.
func TestClusterConformanceClean(t *testing.T) {
	sim := newClusterSim(t, 3, nil)
	sim.nodes["node-0"].demand = 80e6
	for i := 0; i < 20; i++ {
		sim.step()
		sim.assertInvariant()
	}
	for _, id := range sim.ids {
		a := nodeAggStatus(t, sim.nodes[id].node)
		if a.Overcommits != 0 {
			t.Fatalf("%s: clean run counted %d overcommit ticks (sum %.0f vs bound %.0f)",
				id, a.Overcommits, float64(a.SumApplied), float64(a.Rate))
		}
		if float64(a.SumApplied) > float64(a.Rate)*(1+1e-3) {
			t.Fatalf("%s: rolled-up Σ applied %.0f exceeds bound %.0f",
				id, float64(a.SumApplied), float64(a.Rate))
		}
		if a.SumApplied <= 0 {
			t.Fatalf("%s: roll-up never populated", id)
		}
		if a.GrantChurn == 0 && id != "node-0" {
			// Surplus nodes replanned grants while budget flowed to node-0.
			t.Fatalf("%s: no grant churn recorded during convergence", id)
		}
		st := sim.nodes[id].node.Status()
		if st.MaxReportAge < 0 || st.MaxReportAge > 2*simWindow {
			t.Fatalf("%s: max report age %v, want within two windows", id, st.MaxReportAge)
		}
	}
	// The initial ramp (floor → converged shares) is a closed convergence
	// episode on the loaded node.
	if conv := nodeAggStatus(t, sim.nodes["node-0"].node).Convergence; conv.Total() == 0 {
		t.Fatal("node-0: convergence digest empty after share ramp")
	}
}

// TestClusterConformanceOvercommitOnStaleness: partitioning the loaded
// node leaves its peers holding a stale high applied figure for it while
// everyone's local share moves — exactly the regime where the true
// cluster-wide sum is unknowable, and the roll-up must flag the potential
// overcommit rather than report the stale sum as fine.
func TestClusterConformanceOvercommitOnStaleness(t *testing.T) {
	sim := newClusterSim(t, 3, nil)
	sim.nodes["node-0"].demand = 80e6
	sim.nodes["node-1"].demand = 5e6
	sim.nodes["node-2"].demand = 5e6
	for i := 0; i < 20; i++ {
		sim.step()
	}
	if a := nodeAggStatus(t, sim.nodes["node-0"].node); float64(a.Applied) <= float64(simRate)/3 {
		t.Fatalf("setup: node-0 share %.0f never rose above the floor", float64(a.Applied))
	}

	// Partition node-0 both ways. Its peers keep its last report — a high
	// applied share — while their own shares move through fallback; the sum
	// they roll up transiently exceeds r, and that must be counted.
	sim.cutAll("node-0", true, true)
	for i := 0; i < 12; i++ {
		sim.step()
		sim.assertInvariant() // the REAL sum stays within the bound throughout
	}
	flagged := false
	for _, id := range []string{"node-1", "node-2"} {
		if nodeAggStatus(t, sim.nodes[id].node).Overcommits > 0 {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("no surviving peer flagged the stale-report overcommit window")
	}
	// The staleness the roll-up is built on is visible next to it.
	if st := sim.nodes["node-1"].node.Status(); st.MaxReportAge < 3*simWindow {
		t.Fatalf("node-1: max report age %v does not reflect the partition", st.MaxReportAge)
	}

	// Healing reconverges and stops the overcommit count from growing.
	sim.healAll("node-0")
	for i := 0; i < 10; i++ {
		sim.step()
		sim.assertInvariant()
	}
	before := nodeAggStatus(t, sim.nodes["node-1"].node).Overcommits
	for i := 0; i < 10; i++ {
		sim.step()
	}
	if after := nodeAggStatus(t, sim.nodes["node-1"].node).Overcommits; after != before {
		t.Fatalf("overcommit ticks still accruing after heal: %d -> %d", before, after)
	}
}

// TestClusterConformanceMetricsFamilies: the conformance roll-up exports
// through MetricFamilies next to the existing exchange families.
func TestClusterConformanceMetricsFamilies(t *testing.T) {
	sim := newClusterSim(t, 3, nil)
	sim.nodes["node-0"].demand = 80e6
	for i := 0; i < 8; i++ {
		sim.step()
	}
	fams := sim.nodes["node-0"].node.MetricFamilies()
	byName := map[string]int{}
	var headroom, bound, sum float64
	var convSamples int
	for _, f := range fams {
		byName[f.Name] = len(f.Samples)
		switch f.Name {
		case "bcpqp_cluster_conformance_headroom_bps":
			headroom = f.Samples[0].Value
		case "bcpqp_cluster_conformance_bound_bps":
			bound = f.Samples[0].Value
		case "bcpqp_cluster_conformance_applied_sum_bps":
			sum = f.Samples[0].Value
		case "bcpqp_cluster_convergence_seconds":
			convSamples = len(f.Samples)
		}
	}
	for name, want := range map[string]int{
		"bcpqp_cluster_conformance_applied_sum_bps":          1,
		"bcpqp_cluster_conformance_bound_bps":                1,
		"bcpqp_cluster_conformance_headroom_bps":             1,
		"bcpqp_cluster_conformance_overcommit_windows_total": 1,
		"bcpqp_cluster_grant_churn_total":                    1,
		"bcpqp_cluster_report_age_max_seconds":               1,
	} {
		if byName[name] != want {
			t.Fatalf("family %s has %d samples, want %d (families: %v)", name, byName[name], want, byName)
		}
	}
	if convSamples != 1 {
		t.Fatalf("convergence histogram has %d samples, want 1", convSamples)
	}
	if bound != float64(simRate) {
		t.Fatalf("bound gauge = %.0f, want %.0f", bound, float64(simRate))
	}
	if got := bound - sum; got != headroom {
		t.Fatalf("headroom %.0f != bound-sum %.0f", headroom, got)
	}
}

// TestClusterConvergenceEpisodeDuration: an isolated share change produces
// one convergence episode of about one window (change tick → the next
// unchanged tick), landing in the digest within its relative error.
func TestClusterConvergenceEpisodeDuration(t *testing.T) {
	sim := newClusterSim(t, 2, nil)
	for i := 0; i < 10; i++ { // settle
		sim.step()
	}
	base := nodeAggStatus(t, sim.nodes["node-0"].node).Convergence.Total()
	sim.nodes["node-0"].demand = 70e6 // shares move, then settle again
	for i := 0; i < 10; i++ {
		sim.step()
	}
	conv := nodeAggStatus(t, sim.nodes["node-0"].node).Convergence
	if conv.Total() <= base {
		t.Fatal("demand shift closed no convergence episode")
	}
	// Episodes are whole windows; the longest plausible here is a few.
	if max := conv.Quantile(1); time.Duration(max) > 8*simWindow {
		t.Fatalf("convergence episode %v implausibly long", time.Duration(max))
	}
	if min := conv.Quantile(0); time.Duration(min) < simWindow/2 {
		t.Fatalf("convergence episode %v shorter than a window", time.Duration(min))
	}
}
