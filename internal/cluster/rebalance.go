// The share calculus: how a global drain rate r is split across N nodes so
// that the cluster-wide Theorem-1 bound holds under ANY message delivery
// schedule — loss, duplication, reordering, unbounded delay, one-way
// partitions, split brain.
//
// Naive symmetric rebalancing (every node recomputes Σr_i = r from its own
// view of everyone's demand) is unsafe: two nodes with skewed views can
// both conclude they deserve the slack, and for a few windows the cluster
// enforces more than r. Leader-based assignment moves the problem to
// split brain. This package instead uses conservative budget grants,
// HTB-style borrowing (PAPERS.md: arxiv 2109.12879) generalized from tree
// siblings to machines:
//
//   - Every node statically owns the floor F = r/N. A node never exceeds
//     its floor except by explicit grants from peers.
//
//   - A node with surplus (observed demand well under its floor) cedes
//     budget via per-peer grants in its report, and HOLDS the ceded amount
//     out of its own share for holdTicks windows — per grantee, the
//     maximum granted to that peer over the hold window stays held.
//
//   - A grantee honors a peer's grant only while the carrying report is
//     FRESH (received within freshFor) and ECHO-VALID: the report echoes a
//     recent sequence number of OURS (within echoSlack ticks), proving the
//     grantor heard us recently and bounding the report's age even under
//     arbitrary network delay — the TCP-timestamp trick applied to budget.
//
// Safety: an honored grant g from peer P was carried by a report created
// at most echoSlack of our ticks before delivery and honored for at most
// freshFor after, a horizon < holdTicks windows; P holds max-over-window
// per grantee, so even when different grantees honor grants from different
// reports of P, the sum of honored grants from P never exceeds what P is
// currently holding back. Hence at every instant
//
//	Σ_i applied_i  ≤  Σ_i (F − held_i) + Σ_i honored_i  ≤  N·F  =  r.
//
// Liveness degrades safely: silence, corruption (rejected frames), or
// partition stop the freshness clock, every grant dies within one window
// of the first missed exchange, and each node is back at the conservative
// static floor r/N — the FailClosed posture — while its own held grants
// expire after holdTicks windows.
package cluster

import "bcpqp/internal/units"

const (
	// holdTicks is how many windows a grantor holds a ceded amount. It must
	// exceed the honor horizon: echoSlack ticks of report age at delivery
	// plus freshTicks of honoring after, plus one tick of phase skew.
	holdTicks = 6
	// echoSlack is how many of our own ticks a peer's echo may lag before
	// its report stops being honored.
	echoSlack = 2
	// freshFor is the honor window after receiving a report, in units of
	// the exchange window (1.5 → a report dies between the first and second
	// missed exchange).
	freshForNum, freshForDen = 3, 2
	// headroom scales the sender's own observed rate when computing
	// surplus: grant away only what 1.25× current demand cannot use, so a
	// local demand swing never lands on a floor already ceded.
	headroomNum, headroomDen = 5, 4
	// needNum/needDen: a peer is needy when its observed rate is ≥ 85% of
	// the static floor — it is pushing against at least its guaranteed
	// share. Comparing against the peer's APPLIED share instead would
	// oscillate: observed lags applied by one window, so the tick after a
	// grant lands the peer looks idle relative to its raised cap and the
	// grant is withdrawn, period-2 forever.
	needNum, needDen = 85, 100
	// marginDen reserves 1/32 of the floor from granting, so rounding and
	// estimator jitter cannot cede the entire floor.
	marginDen = 32
)

// peerDemand is one peer's state as seen by the grant planner. The slice
// handed to planGrants is preallocated and ordered by sorted peer ID, so
// planning is deterministic and allocation-free.
type peerDemand struct {
	honored  bool       // report fresh + echo-valid right now
	observed units.Rate // peer's reported accept rate for this aggregate
}

// planGrants computes this node's outbound grants for one shared aggregate
// directly into its hold ring: ring[k*holdTicks+slot] receives the rate
// ceded to peer k this tick. Grantable surplus = floor − headroom·observed
// − floor/marginDen, split among honored needy peers proportionally to
// their observed rates. No allocation.
func planGrants(floor, observed units.Rate, peers []peerDemand, ring []units.Rate, slot int) {
	for k := range peers {
		ring[k*holdTicks+slot] = 0
	}
	surplus := floor - observed*headroomNum/headroomDen - floor/marginDen
	if surplus <= 0 {
		return
	}
	var needTotal units.Rate
	for k := range peers {
		p := &peers[k]
		if p.honored && p.observed*needDen >= floor*needNum {
			// +1 bit/s so a needy peer reporting zero (cold estimator)
			// still draws a share of the split.
			needTotal += p.observed + 1
		}
	}
	if needTotal <= 0 {
		return
	}
	for k := range peers {
		p := &peers[k]
		if p.honored && p.observed*needDen >= floor*needNum {
			ring[k*holdTicks+slot] = surplus * (p.observed + 1) / needTotal
		}
	}
}

// heldOut returns the budget a grantor must keep holding: per grantee, the
// maximum granted over the hold window, summed over grantees. ring is laid
// out as [peer][holdTicks].
func heldOut(ring []units.Rate, nPeers int) units.Rate {
	var held units.Rate
	for k := 0; k < nPeers; k++ {
		var m units.Rate
		for t := 0; t < holdTicks; t++ {
			if v := ring[k*holdTicks+t]; v > m {
				m = v
			}
		}
		held += m
	}
	return held
}

// applyBound computes the share this node may enforce: floor, minus what it
// is holding for grantees, plus honored inbound grants, clamped to
// [0, rate]. The clamp to rate is pure paranoia — the calculus already
// bounds the sum — but a corrupted-but-decodable grant value must not be
// able to raise a node above the global bound on its own.
func applyBound(floor, held, honoredIn, rate units.Rate) units.Rate {
	share := floor - held + honoredIn
	if share < 0 {
		share = 0
	}
	if share > rate {
		share = rate
	}
	return share
}
