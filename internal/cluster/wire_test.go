package cluster

import (
	"errors"
	"strings"
	"testing"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/units"
)

func sampleReport() ([]byte, string, uint64) {
	echoes := []Echo{{Peer: "node-b", Epoch: 1700, Seq: 41}, {Peer: "node-c", Epoch: 1701, Seq: 39}}
	aggs := []AggReport{
		{ID: "tenant-1", Observed: 80e6, Applied: 90e6, Grants: []Grant{
			{To: "node-b", Bps: 5e6}, {To: "node-c", Bps: 2.5e6},
		}},
		{ID: "tenant-2", Observed: 0, Applied: 33.3e6},
	}
	return EncodeReport("node-a", 1699, 42, echoes, aggs), "node-a", 42
}

// TestWireReportRoundtrip: encode → decode is lossless.
func TestWireReportRoundtrip(t *testing.T) {
	frame, sender, seq := sampleReport()
	f, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Sender != sender || f.Epoch != 1699 || f.Seq != seq || f.Type != typeReport {
		t.Fatalf("header mismatch: %+v", f)
	}
	if len(f.Echoes) != 2 || f.Echoes[0] != (Echo{Peer: "node-b", Epoch: 1700, Seq: 41}) {
		t.Fatalf("echoes: %+v", f.Echoes)
	}
	if len(f.Aggs) != 2 {
		t.Fatalf("aggs: %+v", f.Aggs)
	}
	a := f.Aggs[0]
	if a.ID != "tenant-1" || a.Observed != 80e6 || a.Applied != 90e6 ||
		len(a.Grants) != 2 || a.Grants[1] != (Grant{To: "node-c", Bps: 2.5e6}) {
		t.Fatalf("agg 0: %+v", a)
	}
	if f.Aggs[1].Observed != 0 || len(f.Aggs[1].Grants) != 0 {
		t.Fatalf("agg 1: %+v", f.Aggs[1])
	}
}

// TestWireHandoffRoundtrip: handoff frames carry the state blob intact and
// copied (not aliasing the input).
func TestWireHandoffRoundtrip(t *testing.T) {
	state := []byte("BQSN-pretend-snapshot-blob")
	frame := EncodeHandoff("node-a", 1699, 7, "tenant-9", state)
	f, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Type != typeHandoff || f.Sender != "node-a" || f.Epoch != 1699 || f.Seq != 7 || f.AggID != "tenant-9" {
		t.Fatalf("header: %+v", f)
	}
	if string(f.State) != string(state) {
		t.Fatalf("state: %q", f.State)
	}
	frame[len(frame)-1] ^= 0xff
	if string(f.State) != string(state) {
		t.Fatal("decoded state aliases the input frame")
	}
}

// TestWireRejections: every malformation class rejects with ErrBadFrame
// and a nil frame — corruption must degrade to the silence path.
func TestWireRejections(t *testing.T) {
	good, _, _ := sampleReport()
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"short magic", good[:3]},
		{"bad magic", append([]byte("\x04\x00\x00\x00XXXX"), good[8:]...)},
		{"version skew", func() []byte {
			f := append([]byte(nil), good...)
			f[8] = 99 // version byte follows the length-prefixed magic
			return f
		}()},
		{"unknown type", func() []byte {
			f := append([]byte(nil), good...)
			f[9] = 77
			return f
		}()},
		{"truncated mid-agg", good[:len(good)-5]},
		{"trailing bytes", append(append([]byte(nil), good...), 0xde, 0xad)},
		{"oversized id", func() []byte {
			// Hand-rolled: EncodeReport clamps IDs, so build a frame whose
			// sender id exceeds the cap directly.
			var e enforcer.Enc
			e.Bytes([]byte(frameMagic))
			e.U8(wireVersion)
			e.U8(typeReport)
			e.Bytes([]byte(strings.Repeat("x", maxIDLen+1)))
			e.U64(1) // epoch
			e.U64(1) // seq
			e.U8(0)
			e.U8(0)
			return e.Out()
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := DecodeFrame(tc.frame)
			if err == nil {
				t.Fatalf("decoded successfully: %+v", f)
			}
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("error %v does not wrap ErrBadFrame", err)
			}
			if f != nil {
				t.Fatal("non-nil frame on error")
			}
		})
	}
}

// TestWireRejectsNegativeAndNaNRates: decodable frames with semantically
// poisonous values (negative shares, NaN) must also reject.
func TestWireRejectsNegativeAndNaNRates(t *testing.T) {
	neg := EncodeReport("a", 1, 1, nil, []AggReport{{ID: "t", Observed: -5, Applied: 1}})
	if _, err := DecodeFrame(neg); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("negative observed accepted: %v", err)
	}
	negGrant := EncodeReport("a", 1, 1, nil, []AggReport{{ID: "t", Grants: []Grant{{To: "b", Bps: -1}}}})
	if _, err := DecodeFrame(negGrant); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("negative grant accepted: %v", err)
	}
	nan := EncodeReport("a", 1, 1, nil, []AggReport{{ID: "t", Observed: units.Rate(nanRate())}})
	if _, err := DecodeFrame(nan); err == nil {
		t.Fatal("NaN rate accepted")
	}
}

func nanRate() float64 {
	z := 0.0
	return z / z
}

// TestWireEmptySenderRejected: an ID-free frame cannot attribute state.
func TestWireEmptySenderRejected(t *testing.T) {
	if _, err := DecodeFrame(EncodeReport("", 1, 1, nil, nil)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty sender accepted: %v", err)
	}
}
