// Operational surface: structured cluster status for the proxy's /cluster
// endpoint and Prometheus metric families (per-peer state gauge,
// last-exchange age, exchange hygiene counters, per-aggregate shares) for
// appending to the engine's /metrics exposition.
package cluster

import (
	"time"

	"bcpqp/internal/obs"
	"bcpqp/internal/units"
)

// PeerStatus is one peer's liveness and exchange hygiene.
type PeerStatus struct {
	ID              string
	State           PeerState
	LastExchangeAge time.Duration // -1 until the first valid report
	Epoch           uint64        // boot incarnation of the newest report
	LastSeq         uint64
	Reports         int64 // valid reports accepted
	Stale           int64 // duplicates / old-incarnation / reordered-behind dropped
}

// AggStatus is one shared aggregate's exchange state on this node.
type AggStatus struct {
	ID         string
	Rate       units.Rate // global bound r
	Floor      units.Rate // static fallback share r/N
	Observed   units.Rate // local accept rate, last window
	Applied    units.Rate // share currently enforced locally
	GrantedIn  units.Rate // honored inbound grants at last rebalance
	GrantedOut units.Rate // budget held back for grantees
	Fallback   bool       // enforcing the conservative floor (degraded)

	// Conformance roll-up (updated every Rebalance tick).
	SumApplied  units.Rate         // local share + Σ newest peer-reported applied
	Overcommits int64              // ticks where SumApplied exceeded Rate (+0.1%)
	GrantChurn  int64              // (tick, peer) slots whose planned grant changed
	Convergence obs.DigestSnapshot // share-convergence episode durations, ns
}

// Status is a point-in-time view of the node for operators.
type Status struct {
	Self      string
	Epoch     uint64
	Seq       uint64
	Window    time.Duration
	Peers     []PeerStatus
	Shared    []AggStatus
	BadFrames int64
	Handoffs  int64
	Degraded  bool
	// MaxReportAge is the oldest LastExchangeAge across peers (-1 when no
	// peer has ever reported): the staleness bound on every cluster-wide
	// conformance figure derived from peer reports.
	MaxReportAge time.Duration
}

// Status captures the node's current exchange state.
func (n *Node) Status() Status {
	now := n.cfg.Clock()
	n.mu.Lock()
	defer n.mu.Unlock()
	st := Status{
		Self:      n.cfg.Self,
		Epoch:     n.epoch,
		Seq:       n.seq,
		Window:    n.cfg.Window,
		BadFrames: n.badFrames,
		Handoffs:  n.handoffs,
	}
	st.MaxReportAge = -1
	for _, p := range n.peerList {
		age := time.Duration(-1)
		if p.everHeard {
			age = now - p.lastHeard
		}
		if age > st.MaxReportAge {
			st.MaxReportAge = age
		}
		st.Peers = append(st.Peers, PeerStatus{
			ID: p.id, State: p.state, LastExchangeAge: age,
			Epoch: p.epoch, LastSeq: p.lastSeq, Reports: p.reports, Stale: p.stale,
		})
	}
	for _, id := range n.sharedIDs {
		s := n.shared[id]
		st.Shared = append(st.Shared, AggStatus{
			ID: id, Rate: s.cfg.Rate, Floor: s.floor,
			Observed: s.observed, Applied: s.applied,
			GrantedIn: s.grantedIn, GrantedOut: heldOut(s.grantOut, len(n.peerList)),
			Fallback:   s.fallback,
			SumApplied: s.sumApplied, Overcommits: s.overcommits,
			GrantChurn: s.grantChurn, Convergence: s.convD.Snapshot(),
		})
		if s.fallback {
			st.Degraded = true
		}
	}
	return st
}

// MetricFamilies renders the node's exchange state as Prometheus metric
// families, ready to append to the engine's Metrics snapshot so one
// /metrics scrape covers datapath and cluster alike.
func (n *Node) MetricFamilies() []obs.Family {
	st := n.Status()
	peerState := obs.Family{
		Name: "bcpqp_peer_state", Type: "gauge",
		Help: "Cluster peer liveness (0=alive 1=suspect 2=dead).",
	}
	peerAge := obs.Family{
		Name: "bcpqp_peer_last_exchange_age_seconds", Type: "gauge",
		Help: "Seconds since the last valid budget-exchange report from the peer (-1 before the first).",
	}
	peerReports := obs.Family{
		Name: "bcpqp_peer_reports_total", Type: "counter",
		Help: "Valid budget-exchange reports accepted from the peer.",
	}
	peerStale := obs.Family{
		Name: "bcpqp_peer_stale_reports_total", Type: "counter",
		Help: "Duplicate or reordered-behind reports dropped by sequence number.",
	}
	for _, p := range st.Peers {
		lbl := []obs.Label{{Name: "peer", Value: p.ID}}
		peerState.Samples = append(peerState.Samples, obs.Sample{Labels: lbl, Value: float64(p.State)})
		peerAge.Samples = append(peerAge.Samples, obs.Sample{Labels: lbl, Value: p.LastExchangeAge.Seconds()})
		peerReports.Samples = append(peerReports.Samples, obs.Sample{Labels: lbl, Value: float64(p.Reports)})
		peerStale.Samples = append(peerStale.Samples, obs.Sample{Labels: lbl, Value: float64(p.Stale)})
	}
	share := obs.Family{
		Name: "bcpqp_cluster_share_bps", Type: "gauge",
		Help: "Locally enforced share of the shared aggregate's global rate, bits/sec.",
	}
	fallback := obs.Family{
		Name: "bcpqp_cluster_fallback", Type: "gauge",
		Help: "1 when the aggregate is on its conservative static r/N share because the exchange is degraded.",
	}
	grantedIn := obs.Family{
		Name: "bcpqp_cluster_granted_in_bps", Type: "gauge",
		Help: "Honored inbound budget grants, bits/sec.",
	}
	grantedOut := obs.Family{
		Name: "bcpqp_cluster_granted_out_bps", Type: "gauge",
		Help: "Budget held back for grants ceded to peers, bits/sec.",
	}
	sumApplied := obs.Family{
		Name: "bcpqp_cluster_conformance_applied_sum_bps", Type: "gauge",
		Help: "Cluster-wide sum of applied shares (local + newest peer reports), bits/sec.",
	}
	bound := obs.Family{
		Name: "bcpqp_cluster_conformance_bound_bps", Type: "gauge",
		Help: "The shared aggregate's global rate bound r, bits/sec.",
	}
	headroom := obs.Family{
		Name: "bcpqp_cluster_conformance_headroom_bps", Type: "gauge",
		Help: "Global bound minus the cluster-wide applied sum (negative = overcommitted), bits/sec.",
	}
	overcommit := obs.Family{
		Name: "bcpqp_cluster_conformance_overcommit_windows_total", Type: "counter",
		Help: "Exchange ticks where the cluster-wide applied sum exceeded the global bound (+0.1% tolerance).",
	}
	churn := obs.Family{
		Name: "bcpqp_cluster_grant_churn_total", Type: "counter",
		Help: "Per-peer planned-grant changes across rebalance ticks (grant-calculus stability).",
	}
	var convAcc obs.DigestSnapshot
	for _, a := range st.Shared {
		lbl := []obs.Label{{Name: "aggregate", Value: a.ID}}
		share.Samples = append(share.Samples, obs.Sample{Labels: lbl, Value: float64(a.Applied)})
		fb := 0.0
		if a.Fallback {
			fb = 1
		}
		fallback.Samples = append(fallback.Samples, obs.Sample{Labels: lbl, Value: fb})
		grantedIn.Samples = append(grantedIn.Samples, obs.Sample{Labels: lbl, Value: float64(a.GrantedIn)})
		grantedOut.Samples = append(grantedOut.Samples, obs.Sample{Labels: lbl, Value: float64(a.GrantedOut)})
		sumApplied.Samples = append(sumApplied.Samples, obs.Sample{Labels: lbl, Value: float64(a.SumApplied)})
		bound.Samples = append(bound.Samples, obs.Sample{Labels: lbl, Value: float64(a.Rate)})
		headroom.Samples = append(headroom.Samples, obs.Sample{Labels: lbl, Value: float64(a.Rate - a.SumApplied)})
		overcommit.Samples = append(overcommit.Samples, obs.Sample{Labels: lbl, Value: float64(a.Overcommits)})
		churn.Samples = append(churn.Samples, obs.Sample{Labels: lbl, Value: float64(a.GrantChurn)})
		convAcc = convAcc.Merge(a.Convergence)
	}
	reportAge := obs.Family{
		Name: "bcpqp_cluster_report_age_max_seconds", Type: "gauge",
		Help:    "Age of the stalest peer report feeding the conformance roll-up (-1 before any report).",
		Samples: []obs.Sample{{Value: st.MaxReportAge.Seconds()}},
	}
	convHist := convAcc.Hist(1e-9)
	convergence := obs.Family{
		Name: "bcpqp_cluster_convergence_seconds", Type: "histogram",
		Help:    "Share-convergence episode durations: from a share change to the next unchanged rebalance tick.",
		Samples: []obs.Sample{{Hist: &convHist}},
	}
	hygiene := obs.Family{
		Name: "bcpqp_cluster_bad_frames_total", Type: "counter",
		Help:    "Frames rejected by the wire decoder or from unknown senders.",
		Samples: []obs.Sample{{Value: float64(st.BadFrames)}},
	}
	handoffs := obs.Family{
		Name: "bcpqp_cluster_handoffs_total", Type: "counter",
		Help:    "Aggregate state handoffs consumed after ring changes.",
		Samples: []obs.Sample{{Value: float64(st.Handoffs)}},
	}
	return []obs.Family{peerState, peerAge, peerReports, peerStale,
		share, fallback, grantedIn, grantedOut,
		sumApplied, bound, headroom, overcommit, churn, reportAge, convergence,
		hygiene, handoffs}
}
