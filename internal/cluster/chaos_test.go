package cluster

// Chaos suite: the cluster-wide enforcement invariant under injected
// network faults. Two layers:
//
//   - TestChaosClusterShareInvariant drives the virtual-time sim through
//     seeded fault schedules (loss, duplication, reordering, delay beyond
//     the freshness horizon, one-way and full partitions) and asserts
//     after EVERY tick that Σ applied shares ≤ r, that partitioned nodes
//     land on the conservative floor within one window of the first
//     missed exchange, and that the exchange re-establishes after heal.
//
//   - TestChaosClusterAcceptedBytes runs three REAL engines (tbf
//     enforcers, concurrent traffic, shares applied through the in-band
//     SetRate lane) under a lossy in-memory network and reconciles ground
//     truth: cluster-wide accepted bytes never exceed r·Δ plus per-node
//     burst allowances. Run under -race by the chaos CI job.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcpqp/internal/faultinject"
	"bcpqp/internal/mbox"
	"bcpqp/internal/packet"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// TestChaosClusterShareInvariant: for every fault schedule the per-tick
// share-sum invariant holds, traffic stays bounded by the fluid model, and
// scripted partitions degrade and recover on the promised timeline.
func TestChaosClusterShareInvariant(t *testing.T) {
	const rounds = 120
	floor := simRate / 3

	type scenario struct {
		name       string
		plan       func(from, to string) faultinject.NetPlan
		script     func(sim *clusterSim, step int)
		wantFaults bool
	}
	planAll := func(p faultinject.NetPlan) func(from, to string) faultinject.NetPlan {
		return func(from, to string) faultinject.NetPlan {
			q := p
			q.Seed = hash64(from + "→" + to)
			return q
		}
	}
	scenarios := []scenario{
		{name: "heavy-loss", plan: planAll(faultinject.NetPlan{Drop: 0.30}), wantFaults: true},
		{name: "dup-reorder", plan: planAll(faultinject.NetPlan{Duplicate: 0.25, Reorder: 0.35}), wantFaults: true,
			// Demand migrates mid-run: reclaim and re-grant under reordering.
			script: func(sim *clusterSim, step int) {
				if step == 60 {
					sim.nodes["node-0"].demand = 0
					sim.nodes["node-1"].demand = 80e6
				}
			}},
		{name: "delay-past-freshness", plan: planAll(faultinject.NetPlan{Delay: 0.5, DelayBy: 3 * simWindow / 2}), wantFaults: true},
		{name: "compound", plan: planAll(faultinject.NetPlan{Drop: 0.15, Duplicate: 0.15, Delay: 0.25, DelayBy: simWindow, Reorder: 0.20}), wantFaults: true},
		{name: "oneway-flap",
			// Asymmetric partitions: node-0 can talk but not hear, then the
			// reverse. The echo rule must kill grants both ways.
			script: func(sim *clusterSim, step int) {
				switch step {
				case 20:
					sim.cutAll("node-0", false, true) // node-0 goes deaf
				case 40:
					sim.healAll("node-0")
				case 70:
					sim.cutAll("node-0", true, false) // node-0 goes mute
				case 90:
					sim.healAll("node-0")
				}
			}},
		{name: "full-partition-heal",
			script: func(sim *clusterSim, step int) {
				switch step {
				case 30:
					sim.cutAll("node-0", true, true)
				case 32:
					// One window after the first missed exchange: everyone
					// must be on the conservative floor.
					for id, sn := range sim.nodes {
						if !sn.fallback {
							sim.t.Fatalf("step 32: %s not in fallback after full partition", id)
						}
						if sn.applied > floor*(1+1e-9) {
							sim.t.Fatalf("step 32: %s still enforcing %.0f > floor", id, float64(sn.applied))
						}
					}
				case 70:
					sim.healAll("node-0")
				}
			}},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			sim := newClusterSim(t, 3, sc.plan)
			sim.nodes["node-0"].demand = 80e6
			grantTicks := 0
			for step := 0; step < rounds; step++ {
				if sc.script != nil {
					sc.script(sim, step)
				}
				sim.step()
				sim.assertInvariant()
				if step >= 10 {
					for _, id := range sim.ids {
						if sim.nodes[id].applied > floor*6/5 {
							grantTicks++
							break
						}
					}
				}
			}
			// Fluid-model ground truth: with Σ applied ≤ r at every tick, the
			// cluster cannot have accepted more than r·T.
			var total float64
			for _, id := range sim.ids {
				total += sim.nodes[id].accepted
			}
			bound := float64(simRate) / 8 * (simWindow * rounds).Seconds() * (1 + 1e-9)
			if total > bound {
				t.Fatalf("cluster accepted %.0f bytes > r·T = %.0f", total, bound)
			}
			// The exchange must end alive: no wedged share state, and the
			// needy node above its floor on scenarios without a standing cut.
			var injected int64
			for _, m := range sim.links {
				for _, l := range m {
					injected += l.InjectedNet()
				}
			}
			if sc.wantFaults && injected == 0 {
				t.Fatal("fault plan injected nothing — scenario is vacuous")
			}
			// Liveness: a missed exchange intentionally collapses grants for
			// that tick (safety over utilization), so under lossy plans assert
			// the exchange kept WORKING — grants flowed a healthy fraction of
			// the run — rather than any single tick's state.
			if grantTicks < rounds/10 {
				t.Fatalf("grants flowed on only %d/%d ticks — exchange effectively dead", grantTicks, rounds-10)
			}
			// On clean networks the end state is deterministic: the needy node
			// must finish re-established above its floor.
			if sc.plan == nil {
				if sn := sim.nodes["node-0"]; sn.applied <= floor {
					t.Fatalf("needy node-0 ended at %.0f ≤ floor %.0f — exchange never re-established", float64(sn.applied), float64(floor))
				}
			}
		})
	}
}

// TestChaosClusterAcceptedBytes: three real engines under a lossy network.
// Ground truth reconciliation — the cluster-wide accepted byte count stays
// within r·Δ plus per-node bucket bursts, shares only move through the
// in-band ApplyShare lane, and no shard wedges.
func TestChaosClusterAcceptedBytes(t *testing.T) {
	const (
		nNodes  = 3
		aggID   = "shared-tenant"
		rate    = units.Rate(24e6) // global r: 24 Mbit/s
		bucket  = 16 * units.MSS
		window  = 25 * time.Millisecond
		runTime = 1200 * time.Millisecond
	)

	type member struct {
		id     string
		engine *mbox.Engine
		node   *Node
	}
	members := make([]*member, nNodes)
	links := make(map[string]map[string]*faultinject.NetLink)
	var ids []string
	for i := range members {
		ids = append(ids, fmt.Sprintf("n%d", i))
	}

	start := time.Now()
	for i := range members {
		m := &member{id: ids[i], engine: mbox.New(mbox.Config{Shards: 2})}
		if _, err := m.engine.Add(aggID, tbf.MustNew(rate/nNodes, bucket), nil); err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	// Directional fault links; no Delay faults, so no Advance pump needed.
	for i, from := range ids {
		links[from] = make(map[string]*faultinject.NetLink)
		for j, to := range ids {
			if from == to {
				continue
			}
			dst := members[j]
			links[from][to] = faultinject.NewNetLink(
				func(f []byte) { dst.node.Deliver(f) },
				faultinject.NetPlan{
					Seed:      uint64(i*nNodes + j + 1),
					Drop:      0.05,
					Duplicate: 0.05,
					Reorder:   0.10,
				})
		}
	}
	for i := range members {
		m := members[i]
		peers := make([]string, 0, nNodes-1)
		for _, p := range ids {
			if p != m.id {
				peers = append(peers, p)
			}
		}
		node, err := New(Config{
			Self:   m.id,
			Peers:  peers,
			Window: window,
			Transport: transportFunc(func(peer string, frame []byte) error {
				links[m.id][peer].Send(time.Since(start), frame)
				return nil
			}),
			Seed: uint64(i + 1),
		}, []SharedAggregate{{
			ID:   aggID,
			Rate: rate,
			Observed: func() (int64, bool) {
				st, err := m.engine.Stats(aggID)
				if err != nil {
					return 0, false
				}
				return st.AcceptedBytes, true
			},
			Apply: func(share units.Rate, fallback bool) error {
				return m.engine.ApplyShare(aggID, share, fallback)
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		m.node = node
	}
	for _, m := range members {
		m.node.Run()
	}

	// Traffic: node 0 is saturated (well past r), the others trickle below
	// the needy threshold, so grants flow toward node 0 while SetRate races
	// live SubmitBatch under -race.
	var stop atomic.Bool
	var wg sync.WaitGroup
	burst := func(n, flow int) []packet.Packet {
		pkts := make([]packet.Packet, n)
		for i := range pkts {
			pkts[i] = packet.Packet{
				Key:   packet.FlowKey{SrcPort: uint16(flow + i + 1), Proto: 6},
				Size:  units.MSS,
				Class: (flow + i) % 16,
			}
		}
		return pkts
	}
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			h, err := m.engine.Lookup(aggID)
			if err != nil {
				t.Error(err)
				return
			}
			size, gap := 16, 2*time.Millisecond // ~92 Mbit/s offered
			if i > 0 {
				size, gap = 1, 20*time.Millisecond // ~0.6 Mbit/s offered
			}
			for flow := 0; !stop.Load(); flow++ {
				m.engine.SubmitBatch(h, burst(size, flow))
				time.Sleep(gap)
			}
		}(i, m)
	}

	time.Sleep(runTime)
	stop.Store(true)
	wg.Wait()
	for _, m := range members {
		m.node.Close()
	}
	var accepted int64
	for _, m := range members {
		// Stats is a control-lane op ordered behind the data ring, so it
		// reflects every burst submitted before the producers stopped.
		st, err := m.engine.Stats(aggID)
		if err != nil {
			t.Fatal(err)
		}
		accepted += st.AcceptedBytes
	}
	elapsed := time.Since(start) // conservative: spans setup through readout

	// Ground truth: Σ applied ≤ r at every instant (grantors hold what they
	// cede), so accepted ≤ r·Δ/8 plus each node's bucket burst, plus a
	// share-propagation allowance (ApplyShare → in-band SetRate lands within
	// a control cycle; one window of skew per node is already generous).
	slack := float64(nNodes) * float64(rate) / 8 * window.Seconds()
	bound := float64(rate)/8*elapsed.Seconds() + float64(nNodes*int(bucket)) + slack
	if got := float64(accepted); got > bound {
		t.Fatalf("cluster accepted %.0f bytes > bound %.0f (r·Δ=%.0f)", got, bound, float64(rate)/8*elapsed.Seconds())
	}
	if accepted == 0 {
		t.Fatal("no traffic accepted — harness is vacuous")
	}

	var injected int64
	for _, m := range links {
		for _, l := range m {
			injected += l.InjectedNet()
		}
	}
	if injected == 0 {
		t.Fatal("no network faults injected — chaos plan is vacuous")
	}
	for _, m := range members {
		if m.engine.Health().Wedged() {
			t.Errorf("%s: shard wedged after chaos run", m.id)
		}
		if st := m.node.Status(); st.Seq < 10 {
			t.Errorf("%s: only %d exchange ticks — node never ran", m.id, st.Seq)
		}
		m.engine.Close()
	}
}
