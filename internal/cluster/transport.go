// UDPTransport: the production transport. One datagram per frame — the
// wire protocol is loss-tolerant by construction, so UDP's delivery model
// is exactly the model the protocol is proven against; there is nothing a
// reliable stream would add except head-of-line blocking during the very
// partitions the exchange must ride out.
package cluster

import (
	"fmt"
	"net"
	"sync"
)

// maxFrame bounds one datagram. Reports are tiny; handoff frames carry a
// BQSN snapshot and get the full safe-UDP budget.
const maxFrame = 64 << 10

// UDPTransport sends frames as single datagrams to a static peer address
// map and feeds received datagrams to a Node's Deliver.
type UDPTransport struct {
	conn  *net.UDPConn
	peers map[string]*net.UDPAddr

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewUDPTransport binds listen (e.g. ":7400") and resolves the peer
// address map (peer ID → "host:port"). Call Start to begin receiving, and
// Close to release the socket.
func NewUDPTransport(listen string, peers map[string]string) (*UDPTransport, error) {
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %q: %w", listen, err)
	}
	t := &UDPTransport{conn: conn, peers: make(map[string]*net.UDPAddr, len(peers))}
	for id, addr := range peers {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("cluster: peer %s at %q: %w", id, addr, err)
		}
		t.peers[id] = ua
	}
	return t, nil
}

// Addr returns the bound local address (useful with ":0" listeners).
func (t *UDPTransport) Addr() net.Addr { return t.conn.LocalAddr() }

// Send transmits one frame to the named peer.
func (t *UDPTransport) Send(peer string, frame []byte) error {
	addr := t.peers[peer]
	if addr == nil {
		return fmt.Errorf("cluster: unknown peer %q", peer)
	}
	if len(frame) > maxFrame {
		return fmt.Errorf("cluster: frame %d bytes exceeds %d", len(frame), maxFrame)
	}
	_, err := t.conn.WriteToUDP(frame, addr)
	return err
}

// Start launches the receive loop, handing every datagram to deliver
// (normally Node.Deliver; delivery errors are the node's counters, not
// the transport's problem). The loop exits when Close closes the socket.
func (t *UDPTransport) Start(deliver func([]byte) error) {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		buf := make([]byte, maxFrame)
		for {
			n, _, err := t.conn.ReadFromUDP(buf)
			if err != nil {
				t.mu.Lock()
				closed := t.closed
				t.mu.Unlock()
				if closed {
					return
				}
				continue // transient read error; the socket is still live
			}
			if n > 0 {
				_ = deliver(buf[:n]) // Deliver copies what it keeps
			}
		}
	}()
}

// Close shuts the socket and waits for the receive loop to exit.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	t.wg.Wait()
	return err
}
