// Wire protocol for the budget exchange: versioned, length-framed binary
// messages built on the enforcer snapshot codec (little-endian, sticky
// decode errors, trailing-byte rejection).
//
// Frames are small (one report covers every shared aggregate) and fit a
// single UDP datagram for realistic configurations; the transport layer
// treats them as opaque byte slices, so TCP framing or an in-memory test
// bus carry them unchanged.
//
// Robustness contract, enforced here and proven by FuzzDecodeFrame:
//
//   - DecodeFrame never panics on any input.
//   - Unknown magic, unknown version, unknown type, truncation, trailing
//     bytes, NaN rates, negative rates, oversized counts and oversized IDs
//     all reject with an error. The receiver treats a rejected frame
//     exactly like silence (it counts it and moves on), which the protocol
//     already survives — corruption therefore degrades to the partition
//     path, never to bad state.
//   - Length caps bound what a hostile frame can make the decoder allocate.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/units"
)

// Frame magic: "BQXC" — Bounded-Queue eXChange. Mirrors the BQSN snapshot
// magic so on-disk and on-wire artifacts are recognizably related.
const (
	frameMagic   = "BQXC"
	wireVersion  = 2 // v2 added the boot epoch (header + echoes); v1 rejects
	typeReport   = 1
	typeHandoff  = 2
	maxIDLen     = 128 // node and aggregate IDs
	maxEchoes    = 255 // one per peer; u8 count
	maxAggs      = 255 // shared aggregates per report; u8 count
	maxGrants    = 255 // one per peer per aggregate; u8 count
	maxStateBlob = 1 << 20
)

// ErrBadFrame tags every decode rejection; errors.Is(err, ErrBadFrame)
// holds for any malformed input.
var ErrBadFrame = errors.New("cluster: bad frame")

// Echo acknowledges the latest report sequence number heard from one peer.
// Echoes make freshness symmetric: I honor your grant only while your
// report proves you have recently heard ME, which defeats one-way
// partitions and arbitrarily delayed replays (a stale echo ages out even
// though the frame itself is intact). Epoch pins the acknowledgement to
// one incarnation of the peer: sequence numbers restart at zero on reboot,
// so an echo of a pre-restart seq must not look current to the new boot.
type Echo struct {
	Peer  string
	Epoch uint64
	Seq   uint64
}

// Grant cedes part of the sender's budget for one aggregate to one peer.
// The sender holds the ceded amount out of its own share for longer than
// the grant can possibly be honored, so the global bound survives any
// delivery schedule.
type Grant struct {
	To  string
	Bps units.Rate
}

// AggReport is one shared aggregate's entry in a report: the sender's
// observed accept rate, the share it is currently enforcing, and the
// budget it cedes to needier peers.
type AggReport struct {
	ID       string
	Observed units.Rate // accept rate over the last window, bits/sec
	Applied  units.Rate // share currently enforced, bits/sec
	Grants   []Grant
}

// Frame is one decoded budget-exchange message. Epoch identifies the
// sender's boot: a restart resets Seq to zero under a fresh (higher)
// epoch, so receivers can distinguish a rebooted peer from a replay.
type Frame struct {
	Type   uint8 // typeReport or typeHandoff
	Sender string
	Epoch  uint64
	Seq    uint64

	// Report fields.
	Echoes []Echo
	Aggs   []AggReport

	// Handoff fields: a BQSN-framed aggregate snapshot migrating to the new
	// ring owner.
	AggID string
	State []byte
}

// EncodeReport builds a report frame. Callers keep Echoes/Aggs within the
// wire caps; oversized inputs are truncated rather than generating an
// undecodable frame.
func EncodeReport(sender string, epoch, seq uint64, echoes []Echo, aggs []AggReport) []byte {
	var e enforcer.Enc
	e.Bytes([]byte(frameMagic))
	e.U8(wireVersion)
	e.U8(typeReport)
	e.Bytes([]byte(clampID(sender)))
	e.U64(epoch)
	e.U64(seq)
	if len(echoes) > maxEchoes {
		echoes = echoes[:maxEchoes]
	}
	e.U8(uint8(len(echoes)))
	for _, ec := range echoes {
		e.Bytes([]byte(clampID(ec.Peer)))
		e.U64(ec.Epoch)
		e.U64(ec.Seq)
	}
	if len(aggs) > maxAggs {
		aggs = aggs[:maxAggs]
	}
	e.U8(uint8(len(aggs)))
	for _, a := range aggs {
		e.Bytes([]byte(clampID(a.ID)))
		e.F64(float64(a.Observed))
		e.F64(float64(a.Applied))
		grants := a.Grants
		if len(grants) > maxGrants {
			grants = grants[:maxGrants]
		}
		e.U8(uint8(len(grants)))
		for _, g := range grants {
			e.Bytes([]byte(clampID(g.To)))
			e.F64(float64(g.Bps))
		}
	}
	return e.Out()
}

// EncodeHandoff builds a handoff frame carrying one aggregate's snapshot
// blob to its new owner after a ring change.
func EncodeHandoff(sender string, epoch, seq uint64, aggID string, state []byte) []byte {
	var e enforcer.Enc
	e.Bytes([]byte(frameMagic))
	e.U8(wireVersion)
	e.U8(typeHandoff)
	e.Bytes([]byte(clampID(sender)))
	e.U64(epoch)
	e.U64(seq)
	e.Bytes([]byte(clampID(aggID)))
	e.Bytes(state)
	return e.Out()
}

// DecodeFrame parses one frame. Any malformation returns an error wrapping
// ErrBadFrame; the returned Frame is nil on error. Decoded byte slices are
// copied, so the caller's buffer may be recycled.
func DecodeFrame(data []byte) (*Frame, error) {
	d := enforcer.NewDec(data)
	if magic := d.Bytes(); string(magic) != frameMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFrame, magic)
	}
	if v := d.U8(); v != wireVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadFrame, v, wireVersion)
	}
	f := &Frame{Type: d.U8()}
	var err error
	if f.Sender, err = decodeID(d, "sender"); err != nil {
		return nil, err
	}
	f.Epoch = d.U64()
	f.Seq = d.U64()
	switch f.Type {
	case typeReport:
		if err := decodeReport(d, f); err != nil {
			return nil, err
		}
	case typeHandoff:
		if f.AggID, err = decodeID(d, "aggregate"); err != nil {
			return nil, err
		}
		state := d.Bytes()
		if len(state) > maxStateBlob {
			return nil, fmt.Errorf("%w: state blob %d bytes exceeds %d", ErrBadFrame, len(state), maxStateBlob)
		}
		f.State = append([]byte(nil), state...)
	default:
		return nil, fmt.Errorf("%w: type %d", ErrBadFrame, f.Type)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return f, nil
}

func decodeReport(d *enforcer.Dec, f *Frame) error {
	nEchoes := int(d.U8())
	if nEchoes > 0 {
		f.Echoes = make([]Echo, 0, nEchoes)
	}
	for i := 0; i < nEchoes; i++ {
		peer, err := decodeID(d, "echo peer")
		if err != nil {
			return err
		}
		f.Echoes = append(f.Echoes, Echo{Peer: peer, Epoch: d.U64(), Seq: d.U64()})
	}
	nAggs := int(d.U8())
	if nAggs > 0 {
		f.Aggs = make([]AggReport, 0, nAggs)
	}
	for i := 0; i < nAggs; i++ {
		id, err := decodeID(d, "aggregate")
		if err != nil {
			return err
		}
		a := AggReport{ID: id, Observed: units.Rate(d.F64()), Applied: units.Rate(d.F64())}
		if d.Err() == nil && !(finiteRate(a.Observed) && finiteRate(a.Applied)) {
			return fmt.Errorf("%w: non-finite or negative rate for %q", ErrBadFrame, id)
		}
		nGrants := int(d.U8())
		if nGrants > 0 {
			a.Grants = make([]Grant, 0, nGrants)
		}
		for j := 0; j < nGrants; j++ {
			to, err := decodeID(d, "grant peer")
			if err != nil {
				return err
			}
			g := Grant{To: to, Bps: units.Rate(d.F64())}
			if d.Err() == nil && !finiteRate(g.Bps) {
				return fmt.Errorf("%w: non-finite or negative grant to %q", ErrBadFrame, to)
			}
			a.Grants = append(a.Grants, g)
		}
		f.Aggs = append(f.Aggs, a)
	}
	return nil
}

// decodeID reads one length-prefixed ID, enforcing the size cap and
// surfacing any sticky decode error immediately (so a truncated frame fails
// here rather than producing a phantom empty ID).
func decodeID(d *enforcer.Dec, what string) (string, error) {
	b := d.Bytes()
	if err := d.Err(); err != nil {
		return "", fmt.Errorf("%w: %s: %v", ErrBadFrame, what, err)
	}
	if len(b) == 0 {
		return "", fmt.Errorf("%w: empty %s id", ErrBadFrame, what)
	}
	if len(b) > maxIDLen {
		return "", fmt.Errorf("%w: %s id %d bytes exceeds %d", ErrBadFrame, what, len(b), maxIDLen)
	}
	return string(b), nil
}

// finiteRate accepts exactly the rates the share calculus can digest:
// finite and non-negative. NaN is already rejected by the codec; infinity
// would poison the grant arithmetic (Inf/Inf = NaN shares).
func finiteRate(r units.Rate) bool {
	return r >= 0 && !math.IsInf(float64(r), 0)
}

func clampID(id string) string {
	if len(id) > maxIDLen {
		return id[:maxIDLen]
	}
	return id
}
