package cluster

import (
	"testing"

	"bcpqp/internal/units"
)

// FuzzDecodeFrame hardens the budget-exchange wire decoder against hostile
// and corrupted input: DecodeFrame must never panic, never allocate
// proportionally to a lying length prefix, and anything it accepts must
// re-encode to a frame that decodes to the same value (the canonical
// roundtrip property). Rejection is always fine — the protocol treats a
// rejected frame as silence and falls back to the static share.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with well-formed frames of both types so mutation starts deep
	// inside the format rather than dying at the magic check.
	f.Add(EncodeReport("node-a", 1, 1, nil, nil))
	f.Add(EncodeReport("node-a", 1700, 42,
		[]Echo{{Peer: "node-b", Epoch: 9, Seq: 41}, {Peer: "node-c", Epoch: 8, Seq: 40}},
		[]AggReport{
			{ID: "tenant-1", Observed: 80e6, Applied: 90e6,
				Grants: []Grant{{To: "node-b", Bps: 5e6}}},
			{ID: "tenant-2", Observed: 1, Applied: 2},
		}))
	f.Add(EncodeHandoff("node-b", 1700, 7, "tenant-1", []byte("BQSN-stateblob")))
	f.Add(EncodeHandoff("n", 0, 0, "a", nil))
	f.Add([]byte(frameMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			if fr != nil {
				t.Fatal("non-nil frame alongside an error")
			}
			return
		}
		// Structural invariants of anything the decoder accepts.
		if fr.Sender == "" || len(fr.Sender) > maxIDLen {
			t.Fatalf("accepted sender %q", fr.Sender)
		}
		for _, a := range fr.Aggs {
			if a.ID == "" || len(a.ID) > maxIDLen {
				t.Fatalf("accepted aggregate id %q", a.ID)
			}
			if a.Observed < 0 || a.Applied < 0 || a.Observed != a.Observed || a.Applied != a.Applied {
				t.Fatalf("accepted poisonous rates %v/%v", a.Observed, a.Applied)
			}
			for _, g := range a.Grants {
				if g.To == "" || g.Bps < 0 || g.Bps != g.Bps {
					t.Fatalf("accepted poisonous grant %+v", g)
				}
			}
		}
		// Accepted frames must roundtrip canonically.
		var re []byte
		switch fr.Type {
		case typeReport:
			re = EncodeReport(fr.Sender, fr.Epoch, fr.Seq, fr.Echoes, fr.Aggs)
		case typeHandoff:
			re = EncodeHandoff(fr.Sender, fr.Epoch, fr.Seq, fr.AggID, fr.State)
		default:
			t.Fatalf("accepted unknown type %d", fr.Type)
		}
		fr2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !framesEqual(fr, fr2) {
			t.Fatalf("roundtrip mismatch:\n%+v\n%+v", fr, fr2)
		}
	})
}

func framesEqual(a, b *Frame) bool {
	if a.Type != b.Type || a.Sender != b.Sender || a.Epoch != b.Epoch || a.Seq != b.Seq ||
		a.AggID != b.AggID || string(a.State) != string(b.State) ||
		len(a.Echoes) != len(b.Echoes) || len(a.Aggs) != len(b.Aggs) {
		return false
	}
	for i := range a.Echoes {
		if a.Echoes[i] != b.Echoes[i] {
			return false
		}
	}
	for i := range a.Aggs {
		x, y := a.Aggs[i], b.Aggs[i]
		if x.ID != y.ID || !rateEq(x.Observed, y.Observed) || !rateEq(x.Applied, y.Applied) ||
			len(x.Grants) != len(y.Grants) {
			return false
		}
		for j := range x.Grants {
			if x.Grants[j].To != y.Grants[j].To || !rateEq(x.Grants[j].Bps, y.Grants[j].Bps) {
				return false
			}
		}
	}
	return true
}

// rateEq compares wire rates bit-exactly (F64 encoding is lossless; ±0
// both decode as valid and re-encode identically).
func rateEq(a, b units.Rate) bool { return a == b }
