// Node: the per-process half of the cluster. One Node per bcpqp engine,
// configured with a static peer set; it runs the budget exchange on the
// paper's 250 ms window, tracks peer liveness, and drives the engine's
// in-band rate-update lane through the SharedAggregate.Apply callback —
// the cluster layer never touches the datapath directly.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bcpqp/internal/metrics"
	"bcpqp/internal/obs"
	"bcpqp/internal/rng"
	"bcpqp/internal/units"
)

// Transport delivers an encoded frame to a peer by node ID. Send may be
// called concurrently and must not retain the frame. A transport is dumb on
// purpose: retries, liveness and validation all live in the Node, so a UDP
// socket, a TCP dialer and an in-memory fault-injected bus are
// interchangeable.
type Transport interface {
	Send(peer string, frame []byte) error
}

// SharedAggregate wires one cluster-enforced aggregate to the local engine.
// All callbacks are invoked outside the Node's lock and must be safe for
// use from the exchange goroutine.
type SharedAggregate struct {
	// ID names the aggregate — identical across all nodes.
	ID string
	// Rate is the GLOBAL bound r the cluster enforces for this aggregate.
	Rate units.Rate
	// Observed returns the engine's cumulative accepted byte count for the
	// aggregate (e.g. Engine.Stats(id).AcceptedBytes). ok=false skips the
	// sample (aggregate not registered yet).
	Observed func() (bytes int64, ok bool)
	// Apply enforces a recomputed share, typically Engine.ApplyShare →
	// the in-band SetRate lane. fallback is true when the node is on its
	// conservative static floor because the exchange is degraded.
	Apply func(share units.Rate, fallback bool) error
	// Snapshot, when non-nil, serializes the aggregate's state (BQSN
	// framing via Engine.SnapshotAggregate) for live migration handoffs.
	Snapshot func() ([]byte, error)
}

// Config configures a Node.
type Config struct {
	// Self is this node's ID; Peers are the OTHER members (Self excluded,
	// though its presence is tolerated). The peer set is fixed for the
	// node's lifetime; ring changes are a restart plus Migrate.
	Self  string
	Peers []string

	// Window is the exchange period (default metrics.DefaultWindow, the
	// paper's 250 ms).
	Window time.Duration
	// SuspectAfter / DeadAfter are silence thresholds for the peer ladder
	// (defaults 3 and 10 windows).
	SuspectAfter time.Duration
	DeadAfter    time.Duration

	// Transport sends frames to peers. Required.
	Transport Transport
	// Clock supplies virtual time (default: monotonic since New). Tests
	// drive a fake clock for deterministic chaos runs.
	Clock func() time.Duration

	// Recorder receives KindPeerState / KindShareApply trace events
	// (e.g. the engine's obs.Collector). Optional.
	Recorder obs.Recorder
	// OnPeerState observes liveness transitions. Optional; called outside
	// the node lock.
	OnPeerState func(peer string, from, to PeerState)
	// OnTakeover consumes a migration handoff: the aggregate's snapshot
	// blob as produced by SharedAggregate.Snapshot on the old owner.
	// Optional; handoffs without a consumer are counted and dropped.
	OnTakeover func(aggID string, state []byte) error

	// RetryMax / RetryBase bound the jittered exponential backoff used
	// when Transport.Send fails (defaults 3 and 10 ms). At most one retry
	// loop runs per peer at a time; the tick cadence is the outer retry.
	RetryMax  int
	RetryBase time.Duration

	// Seed feeds retry jitter (deterministic per node).
	Seed uint64

	// Key, when non-empty, seals every frame with a truncated HMAC-SHA256
	// tag and rejects inbound frames that fail verification. All peers
	// must share the key. An empty key sends frames in the clear and
	// accepts them from anyone who can reach the socket — sound only on a
	// trusted network (DESIGN.md "Distributed enforcement").
	Key []byte

	// Epoch identifies this boot on the wire. Sequence numbers restart at
	// zero on every process start, so peers use the epoch to tell a
	// rebooted node (epoch advanced, accept and reset) from a replayed or
	// stale report (epoch behind, drop). Zero (the default) derives the
	// epoch from the wall clock at New, which is strictly increasing
	// across restarts; tests pin it for reproducibility.
	Epoch uint64
}

// shared is the node-local exchange state for one shared aggregate.
type shared struct {
	cfg   SharedAggregate
	floor units.Rate

	haveLast  bool
	lastBytes int64
	lastAt    time.Duration
	observed  units.Rate // accept rate over the last completed window

	applied   units.Rate
	fallback  bool
	synced    bool       // first Rebalance must Apply even when unchanged
	grantedIn units.Rate // honored inbound at last rebalance

	grantOut []units.Rate // [peer][holdTicks] hold ring
	grants   []Grant      // wire scratch for this tick's outbound grants

	// Conformance roll-up (ISSUE: cluster-wide audit). All updated inside
	// Rebalance under the node lock, alloc-free.
	prevGrant   []units.Rate  // last tick's planned grant per peer, for churn detection
	grantChurn  int64         // ticks×peers where the planned grant changed
	sumApplied  units.Rate    // local applied + Σ newest peer-reported applied
	overcommits int64         // ticks where sumApplied exceeded rate (+0.1% tolerance)
	unstable    bool          // share changed last tick; convergence episode open
	unstableAt  time.Duration // when the open episode started
	convD       *obs.Digest   // convergence episode durations, nanoseconds
}

// Node runs the exchange for one engine. Safe for concurrent use.
type Node struct {
	cfg     Config
	peerIDs []string // sorted, Self excluded
	ring    *Ring    // over Self + Peers

	epoch uint64 // this boot's incarnation, carried in every frame

	mu         sync.Mutex
	seq        uint64 // report sequence, one per tick
	handoffSeq uint64 // separate space for handoff frames (never echoed)
	tickIdx    int    // seq % holdTicks, the hold-ring slot
	peers      map[string]*peer
	peerList   []*peer // sorted by ID
	shared     map[string]*shared
	sharedIDs  []string // sorted, for deterministic reports
	badFrames  int64    // undecodable or unattributable frames
	handoffs   int64    // takeover frames consumed
	jitter     *rng.Source
	started    time.Time

	// Scratch reused every tick so rebalancing allocates nothing.
	demand   []peerDemand
	echoes   []Echo
	aggRpts  []AggReport
	applyOps []applyOp
	transits []transition

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

type applyOp struct {
	fn       func(share units.Rate, fallback bool) error
	share    units.Rate
	fallback bool
}

type transition struct {
	peer     string
	index    int
	from, to PeerState
}

// New builds a Node. The shared aggregate set is fixed at construction.
func New(cfg Config, aggs []SharedAggregate) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self is required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("cluster: Config.Transport is required")
	}
	if cfg.Window <= 0 {
		cfg.Window = metrics.DefaultWindow
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.Window
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 10 * cfg.Window
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * time.Millisecond
	}
	n := &Node{
		cfg:     cfg,
		epoch:   cfg.Epoch,
		peers:   make(map[string]*peer),
		shared:  make(map[string]*shared),
		jitter:  rng.New(cfg.Seed ^ hash64(cfg.Self)),
		started: time.Now(),
		done:    make(chan struct{}),
	}
	if n.epoch == 0 {
		n.epoch = uint64(n.started.UnixNano())
	}
	if cfg.Clock == nil {
		n.cfg.Clock = func() time.Duration { return time.Since(n.started) }
	}
	seen := map[string]bool{cfg.Self: true}
	for _, id := range cfg.Peers {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		n.peerIDs = append(n.peerIDs, id)
	}
	sort.Strings(n.peerIDs)
	n.ring = NewRing(append([]string{cfg.Self}, n.peerIDs...))
	for i, id := range n.peerIDs {
		p := &peer{id: id, index: i, state: PeerSuspect, aggs: make(map[string]*peerAgg)}
		n.peers[id] = p
		n.peerList = append(n.peerList, p)
	}
	nFloor := len(n.peerIDs) + 1
	for _, a := range aggs {
		if a.ID == "" || a.Observed == nil || a.Apply == nil {
			return nil, fmt.Errorf("cluster: shared aggregate %q needs ID, Observed and Apply", a.ID)
		}
		if a.Rate <= 0 {
			return nil, fmt.Errorf("cluster: shared aggregate %q needs a positive global rate", a.ID)
		}
		if _, dup := n.shared[a.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate shared aggregate %q", a.ID)
		}
		s := &shared{
			cfg:       a,
			floor:     a.Rate / units.Rate(nFloor),
			grantOut:  make([]units.Rate, len(n.peerIDs)*holdTicks),
			grants:    make([]Grant, 0, len(n.peerIDs)),
			prevGrant: make([]units.Rate, len(n.peerIDs)),
			convD:     obs.NewDigest(),
		}
		s.applied = s.floor
		s.fallback = len(n.peerIDs) > 0 // degraded until peers are heard
		n.shared[a.ID] = s
		n.sharedIDs = append(n.sharedIDs, a.ID)
	}
	sort.Strings(n.sharedIDs)
	n.demand = make([]peerDemand, len(n.peerIDs))
	n.echoes = make([]Echo, 0, len(n.peerIDs))
	n.aggRpts = make([]AggReport, 0, len(n.sharedIDs))
	n.applyOps = make([]applyOp, 0, len(n.sharedIDs))
	n.transits = make([]transition, 0, len(n.peerIDs))
	return n, nil
}

// Ring returns the node's placement ring (Self + Peers).
func (n *Node) Ring() *Ring { return n.ring }

// Self returns this node's ID.
func (n *Node) Self() string { return n.cfg.Self }

// Owns reports whether this node owns key on the cluster ring.
func (n *Node) Owns(key string) bool { return n.ring.Owns(n.cfg.Self, key) }

// Tick runs one full exchange round at virtual time now: sample observed
// rates, rebalance shares, apply them, and broadcast this node's report.
// Run calls it on the window cadence; tests call it directly under a
// virtual clock.
func (n *Node) Tick(now time.Duration) {
	n.observe(now)
	n.Rebalance(now)
	n.broadcast(now)
}

// observe samples every shared aggregate's cumulative accepted bytes and
// folds them into windowed accept rates. Callbacks run outside the lock.
func (n *Node) observe(now time.Duration) {
	n.mu.Lock()
	ids := n.sharedIDs
	n.mu.Unlock()
	for _, id := range ids {
		s := n.shared[id] // shared map is immutable after New
		bytes, ok := s.cfg.Observed()
		if !ok {
			continue
		}
		n.mu.Lock()
		if s.haveLast && now > s.lastAt {
			delta := bytes - s.lastBytes
			if delta < 0 {
				delta = 0 // engine restarted underneath us
			}
			s.observed = units.Rate(delta) * 8 * units.Rate(time.Second) / units.Rate(now-s.lastAt)
		}
		s.haveLast = true
		s.lastBytes = bytes
		s.lastAt = now
		n.mu.Unlock()
	}
}

// Rebalance advances the exchange one tick: classifies peers, recomputes
// every shared aggregate's share from the grant calculus, and applies
// changed shares through the Apply callbacks. It allocates nothing on the
// recompute path (BenchmarkClusterRebalance holds it to 0 allocs/op);
// callbacks and trace recording run after the lock is dropped.
func (n *Node) Rebalance(now time.Duration) {
	n.mu.Lock()
	n.seq++
	n.tickIdx = int(n.seq % holdTicks)
	mySeq := n.seq

	// Peer liveness ladder.
	n.transits = n.transits[:0]
	for _, p := range n.peerList {
		last := p.lastHeard
		if !p.everHeard {
			last = 0
		}
		next := classify(now-last, n.cfg.SuspectAfter, n.cfg.DeadAfter)
		if next != p.state {
			n.transits = append(n.transits, transition{peer: p.id, index: p.index, from: p.state, to: next})
			p.state = next
		}
	}

	// Per-aggregate share calculus.
	n.applyOps = n.applyOps[:0]
	for _, id := range n.sharedIDs {
		s := n.shared[id]
		allFresh := true
		var honoredIn, peerApplied units.Rate
		for k, p := range n.peerList {
			d := &n.demand[k]
			d.honored = p.fresh(now, n.cfg.Window, mySeq)
			if !d.honored {
				allFresh = false
			}
			d.observed = 0
			if pa := p.aggs[id]; pa != nil {
				d.observed = pa.observed
				peerApplied += pa.applied
				if d.honored {
					honoredIn += pa.grantToMe
				}
			}
		}
		// Plan this tick's outbound grants straight into the hold ring.
		planGrants(s.floor, s.observed, n.demand, s.grantOut, n.tickIdx)
		// Conformance: grant churn is every (tick, peer) slot whose planned
		// grant differs from the previous tick's plan — the stability signal
		// for the grant calculus (a healthy steady state re-plans the same
		// grants every window).
		for k := range n.peerIDs {
			if g := s.grantOut[k*holdTicks+n.tickIdx]; g != s.prevGrant[k] {
				s.grantChurn++
				s.prevGrant[k] = g
			}
		}
		held := heldOut(s.grantOut, len(n.peerList))
		share := applyBound(s.floor, held, honoredIn, s.cfg.Rate)
		fallback := !allFresh && len(n.peerList) > 0
		s.grantedIn = honoredIn
		// Conformance: cluster-wide Σ applied vs the global bound r. Peer
		// applied values are the newest reported (one exchange window old at
		// worst for fresh peers, staler across partitions — exactly the
		// regime where transient overcommit is possible and worth counting).
		// Tolerance r/1000 forgives float share arithmetic.
		s.sumApplied = share + peerApplied
		if s.sumApplied > s.cfg.Rate+s.cfg.Rate/1000 {
			s.overcommits++
		}
		// Conformance: convergence episodes. A share change opens (or
		// extends) an episode; the first unchanged tick closes it and its
		// duration enters the convergence digest.
		if share != s.applied || fallback != s.fallback || !s.synced {
			if !s.unstable {
				s.unstable = true
				s.unstableAt = now
			}
		} else if s.unstable {
			s.unstable = false
			s.convD.Observe(int64(now - s.unstableAt))
		}
		// The first tick applies unconditionally: the engine may still be
		// enforcing the full global rate from its own configuration, and a
		// node that starts partitioned would otherwise never pull it down
		// to the safe floor (no change → no Apply).
		if !s.synced || share != s.applied || fallback != s.fallback {
			s.applied, s.fallback, s.synced = share, fallback, true
			n.applyOps = append(n.applyOps, applyOp{fn: s.cfg.Apply, share: share, fallback: fallback})
		}
		// Refresh the wire scratch: current grants for the report.
		s.grants = s.grants[:0]
		for k, pid := range n.peerIDs {
			if g := s.grantOut[k*holdTicks+n.tickIdx]; g > 0 {
				s.grants = append(s.grants, Grant{To: pid, Bps: g})
			}
		}
	}
	rec := n.cfg.Recorder
	n.mu.Unlock()

	for _, t := range n.transits {
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindPeerState, Shard: -1, Agg: -1, Node: -1,
				VT: int64(now), A: int64(t.from), B: int64(t.to), C: int64(t.index)})
		}
		if n.cfg.OnPeerState != nil {
			n.cfg.OnPeerState(t.peer, t.from, t.to)
		}
	}
	for _, op := range n.applyOps {
		fb := int64(0)
		if op.fallback {
			fb = 1
		}
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindShareApply, Shard: -1, Agg: -1, Node: -1,
				VT: int64(now), A: int64(op.share), B: fb})
		}
		// Apply errors are not fatal to the exchange: the engine keeps its
		// previous (never larger-sum) share and the next tick retries.
		_ = op.fn(op.share, op.fallback)
	}
}

// broadcast encodes this node's report and sends it to every peer, with a
// bounded jittered-exponential retry loop per peer on transport errors.
func (n *Node) broadcast(now time.Duration) {
	n.mu.Lock()
	n.echoes = n.echoes[:0]
	for _, p := range n.peerList {
		if p.everHeard {
			n.echoes = append(n.echoes, Echo{Peer: p.id, Epoch: p.epoch, Seq: p.lastSeq})
		}
	}
	n.aggRpts = n.aggRpts[:0]
	for _, id := range n.sharedIDs {
		s := n.shared[id]
		n.aggRpts = append(n.aggRpts, AggReport{
			ID: id, Observed: s.observed, Applied: s.applied, Grants: s.grants,
		})
	}
	frame := sealFrame(n.cfg.Key, EncodeReport(n.cfg.Self, n.epoch, n.seq, n.echoes, n.aggRpts))
	n.mu.Unlock()

	for _, id := range n.peerIDs {
		n.sendWithRetry(id, frame)
	}
}

// sendWithRetry sends one frame; on a transport error it starts (at most
// one per peer) a background retry loop with jittered exponential backoff.
// The next tick's report supersedes this frame anyway, so retries are a
// bounded best effort, not a delivery guarantee — the protocol tolerates
// loss by design.
func (n *Node) sendWithRetry(peerID string, frame []byte) {
	if n.cfg.Transport.Send(peerID, frame) == nil {
		return
	}
	n.mu.Lock()
	p := n.peers[peerID]
	if p == nil || p.retrying {
		n.mu.Unlock()
		return
	}
	p.retrying = true
	src := n.jitter.Split(hash64(peerID))
	n.mu.Unlock()

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			n.mu.Lock()
			p.retrying = false
			n.mu.Unlock()
		}()
		backoff := n.cfg.RetryBase
		for attempt := 0; attempt < n.cfg.RetryMax; attempt++ {
			// Full jitter: sleep in [backoff/2, backoff).
			d := backoff/2 + time.Duration(src.Int64N(int64(backoff/2)+1))
			select {
			case <-n.done:
				return
			case <-time.After(d):
			}
			if n.cfg.Transport.Send(peerID, frame) == nil {
				return
			}
			backoff *= 2
		}
	}()
}

// Deliver ingests one frame from the transport. Unauthenticated (when a
// key is configured), malformed, unknown-sender, and stale frames are all
// counted and dropped — every rejection degrades to the silence path the
// protocol already survives. The returned error is for transport-level
// logging only.
func (n *Node) Deliver(frame []byte) error {
	body, err := openFrame(n.cfg.Key, frame)
	if err != nil {
		n.mu.Lock()
		n.badFrames++
		n.mu.Unlock()
		return err
	}
	f, err := DecodeFrame(body)
	if err != nil {
		n.mu.Lock()
		n.badFrames++
		n.mu.Unlock()
		return err
	}
	now := n.cfg.Clock()
	switch f.Type {
	case typeReport:
		return n.deliverReport(f, now)
	case typeHandoff:
		return n.deliverHandoff(f)
	}
	return nil // unreachable: DecodeFrame rejects unknown types
}

func (n *Node) deliverReport(f *Frame, now time.Duration) error {
	n.mu.Lock()
	p := n.peers[f.Sender]
	if p == nil {
		n.badFrames++
		n.mu.Unlock()
		return fmt.Errorf("cluster: report from unknown peer %q", f.Sender)
	}
	if p.everHeard && f.Epoch < p.epoch {
		p.stale++
		n.mu.Unlock()
		return nil // frame from a previous incarnation of the peer
	}
	if p.everHeard && f.Epoch == p.epoch && f.Seq <= p.lastSeq {
		p.stale++
		n.mu.Unlock()
		return nil // duplicate or reordered-behind: already superseded
	}
	if !p.everHeard || f.Epoch > p.epoch {
		// First contact, or the peer rebooted: its sequence space restarted,
		// so everything remembered about the old incarnation — the echo of
		// our seq it last carried and all per-aggregate state — is void.
		// Without this reset a restarted peer's low post-boot seqs would be
		// dropped as "stale" until they re-exceeded the pre-restart value,
		// pinning the whole cluster in fallback for the old uptime.
		p.epoch = f.Epoch
		p.echoOfMe = 0
		for _, pa := range p.aggs {
			pa.observed, pa.applied, pa.grantToMe = 0, 0, 0
		}
	}
	p.everHeard = true
	p.lastSeq = f.Seq
	p.lastHeard = now
	p.reports++
	for _, e := range f.Echoes {
		// Only an echo of THIS boot's sequence space proves recency; an
		// echoed pre-restart seq would spuriously satisfy the fresh() check.
		if e.Peer == n.cfg.Self && e.Epoch == n.epoch && e.Seq > p.echoOfMe {
			p.echoOfMe = e.Seq
		}
	}
	for i := range f.Aggs {
		a := &f.Aggs[i]
		if n.shared[a.ID] == nil {
			continue // not shared here; a config-skew report is not an error
		}
		pa := p.aggs[a.ID]
		if pa == nil {
			pa = &peerAgg{}
			p.aggs[a.ID] = pa
		}
		pa.stamp = p.reports
		pa.observed, pa.applied, pa.grantToMe = a.Observed, a.Applied, 0
		for _, g := range a.Grants {
			if g.To == n.cfg.Self {
				pa.grantToMe += g.Bps
			}
		}
	}
	// A fresh report that omits an aggregate revokes any standing grant for
	// it: after config skew (e.g. a restart with a different shared set) the
	// grantor no longer holds anything back, so honoring the old grant would
	// over-admit — and the per-peer freshness check alone cannot catch it.
	for _, pa := range p.aggs {
		if pa.stamp != p.reports {
			pa.grantToMe = 0
		}
	}
	var tr *transition
	if p.state != PeerAlive {
		tr = &transition{peer: p.id, index: p.index, from: p.state, to: PeerAlive}
		p.state = PeerAlive
	}
	rec := n.cfg.Recorder
	n.mu.Unlock()

	if tr != nil {
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindPeerState, Shard: -1, Agg: -1, Node: -1,
				VT: int64(now), A: int64(tr.from), B: int64(tr.to), C: int64(tr.index)})
		}
		if n.cfg.OnPeerState != nil {
			n.cfg.OnPeerState(tr.peer, tr.from, tr.to)
		}
	}
	return nil
}

func (n *Node) deliverHandoff(f *Frame) error {
	n.mu.Lock()
	known := n.peers[f.Sender] != nil
	if !known {
		n.badFrames++
	} else {
		n.handoffs++
	}
	n.mu.Unlock()
	if !known {
		return fmt.Errorf("cluster: handoff from unknown peer %q", f.Sender)
	}
	if n.cfg.OnTakeover == nil {
		return nil
	}
	return n.cfg.OnTakeover(f.AggID, f.State)
}

// Migrate compares a previous ring against the current one and hands off
// every aggregate in ids that moved away from this node: its state is
// serialized via snap and sent to the new owner in a handoff frame. Used
// after a peer-set change (restart with different -peers) to move
// enforcement state instead of re-admitting a full burst on the new owner.
func (n *Node) Migrate(prev *Ring, ids []string, snap func(id string) ([]byte, error)) (sent int, firstErr error) {
	for _, id := range ids {
		if prev != nil && prev.Owner(id) != n.cfg.Self {
			continue // was not ours to hand off
		}
		newOwner := n.ring.Owner(id)
		if newOwner == n.cfg.Self || newOwner == "" {
			continue // still ours
		}
		state, err := snap(id)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: snapshot %q: %w", id, err)
			}
			continue
		}
		// Handoff frames use their own sequence space: receivers never echo
		// them, and bumping the report seq here would make every peer's echo
		// look stale for echoSlack ticks (full fallback for a round trip)
		// whenever more than a couple of aggregates migrate at once.
		n.mu.Lock()
		n.handoffSeq++
		frame := sealFrame(n.cfg.Key, EncodeHandoff(n.cfg.Self, n.epoch, n.handoffSeq, id, state))
		n.mu.Unlock()
		n.sendWithRetry(newOwner, frame)
		sent++
	}
	return sent, firstErr
}

// Run starts the exchange loop on the window cadence until Close. The
// transport's receive path must already be wired to Deliver. The first
// tick runs synchronously before Run returns: a cold node must pull the
// engine down to its conservative share immediately, not after one full
// window during which the engine would still enforce whatever rate it was
// built with (up to N·r cluster-wide).
func (n *Node) Run() {
	n.Tick(n.cfg.Clock())
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(n.cfg.Window)
		defer t.Stop()
		for {
			select {
			case <-n.done:
				return
			case <-t.C:
				n.Tick(n.cfg.Clock())
			}
		}
	}()
}

// Close stops the exchange loop and retry goroutines. Idempotent.
func (n *Node) Close() {
	n.closeOnce.Do(func() { close(n.done) })
	n.wg.Wait()
}

// Degraded reports whether any shared aggregate is currently enforcing its
// conservative fallback share because the exchange is impaired.
func (n *Node) Degraded() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, id := range n.sharedIDs {
		if n.shared[id].fallback {
			return true
		}
	}
	return false
}
