// Frame authentication: optional symmetric sealing of exchange frames with
// a truncated HMAC-SHA256 tag. The wire codec alone only proves a frame is
// well-formed, not who sent it — sender IDs are plain strings and UDP
// sources are trivially spoofed, so without a key an attacker on the
// network path could forge grants (raising every node toward the full rate
// r, up to N·r cluster-wide) or mute a legitimate peer by burning its
// sequence space with a huge forged Seq. A shared cluster key closes both:
// a frame whose tag does not verify is counted and dropped exactly like a
// corrupted one, degrading to the silence path the protocol survives.
//
// Sealing is applied at the Node boundary (broadcast/Migrate seal, Deliver
// opens) so every transport — UDP, TCP framing, in-memory test bus —
// carries sealed frames unchanged. An empty key disables sealing; that
// configuration is only sound on a trusted network (see DESIGN.md).
package cluster

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
)

// macLen is the truncated tag size. 128 bits of HMAC-SHA256 keeps forgery
// infeasible while costing one cache line per datagram.
const macLen = 16

// sealFrame appends the authentication tag for frame under key. With an
// empty key the frame passes through untouched. The input slice is never
// modified; the sealed frame is a fresh allocation.
func sealFrame(key, frame []byte) []byte {
	if len(key) == 0 {
		return frame
	}
	m := hmac.New(sha256.New, key)
	m.Write(frame)
	out := make([]byte, 0, len(frame)+macLen)
	out = append(out, frame...)
	return append(out, m.Sum(nil)[:macLen]...)
}

// openFrame verifies and strips the tag from a sealed frame. With an empty
// key it is the identity. Verification failures wrap ErrBadFrame so the
// receive path counts them with every other malformation.
func openFrame(key, data []byte) ([]byte, error) {
	if len(key) == 0 {
		return data, nil
	}
	if len(data) <= macLen {
		return nil, fmt.Errorf("%w: sealed frame of %d bytes", ErrBadFrame, len(data))
	}
	body, tag := data[:len(data)-macLen], data[len(data)-macLen:]
	m := hmac.New(sha256.New, key)
	m.Write(body)
	if !hmac.Equal(tag, m.Sum(nil)[:macLen]) {
		return nil, fmt.Errorf("%w: frame authentication failed", ErrBadFrame)
	}
	return body, nil
}
