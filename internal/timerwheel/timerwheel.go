// Package timerwheel implements a hashed timing wheel (Varghese & Lauck,
// SOSP '87), the data structure the paper notes is used to schedule shaper
// dequeue calls efficiently at scale (§2.1).
//
// Timers hash into a fixed ring of slots by expiry tick; each slot holds an
// unordered list with a rounds counter for expiries beyond one wheel
// revolution. Scheduling and cancelling are O(1); advancing does O(1)
// amortized work per elapsed tick plus O(1) per fired timer.
package timerwheel

import (
	"fmt"
	"time"
)

// Timer is a handle to a scheduled callback.
type Timer struct {
	due    time.Duration
	rounds int
	fn     func()
	slot   int
	index  int // position within slot; -1 when fired/cancelled
}

// Fired reports whether the timer fired or was cancelled.
func (t *Timer) Fired() bool { return t.index < 0 }

// Wheel is a single-level hashed timing wheel over virtual time.
type Wheel struct {
	tick    time.Duration
	slots   [][]*Timer
	cursor  int           // slot whose timers fire next
	horizon time.Duration // virtual time already processed
	pending int
}

// New returns a wheel with the given tick granularity and slot count.
func New(tick time.Duration, numSlots int) (*Wheel, error) {
	if tick <= 0 {
		return nil, fmt.Errorf("timerwheel: non-positive tick %v", tick)
	}
	if numSlots < 2 {
		return nil, fmt.Errorf("timerwheel: need at least 2 slots, got %d", numSlots)
	}
	return &Wheel{
		tick:  tick,
		slots: make([][]*Timer, numSlots),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(tick time.Duration, numSlots int) *Wheel {
	w, err := New(tick, numSlots)
	if err != nil {
		panic(err)
	}
	return w
}

// Schedule registers fn to fire when Advance passes virtual time at. Times
// earlier than the processed horizon fire on the next Advance.
func (w *Wheel) Schedule(at time.Duration, fn func()) *Timer {
	if at < w.horizon {
		at = w.horizon
	}
	// Round up to the next tick boundary (minimum one tick ahead) so a
	// timer never lands in the slot currently being processed, which
	// would delay it a full wheel revolution.
	ticksAhead := int((at - w.horizon + w.tick - 1) / w.tick)
	if ticksAhead < 1 {
		ticksAhead = 1
	}
	n := len(w.slots)
	t := &Timer{
		due:    at,
		rounds: ticksAhead / n,
		fn:     fn,
		slot:   (w.cursor + ticksAhead) % n,
	}
	t.index = len(w.slots[t.slot])
	w.slots[t.slot] = append(w.slots[t.slot], t)
	w.pending++
	return t
}

// Cancel removes a pending timer; cancelling a fired timer is a no-op.
func (w *Wheel) Cancel(t *Timer) {
	if t == nil || t.index < 0 {
		return
	}
	slot := w.slots[t.slot]
	last := len(slot) - 1
	slot[t.index] = slot[last]
	slot[t.index].index = t.index
	w.slots[t.slot] = slot[:last]
	t.index = -1
	t.fn = nil
	w.pending--
}

// Advance processes all ticks up to virtual time now, firing due timers.
// A timer fires on the first tick boundary at or after its due time (never
// early, less than one tick late). Within a tick, firing order is NOT
// guaranteed (slots are unordered); callers needing sub-tick ordering
// should use a finer tick.
func (w *Wheel) Advance(now time.Duration) {
	for w.horizon+w.tick <= now {
		w.horizon += w.tick
		w.cursor = (w.cursor + 1) % len(w.slots)
		w.fireSlot()
	}
}

// fireSlot fires round-zero timers in the cursor slot and decrements the
// rest.
func (w *Wheel) fireSlot() {
	slot := w.slots[w.cursor]
	keep := slot[:0]
	var fire []*Timer
	for _, t := range slot {
		if t.rounds > 0 {
			t.rounds--
			keep = append(keep, t)
			continue
		}
		fire = append(fire, t)
	}
	for i := range keep {
		keep[i].index = i
	}
	w.slots[w.cursor] = keep
	for _, t := range fire {
		t.index = -1
		fn := t.fn
		t.fn = nil
		w.pending--
		fn()
	}
}

// Pending returns the number of scheduled timers.
func (w *Wheel) Pending() int { return w.pending }

// Horizon returns the virtual time processed so far.
func (w *Wheel) Horizon() time.Duration { return w.horizon }

// Tick returns the wheel's tick granularity.
func (w *Wheel) Tick() time.Duration { return w.tick }
