package timerwheel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValidation(t *testing.T) {
	if _, err := New(0, 16); err == nil {
		t.Error("zero tick accepted")
	}
	if _, err := New(time.Millisecond, 1); err == nil {
		t.Error("single slot accepted")
	}
	if _, err := New(time.Millisecond, 16); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFiresAtOrAfterDue(t *testing.T) {
	w := MustNew(time.Millisecond, 32)
	var firedAt time.Duration
	w.Schedule(10*time.Millisecond, func() { firedAt = w.Horizon() })
	w.Advance(9 * time.Millisecond)
	if firedAt != 0 {
		t.Fatal("fired before due")
	}
	w.Advance(15 * time.Millisecond)
	if firedAt < 10*time.Millisecond {
		t.Errorf("fired at %v, before due 10ms", firedAt)
	}
	if firedAt > 11*time.Millisecond {
		t.Errorf("fired at %v, more than one tick late", firedAt)
	}
}

func TestMultipleRevolutions(t *testing.T) {
	w := MustNew(time.Millisecond, 8) // wheel covers 8 ms
	fired := false
	w.Schedule(50*time.Millisecond, func() { fired = true })
	w.Advance(49 * time.Millisecond)
	if fired {
		t.Fatal("fired early despite rounds counter")
	}
	w.Advance(51 * time.Millisecond)
	if !fired {
		t.Fatal("never fired after several revolutions")
	}
}

func TestCancel(t *testing.T) {
	w := MustNew(time.Millisecond, 8)
	fired := false
	tm := w.Schedule(5*time.Millisecond, func() { fired = true })
	w.Cancel(tm)
	w.Advance(10 * time.Millisecond)
	if fired {
		t.Error("cancelled timer fired")
	}
	if !tm.Fired() {
		t.Error("cancelled timer does not report done")
	}
	w.Cancel(tm) // double cancel is a no-op
	w.Cancel(nil)
	if w.Pending() != 0 {
		t.Errorf("pending = %d, want 0", w.Pending())
	}
}

func TestCancelOneKeepsOthers(t *testing.T) {
	w := MustNew(time.Millisecond, 8)
	var fired []int
	timers := make([]*Timer, 4)
	for i := 0; i < 4; i++ {
		i := i
		// All in the same slot.
		timers[i] = w.Schedule(5*time.Millisecond, func() { fired = append(fired, i) })
	}
	w.Cancel(timers[1])
	w.Advance(10 * time.Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want 3 of 4", fired)
	}
	for _, v := range fired {
		if v == 1 {
			t.Error("cancelled timer fired")
		}
	}
}

func TestScheduleDuringFire(t *testing.T) {
	w := MustNew(time.Millisecond, 8)
	var chain int
	var reschedule func()
	reschedule = func() {
		chain++
		if chain < 5 {
			w.Schedule(w.Horizon()+time.Millisecond, reschedule)
		}
	}
	w.Schedule(time.Millisecond, reschedule)
	w.Advance(20 * time.Millisecond)
	if chain != 5 {
		t.Errorf("chain = %d, want 5", chain)
	}
}

func TestPastScheduleFiresNext(t *testing.T) {
	w := MustNew(time.Millisecond, 8)
	w.Advance(10 * time.Millisecond)
	fired := false
	w.Schedule(2*time.Millisecond, func() { fired = true }) // already past
	w.Advance(12 * time.Millisecond)
	if !fired {
		t.Error("past-due timer never fired")
	}
}

func TestManyTimersProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		w := MustNew(100*time.Microsecond, 64)
		fired := 0
		type rec struct{ due, at time.Duration }
		var recs []rec
		for _, d := range delays {
			due := time.Duration(d%5000) * time.Microsecond
			w.Schedule(due, func() {
				fired++
				recs = append(recs, rec{due: due, at: w.Horizon()})
			})
		}
		w.Advance(time.Second)
		if fired != len(delays) {
			return false
		}
		for _, r := range recs {
			// Never early; never more than one tick late.
			if r.at < r.due-w.Tick() || r.at > r.due+w.Tick() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPendingCount(t *testing.T) {
	w := MustNew(time.Millisecond, 8)
	for i := 0; i < 5; i++ {
		w.Schedule(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if w.Pending() != 5 {
		t.Errorf("pending = %d, want 5", w.Pending())
	}
	w.Advance(3 * time.Millisecond)
	if w.Pending() != 2 {
		t.Errorf("pending after partial advance = %d, want 2", w.Pending())
	}
	w.Advance(5 * time.Millisecond)
	if w.Pending() != 0 {
		t.Errorf("pending after full advance = %d, want 0", w.Pending())
	}
}
