package packet

import (
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	k := FlowKey{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: 6}
	if k.Hash() != k.Hash() {
		t.Error("hash not deterministic")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 5}
	variants := []FlowKey{
		{SrcIP: 2, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 5},
		{SrcIP: 1, DstIP: 3, SrcPort: 3, DstPort: 4, Proto: 5},
		{SrcIP: 1, DstIP: 2, SrcPort: 4, DstPort: 4, Proto: 5},
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 5, Proto: 5},
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6},
	}
	h := base.Hash()
	for i, v := range variants {
		if v.Hash() == h {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

func TestClassInRange(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, n uint8) bool {
		k := FlowKey{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: 6}
		queues := int(n%63) + 1
		c := k.Class(queues)
		return c >= 0 && c < queues
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassSingleQueue(t *testing.T) {
	k := FlowKey{SrcIP: 99}
	if k.Class(1) != 0 || k.Class(0) != 0 {
		t.Error("degenerate queue counts should map to class 0")
	}
}

func TestClassDistribution(t *testing.T) {
	const queues = 16
	counts := make([]int, queues)
	for i := 0; i < 4096; i++ {
		k := FlowKey{SrcIP: uint32(i), DstIP: 2, SrcPort: uint16(i * 7), DstPort: 443, Proto: 6}
		counts[k.Class(queues)]++
	}
	// Each bucket should get a reasonable share (expected 256).
	for i, c := range counts {
		if c < 128 || c > 512 {
			t.Errorf("queue %d got %d of 4096 flows; hash badly skewed", i, c)
		}
	}
}

func TestPacketClassOverride(t *testing.T) {
	p := Packet{Key: FlowKey{SrcIP: 7}, Class: 3}
	if got := p.ClassIn(8); got != 3 {
		t.Errorf("explicit class ignored: got %d", got)
	}
	p.Class = NoClass
	if got := p.ClassIn(8); got != p.Key.Class(8) {
		t.Errorf("NoClass should hash: got %d want %d", got, p.Key.Class(8))
	}
	// Out-of-range explicit class falls back to hashing.
	p.Class = 99
	if got := p.ClassIn(8); got != p.Key.Class(8) {
		t.Errorf("out-of-range class should hash: got %d", got)
	}
}

func TestKeyString(t *testing.T) {
	k := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	if k.String() == "" {
		t.Error("empty String()")
	}
}
