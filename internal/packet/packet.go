// Package packet defines the packet descriptor that flows through every rate
// enforcer, together with flow keys and the hash-based classification the
// paper uses to map flows onto phantom queues.
package packet

import (
	"fmt"
)

// FlowKey identifies a flow by its 5-tuple. All enforcers classify packets
// by flow key (or by an explicit class override).
type FlowKey struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders the key in src->dst form for diagnostics.
func (k FlowKey) String() string {
	return fmt.Sprintf("%d:%d->%d:%d/%d", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, k.Proto)
}

// Hash returns a 64-bit FNV-1a hash of the flow key. The hash drives
// classification of flows into one of N queues when no explicit class is
// assigned (§3.2: "hash of source-destination addresses").
func (k FlowKey) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix(byte(k.SrcIP))
	mix(byte(k.SrcIP >> 8))
	mix(byte(k.SrcIP >> 16))
	mix(byte(k.SrcIP >> 24))
	mix(byte(k.DstIP))
	mix(byte(k.DstIP >> 8))
	mix(byte(k.DstIP >> 16))
	mix(byte(k.DstIP >> 24))
	mix(byte(k.SrcPort))
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.DstPort))
	mix(byte(k.DstPort >> 8))
	mix(k.Proto)
	return h
}

// Class returns the queue index in [0, n) for this flow key.
func (k FlowKey) Class(n int) int {
	if n <= 1 {
		return 0
	}
	return int(k.Hash() % uint64(n))
}

// NoClass marks a packet whose class should be derived from its flow key.
const NoClass = -1

// Packet is the unit of work submitted to an enforcer.
//
// Payload is optional: the simulator leaves it nil (packet contents do not
// affect enforcement decisions), while the efficiency benchmarks attach real
// payload buffers so that buffering schemes (the shaper) pay their true
// memory-movement cost.
type Packet struct {
	Key     FlowKey
	Size    int   // total size in bytes used for rate accounting
	Class   int   // explicit queue index, or NoClass to classify by Key
	Seq     int64 // transport sequence number; opaque to enforcers
	ECT     bool  // ECN-capable transport (sender set)
	CE      bool  // congestion experienced (marked by an AQM hop)
	Payload []byte
}

// ClassIn returns the effective class of the packet for an enforcer with n
// queues: the explicit class if set, otherwise the flow-key hash class.
func (p *Packet) ClassIn(n int) int {
	if p.Class != NoClass && p.Class >= 0 && p.Class < n {
		return p.Class
	}
	return p.Key.Class(n)
}
