// Package workload constructs the traffic mixes of the paper's evaluation
// (§6.1): aggregates of flows with varying congestion control algorithms,
// round-trip times, sizes, and arrival patterns.
//
// Half of the aggregates are homogeneous (all flows share one CC algorithm
// and RTT) and half are mixed; within each half, aggregates are split into
// backlogged-only, short on-and-off-only, and combined subgroups — the
// six-way composition §6.1 describes.
package workload

import (
	"math"
	"time"

	"bcpqp/internal/rng"
	"bcpqp/internal/units"
)

// OnOff describes a flow that alternates data bursts with idle periods
// (the "short on-and-off flows" of §6.1), realized as AddData calls on a
// persistent connection.
type OnOff struct {
	// BurstBytes is the size of each on-period transfer.
	BurstBytes int64
	// Idle is the think time between the completion of one burst and the
	// start of the next.
	Idle time.Duration
}

// FlowSpec describes a single flow inside an aggregate.
type FlowSpec struct {
	// CC names the congestion control algorithm (see cc.NewByName).
	CC string
	// RTT is the flow's two-way propagation delay.
	RTT time.Duration
	// Size is the flow length in bytes; 0 means backlogged.
	Size int64
	// Start is the flow's start time.
	Start time.Duration
	// OnOff, if non-nil, makes the flow an on-off source (Size is then
	// the initial burst size; subsequent bursts use OnOff.BurstBytes).
	OnOff *OnOff
	// Class pins the flow to an enforcer queue; packet.NoClass hashes.
	Class int
	// Weight is the flow's share weight (informational; policies are
	// built by the experiment from these).
	Weight float64
	// ECN marks the flow ECN-capable (for AQM-marking experiments).
	ECN bool
}

// Aggregate is one rate-limited traffic aggregate (e.g. one subscriber).
type Aggregate struct {
	// Label identifies the aggregate composition for reporting.
	Label string
	// Rate is the enforced rate.
	Rate units.Rate
	// Flows lists the member flows.
	Flows []FlowSpec
}

// MaxRTT returns the largest flow RTT in the aggregate — the worst-case
// RTT enforcement schemes are sized against in §6.1.
func (a *Aggregate) MaxRTT() time.Duration {
	var maxRTT time.Duration
	for _, f := range a.Flows {
		if f.RTT > maxRTT {
			maxRTT = f.RTT
		}
	}
	return maxRTT
}

// ccNames is the CC mix of §6.1.
var ccNames = []string{"reno", "cubic", "bbr", "vegas"}

// Section61Config parameterizes the §6.1 workload generator.
type Section61Config struct {
	// Aggregates is the number of aggregates to build (the paper uses
	// 100).
	Aggregates int
	// Rate is the enforced rate for every aggregate.
	Rate units.Rate
	// FlowsPerAggregate bounds the member-flow count; flows are drawn
	// uniformly in [2, FlowsPerAggregate]. Zero selects 6.
	FlowsPerAggregate int
	// Duration is the run length; start times spread over its first
	// quarter.
	Duration time.Duration
}

// Section61 builds the §6.1 aggregate mix deterministically from src.
func Section61(src *rng.Source, cfg Section61Config) []Aggregate {
	if cfg.FlowsPerAggregate <= 0 {
		cfg.FlowsPerAggregate = 6
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 20 * time.Second
	}
	aggs := make([]Aggregate, 0, cfg.Aggregates)
	for i := 0; i < cfg.Aggregates; i++ {
		r := src.Split(uint64(i))
		homogeneous := i%2 == 0
		var kind string
		switch (i / 2) % 3 {
		case 0:
			kind = "backlogged"
		case 1:
			kind = "onoff"
		default:
			kind = "mixed"
		}
		label := "mixed-cc"
		if homogeneous {
			label = "same-cc"
		}
		agg := Aggregate{
			Label: label + "/" + kind,
			Rate:  cfg.Rate,
		}

		n := 2 + r.IntN(cfg.FlowsPerAggregate-1)
		sharedCC := ccNames[r.IntN(len(ccNames))]
		sharedRTT := randomRTT(r)
		for j := 0; j < n; j++ {
			fs := FlowSpec{
				CC:     sharedCC,
				RTT:    sharedRTT,
				Class:  j,
				Weight: 1,
				Start:  time.Duration(r.Float64() * float64(cfg.Duration/4)),
			}
			if !homogeneous {
				fs.CC = ccNames[r.IntN(len(ccNames))]
				fs.RTT = randomRTT(r)
			}
			switch kind {
			case "backlogged":
				fs.Size = 0
			case "onoff":
				fs.Size = shortFlowSize(r, cfg.Rate)
				fs.OnOff = &OnOff{
					BurstBytes: shortFlowSize(r, cfg.Rate),
					Idle:       time.Duration(r.Range(0.2, 2.0) * float64(time.Second)),
				}
			default:
				if j%2 == 0 {
					fs.Size = 0
				} else {
					fs.Size = shortFlowSize(r, cfg.Rate)
					fs.OnOff = &OnOff{
						BurstBytes: shortFlowSize(r, cfg.Rate),
						Idle:       time.Duration(r.Range(0.2, 2.0) * float64(time.Second)),
					}
				}
			}
			agg.Flows = append(agg.Flows, fs)
		}
		aggs = append(aggs, agg)
	}
	return aggs
}

// randomRTT draws a propagation RTT from the paper's 2–50 ms netem range.
func randomRTT(r *rng.Source) time.Duration {
	return time.Duration(r.Range(2, 50) * float64(time.Millisecond))
}

// shortFlowSize draws an on-off transfer size from the paper's "10s of KBs
// to 100s of MBs" range. The upper end scales with the enforced rate (at
// least a few seconds of transfer at rate) so that high-rate aggregates see
// flows that live beyond their slow-start ramp, as the testbed's larger
// transfers do; backlogged flows cover the far end of the range.
func shortFlowSize(r *rng.Source, rate units.Rate) int64 {
	lo := 20.0 * float64(units.KB)
	hi := 4.0 * float64(units.MB)
	if scaled := 3 * rate.Bytes(time.Second); scaled > hi {
		hi = scaled
	}
	return int64(lo * math.Pow(hi/lo, r.Float64()))
}

// Backlogged returns an aggregate of n backlogged flows with the given CCs
// and RTTs cycling through the provided slices — the shape used by the
// microbenchmarks (Figs 2, 3, 6).
func Backlogged(rate units.Rate, ccs []string, rtts []time.Duration, n int, start time.Duration) Aggregate {
	agg := Aggregate{Label: "backlogged", Rate: rate}
	for i := 0; i < n; i++ {
		agg.Flows = append(agg.Flows, FlowSpec{
			CC:     ccs[i%len(ccs)],
			RTT:    rtts[i%len(rtts)],
			Class:  i,
			Weight: 1,
			Start:  start,
		})
	}
	return agg
}
