package workload

import (
	"testing"
	"time"

	"bcpqp/internal/rng"
	"bcpqp/internal/units"
)

func TestSection61Composition(t *testing.T) {
	src := rng.New(1)
	aggs := Section61(src, Section61Config{
		Aggregates: 60,
		Rate:       units.Rate(7.5 * units.Mbps),
		Duration:   20 * time.Second,
	})
	if len(aggs) != 60 {
		t.Fatalf("built %d aggregates, want 60", len(aggs))
	}
	kinds := map[string]int{}
	for _, a := range aggs {
		kinds[a.Label]++
		if a.Rate != units.Rate(7.5*units.Mbps) {
			t.Errorf("aggregate rate %v", a.Rate)
		}
		if len(a.Flows) < 2 || len(a.Flows) > 6 {
			t.Errorf("aggregate has %d flows, want 2-6", len(a.Flows))
		}
	}
	// All six composition groups must appear.
	for _, label := range []string{
		"same-cc/backlogged", "same-cc/onoff", "same-cc/mixed",
		"mixed-cc/backlogged", "mixed-cc/onoff", "mixed-cc/mixed",
	} {
		if kinds[label] == 0 {
			t.Errorf("composition %q missing (%v)", label, kinds)
		}
	}
}

func TestSection61Homogeneity(t *testing.T) {
	src := rng.New(2)
	aggs := Section61(src, Section61Config{Aggregates: 40, Rate: units.Mbps})
	for _, a := range aggs {
		ccs := map[string]bool{}
		rtts := map[time.Duration]bool{}
		for _, f := range a.Flows {
			ccs[f.CC] = true
			rtts[f.RTT] = true
			if f.RTT < 2*time.Millisecond || f.RTT > 50*time.Millisecond {
				t.Errorf("RTT %v outside the paper's 2-50ms range", f.RTT)
			}
		}
		if a.Label[:7] == "same-cc" {
			if len(ccs) != 1 || len(rtts) != 1 {
				t.Errorf("homogeneous aggregate has %d CCs, %d RTTs", len(ccs), len(rtts))
			}
		}
	}
}

func TestSection61FlowKinds(t *testing.T) {
	src := rng.New(3)
	aggs := Section61(src, Section61Config{Aggregates: 36, Rate: units.Mbps})
	for _, a := range aggs {
		for _, f := range a.Flows {
			switch {
			case a.Label == "same-cc/backlogged" || a.Label == "mixed-cc/backlogged":
				if f.Size != 0 || f.OnOff != nil {
					t.Errorf("%s has non-backlogged flow", a.Label)
				}
			case a.Label == "same-cc/onoff" || a.Label == "mixed-cc/onoff":
				if f.Size == 0 || f.OnOff == nil {
					t.Errorf("%s has non-onoff flow", a.Label)
				}
				// Upper bound scales with rate (≥4 MB floor).
				if f.OnOff.BurstBytes < 20*units.KB || f.OnOff.BurstBytes > 40*units.MB {
					t.Errorf("burst size %d outside range", f.OnOff.BurstBytes)
				}
			}
		}
	}
}

func TestSection61Deterministic(t *testing.T) {
	a := Section61(rng.New(7), Section61Config{Aggregates: 10, Rate: units.Mbps})
	b := Section61(rng.New(7), Section61Config{Aggregates: 10, Rate: units.Mbps})
	for i := range a {
		if a[i].Label != b[i].Label || len(a[i].Flows) != len(b[i].Flows) {
			t.Fatal("workload not deterministic")
		}
		for j := range a[i].Flows {
			if a[i].Flows[j] != b[i].Flows[j] && a[i].Flows[j].OnOff == nil {
				t.Fatal("flow specs differ across identical seeds")
			}
		}
	}
}

func TestMaxRTT(t *testing.T) {
	agg := Aggregate{Flows: []FlowSpec{
		{RTT: 10 * time.Millisecond},
		{RTT: 45 * time.Millisecond},
		{RTT: 3 * time.Millisecond},
	}}
	if got := agg.MaxRTT(); got != 45*time.Millisecond {
		t.Errorf("MaxRTT = %v", got)
	}
}

func TestBacklogged(t *testing.T) {
	agg := Backlogged(units.Mbps,
		[]string{"reno", "cubic"},
		[]time.Duration{10 * time.Millisecond},
		4, time.Second)
	if len(agg.Flows) != 4 {
		t.Fatalf("flows = %d", len(agg.Flows))
	}
	if agg.Flows[0].CC != "reno" || agg.Flows[1].CC != "cubic" || agg.Flows[2].CC != "reno" {
		t.Error("CC cycling broken")
	}
	for i, f := range agg.Flows {
		if f.Class != i {
			t.Errorf("flow %d class %d", i, f.Class)
		}
		if f.Size != 0 {
			t.Errorf("flow %d not backlogged", i)
		}
		if f.Start != time.Second {
			t.Errorf("flow %d start %v", i, f.Start)
		}
	}
}
