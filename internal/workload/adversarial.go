// Adversarial workloads: the traffic the paper's operators (ISP and
// cellular policers) actually deploy against. The §6.1 mixes in this
// package are all congestion-controlled — they back off when the enforcer
// drops. Production meets worse: UDP floods that ignore drops entirely,
// flash crowds that create ten thousand aggregates in a second, swarms of
// flows with wildly mixed RTTs, and storms of slow-start-dominated short
// flows that live entirely inside burst control's θ⁺/θ⁻ window.
//
// Every generator here is open-loop and deterministic: it emits a fixed
// schedule of packet bursts in virtual time, derived only from its seed and
// config, and never reacts to verdicts. That is the point — a flood does
// not slow down because the policer dropped its packets — and it makes the
// chaos suite's assertions exact (the offered load is ground truth, so
// Theorem-1 admission bounds can be checked against it).
package workload

import (
	"fmt"
	"math"
	"time"

	"bcpqp/internal/packet"
	"bcpqp/internal/rng"
	"bcpqp/internal/units"
)

// Source emits a deterministic schedule of packet bursts in virtual time.
// Next fills buf (capping the burst at len(buf)), returns the burst's
// arrival time and length, and reports ok=false once the schedule is
// exhausted. Arrival times are non-decreasing across calls. Sources are
// single-goroutine objects: callers drive one Source per producer.
type Source interface {
	Next(buf []packet.Packet) (at time.Duration, n int, ok bool)
	// Offered returns the packets and bytes emitted so far — the exact
	// open-loop ground truth assertions compare enforcement against.
	Offered() (pkts, bytes int64)
}

// counted implements the Offered bookkeeping shared by every generator.
type counted struct {
	pkts, bytes int64
}

func (c *counted) Offered() (int64, int64) { return c.pkts, c.bytes }

func (c *counted) count(n, size int) {
	c.pkts += int64(n)
	c.bytes += int64(n) * int64(size)
}

// fillBurst writes n flood packets for flow into buf.
func fillBurst(buf []packet.Packet, n int, key packet.FlowKey, size, class int) {
	for i := 0; i < n; i++ {
		buf[i] = packet.Packet{Key: key, Size: size, Class: class}
	}
}

// FloodConfig parameterizes a non-congestion-controlled sender.
type FloodConfig struct {
	// Rate is the offered rate — set it well above the enforced rate;
	// the flood never backs off.
	Rate units.Rate
	// Duration is the schedule length.
	Duration time.Duration
	// PktSize is the packet size in bytes (default units.MSS).
	PktSize int
	// Burst is the packets per emitted burst (default 32, the rx_burst
	// shape the engine ingests).
	Burst int
	// Period and Duty make the flood bursty: traffic is sent only during
	// the first Duty fraction of each Period, at Rate/Duty, so the
	// average offered rate stays Rate but arrives in hard on/off slabs.
	// Zero Period (or Duty ≥ 1) is a constant-rate flood.
	Period time.Duration
	Duty   float64
	// Flows is the number of distinct flow keys cycled through
	// (default 1 — a single-source blast).
	Flows int
	// SrcIP namespaces the flood's flow keys.
	SrcIP uint32
}

// Flood is a UDP-flood source: constant-rate or bursty, and entirely
// drop-blind. This is the case policers exist for (§1): traffic that does
// not respond to congestion signals must be rate-enforced, not persuaded.
type Flood struct {
	counted
	cfg  FloodConfig
	t    time.Duration
	flow int
}

// NewFlood builds a flood schedule. The zero-value niceties: PktSize
// defaults to MSS, Burst to 32, Flows to 1; Duty is clamped to (0, 1].
func NewFlood(cfg FloodConfig) *Flood {
	if cfg.PktSize <= 0 {
		cfg.PktSize = units.MSS
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 32
	}
	if cfg.Flows <= 0 {
		cfg.Flows = 1
	}
	if cfg.Duty <= 0 || cfg.Duty > 1 {
		cfg.Duty = 1
	}
	return &Flood{cfg: cfg}
}

// Next emits the flood's next burst.
func (f *Flood) Next(buf []packet.Packet) (time.Duration, int, bool) {
	cfg := &f.cfg
	bursty := cfg.Period > 0 && cfg.Duty < 1
	if bursty {
		// Skip the off-phase: a bursty flood transmits only inside the
		// first Duty fraction of each period.
		on := time.Duration(float64(cfg.Period) * cfg.Duty)
		if phase := f.t % cfg.Period; phase >= on {
			f.t += cfg.Period - phase
		}
	}
	if f.t >= cfg.Duration {
		return 0, 0, false
	}
	n := cfg.Burst
	if n > len(buf) {
		n = len(buf)
	}
	if n == 0 {
		return 0, 0, false
	}
	key := packet.FlowKey{SrcIP: cfg.SrcIP + 1, DstIP: 0xC0A80001,
		SrcPort: uint16(f.flow%cfg.Flows + 1), DstPort: 9, Proto: 17}
	fillBurst(buf, n, key, cfg.PktSize, f.flow%16)
	f.flow++
	at := f.t
	peak := cfg.Rate
	if bursty {
		peak = units.Rate(float64(cfg.Rate) / cfg.Duty)
	}
	f.t += peak.DurationForBytes(int64(n) * int64(cfg.PktSize))
	f.count(n, cfg.PktSize)
	return at, n, true
}

// FlashCrowdConfig parameterizes a flash-crowd arrival schedule.
type FlashCrowdConfig struct {
	// Aggregates is the number of new aggregates arriving (the ROADMAP
	// scenario uses 10 000).
	Aggregates int
	// Window is the interval the arrivals land in (the ROADMAP scenario
	// uses 1 s).
	Window time.Duration
	// BurstPkts is the size of each new aggregate's initial burst
	// (default 4 — a request, not a bulk transfer).
	BurstPkts int
	// PktSize is the packet size in bytes (default units.MSS).
	PktSize int
	// Prefix namespaces the generated aggregate ids (default "crowd").
	Prefix string
}

// Arrival is one flash-crowd aggregate arrival.
type Arrival struct {
	// ID is the new aggregate's unique id.
	ID string
	// At is the arrival's virtual time within the window.
	At time.Duration
	// Index is the arrival's ordinal (0-based), which also seeds its
	// flow key.
	Index int
}

// FlashCrowd is an aggregate-arrival source: Aggregates new aggregates
// land uniformly inside Window, each with a small initial burst. It
// exercises the registry lifecycle — MaxAggregates admission, idle-TTL
// eviction, handle recycling — under pressure, rather than the enforcers
// themselves.
type FlashCrowd struct {
	counted
	cfg  FlashCrowdConfig
	at   []time.Duration // sorted arrival offsets
	next int
}

// NewFlashCrowd draws the arrival schedule from src (deterministic per
// seed) and sorts it.
func NewFlashCrowd(src *rng.Source, cfg FlashCrowdConfig) *FlashCrowd {
	if cfg.BurstPkts <= 0 {
		cfg.BurstPkts = 4
	}
	if cfg.PktSize <= 0 {
		cfg.PktSize = units.MSS
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "crowd"
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	at := make([]time.Duration, cfg.Aggregates)
	for i := range at {
		at[i] = time.Duration(src.Float64() * float64(cfg.Window))
	}
	// Insertion-style counting sort is overkill; a simple sort keeps the
	// schedule monotone without importing sort for a hot path (this is
	// construction-time only).
	for i := 1; i < len(at); i++ {
		for j := i; j > 0 && at[j] < at[j-1]; j-- {
			at[j], at[j-1] = at[j-1], at[j]
		}
	}
	return &FlashCrowd{cfg: cfg, at: at}
}

// NextArrival returns the next aggregate arrival, in time order.
func (c *FlashCrowd) NextArrival() (Arrival, bool) {
	if c.next >= len(c.at) {
		return Arrival{}, false
	}
	i := c.next
	c.next++
	return Arrival{
		ID:    fmt.Sprintf("%s-%d", c.cfg.Prefix, i),
		At:    c.at[i],
		Index: i,
	}, true
}

// HelloBurst fills buf with arrival i's initial burst and counts it as
// offered load.
func (c *FlashCrowd) HelloBurst(i int, buf []packet.Packet) int {
	n := c.cfg.BurstPkts
	if n > len(buf) {
		n = len(buf)
	}
	key := packet.FlowKey{SrcIP: uint32(i + 1), DstIP: 0xC0A80001,
		SrcPort: uint16(i%65535 + 1), DstPort: 443, Proto: 6}
	fillBurst(buf, n, key, c.cfg.PktSize, i%16)
	c.count(n, c.cfg.PktSize)
	return n
}

// Remaining reports how many arrivals are left.
func (c *FlashCrowd) Remaining() int { return len(c.at) - c.next }

// SwarmConfig parameterizes a mixed-RTT swarm.
type SwarmConfig struct {
	// Flows is the number of concurrent flows (default 64).
	Flows int
	// Duration is the schedule length.
	Duration time.Duration
	// MinRTT/MaxRTT bound the per-flow pacing interval, drawn uniformly
	// (defaults: the paper's 2–50 ms netem range).
	MinRTT, MaxRTT time.Duration
	// MinWin/MaxWin bound the per-flow window in packets sent each RTT
	// (defaults 2 and 32).
	MinWin, MaxWin int
	// PktSize is the packet size in bytes (default units.MSS).
	PktSize int
	// SrcIP namespaces the swarm's flow keys.
	SrcIP uint32
}

// swarmFlow is one member of a swarm or storm: a pacing interval, a
// per-round burst, and the next scheduled emission.
type swarmFlow struct {
	key    packet.FlowKey
	rtt    time.Duration
	win    int
	nextAt time.Duration
	left   int64 // bytes remaining (storms); <0 means unbounded (swarms)
	class  int
}

// Swarm is a mixed-RTT swarm: Flows open-loop senders, each pacing a fixed
// window of packets once per RTT, with RTTs spread across the full netem
// range. Short-RTT flows hammer the enforcer with frequent small bursts
// while long-RTT flows arrive in rarer, larger clumps — the RTT-unfairness
// regime of §6.1 driven at the burst level.
type Swarm struct {
	counted
	cfg   SwarmConfig
	flows []swarmFlow
}

// NewSwarm draws the per-flow RTTs and windows from src.
func NewSwarm(src *rng.Source, cfg SwarmConfig) *Swarm {
	if cfg.Flows <= 0 {
		cfg.Flows = 64
	}
	if cfg.MinRTT <= 0 {
		cfg.MinRTT = 2 * time.Millisecond
	}
	if cfg.MaxRTT <= 0 {
		cfg.MaxRTT = 50 * time.Millisecond
	}
	if cfg.MinWin <= 0 {
		cfg.MinWin = 2
	}
	if cfg.MaxWin <= 0 {
		cfg.MaxWin = 32
	}
	if cfg.PktSize <= 0 {
		cfg.PktSize = units.MSS
	}
	s := &Swarm{cfg: cfg}
	s.flows = make([]swarmFlow, cfg.Flows)
	for i := range s.flows {
		r := src.Split(uint64(i))
		rtt := time.Duration(r.Range(float64(cfg.MinRTT), float64(cfg.MaxRTT)))
		s.flows[i] = swarmFlow{
			key: packet.FlowKey{SrcIP: cfg.SrcIP + 1, DstIP: 0xC0A80001,
				SrcPort: uint16(i + 1), DstPort: 443, Proto: 6},
			rtt:    rtt,
			win:    cfg.MinWin + r.IntN(cfg.MaxWin-cfg.MinWin+1),
			nextAt: time.Duration(r.Float64() * float64(rtt)),
			left:   -1,
			class:  i % 16,
		}
	}
	return s
}

// Next emits the earliest pending flow's round.
func (s *Swarm) Next(buf []packet.Packet) (time.Duration, int, bool) {
	i := earliest(s.flows)
	if i < 0 {
		return 0, 0, false
	}
	f := &s.flows[i]
	if f.nextAt >= s.cfg.Duration {
		return 0, 0, false
	}
	n := f.win
	if n > len(buf) {
		n = len(buf)
	}
	if n == 0 {
		return 0, 0, false
	}
	fillBurst(buf, n, f.key, s.cfg.PktSize, f.class)
	at := f.nextAt
	f.nextAt += f.rtt
	s.count(n, s.cfg.PktSize)
	return at, n, true
}

// earliest returns the index of the flow with the smallest nextAt that
// still has data (left != 0); -1 when none do. A linear scan: generator
// flow counts are hundreds, and this runs once per burst at
// construction-time rates.
func earliest(flows []swarmFlow) int {
	best := -1
	for i := range flows {
		f := &flows[i]
		if f.left == 0 {
			continue
		}
		if best < 0 || f.nextAt < flows[best].nextAt {
			best = i
		}
	}
	return best
}

// StormConfig parameterizes a short-flow storm.
type StormConfig struct {
	// Concurrency is the number of flow slots; each slot always has an
	// active short flow (a completed flow is immediately replaced after
	// its think time). Default 32.
	Concurrency int
	// Duration is the schedule length.
	Duration time.Duration
	// MinSize/MaxSize bound flow sizes, drawn log-uniformly (defaults
	// 10 KB and 500 KB — web-object sized, slow-start dominated).
	MinSize, MaxSize int64
	// RTT is the slow-start round interval (default 10 ms).
	RTT time.Duration
	// InitialWindow is the first round's burst in packets (default 4).
	InitialWindow int
	// Think is the idle gap between a flow completing and its slot
	// starting the next flow (default one RTT).
	Think time.Duration
	// PktSize is the packet size in bytes (default units.MSS).
	PktSize int
	// SrcIP namespaces the storm's flow keys.
	SrcIP uint32
}

// Storm is a short-flow storm: every flow is slow-start dominated — its
// per-round burst doubles (IW, 2·IW, 4·IW, …) until the flow's bytes run
// out, then a fresh flow takes the slot. Aggregate traffic is therefore an
// endless supply of exponentially ramping micro-bursts, the worst case for
// burst control's θ⁺/θ⁻ admission window (§5.2): enforcement must absorb
// each ramp's head without either over-admitting or flattening every new
// flow to zero.
type Storm struct {
	counted
	cfg   StormConfig
	src   *rng.Source
	flows []swarmFlow
	born  []int // flows started per slot, for key uniqueness
	win   []int // current slow-start window per slot
}

// NewStorm draws per-slot flow sizes and start jitter from src.
func NewStorm(src *rng.Source, cfg StormConfig) *Storm {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 32
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = 10 * units.KB
	}
	if cfg.MaxSize <= cfg.MinSize {
		cfg.MaxSize = 500 * units.KB
	}
	if cfg.RTT <= 0 {
		cfg.RTT = 10 * time.Millisecond
	}
	if cfg.InitialWindow <= 0 {
		cfg.InitialWindow = 4
	}
	if cfg.Think <= 0 {
		cfg.Think = cfg.RTT
	}
	if cfg.PktSize <= 0 {
		cfg.PktSize = units.MSS
	}
	s := &Storm{cfg: cfg, src: src}
	s.flows = make([]swarmFlow, cfg.Concurrency)
	s.born = make([]int, cfg.Concurrency)
	s.win = make([]int, cfg.Concurrency)
	for i := range s.flows {
		r := src.Split(uint64(i))
		s.flows[i] = swarmFlow{
			rtt:    cfg.RTT,
			nextAt: time.Duration(r.Float64() * float64(cfg.RTT)),
			class:  i % 16,
		}
		s.startFlow(i, r)
	}
	return s
}

// startFlow begins a fresh short flow in slot i: new key, new log-uniform
// size, window reset to IW.
func (s *Storm) startFlow(i int, r *rng.Source) {
	s.born[i]++
	f := &s.flows[i]
	f.key = packet.FlowKey{SrcIP: s.cfg.SrcIP + 1, DstIP: 0xC0A80001,
		SrcPort: uint16(i + 1), DstPort: uint16(s.born[i]%65535 + 1), Proto: 6}
	lo, hi := float64(s.cfg.MinSize), float64(s.cfg.MaxSize)
	f.left = int64(lo * math.Pow(hi/lo, r.Float64()))
	s.win[i] = s.cfg.InitialWindow
}

// Next emits the earliest pending slot's slow-start round.
func (s *Storm) Next(buf []packet.Packet) (time.Duration, int, bool) {
	i := earliest(s.flows)
	if i < 0 {
		return 0, 0, false
	}
	f := &s.flows[i]
	if f.nextAt >= s.cfg.Duration {
		return 0, 0, false
	}
	n := s.win[i]
	if left := int(f.left / int64(s.cfg.PktSize)); n > left {
		n = left
	}
	if n < 1 {
		n = 1
	}
	if n > len(buf) {
		n = len(buf)
	}
	fillBurst(buf, n, f.key, s.cfg.PktSize, f.class)
	at := f.nextAt
	f.left -= int64(n) * int64(s.cfg.PktSize)
	if f.left <= 0 {
		// Flow complete: think, then a fresh flow ramps from IW again.
		f.nextAt += s.cfg.Think
		s.startFlow(i, s.src.Split(uint64(s.born[i])<<16|uint64(i)))
	} else {
		f.nextAt += f.rtt
		s.win[i] *= 2 // slow start: the next round doubles
	}
	s.count(n, s.cfg.PktSize)
	return at, n, true
}
