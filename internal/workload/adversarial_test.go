package workload

import (
	"testing"
	"time"

	"bcpqp/internal/packet"
	"bcpqp/internal/rng"
	"bcpqp/internal/units"
)

// drain pulls the whole schedule from a Source, asserting monotone arrival
// times, and returns the bursts as (at, n) pairs.
func drain(t *testing.T, s Source) (ats []time.Duration, ns []int) {
	t.Helper()
	var buf [64]packet.Packet
	last := time.Duration(-1)
	for {
		at, n, ok := s.Next(buf[:])
		if !ok {
			return
		}
		if n <= 0 {
			t.Fatalf("empty burst at %v", at)
		}
		if at < last {
			t.Fatalf("arrival times not monotone: %v after %v", at, last)
		}
		last = at
		ats = append(ats, at)
		ns = append(ns, n)
		if len(ats) > 1_000_000 {
			t.Fatal("schedule did not terminate")
		}
	}
}

func TestFloodConstantRate(t *testing.T) {
	f := NewFlood(FloodConfig{Rate: 100 * units.Mbps, Duration: 200 * time.Millisecond})
	ats, _ := drain(t, f)
	pkts, bytes := f.Offered()
	if pkts == 0 || bytes != pkts*units.MSS {
		t.Fatalf("offered accounting: pkts=%d bytes=%d", pkts, bytes)
	}
	// Offered rate must track the configured rate: bytes over the span
	// within 5%.
	span := ats[len(ats)-1]
	want := (100 * units.Mbps).Bytes(span)
	got := float64(bytes)
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("offered %v bytes over %v, want ≈%v", got, span, want)
	}
}

func TestFloodBurstyDutyCycle(t *testing.T) {
	cfg := FloodConfig{
		Rate:     50 * units.Mbps,
		Duration: 400 * time.Millisecond,
		Period:   100 * time.Millisecond,
		Duty:     0.25,
	}
	f := NewFlood(cfg)
	ats, _ := drain(t, f)
	// Every arrival must land inside the first Duty fraction of its
	// period — the off-phase is silent.
	on := time.Duration(float64(cfg.Period) * cfg.Duty)
	for _, at := range ats {
		if phase := at % cfg.Period; phase >= on {
			t.Fatalf("arrival %v in off-phase (phase %v ≥ on %v)", at, phase, on)
		}
	}
	// The average offered rate still approximates Rate (it is sent at
	// Rate/Duty during on-phases).
	_, bytes := f.Offered()
	want := cfg.Rate.Bytes(cfg.Duration)
	if f := float64(bytes); f < want*0.7 || f > want*1.3 {
		t.Fatalf("bursty flood offered %v bytes, want ≈%v", f, want)
	}
}

func TestFloodDeterministic(t *testing.T) {
	mk := func() ([]time.Duration, []int) {
		return drain(t, NewFlood(FloodConfig{Rate: 80 * units.Mbps,
			Duration: 50 * time.Millisecond, Period: 10 * time.Millisecond, Duty: 0.5}))
	}
	a1, n1 := mk()
	a2, n2 := mk()
	if len(a1) != len(a2) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] || n1[i] != n2[i] {
			t.Fatalf("schedule diverges at burst %d", i)
		}
	}
}

func TestFlashCrowdSchedule(t *testing.T) {
	src := rng.New(42)
	c := NewFlashCrowd(src, FlashCrowdConfig{Aggregates: 1000, Window: time.Second})
	seen := make(map[string]bool, 1000)
	last := time.Duration(-1)
	n := 0
	for {
		a, ok := c.NextArrival()
		if !ok {
			break
		}
		n++
		if a.At < last {
			t.Fatalf("arrivals out of order: %v after %v", a.At, last)
		}
		last = a.At
		if a.At < 0 || a.At >= time.Second {
			t.Fatalf("arrival %v outside window", a.At)
		}
		if seen[a.ID] {
			t.Fatalf("duplicate aggregate id %q", a.ID)
		}
		seen[a.ID] = true
		var buf [8]packet.Packet
		if got := c.HelloBurst(a.Index, buf[:]); got != 4 {
			t.Fatalf("hello burst = %d, want 4", got)
		}
	}
	if n != 1000 {
		t.Fatalf("arrivals = %d, want 1000", n)
	}
	if c.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", c.Remaining())
	}
	pkts, _ := c.Offered()
	if pkts != 4000 {
		t.Fatalf("offered pkts = %d, want 4000", pkts)
	}
}

func TestFlashCrowdDeterministic(t *testing.T) {
	ids := func(seed uint64) []time.Duration {
		c := NewFlashCrowd(rng.New(seed), FlashCrowdConfig{Aggregates: 200})
		var out []time.Duration
		for {
			a, ok := c.NextArrival()
			if !ok {
				return out
			}
			out = append(out, a.At)
		}
	}
	a, b := ids(7), ids(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at arrival %d", i)
		}
	}
	c := ids(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestSwarmMixedRTT(t *testing.T) {
	s := NewSwarm(rng.New(1), SwarmConfig{Flows: 32, Duration: 300 * time.Millisecond})
	drain(t, s)
	// The swarm must actually mix RTTs: spread between fastest and
	// slowest pacing intervals should cover most of the 2–50 ms range.
	lo, hi := s.flows[0].rtt, s.flows[0].rtt
	for _, f := range s.flows {
		if f.rtt < lo {
			lo = f.rtt
		}
		if f.rtt > hi {
			hi = f.rtt
		}
	}
	if lo < 2*time.Millisecond || hi > 50*time.Millisecond {
		t.Fatalf("RTTs outside configured range: [%v, %v]", lo, hi)
	}
	if hi < 5*lo {
		t.Fatalf("RTT spread too narrow: [%v, %v]", lo, hi)
	}
	pkts, _ := s.Offered()
	if pkts == 0 {
		t.Fatal("swarm offered nothing")
	}
}

func TestStormSlowStartRamp(t *testing.T) {
	// One slot, huge flow: the per-round burst must double each round
	// (4, 8, 16, 32 capped by buffer).
	s := NewStorm(rng.New(3), StormConfig{
		Concurrency: 1,
		Duration:    time.Second,
		MinSize:     10 * units.MB,
		MaxSize:     11 * units.MB,
	})
	var buf [256]packet.Packet
	var sizes []int
	for i := 0; i < 4; i++ {
		_, n, ok := s.Next(buf[:])
		if !ok {
			t.Fatal("storm ended early")
		}
		sizes = append(sizes, n)
	}
	for i, want := range []int{4, 8, 16, 32} {
		if sizes[i] != want {
			t.Fatalf("round %d burst = %d, want %d (slow start doubling)", i, sizes[i], want)
		}
	}
}

func TestStormFlowTurnover(t *testing.T) {
	// Tiny flows: slots must recycle through many distinct flows, each
	// restarting from the initial window.
	s := NewStorm(rng.New(9), StormConfig{
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		MinSize:     6 * units.MSS,
		MaxSize:     12 * units.MSS,
	})
	var buf [64]packet.Packet
	keys := make(map[packet.FlowKey]bool)
	for {
		_, n, ok := s.Next(buf[:])
		if !ok {
			break
		}
		keys[buf[0].Key] = true
		if n > 16 {
			t.Fatalf("tiny flow emitted %d-packet round", n)
		}
	}
	if len(keys) < 20 {
		t.Fatalf("only %d distinct flows over 500ms of tiny flows", len(keys))
	}
}

func TestSourcesOfferedMatchesEmitted(t *testing.T) {
	srcs := []Source{
		NewFlood(FloodConfig{Rate: 40 * units.Mbps, Duration: 100 * time.Millisecond}),
		NewSwarm(rng.New(5), SwarmConfig{Flows: 8, Duration: 100 * time.Millisecond}),
		NewStorm(rng.New(5), StormConfig{Concurrency: 4, Duration: 100 * time.Millisecond}),
	}
	for i, s := range srcs {
		var buf [64]packet.Packet
		var pkts, bytes int64
		for {
			_, n, ok := s.Next(buf[:])
			if !ok {
				break
			}
			pkts += int64(n)
			for j := 0; j < n; j++ {
				bytes += int64(buf[j].Size)
			}
		}
		gp, gb := s.Offered()
		if gp != pkts || gb != bytes {
			t.Fatalf("source %d: Offered()=(%d,%d), emitted (%d,%d)", i, gp, gb, pkts, bytes)
		}
	}
}
