package cascade

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// snapVersion is the format version of Cascade snapshot blobs.
const snapVersion = 1

// SetRate implements enforcer.Reconfigurer by forwarding to stage 0, the
// outermost level — in the paper's deployments that is the subscriber's own
// limit, the one a rate-plan change targets. Inner levels (plan tier, link)
// are shared and keep their configuration; use SetStageRate to retarget a
// specific level.
func (c *Cascade) SetRate(now time.Duration, rate units.Rate) error {
	return c.SetStageRate(now, 0, rate)
}

// SetPolicy implements enforcer.Reconfigurer by forwarding to stage 0 (see
// SetRate for why).
func (c *Cascade) SetPolicy(now time.Duration, policy *sched.Policy) error {
	return c.SetStagePolicy(now, 0, policy)
}

// SetStageRate changes the enforced rate of one cascade level in place.
// The stage must implement enforcer.Reconfigurer.
func (c *Cascade) SetStageRate(now time.Duration, stage int, rate units.Rate) error {
	r, err := c.reconfigurer(stage)
	if err != nil {
		return err
	}
	return r.SetRate(now, rate)
}

// SetStagePolicy changes the rate-sharing policy of one cascade level in
// place. The stage must implement enforcer.Reconfigurer; stages without a
// policy dimension (token buckets) return enforcer.ErrNoPolicy.
func (c *Cascade) SetStagePolicy(now time.Duration, stage int, policy *sched.Policy) error {
	r, err := c.reconfigurer(stage)
	if err != nil {
		return err
	}
	return r.SetPolicy(now, policy)
}

func (c *Cascade) reconfigurer(stage int) (enforcer.Reconfigurer, error) {
	if stage < 0 || stage >= len(c.stages) {
		return nil, fmt.Errorf("cascade: stage %d out of range [0,%d): %w",
			stage, len(c.stages), enforcer.ErrBadNode)
	}
	r, ok := c.stages[stage].(enforcer.Reconfigurer)
	if !ok {
		return nil, fmt.Errorf("cascade: stage %d (%T): %w",
			stage, c.stages[stage], enforcer.ErrNotReconfigurable)
	}
	return r, nil
}

// SnapshotState implements enforcer.Snapshotter: the cascade's own
// statistics and per-stage drop attribution, followed by every stage's own
// blob. All stages must implement enforcer.Snapshotter.
//
// Layout: u8 version, stats, u32 stage count, then per stage: i64
// DroppedAt, length-prefixed stage blob.
func (c *Cascade) SnapshotState() ([]byte, error) {
	var e enforcer.Enc
	e.U8(snapVersion)
	e.Stats(c.stats)
	e.U32(uint32(len(c.stages)))
	for i, s := range c.stages {
		snap, ok := s.(enforcer.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("cascade: stage %d (%T): %w", i, s, enforcer.ErrNotSnapshottable)
		}
		blob, err := snap.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("cascade: snapshotting stage %d: %w", i, err)
		}
		e.I64(c.DroppedAt[i])
		e.Bytes(blob)
	}
	return e.Out(), nil
}

// RestoreState implements enforcer.Snapshotter. The receiver must be built
// over the same stage structure (count, kinds, configurations); each
// stage's blob is validated by that stage's own RestoreState.
func (c *Cascade) RestoreState(data []byte) error {
	d := enforcer.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != snapVersion {
		d.Fail("cascade: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	stats := d.Stats()
	if n := d.U32(); d.Err() == nil && int(n) != len(c.stages) {
		d.Fail("cascade: snapshot has %d stages, cascade has %d", n, len(c.stages))
	}
	if d.Err() != nil {
		return d.Err()
	}
	dropped := make([]int64, len(c.stages))
	blobs := make([][]byte, len(c.stages))
	for i := range c.stages {
		dropped[i] = d.I64()
		blobs[i] = d.Bytes()
		if d.Err() == nil && dropped[i] < 0 {
			d.Fail("cascade: negative drop count for stage %d", i)
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}
	// Check every stage is snapshottable before touching any of them; a
	// structural mismatch then cannot leave half the cascade restored.
	// (Per-stage blob errors can still interrupt mid-restore — like every
	// Snapshotter, a failed RestoreState leaves the receiver discardable.)
	snaps := make([]enforcer.Snapshotter, len(c.stages))
	for i, s := range c.stages {
		snap, ok := s.(enforcer.Snapshotter)
		if !ok {
			return fmt.Errorf("cascade: stage %d (%T): %w", i, s, enforcer.ErrNotSnapshottable)
		}
		snaps[i] = snap
	}
	for i, snap := range snaps {
		if err := snap.RestoreState(blobs[i]); err != nil {
			return fmt.Errorf("cascade: restoring stage %d: %w", i, err)
		}
	}
	c.stats = stats
	copy(c.DroppedAt, dropped)
	return nil
}

var _ enforcer.Reconfigurer = (*Cascade)(nil)
var _ enforcer.Snapshotter = (*Cascade)(nil)
