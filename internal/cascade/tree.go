package cascade

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
)

// Cascade as the degenerate unary policy tree: a linear chain is a tree in
// which every node has exactly one child. Stage i is node i, node 0 (the
// outermost stage — the subscriber's own limit) is the only leaf, and each
// node's parent is the next-inner stage, so the root is the innermost
// (link) stage. This file retrofits enforcer.TreeEnforcer onto Cascade so
// the mbox engine's node-addressed datapath and control plane (leaf
// handles, per-node reconfiguration, per-node metrics) work uniformly over
// chains and real trees.

// NumNodes implements enforcer.TreeEnforcer: one node per stage.
func (c *Cascade) NumNodes() int { return len(c.stages) }

// Parent implements enforcer.TreeEnforcer: node i's parent is stage i+1;
// the innermost stage is the root.
func (c *Cascade) Parent(node enforcer.NodeID) enforcer.NodeID {
	if int(node) < 0 || int(node) >= len(c.stages)-1 {
		return enforcer.NoNode
	}
	return node + 1
}

// IsLeaf implements enforcer.TreeEnforcer: a chain has exactly one leaf,
// its outermost stage.
func (c *Cascade) IsLeaf(node enforcer.NodeID) bool { return node == 0 && len(c.stages) > 0 }

// NodeLabel implements enforcer.TreeEnforcer.
func (c *Cascade) NodeLabel(node enforcer.NodeID) string {
	if int(node) < 0 || int(node) >= len(c.stages) {
		return ""
	}
	return fmt.Sprintf("stage%d", node)
}

// SubmitAt implements enforcer.TreeEnforcer: enforce stages node..root with
// the same packet-major two-phase admission as Submit. SubmitAt(now, 0, pkt)
// is byte-identical to Submit(now, pkt). An out-of-range node fails closed.
func (c *Cascade) SubmitAt(now time.Duration, node enforcer.NodeID, pkt packet.Packet) enforcer.Verdict {
	if int(node) < 0 || int(node) >= len(c.stages) {
		c.stats.Reject(pkt.Size)
		return enforcer.Drop
	}
	for i := int(node); i < len(c.stages); i++ {
		if !c.stages[i].Probe(now, pkt) {
			c.DroppedAt[i]++
			c.stats.Reject(pkt.Size)
			return enforcer.Drop
		}
	}
	for i := int(node); i < len(c.stages); i++ {
		c.stages[i].Commit(now, pkt)
	}
	c.stats.Accept(pkt.Size)
	return enforcer.Transmit
}

// SubmitBatchAt implements enforcer.TreeEnforcer with the packet-major
// burst loop of SubmitBatch over the stages node..root.
func (c *Cascade) SubmitBatchAt(now time.Duration, node enforcer.NodeID, pkts []packet.Packet, verdicts []enforcer.Verdict) {
	verdicts = verdicts[:len(pkts)]
	if int(node) < 0 || int(node) >= len(c.stages) {
		for i := range pkts {
			c.stats.Reject(pkts[i].Size)
			verdicts[i] = enforcer.Drop
		}
		return
	}
	stages := c.stages[node:]
	droppedAt := c.DroppedAt[node:]
packets:
	for i := range pkts {
		for j, s := range stages {
			if !s.Probe(now, pkts[i]) {
				droppedAt[j]++
				c.stats.Reject(pkts[i].Size)
				verdicts[i] = enforcer.Drop
				continue packets
			}
		}
		for _, s := range stages {
			s.Commit(now, pkts[i])
		}
		c.stats.Accept(pkts[i].Size)
		verdicts[i] = enforcer.Transmit
	}
}

// NodeStats implements enforcer.TreeEnforcer, reading the stage's own
// statistics (stages count committed packets; probe rejections are
// attributed through DroppedAt). Stages without a StatsReader report
// enforcer.ErrNoStats.
func (c *Cascade) NodeStats(node enforcer.NodeID) (enforcer.Stats, error) {
	if int(node) < 0 || int(node) >= len(c.stages) {
		return enforcer.Stats{}, fmt.Errorf("cascade: stage %d out of range [0,%d): %w",
			node, len(c.stages), enforcer.ErrBadNode)
	}
	sr, ok := c.stages[node].(enforcer.StatsReader)
	if !ok {
		return enforcer.Stats{}, fmt.Errorf("cascade: stage %d (%T): %w",
			node, c.stages[node], enforcer.ErrNoStats)
	}
	return sr.EnforcerStats(), nil
}

// NodeReconfigurer implements enforcer.TreeEnforcer.
func (c *Cascade) NodeReconfigurer(node enforcer.NodeID) (enforcer.Reconfigurer, error) {
	return c.reconfigurer(int(node))
}

// NodeSnapshotter implements enforcer.TreeEnforcer.
func (c *Cascade) NodeSnapshotter(node enforcer.NodeID) (enforcer.Snapshotter, error) {
	if int(node) < 0 || int(node) >= len(c.stages) {
		return nil, fmt.Errorf("cascade: stage %d out of range [0,%d): %w",
			node, len(c.stages), enforcer.ErrBadNode)
	}
	snap, ok := c.stages[node].(enforcer.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("cascade: stage %d (%T): %w",
			node, c.stages[node], enforcer.ErrNotSnapshottable)
	}
	return snap, nil
}

var _ enforcer.TreeEnforcer = (*Cascade)(nil)
