package cascade

import (
	"errors"
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/rng"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// TestTreeRetrofitTopology: a chain reads as the degenerate unary tree —
// stage 0 the only leaf, the innermost stage the root.
func TestTreeRetrofitTopology(t *testing.T) {
	c := MustNew(newPQP(5*units.Mbps, 4), newPQP(20*units.Mbps, 16))
	var tree enforcer.TreeEnforcer = c
	if got := tree.NumNodes(); got != 2 {
		t.Fatalf("NumNodes = %d", got)
	}
	if tree.Parent(0) != 1 || tree.Parent(1) != enforcer.NoNode {
		t.Errorf("parents: %d, %d", tree.Parent(0), tree.Parent(1))
	}
	if !tree.IsLeaf(0) || tree.IsLeaf(1) {
		t.Error("leaf detection wrong")
	}
	if tree.NodeLabel(1) != "stage1" || tree.NodeLabel(9) != "" {
		t.Errorf("labels: %q, %q", tree.NodeLabel(1), tree.NodeLabel(9))
	}
}

// TestSubmitAtEquivalence: SubmitAt(0) is byte-identical to Submit, and an
// interior entry skips exactly the outer stages.
func TestSubmitAtEquivalence(t *testing.T) {
	mk := func() *Cascade {
		return MustNew(newPQP(5*units.Mbps, 4), newPQP(20*units.Mbps, 16))
	}
	plain, at := mk(), mk()
	r := rng.New(3)
	now := time.Duration(0)
	for i := 0; i < 5000; i++ {
		now += time.Duration(r.IntN(int(time.Millisecond)))
		p := pkt(uint32(i), r.IntN(4))
		if vp, va := plain.Submit(now, p), at.SubmitAt(now, 0, p); vp != va {
			t.Fatalf("pkt %d: Submit %v, SubmitAt(0) %v", i, vp, va)
		}
	}
	if s1, s2 := plain.EnforcerStats(), at.EnforcerStats(); s1 != s2 {
		t.Errorf("stats diverged: %+v vs %+v", s1, s2)
	}
	// Entry at the root runs only the innermost stage: the tight outer
	// limit no longer applies.
	inner := MustNew(tbf.MustNew(units.Mbps, 2*units.MSS), tbf.MustNew(100*units.Mbps, 100*units.MSS))
	acc := 0
	for i := 0; i < 20; i++ {
		if inner.SubmitAt(0, 1, pkt(uint32(i), 0)) == enforcer.Transmit {
			acc++
		}
	}
	if acc < 20 {
		t.Errorf("root-entry admitted %d/20 through the 100 Mbps stage alone", acc)
	}
	if inner.SubmitAt(0, 5, pkt(0, 0)) != enforcer.Drop {
		t.Error("out-of-range SubmitAt must fail closed")
	}
}

// TestCascadeNodeSentinels: the retrofit reports addressing and capability
// failures with the typed enforcer sentinels.
func TestCascadeNodeSentinels(t *testing.T) {
	c := MustNew(newPQP(5*units.Mbps, 4))
	if _, err := c.NodeStats(7); !errors.Is(err, enforcer.ErrBadNode) {
		t.Errorf("NodeStats(7): %v, want ErrBadNode", err)
	}
	if _, err := c.NodeReconfigurer(7); !errors.Is(err, enforcer.ErrBadNode) {
		t.Errorf("NodeReconfigurer(7): %v, want ErrBadNode", err)
	}
	if _, err := c.NodeSnapshotter(7); !errors.Is(err, enforcer.ErrBadNode) {
		t.Errorf("NodeSnapshotter(7): %v, want ErrBadNode", err)
	}
	if _, err := c.NodeReconfigurer(0); err != nil {
		t.Errorf("PQP stage should be reconfigurable: %v", err)
	}
	if st, err := c.NodeStats(0); err != nil || st.AcceptedPackets != 0 {
		t.Errorf("fresh NodeStats: %+v, %v", st, err)
	}
}
