// Package cascade composes rate limits hierarchically: a packet must be
// admitted by every level (e.g. its subscriber limit, the subscriber's
// plan-tier limit, and the link limit) to be transmitted.
//
// Naively chaining bufferless enforcers corrupts their accounting: if the
// subscriber level admits a packet — enqueueing its phantom copy or
// consuming its tokens — and the link level then drops it, the subscriber
// has charged itself for a packet that never left. Cascade therefore uses
// two-phase admission: every stage is Probed first (drains and refills
// advance, but no admission state changes), and only when all stages accept
// is the packet Committed to each. This preserves each level's Theorem 1
// accounting exactly.
package cascade

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
)

// Stage is an enforcer supporting two-phase admission. *phantom.PQP and
// *tbf.Policer implement it. It is an alias for enforcer.Stage, the shared
// composition capability also consumed by the policy-tree enforcer
// (internal/ptree) — the same stage object can serve as a cascade level or
// as a policy-tree node ceiling.
type Stage = enforcer.Stage

// Cascade enforces every stage in order; it implements enforcer.Enforcer.
// Per-stage statistics count only committed packets; the cascade's own
// statistics account the end-to-end verdicts.
type Cascade struct {
	stages []Stage
	stats  enforcer.Stats

	// DroppedAt counts drops attributed to each stage (the first stage
	// whose Probe rejected the packet).
	DroppedAt []int64
}

// New builds a cascade over the given stages, outermost (e.g. subscriber)
// first. At least one stage is required.
func New(stages ...Stage) (*Cascade, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("cascade: no stages")
	}
	for i, s := range stages {
		if s == nil {
			return nil, fmt.Errorf("cascade: nil stage %d", i)
		}
	}
	return &Cascade{
		stages:    stages,
		DroppedAt: make([]int64, len(stages)),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(stages ...Stage) *Cascade {
	c, err := New(stages...)
	if err != nil {
		panic(err)
	}
	return c
}

// Submit implements enforcer.Enforcer with all-or-nothing admission.
func (c *Cascade) Submit(now time.Duration, pkt packet.Packet) enforcer.Verdict {
	for i, s := range c.stages {
		if !s.Probe(now, pkt) {
			c.DroppedAt[i]++
			c.stats.Reject(pkt.Size)
			return enforcer.Drop
		}
	}
	for _, s := range c.stages {
		s.Commit(now, pkt)
	}
	c.stats.Accept(pkt.Size)
	return enforcer.Transmit
}

// SubmitBatch implements enforcer.BatchSubmitter with packet-major
// probe/commit over the burst.
//
// The whole burst shares one virtual time, so each stage's lazy
// time-driven work self-amortizes across it: a phantom stage's batched
// drain can fire at most once per burst (no credit accrues at a fixed
// now) and a token-bucket stage's refill no-ops after the first probe.
// What cascade must NOT do is probe stage-major (all packets through
// stage 1, then stage 2, ...): committing packet i consumes capacity —
// queue occupancy, tokens — that packet i+1's probes must observe, and
// deferring commits until after a stage-wide probe pass would over-admit
// whole bursts past every level's limit. Packet-major order keeps the
// Theorem 1 accounting of every level exact and the verdicts
// byte-identical to the per-packet path.
func (c *Cascade) SubmitBatch(now time.Duration, pkts []packet.Packet, verdicts []enforcer.Verdict) {
	verdicts = verdicts[:len(pkts)]
	stages := c.stages
packets:
	for i := range pkts {
		for j, s := range stages {
			if !s.Probe(now, pkts[i]) {
				c.DroppedAt[j]++
				c.stats.Reject(pkts[i].Size)
				verdicts[i] = enforcer.Drop
				continue packets
			}
		}
		for _, s := range stages {
			s.Commit(now, pkts[i])
		}
		c.stats.Accept(pkts[i].Size)
		verdicts[i] = enforcer.Transmit
	}
}

// EnforcerStats implements enforcer.StatsReader.
func (c *Cascade) EnforcerStats() enforcer.Stats { return c.stats }

// Stages returns the number of levels.
func (c *Cascade) Stages() int { return len(c.stages) }

var _ enforcer.Enforcer = (*Cascade)(nil)
var _ enforcer.BatchSubmitter = (*Cascade)(nil)
var _ enforcer.StatsReader = (*Cascade)(nil)
