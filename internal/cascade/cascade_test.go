package cascade

import (
	"testing"
	"testing/quick"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

func pkt(src uint32, class int) packet.Packet {
	return packet.Packet{
		Key:   packet.FlowKey{SrcIP: src, SrcPort: uint16(class + 1), Proto: 6},
		Size:  units.MSS,
		Class: class,
	}
}

func newPQP(rate units.Rate, queues int) *phantom.PQP {
	return phantom.MustNew(phantom.Config{
		Rate:         rate,
		Queues:       queues,
		QueueSize:    200 * units.MSS,
		BurstControl: true,
	})
}

func TestValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty cascade accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("nil stage accepted")
	}
	if _, err := New(newPQP(units.Mbps, 1)); err != nil {
		t.Errorf("valid cascade rejected: %v", err)
	}
}

// TestSingleStageMatchesPlainSubmit: a one-stage cascade admits exactly the
// packets the enforcer's own Submit would admit.
func TestSingleStageMatchesPlainSubmit(t *testing.T) {
	plain := newPQP(8*units.Mbps, 2)
	casc := MustNew(newPQP(8*units.Mbps, 2))

	now := time.Duration(0)
	var plainAcc, cascAcc int
	for i := 0; i < 5000; i++ {
		now += 600 * time.Microsecond // 2.5 MB/s offered vs 1 MB/s
		p := pkt(1, i%2)
		if plain.Submit(now, p) == enforcer.Transmit {
			plainAcc++
		}
		if casc.Submit(now, p) == enforcer.Transmit {
			cascAcc++
		}
	}
	if plainAcc != cascAcc {
		t.Errorf("cascade admitted %d, plain submit %d", cascAcc, plainAcc)
	}
}

// TestLinkLevelCapsSubscribers: two 5 Mbps subscribers under an 8 Mbps
// link level — each subscriber is capped at 5, and their sum at 8.
func TestLinkLevelCapsSubscribers(t *testing.T) {
	link := newPQP(8*units.Mbps, 2) // one queue per subscriber at the link
	subA := newPQP(5*units.Mbps, 1)
	subB := newPQP(5*units.Mbps, 1)
	cascA := MustNew(subA, link)
	cascB := MustNew(subB, link)

	// Both subscribers offer 10 Mbps for 10 virtual seconds.
	gap := (10 * units.Mbps).DurationForBytes(units.MSS)
	now := time.Duration(0)
	var accA, accB int64
	for now < 10*time.Second {
		now += gap
		pa := pkt(1, 0)
		pb := pkt(2, 0)
		pb.Class = 0
		// Subscriber queues are their own (class 0); at the link they
		// occupy separate classes via explicit override below.
		pa.Class = 0
		if cascA.Submit(now, withLinkClass(pa, 0)) == enforcer.Transmit {
			accA += units.MSS
		}
		if cascB.Submit(now, withLinkClass(pb, 1)) == enforcer.Transmit {
			accB += units.MSS
		}
	}
	mbpsA := float64(accA) * 8 / 10 / 1e6
	mbpsB := float64(accB) * 8 / 10 / 1e6
	if mbpsA > 5.3 || mbpsB > 5.3 {
		t.Errorf("subscriber exceeded its cap: A=%.2f B=%.2f Mbps", mbpsA, mbpsB)
	}
	if total := mbpsA + mbpsB; total > 8.4 {
		t.Errorf("link cap violated: %.2f Mbps total", total)
	}
	if mbpsA < 3.4 || mbpsB < 3.4 {
		t.Errorf("link level starved a subscriber: A=%.2f B=%.2f", mbpsA, mbpsB)
	}
}

// withLinkClass is a helper: the same packet classifies into its
// subscriber's queue 0 but into a per-subscriber class at the shared link
// stage. Class overrides apply to whichever stage reads them, so the link
// stage here uses the hash path via distinct SrcIPs instead.
func withLinkClass(p packet.Packet, link int) packet.Packet {
	// The link PQP has 2 queues; we rely on Class for both stages, so
	// give the link its class and keep subscriber stages single-queue
	// (class 0 maps anywhere).
	p.Class = link
	return p
}

// TestNoPhantomLeakOnOuterDrop: when the link level rejects, the subscriber
// level must not have enqueued a phantom copy (the accounting bug cascades
// exist to prevent).
func TestNoPhantomLeakOnOuterDrop(t *testing.T) {
	sub := newPQP(10*units.Mbps, 1)
	link := tbf.MustNew(units.Mbps, units.MSS) // tiny: rejects almost everything
	casc := MustNew(sub, link)

	now := time.Millisecond
	var accepted int64
	for i := 0; i < 100; i++ {
		if casc.Submit(now, pkt(1, 0)) == enforcer.Transmit {
			accepted += units.MSS
		}
	}
	// The subscriber's phantom queue must hold exactly the accepted
	// bytes — not the offered bytes.
	if got := sub.QueueLength(0); got != accepted {
		t.Errorf("subscriber phantom queue holds %d, want exactly accepted %d", got, accepted)
	}
	if casc.DroppedAt[1] == 0 {
		t.Error("link-stage drops not attributed")
	}
	st := sub.EnforcerStats()
	if st.AcceptedBytes != accepted {
		t.Errorf("subscriber stats charged %d, want %d", st.AcceptedBytes, accepted)
	}
}

// TestTBFProbeCommitEquivalence: probe+commit over a token bucket admits
// the same packets as plain Submit.
func TestTBFProbeCommitEquivalence(t *testing.T) {
	plain := tbf.MustNew(8*units.Mbps, 10*units.MSS)
	staged := tbf.MustNew(8*units.Mbps, 10*units.MSS)
	now := time.Duration(0)
	for i := 0; i < 3000; i++ {
		now += 900 * time.Microsecond
		p := pkt(1, 0)
		a := plain.Submit(now, p) == enforcer.Transmit
		b := staged.Probe(now, p)
		if b {
			staged.Commit(now, p)
		}
		if a != b {
			t.Fatalf("packet %d: plain=%v staged=%v", i, a, b)
		}
	}
}

func TestStages(t *testing.T) {
	c := MustNew(newPQP(units.Mbps, 1), tbf.MustNew(units.Mbps, 10*units.MSS))
	if c.Stages() != 2 {
		t.Errorf("Stages = %d", c.Stages())
	}
}

// TestCascadeUpperBoundsProperty: for random offered loads, the cascade
// never admits more than either level's token-bucket bound allows.
func TestCascadeUpperBoundsProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		subRate := 4 * units.Mbps
		linkRate := 6 * units.Mbps
		subB := int64(20 * units.MSS)
		linkB := int64(30 * units.MSS)
		sub := tbf.MustNew(subRate, subB)
		link := tbf.MustNew(linkRate, linkB)
		casc := MustNew(sub, link)
		now := time.Duration(0)
		var accepted int64
		for _, g := range gaps {
			now += time.Duration(g%3000) * time.Microsecond
			if casc.Submit(now, pkt(1, 0)) == enforcer.Transmit {
				accepted += units.MSS
			}
		}
		okSub := float64(accepted) <= float64(subB)+subRate.Bytes(now)+1
		okLink := float64(accepted) <= float64(linkB)+linkRate.Bytes(now)+1
		return okSub && okLink
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
