package harness

import (
	"testing"
	"time"

	"bcpqp/internal/metrics"
	"bcpqp/internal/packet"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// attach adds a backlogged flow with receiver metering on key `idx`.
func attach(t *testing.T, h *Harness, m *metrics.Meter, idx, class int, ccName string,
	rtt, start time.Duration, size int64) {
	t.Helper()
	_, err := h.AttachFlow(FlowSpec{
		Key: packet.FlowKey{SrcIP: 1, SrcPort: uint16(idx + 1),
			DstIP: 2, DstPort: 443, Proto: 6},
		Class: class,
		CC:    ccName,
		RTT:   rtt,
		Size:  size,
		Start: start,
		OnDeliver: func(now time.Duration, b int) {
			m.Add(now, idx, b)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// steadyMbps returns a flow's mean rate over the second half of the run.
func steadyMbps(m *metrics.Meter, idx int) float64 {
	wb := m.WindowBytes(idx)
	var sum int64
	half := wb[len(wb)/2:]
	for _, b := range half {
		sum += b
	}
	return float64(sum) * 8 / (float64(len(half)) * m.Window().Seconds()) / 1e6
}

// TestWeightedSharingEndToEnd: two backlogged cubic flows through BC-PQP
// with a 3:1 weighted policy achieve a ≈3:1 throughput split.
func TestWeightedSharingEndToEnd(t *testing.T) {
	h, err := New(Config{
		Scheme: SchemeBCPQP,
		Rate:   20 * units.Mbps,
		MaxRTT: 30 * time.Millisecond,
		Queues: 2,
		Policy: sched.WeightedFair(3, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.NewMeter(0)
	attach(t, h, m, 0, 0, "cubic", 20*time.Millisecond, 10*time.Millisecond, 0)
	attach(t, h, m, 1, 1, "cubic", 20*time.Millisecond, 10*time.Millisecond, 0)
	h.Run(30 * time.Second)

	r0, r1 := steadyMbps(m, 0), steadyMbps(m, 1)
	ratio := r0 / r1
	if ratio < 2.4 || ratio > 3.6 {
		t.Errorf("weighted split %.1f:%.1f Mbps (ratio %.2f), want ≈3", r0, r1, ratio)
	}
	if total := r0 + r1; total < 17 || total > 22 {
		t.Errorf("total %.1f Mbps, want ≈20", total)
	}
}

// TestPriorityEndToEnd: a strict-priority BC-PQP starves the low class
// while the high class is active and hands over when it stops.
func TestPriorityEndToEnd(t *testing.T) {
	h, err := New(Config{
		Scheme: SchemeBCPQP,
		Rate:   10 * units.Mbps,
		MaxRTT: 30 * time.Millisecond,
		Queues: 2,
		Policy: sched.StrictPriority(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.NewMeter(0)
	// High-priority flow sends a 15 MB transfer (~12 s at full rate);
	// low-priority is backlogged from the start.
	attach(t, h, m, 0, 0, "cubic", 20*time.Millisecond, 10*time.Millisecond, 15*units.MB)
	attach(t, h, m, 1, 1, "cubic", 20*time.Millisecond, 10*time.Millisecond, 0)
	h.Run(40 * time.Second)

	// Phase 1 (1-10 s): high should dominate clearly.
	wb0, wb1 := m.WindowBytes(0), m.WindowBytes(1)
	window := m.Window().Seconds()
	sum := func(wb []int64, from, to int) float64 {
		var s int64
		for w := from; w < to && w < len(wb); w++ {
			s += wb[w]
		}
		return float64(s) * 8 / (float64(to-from) * window) / 1e6
	}
	hiEarly := sum(wb0, 4, 40)
	loEarly := sum(wb1, 4, 40)
	if hiEarly < 4*loEarly {
		t.Errorf("priority phase: high %.2f vs low %.2f Mbps; expected clear dominance",
			hiEarly, loEarly)
	}
	// Phase 2 (last 10 s, high finished): low takes the full rate.
	n := m.Windows()
	loLate := sum(wb1, n-40, n)
	if loLate < 7 {
		t.Errorf("after high finished, low got %.2f Mbps, want ≈10", loLate)
	}
}

// TestFairnessAcrossCCsNoSecondary: four different congestion controllers
// share fairly through BC-PQP but not through a plain policer.
func TestFairnessAcrossCCsNoSecondary(t *testing.T) {
	run := func(scheme Scheme) float64 {
		h, err := New(Config{
			Scheme: scheme,
			Rate:   units.Rate(12 * units.Mbps),
			MaxRTT: 40 * time.Millisecond,
			Queues: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := metrics.NewMeter(0)
		for i, cc := range []string{"reno", "cubic", "bbr", "vegas"} {
			attach(t, h, m, i, i, cc, 30*time.Millisecond,
				time.Duration(10+i)*time.Millisecond, 0)
		}
		h.Run(30 * time.Second)
		shares := make([]float64, 4)
		for i := range shares {
			shares[i] = steadyMbps(m, i)
		}
		return metrics.Jain(shares)
	}
	bc := run(SchemeBCPQP)
	pol := run(SchemePolicer)
	t.Logf("steady Jain: bc-pqp %.3f, policer %.3f", bc, pol)
	if bc < 0.95 {
		t.Errorf("BC-PQP cross-CC fairness %.3f, want ≥0.95", bc)
	}
	if pol > bc {
		t.Errorf("plain policer (%.3f) fairer than BC-PQP (%.3f)?", pol, bc)
	}
}

// TestFairPolicerRTTUnfairness reproduces §6.3.1: under FairPolicer, an
// AIMD flow with a large RTT achieves less than its fair share because its
// bucket cannot cover its BDP² requirement, while BC-PQP's large queues
// plus burst control keep the shares balanced.
func TestFairPolicerRTTUnfairness(t *testing.T) {
	run := func(scheme Scheme) (small, large float64) {
		h, err := New(Config{
			Scheme: scheme,
			Rate:   20 * units.Mbps,
			MaxRTT: 100 * time.Millisecond,
			Queues: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := metrics.NewMeter(0)
		attach(t, h, m, 0, 0, "reno", 10*time.Millisecond, 10*time.Millisecond, 0)
		attach(t, h, m, 1, 1, "reno", 100*time.Millisecond, 10*time.Millisecond, 0)
		h.Run(30 * time.Second)
		return steadyMbps(m, 0), steadyMbps(m, 1)
	}
	fpSmall, fpLarge := run(SchemeFairPolicer)
	bcSmall, bcLarge := run(SchemeBCPQP)
	t.Logf("fairpolicer: 10ms=%.2f 100ms=%.2f; bc-pqp: 10ms=%.2f 100ms=%.2f",
		fpSmall, fpLarge, bcSmall, bcLarge)
	fpShare := fpLarge / (fpSmall + fpLarge)
	bcShare := bcLarge / (bcSmall + bcLarge)
	if bcShare < fpShare {
		t.Errorf("large-RTT flow share under BC-PQP (%.3f) below FairPolicer (%.3f); "+
			"expected BC-PQP to fix RTT unfairness", bcShare, fpShare)
	}
	if bcShare < 0.3 {
		t.Errorf("large-RTT flow starved even under BC-PQP: share %.3f", bcShare)
	}
}

// TestSpareCapacityReallocation checks the §4 design note: when a flow
// stops, reclaiming its magic packets frees its share immediately for the
// remaining flows.
func TestSpareCapacityReallocation(t *testing.T) {
	h, err := New(Config{
		Scheme: SchemeBCPQP,
		Rate:   10 * units.Mbps,
		MaxRTT: 30 * time.Millisecond,
		Queues: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.NewMeter(0)
	// Flow 0 stops at ~8 s (a 10 MB transfer at ~5 Mbps); flow 1 runs on.
	attach(t, h, m, 0, 0, "cubic", 20*time.Millisecond, 10*time.Millisecond, 5*units.MB)
	attach(t, h, m, 1, 1, "cubic", 20*time.Millisecond, 10*time.Millisecond, 0)
	h.Run(30 * time.Second)

	// After flow 0 finishes, flow 1 should ramp to ≈ the full rate well
	// before the end of the run.
	wb1 := m.WindowBytes(1)
	n := len(wb1)
	var lateSum int64
	for _, b := range wb1[n-20:] {
		lateSum += b
	}
	late := float64(lateSum) * 8 / (20 * m.Window().Seconds()) / 1e6
	if late < 8 {
		t.Errorf("survivor flow at %.2f Mbps after competitor left, want ≈10", late)
	}
}

// TestShaperAddsQueueingDelayBCPQPDoesNot quantifies the §6.4 trade: the
// shaper's low drop rate is paid for with buffering delay, which the
// bufferless BC-PQP never adds.
func TestShaperAddsQueueingDelayBCPQPDoesNot(t *testing.T) {
	h, err := New(Config{
		Scheme: SchemeShaper,
		Rate:   5 * units.Mbps,
		MaxRTT: 50 * time.Millisecond,
		Queues: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.NewMeter(0)
	attach(t, h, m, 0, 0, "cubic", 30*time.Millisecond, 10*time.Millisecond, 0)
	h.Run(10 * time.Second)
	if d := h.Shaper().AvgQueueingDelay(); d < 5*time.Millisecond {
		t.Errorf("shaper avg queueing delay %v; a backlogged flow should keep its queue busy", d)
	}
}

// TestSchemesProduceDistinctEnforcers sanity-checks the factory wiring.
func TestSchemesProduceDistinctEnforcers(t *testing.T) {
	for _, s := range AllSchemes() {
		h, err := New(Config{
			Scheme: s,
			Rate:   5 * units.Mbps,
			MaxRTT: 50 * time.Millisecond,
			Queues: 4,
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if h.Enforcer() == nil {
			t.Fatalf("%v: nil enforcer", s)
		}
		if (s == SchemePQP || s == SchemeBCPQP) && h.PQP() == nil {
			t.Errorf("%v: PQP accessor nil", s)
		}
		if (s == SchemeShaper || s == SchemeSingleShaper) && h.Shaper() == nil {
			t.Errorf("%v: shaper accessor nil", s)
		}
	}
}

// TestDuplicateFlowKeyRejected guards the routing table.
func TestDuplicateFlowKeyRejected(t *testing.T) {
	h, err := New(Config{
		Scheme: SchemeBCPQP, Rate: units.Mbps,
		MaxRTT: 10 * time.Millisecond, Queues: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := FlowSpec{
		Key: packet.FlowKey{SrcIP: 1, SrcPort: 1},
		CC:  "reno", RTT: 10 * time.Millisecond,
	}
	if _, err := h.AttachFlow(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AttachFlow(spec); err == nil {
		t.Error("duplicate key accepted")
	}
	spec.Key.SrcPort = 2
	spec.CC = "nope"
	if _, err := h.AttachFlow(spec); err == nil {
		t.Error("unknown CC accepted")
	}
}
