package harness

import (
	"testing"
	"time"

	"bcpqp/internal/metrics"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/units"
)

// TestECNEndToEnd drives an ECN-capable Reno flow through a marking RED
// phantom queue and checks the full signal path: CE marks applied by the
// enforcer, echoed by the receiver, and answered by the sender with
// window reductions instead of retransmissions.
func TestECNEndToEnd(t *testing.T) {
	rate := 10 * units.Mbps
	rtt := 50 * time.Millisecond
	req := units.RenoPhantomRequirement(rate, rtt)
	h, err := New(Config{
		Scheme:           SchemePQP,
		Rate:             rate,
		MaxRTT:           rtt,
		Queues:           1,
		PhantomQueueSize: 4 * req,
		PhantomRED: &phantom.REDConfig{
			MinBytes: req,
			MaxBytes: 4 * req,
			MaxProb:  0.003,
			Weight:   0.01,
			Seed:     1,
			MarkECN:  true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.NewMeter(0)
	flow, err := h.AttachFlow(FlowSpec{
		Key:   packet.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 443, Proto: 6},
		Class: 0,
		CC:    "reno",
		RTT:   rtt,
		ECN:   true,
		Start: 10 * time.Millisecond,
		OnDeliver: func(now time.Duration, b int) {
			m.Add(now, 0, b)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Run(30 * time.Second)

	if flow.CEMarks == 0 {
		t.Fatal("no CE marks reached the receiver")
	}
	if flow.ECNSignals == 0 {
		t.Fatal("CE marks were never answered with a congestion response")
	}
	if flow.ECNSignals > flow.CEMarks {
		t.Errorf("more responses (%d) than marks (%d); once-per-window gating broken",
			flow.ECNSignals, flow.CEMarks)
	}
	// The marked flow should still hold near the enforced rate.
	if got := steadyMbps(m, 0); got < 0.85*rate.Mbps() {
		t.Errorf("ECN-marked flow at %.2f Mbps, want ≈%.0f", got, rate.Mbps())
	}
	// And marks should displace most losses.
	st := h.Stats()
	if st.DropRate() > 0.05 {
		t.Errorf("drop rate %.3f with ECN marking, want small", st.DropRate())
	}
}

// TestNonECTFlowStillDropped: without ECT, a marking RED queue must fall
// back to dropping.
func TestNonECTFlowStillDropped(t *testing.T) {
	rate := 10 * units.Mbps
	rtt := 50 * time.Millisecond
	req := units.RenoPhantomRequirement(rate, rtt)
	h, err := New(Config{
		Scheme:           SchemePQP,
		Rate:             rate,
		MaxRTT:           rtt,
		Queues:           1,
		PhantomQueueSize: 4 * req,
		PhantomRED: &phantom.REDConfig{
			MinBytes: req,
			MaxBytes: 4 * req,
			MaxProb:  0.01,
			Weight:   0.01,
			Seed:     1,
			MarkECN:  true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	flow, err := h.AttachFlow(FlowSpec{
		Key:   packet.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 443, Proto: 6},
		Class: 0,
		CC:    "reno",
		RTT:   rtt,
		ECN:   false, // not ECN-capable
		Start: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Run(15 * time.Second)
	if flow.CEMarks != 0 {
		t.Errorf("non-ECT flow received %d CE marks", flow.CEMarks)
	}
	if h.Stats().DroppedPackets == 0 {
		t.Error("non-ECT flow saw no drops from the marking RED queue")
	}
}
