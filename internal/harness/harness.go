// Package harness wires enforcers, network paths, and TCP flows into
// runnable simulated topologies: sender → rate enforcer → optional secondary
// bottleneck → propagation delay → receiver, with ACKs returning over the
// reverse delay. It corresponds to the paper's three-machine testbed
// (sender, middlebox, receiver) with netem-injected RTTs.
package harness

import (
	"fmt"
	"strings"
	"time"

	"bcpqp/internal/cc"
	"bcpqp/internal/enforcer"
	"bcpqp/internal/fairpolicer"
	"bcpqp/internal/netem"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/sched"
	"bcpqp/internal/shaper"
	"bcpqp/internal/sim"
	"bcpqp/internal/tbf"
	"bcpqp/internal/tcp"
	"bcpqp/internal/units"
)

// Scheme selects a rate-enforcement mechanism.
type Scheme int

const (
	// SchemeShaper is the multi-queue buffering shaper (DRR/priority).
	SchemeShaper Scheme = iota
	// SchemeSingleShaper is a single-FIFO shaper (status-quo baseline of
	// §6.4).
	SchemeSingleShaper
	// SchemePolicer is a token-bucket policer sized at one max BDP.
	SchemePolicer
	// SchemePolicerPlus is a token-bucket policer with the FairPolicer
	// sizing (max of New Reno and Cubic requirements).
	SchemePolicerPlus
	// SchemeFairPolicer is the FairPolicer baseline.
	SchemeFairPolicer
	// SchemePQP is the phantom-queue policer without burst control (§3).
	SchemePQP
	// SchemeBCPQP is the burst-controlled phantom-queue policer (§4).
	SchemeBCPQP
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeShaper:
		return "shaper"
	case SchemeSingleShaper:
		return "shaper-1q"
	case SchemePolicer:
		return "policer"
	case SchemePolicerPlus:
		return "policer+"
	case SchemeFairPolicer:
		return "fairpolicer"
	case SchemePQP:
		return "pqp"
	case SchemeBCPQP:
		return "bc-pqp"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ParseScheme maps a name to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToLower(name) {
	case "shaper", "drr-shaper":
		return SchemeShaper, nil
	case "shaper-1q", "singleshaper", "fifo":
		return SchemeSingleShaper, nil
	case "policer", "tbf":
		return SchemePolicer, nil
	case "policer+", "policerplus":
		return SchemePolicerPlus, nil
	case "fairpolicer", "fp":
		return SchemeFairPolicer, nil
	case "pqp":
		return SchemePQP, nil
	case "bc-pqp", "bcpqp":
		return SchemeBCPQP, nil
	}
	return 0, fmt.Errorf("harness: unknown scheme %q", name)
}

// AllSchemes lists every scheme, in the paper's comparison order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeShaper, SchemePolicer, SchemePolicerPlus,
		SchemeFairPolicer, SchemePQP, SchemeBCPQP}
}

// Config configures one enforcement point (one traffic aggregate).
type Config struct {
	// Scheme selects the enforcement mechanism.
	Scheme Scheme
	// Rate is the enforced aggregate rate.
	Rate units.Rate
	// MaxRTT is the worst-case flow RTT used to size buckets and queues.
	MaxRTT time.Duration
	// Queues is the number of classes/queues (ignored by plain policers
	// and the single-queue shaper).
	Queues int
	// Policy is the intra-aggregate rate-sharing policy; nil = fair.
	Policy *sched.Policy
	// FPWeights optionally provides per-bucket weights for the
	// FairPolicer weighted variant.
	FPWeights []float64
	// PhantomQueueSize overrides the phantom queue size B for PQP and
	// BC-PQP. Zero selects the paper defaults: the Reno requirement for
	// PQP and 10× the Policer+ sizing for BC-PQP ("a very high value").
	PhantomQueueSize int64
	// PhantomRED enables the RED AQM extension on PQP/BC-PQP queues.
	PhantomRED *phantom.REDConfig
	// Secondary, if non-zero, inserts a FIFO bottleneck of this rate
	// after the enforcer (Fig 3's downstream RAN-like hop).
	Secondary units.Rate
	// SecondaryBuf is the secondary bottleneck's buffer; zero selects
	// one BDP of the secondary rate at MaxRTT.
	SecondaryBuf int64
	// TickInterval drives periodic enforcer maintenance (burst-control
	// window rollover on idle aggregates). Zero selects 25 ms.
	TickInterval time.Duration
}

// Harness is a runnable enforcement point with attached flows.
type Harness struct {
	Loop *sim.Loop
	cfg  Config

	enf     enforcer.Enforcer
	ingress netem.Forward // entry point for data packets
	routes  map[packet.FlowKey]netem.Forward

	secondary *netem.Bottleneck
	shp       *shaper.Shaper
	pqp       *phantom.PQP

	flows []*tcp.Flow
}

// New builds a harness for cfg on a fresh event loop.
func New(cfg Config) (*Harness, error) {
	loop := sim.NewLoop()
	return NewOnLoop(loop, cfg)
}

// NewOnLoop builds a harness for cfg on an existing loop, so several
// aggregates can share one virtual clock.
func NewOnLoop(loop *sim.Loop, cfg Config) (*Harness, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("harness: non-positive rate %v", cfg.Rate)
	}
	if cfg.MaxRTT <= 0 {
		return nil, fmt.Errorf("harness: non-positive max RTT %v", cfg.MaxRTT)
	}
	if cfg.Queues <= 0 {
		cfg.Queues = 16
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 25 * time.Millisecond
	}
	h := &Harness{Loop: loop, cfg: cfg, routes: make(map[packet.FlowKey]netem.Forward)}

	// The egress side of the enforcer: optional secondary bottleneck,
	// then per-flow routing (propagation + receiver).
	egress := netem.Forward(h.route)
	if cfg.Secondary > 0 {
		buf := cfg.SecondaryBuf
		if buf <= 0 {
			buf = units.BDPBytes(cfg.Secondary, cfg.MaxRTT)
			if buf < 16*units.MSS {
				buf = 16 * units.MSS
			}
		}
		h.secondary = netem.NewBottleneck(loop, cfg.Secondary, buf, egress)
		egress = h.secondary.Forward
	}

	enf, err := buildEnforcer(loop, cfg, egress)
	if err != nil {
		return nil, err
	}
	h.enf = enf
	h.ingress = netem.Enforce(enf, egress)
	if s, ok := enf.(*shaper.Shaper); ok {
		h.shp = s
	}
	if p, ok := enf.(*phantom.PQP); ok {
		h.pqp = p
		h.scheduleTick(cfg.TickInterval)
	}
	return h, nil
}

// buildEnforcer instantiates the configured scheme with the sizing rules of
// §6.1.
func buildEnforcer(loop *sim.Loop, cfg Config, egress netem.Forward) (enforcer.Enforcer, error) {
	policy := cfg.Policy
	switch cfg.Scheme {
	case SchemeShaper, SchemeSingleShaper:
		queues := cfg.Queues
		if cfg.Scheme == SchemeSingleShaper {
			queues = 1
			policy = nil
		}
		qsize := units.BDPBytes(cfg.Rate, cfg.MaxRTT)
		if qsize < 16*units.MSS {
			qsize = 16 * units.MSS
		}
		return shaper.New(shaper.Config{
			Rate:      cfg.Rate,
			Queues:    queues,
			QueueSize: qsize,
			Policy:    policy,
			Scheduler: shaper.SchedulerFunc(func(at time.Duration, fn func()) {
				loop.At(at, func() { fn() })
			}),
			Sink: enforcer.Sink(egress),
		})
	case SchemePolicer:
		return tbf.New(cfg.Rate, tbf.BDPBucket(cfg.Rate, cfg.MaxRTT))
	case SchemePolicerPlus:
		return tbf.New(cfg.Rate, tbf.PlusBucket(cfg.Rate, cfg.MaxRTT))
	case SchemeFairPolicer:
		return fairpolicer.New(fairpolicer.Config{
			Rate:    cfg.Rate,
			Bucket:  tbf.PlusBucket(cfg.Rate, cfg.MaxRTT),
			Flows:   cfg.Queues,
			Weights: cfg.FPWeights,
		})
	case SchemePQP:
		size := cfg.PhantomQueueSize
		if size == 0 {
			size = units.RenoPhantomRequirement(cfg.Rate, cfg.MaxRTT)
		}
		return phantom.New(phantom.Config{
			Rate:      cfg.Rate,
			Queues:    cfg.Queues,
			QueueSize: size,
			Policy:    policy,
			RED:       cfg.PhantomRED,
		})
	case SchemeBCPQP:
		size := cfg.PhantomQueueSize
		if size == 0 {
			size = 10 * tbf.PlusBucket(cfg.Rate, cfg.MaxRTT)
		}
		return phantom.New(phantom.Config{
			Rate:         cfg.Rate,
			Queues:       cfg.Queues,
			QueueSize:    size,
			Policy:       policy,
			BurstControl: true,
			RED:          cfg.PhantomRED,
		})
	}
	return nil, fmt.Errorf("harness: unknown scheme %v", cfg.Scheme)
}

// scheduleTick pumps phantom-queue maintenance so burst-control windows
// roll over even when no packets arrive.
func (h *Harness) scheduleTick(interval time.Duration) {
	var tick func()
	tick = func() {
		h.pqp.Tick(h.Loop.Now())
		h.Loop.After(interval, tick)
	}
	h.Loop.After(interval, tick)
}

// route delivers post-enforcement packets to their flow's receiver path.
func (h *Harness) route(now time.Duration, pkt packet.Packet) {
	if next, ok := h.routes[pkt.Key]; ok {
		next(now, pkt)
	}
}

// FlowSpec describes a flow to attach to the harness.
type FlowSpec struct {
	// Key identifies the flow; it must be unique within the harness.
	Key packet.FlowKey
	// Class pins the flow to an enforcer class; packet.NoClass hashes.
	Class int
	// CC names the congestion control algorithm.
	CC string
	// RTT is the flow's two-way propagation delay.
	RTT time.Duration
	// Size is the flow length in bytes (0 = backlogged).
	Size int64
	// ECN marks the flow's segments ECN-capable (pairs with the
	// phantom RED MarkECN extension).
	ECN bool
	// Start is when the flow begins transmitting.
	Start time.Duration
	// OnDeliver/OnAcked/OnComplete are forwarded to the transport.
	OnDeliver  func(now time.Duration, bytes int)
	OnAcked    func(now time.Duration, totalAcked int64)
	OnComplete func(now time.Duration)
}

// AttachFlow creates the flow, wires its path through the enforcer and the
// per-flow propagation delay, and schedules its start.
func (h *Harness) AttachFlow(spec FlowSpec) (*tcp.Flow, error) {
	if _, dup := h.routes[spec.Key]; dup {
		return nil, fmt.Errorf("harness: duplicate flow key %v", spec.Key)
	}
	factory, ok := cc.NewByName(spec.CC)
	if !ok {
		return nil, fmt.Errorf("harness: unknown congestion control %q", spec.CC)
	}
	flow, err := tcp.NewFlow(tcp.Config{
		Loop:       h.Loop,
		Key:        spec.Key,
		Class:      spec.Class,
		CC:         factory(),
		RTT:        spec.RTT,
		Path:       h.ingress,
		Size:       spec.Size,
		ECN:        spec.ECN,
		OnDeliver:  spec.OnDeliver,
		OnAcked:    spec.OnAcked,
		OnComplete: spec.OnComplete,
	})
	if err != nil {
		return nil, err
	}
	h.routes[spec.Key] = netem.Delay(h.Loop, spec.RTT/2, flow.Deliver)
	h.Loop.At(spec.Start, flow.Start)
	h.flows = append(h.flows, flow)
	return flow, nil
}

// Enforcer returns the underlying enforcer.
func (h *Harness) Enforcer() enforcer.Enforcer { return h.enf }

// Stats returns the enforcer's accept/drop statistics.
func (h *Harness) Stats() enforcer.Stats {
	if sr, ok := h.enf.(enforcer.StatsReader); ok {
		return sr.EnforcerStats()
	}
	return enforcer.Stats{}
}

// Shaper returns the shaper instance, if the scheme is a shaper.
func (h *Harness) Shaper() *shaper.Shaper { return h.shp }

// PQP returns the phantom-queue policer, if the scheme is PQP/BC-PQP.
func (h *Harness) PQP() *phantom.PQP { return h.pqp }

// Secondary returns the secondary bottleneck, if configured.
func (h *Harness) Secondary() *netem.Bottleneck { return h.secondary }

// Flows returns the attached flows in attachment order.
func (h *Harness) Flows() []*tcp.Flow { return h.flows }

// Run advances the shared loop to the given virtual time.
func (h *Harness) Run(until time.Duration) {
	h.Loop.Run(until)
}
