package harness

import (
	"testing"
	"time"

	"bcpqp/internal/metrics"
	"bcpqp/internal/packet"
	"bcpqp/internal/units"
)

// runSingleFlow drives one backlogged flow of the given CC through the
// scheme and returns the achieved goodput over the measurement period
// (excluding the first warmupSkip of the run).
func runSingleFlow(t *testing.T, scheme Scheme, ccName string, rate units.Rate, rtt, dur time.Duration) units.Rate {
	t.Helper()
	h, err := New(Config{
		Scheme: scheme,
		Rate:   rate,
		MaxRTT: rtt,
		Queues: 4,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	meter := metrics.NewMeter(250 * time.Millisecond)
	_, err = h.AttachFlow(FlowSpec{
		Key:   packet.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 80, Proto: 6},
		Class: 0,
		CC:    ccName,
		RTT:   rtt,
		Start: 10 * time.Millisecond,
		OnDeliver: func(now time.Duration, bytes int) {
			meter.Add(now, 0, bytes)
		},
	})
	if err != nil {
		t.Fatalf("AttachFlow: %v", err)
	}
	h.Run(dur)

	// Average rate over the second half of the run (steady state).
	series := meter.Series(0)
	var sum units.Rate
	n := 0
	for i := len(series) / 2; i < len(series); i++ {
		sum += series[i]
		n++
	}
	if n == 0 {
		t.Fatalf("no measurement windows")
	}
	return sum / units.Rate(n)
}

func TestBacklogged(t *testing.T) {
	const (
		rate = 10 * units.Mbps
		rtt  = 100 * time.Millisecond
		dur  = 30 * time.Second
	)
	cases := []struct {
		scheme   Scheme
		cc       string
		min, max float64 // bounds on achieved/enforced ratio
	}{
		{SchemeShaper, "reno", 0.90, 1.05},
		{SchemeShaper, "cubic", 0.90, 1.05},
		{SchemeShaper, "bbr", 0.80, 1.05},
		{SchemeShaper, "vegas", 0.85, 1.05},
		{SchemeBCPQP, "reno", 0.85, 1.10},
		{SchemeBCPQP, "cubic", 0.85, 1.10},
		{SchemeBCPQP, "bbr", 0.80, 1.15},
		{SchemePQP, "reno", 0.85, 1.15},
		{SchemePolicerPlus, "reno", 0.85, 1.20},
		{SchemeFairPolicer, "reno", 0.80, 1.20},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scheme.String()+"/"+tc.cc, func(t *testing.T) {
			got := runSingleFlow(t, tc.scheme, tc.cc, rate, rtt, dur)
			ratio := float64(got) / float64(rate)
			t.Logf("%v/%s achieved %.3f of enforced rate", tc.scheme, tc.cc, ratio)
			if ratio < tc.min || ratio > tc.max {
				t.Errorf("achieved %.3f of enforced rate, want [%.2f, %.2f]",
					ratio, tc.min, tc.max)
			}
		})
	}
}

// TestBDPPolicerUnderenforces reproduces the §2.2 observation that a
// BDP-sized policer bucket is too small for a Reno flow to reach the
// enforced average rate at large RTT.
func TestBDPPolicerUnderenforces(t *testing.T) {
	got := runSingleFlow(t, SchemePolicer, "reno", 10*units.Mbps, 100*time.Millisecond, 30*time.Second)
	ratio := float64(got) / float64(10*units.Mbps)
	t.Logf("policer/reno achieved %.3f of enforced rate", ratio)
	if ratio > 0.95 {
		t.Errorf("BDP-sized policer achieved %.3f of rate; expected under-enforcement (<0.95)", ratio)
	}
	if ratio < 0.30 {
		t.Errorf("BDP-sized policer achieved only %.3f; transport is likely broken", ratio)
	}
}

// TestUndersizedPhantomQueueUnderenforces reproduces Fig 2: a phantom queue
// far below the BDP²/18 Reno requirement cannot sustain the enforced rate.
func TestUndersizedPhantomQueueUnderenforces(t *testing.T) {
	const (
		rate = 10 * units.Mbps
		rtt  = 100 * time.Millisecond
	)
	req := units.RenoPhantomRequirement(rate, rtt)

	h, err := New(Config{
		Scheme:           SchemePQP,
		Rate:             rate,
		MaxRTT:           rtt,
		Queues:           1,
		PhantomQueueSize: req / 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	meter := metrics.NewMeter(250 * time.Millisecond)
	if _, err := h.AttachFlow(FlowSpec{
		Key:   packet.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 80, Proto: 6},
		Class: 0,
		CC:    "reno",
		RTT:   rtt,
		Start: 10 * time.Millisecond,
		OnDeliver: func(now time.Duration, bytes int) {
			meter.Add(now, 0, bytes)
		},
	}); err != nil {
		t.Fatal(err)
	}
	h.Run(30 * time.Second)

	var total int64
	series := meter.WindowBytes(0)
	for _, b := range series[len(series)/2:] {
		total += b
	}
	avg := units.Rate(float64(total) * 8 / (float64(len(series)-len(series)/2) * 0.25))
	ratio := float64(avg) / float64(rate)
	t.Logf("undersized PQP achieved %.3f of enforced rate", ratio)
	if ratio > 0.92 {
		t.Errorf("queue of B/8 achieved %.3f of rate; expected clear under-enforcement", ratio)
	}
}

func TestSchemeStringsAndParsing(t *testing.T) {
	for _, s := range AllSchemes() {
		name := s.String()
		if name == "" {
			t.Errorf("scheme %d has empty name", int(s))
		}
		back, err := ParseScheme(name)
		if err != nil || back != s {
			t.Errorf("round trip %q -> %v, %v", name, back, err)
		}
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme should still stringify")
	}
	if _, err := ParseScheme("shaper-1q"); err != nil {
		t.Errorf("shaper-1q alias: %v", err)
	}
	if _, err := ParseScheme("drr-shaper"); err != nil {
		t.Errorf("drr-shaper alias: %v", err)
	}
}

func TestSingleQueueShaperHarness(t *testing.T) {
	h, err := New(Config{
		Scheme: SchemeSingleShaper,
		Rate:   5 * units.Mbps,
		MaxRTT: 30 * time.Millisecond,
		Queues: 8, // ignored: single-queue shaper collapses to one FIFO
	})
	if err != nil {
		t.Fatal(err)
	}
	meter := metrics.NewMeter(0)
	if _, err := h.AttachFlow(FlowSpec{
		Key:   packet.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 80, Proto: 6},
		Class: 0,
		CC:    "cubic",
		RTT:   20 * time.Millisecond,
		Start: 10 * time.Millisecond,
		OnDeliver: func(now time.Duration, b int) {
			meter.Add(now, 0, b)
		},
	}); err != nil {
		t.Fatal(err)
	}
	h.Run(10 * time.Second)
	if got := steadyMbps(meter, 0); got < 4 || got > 5.5 {
		t.Errorf("single-queue shaper delivered %.2f Mbps, want ≈5", got)
	}
}

func TestHarnessValidation(t *testing.T) {
	if _, err := New(Config{Scheme: SchemeBCPQP, MaxRTT: time.Millisecond}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := New(Config{Scheme: SchemeBCPQP, Rate: units.Mbps}); err == nil {
		t.Error("zero max RTT accepted")
	}
}
