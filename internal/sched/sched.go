// Package sched models rate-sharing policies as trees and provides the two
// operations every enforcer needs from a policy:
//
//   - Shares: the instantaneous drain rate each class is entitled to, given
//     the set of active classes (used by BC-PQP to estimate r_i* for burst
//     control, §4 of the paper).
//   - Drain: distributing a byte budget among occupied queues the way the
//     analogous shaper would serve them (used by PQP/BC-PQP to batch phantom
//     dequeues, §3 of the paper).
//
// A policy tree is built from three node kinds: leaves (one per traffic
// class), weighted-fair nodes (children share the parent rate in proportion
// to their weights; equal weights give per-flow fairness), and priority
// nodes (children are served in strict order). Nesting nodes expresses the
// paper's hierarchical policies, e.g. two priority groups with weighted
// fairness inside each.
package sched

import (
	"fmt"
)

// Kind discriminates policy tree nodes.
type Kind int

const (
	// KindLeaf is a terminal node bound to a traffic class.
	KindLeaf Kind = iota
	// KindWeighted shares the parent rate among children by weight.
	KindWeighted
	// KindPriority serves children in strict priority order.
	KindPriority
)

// Node is one vertex of a policy tree. Build trees with Leaf, Weighted and
// Priority, then wrap the root with New.
type Node struct {
	kind     Kind
	class    int
	weight   float64
	children []*Node

	// Preallocated GPS scratch (weighted nodes only), sized by New so
	// the per-packet drain path allocates nothing. Policies are not
	// safe for concurrent use.
	pend   []int64
	allocs []int64
}

// Leaf returns a terminal node for the given traffic class with weight 1.
func Leaf(class int) *Node {
	return &Node{kind: KindLeaf, class: class, weight: 1}
}

// WithWeight sets the node's weight within its (weighted) parent and returns
// the node for chaining. Weights must be positive.
func (n *Node) WithWeight(w float64) *Node {
	n.weight = w
	return n
}

// Weighted returns a node whose children share the parent's rate in
// proportion to their weights. With equal weights this is fair sharing.
func Weighted(children ...*Node) *Node {
	return &Node{kind: KindWeighted, weight: 1, children: children}
}

// Priority returns a node whose children are served in strict priority
// order: children[0] is the highest priority.
func Priority(children ...*Node) *Node {
	return &Node{kind: KindPriority, weight: 1, children: children}
}

// Policy is a validated policy tree over classes [0, NumClasses).
type Policy struct {
	root *Node
	n    int
}

// New validates a policy tree: every class in [0, max] appears exactly once
// as a leaf, weights are positive, and internal nodes have children.
func New(root *Node) (*Policy, error) {
	if root == nil {
		return nil, fmt.Errorf("sched: nil policy root")
	}
	seen := map[int]bool{}
	maxClass := -1
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.weight <= 0 {
			return fmt.Errorf("sched: non-positive weight %v", n.weight)
		}
		switch n.kind {
		case KindLeaf:
			if n.class < 0 {
				return fmt.Errorf("sched: negative class %d", n.class)
			}
			if seen[n.class] {
				return fmt.Errorf("sched: class %d appears twice", n.class)
			}
			seen[n.class] = true
			if n.class > maxClass {
				maxClass = n.class
			}
			return nil
		case KindWeighted, KindPriority:
			if len(n.children) == 0 {
				return fmt.Errorf("sched: internal node with no children")
			}
			if n.kind == KindWeighted {
				n.pend = make([]int64, len(n.children))
				n.allocs = make([]int64, len(n.children))
			}
			for _, c := range n.children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("sched: unknown node kind %d", n.kind)
		}
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	for c := 0; c <= maxClass; c++ {
		if !seen[c] {
			return nil, fmt.Errorf("sched: class %d missing from policy", c)
		}
	}
	return &Policy{root: root, n: maxClass + 1}, nil
}

// MustNew is New that panics on error, for static policy literals.
func MustNew(root *Node) *Policy {
	p, err := New(root)
	if err != nil {
		panic(err)
	}
	return p
}

// Fair returns a per-flow fairness policy over n classes (equal-weight
// round-robin, the paper's default intra-aggregate policy).
func Fair(n int) *Policy {
	children := make([]*Node, n)
	for i := range children {
		children[i] = Leaf(i)
	}
	return MustNew(Weighted(children...))
}

// WeightedFair returns a weighted fairness policy where class i has weight
// ws[i].
func WeightedFair(ws ...float64) *Policy {
	children := make([]*Node, len(ws))
	for i, w := range ws {
		children[i] = Leaf(i).WithWeight(w)
	}
	return MustNew(Weighted(children...))
}

// StrictPriority returns a strict-priority policy over n classes, class 0
// being the highest priority.
func StrictPriority(n int) *Policy {
	children := make([]*Node, n)
	for i := range children {
		children[i] = Leaf(i)
	}
	return MustNew(Priority(children...))
}

// NumClasses returns the number of traffic classes the policy covers.
func (p *Policy) NumClasses() int { return p.n }

// FlatWeighted returns the per-class weights when the policy is a single
// weighted node over plain leaves — the common fair / weighted-fair case —
// and nil for hierarchical or priority policies. Enforcers use this to take
// an allocation-free flat drain path.
func (p *Policy) FlatWeighted() []float64 {
	root := p.root
	if root.kind == KindLeaf {
		return []float64{root.weight}
	}
	if root.kind != KindWeighted {
		return nil
	}
	out := make([]float64, p.n)
	for _, c := range root.children {
		if c.kind != KindLeaf {
			return nil
		}
		out[c.class] = c.weight
	}
	return out
}

// Shares fills out[class] with the drain rate assigned to each class when
// the total service rate is rate and active(class) reports which classes
// currently have traffic. Inactive classes receive 0; their share is
// redistributed as the analogous shaper would (weighted nodes renormalize
// over active children; priority nodes give everything to the highest
// active child).
func (p *Policy) Shares(rate float64, active func(int) bool, out []float64) {
	for i := range out {
		out[i] = 0
	}
	p.shares(p.root, rate, active, out)
}

func (p *Policy) shares(n *Node, rate float64, active func(int) bool, out []float64) {
	switch n.kind {
	case KindLeaf:
		if n.class < len(out) {
			out[n.class] = rate
		}
	case KindWeighted:
		var sum float64
		for _, c := range n.children {
			if p.anyActive(c, active) {
				sum += c.weight
			}
		}
		if sum == 0 {
			return
		}
		for _, c := range n.children {
			if p.anyActive(c, active) {
				p.shares(c, rate*c.weight/sum, active, out)
			}
		}
	case KindPriority:
		for _, c := range n.children {
			if p.anyActive(c, active) {
				p.shares(c, rate, active, out)
				return
			}
		}
	}
}

func (p *Policy) anyActive(n *Node, active func(int) bool) bool {
	if n.kind == KindLeaf {
		return active(n.class)
	}
	for _, c := range n.children {
		if p.anyActive(c, active) {
			return true
		}
	}
	return false
}

// Drain distributes up to budget bytes of service among the occupied queues
// the way the analogous shaper would: strict order at priority nodes, and
// work-conserving generalized-processor-sharing at weighted nodes (a queue's
// unused allocation is redistributed to its siblings). length(class) must
// report the bytes currently queued for a class and drain(class, n) applies
// n bytes of service to it. Drain returns the bytes actually drained, which
// is min(budget, total queued).
func (p *Policy) Drain(budget int64, length func(int) int64, drain func(int, int64)) int64 {
	if budget <= 0 {
		return 0
	}
	return p.drainNode(p.root, budget, length, drain)
}

// drainNode consumes exactly min(budget, pending(n)) bytes from n's subtree.
func (p *Policy) drainNode(n *Node, budget int64, length func(int) int64, drain func(int, int64)) int64 {
	switch n.kind {
	case KindLeaf:
		d := length(n.class)
		if d > budget {
			d = budget
		}
		if d > 0 {
			drain(n.class, d)
		}
		return d
	case KindPriority:
		var total int64
		for _, c := range n.children {
			if budget <= 0 {
				break
			}
			d := p.drainNode(c, budget, length, drain)
			budget -= d
			total += d
		}
		return total
	case KindWeighted:
		return p.drainWeighted(n, budget, length, drain)
	}
	return 0
}

// drainWeighted implements byte-exact GPS among the children of a weighted
// node. It repeatedly allocates the remaining budget in proportion to the
// weights of children with pending bytes; children whose backlog is below
// their allocation are drained completely and the loop re-allocates the
// slack, so service is work-conserving.
func (p *Policy) drainWeighted(n *Node, budget int64, length func(int) int64, drain func(int, int64)) int64 {
	pend := n.pend
	var total int64
	for budget > 0 {
		var wsum float64
		var pendingChildren int
		for i, c := range n.children {
			pend[i] = p.pending(c, length)
			if pend[i] > 0 {
				wsum += c.weight
				pendingChildren++
			}
		}
		if pendingChildren == 0 {
			break
		}
		// First pass: fully drain children whose backlog fits within
		// their proportional allocation, then re-allocate the slack.
		drainedSmall := false
		for i, c := range n.children {
			if pend[i] == 0 {
				continue
			}
			alloc := int64(float64(budget) * c.weight / wsum)
			if pend[i] <= alloc {
				d := p.drainNode(c, pend[i], length, drain)
				budget -= d
				total += d
				drainedSmall = true
			}
		}
		if drainedSmall {
			continue
		}
		// Every pending child has more backlog than its allocation:
		// hand each child its (floored) share and distribute the
		// rounding remainder byte-by-byte so the budget is consumed
		// exactly.
		var consumed int64
		allocs := n.allocs
		for i := range allocs {
			allocs[i] = 0
		}
		for i, c := range n.children {
			if pend[i] == 0 {
				continue
			}
			allocs[i] = int64(float64(budget) * c.weight / wsum)
			consumed += allocs[i]
		}
		leftover := budget - consumed
		for i := range n.children {
			if leftover == 0 {
				break
			}
			if pend[i] > allocs[i] {
				allocs[i]++
				consumed++
				leftover--
			}
		}
		for i, c := range n.children {
			if allocs[i] > 0 {
				d := p.drainNode(c, allocs[i], length, drain)
				budget -= d
				total += d
			}
		}
		break
	}
	return total
}

// pending returns the bytes queued in a subtree.
func (p *Policy) pending(n *Node, length func(int) int64) int64 {
	if n.kind == KindLeaf {
		return length(n.class)
	}
	var sum int64
	for _, c := range n.children {
		sum += p.pending(c, length)
	}
	return sum
}
