package sched

import (
	"testing"
)

// FuzzDrainConservation drives the GPS drain engine with arbitrary backlog
// vectors and budgets across several policy shapes, asserting the
// conservation law: exactly min(budget, total backlog) is drained, no queue
// goes negative, and work conservation holds (no budget left while backlog
// remains).
func FuzzDrainConservation(f *testing.F) {
	f.Add(uint32(1000), uint32(2000), uint32(0), uint32(500), uint32(3000))
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0), uint32(1))
	f.Add(uint32(1<<30), uint32(1), uint32(1<<20), uint32(7), uint32(1<<31-1))

	policies := []*Policy{
		Fair(4),
		WeightedFair(5, 1, 3, 2),
		StrictPriority(4),
		MustNew(Priority(
			Weighted(Leaf(0).WithWeight(3), Leaf(1)),
			Weighted(Leaf(2), Leaf(3).WithWeight(9)),
		)),
		MustNew(Weighted(
			Priority(Leaf(0), Leaf(1)).WithWeight(2),
			Priority(Leaf(2), Leaf(3)),
		)),
	}

	f.Fuzz(func(t *testing.T, a, b, c, d, budget uint32) {
		lens := []int64{int64(a % 1e7), int64(b % 1e7), int64(c % 1e7), int64(d % 1e7)}
		bud := int64(budget % 3e7)
		for _, p := range policies {
			q := make([]int64, 4)
			copy(q, lens)
			var total int64
			for _, l := range q {
				total += l
			}
			want := bud
			if total < want {
				want = total
			}
			got := p.Drain(bud,
				func(i int) int64 { return q[i] },
				func(i int, n int64) {
					q[i] -= n
					if q[i] < 0 {
						t.Fatalf("queue %d over-drained to %d", i, q[i])
					}
				})
			if got != want {
				t.Fatalf("drained %d, want %d (budget %d, backlog %d)", got, want, bud, total)
			}
			var left int64
			for _, l := range q {
				left += l
			}
			if left != total-got {
				t.Fatalf("backlog accounting: left %d, want %d", left, total-got)
			}
		}
	})
}

// FuzzSharesConservation checks that Shares always distributes exactly the
// offered rate over the active set.
func FuzzSharesConservation(f *testing.F) {
	f.Add(uint8(0b1010))
	f.Add(uint8(0b1111))
	f.Add(uint8(0))

	policies := []*Policy{
		Fair(4),
		WeightedFair(9, 1, 4, 4),
		StrictPriority(4),
		MustNew(Priority(
			Weighted(Leaf(0), Leaf(1).WithWeight(5)),
			Weighted(Leaf(2).WithWeight(2), Leaf(3)),
		)),
	}
	f.Fuzz(func(t *testing.T, mask uint8) {
		active := func(c int) bool { return mask&(1<<uint(c)) != 0 }
		anyActive := mask&0xF != 0
		out := make([]float64, 4)
		for _, p := range policies {
			p.Shares(100, active, out)
			var sum float64
			for c, s := range out {
				if s < 0 {
					t.Fatalf("negative share %v for class %d", s, c)
				}
				if !active(c) && s != 0 {
					t.Fatalf("inactive class %d got share %v", c, s)
				}
				sum += s
			}
			if anyActive && (sum < 99.9999 || sum > 100.0001) {
				t.Fatalf("shares sum %v, want 100 (mask %04b)", sum, mask)
			}
			if !anyActive && sum != 0 {
				t.Fatalf("idle policy distributed %v", sum)
			}
		}
	})
}
