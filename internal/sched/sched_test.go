package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func allActive(int) bool  { return true }
func noneActive(int) bool { return false }

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		root *Node
		ok   bool
	}{
		{"nil root", nil, false},
		{"single leaf", Leaf(0), true},
		{"fair pair", Weighted(Leaf(0), Leaf(1)), true},
		{"duplicate class", Weighted(Leaf(0), Leaf(0)), false},
		{"missing class", Weighted(Leaf(0), Leaf(2)), false},
		{"negative class", Leaf(-1), false},
		{"zero weight", Weighted(Leaf(0).WithWeight(0), Leaf(1)), false},
		{"empty internal", Weighted(), false},
		{"nested ok", Priority(Weighted(Leaf(0), Leaf(1)), Leaf(2)), true},
	}
	for _, tc := range cases {
		_, err := New(tc.root)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestFairShares(t *testing.T) {
	p := Fair(4)
	out := make([]float64, 4)
	p.Shares(100, allActive, out)
	for i, s := range out {
		if math.Abs(s-25) > 1e-9 {
			t.Errorf("class %d share = %v, want 25", i, s)
		}
	}
	// Only classes 1 and 3 active: each gets half.
	p.Shares(100, func(c int) bool { return c == 1 || c == 3 }, out)
	want := []float64{0, 50, 0, 50}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Errorf("class %d share = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestWeightedShares(t *testing.T) {
	p := WeightedFair(1, 2, 3, 4)
	out := make([]float64, 4)
	p.Shares(100, allActive, out)
	want := []float64{10, 20, 30, 40}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Errorf("class %d share = %v, want %v", i, out[i], want[i])
		}
	}
	// Class 3 leaves: remaining renormalize to 1:2:3.
	p.Shares(60, func(c int) bool { return c < 3 }, out)
	want = []float64{10, 20, 30, 0}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Errorf("after departure: class %d share = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestPriorityShares(t *testing.T) {
	p := StrictPriority(3)
	out := make([]float64, 3)
	p.Shares(100, allActive, out)
	if out[0] != 100 || out[1] != 0 || out[2] != 0 {
		t.Errorf("priority shares = %v, want [100 0 0]", out)
	}
	p.Shares(100, func(c int) bool { return c >= 1 }, out)
	if out[0] != 0 || out[1] != 100 || out[2] != 0 {
		t.Errorf("priority shares with 0 idle = %v, want [0 100 0]", out)
	}
	p.Shares(100, noneActive, out)
	if out[0] != 0 || out[1] != 0 || out[2] != 0 {
		t.Errorf("all-idle shares = %v, want zeros", out)
	}
}

func TestNestedShares(t *testing.T) {
	// The paper's example: two classes, first with 2× the weight of the
	// second, per-flow fairness within each class.
	p := MustNew(Weighted(
		Weighted(Leaf(0), Leaf(1)).WithWeight(2),
		Weighted(Leaf(2), Leaf(3)).WithWeight(1),
	))
	out := make([]float64, 4)
	p.Shares(90, allActive, out)
	want := []float64{30, 30, 15, 15}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Errorf("class %d share = %v, want %v", i, out[i], want[i])
		}
	}
	// One flow in the heavy class: it takes the full class share.
	p.Shares(90, func(c int) bool { return c != 1 }, out)
	want = []float64{60, 0, 15, 15}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Errorf("class %d share = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestPriorityOverWeighted(t *testing.T) {
	// Fig 6d: p1 = 3 weighted flows (high priority), p2 = 1 backlogged.
	p := MustNew(Priority(
		Weighted(Leaf(0).WithWeight(3), Leaf(1).WithWeight(2), Leaf(2).WithWeight(1)),
		Leaf(3),
	))
	out := make([]float64, 4)
	p.Shares(60, allActive, out)
	want := []float64{30, 20, 10, 0}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Errorf("class %d share = %v, want %v", i, out[i], want[i])
		}
	}
	// p1 idle: p2 gets everything.
	p.Shares(60, func(c int) bool { return c == 3 }, out)
	if out[3] != 60 {
		t.Errorf("p2 share = %v, want 60", out[3])
	}
}

// drainHarness runs Drain against in-memory queue lengths.
type drainHarness struct {
	lens []int64
}

func (h *drainHarness) length(c int) int64 { return h.lens[c] }
func (h *drainHarness) drain(c int, n int64) {
	if n > h.lens[c] {
		panic("over-drain")
	}
	h.lens[c] -= n
}

func TestDrainFairEqualBacklogs(t *testing.T) {
	p := Fair(4)
	h := &drainHarness{lens: []int64{1000, 1000, 1000, 1000}}
	got := p.Drain(2000, h.length, h.drain)
	if got != 2000 {
		t.Errorf("drained %d, want 2000", got)
	}
	for i, l := range h.lens {
		if l != 500 {
			t.Errorf("queue %d left %d, want 500", i, l)
		}
	}
}

func TestDrainWorkConserving(t *testing.T) {
	p := Fair(3)
	// Queue 0 has little; its slack must go to the others.
	h := &drainHarness{lens: []int64{100, 5000, 5000}}
	got := p.Drain(3100, h.length, h.drain)
	if got != 3100 {
		t.Errorf("drained %d, want 3100", got)
	}
	if h.lens[0] != 0 {
		t.Errorf("queue 0 left %d, want 0", h.lens[0])
	}
	if h.lens[1] != 3500 || h.lens[2] != 3500 {
		t.Errorf("queues left %v, want [0 3500 3500]", h.lens)
	}
}

func TestDrainWeighted(t *testing.T) {
	p := WeightedFair(3, 1)
	h := &drainHarness{lens: []int64{10000, 10000}}
	p.Drain(4000, h.length, h.drain)
	if h.lens[0] != 7000 || h.lens[1] != 9000 {
		t.Errorf("weighted drain left %v, want [7000 9000]", h.lens)
	}
}

func TestDrainPriority(t *testing.T) {
	p := StrictPriority(3)
	h := &drainHarness{lens: []int64{500, 1000, 1000}}
	p.Drain(1200, h.length, h.drain)
	if h.lens[0] != 0 || h.lens[1] != 300 || h.lens[2] != 1000 {
		t.Errorf("priority drain left %v, want [0 300 1000]", h.lens)
	}
}

func TestDrainBudgetExceedsBacklog(t *testing.T) {
	p := Fair(2)
	h := &drainHarness{lens: []int64{100, 200}}
	got := p.Drain(1000, h.length, h.drain)
	if got != 300 {
		t.Errorf("drained %d, want 300", got)
	}
	if h.lens[0] != 0 || h.lens[1] != 0 {
		t.Errorf("queues not emptied: %v", h.lens)
	}
}

func TestDrainZeroBudget(t *testing.T) {
	p := Fair(2)
	h := &drainHarness{lens: []int64{100, 200}}
	if got := p.Drain(0, h.length, h.drain); got != 0 {
		t.Errorf("drained %d on zero budget", got)
	}
	if got := p.Drain(-5, h.length, h.drain); got != 0 {
		t.Errorf("drained %d on negative budget", got)
	}
}

func TestDrainNested(t *testing.T) {
	p := MustNew(Priority(
		Weighted(Leaf(0), Leaf(1)),
		Leaf(2),
	))
	h := &drainHarness{lens: []int64{300, 300, 1000}}
	p.Drain(1000, h.length, h.drain)
	// High-priority group drains fully (600), remainder to low priority.
	if h.lens[0] != 0 || h.lens[1] != 0 || h.lens[2] != 600 {
		t.Errorf("nested drain left %v, want [0 0 600]", h.lens)
	}
}

// Property: Drain consumes exactly min(budget, total backlog), never
// over-drains a queue, and never leaves budget unused while backlog remains.
func TestDrainConservationProperty(t *testing.T) {
	policies := []*Policy{
		Fair(5),
		WeightedFair(1, 2, 3, 4, 5),
		StrictPriority(5),
		MustNew(Priority(
			Weighted(Leaf(0).WithWeight(2), Leaf(1)),
			Weighted(Leaf(2), Leaf(3), Leaf(4)),
		)),
	}
	f := func(lens [5]uint32, budget uint32) bool {
		for _, p := range policies {
			h := &drainHarness{lens: make([]int64, 5)}
			var total int64
			for i, l := range lens {
				h.lens[i] = int64(l % 100000)
				total += h.lens[i]
			}
			b := int64(budget % 200000)
			want := b
			if total < b {
				want = total
			}
			got := p.Drain(b, h.length, h.drain)
			if got != want {
				return false
			}
			var left int64
			for _, l := range h.lens {
				if l < 0 {
					return false
				}
				left += l
			}
			if left != total-got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Shares sums to the offered rate whenever any class is active,
// and inactive classes get zero.
func TestSharesConservationProperty(t *testing.T) {
	policies := []*Policy{
		Fair(6),
		WeightedFair(5, 4, 3, 2, 1, 1),
		StrictPriority(6),
		MustNew(Weighted(
			Priority(Leaf(0), Leaf(1)).WithWeight(3),
			Weighted(Leaf(2), Leaf(3).WithWeight(7)).WithWeight(2),
			Leaf(4).WithWeight(1),
			Leaf(5).WithWeight(1),
		)),
	}
	f := func(mask uint8) bool {
		active := func(c int) bool { return mask&(1<<uint(c)) != 0 }
		anyActive := mask&0x3f != 0
		for _, p := range policies {
			out := make([]float64, 6)
			p.Shares(120, active, out)
			var sum float64
			for c, s := range out {
				if s < 0 {
					return false
				}
				if !active(c) && s != 0 {
					return false
				}
				sum += s
			}
			if anyActive && math.Abs(sum-120) > 1e-6 {
				return false
			}
			if !anyActive && sum != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid policy")
		}
	}()
	MustNew(Weighted(Leaf(0), Leaf(0)))
}

func TestNumClasses(t *testing.T) {
	if got := Fair(7).NumClasses(); got != 7 {
		t.Errorf("NumClasses = %d, want 7", got)
	}
}
