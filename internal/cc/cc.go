// Package cc implements the sender-side congestion control algorithms the
// paper's evaluation exercises: New Reno, Cubic, BBR, and Vegas (§6.1 uses
// the Linux kernel implementations; these are reimplementations of the same
// published state machines).
//
// The algorithms matter to the reproduction because every headline result
// depends on their feedback loops: the O(BDP²) phantom-queue sizing rule
// comes from Reno's AIMD sawtooth interacting with the absence of queueing
// delay, slow-start overshoot is what burst control tames, BBR's loss
// insensitivity is why policers fail to share rate fairly against it, and
// Vegas's delay sensitivity makes it the weakest competitor through a
// buffering shaper.
package cc

import (
	"time"

	"bcpqp/internal/units"
)

// Ack carries the information a congestion controller receives when new
// data is cumulatively acknowledged.
type Ack struct {
	// Now is the current virtual time.
	Now time.Duration
	// RTT is the round-trip sample for the newest acked segment (0 if
	// unavailable, e.g. acks of retransmitted data).
	RTT time.Duration
	// Acked is the number of newly acknowledged bytes.
	Acked int64
	// Inflight is the number of unacknowledged bytes after this ack.
	Inflight int64
	// BandwidthSample is the delivery-rate sample for the acked segment
	// (0 if unavailable).
	BandwidthSample units.Rate
	// RoundStart reports that this ack begins a new round trip.
	RoundStart bool
}

// Controller is a congestion control algorithm. Implementations are driven
// by the transport in internal/tcp.
type Controller interface {
	// Name identifies the algorithm ("reno", "cubic", "bbr", "vegas").
	Name() string
	// OnAck processes a cumulative acknowledgment of new data.
	OnAck(a Ack)
	// OnLoss processes a fast-retransmit loss signal (at most once per
	// window of data).
	OnLoss(now time.Duration)
	// OnECN processes an ECN congestion-experienced echo (at most once
	// per window of data). Per RFC 3168 the response matches the loss
	// response, without any retransmission.
	OnECN(now time.Duration)
	// OnTimeout processes a retransmission timeout.
	OnTimeout(now time.Duration)
	// CongestionWindow returns the current window in bytes.
	CongestionWindow() int64
	// PacingRate returns the sender pacing rate, if the algorithm paces
	// (BBR); ok is false for pure window-based algorithms.
	PacingRate() (rate units.Rate, ok bool)
}

// Factory builds a fresh controller instance.
type Factory func() Controller

// NewByName returns a factory for the named algorithm. Supported names:
// "reno", "newreno", "cubic", "bbr", "vegas".
func NewByName(name string) (Factory, bool) {
	switch name {
	case "reno", "newreno":
		return func() Controller { return NewReno() }, true
	case "cubic":
		return func() Controller { return NewCubic() }, true
	case "bbr":
		return func() Controller { return NewBBR() }, true
	case "vegas":
		return func() Controller { return NewVegas() }, true
	default:
		return nil, false
	}
}

// Names lists the supported congestion control algorithms.
func Names() []string { return []string{"reno", "cubic", "bbr", "vegas"} }

// Common window constants (bytes).
const (
	initialWindow = 10 * units.MSS // RFC 6928 IW10
	minWindow     = 2 * units.MSS
)
