package cc

import (
	"time"

	"bcpqp/internal/units"
)

// BBR implements a faithful simplification of BBR v1 (Cardwell et al. 2016):
// a model-based algorithm that estimates the bottleneck bandwidth (windowed
// max of delivery-rate samples) and the round-trip propagation delay
// (windowed min of RTT samples) and paces at gain-cycled multiples of the
// estimated bandwidth. Phases: STARTUP (2/ln2 gain until bandwidth
// plateaus), DRAIN, PROBE_BW (8-phase gain cycle), and PROBE_RTT.
//
// BBR v1 does not reduce its window on packet loss — the property that makes
// it dominate loss-based flows through policers in §6.4 and Appendix B.
type BBR struct {
	mode bbrMode

	btlBw    maxRateFilter
	rtProp   time.Duration
	rtPropAt time.Duration

	pacingGain float64
	cwndGain   float64

	round          int
	roundStartTime time.Duration
	fullBw         units.Rate
	fullBwCount    int
	cycleIndex     int
	cycleStart     time.Duration
	probeRTTDone   time.Duration
	priorCwnd      int64
	minRTTExpiry   time.Duration
	lastNow        time.Duration
	inflightLatest int64
}

type bbrMode int

const (
	bbrStartup bbrMode = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

// BBR constants from the published design.
const (
	bbrHighGain     = 2.885 // 2/ln(2)
	bbrDrainGain    = 1 / bbrHighGain
	bbrCwndGain     = 2.0
	bbrMinRTTWindow = 10 * time.Second
	bbrProbeRTTTime = 200 * time.Millisecond
)

var bbrCycleGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBR returns a BBR controller.
func NewBBR() *BBR {
	return &BBR{
		mode:       bbrStartup,
		pacingGain: bbrHighGain,
		cwndGain:   bbrHighGain,
		btlBw:      newMaxRateFilter(10),
	}
}

// Name implements Controller.
func (b *BBR) Name() string { return "bbr" }

// OnAck implements Controller.
func (b *BBR) OnAck(a Ack) {
	b.inflightLatest = a.Inflight

	if a.RTT > 0 {
		if b.rtProp == 0 || a.RTT <= b.rtProp || a.Now-b.rtPropAt > bbrMinRTTWindow {
			b.rtProp = a.RTT
			b.rtPropAt = a.Now
		}
	}
	if a.BandwidthSample > 0 {
		b.btlBw.update(b.round, a.BandwidthSample)
	}

	// Round accounting: a "round" is one estimated RTT of wall time.
	if b.rtProp > 0 && a.Now-b.roundStartTime >= b.rtProp {
		b.roundStartTime = a.Now
		b.round++
		b.checkFullPipe()
	}

	switch b.mode {
	case bbrStartup:
		// handled by checkFullPipe
	case bbrDrain:
		if a.Inflight <= b.bdp(1.0) {
			b.enterProbeBW(a.Now)
		}
	case bbrProbeBW:
		b.advanceCycle(a.Now)
		b.maybeEnterProbeRTT(a.Now)
	case bbrProbeRTT:
		if a.Now >= b.probeRTTDone {
			b.rtPropAt = a.Now
			b.enterProbeBW(a.Now)
		}
	}
}

// checkFullPipe detects the STARTUP bandwidth plateau: three rounds without
// ≥25% bandwidth growth.
func (b *BBR) checkFullPipe() {
	if b.mode != bbrStartup {
		return
	}
	bw := b.btlBw.get()
	if bw > b.fullBw*5/4 {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= 3 {
		b.mode = bbrDrain
		b.pacingGain = bbrDrainGain
		b.cwndGain = bbrHighGain
	}
}

func (b *BBR) enterProbeBW(now time.Duration) {
	b.mode = bbrProbeBW
	b.cwndGain = bbrCwndGain
	b.cycleIndex = 0
	b.cycleStart = now
	b.pacingGain = bbrCycleGains[b.cycleIndex]
}

// advanceCycle rotates the PROBE_BW pacing-gain cycle once per min-RTT.
func (b *BBR) advanceCycle(now time.Duration) {
	interval := b.rtProp
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if now-b.cycleStart < interval {
		return
	}
	// Stay in the 0.75 phase until inflight drains to BDP.
	if bbrCycleGains[b.cycleIndex] == 0.75 && b.inflightLatest > b.bdp(1.0) {
		return
	}
	b.cycleStart = now
	b.cycleIndex = (b.cycleIndex + 1) % len(bbrCycleGains)
	b.pacingGain = bbrCycleGains[b.cycleIndex]
}

// maybeEnterProbeRTT dips the window to drain the queue and re-measure the
// propagation delay when the min-RTT estimate has gone stale.
func (b *BBR) maybeEnterProbeRTT(now time.Duration) {
	if b.rtProp == 0 || now-b.rtPropAt < bbrMinRTTWindow {
		return
	}
	b.mode = bbrProbeRTT
	b.probeRTTDone = now + bbrProbeRTTTime
}

// bdp returns gain × estimated bandwidth-delay product in bytes.
func (b *BBR) bdp(gain float64) int64 {
	bw := b.btlBw.get()
	if bw == 0 || b.rtProp == 0 {
		return initialWindow
	}
	return int64(gain * bw.Bytes(b.rtProp))
}

// OnLoss implements Controller. BBR v1 does not reduce its rate model on
// individual losses.
func (b *BBR) OnLoss(time.Duration) {}

// OnECN implements Controller. BBR v1 does not react to ECN marks (its
// model is rate-based); marks still spare it the retransmissions that
// drops would cost.
func (b *BBR) OnECN(time.Duration) {}

// OnTimeout implements Controller: a full timeout resets the model
// conservatively.
func (b *BBR) OnTimeout(time.Duration) {
	b.fullBw = 0
	b.fullBwCount = 0
}

// CongestionWindow implements Controller.
func (b *BBR) CongestionWindow() int64 {
	if b.mode == bbrProbeRTT {
		return 4 * units.MSS
	}
	w := b.bdp(b.cwndGain)
	if w < 4*units.MSS {
		w = 4 * units.MSS
	}
	return w
}

// PacingRate implements Controller.
func (b *BBR) PacingRate() (units.Rate, bool) {
	bw := b.btlBw.get()
	if bw == 0 {
		return 0, false
	}
	return units.Rate(b.pacingGain * float64(bw)), true
}

// Mode exposes the current phase for tests.
func (b *BBR) Mode() string {
	switch b.mode {
	case bbrStartup:
		return "startup"
	case bbrDrain:
		return "drain"
	case bbrProbeBW:
		return "probe_bw"
	case bbrProbeRTT:
		return "probe_rtt"
	}
	return "unknown"
}

// DebugState exposes internals for tests and diagnostics.
func (b *BBR) DebugState() (mode string, btlBw units.Rate, rtProp time.Duration, round, cycleIdx int) {
	return b.Mode(), b.btlBw.get(), b.rtProp, b.round, b.cycleIndex
}

// maxRateFilter is a windowed-max filter over rounds (the btlbw filter).
type maxRateFilter struct {
	window  int
	samples []rateSample
}

type rateSample struct {
	round int
	rate  units.Rate
}

func newMaxRateFilter(window int) maxRateFilter {
	return maxRateFilter{window: window}
}

func (f *maxRateFilter) update(round int, r units.Rate) {
	// Drop expired samples.
	keep := f.samples[:0]
	for _, s := range f.samples {
		if round-s.round < f.window {
			keep = append(keep, s)
		}
	}
	f.samples = keep
	// Drop samples dominated by the new one.
	for len(f.samples) > 0 && f.samples[len(f.samples)-1].rate <= r {
		f.samples = f.samples[:len(f.samples)-1]
	}
	f.samples = append(f.samples, rateSample{round: round, rate: r})
}

func (f *maxRateFilter) get() units.Rate {
	if len(f.samples) == 0 {
		return 0
	}
	return f.samples[0].rate
}

var _ Controller = (*BBR)(nil)
