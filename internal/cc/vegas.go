package cc

import (
	"time"

	"bcpqp/internal/units"
)

// Vegas implements TCP Vegas (Brakmo & Peterson 1994): a delay-based
// algorithm that keeps between alpha and beta segments queued at the
// bottleneck by comparing expected (cwnd/baseRTT) and actual (cwnd/RTT)
// throughput once per round trip.
//
// Vegas matters to the evaluation because it backs off on queueing delay:
// through a buffering shaper it is the least aggressive competitor, while
// the bufferless phantom-queue policer adds no delay and lets it keep its
// fair share.
type Vegas struct {
	cwnd     int64
	ssthresh int64

	baseRTT time.Duration
	lastRTT time.Duration

	epochStart time.Duration
	ssToggle   bool // slow start doubles every other RTT
}

// Vegas thresholds in segments.
const (
	vegasAlpha = 2
	vegasBeta  = 4
	vegasGamma = 1
)

// NewVegas returns a Vegas controller.
func NewVegas() *Vegas {
	return &Vegas{cwnd: initialWindow, ssthresh: 1 << 62}
}

// Name implements Controller.
func (v *Vegas) Name() string { return "vegas" }

// OnAck implements Controller.
func (v *Vegas) OnAck(a Ack) {
	if a.RTT > 0 {
		v.lastRTT = a.RTT
		if v.baseRTT == 0 || a.RTT < v.baseRTT {
			v.baseRTT = a.RTT
		}
	}
	if v.baseRTT == 0 || v.lastRTT == 0 {
		return
	}
	// Adjust once per round trip.
	if v.epochStart == 0 {
		v.epochStart = a.Now
		return
	}
	if a.Now-v.epochStart < v.lastRTT {
		return
	}
	v.epochStart = a.Now

	// diff = (expected − actual) × baseRTT, in segments: the number of
	// segments this flow keeps queued at the bottleneck.
	cwndSeg := float64(v.cwnd) / units.MSS
	expected := cwndSeg / v.baseRTT.Seconds()
	actual := cwndSeg / v.lastRTT.Seconds()
	diff := (expected - actual) * v.baseRTT.Seconds()

	if v.cwnd < v.ssthresh {
		// Slow start: double every other RTT while diff stays small.
		if diff > vegasGamma {
			v.ssthresh = v.cwnd
			v.cwnd -= int64(diff * units.MSS)
			if v.cwnd < minWindow {
				v.cwnd = minWindow
			}
			return
		}
		v.ssToggle = !v.ssToggle
		if v.ssToggle {
			v.cwnd *= 2
		}
		return
	}

	switch {
	case diff < vegasAlpha:
		v.cwnd += units.MSS
	case diff > vegasBeta:
		v.cwnd -= units.MSS
	}
	if v.cwnd < minWindow {
		v.cwnd = minWindow
	}
}

// OnLoss implements Controller: Vegas falls back to Reno-style halving on
// packet loss.
func (v *Vegas) OnLoss(time.Duration) {
	v.cwnd /= 2
	if v.cwnd < minWindow {
		v.cwnd = minWindow
	}
	v.ssthresh = v.cwnd
}

// OnECN implements Controller: RFC 3168 — respond as to loss.
func (v *Vegas) OnECN(now time.Duration) { v.OnLoss(now) }

// OnTimeout implements Controller.
func (v *Vegas) OnTimeout(time.Duration) {
	v.ssthresh = v.cwnd / 2
	if v.ssthresh < minWindow {
		v.ssthresh = minWindow
	}
	v.cwnd = units.MSS
}

// CongestionWindow implements Controller.
func (v *Vegas) CongestionWindow() int64 { return v.cwnd }

// PacingRate implements Controller; Vegas is ack-clocked.
func (v *Vegas) PacingRate() (units.Rate, bool) { return 0, false }

var _ Controller = (*Vegas)(nil)
