package cc

import (
	"math"
	"time"

	"bcpqp/internal/units"
)

// Cubic implements TCP Cubic (Ha, Rhee, Xu 2008; RFC 8312): window growth
// follows W(t) = C(t−K)³ + Wmax between loss events, with a TCP-friendly
// region matching Reno's throughput at small BDPs, multiplicative decrease
// by β = 0.7, and fast convergence.
type Cubic struct {
	cwnd     int64
	ssthresh int64

	wMax       float64 // window before the last reduction, in MSS
	epochStart time.Duration
	epochSet   bool
	k          float64 // seconds until the plateau
	originW    float64 // window at epoch start, in MSS

	wEst   float64 // TCP-friendly (Reno-tracking) estimate, in MSS
	ackCnt float64

	lastRTT time.Duration
}

// Cubic constants per RFC 8312.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// NewCubic returns a Cubic controller with the standard initial window.
func NewCubic() *Cubic {
	return &Cubic{cwnd: initialWindow, ssthresh: 1 << 62}
}

// Name implements Controller.
func (c *Cubic) Name() string { return "cubic" }

// OnAck implements Controller.
func (c *Cubic) OnAck(a Ack) {
	if a.RTT > 0 {
		c.lastRTT = a.RTT
	}
	if c.cwnd < c.ssthresh {
		c.cwnd += a.Acked
		if c.cwnd > c.ssthresh {
			c.cwnd = c.ssthresh
		}
		return
	}
	c.update(a.Now, a.Acked)
}

// update advances the cubic function and grows cwnd toward its target.
func (c *Cubic) update(now time.Duration, acked int64) {
	cwndPkts := float64(c.cwnd) / units.MSS
	if !c.epochSet {
		c.epochSet = true
		c.epochStart = now
		if cwndPkts < c.wMax {
			c.k = math.Cbrt((c.wMax - cwndPkts) / cubicC)
		} else {
			c.k = 0
			c.wMax = cwndPkts
		}
		c.originW = cwndPkts
		c.wEst = cwndPkts
		c.ackCnt = 0
	}

	rtt := c.lastRTT
	if rtt <= 0 {
		rtt = 100 * time.Millisecond
	}
	t := (now - c.epochStart + rtt).Seconds()
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax

	// TCP-friendly region (RFC 8312 §4.2): track what Reno would reach.
	c.ackCnt += float64(acked) / units.MSS
	for c.ackCnt >= c.wEst {
		// Growth factor 3β/(2−β) per RFC's AIMD-friendly rate.
		c.ackCnt -= c.wEst
		c.wEst += 3 * (1 - cubicBeta) / (1 + cubicBeta)
	}
	if target < c.wEst {
		target = c.wEst
	}

	if target > cwndPkts {
		// Grow toward the target over the next RTT.
		inc := (target - cwndPkts) / cwndPkts * float64(acked)
		c.cwnd += int64(inc)
	} else {
		// Plateau: tiny growth keeps the clock moving.
		c.cwnd += int64(float64(acked) / (100 * cwndPkts))
	}
	if c.cwnd < minWindow {
		c.cwnd = minWindow
	}
}

// OnLoss implements Controller: multiplicative decrease with fast
// convergence.
func (c *Cubic) OnLoss(time.Duration) {
	cwndPkts := float64(c.cwnd) / units.MSS
	if cwndPkts < c.wMax {
		// Fast convergence: release bandwidth faster when a flow's
		// share is shrinking.
		c.wMax = cwndPkts * (2 - cubicBeta) / 2
	} else {
		c.wMax = cwndPkts
	}
	c.cwnd = int64(cwndPkts * cubicBeta * units.MSS)
	if c.cwnd < minWindow {
		c.cwnd = minWindow
	}
	c.ssthresh = c.cwnd
	c.epochSet = false
}

// OnECN implements Controller: RFC 3168 — respond as to loss.
func (c *Cubic) OnECN(now time.Duration) { c.OnLoss(now) }

// OnTimeout implements Controller.
func (c *Cubic) OnTimeout(time.Duration) {
	c.OnLoss(0)
	c.cwnd = units.MSS
}

// CongestionWindow implements Controller.
func (c *Cubic) CongestionWindow() int64 { return c.cwnd }

// PacingRate implements Controller; Cubic is ack-clocked here.
func (c *Cubic) PacingRate() (units.Rate, bool) { return 0, false }

var _ Controller = (*Cubic)(nil)
