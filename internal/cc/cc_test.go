package cc

import (
	"testing"
	"time"

	"bcpqp/internal/units"
)

func TestNewByName(t *testing.T) {
	for _, name := range append(Names(), "newreno") {
		factory, ok := NewByName(name)
		if !ok {
			t.Errorf("NewByName(%q) not found", name)
			continue
		}
		c := factory()
		if c.CongestionWindow() <= 0 {
			t.Errorf("%s initial window %d", name, c.CongestionWindow())
		}
		// Factories return fresh instances.
		if factory() == c {
			t.Errorf("%s factory returned a shared instance", name)
		}
	}
	if _, ok := NewByName("nope"); ok {
		t.Error("unknown name accepted")
	}
}

// ackRTT simulates one RTT worth of ACKs for a window-based controller.
func ackRTT(c Controller, now time.Duration, rtt time.Duration) time.Duration {
	cwnd := c.CongestionWindow()
	segs := cwnd / units.MSS
	if segs < 1 {
		segs = 1
	}
	step := rtt / time.Duration(segs)
	for i := int64(0); i < segs; i++ {
		now += step
		c.OnAck(Ack{Now: now, RTT: rtt, Acked: units.MSS, Inflight: cwnd})
	}
	return now
}

func TestRenoSlowStartDoubles(t *testing.T) {
	r := NewReno()
	now := time.Duration(0)
	w0 := r.CongestionWindow()
	now = ackRTT(r, now, 100*time.Millisecond)
	if got := r.CongestionWindow(); got != 2*w0 {
		t.Errorf("after one RTT of slow start cwnd = %d, want %d", got, 2*w0)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno()
	now := time.Duration(0)
	r.OnLoss(now) // exit slow start
	w := r.CongestionWindow()
	now = ackRTT(r, now, 100*time.Millisecond)
	if got := r.CongestionWindow(); got != w+units.MSS {
		t.Errorf("CA growth per RTT = %d bytes, want one MSS", got-w)
	}
}

func TestRenoHalvesOnLoss(t *testing.T) {
	r := NewReno()
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		now = ackRTT(r, now, 100*time.Millisecond)
	}
	w := r.CongestionWindow()
	r.OnLoss(now)
	if got := r.CongestionWindow(); got != w/2 {
		t.Errorf("after loss cwnd = %d, want %d", got, w/2)
	}
}

func TestRenoTimeoutCollapses(t *testing.T) {
	r := NewReno()
	now := ackRTT(r, 0, 100*time.Millisecond)
	r.OnTimeout(now)
	if got := r.CongestionWindow(); got != units.MSS {
		t.Errorf("after timeout cwnd = %d, want one MSS", got)
	}
}

func TestRenoFloor(t *testing.T) {
	r := NewReno()
	for i := 0; i < 30; i++ {
		r.OnLoss(0)
	}
	if got := r.CongestionWindow(); got < 2*units.MSS {
		t.Errorf("cwnd fell to %d, below the 2-MSS floor", got)
	}
}

func TestCubicSlowStartThenGrowth(t *testing.T) {
	c := NewCubic()
	now := time.Duration(0)
	w0 := c.CongestionWindow()
	now = ackRTT(c, now, 50*time.Millisecond)
	if got := c.CongestionWindow(); got != 2*w0 {
		t.Errorf("cubic slow start: %d, want %d", got, 2*w0)
	}
	// Loss, then growth should resume toward wMax (concave region).
	c.OnLoss(now)
	wAfterLoss := c.CongestionWindow()
	for i := 0; i < 40; i++ {
		now = ackRTT(c, now, 50*time.Millisecond)
	}
	if got := c.CongestionWindow(); got <= wAfterLoss {
		t.Errorf("cubic did not grow after loss: %d <= %d", got, wAfterLoss)
	}
}

func TestCubicBetaDecrease(t *testing.T) {
	c := NewCubic()
	now := time.Duration(0)
	for i := 0; i < 6; i++ {
		now = ackRTT(c, now, 50*time.Millisecond)
	}
	w := c.CongestionWindow()
	c.OnLoss(now)
	got := float64(c.CongestionWindow()) / float64(w)
	if got < 0.65 || got > 0.75 {
		t.Errorf("cubic decrease factor %.3f, want ≈0.7", got)
	}
}

func TestCubicPlateausNearWMax(t *testing.T) {
	c := NewCubic()
	now := time.Duration(0)
	for i := 0; i < 6; i++ {
		now = ackRTT(c, now, 50*time.Millisecond)
	}
	c.OnLoss(now)
	wMaxBytes := c.CongestionWindow() // ≈ 0.7 wmax
	// Growth over many RTTs should approach and settle near the old
	// window (the cubic plateau), not explode immediately.
	for i := 0; i < 20; i++ {
		now = ackRTT(c, now, 50*time.Millisecond)
	}
	got := c.CongestionWindow()
	if got < wMaxBytes {
		t.Errorf("cubic shrank during recovery: %d < %d", got, wMaxBytes)
	}
}

func TestBBRStartupToProbeBW(t *testing.T) {
	b := NewBBR()
	now := time.Duration(0)
	rtt := 40 * time.Millisecond
	// Feed constant bandwidth samples: startup should detect the
	// plateau within a few rounds and transition through drain.
	for i := 0; i < 600; i++ {
		now += time.Millisecond
		b.OnAck(Ack{Now: now, RTT: rtt, Acked: units.MSS,
			Inflight: 4 * units.MSS, BandwidthSample: 10 * units.Mbps})
	}
	if b.Mode() != "probe_bw" {
		t.Errorf("mode = %s after sustained flat bandwidth, want probe_bw", b.Mode())
	}
	rate, ok := b.PacingRate()
	if !ok {
		t.Fatal("BBR did not report a pacing rate")
	}
	mbps := rate.Mbps()
	if mbps < 7 || mbps > 13 {
		t.Errorf("pacing rate %.1f Mbps, want ≈10 (gain-cycled)", mbps)
	}
}

func TestBBRCwndTracksBDP(t *testing.T) {
	b := NewBBR()
	now := time.Duration(0)
	rtt := 40 * time.Millisecond
	for i := 0; i < 600; i++ {
		now += time.Millisecond
		b.OnAck(Ack{Now: now, RTT: rtt, Acked: units.MSS,
			Inflight: 4 * units.MSS, BandwidthSample: 10 * units.Mbps})
	}
	// BDP = 10 Mbps × 40 ms = 50 KB; cwnd = 2×BDP = 100 KB.
	got := b.CongestionWindow()
	if got < 80000 || got > 120000 {
		t.Errorf("cwnd = %d, want ≈100000 (2×BDP)", got)
	}
}

func TestBBRIgnoresLoss(t *testing.T) {
	b := NewBBR()
	now := time.Duration(0)
	for i := 0; i < 600; i++ {
		now += time.Millisecond
		b.OnAck(Ack{Now: now, RTT: 40 * time.Millisecond, Acked: units.MSS,
			Inflight: 4 * units.MSS, BandwidthSample: 10 * units.Mbps})
	}
	w := b.CongestionWindow()
	b.OnLoss(now)
	if got := b.CongestionWindow(); got != w {
		t.Errorf("BBR v1 reduced cwnd on loss: %d -> %d", w, got)
	}
}

func TestBBRMinRTTFilterPrefersSmaller(t *testing.T) {
	b := NewBBR()
	now := time.Duration(0)
	b.OnAck(Ack{Now: now, RTT: 50 * time.Millisecond, Acked: units.MSS,
		BandwidthSample: units.Mbps})
	b.OnAck(Ack{Now: now + time.Millisecond, RTT: 30 * time.Millisecond,
		Acked: units.MSS, BandwidthSample: units.Mbps})
	b.OnAck(Ack{Now: now + 2*time.Millisecond, RTT: 60 * time.Millisecond,
		Acked: units.MSS, BandwidthSample: units.Mbps})
	_, _, rtp, _, _ := b.DebugState()
	if rtp != 30*time.Millisecond {
		t.Errorf("rtProp = %v, want 30ms (windowed min)", rtp)
	}
}

func TestBBRBandwidthFilterWindowedMax(t *testing.T) {
	f := newMaxRateFilter(3)
	f.update(0, 10*units.Mbps)
	f.update(1, 5*units.Mbps)
	if got := f.get(); got != 10*units.Mbps {
		t.Errorf("max = %v, want 10 Mbps", got)
	}
	// Round 4: the 10 Mbps sample (round 0) expires.
	f.update(4, 6*units.Mbps)
	if got := f.get(); got != 6*units.Mbps {
		t.Errorf("max after expiry = %v, want 6 Mbps", got)
	}
}

func TestVegasIncreasesWhenNoQueueing(t *testing.T) {
	v := NewVegas()
	now := time.Duration(0)
	rtt := 50 * time.Millisecond
	v.OnTimeout(0) // force out of slow start via ssthresh? use OnLoss
	v.OnLoss(0)    // exit slow start
	w := v.CongestionWindow()
	// RTT == baseRTT: diff = 0 < alpha → +1 MSS per RTT.
	for i := 0; i < 6; i++ {
		now = ackRTT(v, now, rtt)
	}
	if got := v.CongestionWindow(); got <= w {
		t.Errorf("vegas did not grow with empty queue: %d <= %d", got, w)
	}
}

func TestVegasBacksOffOnQueueing(t *testing.T) {
	v := NewVegas()
	now := time.Duration(0)
	v.OnLoss(0) // exit slow start
	// Establish baseRTT = 50 ms.
	now = ackRTT(v, now, 50*time.Millisecond)
	now = ackRTT(v, now, 50*time.Millisecond)
	w := v.CongestionWindow()
	// Heavy queueing: RTT inflates 4×, so diff = cwnd×(1−base/rtt)
	// clearly exceeds β and Vegas must back off.
	for i := 0; i < 6; i++ {
		now = ackRTT(v, now, 200*time.Millisecond)
	}
	if got := v.CongestionWindow(); got >= w {
		t.Errorf("vegas did not back off under queueing: %d >= %d", got, w)
	}
}

func TestVegasSlowStartExit(t *testing.T) {
	v := NewVegas()
	now := time.Duration(0)
	// Base RTT 50 ms, then inflated RTTs should cap slow start quickly.
	now = ackRTT(v, now, 50*time.Millisecond)
	for i := 0; i < 10; i++ {
		now = ackRTT(v, now, 120*time.Millisecond)
	}
	// Window must stay modest (delay-based exit), well below pure
	// doubling for 11 RTTs (10240 MSS).
	if got := v.CongestionWindow() / units.MSS; got > 200 {
		t.Errorf("vegas slow start did not exit on delay: %d segments", got)
	}
}

func TestControllersImplementInterface(t *testing.T) {
	for _, name := range Names() {
		factory, _ := NewByName(name)
		c := factory()
		if c.Name() == "" {
			t.Errorf("%s has empty Name()", name)
		}
		// Exercise the full interface with benign inputs.
		c.OnAck(Ack{Now: time.Second, RTT: 10 * time.Millisecond, Acked: units.MSS})
		c.OnLoss(time.Second)
		c.OnTimeout(time.Second)
		if c.CongestionWindow() < units.MSS {
			t.Errorf("%s cwnd below one MSS after timeout", name)
		}
		c.PacingRate()
	}
}

func TestOnECNMatchesLossResponse(t *testing.T) {
	// Loss-based controllers must reduce on ECN exactly as on loss
	// (RFC 3168); BBR v1 ignores both.
	for _, name := range []string{"reno", "cubic", "vegas"} {
		factory, _ := NewByName(name)
		byLoss, byECN := factory(), factory()
		now := time.Duration(0)
		for i := 0; i < 5; i++ {
			now = ackRTT(byLoss, now, 50*time.Millisecond)
		}
		now2 := time.Duration(0)
		for i := 0; i < 5; i++ {
			now2 = ackRTT(byECN, now2, 50*time.Millisecond)
		}
		byLoss.OnLoss(now)
		byECN.OnECN(now2)
		if byLoss.CongestionWindow() != byECN.CongestionWindow() {
			t.Errorf("%s: OnECN window %d != OnLoss window %d", name,
				byECN.CongestionWindow(), byLoss.CongestionWindow())
		}
	}
	b := NewBBR()
	w := b.CongestionWindow()
	b.OnECN(time.Second)
	if b.CongestionWindow() != w {
		t.Error("BBR v1 reacted to ECN")
	}
}

func TestBBRProbeRTTDipsWindow(t *testing.T) {
	b := NewBBR()
	now := time.Duration(0)
	rtt := 40 * time.Millisecond
	// Converge into probe_bw, then feed only larger RTT samples so the
	// min-RTT estimate goes stale and probe_rtt engages.
	for i := 0; i < 600; i++ {
		now += time.Millisecond
		b.OnAck(Ack{Now: now, RTT: rtt, Acked: units.MSS,
			Inflight: 4 * units.MSS, BandwidthSample: 10 * units.Mbps})
	}
	if b.Mode() != "probe_bw" {
		t.Fatalf("mode = %s, want probe_bw", b.Mode())
	}
	for i := 0; i < 11000; i++ {
		now += time.Millisecond
		b.OnAck(Ack{Now: now, RTT: rtt + 10*time.Millisecond, Acked: units.MSS,
			Inflight: 4 * units.MSS, BandwidthSample: 10 * units.Mbps})
		if b.Mode() == "probe_rtt" {
			break
		}
	}
	if b.Mode() != "probe_rtt" {
		t.Fatalf("never entered probe_rtt after min-RTT staleness")
	}
	if got := b.CongestionWindow(); got != 4*units.MSS {
		t.Errorf("probe_rtt window = %d, want 4 MSS", got)
	}
	// After the dwell it returns to probe_bw with a refreshed estimate.
	for i := 0; i < 400; i++ {
		now += time.Millisecond
		b.OnAck(Ack{Now: now, RTT: rtt + 10*time.Millisecond, Acked: units.MSS,
			Inflight: 2 * units.MSS, BandwidthSample: 10 * units.Mbps})
	}
	if b.Mode() != "probe_bw" {
		t.Errorf("mode after probe_rtt dwell = %s, want probe_bw", b.Mode())
	}
}
