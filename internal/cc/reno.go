package cc

import (
	"time"

	"bcpqp/internal/units"
)

// Reno implements TCP New Reno congestion control (RFC 5681/6582 core
// behaviour): slow start doubling per RTT, additive increase of one MSS per
// RTT in congestion avoidance, and multiplicative decrease to half on loss.
//
// The paper's Appendix A analysis of phantom-queue sizing is written against
// this algorithm: in steady state against a phantom queue drained at rate r,
// Reno's instantaneous rate oscillates between 2r/3 and 4r/3.
type Reno struct {
	cwnd     int64
	ssthresh int64
	// acc accumulates acked bytes in congestion avoidance; each time it
	// crosses cwnd the window grows by one MSS (byte-counting form of
	// the cwnd += 1/cwnd rule).
	acc int64
}

// NewReno returns a New Reno controller with the standard initial window.
func NewReno() *Reno {
	return &Reno{cwnd: initialWindow, ssthresh: 1 << 62}
}

// Name implements Controller.
func (r *Reno) Name() string { return "reno" }

// OnAck implements Controller.
func (r *Reno) OnAck(a Ack) {
	if r.cwnd < r.ssthresh {
		// Slow start: grow by the acked bytes (doubles per RTT).
		r.cwnd += a.Acked
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
		return
	}
	// Congestion avoidance: one MSS per window of acked data.
	r.acc += a.Acked
	for r.acc >= r.cwnd {
		r.acc -= r.cwnd
		r.cwnd += units.MSS
	}
}

// OnLoss implements Controller: halve the window (New Reno fast recovery
// sets cwnd to ssthresh on recovery; the transport signals loss once per
// window).
func (r *Reno) OnLoss(time.Duration) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < minWindow {
		r.ssthresh = minWindow
	}
	r.cwnd = r.ssthresh
	r.acc = 0
}

// OnECN implements Controller: RFC 3168 — respond as to loss.
func (r *Reno) OnECN(now time.Duration) { r.OnLoss(now) }

// OnTimeout implements Controller: collapse to one segment and re-enter
// slow start.
func (r *Reno) OnTimeout(time.Duration) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < minWindow {
		r.ssthresh = minWindow
	}
	r.cwnd = units.MSS
	r.acc = 0
}

// CongestionWindow implements Controller.
func (r *Reno) CongestionWindow() int64 { return r.cwnd }

// PacingRate implements Controller; Reno is purely ack-clocked.
func (r *Reno) PacingRate() (units.Rate, bool) { return 0, false }

var _ Controller = (*Reno)(nil)
