// Package units provides the rate, byte-size, and bandwidth-delay-product
// arithmetic shared by every subsystem in the repository.
//
// Rates are kept in bits per second (the unit network operators configure),
// byte counts in int64, and time in time.Duration interpreted as virtual
// simulation time. Conversions between the three live here so that rounding
// conventions are consistent across enforcers, congestion control, and
// metrics.
package units

import (
	"fmt"
	"time"
)

// MSS is the maximum segment size in bytes used throughout the repository.
// The paper reasons about MSS-sized packets; 1500 bytes keeps BDP arithmetic
// simple (BDP in packets = rate × RTT / MSS).
const MSS = 1500

// Byte-size constants.
const (
	KB int64 = 1000
	MB int64 = 1000 * KB
	GB int64 = 1000 * MB

	KiB int64 = 1024
	MiB int64 = 1024 * KiB
)

// Rate is a traffic rate in bits per second.
type Rate float64

// Rate constructors.
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
)

// KbpsRate returns a Rate of v kilobits per second.
func KbpsRate(v float64) Rate { return Rate(v) * Kbps }

// MbpsRate returns a Rate of v megabits per second.
func MbpsRate(v float64) Rate { return Rate(v) * Mbps }

// BytesPerSecond returns the rate expressed in bytes per second.
func (r Rate) BytesPerSecond() float64 { return float64(r) / 8 }

// Mbps returns the rate expressed in megabits per second.
func (r Rate) Mbps() float64 { return float64(r) / float64(Mbps) }

// Bytes returns the (fractional) number of bytes transferred at rate r over
// duration d.
func (r Rate) Bytes(d time.Duration) float64 {
	return r.BytesPerSecond() * d.Seconds()
}

// DurationForBytes returns the time needed to transfer n bytes at rate r.
// It returns 0 for non-positive rates so callers degrade gracefully.
func (r Rate) DurationForBytes(n int64) time.Duration {
	if r <= 0 {
		return 0
	}
	sec := float64(n) / r.BytesPerSecond()
	return time.Duration(sec * float64(time.Second))
}

// String formats the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%.0fbps", float64(r))
	}
}

// BDPBytes returns the bandwidth-delay product of rate r and round-trip time
// rtt in bytes.
func BDPBytes(r Rate, rtt time.Duration) int64 {
	return int64(r.Bytes(rtt))
}

// BDPPackets returns the bandwidth-delay product in MSS-sized packets,
// rounded up so a one-packet BDP never truncates to zero.
func BDPPackets(r Rate, rtt time.Duration) int64 {
	b := BDPBytes(r, rtt)
	return (b + MSS - 1) / MSS
}

// RenoPhantomRequirement returns the minimum phantom queue size in bytes for
// a backlogged Reno flow policed at rate r with round-trip time rtt, per the
// paper's Appendix A result: B ≥ BDP²/18 × MSS bytes, with BDP measured in
// packets. A floor of 4 MSS keeps tiny-BDP configurations usable.
func RenoPhantomRequirement(r Rate, rtt time.Duration) int64 {
	bdp := float64(BDPPackets(r, rtt))
	b := int64(bdp * bdp / 18 * MSS)
	if b < 4*MSS {
		b = 4 * MSS
	}
	return b
}

// CubicPhantomRequirement returns the minimum phantom queue (or token
// bucket) size in bytes that keeps a backlogged Cubic flow policed at rate r
// with round-trip time rtt from draining the queue to zero in steady state.
//
// Following the paper's phantom-queue reasoning, the queue build-up per RTT
// is (W − BDP) packets whenever the window W exceeds BDP, so the required
// size is the area of the window curve above the BDP line over one steady
// cycle in which the time-average window equals BDP. For Cubic,
// W(t) = C(t−K)³ + Wmax with a multiplicative decrease to βWmax; the peak
// Wmax satisfying avg(W) = BDP is found numerically.
func CubicPhantomRequirement(r Rate, rtt time.Duration) int64 {
	const (
		c    = 0.4 // Cubic's C constant (packets/sec³ scaling)
		beta = 0.7 // multiplicative decrease factor
	)
	bdp := float64(BDPPackets(r, rtt))
	if bdp < 2 {
		bdp = 2
	}
	rttSec := rtt.Seconds()
	if rttSec <= 0 {
		return 4 * MSS
	}

	// cycle simulates one Cubic epoch with peak wmax and returns the
	// time-average window and the area (packet·RTT) above the bdp line.
	cycle := func(wmax float64) (avg, area float64) {
		k := cubeRoot(wmax * (1 - beta) / c)
		var sum, above float64
		var steps int
		for t := 0.0; ; t += rttSec {
			w := c*(t-k)*(t-k)*(t-k) + wmax
			if w > wmax && t > 0 {
				break
			}
			sum += w
			if w > bdp {
				above += w - bdp
			}
			steps++
			if steps > 1_000_000 { // defensive bound
				break
			}
		}
		if steps == 0 {
			return wmax, 0
		}
		return sum / float64(steps), above
	}

	// Binary-search wmax so the epoch's average window equals BDP.
	lo, hi := bdp, 8*bdp
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		avg, _ := cycle(mid)
		if avg < bdp {
			lo = mid
		} else {
			hi = mid
		}
	}
	_, area := cycle(hi)
	b := int64(area * MSS)
	if b < 4*MSS {
		b = 4 * MSS
	}
	return b
}

func cubeRoot(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 64; i++ {
		x = (2*x + v/(x*x)) / 3
	}
	return x
}
