package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRateConversions(t *testing.T) {
	r := MbpsRate(8)
	if got := r.BytesPerSecond(); got != 1e6 {
		t.Errorf("8 Mbps = %v bytes/s, want 1e6", got)
	}
	if got := r.Mbps(); got != 8 {
		t.Errorf("Mbps() = %v, want 8", got)
	}
	if got := KbpsRate(1000); got != 1*Mbps {
		t.Errorf("1000 Kbps = %v, want 1 Mbps", got)
	}
}

func TestRateBytes(t *testing.T) {
	r := 8 * Mbps // 1 MB/s
	cases := []struct {
		d    time.Duration
		want float64
	}{
		{time.Second, 1e6},
		{time.Millisecond, 1e3},
		{250 * time.Millisecond, 250e3},
		{0, 0},
	}
	for _, tc := range cases {
		if got := r.Bytes(tc.d); math.Abs(got-tc.want) > 1e-6 {
			t.Errorf("Bytes(%v) = %v, want %v", tc.d, got, tc.want)
		}
	}
}

func TestDurationForBytes(t *testing.T) {
	r := 8 * Mbps
	if got := r.DurationForBytes(1e6); got != time.Second {
		t.Errorf("DurationForBytes(1e6) = %v, want 1s", got)
	}
	if got := Rate(0).DurationForBytes(100); got != 0 {
		t.Errorf("zero rate should return 0, got %v", got)
	}
	if got := Rate(-5).DurationForBytes(100); got != 0 {
		t.Errorf("negative rate should return 0, got %v", got)
	}
}

func TestBytesDurationRoundTrip(t *testing.T) {
	f := func(mbps uint16, kb uint16) bool {
		r := MbpsRate(float64(mbps%1000) + 1)
		n := int64(kb)*KB + 1
		d := r.DurationForBytes(n)
		back := r.Bytes(d)
		return math.Abs(back-float64(n)) < 1 // within a byte
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{500 * BitPerSecond, "500bps"},
		{2 * Kbps, "2.00Kbps"},
		{MbpsRate(7.5), "7.50Mbps"},
		{2 * Gbps, "2.00Gbps"},
	}
	for _, tc := range cases {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", float64(tc.r), got, tc.want)
		}
	}
}

func TestBDP(t *testing.T) {
	// 10 Mbps × 100 ms = 125000 bytes ≈ 83.3 packets.
	r := 10 * Mbps
	rtt := 100 * time.Millisecond
	if got := BDPBytes(r, rtt); got != 125000 {
		t.Errorf("BDPBytes = %d, want 125000", got)
	}
	if got := BDPPackets(r, rtt); got != 84 { // ceil(125000/1500)
		t.Errorf("BDPPackets = %d, want 84", got)
	}
}

func TestRenoPhantomRequirement(t *testing.T) {
	// Paper §3.5: 10 Mbps at 100 ms RTT needs ≈ 1000 KB.
	got := RenoPhantomRequirement(10*Mbps, 100*time.Millisecond)
	if got < 500*KB || got > 1100*KB {
		t.Errorf("requirement = %d, want ≈ 588KB-ish (paper: ~1000KB rule of thumb, formula BDP²/18×MSS)", got)
	}
	// The formula value: ceil(125000/1500)=84 packets → 84²/18×1500 = 588000.
	want := int64(float64(84*84) / 18 * MSS)
	if got != want {
		t.Errorf("requirement = %d, want %d", got, want)
	}
}

func TestRenoRequirementFloor(t *testing.T) {
	if got := RenoPhantomRequirement(100*Kbps, time.Millisecond); got != 4*MSS {
		t.Errorf("tiny BDP should hit the 4-MSS floor, got %d", got)
	}
}

func TestRenoRequirementScalesQuadratically(t *testing.T) {
	r1 := RenoPhantomRequirement(10*Mbps, 100*time.Millisecond)
	r2 := RenoPhantomRequirement(20*Mbps, 100*time.Millisecond)
	ratio := float64(r2) / float64(r1)
	if ratio < 3.8 || ratio > 4.2 {
		t.Errorf("doubling rate should ~4x the requirement (BDP² law), got %.2fx", ratio)
	}
}

func TestCubicPhantomRequirement(t *testing.T) {
	got := CubicPhantomRequirement(10*Mbps, 100*time.Millisecond)
	if got < 4*MSS {
		t.Errorf("requirement %d below floor", got)
	}
	// The Cubic requirement must be positive and grow with BDP.
	larger := CubicPhantomRequirement(40*Mbps, 100*time.Millisecond)
	if larger <= got {
		t.Errorf("requirement should grow with rate: %d -> %d", got, larger)
	}
}

func TestCubicVsRenoSmallBDP(t *testing.T) {
	// Paper §6.1: "For small values of RTT and rate, Cubic requires a
	// larger bucket size, whereas in other cases New Reno requires a
	// larger bucket size."
	smallCubic := CubicPhantomRequirement(1500*Kbps, 5*time.Millisecond)
	smallReno := RenoPhantomRequirement(1500*Kbps, 5*time.Millisecond)
	if smallCubic < smallReno {
		t.Logf("small-BDP: cubic=%d reno=%d (cubic expected ≥ reno here)", smallCubic, smallReno)
	}
	bigCubic := CubicPhantomRequirement(100*Mbps, 100*time.Millisecond)
	bigReno := RenoPhantomRequirement(100*Mbps, 100*time.Millisecond)
	if bigReno < bigCubic {
		t.Errorf("large-BDP: reno requirement (%d) should exceed cubic (%d)", bigReno, bigCubic)
	}
}

func TestCubeRoot(t *testing.T) {
	for _, v := range []float64{0, 1, 8, 27, 1000, 0.001, 123456.789} {
		got := cubeRoot(v)
		if math.Abs(got*got*got-v) > 1e-6*(v+1) {
			t.Errorf("cubeRoot(%v)³ = %v, want %v", v, got*got*got, v)
		}
	}
}
