// Package tbf implements the classic token-bucket-filter traffic policer
// (§2.2 of the paper), the baseline against which PQP/BC-PQP are compared.
//
// Tokens are added to a bucket of size B at the enforced rate r; a packet of
// size s passes iff the bucket holds at least s tokens, consuming them, and
// is dropped otherwise. No packets are buffered. Token replenishment is lazy
// (computed from elapsed virtual time on each arrival), matching the paper's
// observation that policers batch token generation.
//
// The package also provides the two bucket-sizing rules used in the paper's
// evaluation: "Policer" (one BDP) and "Policer+" (the FairPolicer sizing —
// the maximum of the New Reno and Cubic requirements at the worst-case RTT).
package tbf

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/units"
)

// Policer is a single token-bucket traffic policer for one aggregate.
// It is not safe for concurrent use.
type Policer struct {
	rate   units.Rate
	bucket float64 // capacity B in bytes
	tokens float64

	last    time.Duration
	started bool

	stats enforcer.Stats
}

// New returns a policer enforcing rate with a bucket of bucketBytes.
// The bucket starts full, as deployed policers do.
func New(rate units.Rate, bucketBytes int64) (*Policer, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("tbf: non-positive rate %v", rate)
	}
	if bucketBytes < units.MSS {
		return nil, fmt.Errorf("tbf: bucket %d below one MSS", bucketBytes)
	}
	return &Policer{
		rate:   rate,
		bucket: float64(bucketBytes),
		tokens: float64(bucketBytes),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(rate units.Rate, bucketBytes int64) *Policer {
	p, err := New(rate, bucketBytes)
	if err != nil {
		panic(err)
	}
	return p
}

// BDPBucket returns the "Policer" sizing of the paper's evaluation: one
// bandwidth-delay product at the given worst-case RTT (with a one-MSS
// floor).
func BDPBucket(rate units.Rate, maxRTT time.Duration) int64 {
	b := units.BDPBytes(rate, maxRTT)
	if b < units.MSS {
		b = units.MSS
	}
	return b
}

// PlusBucket returns the "Policer+" sizing: the maximum of the New Reno and
// Cubic bucket requirements for correct average-rate enforcement at the
// worst-case RTT (the same rule FairPolicer uses, §6.1).
func PlusBucket(rate units.Rate, maxRTT time.Duration) int64 {
	reno := units.RenoPhantomRequirement(rate, maxRTT)
	cubic := units.CubicPhantomRequirement(rate, maxRTT)
	if cubic > reno {
		return cubic
	}
	return reno
}

// Submit implements enforcer.Enforcer.
func (p *Policer) Submit(now time.Duration, pkt packet.Packet) enforcer.Verdict {
	p.refill(now)
	s := float64(pkt.Size)
	if p.tokens >= s {
		p.tokens -= s
		p.stats.Accept(pkt.Size)
		return enforcer.Transmit
	}
	p.stats.Reject(pkt.Size)
	return enforcer.Drop
}

// SubmitBatch implements enforcer.BatchSubmitter: one token-refill
// computation covers the whole burst. Equivalence with the per-packet path
// is exact — refill is a no-op when virtual time has not advanced, so the
// per-packet path's repeated refills at a fixed now do nothing after the
// first; everything else is pure token arithmetic in packet order.
func (p *Policer) SubmitBatch(now time.Duration, pkts []packet.Packet, verdicts []enforcer.Verdict) {
	verdicts = verdicts[:len(pkts)]
	if len(pkts) == 0 {
		return
	}
	p.refill(now)
	for i := range pkts {
		s := float64(pkts[i].Size)
		if p.tokens >= s {
			p.tokens -= s
			p.stats.Accept(pkts[i].Size)
			verdicts[i] = enforcer.Transmit
		} else {
			p.stats.Reject(pkts[i].Size)
			verdicts[i] = enforcer.Drop
		}
	}
}

// Probe reports whether a packet would be admitted at now without
// consuming tokens (two-phase admission for cascaded rate limits).
func (p *Policer) Probe(now time.Duration, pkt packet.Packet) bool {
	p.refill(now)
	return p.tokens >= float64(pkt.Size)
}

// Commit consumes the tokens for a packet previously accepted by Probe.
func (p *Policer) Commit(now time.Duration, pkt packet.Packet) {
	p.refill(now)
	p.tokens -= float64(pkt.Size)
	if p.tokens < 0 {
		p.tokens = 0
	}
	p.stats.Accept(pkt.Size)
}

// refill adds tokens for the elapsed virtual time, capped at the bucket.
func (p *Policer) refill(now time.Duration) {
	if !p.started {
		p.started = true
		p.last = now
		return
	}
	if now <= p.last {
		return
	}
	p.tokens += p.rate.Bytes(now - p.last)
	p.last = now
	if p.tokens > p.bucket {
		p.tokens = p.bucket
	}
}

// Tokens returns the current token level in bytes (after the last refill).
func (p *Policer) Tokens() float64 { return p.tokens }

// Bucket returns the configured bucket size in bytes.
func (p *Policer) Bucket() int64 { return int64(p.bucket) }

// EnforcerStats implements enforcer.StatsReader.
func (p *Policer) EnforcerStats() enforcer.Stats { return p.stats }

var _ enforcer.Enforcer = (*Policer)(nil)
var _ enforcer.BatchSubmitter = (*Policer)(nil)
var _ enforcer.StatsReader = (*Policer)(nil)
