package tbf

import (
	"testing"
	"testing/quick"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/units"
)

func pkt(size int) packet.Packet {
	return packet.Packet{Key: packet.FlowKey{SrcPort: 1}, Class: 0, Size: size}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 10*units.MSS); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := New(units.Mbps, 10); err == nil {
		t.Error("sub-MSS bucket accepted")
	}
	if _, err := New(units.Mbps, 10*units.MSS); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestBucketStartsFull(t *testing.T) {
	p := MustNew(8*units.Mbps, 10*units.MSS)
	now := time.Millisecond
	for i := 0; i < 10; i++ {
		if p.Submit(now, pkt(units.MSS)) != enforcer.Transmit {
			t.Fatalf("packet %d dropped from a full bucket", i)
		}
	}
	if p.Submit(now, pkt(units.MSS)) != enforcer.Drop {
		t.Fatal("11th packet passed an exhausted bucket")
	}
}

func TestRefill(t *testing.T) {
	rate := 8 * units.Mbps // 1 MB/s
	p := MustNew(rate, 2*units.MSS)
	now := time.Millisecond
	p.Submit(now, pkt(units.MSS))
	p.Submit(now, pkt(units.MSS))
	if p.Submit(now, pkt(units.MSS)) != enforcer.Drop {
		t.Fatal("bucket not empty")
	}
	now += 1500 * time.Microsecond // exactly one MSS of tokens
	if p.Submit(now, pkt(units.MSS)) != enforcer.Transmit {
		t.Fatal("refill did not admit")
	}
	if p.Submit(now, pkt(units.MSS)) != enforcer.Drop {
		t.Fatal("admitted more than refill")
	}
}

func TestRefillCapsAtBucket(t *testing.T) {
	p := MustNew(8*units.Mbps, 4*units.MSS)
	now := time.Millisecond
	p.Submit(now, pkt(units.MSS)) // touch to start the clock
	now += time.Hour
	admitted := 0
	for i := 0; i < 100; i++ {
		if p.Submit(now, pkt(units.MSS)) == enforcer.Transmit {
			admitted++
		}
	}
	if admitted != 4 {
		t.Errorf("after long idle admitted %d, want bucket cap 4", admitted)
	}
}

func TestLongTermRateEnforced(t *testing.T) {
	rate := 8 * units.Mbps
	p := MustNew(rate, 20*units.MSS)
	now := time.Duration(0)
	var accepted int64
	// Offer 4× the rate for 10 seconds.
	for i := 0; i < 26667; i++ {
		now += 375 * time.Microsecond
		if p.Submit(now, pkt(units.MSS)) == enforcer.Transmit {
			accepted += units.MSS
		}
	}
	want := rate.Bytes(now)
	ratio := float64(accepted) / want
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("long-term accepted ratio %.4f, want ≈1 (±bucket)", ratio)
	}
}

func TestAcceptedBoundedProperty(t *testing.T) {
	f := func(gaps []uint16, bucketPkts uint8) bool {
		b := int64(bucketPkts%30+1) * units.MSS
		rate := 4 * units.Mbps
		p := MustNew(rate, b)
		now := time.Duration(0)
		var accepted int64
		for _, g := range gaps {
			now += time.Duration(g%2000) * time.Microsecond
			if p.Submit(now, pkt(units.MSS)) == enforcer.Transmit {
				accepted += units.MSS
			}
		}
		// Token-bucket upper bound: B + r·t.
		return float64(accepted) <= float64(b)+rate.Bytes(now)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVariablePacketSizes(t *testing.T) {
	p := MustNew(8*units.Mbps, 3000)
	now := time.Millisecond
	if p.Submit(now, pkt(2000)) != enforcer.Transmit {
		t.Fatal("2000B packet dropped with 3000 tokens")
	}
	if p.Submit(now, pkt(1001)) != enforcer.Drop {
		t.Fatal("1001B packet passed with 1000 tokens")
	}
	if p.Submit(now, pkt(1000)) != enforcer.Transmit {
		t.Fatal("1000B packet dropped with 1000 tokens")
	}
}

func TestBDPBucket(t *testing.T) {
	got := BDPBucket(10*units.Mbps, 100*time.Millisecond)
	if got != 125000 {
		t.Errorf("BDPBucket = %d, want 125000", got)
	}
	if got := BDPBucket(10*units.Kbps, time.Millisecond); got != units.MSS {
		t.Errorf("BDPBucket floor = %d, want one MSS", got)
	}
}

func TestPlusBucketIsMaxOfRequirements(t *testing.T) {
	rate := 10 * units.Mbps
	rtt := 100 * time.Millisecond
	got := PlusBucket(rate, rtt)
	reno := units.RenoPhantomRequirement(rate, rtt)
	cubic := units.CubicPhantomRequirement(rate, rtt)
	want := reno
	if cubic > want {
		want = cubic
	}
	if got != want {
		t.Errorf("PlusBucket = %d, want max(reno=%d, cubic=%d)", got, reno, cubic)
	}
	if got < BDPBucket(rate, rtt) {
		t.Errorf("PlusBucket (%d) smaller than one BDP (%d)", got, BDPBucket(rate, rtt))
	}
}

func TestStats(t *testing.T) {
	p := MustNew(units.Mbps, units.MSS)
	now := time.Millisecond
	p.Submit(now, pkt(units.MSS))
	p.Submit(now, pkt(units.MSS))
	st := p.EnforcerStats()
	if st.AcceptedPackets != 1 || st.DroppedPackets != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.DropRate() != 0.5 {
		t.Errorf("drop rate = %v, want 0.5", st.DropRate())
	}
}

func TestNonMonotonicTimeTolerated(t *testing.T) {
	p := MustNew(units.Mbps, 10*units.MSS)
	p.Submit(10*time.Millisecond, pkt(units.MSS))
	// A same-or-earlier timestamp must not refill or panic.
	p.Submit(5*time.Millisecond, pkt(units.MSS))
}
