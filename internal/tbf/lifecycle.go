package tbf

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// snapVersion is the format version of Policer snapshot blobs.
const snapVersion = 1

// SetRate implements enforcer.Reconfigurer: the token level, refill clock
// and statistics survive the change. Tokens accrued before the change are
// settled at the old rate first (refill at now), so accepted bytes across
// the change stay within the piecewise bound r_old·Δt_old + r_new·Δt_new + B
// — whereas tearing the policer down and rebuilding it would refill the
// bucket to B and re-admit a full burst.
func (p *Policer) SetRate(now time.Duration, rate units.Rate) error {
	if rate <= 0 {
		return fmt.Errorf("tbf: non-positive rate %v", rate)
	}
	p.refill(now) // settle elapsed time at the old rate
	p.rate = rate
	return nil
}

// SetPolicy implements enforcer.Reconfigurer. A token bucket polices the
// aggregate only; it has no intra-aggregate rate-sharing dimension.
func (p *Policer) SetPolicy(now time.Duration, policy *sched.Policy) error {
	return enforcer.ErrNoPolicy
}

// SnapshotState implements enforcer.Snapshotter.
//
// Layout: u8 version, bool started, i64 last (ns), f64 tokens, stats.
func (p *Policer) SnapshotState() ([]byte, error) {
	var e enforcer.Enc
	e.U8(snapVersion)
	e.Bool(p.started)
	e.Dur(p.last)
	e.F64(p.tokens)
	e.Stats(p.stats)
	return e.Out(), nil
}

// RestoreState implements enforcer.Snapshotter. The token level must fit
// the receiver's bucket: restoring into a differently sized policer is a
// configuration mismatch, not a truncation.
func (p *Policer) RestoreState(data []byte) error {
	d := enforcer.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != snapVersion {
		d.Fail("tbf: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	started := d.Bool()
	last := d.Dur()
	tokens := d.F64()
	if d.Err() == nil && (tokens < 0 || tokens > p.bucket) {
		d.Fail("tbf: token level %v outside bucket [0,%v]", tokens, p.bucket)
	}
	stats := d.Stats()
	if err := d.Finish(); err != nil {
		return err
	}
	p.started = started
	p.last = last
	p.tokens = tokens
	p.stats = stats
	return nil
}

var _ enforcer.Reconfigurer = (*Policer)(nil)
var _ enforcer.Snapshotter = (*Policer)(nil)
