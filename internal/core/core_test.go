package core

import (
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/units"
)

// TestAliasesTrackPhantom pins the re-exported surface to the phantom
// package so the two cannot drift apart silently.
func TestAliasesTrackPhantom(t *testing.T) {
	if DefaultThetaHi != phantom.DefaultThetaHi ||
		DefaultThetaLo != phantom.DefaultThetaLo ||
		DefaultWindow != phantom.DefaultWindow {
		t.Error("burst-control defaults drifted from internal/phantom")
	}
	var cfg Config = phantom.Config{
		Rate:         10 * units.Mbps,
		Queues:       2,
		QueueSize:    100 * units.MSS,
		BurstControl: true,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var _ *phantom.PQP = p // PQP alias is the same type
	if v := p.Submit(time.Millisecond, packet.Packet{
		Key: packet.FlowKey{SrcPort: 1}, Size: units.MSS, Class: 0,
	}); v != enforcer.Transmit {
		t.Errorf("verdict %v", v)
	}
}

func TestMustNewAlias(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{})
}
