// Package core is the canonical entry point to the paper's primary
// contribution — the burst-controlled phantom-queue policer — for readers
// navigating the repository layout.
//
// The implementation lives in bcpqp/internal/phantom (see that package for
// the full documentation of PQP and BC-PQP); this package re-exports its
// public surface under the conventional "core" name so the contribution is
// discoverable at internal/core, alongside one-per-subsystem substrate
// packages (sched, tbf, fairpolicer, shaper, tcp, cc, netem, ...).
package core

import (
	"bcpqp/internal/phantom"
)

// Config configures a PQP or BC-PQP enforcer. See phantom.Config.
type Config = phantom.Config

// PQP is the phantom-queue policer (BC-PQP when burst control is enabled).
// See phantom.PQP.
type PQP = phantom.PQP

// Burst-control defaults from §4 of the paper.
const (
	DefaultThetaHi = phantom.DefaultThetaHi
	DefaultThetaLo = phantom.DefaultThetaLo
	DefaultWindow  = phantom.DefaultWindow
)

// New validates cfg and returns a PQP (or BC-PQP when cfg.BurstControl).
var New = phantom.New

// MustNew is New that panics on error.
var MustNew = phantom.MustNew
