// Package metrics implements the measurement machinery of the paper's
// evaluation: receiver-side throughput over fixed windows (250 ms in §6.1),
// Jain's fairness index, CDFs/percentiles, and burst (tail deviation)
// summaries.
package metrics

import (
	"math"
	"sort"
	"time"

	"bcpqp/internal/units"
)

// DefaultWindow is the paper's throughput measurement window (§6.1).
const DefaultWindow = 250 * time.Millisecond

// Meter accumulates per-key byte counts into fixed-size time windows.
// Keys identify flows or aggregates.
type Meter struct {
	window time.Duration
	counts map[int][]int64 // key -> bytes per window index
	maxIdx int
}

// NewMeter returns a Meter with the given window (0 selects DefaultWindow).
func NewMeter(window time.Duration) *Meter {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Meter{window: window, counts: make(map[int][]int64)}
}

// Add records bytes for key at virtual time now. A negative now is
// rejected (it would index before the first window); a virtual clock that
// can run backwards must be clamped by the caller.
func (m *Meter) Add(now time.Duration, key int, bytes int) {
	if now < 0 {
		return
	}
	idx := int(now / m.window)
	s := m.counts[key]
	if len(s) <= idx {
		// One append reserves the whole gap: a sparse series (a flow
		// quiet for thousands of windows) grows in a single allocation
		// instead of one per missing window.
		s = append(s, make([]int64, idx+1-len(s))...)
	}
	s[idx] += int64(bytes)
	m.counts[key] = s
	if idx > m.maxIdx {
		m.maxIdx = idx
	}
}

// Window returns the meter's window size.
func (m *Meter) Window() time.Duration { return m.window }

// Keys returns the metered keys in ascending order.
func (m *Meter) Keys() []int {
	keys := make([]int, 0, len(m.counts))
	for k := range m.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Series returns the per-window throughput for key as rates, padded with
// zeros to the meter's full horizon.
func (m *Meter) Series(key int) []units.Rate {
	s := m.counts[key]
	out := make([]units.Rate, m.maxIdx+1)
	for i := range out {
		var b int64
		if i < len(s) {
			b = s[i]
		}
		out[i] = units.Rate(float64(b) * 8 / m.window.Seconds())
	}
	return out
}

// WindowBytes returns raw per-window byte counts for key, padded to the
// meter horizon.
func (m *Meter) WindowBytes(key int) []int64 {
	s := m.counts[key]
	out := make([]int64, m.maxIdx+1)
	copy(out, s)
	return out
}

// TotalBytes returns all bytes recorded for key.
func (m *Meter) TotalBytes(key int) int64 {
	var sum int64
	for _, b := range m.counts[key] {
		sum += b
	}
	return sum
}

// Windows returns the number of windows the meter has observed.
func (m *Meter) Windows() int { return m.maxIdx + 1 }

// Jain computes Jain's fairness index over the given allocations:
// (Σx)² / (n·Σx²). It is 1 for perfectly equal shares and 1/n when one
// participant takes everything. Zero-only inputs return 1 (no contention to
// be unfair about).
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// WeightedJain computes Jain's index over weight-normalized allocations
// x_i/w_i, measuring how close shares are to the configured weights.
func WeightedJain(xs, ws []float64) float64 {
	norm := make([]float64, len(xs))
	for i := range xs {
		if ws[i] > 0 {
			norm[i] = xs[i] / ws[i]
		}
	}
	return Jain(norm)
}

// Dist is an immutable sorted sample set supporting quantile queries.
type Dist struct {
	sorted []float64
}

// NewDist copies and sorts samples.
func NewDist(samples []float64) Dist {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return Dist{sorted: s}
}

// N returns the sample count.
func (d Dist) N() int { return len(d.sorted) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func (d Dist) Quantile(q float64) float64 {
	n := len(d.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return d.sorted[0]
	}
	if q >= 1 {
		return d.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return d.sorted[n-1]
	}
	return d.sorted[lo]*(1-frac) + d.sorted[lo+1]*frac
}

// Mean returns the sample mean.
func (d Dist) Mean() float64 {
	if len(d.sorted) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range d.sorted {
		sum += v
	}
	return sum / float64(len(d.sorted))
}

// Max returns the largest sample.
func (d Dist) Max() float64 {
	if len(d.sorted) == 0 {
		return math.NaN()
	}
	return d.sorted[len(d.sorted)-1]
}

// Min returns the smallest sample.
func (d Dist) Min() float64 {
	if len(d.sorted) == 0 {
		return math.NaN()
	}
	return d.sorted[0]
}

// CDF returns (value, cumulative fraction) pairs at up to points samples,
// suitable for printing a CDF series.
func (d Dist) CDF(points int) (values, fractions []float64) {
	n := len(d.sorted)
	if n == 0 {
		return nil, nil
	}
	if points <= 0 || points > n {
		points = n
	}
	values = make([]float64, points)
	fractions = make([]float64, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * n / points
		if idx > n {
			idx = n
		}
		values[i] = d.sorted[idx-1]
		fractions[i] = float64(idx) / float64(n)
	}
	return values, fractions
}
