package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"bcpqp/internal/units"
)

func TestMeterWindows(t *testing.T) {
	m := NewMeter(250 * time.Millisecond)
	m.Add(100*time.Millisecond, 1, 1000)
	m.Add(200*time.Millisecond, 1, 500)
	m.Add(300*time.Millisecond, 1, 2000)
	wb := m.WindowBytes(1)
	if len(wb) != 2 || wb[0] != 1500 || wb[1] != 2000 {
		t.Errorf("window bytes = %v, want [1500 2000]", wb)
	}
	if m.Windows() != 2 {
		t.Errorf("Windows() = %d, want 2", m.Windows())
	}
	if m.TotalBytes(1) != 3500 {
		t.Errorf("TotalBytes = %d, want 3500", m.TotalBytes(1))
	}
}

// TestMeterRejectsNegativeTime pins Add's guard: a backwards virtual clock
// must be ignored, not panic with a negative window index or corrupt the
// horizon.
func TestMeterRejectsNegativeTime(t *testing.T) {
	m := NewMeter(250 * time.Millisecond)
	m.Add(-time.Second, 1, 1000)
	if m.TotalBytes(1) != 0 {
		t.Errorf("negative-time Add recorded %d bytes, want 0", m.TotalBytes(1))
	}
	m.Add(100*time.Millisecond, 1, 500)
	m.Add(-1, 1, 9999)
	if got := m.TotalBytes(1); got != 500 {
		t.Errorf("TotalBytes = %d after negative Add, want 500", got)
	}
	if m.Windows() != 1 {
		t.Errorf("Windows() = %d, want 1", m.Windows())
	}
}

// TestMeterSparseGapGrowth pins single-append gap growth: a key quiet for
// thousands of windows lands in the right slot with all gap windows zero.
func TestMeterSparseGapGrowth(t *testing.T) {
	m := NewMeter(time.Millisecond)
	m.Add(0, 1, 7)
	m.Add(5000*time.Millisecond, 1, 11)
	wb := m.WindowBytes(1)
	if len(wb) != 5001 {
		t.Fatalf("window count %d, want 5001", len(wb))
	}
	if wb[0] != 7 || wb[5000] != 11 {
		t.Errorf("endpoints = %d, %d, want 7, 11", wb[0], wb[5000])
	}
	for i := 1; i < 5000; i++ {
		if wb[i] != 0 {
			t.Fatalf("gap window %d = %d, want 0", i, wb[i])
		}
	}
	if m.TotalBytes(1) != 18 {
		t.Errorf("TotalBytes = %d, want 18", m.TotalBytes(1))
	}
}

func TestMeterSeriesRates(t *testing.T) {
	m := NewMeter(250 * time.Millisecond)
	m.Add(0, 7, 31250) // 31250 B / 250 ms = 1 Mbps
	s := m.Series(7)
	if len(s) != 1 {
		t.Fatalf("series length %d", len(s))
	}
	if math.Abs(s[0].Mbps()-1) > 1e-9 {
		t.Errorf("rate = %v, want 1 Mbps", s[0])
	}
}

func TestMeterPadsToHorizon(t *testing.T) {
	m := NewMeter(100 * time.Millisecond)
	m.Add(50*time.Millisecond, 1, 100)
	m.Add(950*time.Millisecond, 2, 100) // advances horizon to window 9
	s1 := m.Series(1)
	if len(s1) != 10 {
		t.Errorf("series 1 length %d, want 10 (padded)", len(s1))
	}
	for i := 1; i < 10; i++ {
		if s1[i] != 0 {
			t.Errorf("window %d of key 1 = %v, want 0", i, s1[i])
		}
	}
}

func TestMeterKeys(t *testing.T) {
	m := NewMeter(0)
	if m.Window() != DefaultWindow {
		t.Errorf("default window = %v", m.Window())
	}
	m.Add(0, 3, 1)
	m.Add(0, 1, 1)
	m.Add(0, 2, 1)
	keys := m.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Errorf("keys = %v", keys)
	}
}

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{2, 2}, 1},
		{[]float64{}, 1},
		{[]float64{0, 0}, 1},
		{[]float64{4, 2}, 0.9},
	}
	for _, tc := range cases {
		if got := Jain(tc.xs); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Jain(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
}

func TestJainBoundsProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		vals := make([]float64, len(xs))
		for i, x := range xs {
			vals[i] = float64(x)
		}
		j := Jain(vals)
		if len(vals) == 0 {
			return j == 1
		}
		return j >= 1/float64(len(vals))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedJain(t *testing.T) {
	// Perfect weighted shares → index 1.
	if got := WeightedJain([]float64{30, 20, 10}, []float64{3, 2, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("weighted jain = %v, want 1", got)
	}
	// Equal shares under unequal weights → below 1.
	if got := WeightedJain([]float64{20, 20, 20}, []float64{3, 2, 1}); got > 0.95 {
		t.Errorf("weighted jain for equal split = %v, want <0.95", got)
	}
}

func TestDistQuantiles(t *testing.T) {
	d := NewDist([]float64{5, 1, 3, 2, 4})
	if d.N() != 5 {
		t.Errorf("N = %d", d.N())
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Errorf("min/max = %v/%v", d.Min(), d.Max())
	}
	if got := d.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := d.Quantile(1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := d.Quantile(0.25); got != 2 {
		t.Errorf("q0.25 = %v, want 2", got)
	}
	if got := d.Mean(); got != 3 {
		t.Errorf("mean = %v, want 3", got)
	}
}

func TestDistEmpty(t *testing.T) {
	d := NewDist(nil)
	if !math.IsNaN(d.Quantile(0.5)) || !math.IsNaN(d.Mean()) {
		t.Error("empty dist should return NaN")
	}
	v, f := d.CDF(10)
	if v != nil || f != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestDistQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		if len(samples) == 0 {
			return true
		}
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return true
			}
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		d := NewDist(samples)
		return d.Quantile(qa) <= d.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	d := NewDist(samples)
	vals, fracs := d.CDF(10)
	if len(vals) != 10 {
		t.Fatalf("CDF points = %d", len(vals))
	}
	if fracs[9] != 1 {
		t.Errorf("last fraction = %v, want 1", fracs[9])
	}
	if vals[9] != 99 {
		t.Errorf("last value = %v, want 99", vals[9])
	}
	for i := 1; i < 10; i++ {
		if vals[i] < vals[i-1] || fracs[i] < fracs[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestMeterRateRoundTrip(t *testing.T) {
	// Bytes added at a constant rate read back as that rate.
	m := NewMeter(100 * time.Millisecond)
	rate := 4 * units.Mbps // 50 KB per 100 ms
	for ms := 0; ms < 1000; ms++ {
		m.Add(time.Duration(ms)*time.Millisecond, 0, 500)
	}
	for i, r := range m.Series(0) {
		if math.Abs(float64(r-rate)/float64(rate)) > 0.01 {
			t.Errorf("window %d rate %v, want %v", i, r, rate)
		}
	}
}
