// Package rng provides deterministic, stream-splittable randomness for
// reproducible experiments.
//
// Every experiment in this repository runs on virtual time with a fixed seed,
// so re-running an experiment reproduces its numbers exactly. Sub-streams
// derived with Split are independent of the draw order on the parent stream,
// which keeps workloads stable when unrelated code adds or removes draws.
package rng

import (
	"math"
	"math/rand/v2"
)

// Source is a deterministic random stream.
type Source struct {
	seed uint64
	r    *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{
		seed: seed,
		r:    rand.New(rand.NewPCG(seed, mix(seed))),
	}
}

// Split derives an independent child stream from a label, without consuming
// state from the parent. The same (seed, label) pair always yields the same
// child stream, regardless of how many values have been drawn from either.
func (s *Source) Split(label uint64) *Source {
	return New(mix(s.seed ^ mix(label)))
}

// mix is a splitmix64 finalization round; adjacent inputs diverge fully.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform int in [0, n).
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Int64N returns a uniform int64 in [0, n).
func (s *Source) Int64N(n int64) int64 { return s.r.Int64N(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// Exp returns an exponentially distributed float64 with mean 1.
func (s *Source) Exp() float64 { return s.r.ExpFloat64() }

// Norm returns a normally distributed float64 with mean 0 and stddev 1.
func (s *Source) Norm() float64 { return s.r.NormFloat64() }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal distribution.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.Norm())
}
