package rng

import (
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from different seeds", same)
	}
}

func TestSplitIndependentOfDrawOrder(t *testing.T) {
	a := New(7)
	b := New(7)
	// Consume values from b before splitting; children must match.
	for i := 0; i < 13; i++ {
		b.Float64()
	}
	ca, cb := a.Split(3), b.Split(3)
	for i := 0; i < 50; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Split depends on parent draw order")
		}
	}
}

func TestSplitLabelsDiverge(t *testing.T) {
	s := New(9)
	c1, c2 := s.Split(1), s.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from sibling splits", same)
	}
}

func TestAdjacentLabelsDiverge(t *testing.T) {
	s := New(0)
	c1, c2 := s.Split(0), s.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Error("adjacent labels produced identical first draws")
	}
}

func TestRangeBounds(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.Range(2, 50)
		if v < 2 || v >= 50 {
			t.Fatalf("Range(2,50) = %v out of bounds", v)
		}
	}
}

func TestIntNBounds(t *testing.T) {
	s := New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntN(4)
		if v < 0 || v >= 4 {
			t.Fatalf("IntN(4) = %d out of bounds", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("IntN(4) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(11)
	for i := 0; i < 100; i++ {
		if v := s.LogNormal(10, 1.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestExpMeanRoughlyOne(t *testing.T) {
	s := New(13)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Exp()
	}
	mean := sum / n
	if mean < 0.95 || mean > 1.05 {
		t.Errorf("Exp mean = %v, want ≈1", mean)
	}
}

func TestPerm(t *testing.T) {
	s := New(17)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
