package web

import (
	"testing"
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/packet"
	"bcpqp/internal/rng"
	"bcpqp/internal/units"
)

func newHarness(t *testing.T, rate units.Rate) *harness.Harness {
	t.Helper()
	h, err := harness.New(harness.Config{
		Scheme: harness.SchemeBCPQP,
		Rate:   rate,
		MaxRTT: 50 * time.Millisecond,
		Queues: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPagesComplete(t *testing.T) {
	h := newHarness(t, 10*units.Mbps)
	s, err := Start(Config{
		Harness: h,
		BaseKey: packet.FlowKey{SrcIP: 1, DstIP: 2, DstPort: 443, Proto: 6},
		Class:   0,
		RTT:     20 * time.Millisecond,
		Pages:   10,
		Start:   10 * time.Millisecond,
		Rand:    rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Run(2 * time.Minute)
	if !s.Done {
		t.Fatalf("only %d/10 pages completed", len(s.PLTs))
	}
	if len(s.PLTs) != 10 {
		t.Fatalf("recorded %d PLTs", len(s.PLTs))
	}
	for i, plt := range s.PLTs {
		if plt <= 0 {
			t.Errorf("page %d PLT %v", i, plt)
		}
		if plt > 20*time.Second {
			t.Errorf("page %d took %v at 10 Mbps; fan-out broken", i, plt)
		}
	}
}

func TestPLTWorsensUnderTighterRate(t *testing.T) {
	run := func(rate units.Rate) time.Duration {
		h := newHarness(t, rate)
		s, err := Start(Config{
			Harness: h,
			BaseKey: packet.FlowKey{SrcIP: 1, DstIP: 2, DstPort: 443, Proto: 6},
			Class:   0,
			RTT:     20 * time.Millisecond,
			Pages:   8,
			Start:   10 * time.Millisecond,
			Rand:    rng.New(7), // same pages both runs
		})
		if err != nil {
			t.Fatal(err)
		}
		h.Run(5 * time.Minute)
		if !s.Done {
			t.Fatalf("pages incomplete at %v", rate)
		}
		var sum time.Duration
		for _, p := range s.PLTs {
			sum += p
		}
		return sum / time.Duration(len(s.PLTs))
	}
	fast := run(20 * units.Mbps)
	slow := run(units.Rate(1.5 * units.Mbps))
	if slow <= fast {
		t.Errorf("mean PLT at 1.5 Mbps (%v) not worse than at 20 Mbps (%v)", slow, fast)
	}
}

func TestDeterministicPages(t *testing.T) {
	run := func() []time.Duration {
		h := newHarness(t, 5*units.Mbps)
		s, _ := Start(Config{
			Harness: h,
			BaseKey: packet.FlowKey{SrcIP: 1, DstIP: 2, DstPort: 443, Proto: 6},
			Class:   0,
			RTT:     20 * time.Millisecond,
			Pages:   5,
			Start:   10 * time.Millisecond,
			Rand:    rng.New(3),
		})
		h.Run(time.Minute)
		return s.PLTs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic page count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PLT %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestObjectSizeBounds(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 10000; i++ {
		s := objectSize(r)
		if s < 2_000 || s > 1_000_000 {
			t.Fatalf("object size %d out of bounds", s)
		}
	}
}

func TestValidation(t *testing.T) {
	h := newHarness(t, units.Mbps)
	if _, err := Start(Config{Harness: h, Pages: 1}); err == nil {
		t.Error("nil rand accepted")
	}
	if _, err := Start(Config{Harness: h, Rand: rng.New(1)}); err == nil {
		t.Error("zero pages accepted")
	}
	if _, err := Start(Config{Rand: rng.New(1), Pages: 1}); err == nil {
		t.Error("nil harness accepted")
	}
}
