// Package web models the page-load workload of §6.4.2: sequences of web
// pages — each a fan-out of small object fetches over short TCP
// connections with browser-like parallelism — competing with other traffic
// through a rate enforcer. Page load time (PLT) is the span from the page
// request to the completion of its last object.
package web

import (
	"fmt"
	"math"
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/packet"
	"bcpqp/internal/rng"
)

// Browser-like fetch parallelism (connections per page).
const defaultConcurrency = 6

// Config describes a sequential page-load session.
type Config struct {
	// Harness is the enforcement point the traffic runs through.
	Harness *harness.Harness
	// BaseKey seeds per-object flow keys; SrcPort is varied per object.
	BaseKey packet.FlowKey
	// Class is the enforcer class for all web flows.
	Class int
	// CC is the transport algorithm (default cubic, the web default).
	CC string
	// RTT is the propagation round-trip time.
	RTT time.Duration
	// Pages is the number of pages to load (the paper uses 50).
	Pages int
	// ObjectsPerPage bounds the object fan-out; objects are drawn
	// uniformly in [4, ObjectsPerPage]. Zero selects 16.
	ObjectsPerPage int
	// Concurrency is the parallel connection limit (default 6).
	Concurrency int
	// ThinkTime is the gap between a page finishing and the next
	// starting (default 500 ms).
	ThinkTime time.Duration
	// Start is when the first page begins.
	Start time.Duration
	// Rand drives object counts and sizes.
	Rand *rng.Source
	// OnDeliver, if set, receives receiver-side byte arrivals of all
	// web flows (for fairness metering against competing traffic).
	OnDeliver func(now time.Duration, bytes int)
}

// Session runs pages sequentially and records PLTs.
type Session struct {
	cfg Config

	page      int
	pageStart time.Duration
	pending   int     // objects not yet complete in the current page
	queue     []int64 // object sizes not yet started
	inFlight  int
	nextPort  uint16

	// PLTs holds one page-load time per completed page.
	PLTs []time.Duration
	// Done reports whether every page completed.
	Done bool
}

// Start begins the session.
func Start(cfg Config) (*Session, error) {
	if cfg.Harness == nil {
		return nil, fmt.Errorf("web: nil harness")
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("web: nil rand source")
	}
	if cfg.Pages <= 0 {
		return nil, fmt.Errorf("web: no pages")
	}
	if cfg.ObjectsPerPage <= 0 {
		cfg.ObjectsPerPage = 16
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = defaultConcurrency
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = 500 * time.Millisecond
	}
	if cfg.CC == "" {
		cfg.CC = "cubic"
	}
	s := &Session{cfg: cfg, nextPort: cfg.BaseKey.SrcPort}
	cfg.Harness.Loop.At(cfg.Start, func() { s.startPage(cfg.Start) })
	return s, nil
}

// startPage builds the object list for one page and launches the first
// wave of fetches.
func (s *Session) startPage(now time.Duration) {
	r := s.cfg.Rand
	n := 4 + r.IntN(s.cfg.ObjectsPerPage-3)
	s.pageStart = now
	s.pending = n
	s.queue = s.queue[:0]
	for i := 0; i < n; i++ {
		s.queue = append(s.queue, objectSize(r))
	}
	// The first object (the HTML) fetches alone; the rest fan out when
	// it completes, as a browser discovers subresources.
	html := s.queue[0]
	s.queue = s.queue[1:]
	s.fetch(now, html, func(done time.Duration) {
		s.objectDone(done)
		s.fill(done)
	})
}

// fill launches queued objects up to the concurrency limit.
func (s *Session) fill(now time.Duration) {
	for s.inFlight < s.cfg.Concurrency && len(s.queue) > 0 {
		size := s.queue[0]
		s.queue = s.queue[1:]
		s.fetch(now, size, func(done time.Duration) {
			s.objectDone(done)
			s.fill(done)
		})
	}
}

// fetch launches one object transfer on a fresh short connection.
func (s *Session) fetch(now time.Duration, size int64, onDone func(time.Duration)) {
	s.inFlight++
	key := s.cfg.BaseKey
	s.nextPort++
	key.SrcPort = s.nextPort
	_, err := s.cfg.Harness.AttachFlow(harness.FlowSpec{
		Key:       key,
		Class:     s.cfg.Class,
		CC:        s.cfg.CC,
		RTT:       s.cfg.RTT,
		Size:      size,
		Start:     now,
		OnDeliver: s.cfg.OnDeliver,
		OnComplete: func(done time.Duration) {
			s.inFlight--
			onDone(done)
		},
	})
	if err != nil {
		// Key exhaustion would be a harness misconfiguration; surface
		// it loudly rather than silently shrinking pages.
		panic(err)
	}
}

// objectDone accounts one object completion and closes out the page.
func (s *Session) objectDone(now time.Duration) {
	s.pending--
	if s.pending > 0 {
		return
	}
	s.PLTs = append(s.PLTs, now-s.pageStart)
	s.page++
	if s.page >= s.cfg.Pages {
		s.Done = true
		return
	}
	s.cfg.Harness.Loop.After(s.cfg.ThinkTime, func() {
		s.startPage(s.cfg.Harness.Loop.Now())
	})
}

// objectSize draws a web-object size: log-normal with a ~20 KB median and
// a heavy tail, truncated to [2 KB, 1 MB] — the shape of HTTP archive
// object-size distributions.
func objectSize(r *rng.Source) int64 {
	v := r.LogNormal(math.Log(20_000), 1.0)
	if v < 2_000 {
		v = 2_000
	}
	if v > 1_000_000 {
		v = 1_000_000
	}
	return int64(v)
}
