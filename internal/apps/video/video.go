// Package video models an adaptive-bitrate (ABR) streaming client and
// server over the simulated transport, standing in for the YouTube/Netflix
// sessions of the paper's §6.4.1 and Appendix B evaluation.
//
// The client fetches fixed-duration chunks over a persistent TCP connection
// and picks each chunk's bitrate with a standard throughput+buffer hybrid
// rule: the highest ladder rung below a safety fraction of the EWMA
// throughput estimate, overridden to the lowest rung when the playback
// buffer runs low, with requests paused while the buffer is full. Playback
// and rebuffering are accounted in virtual time. YouTube-like sessions run
// over BBR and Netflix-like sessions over New Reno, per the paper.
package video

import (
	"fmt"
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/packet"
	"bcpqp/internal/units"
)

// DefaultLadder is a YouTube-like bitrate ladder (144p…1080p).
var DefaultLadder = []units.Rate{
	300 * units.Kbps,
	500 * units.Kbps,
	750 * units.Kbps,
	1200 * units.Kbps,
	2400 * units.Kbps,
	4500 * units.Kbps,
}

// ABR tuning constants.
const (
	safetyFactor  = 0.8              // fraction of estimated throughput to spend
	lowBufferMark = 4 * time.Second  // panic-to-lowest threshold
	maxBuffer     = 30 * time.Second // stop requesting above this level
	ewmaAlpha     = 0.4              // weight of the newest chunk sample
)

// Config describes one streaming session.
type Config struct {
	// Harness is the enforcement point the session runs through.
	Harness *harness.Harness
	// Key/Class identify the video flow to the enforcer.
	Key   packet.FlowKey
	Class int
	// CC is the transport ("bbr" for YouTube-like, "reno" for
	// Netflix-like sessions).
	CC string
	// RTT is the session's propagation round-trip time.
	RTT time.Duration
	// Start is when the session begins.
	Start time.Duration
	// PlayDuration is how much video to stream.
	PlayDuration time.Duration
	// ChunkDuration is the media chunk length (default 4 s).
	ChunkDuration time.Duration
	// Ladder is the bitrate ladder (default DefaultLadder).
	Ladder []units.Rate
	// OnDeliver, if set, receives receiver-side byte arrivals for
	// throughput metering.
	OnDeliver func(now time.Duration, bytes int)
}

// Client is a running ABR session.
type Client struct {
	cfg Config

	flow interface {
		AddData(int64)
	}

	chunkIdx    int
	totalChunks int

	est units.Rate // EWMA throughput estimate

	buffer     time.Duration // playback buffer level
	lastUpdate time.Duration
	started    bool

	fetchStart time.Duration
	fetchBytes int64

	// Results.
	Qualities   []units.Rate  // bitrate chosen per chunk
	Rebuffering time.Duration // total stall time
	Switches    int           // quality changes
	DoneAt      time.Duration // when the last chunk finished (0 if not)
}

// Start attaches the session to the harness and schedules its first chunk.
func Start(cfg Config) (*Client, error) {
	if cfg.Harness == nil {
		return nil, fmt.Errorf("video: nil harness")
	}
	if cfg.ChunkDuration <= 0 {
		cfg.ChunkDuration = 4 * time.Second
	}
	if len(cfg.Ladder) == 0 {
		cfg.Ladder = DefaultLadder
	}
	if cfg.PlayDuration <= 0 {
		cfg.PlayDuration = time.Minute
	}
	c := &Client{
		cfg:         cfg,
		totalChunks: int((cfg.PlayDuration + cfg.ChunkDuration - 1) / cfg.ChunkDuration),
	}

	first := c.chunkSize(c.pickQuality())
	flow, err := cfg.Harness.AttachFlow(harness.FlowSpec{
		Key:        cfg.Key,
		Class:      cfg.Class,
		CC:         cfg.CC,
		RTT:        cfg.RTT,
		Size:       first,
		Start:      cfg.Start,
		OnDeliver:  cfg.OnDeliver,
		OnComplete: c.onChunkDone,
	})
	if err != nil {
		return nil, err
	}
	c.flow = flow
	c.fetchStart = cfg.Start
	c.fetchBytes = first
	c.lastUpdate = cfg.Start
	return c, nil
}

// pickQuality runs the ABR rule for the next chunk.
func (c *Client) pickQuality() units.Rate {
	ladder := c.cfg.Ladder
	q := ladder[0]
	if c.started && c.buffer < lowBufferMark {
		// Low buffer: take the safe lowest rung.
		c.recordQuality(q)
		return q
	}
	if c.est > 0 {
		budget := units.Rate(safetyFactor * float64(c.est))
		for _, r := range ladder {
			if r <= budget {
				q = r
			}
		}
	}
	c.recordQuality(q)
	return q
}

func (c *Client) recordQuality(q units.Rate) {
	if n := len(c.Qualities); n > 0 && c.Qualities[n-1] != q {
		c.Switches++
	}
	c.Qualities = append(c.Qualities, q)
}

// chunkSize converts a bitrate choice into chunk bytes.
func (c *Client) chunkSize(q units.Rate) int64 {
	b := int64(q.Bytes(c.cfg.ChunkDuration))
	if b < units.MSS {
		b = units.MSS
	}
	return b
}

// onChunkDone updates playback accounting, the throughput estimate, and
// requests the next chunk (delayed if the buffer is full).
func (c *Client) onChunkDone(now time.Duration) {
	c.advancePlayback(now)
	c.started = true
	c.buffer += c.cfg.ChunkDuration

	// Throughput sample from the completed fetch.
	if dt := now - c.fetchStart; dt > 0 {
		sample := units.Rate(float64(c.fetchBytes) * 8 / dt.Seconds())
		if c.est == 0 {
			c.est = sample
		} else {
			c.est = units.Rate(ewmaAlpha*float64(sample) + (1-ewmaAlpha)*float64(c.est))
		}
	}

	c.chunkIdx++
	if c.chunkIdx >= c.totalChunks {
		c.DoneAt = now
		return
	}

	if c.buffer >= maxBuffer {
		// Buffer full: wait until it drains below the high mark.
		wait := c.buffer - maxBuffer + c.cfg.ChunkDuration
		c.cfg.Harness.Loop.After(wait, func() { c.requestNext(c.cfg.Harness.Loop.Now()) })
		return
	}
	c.requestNext(now)
}

// requestNext issues the next chunk fetch on the persistent connection.
func (c *Client) requestNext(now time.Duration) {
	c.advancePlayback(now)
	size := c.chunkSize(c.pickQuality())
	c.fetchStart = now
	c.fetchBytes = size
	c.flow.AddData(size)
}

// advancePlayback drains the playback buffer for elapsed virtual time and
// accumulates rebuffering when it runs dry.
func (c *Client) advancePlayback(now time.Duration) {
	if !c.started {
		c.lastUpdate = now
		return
	}
	elapsed := now - c.lastUpdate
	c.lastUpdate = now
	if elapsed <= 0 {
		return
	}
	if c.buffer >= elapsed {
		c.buffer -= elapsed
		return
	}
	c.Rebuffering += elapsed - c.buffer
	c.buffer = 0
}

// AvgQuality returns the mean selected bitrate across fetched chunks.
func (c *Client) AvgQuality() units.Rate {
	if len(c.Qualities) == 0 {
		return 0
	}
	var sum units.Rate
	for _, q := range c.Qualities {
		sum += q
	}
	return sum / units.Rate(len(c.Qualities))
}

// Buffer returns the current playback buffer level (for tests).
func (c *Client) Buffer() time.Duration { return c.buffer }

// Chunks returns how many chunks have completed.
func (c *Client) Chunks() int { return c.chunkIdx }
