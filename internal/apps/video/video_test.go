package video

import (
	"testing"
	"time"

	"bcpqp/internal/harness"
	"bcpqp/internal/packet"
	"bcpqp/internal/units"
)

func newHarness(t *testing.T, scheme harness.Scheme, rate units.Rate) *harness.Harness {
	t.Helper()
	h, err := harness.New(harness.Config{
		Scheme: scheme,
		Rate:   rate,
		MaxRTT: 50 * time.Millisecond,
		Queues: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func key(port uint16) packet.FlowKey {
	return packet.FlowKey{SrcIP: 1, SrcPort: port, DstIP: 2, DstPort: 443, Proto: 6}
}

func TestStreamCompletesAtHighQualityWithHeadroom(t *testing.T) {
	// 10 Mbps all to one video: the ABR should climb the ladder and
	// play without rebuffering.
	h := newHarness(t, harness.SchemeBCPQP, 10*units.Mbps)
	c, err := Start(Config{
		Harness:      h,
		Key:          key(1),
		Class:        0,
		CC:           "bbr",
		RTT:          30 * time.Millisecond,
		Start:        10 * time.Millisecond,
		PlayDuration: 40 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Run(90 * time.Second)
	if c.DoneAt == 0 {
		t.Fatalf("stream incomplete: %d/%d chunks", c.Chunks(), c.totalChunks)
	}
	if got := c.AvgQuality(); got < 1500*units.Kbps {
		t.Errorf("avg quality %v with 10 Mbps headroom, want ≥1.5 Mbps", got)
	}
	if c.Rebuffering > time.Second {
		t.Errorf("rebuffered %v with ample bandwidth", c.Rebuffering)
	}
}

func TestStreamAdaptsDownUnderTightRate(t *testing.T) {
	// 1 Mbps cap: the client must settle on low rungs and still make
	// progress rather than stalling forever.
	h := newHarness(t, harness.SchemeBCPQP, 1*units.Mbps)
	c, err := Start(Config{
		Harness:      h,
		Key:          key(1),
		Class:        0,
		CC:           "reno",
		RTT:          30 * time.Millisecond,
		Start:        10 * time.Millisecond,
		PlayDuration: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Run(120 * time.Second)
	if c.Chunks() < 3 {
		t.Fatalf("only %d chunks fetched", c.Chunks())
	}
	if got := c.AvgQuality(); got > 900*units.Kbps {
		t.Errorf("avg quality %v through a 1 Mbps cap, want below 0.9 Mbps", got)
	}
}

func TestQualityLadderRespected(t *testing.T) {
	h := newHarness(t, harness.SchemeBCPQP, 5*units.Mbps)
	c, err := Start(Config{
		Harness:      h,
		Key:          key(1),
		Class:        0,
		CC:           "cubic",
		RTT:          20 * time.Millisecond,
		Start:        10 * time.Millisecond,
		PlayDuration: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Run(60 * time.Second)
	valid := map[units.Rate]bool{}
	for _, r := range DefaultLadder {
		valid[r] = true
	}
	for i, q := range c.Qualities {
		if !valid[q] {
			t.Errorf("chunk %d has off-ladder quality %v", i, q)
		}
	}
}

func TestBufferCapsRequests(t *testing.T) {
	// With enormous headroom the buffer must cap near maxBuffer rather
	// than prefetching the entire stream instantly.
	h := newHarness(t, harness.SchemeBCPQP, 50*units.Mbps)
	c, err := Start(Config{
		Harness:      h,
		Key:          key(1),
		Class:        0,
		CC:           "bbr",
		RTT:          10 * time.Millisecond,
		Start:        10 * time.Millisecond,
		PlayDuration: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Run(20 * time.Second)
	if c.Buffer() > maxBuffer+2*c.cfg.ChunkDuration {
		t.Errorf("buffer %v far exceeds the %v cap", c.Buffer(), maxBuffer)
	}
	if c.DoneAt != 0 {
		t.Error("2-minute stream finished in 20 s of virtual time; pacing broken")
	}
}

func TestRebufferAccounting(t *testing.T) {
	// A starved stream (100 kbps for a 300 kbps floor) must rebuffer.
	h := newHarness(t, harness.SchemeBCPQP, 100*units.Kbps)
	c, err := Start(Config{
		Harness:      h,
		Key:          key(1),
		Class:        0,
		CC:           "reno",
		RTT:          30 * time.Millisecond,
		Start:        10 * time.Millisecond,
		PlayDuration: 12 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Run(2 * time.Minute)
	if c.Chunks() >= 2 && c.Rebuffering == 0 {
		t.Error("starved stream reported zero rebuffering")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Error("nil harness accepted")
	}
}
