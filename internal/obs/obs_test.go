package obs

import (
	"math/bits"
	"sync"
	"testing"
	"time"
)

func TestRingRecordSnapshot(t *testing.T) {
	c := NewCollector(Options{RingDepth: 16})
	for i := 0; i < 10; i++ {
		c.Record(Event{Kind: KindShed, Shard: -1, Agg: -1, A: int64(i)})
	}
	evs := c.Events()
	if len(evs) != 10 {
		t.Fatalf("Events() = %d events, want 10", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d (sorted by global sequence)", i, e.Seq, i+1)
		}
		if e.A != int64(i) {
			t.Errorf("event %d: A = %d, want %d", i, e.A, i)
		}
		if e.Wall == 0 {
			t.Errorf("event %d: wall timestamp not stamped", i)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	c := NewCollector(Options{RingDepth: 16})
	for i := 0; i < 100; i++ {
		c.Record(Event{Kind: KindShed, Shard: -1, Agg: -1, A: int64(i)})
	}
	evs := c.Events()
	if len(evs) != 16 {
		t.Fatalf("ring of 16 holds %d events", len(evs))
	}
	if evs[0].A != 84 || evs[len(evs)-1].A != 99 {
		t.Errorf("ring holds A=%d..%d, want 84..99", evs[0].A, evs[len(evs)-1].A)
	}
	if got := c.EventsRecorded(); got != 100 {
		t.Errorf("EventsRecorded = %d, want 100", got)
	}
}

// TestRingConcurrentSnapshot hammers a ring with concurrent writers while
// snapshotting: every returned event must be internally consistent (the
// writer stores A == B), which the per-slot seqlock guarantees.
func TestRingConcurrentSnapshot(t *testing.T) {
	c := NewCollector(Options{RingDepth: 64})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := int64(w*1_000_000 + i)
				c.Record(Event{Kind: KindBurst, Shard: -1, Agg: -1, A: v, B: v})
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, e := range c.Events() {
			if e.A != e.B {
				t.Fatalf("torn event: A=%d B=%d", e.A, e.B)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestShardRecordStampsShard(t *testing.T) {
	c := NewCollector(Options{RingDepth: 16})
	s := c.Shard(3)
	s.Record(Event{Kind: KindPanic, Agg: 7, A: 1})
	evs := c.Events()
	if len(evs) != 1 || evs[0].Shard != 3 || evs[0].Agg != 7 {
		t.Fatalf("shard event = %+v", evs)
	}
}

func TestSampleBurst(t *testing.T) {
	c := NewCollector(Options{SampleEvery: 4})
	s := c.Shard(0)
	var hits int
	for i := 0; i < 16; i++ {
		if s.SampleBurst() {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("SampleEvery=4 over 16 bursts sampled %d, want 4", hits)
	}
}

func TestHistBuckets(t *testing.T) {
	h := NewHist()
	values := []int64{0, 1, 100, 128, 129, 1000, 1 << 20, 1 << 33, 1 << 40}
	for _, v := range values {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(values)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(values))
	}
	var sum int64
	for _, v := range values {
		sum += v
	}
	if got := s.Sum * 1e9; got < float64(sum)*0.999 || got > float64(sum)*1.001 {
		t.Errorf("Sum = %g s, want ≈%d ns", s.Sum, sum)
	}
	var total uint64
	for _, n := range s.Counts {
		total += n
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, s.Count)
	}
	// The overflow bucket holds exactly the 2^40 observation.
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	// Every value must land in a bucket whose bound covers it.
	for _, v := range values[:len(values)-1] {
		idx := histIdx(v)
		if idx >= len(s.Bounds) {
			t.Errorf("value %d overflowed (bit length %d)", v, bits.Len64(uint64(v)))
			continue
		}
		if float64(v)/1e9 > s.Bounds[idx] {
			t.Errorf("value %d above its bucket bound %g", v, s.Bounds[idx])
		}
		if idx > 0 && float64(v)/1e9 <= s.Bounds[idx-1] {
			t.Errorf("value %d at or below the previous bound %g", v, s.Bounds[idx-1])
		}
	}
}

func TestHistBoundsMonotone(t *testing.T) {
	prev := int64(0)
	for i, b := range histBounds {
		if b <= prev {
			t.Fatalf("bound %d = %d not increasing past %d", i, b, prev)
		}
		prev = b
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewHist()
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty hist quantile = %g, want 0", q)
	}
	for i := 0; i < 1000; i++ {
		h.Observe(1000) // 1 µs
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 0.9e-6 || q > 1.2e-6 {
		t.Errorf("p50 of 1µs = %g s", q)
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(100*time.Millisecond, 8)
	if r := m.Rate(); r != 0 {
		t.Errorf("empty meter Rate = %v, want 0", r)
	}
	// 12500 bytes into the first window = 1 Mbps at 100 ms windows.
	m.Add(10*time.Millisecond, 12500)
	m.Add(150*time.Millisecond, 1) // advance into window 1
	if r := float64(m.Rate()); r < 0.99e6 || r > 1.01e6 {
		t.Errorf("Rate = %g bps, want ≈1e6", r)
	}
	if m.Total() != 12501 {
		t.Errorf("Total = %d", m.Total())
	}
}

func TestRateMeterRebaseBoundsMemory(t *testing.T) {
	m := NewRateMeter(time.Millisecond, 4)
	// Walk far past the horizon; the meter must keep working (and keep
	// only the rebased history).
	for i := 0; i < 10_000; i++ {
		m.Add(time.Duration(i)*time.Millisecond, 125)
	}
	if r := float64(m.Rate()); r < 0.9e6 || r > 1.1e6 {
		t.Errorf("steady 1 Mbps reads %g bps after rebases", r)
	}
	if m.Total() != 10_000*125 {
		t.Errorf("Total = %d", m.Total())
	}
	// Time regression clamps instead of panicking.
	m.Add(0, 10)
}

func TestAggObsCount(t *testing.T) {
	c := NewCollector(Options{})
	a := c.NewAggObs()
	a.Count(10, 15000, 2, 3000, 50*time.Millisecond)
	a.Count(5, 7500, 0, 0, 60*time.Millisecond)
	s := a.Snapshot()
	if s.AcceptedPackets != 15 || s.AcceptedBytes != 22500 ||
		s.DroppedPackets != 2 || s.DroppedBytes != 3000 {
		t.Errorf("Snapshot = %+v", s)
	}
}

func TestCollectorBurstHistMerge(t *testing.T) {
	c := NewCollector(Options{})
	c.Shard(0).ObserveBurst(1000)
	c.Shard(1).ObserveBurst(2000)
	c.Shard(1).ObserveBurst(3000)
	if got := c.Bursts(); got != 3 {
		t.Errorf("Bursts = %d", got)
	}
	if s := c.BurstHist(); s.Count != 3 {
		t.Errorf("merged hist Count = %d", s.Count)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindBurst; k <= KindOverload; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind string = %q", Kind(200).String())
	}
}
