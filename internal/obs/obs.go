// Package obs is the runtime observability layer of the middlebox
// datapath: a flight recorder (fixed-size, lock-free per-shard rings of
// trace events), a metrics plane (per-aggregate and per-shard counters,
// windowed-rate meters reusing internal/metrics, and log-linear latency
// histograms), and exporters for the Prometheus text exposition format and
// expvar.
//
// The design constraint is zero allocation and near-zero cost on the hot
// path: events are fixed-size structs written into pre-allocated rings with
// a per-slot seqlock (word-wise atomic stores, so snapshots taken under the
// race detector are clean), per-burst accounting is a handful of atomic
// adds stamped once per burst rather than once per packet, and per-burst
// trace events are sampled (Options.SampleEvery). Rare events — drops with
// reasons, magic fill/reclaim, rate and policy updates, quarantine,
// eviction, control-lane failover, shed bursts, panics — are always
// recorded.
//
// The package is deliberately dependency-light (internal/metrics and
// internal/units only); internal/mbox threads it through the engine and
// the bcpqp facade re-exports the wiring surface.
package obs

import (
	"fmt"
	"time"
)

// Kind identifies a trace event in the flight recorder. The taxonomy
// covers the datapath (burst verdict summaries, per-packet drops with
// reason, ECN marks, §5.2 magic-byte churn) and the control plane
// (rate/policy updates, quarantine, reinstatement, removal, idle eviction,
// control-lane failover, shed bursts, recovered panics).
type Kind uint8

const (
	// KindBurst summarizes one enforced run of a burst: A = packets
	// accepted, B = packets dropped, C = bytes accepted.
	KindBurst Kind = iota
	// KindDrop is a single rejected packet: A = bytes, B = simulated
	// queue occupancy after the event, C = drop reason (enforcer
	// specific; for phantom queues 1 = filter, 2 = RED, 3 = queue full).
	KindDrop
	// KindMark is a packet admitted with an ECN CE mark: A = bytes,
	// B = queue occupancy.
	KindMark
	// KindMagicFill is a burst-control magic fill: A = magic bytes
	// added, B = queue occupancy after.
	KindMagicFill
	// KindMagicReclaim is a burst-control magic reclaim: A = magic bytes
	// removed, B = queue occupancy after.
	KindMagicReclaim
	// KindRateUpdate is a live rate reconfiguration: A = new rate in
	// bits per second.
	KindRateUpdate
	// KindPolicyUpdate is a live rate-sharing policy swap.
	KindPolicyUpdate
	// KindQuarantine marks a circuit breaker tripping: A = panic count.
	KindQuarantine
	// KindReinstate marks a quarantined aggregate's breaker re-closing.
	KindReinstate
	// KindRemove is an explicit aggregate removal.
	KindRemove
	// KindEvict is an idle-TTL eviction: A = final accepted packets,
	// B = final dropped packets.
	KindEvict
	// KindFailover is a control operation failing over from the ordered
	// data ring to the priority control lane.
	KindFailover
	// KindShed is a burst shed at a full shard ring: A = packets shed.
	KindShed
	// KindPanic is a recovered enforcer/emit panic: A = the aggregate's
	// cumulative panic count.
	KindPanic
	// KindPeerState is a cluster peer health transition: A = the previous
	// state, B = the new state (cluster.PeerState values), C = the peer's
	// index in the node's sorted peer list.
	KindPeerState
	// KindShareApply is a cluster rebalance applying a per-node share via
	// the in-band rate-update lane: A = the share in bits per second,
	// B = 1 when the share is the conservative fallback (r/N floor under
	// degraded exchange), 0 when grant-adjusted.
	KindShareApply
	// KindOverload is an overload-plane transition: A = 1 on activation
	// and 0 on deactivation, B = the composite pressure in milli-units,
	// C = the shed-rate EWMA in packets/sec at the transition.
	KindOverload
	// KindViolation is a conformance-audit envelope breach: the audited
	// aggregate (or tree node, when Node ≥ 0) accepted more bytes than the
	// Theorem-1 bound r·Δt + B allows. A = the deficit in bytes, B = the
	// audited envelope rate in bits per second, C = cumulative accepted
	// bytes at the breach. Coalesced at the burst-sampling cadence under a
	// sustained breach (the first violation always records).
	KindViolation
)

// String names the event kind for dumps and logs.
func (k Kind) String() string {
	switch k {
	case KindBurst:
		return "burst"
	case KindDrop:
		return "drop"
	case KindMark:
		return "mark"
	case KindMagicFill:
		return "magic-fill"
	case KindMagicReclaim:
		return "magic-reclaim"
	case KindRateUpdate:
		return "rate-update"
	case KindPolicyUpdate:
		return "policy-update"
	case KindQuarantine:
		return "quarantine"
	case KindReinstate:
		return "reinstate"
	case KindRemove:
		return "remove"
	case KindEvict:
		return "evict"
	case KindFailover:
		return "failover"
	case KindShed:
		return "shed"
	case KindPanic:
		return "panic"
	case KindPeerState:
		return "peer-state"
	case KindShareApply:
		return "share-apply"
	case KindOverload:
		return "overload"
	case KindViolation:
		return "violation"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one fixed-size flight-recorder record. It carries no pointers
// and no strings, so recording is allocation-free; attribution is by shard
// index and by the engine's aggregate handle, which dump consumers resolve
// back to ids while the aggregate is still registered.
type Event struct {
	// Seq is a collector-global sequence number (1-based): the total
	// order in which events were recorded across every ring.
	Seq uint64
	// Wall is the wall-clock timestamp in Unix nanoseconds.
	Wall int64
	// VT is the engine's virtual time in nanoseconds, when the event was
	// recorded on a shard goroutine; zero for control-plane events.
	VT int64
	// Kind classifies the event; A, B and C are kind-specific arguments
	// (see the Kind constants).
	Kind Kind
	// Shard is the originating shard index, -1 when unattributed.
	Shard int32
	// Agg is the aggregate's engine handle, -1 when unattributed.
	Agg int64
	// Node is the policy-tree node the event is attributed to within the
	// aggregate, -1 when unattributed (flat aggregates, whole-aggregate
	// events). Producers must set -1 explicitly: node 0 is a valid node.
	Node int32
	// A, B, C are the kind-specific arguments.
	A, B, C int64
}

// String renders the event as one structured key=value trace line.
func (e Event) String() string {
	return fmt.Sprintf("seq=%d wall=%s vt=%s kind=%s shard=%d agg=%d node=%d a=%d b=%d c=%d",
		e.Seq, time.Unix(0, e.Wall).UTC().Format(time.RFC3339Nano),
		time.Duration(e.VT), e.Kind, e.Shard, e.Agg, e.Node, e.A, e.B, e.C)
}

// Recorder consumes trace events. Collector and ShardObs implement it; the
// interface is the build-out point for alternative sinks (tests, external
// trace shippers). Record must be fast, allocation-free, and safe for
// concurrent use.
type Recorder interface {
	Record(Event)
}
