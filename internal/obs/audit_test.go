package obs

import (
	"math"
	"testing"
	"time"
)

// TestAuditEnvelopeExact pins the allowance arithmetic: at r bits/sec the
// accrual over Δt is exactly r·Δt/8e9 bytes with the sub-byte remainder
// carried, so an enforcer that admits precisely the allowance never trips
// the auditor and one extra byte does.
func TestAuditEnvelopeExact(t *testing.T) {
	const r = 20_000_000 // 20 Mbit/s → 2.5 MB/s
	a := NewAudit(0, r, 0, 0)
	// After 1s the allowance is exactly 2_500_000 bytes.
	if d := a.Observe(time.Second, 2_500_000); d != 0 {
		t.Fatalf("exact-allowance observe returned deficit %d", d)
	}
	if d := a.Observe(time.Second, 1); d != 1 {
		t.Fatalf("one byte over should breach by 1, got %d", d)
	}
	s := a.Snapshot()
	if s.Violations != 1 || s.MaxDeficit != 1 {
		t.Fatalf("snapshot = %+v, want 1 violation, max deficit 1", s)
	}
	if s.AllowedBytes != 2_500_000 || s.AcceptedBytes != 2_500_001 {
		t.Fatalf("allowed/accepted = %d/%d", s.AllowedBytes, s.AcceptedBytes)
	}
	if s.MinSlackBytes != -1 {
		t.Fatalf("min slack = %d, want -1", s.MinSlackBytes)
	}
}

// TestAuditFracCarry pins the remainder carry: 1 bit/s accrues one byte
// every 8 seconds exactly, never early, never losing the fraction across
// many small advances.
func TestAuditFracCarry(t *testing.T) {
	a := NewAudit(0, 1, 0, 0)
	// Advance in 1ms steps for 8s: 8000 advances of 125_000 bit·ns each.
	for i := 1; i <= 8000; i++ {
		a.Observe(time.Duration(i)*time.Millisecond, 0)
	}
	if s := a.Snapshot(); s.AllowedBytes != 1 {
		t.Fatalf("1 bit/s over 8s accrued %d bytes, want exactly 1", s.AllowedBytes)
	}
	a2 := NewAudit(0, 1, 0, 0)
	a2.Observe(8*time.Second-time.Nanosecond, 0)
	if s := a2.Snapshot(); s.AllowedBytes != 0 {
		t.Fatalf("1 bit/s just before 8s accrued %d bytes, want 0", s.AllowedBytes)
	}
}

// TestAuditBurstAllowance: the envelope is r·Δt + B; a line-rate burst of
// exactly B at t=0 is conformant, B+1 is not.
func TestAuditBurstAllowance(t *testing.T) {
	a := NewAudit(0, 8_000_000, 1500, 0)
	if d := a.Observe(0, 1500); d != 0 {
		t.Fatalf("burst of B bytes breached by %d", d)
	}
	if d := a.Observe(0, 1); d != 1 {
		t.Fatalf("B+1 should breach by 1, got %d", d)
	}
}

// TestAuditRebase pins the piecewise envelope: allowance accrued under the
// old rate survives a rate change, and subsequent accrual uses the new
// rate — the shadow of the engine's in-band SetRate.
func TestAuditRebase(t *testing.T) {
	a := NewAudit(0, 80_000_000, 0, 0) // 10 MB/s
	a.Observe(time.Second, 0)          // 10 MB allowed
	a.Rebase(time.Second, 8_000_000)   // drop to 1 MB/s
	a.Observe(2*time.Second, 0)        // +1 MB
	if s := a.Snapshot(); s.AllowedBytes != 11_000_000 {
		t.Fatalf("piecewise allowance = %d, want 11_000_000", s.AllowedBytes)
	}
	if s := a.Snapshot(); s.RateBps != 8_000_000 {
		t.Fatalf("rate after rebase = %d", s.RateBps)
	}
	// Rebase to zero freezes accrual.
	a.Rebase(2*time.Second, 0)
	a.Observe(10*time.Second, 0)
	if s := a.Snapshot(); s.AllowedBytes != 11_000_000 {
		t.Fatalf("zero-rate envelope still accrued: %d", s.AllowedBytes)
	}
}

// TestAuditShadowDeterminism: two auditors fed the identical (now, bytes)
// sequence agree bit-for-bit on every counter — the property the chaos
// reconciliation tests lean on.
func TestAuditShadowDeterminism(t *testing.T) {
	mk := func() *Audit { return NewAudit(0, 13_337_331, 4096, 0) }
	a, b := mk(), mk()
	now := time.Duration(0)
	seq := []struct {
		dt    time.Duration
		bytes int64
	}{}
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 5000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		seq = append(seq, struct {
			dt    time.Duration
			bytes int64
		}{time.Duration(x % uint64(3*time.Millisecond)), int64(x % 9000)})
	}
	for i, s := range seq {
		now += s.dt
		a.Observe(now, s.bytes)
		b.Observe(now, s.bytes)
		if i%971 == 0 {
			a.Rebase(now, int64(7_000_000+i))
			b.Rebase(now, int64(7_000_000+i))
		}
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa != sb {
		t.Fatalf("shadow auditors diverged:\n%+v\n%+v", sa, sb)
	}
	if sa.Violations == 0 {
		t.Fatalf("sequence expected to produce violations (avg ~4500B/1.5ms vs ~1.6KB allowance)")
	}
}

// TestAuditRateErrorWindows pins the tumbling-window rate-error digest:
// exact-rate traffic records ~0 permille, double-rate traffic ~1000, and
// idle gaps don't synthesize empty windows.
func TestAuditRateErrorWindows(t *testing.T) {
	const r = 8_000_000 // 1 MB/s → 250 KB per 250ms window
	a := NewAudit(0, r, 1<<40, 0)
	now := time.Duration(0)
	for i := 0; i < 40; i++ { // 10 windows of 4 observes each
		now += 62500 * time.Microsecond
		a.Observe(now, 62_500)
	}
	s := a.Snapshot()
	if s.Windows < 9 {
		t.Fatalf("windows = %d, want ≥ 9", s.Windows)
	}
	if q := a.RateErrDigest().Quantile(0.99); q > 10 {
		t.Fatalf("exact-rate p99 error = %d permille", q)
	}
	// Jump across an idle gap: no phantom windows.
	wBefore := a.Snapshot().Windows
	now += 10 * time.Second
	a.Observe(now, 1)
	if w := a.Snapshot().Windows; w > wBefore+1 {
		t.Fatalf("idle gap synthesized %d windows", w-wBefore)
	}
	// Double-rate traffic: error ≈ 1000 permille.
	b := NewAudit(0, r, 1<<40, 0)
	now = 0
	for i := 0; i < 40; i++ {
		now += 62500 * time.Microsecond
		b.Observe(now, 125_000)
	}
	if q := b.RateErrDigest().Quantile(0.5); q < 900 || q > 1200 {
		t.Fatalf("double-rate median error = %d permille, want ~1000", q)
	}
}

// TestAuditSaturation: huge rates over long gaps saturate the allowance at
// MaxInt64 instead of wrapping, and the auditor keeps functioning.
func TestAuditSaturation(t *testing.T) {
	a := NewAudit(0, math.MaxInt64, 0, 0)
	a.Observe(time.Duration(math.MaxInt64), 1<<40)
	s := a.Snapshot()
	if s.AllowedBytes != math.MaxInt64 {
		t.Fatalf("allowance = %d, want saturated MaxInt64", s.AllowedBytes)
	}
	if s.Violations != 0 {
		t.Fatalf("saturated envelope reported %d violations", s.Violations)
	}
	if d := a.Observe(time.Duration(math.MaxInt64), 1); d != 0 {
		t.Fatalf("post-saturation observe deficit %d", d)
	}
}

// TestAuditSlackDigest: slack observations land in the digest (clamped at
// zero for breaches) and merge into roll-ups.
func TestAuditSlackDigest(t *testing.T) {
	a := NewAudit(0, 8_000_000, 1000, 0)
	a.Observe(0, 500) // slack 500
	a.Observe(0, 499) // slack 1
	a.Observe(0, 100) // breach by 99 → slack digest records 0
	s := a.SlackDigest()
	if got := s.Total(); got != 3 {
		t.Fatalf("slack digest total = %d", got)
	}
	acc := NewDigest()
	a.MergeSlack(acc)
	if acc.Snapshot().Total() != 3 {
		t.Fatalf("MergeSlack lost observations")
	}
	if a.Snapshot().Violations != 1 {
		t.Fatalf("violations = %d", a.Snapshot().Violations)
	}
}

// BenchmarkAuditObserve pins the audit hot path: 0 allocs/op.
func BenchmarkAuditObserve(b *testing.B) {
	a := NewAudit(0, 100_000_000, 1<<16, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Observe(time.Duration(i)*time.Microsecond, 1500)
	}
}
