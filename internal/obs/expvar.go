package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"strings"
)

// Var adapts a snapshot source to expvar.Var, so the same metrics served
// at /metrics in Prometheus form appear under /debug/vars as JSON. Each
// family flattens to a map keyed by its label sets; histograms export
// count, sum and a few latency quantiles instead of raw buckets.
func Var(fn func() Snapshot) expvar.Var { return varFunc(fn) }

type varFunc func() Snapshot

// String renders the snapshot as JSON. Non-finite values are coerced to 0
// first — encoding/json rejects NaN/Inf and expvar output must stay valid.
func (f varFunc) String() string {
	snap := f()
	out := make(map[string]any, len(snap.Families))
	for _, fam := range snap.Families {
		if len(fam.Samples) == 0 {
			continue
		}
		// A family with a single unlabeled scalar flattens to a number;
		// anything else becomes a map keyed by the label set.
		if len(fam.Samples) == 1 && len(fam.Samples[0].Labels) == 0 && fam.Samples[0].Hist == nil {
			out[fam.Name] = finite(fam.Samples[0].Value)
			continue
		}
		m := make(map[string]any, len(fam.Samples))
		for _, sm := range fam.Samples {
			key := labelKey(sm.Labels)
			if sm.Hist != nil {
				m[key] = map[string]any{
					"count": sm.Hist.Count,
					"sum":   finite(sm.Hist.Sum),
					"p50":   finite(sm.Hist.Quantile(0.50)),
					"p99":   finite(sm.Hist.Quantile(0.99)),
				}
				continue
			}
			m[key] = finite(sm.Value)
		}
		out[fam.Name] = m
	}
	b, err := json.Marshal(out)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// labelKey renders a label set as a stable map key ("" for none).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return "value"
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
