package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time metrics export: an ordered list of metric
// families ready for serialization. Engines build one per scrape; the
// format writers never touch live state.
type Snapshot struct {
	Families []Family
}

// Family is one metric family (one # HELP / # TYPE block).
type Family struct {
	Name string
	Help string
	// Type is "counter", "gauge" or "histogram".
	Type    string
	Samples []Sample
}

// Label is one name="value" pair.
type Label struct {
	Name, Value string
}

// Sample is one sample within a family. Histogram samples carry Hist and
// ignore Value.
type Sample struct {
	Labels []Label
	Value  float64
	Hist   *HistSnapshot
}

// WritePrometheus serializes a snapshot in the Prometheus text exposition
// format (version 0.0.4). Metric and label names are sanitized to the
// legal character set, label values are escaped, and non-finite values
// (NaN/±Inf, e.g. from an empty meter) are written as 0 so a scraper never
// chokes on them.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, f := range s.Families {
		name := sanitizeName(f.Name)
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		typ := f.Type
		switch typ {
		case "counter", "gauge", "histogram":
		default:
			typ = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		for _, sm := range f.Samples {
			if typ == "histogram" && sm.Hist != nil {
				if err := writeHistSample(w, name, sm); err != nil {
					return err
				}
				continue
			}
			if err := writeSample(w, name, sm.Labels, "", "", sm.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistSample emits the _bucket/_sum/_count triplet for one histogram
// sample. Buckets are cumulative; trailing all-zero buckets before the
// +Inf bucket are elided to keep scrapes compact.
func writeHistSample(w io.Writer, name string, sm Sample) error {
	h := sm.Hist
	last := -1
	for i := 0; i < len(h.Bounds) && i < len(h.Counts); i++ {
		if h.Counts[i] != 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.Counts[i]
		le := strconv.FormatFloat(h.Bounds[i], 'g', -1, 64)
		if err := writeSample(w, name+"_bucket", sm.Labels, "le", le, float64(cum)); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_bucket", sm.Labels, "le", "+Inf", float64(h.Count)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", sm.Labels, "", "", h.Sum); err != nil {
		return err
	}
	return writeSample(w, name+"_count", sm.Labels, "", "", float64(h.Count))
}

// writeSample emits one sample line, appending the extra label (used for
// le) when extraName is nonempty.
func writeSample(w io.Writer, name string, labels []Label, extraName, extraValue string, v float64) error {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(sanitizeLabelName(l.Name))
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue renders a float, coercing non-finite values to 0 so empty
// meters and division artifacts never leak NaN/Inf into the exposition.
func formatValue(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeName coerces s into a legal metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*): illegal runes become '_' and an empty or
// digit-led name gains a '_' prefix.
func sanitizeName(s string) string { return sanitize(s, true) }

// sanitizeLabelName is sanitizeName for label names, where ':' is not in
// the legal character set ([a-zA-Z_][a-zA-Z0-9_]*).
func sanitizeLabelName(s string) string { return sanitize(s, false) }

func sanitize(s string, allowColon bool) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		ch := s[i]
		ok := ch == '_' || (ch == ':' && allowColon) ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
			(ch >= '0' && ch <= '9' && i > 0)
		if !ok {
			if ch >= '0' && ch <= '9' { // digit-led name
				b.WriteByte('_')
				b.WriteByte(ch)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteByte(ch)
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline. Other control bytes are replaced so
// the output stays line-oriented.
func escapeLabelValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r', '\t':
			b.WriteByte(' ')
		default:
			if r < 0x20 {
				b.WriteByte(' ')
				continue
			}
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only, per the
// format).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
