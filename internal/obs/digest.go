package obs

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Digest is a fixed-size, mergeable, relative-error quantile sketch over
// non-negative int64 values (bytes, nanoseconds, permille — the unit is the
// caller's). It is the DDSketch shape adapted to the repo's log-linear
// histogram idiom: values 0..15 get exact buckets, every later power-of-two
// octave is split into 8 linear sub-buckets, so any quantile read off a
// bucket's upper bound overestimates the true value by at most 1/8 (12.5%)
// relative error, at any scale, from 16 up to MaxInt64.
//
// Observe is lock-free and allocation-free (one bucket index computation
// via bits.Len64 plus three atomic adds), so audits can feed a digest once
// per enforced run on the hot path. Snapshots read the atomic buckets
// without stopping writers — like the flight-recorder rings, a snapshot
// racing writers is internally consistent enough for export (a bucket may
// trail an in-flight observation). Merging is bucket-wise integer
// addition, which makes it exactly associative and commutative: per-shard,
// per-aggregate and per-node digests roll up in any order to the same
// result, and the BQAD wire form lets digests merge across processes.
type Digest struct {
	counts [digestBuckets]atomic.Uint64
	sum    atomic.Int64
}

// Digest geometry: 16 exact buckets for 0..15, then (64-4)=60 octaves of 8
// sub-buckets covering [16, MaxInt64]. Bit length 5..63 → 59 octaves; bit
// length 64 cannot occur for a non-negative int64.
const (
	digestExact   = 16                         // exact buckets 0..15
	digestSub     = 8                          // linear sub-buckets per octave
	digestSubBits = 3                          // log2(digestSub)
	digestBuckets = digestExact + 59*digestSub // 488
)

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{} }

// digestIdx maps a value to its bucket (negatives clamp to 0).
func digestIdx(v int64) int {
	if v < digestExact {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	u := uint64(v)
	l := bits.Len64(u) // ≥ 5 here, ≤ 63 for int64
	sub := int(u>>(l-1-digestSubBits)) & (digestSub - 1)
	return digestExact + (l-5)*digestSub + sub
}

// digestBound returns the inclusive upper bound of bucket idx.
func digestBound(idx int) int64 {
	if idx < digestExact {
		return int64(idx)
	}
	l := (idx-digestExact)/digestSub + 5
	sub := (idx - digestExact) % digestSub
	lo := int64(1) << (l - 1)
	step := int64(1) << (l - 1 - digestSubBits)
	return lo + int64(sub+1)*step - 1 // idx 487 lands exactly on MaxInt64
}

// Observe records one value (negatives clamp to zero).
func (d *Digest) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	d.counts[digestIdx(v)].Add(1)
	d.sum.Add(v)
}

// Merge adds other's counts into d.
func (d *Digest) Merge(other *Digest) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n > 0 {
			d.counts[i].Add(n)
		}
	}
	d.sum.Add(other.sum.Load())
}

// Snapshot copies the digest. Total is computed from the copied buckets, so
// a snapshot is always self-consistent (Quantile never chases a count that
// is not in a bucket).
func (d *Digest) Snapshot() DigestSnapshot {
	s := DigestSnapshot{Counts: make([]uint64, digestBuckets), Sum: d.sum.Load()}
	for i := range d.counts {
		s.Counts[i] = d.counts[i].Load()
	}
	return s
}

// DigestSnapshot is a point-in-time copy of a Digest in export form.
// Counts are per-bucket; Sum is the running sum of observed values (for
// means). The zero value is an empty digest.
type DigestSnapshot struct {
	Counts []uint64
	Sum    int64
}

// Total returns the number of observations in the snapshot.
func (s DigestSnapshot) Total() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the matching bucket's
// inclusive upper bound: an overestimate by at most 12.5% of the true
// value. It returns 0 for an empty digest.
func (s DigestSnapshot) Quantile(q float64) int64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1 // q=1 selects the last populated bucket
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum > target {
			return digestBound(i)
		}
	}
	return digestBound(len(s.Counts) - 1)
}

// Merge returns a new snapshot holding the bucket-wise sum of s and other.
// Integer bucket addition makes the operation exactly associative and
// commutative, which TestDigestMergeAssociativity pins.
func (s DigestSnapshot) Merge(other DigestSnapshot) DigestSnapshot {
	out := DigestSnapshot{Counts: make([]uint64, digestBuckets), Sum: s.Sum + other.Sum}
	for i := range out.Counts {
		if i < len(s.Counts) {
			out.Counts[i] += s.Counts[i]
		}
		if i < len(other.Counts) {
			out.Counts[i] += other.Counts[i]
		}
	}
	return out
}

// Hist converts the snapshot to a Prometheus-exportable histogram with
// bucket bounds scaled by scale (e.g. 1e-9 to export nanosecond
// observations in seconds, 1 for bytes). The last populated bucket bounds
// the export; WritePrometheus elides the all-zero tail.
func (s DigestSnapshot) Hist(scale float64) HistSnapshot {
	h := HistSnapshot{
		Bounds: make([]float64, digestBuckets),
		Counts: make([]uint64, digestBuckets+1),
		Sum:    float64(s.Sum) * scale,
		Count:  s.Total(),
	}
	for i := 0; i < digestBuckets; i++ {
		h.Bounds[i] = float64(digestBound(i)) * scale
		if i < len(s.Counts) {
			h.Counts[i] = s.Counts[i]
		}
	}
	return h
}

// BQAD wire form: a compact, validated binary encoding so digests can be
// shipped between processes (the /debug/audit endpoint serves it) and
// merged off-box. Framing follows the repo's snapshot codecs (BQSN/BQXC):
// a magic, a version, then length-prefixed content — and the decoder is
// fuzzed (FuzzAuditDigestDecode) to hold the same contract: arbitrary
// bytes never panic and never allocate beyond the fixed bucket count.
//
//	"BQAD" | u8 version | i64 sum | u16 npairs | npairs × (u16 idx, u64 count)
//
// Pairs carry only the non-zero buckets in strictly increasing index
// order; all integers are big-endian.
const (
	digestMagic   = "BQAD"
	digestVersion = 1
)

// Encode serializes the snapshot in the BQAD wire form.
func (s DigestSnapshot) Encode() []byte {
	var pairs int
	for _, c := range s.Counts {
		if c > 0 {
			pairs++
		}
	}
	out := make([]byte, 0, len(digestMagic)+1+8+2+pairs*10)
	out = append(out, digestMagic...)
	out = append(out, digestVersion)
	out = binary.BigEndian.AppendUint64(out, uint64(s.Sum))
	out = binary.BigEndian.AppendUint16(out, uint16(pairs))
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		out = binary.BigEndian.AppendUint16(out, uint16(i))
		out = binary.BigEndian.AppendUint64(out, c)
	}
	return out
}

// DecodeDigest parses a BQAD frame. Every structural violation — bad
// magic or version, truncated or oversized frame, out-of-range or
// non-increasing bucket indices, zero counts, a total that overflows —
// is rejected with an error; the allocation is bounded by the fixed
// bucket count regardless of input.
func DecodeDigest(b []byte) (DigestSnapshot, error) {
	const header = len(digestMagic) + 1 + 8 + 2
	if len(b) < header {
		return DigestSnapshot{}, fmt.Errorf("obs: digest frame too short (%d bytes)", len(b))
	}
	if string(b[:len(digestMagic)]) != digestMagic {
		return DigestSnapshot{}, fmt.Errorf("obs: bad digest magic %q", b[:len(digestMagic)])
	}
	if v := b[len(digestMagic)]; v != digestVersion {
		return DigestSnapshot{}, fmt.Errorf("obs: unsupported digest version %d", v)
	}
	sum := int64(binary.BigEndian.Uint64(b[len(digestMagic)+1:]))
	pairs := int(binary.BigEndian.Uint16(b[len(digestMagic)+9:]))
	if pairs > digestBuckets {
		return DigestSnapshot{}, fmt.Errorf("obs: digest frame claims %d buckets (max %d)", pairs, digestBuckets)
	}
	if len(b) != header+pairs*10 {
		return DigestSnapshot{}, fmt.Errorf("obs: digest frame length %d, want %d", len(b), header+pairs*10)
	}
	s := DigestSnapshot{Counts: make([]uint64, digestBuckets), Sum: sum}
	prev := -1
	var total uint64
	for p := 0; p < pairs; p++ {
		off := header + p*10
		idx := int(binary.BigEndian.Uint16(b[off:]))
		c := binary.BigEndian.Uint64(b[off+2:])
		if idx >= digestBuckets {
			return DigestSnapshot{}, fmt.Errorf("obs: digest bucket index %d out of range", idx)
		}
		if idx <= prev {
			return DigestSnapshot{}, fmt.Errorf("obs: digest bucket index %d not increasing", idx)
		}
		if c == 0 {
			return DigestSnapshot{}, fmt.Errorf("obs: digest bucket %d has zero count", idx)
		}
		if total+c < total {
			return DigestSnapshot{}, fmt.Errorf("obs: digest total overflows")
		}
		total += c
		prev = idx
		s.Counts[idx] = c
	}
	return s, nil
}
