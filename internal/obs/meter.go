package obs

import (
	"sync"
	"time"

	"bcpqp/internal/metrics"
	"bcpqp/internal/units"
)

// RateMeter adapts internal/metrics.Meter — the paper's §6.1 windowed
// throughput meter — to a long-running monotonic clock. metrics.Meter
// indexes windows from virtual time zero and grows its window slice
// forever; RateMeter rebases onto a fresh Meter every `horizon` windows so
// memory stays bounded over an unbounded run, at the cost of forgetting
// history older than the horizon (which is exactly what a runtime gauge
// wants).
//
// It is safe for one writer and any number of readers; the expected shape
// is one Add per enforced burst on a shard goroutine and occasional reads
// from the metrics exporter.
type RateMeter struct {
	mu      sync.Mutex
	window  time.Duration
	horizon int
	base    time.Duration // virtual-time origin of the current meter
	last    time.Duration // most recent Add time (absolute)
	m       *metrics.Meter
	total   int64
}

// NewRateMeter returns a meter with the given window (0 selects the
// paper's 250 ms default) keeping at most horizon windows of history
// (0 selects 64).
func NewRateMeter(window time.Duration, horizon int) *RateMeter {
	if window <= 0 {
		window = metrics.DefaultWindow
	}
	if horizon <= 0 {
		horizon = 64
	}
	return &RateMeter{window: window, horizon: horizon}
}

// Window returns the meter's window size.
func (r *RateMeter) Window() time.Duration { return r.window }

// Add records bytes at monotonic time now. Regressions clamp to the last
// observed time (the underlying meter requires non-decreasing time).
func (r *RateMeter) Add(now time.Duration, bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now < r.last {
		now = r.last
	}
	if r.m == nil || now-r.base >= time.Duration(r.horizon)*r.window {
		// Rebase: drop history beyond the horizon and realign the
		// origin to a window boundary so window edges stay stable.
		r.base = now - now%r.window
		r.m = metrics.NewMeter(r.window)
	}
	r.m.Add(now-r.base, 0, bytes)
	r.last = now
	r.total += int64(bytes)
}

// Rate returns the throughput over the most recent completed window, or
// over the current partial window when it is the only one. An unused meter
// reports zero (never NaN).
func (r *RateMeter) Rate() units.Rate {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		return 0
	}
	wb := r.m.WindowBytes(0)
	cur := int((r.last - r.base) / r.window)
	idx := cur - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(wb) {
		idx = len(wb) - 1
	}
	return units.Rate(float64(wb[idx]) * 8 / r.window.Seconds())
}

// Total returns all bytes ever recorded (across rebases).
func (r *RateMeter) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
