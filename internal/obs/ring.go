package obs

import (
	"sort"
	"sync/atomic"
)

// Ring is a fixed-capacity, lock-free flight-recorder ring. Writers claim
// slots with one atomic increment and publish events with word-wise atomic
// stores behind a per-slot seqlock; readers snapshot without stopping
// writers, discarding any slot caught mid-write. The ring never allocates
// after construction and never blocks: new events overwrite the oldest.
//
// Each slot's fields are individually atomic, so a concurrent snapshot is
// free of data races (including under the race detector) and the seq
// re-check discards torn events rather than returning them.
type Ring struct {
	mask  uint64
	head  atomic.Uint64 // next claim index
	slots []ringSlot
}

// ringSlot is one seqlocked event. seq is 0 while vacant or mid-write and
// the event's (nonzero) global sequence number once published.
type ringSlot struct {
	seq  atomic.Uint64
	wall atomic.Int64
	vt   atomic.Int64
	meta atomic.Uint64 // kind in bits 0-7, shard+1 in bits 8-39
	agg  atomic.Int64
	node atomic.Int32
	a    atomic.Int64
	b    atomic.Int64
	c    atomic.Int64
}

// NewRing returns a ring holding the most recent n events (rounded up to a
// power of two, minimum 16).
func NewRing(n int) *Ring {
	capacity := 16
	for capacity < n {
		capacity <<= 1
	}
	return &Ring{mask: uint64(capacity - 1), slots: make([]ringSlot, capacity)}
}

// Cap returns the ring capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Recorded returns how many events were ever recorded (including
// overwritten ones).
func (r *Ring) Recorded() uint64 { return r.head.Load() }

// record publishes one event; e.Seq must already be nonzero (the
// collector's global sequence). Claiming the slot index with a single
// atomic add makes the ring multi-producer safe: two producers write the
// same slot only after a full ring wrap between claim and publish, and the
// seqlock discards such a slot from snapshots rather than tearing it.
func (r *Ring) record(e Event) {
	s := &r.slots[(r.head.Add(1)-1)&r.mask]
	s.seq.Store(0)
	s.wall.Store(e.Wall)
	s.vt.Store(e.VT)
	s.meta.Store(packMeta(e.Kind, e.Shard))
	s.agg.Store(e.Agg)
	s.node.Store(e.Node)
	s.a.Store(e.A)
	s.b.Store(e.B)
	s.c.Store(e.C)
	s.seq.Store(e.Seq)
}

func packMeta(k Kind, shard int32) uint64 {
	return uint64(k) | uint64(uint32(shard+1))<<8
}

func unpackMeta(m uint64) (Kind, int32) {
	return Kind(m & 0xff), int32(uint32(m>>8)) - 1
}

// snapshot appends the ring's published events to out. Slots caught
// mid-write are retried a few times and then skipped; the result is not
// ordered (merge and sort across rings with sortEvents).
func (r *Ring) snapshot(out []Event) []Event {
	for i := range r.slots {
		s := &r.slots[i]
		for attempt := 0; attempt < 3; attempt++ {
			seq := s.seq.Load()
			if seq == 0 {
				break // vacant or mid-write
			}
			e := Event{
				Seq:  seq,
				Wall: s.wall.Load(),
				VT:   s.vt.Load(),
				Agg:  s.agg.Load(),
				Node: s.node.Load(),
				A:    s.a.Load(),
				B:    s.b.Load(),
				C:    s.c.Load(),
			}
			e.Kind, e.Shard = unpackMeta(s.meta.Load())
			if s.seq.Load() != seq {
				continue // overwritten mid-copy: retry
			}
			out = append(out, e)
			break
		}
	}
	return out
}

// sortEvents orders a merged snapshot by global sequence number.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
}
