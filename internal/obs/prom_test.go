package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLine matches one exposition sample line: name, optional label block,
// value. The label block is validated separately (quote-aware).
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$`)

// checkPromText asserts the buffer is well-formed text exposition format:
// every line is a comment or a sample whose name is legal, whose label
// block tokenizes with properly escaped quoted values, and whose value
// parses as a finite float.
func checkPromText(t *testing.T, b []byte) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		if m[2] != "" {
			checkLabelBlock(t, line, m[2])
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value leaked: %q", line)
		}
	}
}

var labelName = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// checkLabelBlock tokenizes a {name="value",...} block, honouring escapes.
func checkLabelBlock(t *testing.T, line, block string) {
	t.Helper()
	s := block[1 : len(block)-1] // strip { }
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || !labelName.MatchString(s[:eq]) {
			t.Fatalf("bad label name in %q (rest %q)", line, s)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			t.Fatalf("unquoted label value in %q", line)
		}
		// Scan the quoted value honouring backslash escapes.
		i := 1
		for ; i < len(s); i++ {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					t.Fatalf("dangling escape in %q", line)
				}
				if c := s[i+1]; c != '\\' && c != '"' && c != 'n' {
					t.Fatalf("invalid escape \\%c in %q", c, line)
				}
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
			if s[i] == '\n' {
				t.Fatalf("raw newline inside label value in %q", line)
			}
		}
		if i >= len(s) {
			t.Fatalf("unterminated label value in %q", line)
		}
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				t.Fatalf("missing comma between labels in %q", line)
			}
			s = s[1:]
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	h := NewHist()
	h.Observe(1000)
	h.Observe(2000)
	hs := h.Snapshot()
	snap := Snapshot{Families: []Family{
		{Name: "bcpqp_accepted_packets_total", Help: "accepted \\ packets\nper aggregate", Type: "counter",
			Samples: []Sample{
				{Labels: []Label{{"aggregate", "sub \"42\"\nnext\\"}}, Value: 123},
				{Labels: []Label{{"aggregate", "plain"}}, Value: 7},
			}},
		{Name: "bcpqp_rate_bps", Type: "gauge",
			Samples: []Sample{{Value: math.NaN()}, {Value: math.Inf(1)}}},
		{Name: "bcpqp_burst_seconds", Type: "histogram",
			Samples: []Sample{{Hist: &hs}}},
		{Name: "0weird name!", Type: "bogus", Samples: []Sample{{Value: 1}}},
	}}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkPromText(t, buf.Bytes())
	for _, want := range []string{
		"# TYPE bcpqp_accepted_packets_total counter",
		`bcpqp_accepted_packets_total{aggregate="plain"} 7`,
		"bcpqp_burst_seconds_count 2",
		"bcpqp_burst_seconds_sum 3e-06",
		`le="+Inf"} 2`,
		"# TYPE _0weird_name_ untyped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf}") {
		t.Errorf("non-finite value leaked:\n%s", out)
	}
}

func TestHistBucketsCumulative(t *testing.T) {
	h := NewHist()
	h.Observe(100)  // bucket 0
	h.Observe(5000) // later bucket
	hs := h.Snapshot()
	var buf bytes.Buffer
	err := WritePrometheus(&buf, Snapshot{Families: []Family{
		{Name: "x", Type: "histogram", Samples: []Sample{{Hist: &hs}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Cumulative counts must be non-decreasing and end at Count.
	var prev float64 = -1
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "x_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("cumulative bucket decreased: %q", buf.String())
		}
		prev = v
	}
	if prev != 2 {
		t.Errorf("final cumulative = %g, want 2", prev)
	}
}

func TestExpvarVar(t *testing.T) {
	h := NewHist()
	h.Observe(1500)
	hs := h.Snapshot()
	v := Var(func() Snapshot {
		return Snapshot{Families: []Family{
			{Name: "bcpqp_panics_total", Type: "counter", Samples: []Sample{{Value: 3}}},
			{Name: "bcpqp_rate_bps", Type: "gauge",
				Samples: []Sample{{Labels: []Label{{"aggregate", "a"}}, Value: math.NaN()}}},
			{Name: "bcpqp_burst_seconds", Type: "histogram", Samples: []Sample{{Hist: &hs}}},
			{Name: "empty", Type: "gauge"},
		}}
	})
	var decoded map[string]any
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, v.String())
	}
	if decoded["bcpqp_panics_total"] != 3.0 {
		t.Errorf("scalar family = %v", decoded["bcpqp_panics_total"])
	}
	rates, ok := decoded["bcpqp_rate_bps"].(map[string]any)
	if !ok || rates["aggregate=a"] != 0.0 {
		t.Errorf("NaN gauge not coerced to 0: %v", decoded["bcpqp_rate_bps"])
	}
	if _, present := decoded["empty"]; present {
		t.Error("empty family exported")
	}
}
