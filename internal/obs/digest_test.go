package obs

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestDigestGeometry pins the bucket mapping: indices are monotone in the
// value, every value lands in a bucket whose inclusive upper bound is at
// least the value, and the bound overestimates by at most 1/8.
func TestDigestGeometry(t *testing.T) {
	if got := digestIdx(0); got != 0 {
		t.Fatalf("digestIdx(0) = %d", got)
	}
	if got := digestIdx(-7); got != 0 {
		t.Fatalf("digestIdx(-7) = %d", got)
	}
	if got := digestIdx(math.MaxInt64); got != digestBuckets-1 {
		t.Fatalf("digestIdx(MaxInt64) = %d, want %d", got, digestBuckets-1)
	}
	if got := digestBound(digestBuckets - 1); got != math.MaxInt64 {
		t.Fatalf("digestBound(last) = %d, want MaxInt64", got)
	}

	vals := []int64{0, 1, 15, 16, 17, 31, 32, 100, 1500, 1 << 20, 1<<40 + 12345, math.MaxInt64 - 1, math.MaxInt64}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63())
	}
	prevIdx := -1
	for _, v := range vals {
		idx := digestIdx(v)
		if idx < 0 || idx >= digestBuckets {
			t.Fatalf("digestIdx(%d) = %d out of range", v, idx)
		}
		bound := digestBound(idx)
		if bound < v {
			t.Fatalf("digestBound(%d)=%d below value %d", idx, bound, v)
		}
		// Relative error: bound ≤ v·(1+1/8). Check as bound−v ≤ v/8
		// (exact buckets have zero error).
		if v >= digestExact && bound-v > v/8+1 {
			t.Fatalf("value %d: bound %d overestimates by %d (> v/8)", v, bound, bound-v)
		}
		if idx > 0 {
			if lower := digestBound(idx - 1); lower >= v {
				t.Fatalf("value %d fell in bucket %d but bucket %d bound %d already covers it", v, idx, idx-1, lower)
			}
		}
		_ = prevIdx
	}
	// Monotonicity of bounds across the whole bucket range.
	for i := 1; i < digestBuckets; i++ {
		if digestBound(i) <= digestBound(i-1) {
			t.Fatalf("bounds not strictly increasing at %d: %d then %d", i, digestBound(i-1), digestBound(i))
		}
	}
}

// TestDigestQuantile drives a digest with a known distribution and checks
// the quantile estimates hold the 12.5% relative-error contract.
func TestDigestQuantile(t *testing.T) {
	d := NewDigest()
	if got := d.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty digest quantile = %d", got)
	}
	// Uniform 1..100000.
	const n = 100000
	for i := int64(1); i <= n; i++ {
		d.Observe(i)
	}
	s := d.Snapshot()
	if got := s.Total(); got != n {
		t.Fatalf("Total = %d, want %d", got, n)
	}
	if got := s.Sum; got != n*(n+1)/2 {
		t.Fatalf("Sum = %d, want %d", got, n*(n+1)/2)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		want := int64(q * n)
		got := s.Quantile(q)
		if got < want || float64(got) > float64(want)*1.125+1 {
			t.Fatalf("Quantile(%v) = %d, want within [%d, %v]", q, got, want, float64(want)*1.125)
		}
	}
}

// TestDigestMergeAssociativity pins the headline merge property: bucket
// counts are integers, so (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == (c ⊕ a) ⊕ b
// exactly, bit for bit — the cross-shard, cross-node and cross-process
// roll-ups are order-independent.
func TestDigestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	mk := func() DigestSnapshot {
		d := NewDigest()
		for i, n := 0, 100+rng.Intn(400); i < n; i++ {
			d.Observe(rng.Int63n(1 << uint(4+rng.Intn(40))))
		}
		return d.Snapshot()
	}
	a, b, c := mk(), mk(), mk()
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	comm := c.Merge(a).Merge(b)
	for _, o := range []DigestSnapshot{right, comm} {
		if left.Sum != o.Sum || left.Total() != o.Total() {
			t.Fatalf("merge totals differ: %d/%d vs %d/%d", left.Sum, left.Total(), o.Sum, o.Total())
		}
		for i := range left.Counts {
			if left.Counts[i] != o.Counts[i] {
				t.Fatalf("merge bucket %d differs: %d vs %d", i, left.Counts[i], o.Counts[i])
			}
		}
	}
	// Merging through the wire form is the same as merging in memory.
	da, err := DecodeDigest(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	db, err := DecodeDigest(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	wire := da.Merge(db)
	mem := a.Merge(b)
	if wire.Sum != mem.Sum || wire.Total() != mem.Total() {
		t.Fatalf("wire-form merge diverged: %d/%d vs %d/%d", wire.Sum, wire.Total(), mem.Sum, mem.Total())
	}
	// Live Digest.Merge matches snapshot merge.
	d1, d2 := NewDigest(), NewDigest()
	for i := int64(0); i < 1000; i++ {
		d1.Observe(i * 3)
		d2.Observe(i * 7)
	}
	s1, s2 := d1.Snapshot(), d2.Snapshot()
	d1.Merge(d2)
	live := d1.Snapshot()
	want := s1.Merge(s2)
	if live.Sum != want.Sum || live.Total() != want.Total() {
		t.Fatalf("live merge diverged: %d/%d vs %d/%d", live.Sum, live.Total(), want.Sum, want.Total())
	}
}

// TestDigestCodecRoundTrip pins Encode/Decode as a lossless pair and the
// decoder's structural validation.
func TestDigestCodecRoundTrip(t *testing.T) {
	d := NewDigest()
	vals := []int64{0, 1, 5, 16, 1500, 1 << 30, math.MaxInt64}
	for _, v := range vals {
		d.Observe(v)
	}
	s := d.Snapshot()
	enc := s.Encode()
	got, err := DecodeDigest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sum != s.Sum || got.Total() != s.Total() {
		t.Fatalf("roundtrip totals: %d/%d vs %d/%d", got.Sum, got.Total(), s.Sum, s.Total())
	}
	for i := range s.Counts {
		if got.Counts[i] != s.Counts[i] {
			t.Fatalf("roundtrip bucket %d: %d vs %d", i, got.Counts[i], s.Counts[i])
		}
	}
	// Empty digest roundtrips too.
	if _, err := DecodeDigest(DigestSnapshot{Counts: make([]uint64, digestBuckets)}.Encode()); err != nil {
		t.Fatalf("empty roundtrip: %v", err)
	}

	bad := [][]byte{
		nil,
		[]byte("BQAD"),
		append([]byte("BQXX"), enc[4:]...),           // wrong magic
		append([]byte("BQAD\x02"), enc[5:]...),       // wrong version
		enc[:len(enc)-1],                             // truncated pair
		append(append([]byte{}, enc...), 0),          // trailing junk
		mutate(enc, 13, 0xFF), mutate(enc, 14, 0xFF), // absurd pair count
	}
	for i, b := range bad {
		if _, err := DecodeDigest(b); err == nil {
			t.Fatalf("bad frame %d decoded without error", i)
		}
	}
}

func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte{}, b...)
	out[i] = v
	return out
}

// FuzzAuditDigestDecode mirrors the BQSN/BQXC fuzz contract for the BQAD
// digest wire form: arbitrary bytes never panic, never allocate past the
// fixed bucket count, and every accepted frame re-encodes to an equivalent
// digest (decode∘encode∘decode is the identity on the accepted set).
func FuzzAuditDigestDecode(f *testing.F) {
	d := NewDigest()
	for _, v := range []int64{0, 3, 17, 1500, 1 << 22, math.MaxInt64} {
		d.Observe(v)
	}
	f.Add(d.Snapshot().Encode())
	f.Add(NewDigest().Snapshot().Encode())
	f.Add([]byte("BQAD"))
	f.Add([]byte("BQAD\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01"))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeDigest(b)
		if err != nil {
			return
		}
		if len(s.Counts) != digestBuckets {
			t.Fatalf("accepted frame has %d buckets", len(s.Counts))
		}
		re, err := DecodeDigest(s.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if re.Sum != s.Sum || !bytes.Equal(re.Encode(), s.Encode()) {
			t.Fatalf("decode/encode not stable")
		}
		// Quantile on decoded frames must stay in range and not panic.
		if q := s.Quantile(0.999); q < 0 {
			t.Fatalf("negative quantile %d", q)
		}
	})
}

// BenchmarkDigestObserve pins the hot-path cost: 0 allocs/op.
func BenchmarkDigestObserve(b *testing.B) {
	d := NewDigest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(int64(i) * 1021)
	}
}
