package obs

import (
	"math/bits"
	"sync/atomic"
)

// Log-linear histogram geometry: values (nanoseconds) below 2^histMinBits
// land in bucket 0; each subsequent power-of-two octave is split into
// histSubBuckets linear sub-buckets; values at or above 2^histMaxBits
// (≈17 s) land in the overflow bucket. Relative error is bounded by
// 1/histSubBuckets within the covered range.
const (
	histMinBits    = 7  // 128 ns
	histMaxBits    = 34 // ~17.2 s
	histSubBuckets = 4
)

// histBuckets is the number of bounded buckets (bucket 0 plus the
// sub-bucketed octaves); one overflow bucket follows.
const histBuckets = 1 + (histMaxBits-histMinBits)*histSubBuckets

// histBounds holds each bounded bucket's inclusive upper bound in
// nanoseconds, computed once at init.
var histBounds = func() [histBuckets]int64 {
	var b [histBuckets]int64
	b[0] = 1 << histMinBits
	i := 1
	for oct := histMinBits + 1; oct <= histMaxBits; oct++ {
		lo := int64(1) << (oct - 1)
		step := int64(1) << (oct - 1 - 2) // octave width / histSubBuckets
		for sub := 1; sub <= histSubBuckets; sub++ {
			b[i] = lo + int64(sub)*step
			i++
		}
	}
	return b
}()

// Hist is a fixed-size log-linear histogram of nanosecond durations with
// atomic buckets: Observe is lock-free and allocation-free, and snapshots
// are safe at any time. It measures per-burst enforcement latency on the
// shard goroutines.
type Hist struct {
	counts [histBuckets + 1]atomic.Uint64 // last = overflow
	sum    atomic.Int64
	total  atomic.Uint64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

// histIdx maps a non-negative nanosecond value to its bucket. Buckets are
// ranges (prevBound, bound] to match Prometheus's inclusive le semantics,
// so the bit-length test runs on v-1: an exact power of two is the upper
// edge of its octave, not the lower edge of the next.
func histIdx(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v) - 1
	l := bits.Len64(u)
	if l <= histMinBits {
		return 0
	}
	if l > histMaxBits {
		return histBuckets // overflow
	}
	sub := int(u>>(l-1-2)) & (histSubBuckets - 1)
	return 1 + (l-1-histMinBits)*histSubBuckets + sub
}

// Observe records one duration in nanoseconds (negatives clamp to zero).
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIdx(v)].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Merge adds other's counts into h (used to merge per-shard histograms at
// export time).
func (h *Hist) Merge(other *Hist) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	h.sum.Add(other.sum.Load())
	h.total.Add(other.total.Load())
}

// HistSnapshot is a point-in-time copy of a histogram in export form.
// Counts are per-bucket (not cumulative); Counts[len(Bounds)] is the
// overflow (+Inf) bucket. Bounds are inclusive upper bounds in seconds.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64 // seconds
	Count  uint64
}

// Snapshot copies the histogram. Concurrent Observe calls may or may not
// be included; the snapshot is internally consistent enough for export
// (bucket sums may trail Count by in-flight observations).
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: make([]float64, histBuckets),
		Counts: make([]uint64, histBuckets+1),
		Sum:    float64(h.sum.Load()) / 1e9,
		Count:  h.total.Load(),
	}
	for i := 0; i < histBuckets; i++ {
		s.Bounds[i] = float64(histBounds[i]) / 1e9
		s.Counts[i] = h.counts[i].Load()
	}
	s.Counts[histBuckets] = h.counts[histBuckets].Load()
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in seconds from bucket
// upper bounds; it returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	var cum uint64
	for i, n := range s.Counts {
		cum += n
		if cum > target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1] // overflow: report the last bound
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
