package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"bcpqp/internal/metrics"
)

// Options configures a Collector.
type Options struct {
	// RingDepth is each flight-recorder ring's capacity in events,
	// rounded up to a power of two (default 1024). Every shard gets its
	// own ring; control-plane and enforcer-internal events share one
	// auxiliary ring of the same depth, so bursts of datapath events
	// cannot evict rare control-plane history.
	RingDepth int
	// SampleEvery records one KindBurst trace event per N enforced runs
	// per shard (default 16; 1 traces every run), and coalesces KindShed
	// events at the same cadence under sustained overload (the first shed
	// always records). Other rare events (panics, quarantine, failover,
	// lifecycle) are never sampled. Sampling only thins the flight
	// recorder — metric counters and meters see every burst and every
	// shed packet.
	SampleEvery int
	// MeterWindow is the windowed-rate meter granularity (default the
	// paper's 250 ms measurement window).
	MeterWindow time.Duration
	// MeterHorizon is how many windows each rate meter retains before
	// rebasing (default 64), bounding meter memory over unbounded runs.
	MeterHorizon int
}

func (o Options) withDefaults() Options {
	if o.RingDepth <= 0 {
		o.RingDepth = 1024
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 16
	}
	if o.MeterWindow <= 0 {
		o.MeterWindow = metrics.DefaultWindow
	}
	if o.MeterHorizon <= 0 {
		o.MeterHorizon = 64
	}
	return o
}

// Collector is the observability hub one engine (or any other datapath)
// attaches to: it owns the per-shard flight-recorder rings, the auxiliary
// ring for unattributed and enforcer-internal events, the global event
// sequence, and the per-aggregate metric blocks. All methods are safe for
// concurrent use; the recording paths are lock-free and allocation-free.
type Collector struct {
	opts Options
	seq  atomic.Uint64
	aux  *Ring

	mu     sync.Mutex
	shards []*ShardObs
}

// NewCollector returns a collector with the given options.
func NewCollector(opts Options) *Collector {
	o := opts.withDefaults()
	return &Collector{opts: o, aux: NewRing(o.RingDepth)}
}

// Options returns the collector's normalized options.
func (c *Collector) Options() Options { return c.opts }

// EventsRecorded returns the total number of trace events ever recorded,
// including those already overwritten in the rings.
func (c *Collector) EventsRecorded() uint64 { return c.seq.Load() }

// stamp assigns the global sequence number and fills a missing wall
// timestamp.
func (c *Collector) stamp(e *Event) {
	e.Seq = c.seq.Add(1)
	if e.Wall == 0 {
		e.Wall = time.Now().UnixNano()
	}
}

// Record publishes an event to the auxiliary ring. Events with no shard
// attribution should set Shard = -1 and unattributed aggregates Agg = -1.
func (c *Collector) Record(e Event) {
	c.stamp(&e)
	c.aux.record(e)
}

// Shard returns (creating on first use) the observability block for shard
// index i.
func (c *Collector) Shard(i int) *ShardObs {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.shards) <= i {
		c.shards = append(c.shards, &ShardObs{
			c:     c,
			shard: int32(len(c.shards)),
			ring:  NewRing(c.opts.RingDepth),
			hist:  NewHist(),
			lat:   NewDigest(),
		})
	}
	return c.shards[i]
}

// Events snapshots every ring (per-shard plus auxiliary) without stopping
// writers and returns the merged events ordered by global sequence.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	shards := append([]*ShardObs(nil), c.shards...)
	c.mu.Unlock()
	out := make([]Event, 0, (len(shards)+1)*c.aux.Cap())
	out = c.aux.snapshot(out)
	for _, s := range shards {
		out = s.ring.snapshot(out)
	}
	sortEvents(out)
	return out
}

// BurstHist returns the per-shard burst-enforcement-latency histograms
// merged into one snapshot.
func (c *Collector) BurstHist() HistSnapshot {
	c.mu.Lock()
	shards := append([]*ShardObs(nil), c.shards...)
	c.mu.Unlock()
	merged := NewHist()
	for _, s := range shards {
		merged.Merge(s.hist)
	}
	return merged.Snapshot()
}

// BurstLatencyDigest returns the per-shard burst-enforcement-latency
// quantile digests (nanoseconds) merged into one mergeable snapshot — the
// sketch counterpart of BurstHist, suitable for cross-process roll-up via
// the BQAD wire form.
func (c *Collector) BurstLatencyDigest() DigestSnapshot {
	c.mu.Lock()
	shards := append([]*ShardObs(nil), c.shards...)
	c.mu.Unlock()
	merged := NewDigest()
	for _, s := range shards {
		merged.Merge(s.lat)
	}
	return merged.Snapshot()
}

// Bursts returns the total number of enforced bursts observed across all
// shards.
func (c *Collector) Bursts() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, s := range c.shards {
		n += s.bursts.Load()
	}
	return n
}

// NewAggObs returns a per-aggregate metrics block wired to the collector's
// meter configuration.
func (c *Collector) NewAggObs() *AggObs {
	return &AggObs{meter: NewRateMeter(c.opts.MeterWindow, c.opts.MeterHorizon)}
}

// ShardObs is one shard's observability block: its flight-recorder ring,
// its burst-latency histogram, and the trace sampling state. Record and
// ObserveBurst are called from the shard goroutine (or, for shed events,
// from producers under the shard's staging lock); the ring tolerates
// either.
type ShardObs struct {
	c     *Collector
	shard int32
	ring  *Ring
	hist  *Hist
	lat   *Digest

	bursts atomic.Int64
	// tick is the burst-trace sampling countdown. It is only touched by
	// SampleBurst on the owning shard goroutine, so it needs no atomics.
	tick int
}

// Record publishes an event to this shard's ring, stamping the shard
// index.
func (s *ShardObs) Record(e Event) {
	e.Shard = s.shard
	s.c.stamp(&e)
	s.ring.record(e)
}

// SampleBurst reports whether the current enforced run should emit a
// KindBurst trace event (1 in Options.SampleEvery). Call only from the
// owning shard goroutine.
func (s *ShardObs) SampleBurst() bool {
	s.tick--
	if s.tick <= 0 {
		s.tick = s.c.opts.SampleEvery
		return true
	}
	return false
}

// ObserveBurst records one processed burst's enforcement latency in
// nanoseconds.
func (s *ShardObs) ObserveBurst(elapsed int64) {
	s.bursts.Add(1)
	s.hist.Observe(elapsed)
	s.lat.Observe(elapsed)
}

// AggObs is one aggregate's metric block: monotonic accept/drop counters
// stamped once per enforced run (a handful of atomic adds, no per-packet
// work) and a windowed rate meter over accepted bytes.
type AggObs struct {
	acceptedPackets atomic.Int64
	acceptedBytes   atomic.Int64
	droppedPackets  atomic.Int64
	droppedBytes    atomic.Int64
	meter           *RateMeter
}

// Count folds one enforced run's verdict tallies into the block at virtual
// time now.
func (a *AggObs) Count(accPkts, accBytes, drpPkts, drpBytes int64, now time.Duration) {
	if accPkts != 0 {
		a.acceptedPackets.Add(accPkts)
		a.acceptedBytes.Add(accBytes)
	}
	if drpPkts != 0 {
		a.droppedPackets.Add(drpPkts)
		a.droppedBytes.Add(drpBytes)
	}
	if accBytes != 0 {
		a.meter.Add(now, int(accBytes))
	}
}

// AggCounters is a point-in-time copy of an aggregate's metric block.
type AggCounters struct {
	AcceptedPackets int64
	AcceptedBytes   int64
	DroppedPackets  int64
	DroppedBytes    int64
	// Rate is the throughput over the most recent measurement window.
	Rate float64 // bits per second
}

// Snapshot copies the block's counters.
func (a *AggObs) Snapshot() AggCounters {
	return AggCounters{
		AcceptedPackets: a.acceptedPackets.Load(),
		AcceptedBytes:   a.acceptedBytes.Load(),
		DroppedPackets:  a.droppedPackets.Load(),
		DroppedBytes:    a.droppedBytes.Load(),
		Rate:            float64(a.meter.Rate()),
	}
}
