package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"bcpqp/internal/metrics"
)

// Audit is one live Theorem-1 conformance auditor: it tracks cumulative
// accepted bytes against the piecewise admission envelope
//
//	accepted(t) ≤ base + r·(t − t_rebase) + B
//
// where base is the allowance accrued before the last rate change, r the
// currently enforced rate and B the declared burst allowance. Rate and
// policy changes Rebase the envelope — allowance accrued under the old
// rate is kept, new allowance accrues at the new rate — which is exactly
// the piecewise bound the engine's in-band reconfiguration lane preserves,
// so a conformant enforcer never trips the auditor no matter how often it
// is reconfigured.
//
// Concurrency contract: Observe and Rebase are single-writer — the mbox
// engine calls both on the aggregate's owning shard goroutine (rebases
// ride the in-band control lane), so the envelope arithmetic needs no
// synchronization. Every exported counter is mirrored into an atomic by
// that single writer, so metric scrapes read a consistent recent view
// from any goroutine without stopping the datapath. Both paths are
// allocation-free.
//
// The allowance accrual is exact integer arithmetic: bits/sec × ns
// products run through 128-bit mul/div with the sub-byte remainder carried
// between calls, so a shadow auditor fed the same (now, bytes) sequence
// reproduces the same violation count bit-for-bit — that is what lets
// chaos tests reconcile violations EXACTLY against injected ground truth.
type Audit struct {
	// Single-writer envelope state.
	rateBps int64         // currently enforced rate, bits/sec
	burst   int64         // burst allowance B, bytes
	lastAdv time.Duration // virtual time the allowance last accrued to
	frac    uint64        // sub-byte allowance remainder, in bit·ns (< envDen)
	allowed int64         // accrued allowance bytes since arming (excl. burst)
	accept  int64         // accepted bytes since arming

	minSlack   int64
	maxDeficit int64
	violations int64

	// Windowed rate error (|observed − r| per completed measurement
	// window, in permille of r).
	window   time.Duration
	winStart time.Duration
	winBytes int64
	windows  int64

	// Export mirrors, written only by the owning shard goroutine.
	m struct {
		rateBps, allowed, accept       atomic.Int64
		minSlack, maxDeficit           atomic.Int64
		violations, windows, lastAdvNs atomic.Int64
	}

	slackD *Digest // slack bytes at each audited run (clamped at 0)
	errD   *Digest // |rate error| per completed window, permille of r
}

// envDen converts bits/sec × ns products to bytes: 8 bits per byte times
// 1e9 ns per second.
const envDen = 8 * 1_000_000_000

// NewAudit returns an auditor armed at virtual time now with the given
// envelope. window is the rate-error measurement window (≤ 0 applies the
// paper's 250 ms).
func NewAudit(now time.Duration, rateBps, burstBytes int64, window time.Duration) *Audit {
	if window <= 0 {
		window = metrics.DefaultWindow
	}
	a := &Audit{
		rateBps:  rateBps,
		burst:    burstBytes,
		lastAdv:  now,
		minSlack: math.MaxInt64,
		window:   window,
		winStart: now,
		slackD:   NewDigest(),
		errD:     NewDigest(),
	}
	a.m.rateBps.Store(rateBps)
	a.m.minSlack.Store(math.MaxInt64)
	a.m.lastAdvNs.Store(int64(now))
	return a
}

// advance accrues allowance to now: allowed += r·Δt exactly, carrying the
// sub-byte remainder. Saturates at MaxInt64 (an unbounded envelope) rather
// than wrapping.
func (a *Audit) advance(now time.Duration) {
	dt := now - a.lastAdv
	if dt <= 0 {
		return
	}
	a.lastAdv = now
	if a.rateBps <= 0 || a.allowed == math.MaxInt64 {
		return
	}
	hi, lo := bits.Mul64(uint64(a.rateBps), uint64(dt))
	var carry uint64
	lo, carry = bits.Add64(lo, a.frac, 0)
	hi += carry
	if hi >= envDen {
		a.allowed = math.MaxInt64 // > 2^63 bytes of allowance: saturate
		a.frac = 0
		return
	}
	quo, rem := bits.Div64(hi, lo, envDen)
	if quo > uint64(math.MaxInt64-a.allowed) {
		a.allowed = math.MaxInt64
		a.frac = 0
		return
	}
	a.allowed += int64(quo)
	a.frac = rem
}

// Observe folds one enforced run's accepted bytes into the auditor at
// virtual time now and returns the envelope deficit: 0 when the run is
// conformant, accepted − (allowance + B) when it breaches. Each breaching
// run counts exactly one violation.
func (a *Audit) Observe(now time.Duration, accBytes int64) (deficit int64) {
	a.advance(now)
	a.accept += accBytes
	slack := a.allowed - a.accept
	if a.burst > 0 {
		// Saturating add: allowed may be pinned at MaxInt64.
		if s := slack + a.burst; s > slack {
			slack = s
		} else {
			slack = math.MaxInt64
		}
	}
	if slack < a.minSlack {
		a.minSlack = slack
		a.m.minSlack.Store(slack)
	}
	if slack < 0 {
		deficit = -slack
		a.violations++
		a.m.violations.Store(a.violations)
		if deficit > a.maxDeficit {
			a.maxDeficit = deficit
			a.m.maxDeficit.Store(deficit)
		}
		a.slackD.Observe(0)
	} else {
		a.slackD.Observe(slack)
	}

	// Rate-error windows: close the current window once now passes its
	// end (a run landing exactly on the boundary still belongs to the
	// closing window); idle gaps (several windows with no audited runs)
	// collapse into one close so the loop is O(1) per run.
	if now-a.winStart > a.window {
		if a.winBytes > 0 && a.rateBps > 0 {
			// winBytes·8e9 / windowNs = observed bits/sec over the window.
			obsBps, _ := mulDivI(a.winBytes, envDen, int64(a.window))
			errBps := obsBps - a.rateBps
			if errBps < 0 {
				errBps = -errBps
			}
			if pm, ok := mulDivI(errBps, 1000, a.rateBps); ok {
				a.errD.Observe(pm)
			}
			a.windows++
			a.m.windows.Store(a.windows)
		}
		skip := (now - a.winStart) / a.window
		a.winStart += skip * a.window
		a.winBytes = 0
	}
	a.winBytes += accBytes

	a.m.allowed.Store(a.allowed)
	a.m.accept.Store(a.accept)
	a.m.lastAdvNs.Store(int64(now))
	return deficit
}

// mulDivI computes a*b/c in 128-bit intermediate precision for
// non-negative operands; ok=false when the quotient overflows int64.
func mulDivI(a, b, c int64) (int64, bool) {
	if a < 0 || b < 0 || c <= 0 {
		return 0, false
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi >= uint64(c) {
		return 0, false
	}
	quo, _ := bits.Div64(hi, lo, uint64(c))
	if quo > math.MaxInt64 {
		return 0, false
	}
	return int64(quo), true
}

// Rebase pins the envelope to a new rate at virtual time now: allowance
// accrued so far is kept and future allowance accrues at the new rate —
// the piecewise Theorem-1 bound across a live reconfiguration. The burst
// allowance is unchanged.
func (a *Audit) Rebase(now time.Duration, rateBps int64) {
	a.advance(now)
	a.rateBps = rateBps
	a.m.rateBps.Store(rateBps)
	a.m.lastAdvNs.Store(int64(now))
}

// AuditCounters is a point-in-time copy of an auditor's exported state,
// as of the last audited run (the envelope is not extrapolated to the
// reader's clock — LastObserve says how fresh it is).
type AuditCounters struct {
	RateBps       int64
	BurstBytes    int64
	AllowedBytes  int64 // accrued r·Δt allowance since arming, excl. burst
	AcceptedBytes int64
	SlackBytes    int64 // allowance + B − accepted; negative = in breach
	MinSlackBytes int64 // worst (smallest) slack ever observed
	MaxDeficit    int64 // worst breach depth, bytes
	Violations    int64 // audited runs that breached the envelope
	Windows       int64 // completed rate-error windows with traffic
	LastObserve   time.Duration
}

// Snapshot copies the exported counters. Safe from any goroutine.
func (a *Audit) Snapshot() AuditCounters {
	allowed := a.m.allowed.Load()
	accepted := a.m.accept.Load()
	slack := allowed - accepted
	if b := a.burst; b > 0 {
		if s := slack + b; s > slack {
			slack = s
		} else {
			slack = math.MaxInt64
		}
	}
	minSlack := a.m.minSlack.Load()
	if minSlack == math.MaxInt64 {
		minSlack = slack // nothing audited yet: report the standing slack
	}
	return AuditCounters{
		RateBps:       a.m.rateBps.Load(),
		BurstBytes:    a.burst,
		AllowedBytes:  allowed,
		AcceptedBytes: accepted,
		SlackBytes:    slack,
		MinSlackBytes: minSlack,
		MaxDeficit:    a.m.maxDeficit.Load(),
		Violations:    a.m.violations.Load(),
		Windows:       a.m.windows.Load(),
		LastObserve:   time.Duration(a.m.lastAdvNs.Load()),
	}
}

// SlackDigest snapshots the distribution of per-run envelope slack
// (bytes, clamped at 0 for breaching runs).
func (a *Audit) SlackDigest() DigestSnapshot { return a.slackD.Snapshot() }

// RateErrDigest snapshots the distribution of per-window rate error
// (permille of the enforced rate).
func (a *Audit) RateErrDigest() DigestSnapshot { return a.errD.Snapshot() }

// MergeSlack / MergeRateErr fold this auditor's digests into acc for
// engine-wide roll-ups.
func (a *Audit) MergeSlack(acc *Digest)   { acc.Merge(a.slackD) }
func (a *Audit) MergeRateErr(acc *Digest) { acc.Merge(a.errD) }
