package obs

import (
	"bytes"
	"testing"
	"time"
)

// FuzzPromExposition asserts the Prometheus text writer emits well-formed
// output for arbitrary label names/values and sample values: every line
// parses, label values are correctly escaped, and no NaN/Inf ever leaks
// (empty meters and fuzzed non-finite floats are the interesting cases).
func FuzzPromExposition(f *testing.F) {
	f.Add("aggregate", "proxy", 12.5, int64(42))
	f.Add("agg regate", "with \"quotes\" and \\slashes\\", -1.0, int64(0))
	f.Add("", "line\nbreak\r\ttab", 0.0, int64(-5))
	f.Add("0digit", "ünïcödé \x00 bytes", 1e308, int64(1<<40))
	f.Fuzz(func(t *testing.T, lname, lval string, v float64, hv int64) {
		h := NewHist()
		if hv != 0 {
			h.Observe(hv)
		}
		hs := h.Snapshot()
		empty := NewRateMeter(0, 0) // never Added: Rate must be 0, not NaN
		m := NewRateMeter(time.Millisecond, 4)
		if hv > 0 {
			m.Add(time.Duration(hv%int64(time.Second)), int(v)%65536)
		}
		snap := Snapshot{Families: []Family{
			{Name: "bcpqp_fuzz_counter", Help: "fuzzed \\ counter\nhelp", Type: "counter",
				Samples: []Sample{{Labels: []Label{{lname, lval}}, Value: v}}},
			{Name: lname, Type: "gauge",
				Samples: []Sample{
					{Value: float64(empty.Rate())},
					{Value: float64(m.Rate())},
					{Labels: []Label{{"a", lval}, {"b", lval + `\`}}, Value: v * v},
				}},
			{Name: "bcpqp_fuzz_hist", Type: "histogram",
				Samples: []Sample{{Labels: []Label{{lname, lval}}, Hist: &hs}}},
		}}
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, snap); err != nil {
			t.Fatal(err)
		}
		checkPromText(t, buf.Bytes())
	})
}
