package netem

import (
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/sim"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

func pkt(size int) packet.Packet {
	return packet.Packet{Key: packet.FlowKey{SrcPort: 1}, Size: size}
}

func TestDelay(t *testing.T) {
	loop := sim.NewLoop()
	var arrived time.Duration
	hop := Delay(loop, 25*time.Millisecond, func(now time.Duration, p packet.Packet) {
		arrived = now
	})
	loop.At(10*time.Millisecond, func() { hop(loop.Now(), pkt(1500)) })
	loop.RunAll()
	if arrived != 35*time.Millisecond {
		t.Errorf("arrived at %v, want 35ms", arrived)
	}
}

func TestBottleneckSerializes(t *testing.T) {
	loop := sim.NewLoop()
	rate := 8 * units.Mbps // 1500 B per 1.5 ms
	var times []time.Duration
	bn := NewBottleneck(loop, rate, 100*1500, func(now time.Duration, p packet.Packet) {
		times = append(times, now)
	})
	loop.At(time.Millisecond, func() {
		for i := 0; i < 10; i++ {
			bn.Forward(loop.Now(), pkt(1500))
		}
	})
	loop.RunAll()
	if len(times) != 10 {
		t.Fatalf("forwarded %d, want 10", len(times))
	}
	for i := 1; i < len(times); i++ {
		if gap := times[i] - times[i-1]; gap != 1500*time.Microsecond {
			t.Errorf("gap %d = %v, want 1.5ms", i, gap)
		}
	}
	if bn.Forwarded != 10 || bn.Dropped != 0 {
		t.Errorf("counters: fwd=%d drop=%d", bn.Forwarded, bn.Dropped)
	}
}

func TestBottleneckDropTail(t *testing.T) {
	loop := sim.NewLoop()
	bn := NewBottleneck(loop, units.Mbps, 3*1500, func(time.Duration, packet.Packet) {})
	loop.At(time.Millisecond, func() {
		for i := 0; i < 10; i++ {
			bn.Forward(loop.Now(), pkt(1500))
		}
	})
	loop.RunAll()
	if bn.Forwarded != 3 || bn.Dropped != 7 {
		t.Errorf("fwd=%d drop=%d, want 3/7", bn.Forwarded, bn.Dropped)
	}
}

func TestBottleneckIdleRestart(t *testing.T) {
	loop := sim.NewLoop()
	rate := 8 * units.Mbps
	var times []time.Duration
	bn := NewBottleneck(loop, rate, 100*1500, func(now time.Duration, p packet.Packet) {
		times = append(times, now)
	})
	loop.At(time.Millisecond, func() { bn.Forward(loop.Now(), pkt(1500)) })
	loop.At(100*time.Millisecond, func() { bn.Forward(loop.Now(), pkt(1500)) })
	loop.RunAll()
	if times[1] != 100*time.Millisecond+1500*time.Microsecond {
		t.Errorf("post-idle departure at %v; busyUntil leaked across idle", times[1])
	}
}

func TestBottleneckQueueTracksBytes(t *testing.T) {
	loop := sim.NewLoop()
	bn := NewBottleneck(loop, units.Mbps, 100*1500, func(time.Duration, packet.Packet) {})
	loop.At(time.Millisecond, func() {
		for i := 0; i < 5; i++ {
			bn.Forward(loop.Now(), pkt(1500))
		}
		if bn.QueuedBytes() != 5*1500 {
			t.Errorf("queued = %d, want %d", bn.QueuedBytes(), 5*1500)
		}
	})
	loop.RunAll()
	if bn.QueuedBytes() != 0 {
		t.Errorf("queued = %d after drain, want 0", bn.QueuedBytes())
	}
}

func TestEnforceHop(t *testing.T) {
	pol := tbf.MustNew(8*units.Mbps, 2*1500)
	forwarded := 0
	hop := Enforce(pol, func(time.Duration, packet.Packet) { forwarded++ })
	now := time.Millisecond
	for i := 0; i < 5; i++ {
		hop(now, pkt(1500))
	}
	if forwarded != 2 {
		t.Errorf("forwarded %d, want 2 (bucket of 2)", forwarded)
	}
	if pol.EnforcerStats().DroppedPackets != 3 {
		t.Errorf("dropped %d, want 3", pol.EnforcerStats().DroppedPackets)
	}
}

func TestEnforceQueuedSubmitsOnly(t *testing.T) {
	calls := 0
	fake := enforcerFunc(func(now time.Duration, p packet.Packet) enforcer.Verdict {
		calls++
		return enforcer.Queued
	})
	hop := EnforceQueued(fake)
	hop(time.Millisecond, pkt(1500))
	if calls != 1 {
		t.Errorf("submit calls = %d", calls)
	}
}

type enforcerFunc func(time.Duration, packet.Packet) enforcer.Verdict

func (f enforcerFunc) Submit(now time.Duration, p packet.Packet) enforcer.Verdict {
	return f(now, p)
}
