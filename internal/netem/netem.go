// Package netem provides the composable path elements experiments wire
// between a TCP sender and receiver: fixed propagation delay, FIFO
// bottleneck links (the "secondary bottleneck" of Fig 3), and adapters that
// place a rate enforcer on the path. It plays the role Linux netem and the
// middlebox topology play in the paper's testbed.
package netem

import (
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/sim"
	"bcpqp/internal/units"
)

// Forward passes a packet to the next hop at virtual time now.
type Forward func(now time.Duration, pkt packet.Packet)

// Delay returns a hop that applies a fixed propagation delay before
// forwarding.
func Delay(loop *sim.Loop, d time.Duration, next Forward) Forward {
	return func(now time.Duration, pkt packet.Packet) {
		loop.At(now+d, func() { next(now+d, pkt) })
	}
}

// Bottleneck is a store-and-forward FIFO link with a finite drop-tail
// buffer. It models the downstream hop "whose link capacity, while greater
// than r, is lower than the burst rate" (§3.3, Fig 3).
type Bottleneck struct {
	loop *sim.Loop
	rate units.Rate
	buf  int64
	next Forward

	queued    int64 // bytes queued or in transmission
	busyUntil time.Duration

	Dropped   int64
	Forwarded int64
}

// NewBottleneck returns a FIFO link of the given rate with bufBytes of
// buffering feeding next.
func NewBottleneck(loop *sim.Loop, rate units.Rate, bufBytes int64, next Forward) *Bottleneck {
	return &Bottleneck{loop: loop, rate: rate, buf: bufBytes, next: next}
}

// Forward implements the hop; use b.Forward as a netem.Forward.
func (b *Bottleneck) Forward(now time.Duration, pkt packet.Packet) {
	size := int64(pkt.Size)
	if b.queued+size > b.buf {
		b.Dropped++
		return
	}
	b.queued += size
	start := b.busyUntil
	if start < now {
		start = now
	}
	depart := start + b.rate.DurationForBytes(size)
	b.busyUntil = depart
	b.loop.At(depart, func() {
		b.queued -= size
		b.Forwarded++
		b.next(depart, pkt)
	})
}

// QueuedBytes returns the bytes currently held by the link.
func (b *Bottleneck) QueuedBytes() int64 { return b.queued }

// Enforce places a bufferless enforcer on the path: Transmit forwards
// immediately, TransmitCE forwards with the ECN congestion-experienced
// mark applied, Drop discards. Buffering enforcers (the shaper) must
// instead be constructed with their sink pointing at the next hop and
// wired with EnforceQueued.
func Enforce(e enforcer.Enforcer, next Forward) Forward {
	return func(now time.Duration, pkt packet.Packet) {
		switch e.Submit(now, pkt) {
		case enforcer.Transmit:
			next(now, pkt)
		case enforcer.TransmitCE:
			pkt.CE = true
			next(now, pkt)
		}
	}
}

// EnforceQueued submits packets to a buffering enforcer whose sink already
// forwards to the next hop; only the submission side is wired here.
func EnforceQueued(e enforcer.Enforcer) Forward {
	return func(now time.Duration, pkt packet.Packet) {
		e.Submit(now, pkt)
	}
}
