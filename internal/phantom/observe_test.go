package phantom

import (
	"testing"
	"time"

	"bcpqp/internal/packet"
	"bcpqp/internal/units"
)

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventAccept:       "accept",
		EventDrop:         "drop",
		EventMark:         "mark",
		EventMagicFill:    "magic-fill",
		EventMagicReclaim: "magic-reclaim",
		EventKind(99):     "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestObserverSeesLifecycle(t *testing.T) {
	rec := NewRecorder(4096)
	q := MustNew(Config{
		Rate: 8 * units.Mbps, Queues: 1, QueueSize: 400 * units.MSS,
		BurstControl: true, Window: 50 * time.Millisecond,
		OnEvent: rec.Record,
	})
	now := time.Millisecond
	// Burst far beyond θ⁺X: accepts, then a magic fill, then drops.
	for i := 0; i < 300; i++ {
		q.Submit(now, pkt(0, units.MSS))
	}
	// Idle windows trigger the reclaim.
	now += 100 * time.Millisecond
	q.Tick(now)
	now += 100 * time.Millisecond
	q.Tick(now)

	counts := map[EventKind]int64{}
	for _, e := range rec.Events() {
		counts[e.Kind]++
		if e.QueueLen < 0 || e.QueueLen > 400*units.MSS {
			t.Fatalf("event reports impossible occupancy %d", e.QueueLen)
		}
	}
	if counts[EventAccept] == 0 || counts[EventDrop] == 0 {
		t.Errorf("missing accept/drop events: %v", counts)
	}
	if counts[EventMagicFill] != 1 {
		t.Errorf("magic fills = %d, want 1", counts[EventMagicFill])
	}
	if counts[EventMagicReclaim] != 1 {
		t.Errorf("magic reclaims = %d, want 1", counts[EventMagicReclaim])
	}
	// Accounting cross-check: events match enforcer statistics.
	st := q.EnforcerStats()
	if counts[EventAccept] != st.AcceptedPackets || counts[EventDrop] != st.DroppedPackets {
		t.Errorf("events %v vs stats %+v", counts, st)
	}
}

func TestObserverSeesMarks(t *testing.T) {
	rec := NewRecorder(1024)
	const B = 100 * units.MSS
	q := MustNew(Config{
		Rate: 8 * units.Mbps, Queues: 1, QueueSize: B,
		RED: &REDConfig{
			MinBytes: B / 10, MaxBytes: B, MaxProb: 0.5,
			Weight: 0.2, Seed: 1, MarkECN: true,
		},
		OnEvent: rec.Record,
	})
	now := time.Duration(0)
	for i := 0; i < 500; i++ {
		now += 500 * time.Microsecond // 3× overload
		p := pkt(0, units.MSS)
		p.ECT = true
		q.Submit(now, p)
	}
	var marks int
	for _, e := range rec.Events() {
		if e.Kind == EventMark {
			marks++
		}
	}
	if marks == 0 {
		t.Error("no mark events recorded despite aggressive marking RED")
	}
}

func TestRecorderRing(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 5; i++ {
		rec.Record(Event{Class: i})
	}
	events := rec.Events()
	if len(events) != 3 {
		t.Fatalf("ring holds %d, want 3", len(events))
	}
	// Oldest-first: classes 2, 3, 4 remain.
	for i, e := range events {
		if e.Class != i+2 {
			t.Fatalf("ring order wrong: %v", events)
		}
	}
	if rec.Total() != 5 {
		t.Errorf("total = %d, want 5", rec.Total())
	}
}

func TestRecorderPartialFill(t *testing.T) {
	rec := NewRecorder(10)
	rec.Record(Event{Class: 0})
	rec.Record(Event{Class: 1})
	events := rec.Events()
	if len(events) != 2 || events[0].Class != 0 || events[1].Class != 1 {
		t.Errorf("partial ring events = %v", events)
	}
}

func TestNilObserverCostsNothing(t *testing.T) {
	// Smoke: no handler attached, the hot path must still work.
	q := MustNew(Config{Rate: units.Mbps, Queues: 1, QueueSize: 10 * units.MSS})
	now := time.Millisecond
	for i := 0; i < 100; i++ {
		q.Submit(now, packet.Packet{Key: packet.FlowKey{SrcPort: 1}, Size: units.MSS, Class: 0})
	}
}
