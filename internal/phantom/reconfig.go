package phantom

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// SetRate implements enforcer.Reconfigurer: it changes the enforced
// aggregate rate in place, preserving phantom-queue occupancy (real and
// magic bytes), burst-control windows, and statistics.
//
// Order matters for the Theorem 1 piecewise bound: all lazy time-driven
// state is settled at the OLD rate first — the batched phantom drain
// consumes the budget accrued since lastDrain at the rate that was in force
// while that time elapsed, and any expired burst-control windows are rolled
// against the old r_i*. Only then does the new rate take effect, so
// accepted bytes over an interval spanning the change stay within
// r_old·Δt_old + r_new·Δt_new + B. Resetting the queues instead (the
// teardown-and-re-add alternative) would re-admit up to B bytes instantly.
func (p *PQP) SetRate(now time.Duration, rate units.Rate) error {
	if rate <= 0 {
		return fmt.Errorf("phantom: non-positive rate %v", rate)
	}
	p.Tick(now) // settle drains and windows at the old rate
	p.cfg.Rate = rate
	p.sharesValid = false // r_i* shares scale with the aggregate rate
	return nil
}

// SetPolicy implements enforcer.Reconfigurer: it swaps the intra-aggregate
// rate-sharing policy in place. The new policy must cover exactly the
// configured number of queues; nil selects per-flow fairness. Queue
// occupancy is untouched — bytes already admitted under the old policy
// drain under the new one, exactly as a shaper's queued packets would be
// served by a reconfigured scheduler. The enforcer takes ownership of the
// policy object (policies carry scratch state and are not concurrency-safe).
func (p *PQP) SetPolicy(now time.Duration, policy *sched.Policy) error {
	if policy == nil {
		policy = sched.Fair(p.cfg.Queues)
	}
	if policy.NumClasses() != p.cfg.Queues {
		return fmt.Errorf("phantom: policy covers %d classes but enforcer has %d queues",
			policy.NumClasses(), p.cfg.Queues)
	}
	p.Tick(now) // settle drains and windows under the old policy
	p.cfg.Policy = policy
	p.flatWeights = policy.FlatWeighted()
	p.sharesValid = false
	return nil
}

var _ enforcer.Reconfigurer = (*PQP)(nil)
