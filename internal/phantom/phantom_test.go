package phantom

import (
	"testing"
	"testing/quick"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

func pkt(class, size int) packet.Packet {
	return packet.Packet{Key: packet.FlowKey{SrcPort: uint16(class + 1)}, Class: class, Size: size}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero rate", Config{Queues: 1, QueueSize: 10 * units.MSS}, false},
		{"no queues", Config{Rate: units.Mbps, QueueSize: 10 * units.MSS}, false},
		{"tiny queue", Config{Rate: units.Mbps, Queues: 1, QueueSize: 10}, false},
		{"ok", Config{Rate: units.Mbps, Queues: 2, QueueSize: 10 * units.MSS}, true},
		{"bad thetas", Config{Rate: units.Mbps, Queues: 1, QueueSize: 10 * units.MSS,
			BurstControl: true, ThetaHi: 0.4, ThetaLo: 0.5}, false},
		{"policy mismatch", Config{Rate: units.Mbps, Queues: 1, QueueSize: 10 * units.MSS,
			Policy: sched.Fair(4)}, false},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestSingleQueueMatchesTokenBucket verifies §3.1: a single phantom queue of
// size B served at rate r admits exactly the packets a token bucket of size
// B and rate r admits (inverted occupancy).
func TestSingleQueueMatchesTokenBucket(t *testing.T) {
	const B = 20 * units.MSS
	rate := 8 * units.Mbps // 1 MB/s

	// DrainBatch 1 byte = eager dequeues, the exact §3.1 equivalence.
	q := MustNew(Config{Rate: rate, Queues: 1, QueueSize: B, DrainBatch: 1})

	// Token-bucket reference, starting full.
	tokens := float64(B)
	last := time.Duration(0)

	now := time.Duration(0)
	accepted, refAccepted := 0, 0
	for i := 0; i < 2000; i++ {
		// Bursty arrivals: clusters of 5 packets every 4 ms.
		if i%5 == 0 {
			now += 4 * time.Millisecond
		}
		p := pkt(0, units.MSS)

		tokens += rate.Bytes(now - last)
		last = now
		if tokens > float64(B) {
			tokens = float64(B)
		}
		if tokens >= float64(p.Size) {
			tokens -= float64(p.Size)
			refAccepted++
		}

		if q.Submit(now, p) == enforcer.Transmit {
			accepted++
		}
	}
	if accepted != refAccepted {
		t.Errorf("phantom queue accepted %d, token bucket %d", accepted, refAccepted)
	}
}

// TestBatchedDrainStaysNearEagerDrain verifies that the default batched
// dequeues (the §3.1 efficiency trick) admit the same traffic as eager
// dequeues to within the batch size.
func TestBatchedDrainStaysNearEagerDrain(t *testing.T) {
	const B = 40 * units.MSS
	rate := 8 * units.Mbps
	eager := MustNew(Config{Rate: rate, Queues: 1, QueueSize: B, DrainBatch: 1})
	batched := MustNew(Config{Rate: rate, Queues: 1, QueueSize: B}) // default batch

	now := time.Duration(0)
	var accEager, accBatched int64
	for i := 0; i < 20000; i++ {
		now += 900 * time.Microsecond // ~1.7 MB/s offered vs 1 MB/s drained
		p := pkt(0, units.MSS)
		if eager.Submit(now, p) == enforcer.Transmit {
			accEager++
		}
		if batched.Submit(now, p) == enforcer.Transmit {
			accBatched++
		}
	}
	diff := accEager - accBatched
	if diff < 0 {
		diff = -diff
	}
	// Long-run totals must agree to within a handful of batch quanta.
	if diff > 40 {
		t.Errorf("eager admitted %d, batched %d (diff %d > 40 packets)",
			accEager, accBatched, diff)
	}
}

// TestTheorem1Bounds checks Theorem 1: over any interval where the queue
// stays non-empty, accepted bytes are within (rΔt ± B).
func TestTheorem1Bounds(t *testing.T) {
	const B = 30 * units.MSS
	rate := 8 * units.Mbps
	q := MustNew(Config{Rate: rate, Queues: 1, QueueSize: B})

	now := time.Duration(0)
	var acceptedBytes int64
	start := now
	emptied := false
	// Offer heavily (2× rate) so the queue stays occupied.
	for i := 0; i < 10000; i++ {
		now += 750 * time.Microsecond // 2 MB/s offered
		if q.Submit(now, pkt(0, units.MSS)) == enforcer.Transmit {
			acceptedBytes += units.MSS
		}
		if q.QueueLength(0) == 0 && i > 0 {
			emptied = true
		}
	}
	if emptied {
		t.Fatal("queue emptied; bound precondition violated (offered load too low)")
	}
	dt := now - start
	lo := rate.Bytes(dt) - float64(B)
	hi := rate.Bytes(dt) + float64(B)
	if float64(acceptedBytes) < lo || float64(acceptedBytes) > hi {
		t.Errorf("accepted %d bytes over %v; Theorem 1 bounds [%v, %v]", acceptedBytes, dt, lo, hi)
	}
}

// TestDropWhenFull verifies drop-tail admission on the simulated buffer.
func TestDropWhenFull(t *testing.T) {
	q := MustNew(Config{Rate: units.Mbps, Queues: 1, QueueSize: 3 * units.MSS})
	now := time.Millisecond
	for i := 0; i < 3; i++ {
		if v := q.Submit(now, pkt(0, units.MSS)); v != enforcer.Transmit {
			t.Fatalf("packet %d: %v, want transmit", i, v)
		}
	}
	if v := q.Submit(now, pkt(0, units.MSS)); v != enforcer.Drop {
		t.Fatalf("4th packet: %v, want drop", v)
	}
	st := q.EnforcerStats()
	if st.AcceptedPackets != 3 || st.DroppedPackets != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestBatchedDrainFreesSpace verifies lazy dequeues: after enough virtual
// time, previously full queues accept again.
func TestBatchedDrainFreesSpace(t *testing.T) {
	rate := 8 * units.Mbps // 1 MB/s = 1500 B / 1.5 ms
	q := MustNew(Config{Rate: rate, Queues: 1, QueueSize: 2 * units.MSS})
	now := time.Millisecond
	q.Submit(now, pkt(0, units.MSS))
	q.Submit(now, pkt(0, units.MSS))
	if v := q.Submit(now, pkt(0, units.MSS)); v != enforcer.Drop {
		t.Fatal("queue should be full")
	}
	// After 1.5 ms one MSS drains.
	now += 1500 * time.Microsecond
	if v := q.Submit(now, pkt(0, units.MSS)); v != enforcer.Transmit {
		t.Fatal("drain did not free space")
	}
}

// TestFairDrain verifies that with two occupied queues the drain is split
// equally (per-flow fairness on phantom packets).
func TestFairDrain(t *testing.T) {
	rate := 8 * units.Mbps
	q := MustNew(Config{Rate: rate, Queues: 2, QueueSize: 100 * units.MSS})
	now := time.Millisecond
	for i := 0; i < 50; i++ {
		q.Submit(now, pkt(0, units.MSS))
		q.Submit(now, pkt(1, units.MSS))
	}
	l0, l1 := q.QueueLength(0), q.QueueLength(1)
	now += 30 * time.Millisecond // 30 KB of drain, 15 KB each
	q.Tick(now)
	d0, d1 := l0-q.QueueLength(0), l1-q.QueueLength(1)
	if d0 != d1 {
		t.Errorf("unequal drains: %d vs %d", d0, d1)
	}
	if d0+d1 != 30000 {
		t.Errorf("total drained %d, want 30000", d0+d1)
	}
}

// TestWeightedDrain verifies weighted sharing of the drain budget.
func TestWeightedDrain(t *testing.T) {
	rate := 8 * units.Mbps
	q := MustNew(Config{
		Rate: rate, Queues: 2, QueueSize: 1000 * units.MSS,
		Policy: sched.WeightedFair(3, 1),
	})
	now := time.Millisecond
	for i := 0; i < 400; i++ {
		q.Submit(now, pkt(0, units.MSS))
		q.Submit(now, pkt(1, units.MSS))
	}
	l0, l1 := q.QueueLength(0), q.QueueLength(1)
	now += 100 * time.Millisecond // 100 KB drain: 75/25 split
	q.Tick(now)
	d0, d1 := l0-q.QueueLength(0), l1-q.QueueLength(1)
	if d0+d1 != 100000 {
		t.Fatalf("total drained %d, want 100000", d0+d1)
	}
	ratio := float64(d0) / float64(d1)
	if ratio < 2.9 || ratio > 3.1 {
		t.Errorf("drain ratio %.2f, want 3.0", ratio)
	}
}

// TestPriorityDrain verifies that a high-priority queue drains first.
func TestPriorityDrain(t *testing.T) {
	rate := 8 * units.Mbps
	q := MustNew(Config{
		Rate: rate, Queues: 2, QueueSize: 100 * units.MSS,
		Policy: sched.StrictPriority(2),
	})
	now := time.Millisecond
	for i := 0; i < 10; i++ {
		q.Submit(now, pkt(0, units.MSS))
		q.Submit(now, pkt(1, units.MSS))
	}
	// 22.5 ms at 1 MB/s = 22500 B: the high-priority backlog (15000 B)
	// drains completely first, then 7500 B of the low-priority queue.
	now += 22500 * time.Microsecond
	q.Tick(now)
	if q.QueueLength(0) != 0 {
		t.Errorf("high-priority queue not drained first: %d left", q.QueueLength(0))
	}
	if q.QueueLength(1) != 7500 {
		t.Errorf("low-priority queue = %d, want 7500", q.QueueLength(1))
	}
}

// TestMagicFillOnBurst verifies the §4 high-threshold rule: accepting more
// than θ⁺·r_i*·T within a window fills the queue with magic bytes.
func TestMagicFillOnBurst(t *testing.T) {
	rate := 8 * units.Mbps // 1 MB/s
	q := MustNew(Config{
		Rate: rate, Queues: 1, QueueSize: 1000 * units.MSS,
		BurstControl: true, Window: 100 * time.Millisecond,
	})
	// X = 100 KB per window; θ⁺X = 150 KB = 100 packets.
	now := time.Millisecond
	var filled bool
	for i := 0; i < 150; i++ {
		q.Submit(now, pkt(0, units.MSS))
		if q.MagicBytes(0) > 0 {
			filled = true
			break
		}
	}
	if !filled {
		t.Fatal("burst did not trigger magic fill")
	}
	if q.QueueLength(0) != 1000*units.MSS {
		t.Errorf("queue not filled to capacity: %d", q.QueueLength(0))
	}
	// Subsequent packets drop until drain frees space.
	if v := q.Submit(now, pkt(0, units.MSS)); v != enforcer.Drop {
		t.Error("packet after magic fill not dropped")
	}
}

// TestNoMagicFillAtModestRate verifies flows under θ⁺·r_i* are unaffected.
func TestNoMagicFillAtModestRate(t *testing.T) {
	rate := 8 * units.Mbps
	q := MustNew(Config{
		Rate: rate, Queues: 1, QueueSize: 1000 * units.MSS,
		BurstControl: true, Window: 100 * time.Millisecond,
	})
	// Offer exactly r: 1 MSS per 1.5 ms.
	now := time.Duration(0)
	for i := 0; i < 500; i++ {
		now += 1500 * time.Microsecond
		q.Submit(now, pkt(0, units.MSS))
		if q.MagicBytes(0) > 0 {
			t.Fatalf("magic fill at offered rate = r (packet %d)", i)
		}
	}
}

// TestMagicReclaimOnIdle verifies the §4 low-threshold rule: when a queue's
// accept rate falls below θ⁻·r_i*·T, remaining magic bytes are reclaimed so
// the rate share frees immediately.
func TestMagicReclaimOnIdle(t *testing.T) {
	rate := 8 * units.Mbps
	q := MustNew(Config{
		Rate: rate, Queues: 1, QueueSize: 1000 * units.MSS,
		BurstControl: true, Window: 100 * time.Millisecond,
	})
	now := time.Millisecond
	for i := 0; i < 150; i++ {
		q.Submit(now, pkt(0, units.MSS))
	}
	if q.MagicBytes(0) == 0 {
		t.Fatal("no magic to reclaim")
	}
	// Flow goes quiet. The first rollover closes the window that still
	// contains the burst's accepted bytes; the second observes an idle
	// window and reclaims.
	now += 150 * time.Millisecond
	q.Tick(now)
	now += 150 * time.Millisecond
	q.Tick(now)
	if q.MagicBytes(0) != 0 {
		t.Errorf("magic not reclaimed on idle: %d bytes", q.MagicBytes(0))
	}
}

// TestMagicDoesNotCorruptRealBytes: reclaiming magic must preserve the real
// phantom backlog exactly.
func TestMagicDoesNotCorruptRealBytes(t *testing.T) {
	rate := 8 * units.Mbps
	q := MustNew(Config{
		Rate: rate, Queues: 1, QueueSize: 500 * units.MSS,
		BurstControl: true, Window: 50 * time.Millisecond,
	})
	now := time.Millisecond
	var accepted int64
	for i := 0; i < 200; i++ {
		if q.Submit(now, pkt(0, units.MSS)) == enforcer.Transmit {
			accepted += units.MSS
		}
	}
	magic := q.MagicBytes(0)
	real := q.QueueLength(0) - magic
	if real != accepted {
		t.Fatalf("real bytes %d != accepted %d", real, accepted)
	}
	now += 200 * time.Millisecond
	q.Tick(now)
	// All drains + reclaims must keep length ≥ 0 and magic ≤ length.
	if q.QueueLength(0) < 0 || q.MagicBytes(0) > q.QueueLength(0) {
		t.Errorf("invariant violated: len=%d magic=%d", q.QueueLength(0), q.MagicBytes(0))
	}
}

// TestBurstControlAutotunesShare: with two active queues, the fill threshold
// uses r/2, not r (r_i* estimation from the active set).
func TestBurstControlAutotunesShare(t *testing.T) {
	rate := 8 * units.Mbps
	q := MustNew(Config{
		Rate: rate, Queues: 2, QueueSize: 1000 * units.MSS,
		BurstControl: true, Window: 100 * time.Millisecond,
	})
	now := time.Millisecond
	// Make queue 1 active with a small backlog.
	for i := 0; i < 20; i++ {
		q.Submit(now, pkt(1, units.MSS))
	}
	// Queue 0 bursting: with queue 1 active, r_0* = r/2 so θ⁺X = 75 KB
	// = 50 packets; sending 60 packets must trigger the fill, while with
	// r_0* = r it would not (threshold would be 100).
	for i := 0; i < 60; i++ {
		q.Submit(now, pkt(0, units.MSS))
	}
	if q.MagicBytes(0) == 0 {
		t.Error("burst control did not adapt threshold to the active set")
	}
}

// TestClassStats verifies per-queue accounting.
func TestClassStats(t *testing.T) {
	q := MustNew(Config{Rate: units.Mbps, Queues: 2, QueueSize: 2 * units.MSS})
	now := time.Millisecond
	q.Submit(now, pkt(0, units.MSS))
	q.Submit(now, pkt(0, units.MSS))
	q.Submit(now, pkt(0, units.MSS)) // dropped
	q.Submit(now, pkt(1, units.MSS))
	ap, ab, dp, db := q.ClassStats(0)
	if ap != 2 || ab != 2*units.MSS || dp != 1 || db != units.MSS {
		t.Errorf("class 0 stats = %d/%d/%d/%d", ap, ab, dp, db)
	}
	ap, _, dp, _ = q.ClassStats(1)
	if ap != 1 || dp != 0 {
		t.Errorf("class 1 stats = %d accepted, %d dropped", ap, dp)
	}
}

// TestHashClassification: packets without explicit class hash by flow key.
func TestHashClassification(t *testing.T) {
	q := MustNew(Config{Rate: units.Mbps, Queues: 8, QueueSize: 100 * units.MSS})
	now := time.Millisecond
	key := packet.FlowKey{SrcIP: 9, DstIP: 8, SrcPort: 7, DstPort: 6, Proto: 6}
	q.Submit(now, packet.Packet{Key: key, Size: units.MSS, Class: packet.NoClass})
	want := key.Class(8)
	if q.QueueLength(want) != units.MSS {
		t.Errorf("packet not in hashed class %d", want)
	}
}

// TestSegmentInvariants is a property test over random submit/tick
// sequences: queue length equals the sum of segments, magic ≤ length,
// nothing goes negative, and length never exceeds B.
func TestSegmentInvariants(t *testing.T) {
	f := func(ops []uint16, burstControl bool) bool {
		q := MustNew(Config{
			Rate: 8 * units.Mbps, Queues: 4, QueueSize: 50 * units.MSS,
			BurstControl: burstControl, Window: 20 * time.Millisecond,
		})
		now := time.Duration(0)
		for _, op := range ops {
			now += time.Duration(op%5000) * time.Microsecond
			class := int(op % 4)
			size := 100 + int(op%3)*700
			q.Submit(now, pkt(class, size))
			for c := 0; c < 4; c++ {
				l, m := q.QueueLength(c), q.MagicBytes(c)
				if l < 0 || m < 0 || m > l || l > 50*units.MSS {
					return false
				}
			}
			if op%7 == 0 {
				now += time.Duration(op%100) * time.Millisecond
				q.Tick(now)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAcceptedNeverExceedsDrainPlusB is the Theorem 1 upper bound as a
// property over random arrival patterns.
func TestAcceptedNeverExceedsDrainPlusB(t *testing.T) {
	f := func(gaps []uint16) bool {
		const B = 25 * units.MSS
		rate := 4 * units.Mbps
		q := MustNew(Config{Rate: rate, Queues: 1, QueueSize: B})
		now := time.Duration(0)
		var accepted int64
		for _, g := range gaps {
			now += time.Duration(g%3000) * time.Microsecond
			if q.Submit(now, pkt(0, units.MSS)) == enforcer.Transmit {
				accepted += units.MSS
			}
		}
		return float64(accepted) <= rate.Bytes(now)+float64(B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAccessors(t *testing.T) {
	q := MustNew(Config{Rate: 3 * units.Mbps, Queues: 5, QueueSize: 10 * units.MSS})
	if q.NumQueues() != 5 {
		t.Errorf("NumQueues = %d", q.NumQueues())
	}
	if q.Rate() != 3*units.Mbps {
		t.Errorf("Rate = %v", q.Rate())
	}
}
