package phantom

import (
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
)

// SubmitBatch implements enforcer.BatchSubmitter: it submits a burst of
// packets all arriving at virtual time now and writes one verdict per
// packet into verdicts, producing byte-identical verdicts, statistics and
// queue state to calling Submit for each packet in order at the same now.
//
// The burst amortizations, each proved equivalent to the per-packet path:
//
//   - One drain-credit probe per burst. At a fixed now the batched lazy
//     drain (advance) can fire at most once: after it runs, lastDrain ==
//     now and the fractional carried credit is below one byte (always
//     under DrainBatch ≥ MSS); if it did not fire, the credit cannot grow
//     without time passing. Either way every later per-packet re-check is
//     a guaranteed no-op, so the batch path evaluates the credit condition
//     only the first time a packet finds its queue (apparently) full.
//
//   - One burst-control window roll per class per burst. rollWindow at a
//     fixed now is idempotent: the first call either no-ops or re-opens
//     the window with windowStart = now, and now < now + T makes every
//     repeat a no-op. Classes are stamped with a per-burst epoch so each
//     rolls once.
//
//   - One started/lastDrain initialization per burst.
//
// The per-packet decision logic (RED, filter, drop-tail admission,
// accept/window accounting) is unchanged — it is identical statement-for-
// statement with Submit, which the cross-scheme equivalence tests enforce.
func (p *PQP) SubmitBatch(now time.Duration, pkts []packet.Packet, verdicts []enforcer.Verdict) {
	verdicts = verdicts[:len(pkts)]
	if len(pkts) == 0 {
		return
	}
	if !p.started {
		p.started = true
		p.lastDrain = now
	}
	if p.cfg.BurstControl {
		p.windowEpoch++
	}
	drainProbed := false
	for i := range pkts {
		pkt := &pkts[i]
		class := pkt.ClassIn(p.cfg.Queues)
		q := &p.queues[class]
		size := int64(pkt.Size)

		if p.cfg.Filter != nil && !p.cfg.Filter(*pkt) {
			q.droppedPackets++
			q.droppedBytes += size
			p.stats.Reject(pkt.Size)
			p.emitDrop(now, class, size, q.length, DropFilter)
			verdicts[i] = enforcer.Drop
			continue
		}

		if p.cfg.BurstControl && p.windowStamp[class] != p.windowEpoch {
			p.windowStamp[class] = p.windowEpoch
			p.rollWindow(now, class)
		}

		if q.length+size > p.cfg.QueueSize || p.red != nil {
			if !drainProbed {
				drainProbed = true
				if p.drainCredit+p.cfg.Rate.Bytes(now-p.lastDrain) >= float64(p.cfg.DrainBatch) {
					p.advance(now)
				}
			}
		}
		markCE := false
		if p.red != nil && p.red[class].early(p.cfg.RED, q.length) {
			if p.cfg.RED.MarkECN && pkt.ECT {
				markCE = true
			} else {
				q.droppedPackets++
				q.droppedBytes += size
				p.stats.Reject(pkt.Size)
				p.emitDrop(now, class, size, q.length, DropRED)
				verdicts[i] = enforcer.Drop
				continue
			}
		}
		if q.length+size > p.cfg.QueueSize {
			q.droppedPackets++
			q.droppedBytes += size
			p.stats.Reject(pkt.Size)
			p.emitDrop(now, class, size, q.length, DropQueueFull)
			verdicts[i] = enforcer.Drop
			continue
		}

		p.accept(now, class, q, size)
		if markCE {
			p.emit(now, class, EventMark, size, q.length)
			verdicts[i] = enforcer.TransmitCE
			continue
		}
		p.emit(now, class, EventAccept, size, q.length)
		verdicts[i] = enforcer.Transmit
	}
}

var _ enforcer.BatchSubmitter = (*PQP)(nil)
