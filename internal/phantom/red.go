package phantom

import (
	"fmt"
)

// REDConfig enables RED-style active queue management on phantom queues —
// the §3.3 extension ("we need not necessarily wait for Q_i to become full
// before we drop a packet upon its arrival; we can apply active queue
// management policies"). Because phantom queues hold no packets, the AQM
// can only act at arrival time, which is exactly RED's shape: drop with a
// probability that rises with the (averaged) simulated occupancy.
//
// RED on a phantom queue desynchronizes flows sharing a class and spreads
// drops across a window instead of clustering them at the full threshold,
// trading a slightly earlier onset of loss for smaller loss bursts — the
// classic RED trade, measurable with the ext-aqm experiment.
type REDConfig struct {
	// MinBytes is the averaged occupancy at which early drops begin.
	MinBytes int64
	// MaxBytes is the averaged occupancy at which the drop probability
	// reaches MaxProb; above it every arrival is dropped.
	MaxBytes int64
	// MaxProb is the drop probability at MaxBytes (default 0.1).
	MaxProb float64
	// Weight is the EWMA weight of the occupancy average (default
	// 0.002, RED's classic recommendation).
	Weight float64
	// Seed makes the probabilistic drops deterministic per enforcer.
	Seed uint64
	// MarkECN converts early drops into ECN congestion-experienced
	// marks for ECN-capable packets (pkt.ECT): the packet is
	// transmitted with the TransmitCE verdict instead of being
	// discarded. Non-ECT packets are still dropped. Queue-full drops
	// are unaffected.
	MarkECN bool
}

// validate normalizes the RED configuration against the queue size.
func (c *REDConfig) validate(queueSize int64) error {
	if c.MinBytes <= 0 || c.MaxBytes <= c.MinBytes {
		return fmt.Errorf("phantom: RED thresholds must satisfy 0 < min (%d) < max (%d)",
			c.MinBytes, c.MaxBytes)
	}
	if c.MaxBytes > queueSize {
		return fmt.Errorf("phantom: RED max threshold %d exceeds queue size %d",
			c.MaxBytes, queueSize)
	}
	if c.MaxProb == 0 {
		c.MaxProb = 0.1
	}
	if c.MaxProb < 0 || c.MaxProb > 1 {
		return fmt.Errorf("phantom: RED max probability %v outside [0,1]", c.MaxProb)
	}
	if c.Weight == 0 {
		c.Weight = 0.002
	}
	if c.Weight <= 0 || c.Weight > 1 {
		return fmt.Errorf("phantom: RED weight %v outside (0,1]", c.Weight)
	}
	return nil
}

// redState is the per-queue RED run state.
type redState struct {
	avg   float64 // EWMA of occupancy in bytes
	count int     // arrivals since the last early drop
	rng   uint64  // xorshift state
}

// early decides whether RED drops an arrival given the queue's current
// simulated occupancy. Magic bytes count toward occupancy: a magic-filled
// queue is semantically full.
func (r *redState) early(cfg *REDConfig, occupancy int64) bool {
	r.avg += cfg.Weight * (float64(occupancy) - r.avg)
	switch {
	case r.avg < float64(cfg.MinBytes):
		r.count = 0
		return false
	case r.avg >= float64(cfg.MaxBytes):
		r.count = 0
		return true
	}
	// Linear probability between the thresholds, spaced by the classic
	// count correction so drops distribute evenly.
	pb := cfg.MaxProb * (r.avg - float64(cfg.MinBytes)) /
		float64(cfg.MaxBytes-cfg.MinBytes)
	r.count++
	pa := pb / (1 - float64(r.count)*pb)
	if pa < 0 || pa >= 1 {
		r.count = 0
		return true
	}
	if r.rand() < pa {
		r.count = 0
		return true
	}
	return false
}

// rand is a deterministic xorshift64* uniform draw in [0, 1).
func (r *redState) rand() float64 {
	x := r.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.rng = x
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}
