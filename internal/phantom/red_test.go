package phantom

import (
	"testing"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/units"
)

func redConfig(B int64) *REDConfig {
	return &REDConfig{
		MinBytes: B / 4,
		MaxBytes: 3 * B / 4,
		MaxProb:  0.2,
		Weight:   0.05, // fast EWMA so short tests converge
		Seed:     7,
	}
}

func TestREDValidation(t *testing.T) {
	base := Config{Rate: units.Mbps, Queues: 1, QueueSize: 100 * units.MSS}
	cases := []struct {
		name string
		red  REDConfig
		ok   bool
	}{
		{"ok", REDConfig{MinBytes: 10 * units.MSS, MaxBytes: 50 * units.MSS}, true},
		{"min>=max", REDConfig{MinBytes: 50 * units.MSS, MaxBytes: 50 * units.MSS}, false},
		{"zero min", REDConfig{MinBytes: 0, MaxBytes: 50 * units.MSS}, false},
		{"max>B", REDConfig{MinBytes: 10 * units.MSS, MaxBytes: 200 * units.MSS}, false},
		{"bad prob", REDConfig{MinBytes: 10 * units.MSS, MaxBytes: 50 * units.MSS, MaxProb: 1.5}, false},
		{"bad weight", REDConfig{MinBytes: 10 * units.MSS, MaxBytes: 50 * units.MSS, Weight: 2}, false},
	}
	for _, tc := range cases {
		cfg := base
		red := tc.red
		cfg.RED = &red
		_, err := New(cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestREDNoDropsBelowMinThreshold(t *testing.T) {
	const B = 100 * units.MSS
	q := MustNew(Config{
		Rate: 8 * units.Mbps, Queues: 1, QueueSize: B,
		RED: redConfig(B),
	})
	// Offer exactly the drain rate: occupancy stays near zero.
	now := time.Duration(0)
	for i := 0; i < 2000; i++ {
		now += 1500 * time.Microsecond
		if q.Submit(now, pkt(0, units.MSS)) == enforcer.Drop {
			t.Fatalf("RED dropped packet %d with near-empty queue", i)
		}
	}
}

func TestREDDropsEarlyUnderOverload(t *testing.T) {
	const B = 100 * units.MSS
	dropTail := MustNew(Config{Rate: 8 * units.Mbps, Queues: 1, QueueSize: B})
	red := MustNew(Config{
		Rate: 8 * units.Mbps, Queues: 1, QueueSize: B,
		RED: redConfig(B),
	})
	// Offer 2× the rate: drop-tail admits until full; RED must start
	// dropping before the queue fills and keep occupancy below B.
	now := time.Duration(0)
	var firstREDDrop, firstTailDrop int = -1, -1
	for i := 0; i < 3000; i++ {
		now += 750 * time.Microsecond
		p := pkt(0, units.MSS)
		if red.Submit(now, p) == enforcer.Drop && firstREDDrop < 0 {
			firstREDDrop = i
		}
		if dropTail.Submit(now, p) == enforcer.Drop && firstTailDrop < 0 {
			firstTailDrop = i
		}
	}
	if firstREDDrop < 0 {
		t.Fatal("RED never dropped under 2x overload")
	}
	if firstTailDrop >= 0 && firstREDDrop >= firstTailDrop {
		t.Errorf("RED first drop at packet %d, not earlier than drop-tail's %d",
			firstREDDrop, firstTailDrop)
	}
	if red.QueueLength(0) >= B {
		t.Errorf("RED queue reached capacity (%d); early drops should prevent that", red.QueueLength(0))
	}
}

func TestREDStillEnforcesRate(t *testing.T) {
	const B = 200 * units.MSS
	rate := 8 * units.Mbps
	q := MustNew(Config{
		Rate: rate, Queues: 1, QueueSize: B,
		RED: redConfig(B),
	})
	now := time.Duration(0)
	var accepted int64
	for i := 0; i < 40000; i++ {
		now += 750 * time.Microsecond // 2× offered
		if q.Submit(now, pkt(0, units.MSS)) == enforcer.Transmit {
			accepted += units.MSS
		}
	}
	ratio := float64(accepted) / rate.Bytes(now)
	// RED keeps the average occupancy between its thresholds, so the
	// queue stays busy and the enforced rate holds.
	if ratio < 0.9 || ratio > 1.05 {
		t.Errorf("accepted %.3f of enforced rate under RED, want ≈1", ratio)
	}
}

func TestREDDeterministic(t *testing.T) {
	run := func() int64 {
		const B = 100 * units.MSS
		q := MustNew(Config{
			Rate: 8 * units.Mbps, Queues: 1, QueueSize: B,
			RED: redConfig(B),
		})
		now := time.Duration(0)
		var drops int64
		for i := 0; i < 5000; i++ {
			now += 750 * time.Microsecond
			if q.Submit(now, pkt(0, units.MSS)) == enforcer.Drop {
				drops++
			}
		}
		return drops
	}
	if a, b := run(), run(); a != b {
		t.Errorf("RED drops nondeterministic: %d vs %d", a, b)
	}
}

func TestREDSpreadsDrops(t *testing.T) {
	// Under sustained overload between thresholds, RED's drops should be
	// spread out rather than clustered back-to-back.
	const B = 400 * units.MSS
	q := MustNew(Config{
		Rate: 8 * units.Mbps, Queues: 1, QueueSize: B,
		RED: &REDConfig{
			MinBytes: 20 * units.MSS,
			MaxBytes: 390 * units.MSS,
			MaxProb:  0.3,
			Weight:   0.05,
			Seed:     3,
		},
	})
	now := time.Duration(0)
	var maxRun, run int
	for i := 0; i < 30000; i++ {
		now += 1100 * time.Microsecond // ≈1.36× offered
		if q.Submit(now, pkt(0, units.MSS)) == enforcer.Drop {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun > 60 {
		t.Errorf("longest consecutive RED drop run = %d; expected spread-out drops", maxRun)
	}
}

func TestArrivalFilter(t *testing.T) {
	blockedPort := uint16(666)
	q := MustNew(Config{
		Rate: units.Mbps, Queues: 2, QueueSize: 100 * units.MSS,
		Filter: func(p packet.Packet) bool {
			return p.Key.DstPort != blockedPort
		},
	})
	now := time.Millisecond
	ok := packet.Packet{Key: packet.FlowKey{DstPort: 80}, Size: units.MSS, Class: 0}
	blocked := packet.Packet{Key: packet.FlowKey{DstPort: blockedPort}, Size: units.MSS, Class: 1}
	if q.Submit(now, ok) != enforcer.Transmit {
		t.Error("allowed packet dropped")
	}
	if q.Submit(now, blocked) != enforcer.Drop {
		t.Error("filtered packet admitted")
	}
	// Filtered packets must not occupy the phantom queue.
	if q.QueueLength(1) != 0 {
		t.Errorf("filtered packet left %d bytes in the queue", q.QueueLength(1))
	}
	_, _, dp, _ := q.ClassStats(1)
	if dp != 1 {
		t.Errorf("filtered drop not accounted: %d", dp)
	}
}
