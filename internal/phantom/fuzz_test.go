package phantom

import (
	"testing"
	"time"

	"bcpqp/internal/packet"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// FuzzSubmitInvariants feeds arbitrary byte strings as (gap, class, size)
// operation streams into a burst-controlled PQP with a nested policy and
// checks the structural invariants after every operation: non-negative
// lengths, magic ≤ length, length ≤ B, and drop/accept accounting that sums
// to the submitted totals.
func FuzzSubmitInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248})
	f.Add([]byte{7, 0, 7, 0, 7, 0, 200, 200, 200})

	f.Fuzz(func(t *testing.T, ops []byte) {
		const B = 40 * units.MSS
		policy := sched.MustNew(sched.Priority(
			sched.Weighted(sched.Leaf(0).WithWeight(2), sched.Leaf(1)),
			sched.Weighted(sched.Leaf(2), sched.Leaf(3)),
		))
		q := MustNew(Config{
			Rate:         4 * units.Mbps,
			Queues:       4,
			QueueSize:    B,
			Policy:       policy,
			BurstControl: true,
			Window:       10 * time.Millisecond,
		})
		now := time.Duration(0)
		var submitted, accepted, dropped int64
		for i := 0; i+2 < len(ops); i += 3 {
			now += time.Duration(ops[i]) * 37 * time.Microsecond
			class := int(ops[i+1]) % 4
			size := 40 + int(ops[i+2])*8
			v := q.Submit(now, packet.Packet{
				Key:   packet.FlowKey{SrcPort: uint16(class)},
				Class: class,
				Size:  size,
			})
			submitted++
			switch v {
			case 0: // Transmit
				accepted++
			default:
				dropped++
			}
			if ops[i]%11 == 0 {
				now += time.Duration(ops[i]) * time.Millisecond
				q.Tick(now)
			}
			for c := 0; c < 4; c++ {
				l, m := q.QueueLength(c), q.MagicBytes(c)
				if l < 0 {
					t.Fatalf("queue %d negative length %d", c, l)
				}
				if m < 0 || m > l {
					t.Fatalf("queue %d magic %d vs length %d", c, m, l)
				}
				if l > B {
					t.Fatalf("queue %d length %d exceeds B=%d", c, l, B)
				}
			}
		}
		st := q.EnforcerStats()
		if st.AcceptedPackets != accepted || st.DroppedPackets != dropped {
			t.Fatalf("stats %d/%d vs observed %d/%d",
				st.AcceptedPackets, st.DroppedPackets, accepted, dropped)
		}
		if st.AcceptedPackets+st.DroppedPackets != submitted {
			t.Fatalf("accounting leak: %d+%d != %d",
				st.AcceptedPackets, st.DroppedPackets, submitted)
		}
	})
}
