package phantom

import (
	"bcpqp/internal/enforcer"
)

// snapVersion is the format version of PQP snapshot blobs. Bump it whenever
// the layout below changes; RestoreState rejects unknown versions.
const snapVersion = 1

// SnapshotState implements enforcer.Snapshotter. The blob captures the full
// admission state of the policer — phantom-queue FIFO segments (real and
// magic, in order, so a later magic reclaim removes exactly the not-yet-
// drained magic bytes), burst-control windows, the lazy-drain clock and
// fractional credit, per-class counters, aggregate statistics, and RED
// averages when the AQM extension is enabled.
//
// Configuration is deliberately NOT captured: blobs restore only into an
// enforcer constructed with the same Config, and RestoreState validates the
// structural fit (queue count, occupancy within the simulated buffer size,
// RED presence).
//
// Layout (little-endian, see enforcer.Enc):
//
//	u8   version (=1)
//	bool started
//	i64  lastDrain (ns)
//	f64  drainCredit
//	stats (4×i64)
//	u32  queue count (must equal cfg.Queues)
//	per queue:
//	    bool windowOpen, i64 windowStart (ns), i64 accepted
//	    4×i64 class counters
//	    u32 segment count; per segment: i64 bytes (>0), bool magic
//	bool RED present (must match cfg.RED != nil)
//	per queue when present: f64 avg, i64 count, u64 rng
//
// Derived state (queue length/magic totals, share cache, window-roll epoch
// stamps) is recomputed on restore rather than stored, so a blob cannot
// smuggle in an inconsistent occupancy.
func (p *PQP) SnapshotState() ([]byte, error) {
	var e enforcer.Enc
	e.U8(snapVersion)
	e.Bool(p.started)
	e.Dur(p.lastDrain)
	e.F64(p.drainCredit)
	e.Stats(p.stats)
	e.U32(uint32(len(p.queues)))
	for i := range p.queues {
		q := &p.queues[i]
		e.Bool(q.windowOpen)
		e.Dur(q.windowStart)
		e.I64(q.accepted)
		e.I64(q.acceptedPackets)
		e.I64(q.acceptedBytes)
		e.I64(q.droppedPackets)
		e.I64(q.droppedBytes)
		live := q.segs[q.head:]
		e.U32(uint32(len(live)))
		for _, s := range live {
			e.I64(s.bytes)
			e.Bool(s.magic)
		}
	}
	e.Bool(p.red != nil)
	for i := range p.red {
		e.F64(p.red[i].avg)
		e.I64(int64(p.red[i].count))
		e.U64(p.red[i].rng)
	}
	return e.Out(), nil
}

// RestoreState implements enforcer.Snapshotter. The receiver must be
// freshly constructed with the same Config the snapshot was taken under;
// mismatches (queue count, occupancy exceeding the simulated buffer, RED
// presence) are errors. On error the receiver is structurally intact but
// its partial state is unspecified — discard it.
func (p *PQP) RestoreState(data []byte) error {
	d := enforcer.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != snapVersion {
		d.Fail("phantom: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	started := d.Bool()
	lastDrain := d.Dur()
	drainCredit := d.F64()
	if d.Err() == nil && (drainCredit < 0 || drainCredit >= 1) {
		d.Fail("phantom: drain credit %v outside [0,1)", drainCredit)
	}
	stats := d.Stats()
	if n := d.U32(); d.Err() == nil && int(n) != p.cfg.Queues {
		d.Fail("phantom: snapshot has %d queues, enforcer has %d", n, p.cfg.Queues)
	}
	if d.Err() != nil {
		return d.Err()
	}

	queues := make([]queue, p.cfg.Queues)
	for i := range queues {
		q := &queues[i]
		q.windowOpen = d.Bool()
		q.windowStart = d.Dur()
		q.accepted = d.I64()
		q.acceptedPackets = d.I64()
		q.acceptedBytes = d.I64()
		q.droppedPackets = d.I64()
		q.droppedBytes = d.I64()
		if d.Err() == nil && (q.accepted < 0 || q.acceptedPackets < 0 || q.acceptedBytes < 0 ||
			q.droppedPackets < 0 || q.droppedBytes < 0) {
			d.Fail("phantom: negative counter in queue %d", i)
		}
		nseg := d.U32()
		for s := uint32(0); s < nseg && d.Err() == nil; s++ {
			bytes := d.I64()
			magic := d.Bool()
			if d.Err() != nil {
				break
			}
			if bytes <= 0 {
				d.Fail("phantom: non-positive segment of %d bytes in queue %d", bytes, i)
				break
			}
			q.segs = append(q.segs, segment{bytes: bytes, magic: magic})
			q.length += bytes
			if magic {
				q.magic += bytes
			}
			if q.length > p.cfg.QueueSize {
				d.Fail("phantom: queue %d occupancy %d exceeds simulated buffer %d",
					i, q.length, p.cfg.QueueSize)
				break
			}
		}
	}
	hasRED := d.Bool()
	if d.Err() == nil && hasRED != (p.red != nil) {
		d.Fail("phantom: snapshot RED presence %v does not match configuration %v",
			hasRED, p.red != nil)
	}
	red := make([]redState, len(p.red))
	for i := range red {
		red[i].avg = d.F64()
		red[i].count = int(d.I64())
		red[i].rng = d.U64()
		if d.Err() == nil && (red[i].avg < 0 || red[i].count < 0) {
			d.Fail("phantom: invalid RED state for queue %d", i)
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}

	p.started = started
	p.lastDrain = lastDrain
	p.drainCredit = drainCredit
	p.stats = stats
	p.queues = queues
	if p.red != nil {
		p.red = red
	}
	// Derived caches: recompute lazily. The window-roll epoch stamps only
	// dedupe rolls within a single SubmitBatch call, so resetting them is
	// behaviorally identical.
	p.sharesValid = false
	for i := range p.shares {
		p.shares[i] = 0
	}
	p.windowEpoch = 0
	for i := range p.windowStamp {
		p.windowStamp[i] = 0
	}
	return nil
}

var _ enforcer.Snapshotter = (*PQP)(nil)
