// Package phantom implements the paper's primary contribution: a traffic
// policer built from phantom queues (PQP, §3) and its burst-controlled
// extension (BC-PQP, §4).
//
// A phantom queue simulates the occupancy of a shaper's drop-tail queue
// using byte counters, without buffering any real packets. On arrival a
// packet is transmitted immediately if its queue has spare (simulated)
// capacity — in which case a "phantom" copy worth the packet size is
// enqueued — and dropped otherwise. Phantom packets are dequeued at the rate
// the configured rate-sharing policy assigns to their queue; dequeues are
// lazy and batched (counters advance on the next arrival), which is the
// efficiency trick that lets PQP approach plain token-bucket cost.
//
// BC-PQP adds the burst-control mechanism of §4: per-queue accept-rate
// accounting over tumbling windows of length T. If a queue accepts more
// than θ⁺·r_i*·T bytes within a window — r_i* being its policy-assigned
// drain rate estimated from the set of active queues — the queue is
// "magically" filled to capacity with magic bytes, forcing the flow into
// steady state without the giant slow-start burst an O(BDP²) queue would
// otherwise admit. When the accept rate falls below θ⁻·r_i*·T the remaining
// magic bytes are reclaimed so a departing flow frees its rate share
// immediately.
package phantom

import (
	"fmt"
	"time"

	"bcpqp/internal/enforcer"
	"bcpqp/internal/packet"
	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// Default burst-control parameters from §4 of the paper: θ⁺ and θ⁻ bound
// New Reno's steady-state rate oscillation (4/3·r and 2/3·r, applied with
// margin as 1.5 and 0.5), and T approximates a p99 WAN RTT.
const (
	DefaultThetaHi = 1.5
	DefaultThetaLo = 0.5
	DefaultWindow  = 100 * time.Millisecond
)

// Config configures a PQP or BC-PQP enforcer for one traffic aggregate.
type Config struct {
	// Rate is the aggregate rate to enforce.
	Rate units.Rate
	// Queues is the number of phantom queues N. Flows are classified
	// into queues by flow-key hash unless packets carry explicit classes.
	Queues int
	// QueueSize is the simulated buffer size B of each queue in bytes.
	// For correct average-rate enforcement it must be at least the Reno
	// requirement BDP²/18 × MSS (Appendix A); with burst control enabled
	// there is no upper limit and the paper recommends a very large value
	// (≥ 10× the requirement).
	QueueSize int64
	// Policy is the rate-sharing policy across queues. Nil means per-flow
	// fairness (equal-weight sharing over Queues classes).
	Policy *sched.Policy
	// BurstControl enables the BC-PQP mechanism. When false the enforcer
	// is plain PQP.
	BurstControl bool
	// ThetaHi, ThetaLo, Window are the burst-control parameters θ⁺, θ⁻
	// and T. Zero values select the paper defaults.
	ThetaHi float64
	ThetaLo float64
	Window  time.Duration
	// DrainBatch is the minimum accumulated drain budget (bytes) before
	// a full-queue arrival triggers the batched phantom dequeue. Larger
	// values amortize dequeue work over more packets at the cost of up
	// to DrainBatch bytes of extra admission burstiness (negligible
	// next to B). Zero selects 4 MSS.
	DrainBatch int64
	// RED optionally enables RED-style early drops on the simulated
	// occupancy (the §3.3 active-queue-management extension).
	RED *REDConfig
	// Filter optionally rejects packets at arrival by arbitrary
	// criteria before any queue accounting (the §3.3 access-control
	// extension). Returning false drops the packet.
	Filter func(pkt packet.Packet) bool
	// OnEvent, when set, observes every queue transition (accepts,
	// drops, marks, magic fills and reclaims) synchronously — the hook
	// production deployments use for flight recording and debugging.
	// Handlers must be fast and must not call back into the enforcer.
	OnEvent func(Event)
}

// segment is a FIFO run of bytes in a phantom queue, either real (phantom
// copies of transmitted packets) or magic (vacuous fill from burst control).
// FIFO order is tracked only so that reclaiming magic removes exactly the
// magic bytes that have not yet drained.
type segment struct {
	bytes int64
	magic bool
}

// queue is one phantom queue: counters plus burst-control window state.
type queue struct {
	length int64 // total simulated occupancy incl. magic bytes
	magic  int64 // magic bytes currently in the queue

	segs []segment
	head int // index of the FIFO front within segs

	windowOpen  bool
	windowStart time.Duration
	accepted    int64 // bytes accepted in the current window

	// Per-class statistics.
	acceptedPackets int64
	acceptedBytes   int64
	droppedPackets  int64
	droppedBytes    int64
}

// PQP is a phantom-queue policer (optionally burst-controlled) for a single
// traffic aggregate. It is not safe for concurrent use; shard aggregates
// across goroutines instead, as a middlebox shards across cores.
type PQP struct {
	cfg   Config
	stats enforcer.Stats

	queues []queue

	lastDrain   time.Duration
	drainCredit float64 // fractional bytes of drain budget carried over

	// shares caches the per-class drain rates for the current active
	// set (queues with non-zero length). It is invalidated whenever a
	// queue transitions between empty and occupied, so the per-packet
	// burst-control check is a cached read rather than a policy-tree
	// walk.
	shares      []float64
	sharesValid bool

	// flatWeights enables the allocation-free drain fast path for
	// single-level weighted (fair) policies; nil for hierarchical or
	// priority trees, which use the generic GPS walk.
	flatWeights []float64

	// red holds per-queue RED state when the AQM extension is enabled.
	red []redState

	// windowEpoch/windowStamp dedupe burst-control window rolls within one
	// SubmitBatch call: rolling a class's window is idempotent at a fixed
	// virtual time, so the batch path performs it once per class per burst
	// instead of once per packet (see SubmitBatch).
	windowEpoch uint64
	windowStamp []uint64

	started bool
}

// New validates cfg and returns a PQP (or BC-PQP when cfg.BurstControl).
func New(cfg Config) (*PQP, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("phantom: non-positive rate %v", cfg.Rate)
	}
	if cfg.Queues <= 0 {
		return nil, fmt.Errorf("phantom: need at least one queue, got %d", cfg.Queues)
	}
	if cfg.QueueSize < units.MSS {
		return nil, fmt.Errorf("phantom: queue size %d below one MSS", cfg.QueueSize)
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.Fair(cfg.Queues)
	}
	if cfg.Policy.NumClasses() != cfg.Queues {
		return nil, fmt.Errorf("phantom: policy covers %d classes but enforcer has %d queues",
			cfg.Policy.NumClasses(), cfg.Queues)
	}
	if cfg.ThetaHi == 0 {
		cfg.ThetaHi = DefaultThetaHi
	}
	if cfg.ThetaLo == 0 {
		cfg.ThetaLo = DefaultThetaLo
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.BurstControl {
		if cfg.ThetaHi <= cfg.ThetaLo {
			return nil, fmt.Errorf("phantom: θ+ (%v) must exceed θ- (%v)", cfg.ThetaHi, cfg.ThetaLo)
		}
		if cfg.Window <= 0 {
			return nil, fmt.Errorf("phantom: non-positive window %v", cfg.Window)
		}
	}
	if cfg.DrainBatch <= 0 {
		cfg.DrainBatch = 4 * units.MSS
	}
	// Keep the batch a small fraction of the queue so tiny queues still
	// free space at per-packet granularity.
	if maxBatch := cfg.QueueSize / 4; cfg.DrainBatch > maxBatch {
		cfg.DrainBatch = maxBatch
		if cfg.DrainBatch < units.MSS {
			cfg.DrainBatch = units.MSS
		}
	}
	p := &PQP{
		cfg:         cfg,
		queues:      make([]queue, cfg.Queues),
		shares:      make([]float64, cfg.Queues),
		windowStamp: make([]uint64, cfg.Queues),
	}
	p.flatWeights = cfg.Policy.FlatWeighted()
	if cfg.RED != nil {
		if err := cfg.RED.validate(cfg.QueueSize); err != nil {
			return nil, err
		}
		p.cfg.RED = cfg.RED
		p.red = make([]redState, cfg.Queues)
		for i := range p.red {
			p.red[i].rng = (cfg.RED.Seed+uint64(i))*0x9E3779B97F4A7C15 | 1
		}
	}
	return p, nil
}

// MustNew is New that panics on error, for tests and static configuration.
func MustNew(cfg Config) *PQP {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Submit implements enforcer.Enforcer. Virtual time must be non-decreasing.
//
// The fast path performs no phantom dequeues: drains are batched and only
// applied when the target queue appears full (§3.1's "phantom dequeues can
// be batched and done only when the phantom queue becomes full"). Stale
// occupancy only ever overestimates, so admission decisions after the
// batched drain are identical to eagerly-drained ones.
func (p *PQP) Submit(now time.Duration, pkt packet.Packet) enforcer.Verdict {
	if !p.started {
		p.started = true
		p.lastDrain = now
	}

	class := pkt.ClassIn(p.cfg.Queues)
	q := &p.queues[class]
	size := int64(pkt.Size)

	// Access-control filter: reject on arrival by arbitrary criteria,
	// before any queue accounting (§3.3).
	if p.cfg.Filter != nil && !p.cfg.Filter(pkt) {
		q.droppedPackets++
		q.droppedBytes += size
		p.stats.Reject(pkt.Size)
		p.emitDrop(now, class, size, q.length, DropFilter)
		return enforcer.Drop
	}

	if p.cfg.BurstControl {
		p.rollWindow(now, class)
	}

	// Drop-tail admission on the simulated buffer, with batched lazy
	// dequeues applied only when the stale occupancy looks full AND at
	// least DrainBatch bytes of drain budget have accrued (amortizing
	// dequeue work over several packets; unapplied budget is never
	// lost, so the long-term rate is exact).
	if q.length+size > p.cfg.QueueSize || p.red != nil {
		if p.drainCredit+p.cfg.Rate.Bytes(now-p.lastDrain) >= float64(p.cfg.DrainBatch) {
			p.advance(now)
		}
	}
	// RED early signal on the averaged simulated occupancy (§3.3 AQM):
	// drop, or an ECN congestion-experienced mark for capable packets.
	markCE := false
	if p.red != nil && p.red[class].early(p.cfg.RED, q.length) {
		if p.cfg.RED.MarkECN && pkt.ECT {
			markCE = true
		} else {
			q.droppedPackets++
			q.droppedBytes += size
			p.stats.Reject(pkt.Size)
			p.emitDrop(now, class, size, q.length, DropRED)
			return enforcer.Drop
		}
	}
	if q.length+size > p.cfg.QueueSize {
		q.droppedPackets++
		q.droppedBytes += size
		p.stats.Reject(pkt.Size)
		p.emitDrop(now, class, size, q.length, DropQueueFull)
		return enforcer.Drop
	}

	p.accept(now, class, q, size)
	if markCE {
		p.emit(now, class, EventMark, size, q.length)
		return enforcer.TransmitCE
	}
	p.emit(now, class, EventAccept, size, q.length)
	return enforcer.Transmit
}

// accept performs the admission bookkeeping shared by Submit and Commit:
// the phantom enqueue, statistics, and burst-control window accounting
// (including the θ⁺ magic fill).
func (p *PQP) accept(now time.Duration, class int, q *queue, size int64) {
	if q.length == 0 {
		p.sharesValid = false // queue becomes active
	}
	q.pushReal(size)
	q.acceptedPackets++
	q.acceptedBytes += size
	p.stats.Accept(int(size))

	if p.cfg.BurstControl {
		if !q.windowOpen {
			q.windowOpen = true
			q.windowStart = now
			q.accepted = 0
		}
		q.accepted += size
		// High-threshold check: if this queue accepted more than
		// θ⁺·r_i*·T in the current window, fill it with magic bytes.
		x := p.expectedWindowBytes(class)
		if x > 0 && float64(q.accepted) > p.cfg.ThetaHi*x {
			p.fillMagic(now, class, q)
		}
	}
}

// emit publishes an observability event when a handler is attached.
func (p *PQP) emit(now time.Duration, class int, kind EventKind, bytes, qlen int64) {
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(Event{Time: now, Class: class, Kind: kind, Bytes: bytes, QueueLen: qlen})
	}
}

// emitDrop publishes an EventDrop qualified with its reason.
func (p *PQP) emitDrop(now time.Duration, class int, size, qlen int64, reason DropReason) {
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(Event{Time: now, Class: class, Kind: EventDrop, Bytes: size, QueueLen: qlen, Reason: reason})
	}
}

// SetOnEvent installs or replaces the observability hook. It mutates
// enforcer state: call it only from the goroutine that owns the enforcer
// (under mbox, via Engine.Update so it runs on the owning shard), never
// concurrently with Submit or Tick. A nil fn detaches the hook.
func (p *PQP) SetOnEvent(fn func(Event)) { p.cfg.OnEvent = fn }

// Probe reports whether a packet would be admitted at now, applying the
// same batched lazy drains as Submit but changing no admission state. It
// considers simulated-buffer capacity only — RED and arrival filters are
// properties of a specific enforcement point, not of capacity, and remain
// Submit-only. Probe/Commit implement two-phase admission for cascaded
// (multi-level) rate limits: probe every level, commit only if all accept,
// so no phantom copy is ever enqueued for a packet another level drops.
func (p *PQP) Probe(now time.Duration, pkt packet.Packet) bool {
	if !p.started {
		p.started = true
		p.lastDrain = now
	}
	class := pkt.ClassIn(p.cfg.Queues)
	q := &p.queues[class]
	size := int64(pkt.Size)
	if q.length+size > p.cfg.QueueSize {
		if p.drainCredit+p.cfg.Rate.Bytes(now-p.lastDrain) >= float64(p.cfg.DrainBatch) {
			p.advance(now)
		}
	}
	return q.length+size <= p.cfg.QueueSize
}

// Commit admits a packet previously accepted by Probe: the phantom copy is
// enqueued and burst-control accounting runs. The pair (Probe → all levels
// accept → Commit) must happen at the same virtual time.
func (p *PQP) Commit(now time.Duration, pkt packet.Packet) {
	class := pkt.ClassIn(p.cfg.Queues)
	q := &p.queues[class]
	size := int64(pkt.Size)
	if p.cfg.BurstControl {
		p.rollWindow(now, class)
	}
	p.accept(now, class, q, size)
	p.emit(now, class, EventAccept, size, q.length)
}

// Tick advances phantom drains and burst-control windows to now without
// submitting a packet. Experiments call it periodically so idle queues
// reclaim magic bytes and share estimates stay fresh even when an aggregate
// goes quiet.
func (p *PQP) Tick(now time.Duration) {
	p.advance(now)
	if p.cfg.BurstControl {
		for i := range p.queues {
			p.rollWindow(now, i)
		}
	}
}

// advance performs the batched lazy phantom dequeues: it distributes the
// drain budget accumulated since the last advance across occupied queues
// according to the policy, exactly as the analogous shaper would serve them.
func (p *PQP) advance(now time.Duration) {
	if !p.started {
		p.started = true
		p.lastDrain = now
		return
	}
	if now <= p.lastDrain {
		return
	}
	budget := p.drainCredit + p.cfg.Rate.Bytes(now-p.lastDrain)
	p.lastDrain = now
	whole := int64(budget)
	p.drainCredit = budget - float64(whole)
	if whole <= 0 {
		return
	}
	if p.flatWeights != nil {
		p.flatDrain(whole)
		return
	}
	p.cfg.Policy.Drain(whole,
		func(class int) int64 { return p.queues[class].length },
		func(class int, n int64) {
			q := &p.queues[class]
			q.drain(n)
			if q.length == 0 {
				p.sharesValid = false // queue goes idle
			}
		})
}

// flatDrain is the allocation-free GPS drain for single-level weighted
// policies: the budget is split among occupied queues in weight proportion,
// re-allocating the slack of queues that empty (work conservation).
func (p *PQP) flatDrain(budget int64) {
	for budget > 0 {
		var wsum float64
		occupied := 0
		for i := range p.queues {
			if p.queues[i].length > 0 {
				wsum += p.flatWeights[i]
				occupied++
			}
		}
		if occupied == 0 {
			return
		}
		// Drain queues whose backlog fits inside their allocation
		// first; if none fits, hand out proportional shares (plus the
		// rounding remainder) and finish.
		drainedSmall := false
		for i := range p.queues {
			q := &p.queues[i]
			if q.length == 0 {
				continue
			}
			alloc := int64(float64(budget) * p.flatWeights[i] / wsum)
			if q.length <= alloc {
				budget -= q.length
				q.drain(q.length)
				p.sharesValid = false
				drainedSmall = true
			}
		}
		if drainedSmall {
			continue
		}
		var consumed int64
		for i := range p.queues {
			q := &p.queues[i]
			if q.length == 0 {
				continue
			}
			alloc := int64(float64(budget) * p.flatWeights[i] / wsum)
			q.drain(alloc)
			consumed += alloc
			if q.length == 0 {
				p.sharesValid = false
			}
		}
		// Rounding remainder: give leftover bytes to queues with
		// remaining backlog, one pass.
		leftover := budget - consumed
		for i := range p.queues {
			if leftover == 0 {
				break
			}
			q := &p.queues[i]
			if q.length > 0 {
				d := leftover
				if d > q.length {
					d = q.length
				}
				q.drain(d)
				leftover -= d
				if q.length == 0 {
					p.sharesValid = false
				}
			}
		}
		return
	}
}

// rollWindow closes an expired burst-control window on queue class: if the
// queue accepted less than θ⁻·r_i*·T bytes it is "finishing", so remaining
// magic bytes are reclaimed and its rate share frees up immediately.
func (p *PQP) rollWindow(now time.Duration, class int) {
	q := &p.queues[class]
	if !q.windowOpen || now < q.windowStart+p.cfg.Window {
		return
	}
	x := p.expectedWindowBytes(class)
	if float64(q.accepted) < p.cfg.ThetaLo*x && q.magic > 0 {
		reclaimed := q.magic
		q.reclaimMagic()
		p.emit(now, class, EventMagicReclaim, reclaimed, q.length)
		if q.length == 0 {
			p.sharesValid = false
		}
	}
	if q.length == 0 {
		q.windowOpen = false
		q.accepted = 0
		return
	}
	q.windowStart = now
	q.accepted = 0
}

// expectedWindowBytes returns X_i = r_i*·T: the bytes queue class is
// expected to drain over one window given the current active set, with the
// class itself counted active (it is being evaluated because it carries
// traffic). The share vector is cached and recomputed only when the active
// set changes, which keeps the per-packet burst-control check O(1).
func (p *PQP) expectedWindowBytes(class int) float64 {
	if !p.sharesValid || (p.queues[class].length == 0 && p.shares[class] == 0) {
		p.cfg.Policy.Shares(p.cfg.Rate.BytesPerSecond(),
			func(c int) bool { return c == class || p.queues[c].length > 0 },
			p.shares)
		p.sharesValid = p.queues[class].length > 0
	}
	return p.shares[class] * p.cfg.Window.Seconds()
}

// fillMagic vacuously fills q to capacity with magic bytes.
func (p *PQP) fillMagic(now time.Duration, class int, q *queue) {
	m := p.cfg.QueueSize - q.length
	if m <= 0 {
		return
	}
	q.segs = append(q.segs, segment{bytes: m, magic: true})
	q.magic += m
	q.length += m
	p.emit(now, class, EventMagicFill, m, q.length)
}

// pushReal appends s real phantom bytes, coalescing with a real tail
// segment to keep the deque short.
func (q *queue) pushReal(s int64) {
	if n := len(q.segs); n > q.head && !q.segs[n-1].magic {
		q.segs[n-1].bytes += s
	} else {
		q.segs = append(q.segs, segment{bytes: s})
	}
	q.length += s
}

// drain removes n bytes from the FIFO front, tracking how many of them were
// magic.
func (q *queue) drain(n int64) {
	if n > q.length {
		n = q.length
	}
	q.length -= n
	for n > 0 {
		s := &q.segs[q.head]
		take := s.bytes
		if take > n {
			take = n
		}
		s.bytes -= take
		if s.magic {
			q.magic -= take
		}
		n -= take
		if s.bytes == 0 {
			q.head++
		}
	}
	q.compact()
}

// reclaimMagic removes every remaining magic byte from the queue.
func (q *queue) reclaimMagic() {
	if q.magic == 0 {
		return
	}
	out := q.segs[q.head:q.head]
	for _, s := range q.segs[q.head:] {
		if s.magic {
			continue
		}
		if n := len(out); n > 0 && !out[n-1].magic {
			out[n-1].bytes += s.bytes
		} else {
			out = append(out, s)
		}
	}
	q.length -= q.magic
	q.magic = 0
	q.segs = q.segs[:q.head+len(out)]
	q.compact()
}

// compact resets the deque storage once fully drained, or slides it down
// when the dead prefix dominates, keeping memory bounded.
func (q *queue) compact() {
	if q.head == len(q.segs) {
		q.segs = q.segs[:0]
		q.head = 0
		return
	}
	if q.head > 32 && q.head > len(q.segs)/2 {
		n := copy(q.segs, q.segs[q.head:])
		q.segs = q.segs[:n]
		q.head = 0
	}
}

// QueueLength returns the simulated occupancy (including magic bytes) of
// queue class, after any pending batched dequeues are accounted for by the
// most recent Submit/Tick.
func (p *PQP) QueueLength(class int) int64 { return p.queues[class].length }

// MagicBytes returns the magic bytes currently in queue class.
func (p *PQP) MagicBytes(class int) int64 { return p.queues[class].magic }

// EnforcerStats implements enforcer.StatsReader.
func (p *PQP) EnforcerStats() enforcer.Stats { return p.stats }

// ClassStats returns accepted/dropped counters for one queue.
func (p *PQP) ClassStats(class int) (acceptedPkts, acceptedBytes, droppedPkts, droppedBytes int64) {
	q := &p.queues[class]
	return q.acceptedPackets, q.acceptedBytes, q.droppedPackets, q.droppedBytes
}

// NumQueues returns the configured number of phantom queues.
func (p *PQP) NumQueues() int { return p.cfg.Queues }

// Rate returns the configured aggregate rate.
func (p *PQP) Rate() units.Rate { return p.cfg.Rate }

var _ enforcer.Enforcer = (*PQP)(nil)
var _ enforcer.StatsReader = (*PQP)(nil)
