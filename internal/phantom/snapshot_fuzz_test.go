package phantom

import (
	"testing"
	"time"

	"bcpqp/internal/packet"
	"bcpqp/internal/units"
)

// FuzzRestoreState hardens the warm-restart decode path: arbitrary bytes
// fed to RestoreState must either be rejected with an error or produce a
// fully functional enforcer whose invariants hold and whose own snapshot
// round-trips. It must never panic, and a hostile blob must never
// materialize state exceeding the receiver's configured queue bounds.
func FuzzRestoreState(f *testing.F) {
	mk := func() *PQP {
		return MustNew(Config{
			Rate:         8 * units.Mbps,
			Queues:       3,
			QueueSize:    30 * units.MSS,
			BurstControl: true,
			Window:       5 * time.Millisecond,
		})
	}

	// Seed with genuine snapshots at several points of a trace, so the
	// fuzzer mutates realistic images instead of rediscovering the format.
	seedSrc := mk()
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		now += 50 * time.Microsecond
		seedSrc.Submit(now, packet.Packet{
			Key:   packet.FlowKey{SrcPort: uint16(i % 5)},
			Class: i % 3,
			Size:  units.MSS,
		})
		if i%60 == 0 {
			blob, err := seedSrc.SnapshotState()
			if err != nil {
				f.Fatal(err)
			}
			f.Add(blob)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{1})

	f.Fuzz(func(t *testing.T, data []byte) {
		q := mk()
		if err := q.RestoreState(data); err != nil {
			return // rejection is the expected path for hostile input
		}
		// Accepted state must respect the receiver's structural bounds...
		for c := 0; c < 3; c++ {
			l, m := q.QueueLength(c), q.MagicBytes(c)
			if l < 0 || m < 0 || m > l || l > 30*units.MSS {
				t.Fatalf("restored state violates queue invariants: class %d len %d magic %d", c, l, m)
			}
		}
		// ...still enforce without panicking...
		at := 10 * time.Second
		for i := 0; i < 50; i++ {
			at += 100 * time.Microsecond
			q.Submit(at, packet.Packet{Class: i % 3, Size: units.MSS})
		}
		// ...and snapshot its own state into a blob a twin accepts.
		blob, err := q.SnapshotState()
		if err != nil {
			t.Fatalf("snapshot after accepted restore failed: %v", err)
		}
		if err := mk().RestoreState(blob); err != nil {
			t.Fatalf("twin rejected re-snapshot of accepted state: %v", err)
		}
	})
}
