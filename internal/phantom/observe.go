package phantom

import (
	"time"
)

// EventKind identifies a phantom-queue event for observability hooks.
type EventKind int

const (
	// EventAccept: a packet was admitted and its phantom copy enqueued.
	EventAccept EventKind = iota
	// EventDrop: a packet was rejected (full queue, RED, or filter).
	EventDrop
	// EventMark: a packet was admitted with an ECN CE mark.
	EventMark
	// EventMagicFill: burst control filled the queue with magic bytes.
	EventMagicFill
	// EventMagicReclaim: burst control reclaimed remaining magic bytes.
	EventMagicReclaim
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventAccept:
		return "accept"
	case EventDrop:
		return "drop"
	case EventMark:
		return "mark"
	case EventMagicFill:
		return "magic-fill"
	case EventMagicReclaim:
		return "magic-reclaim"
	default:
		return "unknown"
	}
}

// DropReason distinguishes why a phantom queue rejected a packet. It is
// DropNone on every non-drop event.
type DropReason int

const (
	// DropNone: the event is not a drop.
	DropNone DropReason = iota
	// DropFilter: rejected by the access-control arrival filter (§3.3).
	DropFilter
	// DropRED: dropped by RED early detection on the averaged simulated
	// occupancy (and the packet was not ECN-capable or marking is off).
	DropRED
	// DropQueueFull: drop-tail — the phantom copy did not fit in the
	// simulated buffer.
	DropQueueFull
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropFilter:
		return "filter"
	case DropRED:
		return "red"
	case DropQueueFull:
		return "queue-full"
	default:
		return "unknown"
	}
}

// Event is one observable phantom-queue transition. Emitted synchronously
// from Submit/Tick; handlers must be fast and must not call back into the
// enforcer.
type Event struct {
	Time  time.Duration
	Class int
	Kind  EventKind
	// Bytes is the packet size (accept/drop/mark) or the magic byte
	// count (fill/reclaim).
	Bytes int64
	// QueueLen is the queue's simulated occupancy after the event.
	QueueLen int64
	// Reason qualifies EventDrop (filter, RED, or full queue); DropNone
	// otherwise.
	Reason DropReason
}

// Recorder is a fixed-capacity ring of recent events — a flight recorder
// for debugging enforcement behaviour in production. The zero value is
// unusable; construct with NewRecorder. Not safe for concurrent use (attach
// one per enforcer, which is itself single-goroutine).
type Recorder struct {
	buf   []Event
	next  int
	total int64
}

// NewRecorder returns a ring holding the most recent n events.
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{buf: make([]Event, 0, n)}
}

// Record stores an event; pass it as Config.OnEvent.
func (r *Recorder) Record(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Events returns the recorded events, oldest first.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many events were recorded overall (including evicted).
func (r *Recorder) Total() int64 { return r.total }
