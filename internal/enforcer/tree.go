package enforcer

import (
	"errors"
	"time"

	"bcpqp/internal/packet"
)

// NodeID addresses one node inside a TreeEnforcer. Node identifiers are
// dense small integers in [0, NumNodes): tree enforcers lay their nodes out
// in flat arrays and a NodeID is the index into them, so node addressing on
// the datapath is an array offset, never a map lookup.
type NodeID int32

// NoNode is the invalid node identifier. It doubles as the "no node
// attribution" value on datapath structures whose zero value must not alias
// node 0.
const NoNode NodeID = -1

// ErrBadNode reports a node identifier outside a tree enforcer's node
// range (or one that is structurally invalid for the operation, e.g.
// addressing node 1 of a flat single-node aggregate). Test with errors.Is.
var ErrBadNode = errors.New("enforcer: no such node")

// ErrNotReconfigurable reports a reconfiguration against a node (or whole
// enforcer) that does not implement Reconfigurer. Test with errors.Is.
var ErrNotReconfigurable = errors.New("enforcer: not reconfigurable")

// ErrNotSnapshottable reports a snapshot operation against a node (or whole
// enforcer) that does not implement Snapshotter. Test with errors.Is.
var ErrNotSnapshottable = errors.New("enforcer: not snapshottable")

// ErrNoStats reports a statistics read against a node (or whole enforcer)
// that exposes none. Test with errors.Is.
var ErrNoStats = errors.New("enforcer: no stats")

// Stage is the two-phase admission capability used to compose rate limits
// hierarchically (cascade chains and policy trees): Probe asks whether a
// packet would be admitted without changing admission state, Commit charges
// a packet every probed level accepted. *phantom.PQP and *tbf.Policer
// implement it. Splitting admission keeps each level's Theorem 1 accounting
// exact: a level is never charged for a packet another level drops.
type Stage interface {
	// Probe reports whether the packet would be admitted at now, without
	// changing admission state (time-driven work — lazy drains, token
	// refills — may advance).
	Probe(now time.Duration, pkt packet.Packet) bool
	// Commit admits a packet previously accepted by Probe at the same
	// virtual time.
	Commit(now time.Duration, pkt packet.Packet)
}

// TreeEnforcer is the composition contract for hierarchical policy
// enforcement: one enforcer object covering a whole rooted tree of rate
// limits (tenant → plan → subscriber), addressed per node.
//
// Traffic enters at a node — normally a leaf — and must be admitted by that
// node and every ancestor up to the root. Submitting at an interior node is
// allowed and enforces only the path from that node upward (traffic already
// aggregated at, say, the plan level). Node 0's meaning is
// implementation-defined; Parent is the source of truth for topology.
//
// The contract is implemented by *ptree.Tree (the flat-array policy tree)
// and retrofitted onto *cascade.Cascade as the degenerate unary tree: stage
// i is node i, node 0 (the outermost stage) is the only leaf, and each
// node's parent is the next-inner stage.
//
// Like Enforcer, a TreeEnforcer is single-threaded: all Submit*At calls and
// all per-node control operations must be serialized onto one execution
// domain (the mbox engine runs them on the owning shard goroutine).
type TreeEnforcer interface {
	// NumNodes returns the node count; valid NodeIDs are [0, NumNodes).
	NumNodes() int
	// Parent returns the parent of node, NoNode for the root, and NoNode
	// for out-of-range nodes.
	Parent(node NodeID) NodeID
	// IsLeaf reports whether node is a leaf (a normal traffic ingress
	// point); false for out-of-range nodes.
	IsLeaf(node NodeID) bool
	// NodeLabel returns a stable human-readable name for the node, for
	// metrics labels and trace dumps. It may allocate; control plane only.
	NodeLabel(node NodeID) string

	// SubmitAt enforces one packet along the path node → root at virtual
	// time now. An out-of-range node fails closed: the packet is dropped
	// and counted, never passed unenforced.
	SubmitAt(now time.Duration, node NodeID, pkt packet.Packet) Verdict
	// SubmitBatchAt is the burst path of SubmitAt: all packets enter at
	// the same node and virtual time, verdicts is the out-parameter (at
	// least len(pkts) capacity). Verdicts are byte-identical to calling
	// SubmitAt per packet in order.
	SubmitBatchAt(now time.Duration, node NodeID, pkts []packet.Packet, verdicts []Verdict)

	// NodeStats returns one node's own accounting. For interior nodes
	// this covers the node's whole subtree (every packet admitted along a
	// path through it). ErrBadNode for out-of-range nodes, ErrNoStats
	// when the node keeps none.
	NodeStats(node NodeID) (Stats, error)
	// NodeReconfigurer returns the live-reconfiguration surface of one
	// node. ErrBadNode for out-of-range nodes, ErrNotReconfigurable when
	// the node's mechanism cannot be reconfigured in place.
	NodeReconfigurer(node NodeID) (Reconfigurer, error)
	// NodeSnapshotter returns the warm-restart surface of one node.
	// ErrBadNode for out-of-range nodes, ErrNotSnapshottable when the
	// node's mechanism cannot serialize its state.
	NodeSnapshotter(node NodeID) (Snapshotter, error)
}
