package enforcer

import (
	"testing"
)

func TestVerdictString(t *testing.T) {
	cases := map[Verdict]string{
		Transmit:   "transmit",
		Drop:       "drop",
		Queued:     "queued",
		Verdict(9): "unknown",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	var s Stats
	s.Accept(1500)
	s.Accept(500)
	s.Reject(1500)
	if s.AcceptedPackets != 2 || s.AcceptedBytes != 2000 {
		t.Errorf("accepted = %d/%d", s.AcceptedPackets, s.AcceptedBytes)
	}
	if s.DroppedPackets != 1 || s.DroppedBytes != 1500 {
		t.Errorf("dropped = %d/%d", s.DroppedPackets, s.DroppedBytes)
	}
	p, b := s.Totals()
	if p != 3 || b != 3500 {
		t.Errorf("totals = %d/%d", p, b)
	}
	if got := s.DropRate(); got != 1.0/3 {
		t.Errorf("drop rate = %v", got)
	}
}

func TestDropRateEmpty(t *testing.T) {
	var s Stats
	if s.DropRate() != 0 {
		t.Error("empty stats drop rate should be 0")
	}
}
