// Package enforcer defines the interface every rate-limiting mechanism in
// this repository implements (BC-PQP, PQP, token-bucket policer, FairPolicer,
// shaper), the verdicts they return, and shared statistics accounting.
//
// The same Enforcer objects are driven by the discrete-event simulator in
// experiments and by testing.B benchmarks for the efficiency evaluation, so
// the datapath under measurement is identical in both settings.
package enforcer

import (
	"time"

	"bcpqp/internal/packet"
)

// Verdict is an enforcer's decision for a submitted packet.
type Verdict int

const (
	// Transmit means the packet passes immediately (bufferless schemes).
	Transmit Verdict = iota
	// Drop means the packet is discarded.
	Drop
	// Queued means the packet was buffered and will be emitted later via
	// the enforcer's sink (shaper only).
	Queued
	// TransmitCE means the packet passes immediately but must carry an
	// ECN congestion-experienced mark (AQM marking on phantom queues).
	TransmitCE
)

// String names the verdict for logs and test failures.
func (v Verdict) String() string {
	switch v {
	case Transmit:
		return "transmit"
	case Drop:
		return "drop"
	case Queued:
		return "queued"
	case TransmitCE:
		return "transmit+ce"
	default:
		return "unknown"
	}
}

// Sink receives packets released by a buffering enforcer.
type Sink func(now time.Duration, pkt packet.Packet)

// Enforcer is a rate limiter for one traffic aggregate.
//
// Submit hands the enforcer a packet at virtual time now. Virtual time must
// be non-decreasing across calls. Bufferless enforcers return Transmit or
// Drop; the shaper returns Queued (or Drop on a full buffer) and emits
// packets through its sink as they are served.
type Enforcer interface {
	Submit(now time.Duration, pkt packet.Packet) Verdict
}

// Flusher is implemented by enforcers that hold internal state which should
// be advanced to a given virtual time at the end of a run (e.g. the shaper
// draining its queues).
type Flusher interface {
	Flush(now time.Duration)
}

// Stats accumulates per-enforcer packet accounting. Enforcers embed it and
// update it on every Submit, so experiments can read drop rates uniformly.
type Stats struct {
	AcceptedPackets int64
	AcceptedBytes   int64
	DroppedPackets  int64
	DroppedBytes    int64
}

// Accept records an accepted (transmitted or queued) packet.
func (s *Stats) Accept(size int) {
	s.AcceptedPackets++
	s.AcceptedBytes += int64(size)
}

// Reject records a dropped packet.
func (s *Stats) Reject(size int) {
	s.DroppedPackets++
	s.DroppedBytes += int64(size)
}

// DropRate returns the fraction of submitted packets that were dropped.
func (s *Stats) DropRate() float64 {
	total := s.AcceptedPackets + s.DroppedPackets
	if total == 0 {
		return 0
	}
	return float64(s.DroppedPackets) / float64(total)
}

// Totals returns the aggregate packet and byte counts submitted.
func (s *Stats) Totals() (packets, bytes int64) {
	return s.AcceptedPackets + s.DroppedPackets, s.AcceptedBytes + s.DroppedBytes
}

// StatsReader is implemented by all enforcers in this repository.
type StatsReader interface {
	EnforcerStats() Stats
}
