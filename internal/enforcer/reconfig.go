package enforcer

import (
	"time"

	"bcpqp/internal/sched"
	"bcpqp/internal/units"
)

// Reconfigurer is the live-reconfiguration capability: enforcers that
// implement it can change their enforced rate or intra-aggregate
// rate-sharing policy *in place*, preserving all admission state — phantom
// queue occupancy (real and magic bytes), burst-control window accounting,
// token levels, and statistics. This is what makes a subscriber's rate-plan
// change a control-plane operation instead of a teardown: tearing an
// aggregate down and re-adding it resets its enforcer to the empty state,
// which briefly voids the Theorem 1 bound (an empty phantom queue or a full
// token bucket re-admits a slow-start-sized burst).
//
// Both methods take the current virtual time so the enforcer can settle
// time-driven state (lazy phantom drains, token refills) at the OLD
// configuration before switching: elapsed virtual time is always accounted
// at the rate that was in force while it elapsed, which is exactly what
// makes the Theorem 1 admission bound hold piecewise across a change —
// accepted bytes over [t0, t2] with a change at t1 stay within
// r1·(t1−t0) + r2·(t2−t1) + B.
//
// Reconfiguration is NOT safe concurrently with Submit: callers must
// serialize it onto the enforcer's execution domain, exactly as the mbox
// engine's Update does (the change rides the shard ring in-band, so no
// partially applied configuration is ever visible to a running batch).
type Reconfigurer interface {
	// SetRate changes the enforced aggregate rate at virtual time now.
	// The rate must be positive.
	SetRate(now time.Duration, rate units.Rate) error
	// SetPolicy changes the intra-aggregate rate-sharing policy at
	// virtual time now. Enforcers without a policy dimension (e.g. a
	// plain token bucket) report an error; nil selects the enforcer's
	// default policy (per-flow fairness) where one exists. The enforcer
	// takes ownership of the policy object — callers must not share one
	// *sched.Policy between enforcers or reuse it after the call
	// (policies carry scratch state and are not concurrency-safe).
	SetPolicy(now time.Duration, policy *sched.Policy) error
}
