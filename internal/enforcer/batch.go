package enforcer

import (
	"time"

	"bcpqp/internal/packet"
)

// DefaultBurst is the burst size the datapath is tuned for: the rx_burst
// size of a DPDK-style middlebox (packets arrive from the NIC 32 at a
// time, not one channel send at a time). Callers may use any burst size;
// this is the recommended amortization window.
const DefaultBurst = 32

// BatchSubmitter is the burst-oriented capability interface: enforcers that
// implement it amortize per-packet overhead (clock handling, lazy drains,
// token refills, burst-control window checks) across a whole burst.
//
// SubmitBatch submits pkts, all arriving at virtual time now, and writes
// one verdict per packet into verdicts (which must have len(pkts) capacity;
// it is an out-parameter so steady-state burst processing performs no
// allocation). The verdicts are byte-identical to calling Submit(now, pkt)
// for each packet in order at the same now — batching is an efficiency
// transformation, never a semantic one.
type BatchSubmitter interface {
	SubmitBatch(now time.Duration, pkts []packet.Packet, verdicts []Verdict)
}

// SubmitBatch drives enf over a burst: natively when enf implements
// BatchSubmitter, otherwise through the generic per-packet fallback loop.
// verdicts must have at least len(pkts) elements.
func SubmitBatch(enf Enforcer, now time.Duration, pkts []packet.Packet, verdicts []Verdict) {
	if bs, ok := enf.(BatchSubmitter); ok {
		bs.SubmitBatch(now, pkts, verdicts)
		return
	}
	verdicts = verdicts[:len(pkts)]
	for i := range pkts {
		verdicts[i] = enf.Submit(now, pkts[i])
	}
}

// Batched adapts any Enforcer to BatchSubmitter: enforcers with a native
// burst path are returned unchanged, everything else is wrapped in a
// fallback that loops single Submits. The wrapper forwards Submit too, so
// it can stand in wherever an Enforcer is expected.
func Batched(enf Enforcer) BatchSubmitter {
	if bs, ok := enf.(BatchSubmitter); ok {
		return bs
	}
	return loopBatcher{enf}
}

// loopBatcher is the generic fallback wrapper around a batch-unaware
// enforcer.
type loopBatcher struct {
	Enforcer
}

// SubmitBatch implements BatchSubmitter by looping single Submits.
func (l loopBatcher) SubmitBatch(now time.Duration, pkts []packet.Packet, verdicts []Verdict) {
	verdicts = verdicts[:len(pkts)]
	for i := range pkts {
		verdicts[i] = l.Submit(now, pkts[i])
	}
}
