package enforcer_test

import (
	"fmt"
	"testing"
	"time"

	"bcpqp/internal/cascade"
	"bcpqp/internal/enforcer"
	"bcpqp/internal/fairpolicer"
	"bcpqp/internal/packet"
	"bcpqp/internal/phantom"
	"bcpqp/internal/rng"
	"bcpqp/internal/tbf"
	"bcpqp/internal/units"
)

// The batch datapath is an efficiency transformation, never a semantic one:
// SubmitBatch(now, pkts) must return byte-identical verdicts and leave
// byte-identical statistics to submitting the same packets one at a time at
// the same virtual time. These tests drive two freshly-built instances of
// every enforcer with the same randomized burst-structured traffic — one
// through the per-packet path, one through the burst path — and demand
// exact agreement.

const (
	eqRate   = 20 * units.Mbps
	eqFlows  = 8
	eqMaxRTT = 40 * time.Millisecond
)

// eqScheme builds one instance of an enforcer under test.
type eqScheme struct {
	name  string
	build func() enforcer.Enforcer
}

func equivalenceSchemes() []eqScheme {
	return []eqScheme{
		{"tbf", func() enforcer.Enforcer {
			return tbf.MustNew(eqRate, tbf.PlusBucket(eqRate, eqMaxRTT))
		}},
		{"fairpolicer", func() enforcer.Enforcer {
			return fairpolicer.MustNew(fairpolicer.Config{
				Rate:   eqRate,
				Bucket: tbf.PlusBucket(eqRate, eqMaxRTT),
				Flows:  eqFlows,
			})
		}},
		{"pqp", func() enforcer.Enforcer {
			return phantom.MustNew(phantom.Config{
				Rate:      eqRate,
				Queues:    eqFlows,
				QueueSize: units.RenoPhantomRequirement(eqRate, eqMaxRTT),
			})
		}},
		{"bc-pqp", func() enforcer.Enforcer {
			return phantom.MustNew(phantom.Config{
				Rate:         eqRate,
				Queues:       eqFlows,
				QueueSize:    10 * tbf.PlusBucket(eqRate, eqMaxRTT),
				BurstControl: true,
			})
		}},
		{"bc-pqp-red", func() enforcer.Enforcer {
			qsize := 10 * tbf.PlusBucket(eqRate, eqMaxRTT)
			return phantom.MustNew(phantom.Config{
				Rate:         eqRate,
				Queues:       eqFlows,
				QueueSize:    qsize,
				BurstControl: true,
				RED: &phantom.REDConfig{
					MinBytes: qsize / 4,
					MaxBytes: qsize / 2,
					Seed:     42,
				},
			})
		}},
		{"cascade", func() enforcer.Enforcer {
			sub := phantom.MustNew(phantom.Config{
				Rate:         eqRate / 2,
				Queues:       eqFlows,
				QueueSize:    10 * tbf.PlusBucket(eqRate/2, eqMaxRTT),
				BurstControl: true,
			})
			link := tbf.MustNew(eqRate, tbf.PlusBucket(eqRate, eqMaxRTT))
			return cascade.MustNew(sub, link)
		}},
	}
}

// eqBurst is one arrival event: a burst of packets sharing a virtual time.
type eqBurst struct {
	now  time.Duration
	pkts []packet.Packet
}

// equivalenceTraffic generates a burst-structured pattern offering well over
// the enforced rate, with varying burst sizes (including 1) so both the
// per-packet special case and wide bursts are exercised, and with idle gaps
// long enough to let windows roll and flows expire between some bursts.
func equivalenceTraffic(seed uint64, bursts int) []eqBurst {
	src := rng.New(seed)
	meanGap := eqRate.DurationForBytes(units.MSS)
	var out []eqBurst
	now := time.Duration(0)
	for i := 0; i < bursts; i++ {
		n := 1 + src.IntN(enforcer.DefaultBurst*2) // 1..64 packets
		// Mostly tight spacing (≈2-3× offered load so even the most
		// permissive scheme eventually drops), occasionally a long idle
		// gap that expires fairpolicer flows and closes BC windows.
		gap := time.Duration(float64(meanGap) * float64(n) * src.Range(0.3, 0.6))
		if src.IntN(32) == 0 {
			gap = 150 * time.Millisecond
		}
		now += gap
		pkts := make([]packet.Packet, n)
		for k := range pkts {
			class := src.IntN(eqFlows)
			size := units.MSS
			if src.IntN(8) == 0 {
				size = 64 + src.IntN(units.MSS-64)
			}
			pkts[k] = packet.Packet{
				Key: packet.FlowKey{
					SrcIP: 10, DstIP: 20,
					SrcPort: uint16(class + 1), DstPort: 443, Proto: 6,
				},
				Class: class,
				Size:  size,
			}
		}
		out = append(out, eqBurst{now: now, pkts: pkts})
	}
	return out
}

// TestBatchSingleEquivalence is the paper-level correctness proof for the
// burst datapath: for every enforcer, verdict sequences and final statistics
// from SubmitBatch are byte-identical to the per-packet path.
func TestBatchSingleEquivalence(t *testing.T) {
	for _, sc := range equivalenceSchemes() {
		for _, seed := range []uint64{1, 0xBADCAB1E, 0x5EED} {
			t.Run(fmt.Sprintf("%s/seed=%#x", sc.name, seed), func(t *testing.T) {
				traffic := equivalenceTraffic(seed, 400)
				single := sc.build()
				batch := sc.build()
				if _, ok := batch.(enforcer.BatchSubmitter); !ok {
					t.Fatalf("%s does not implement BatchSubmitter", sc.name)
				}
				verdicts := make([]enforcer.Verdict, enforcer.DefaultBurst*2)
				drops, accepts := 0, 0
				for bi, b := range traffic {
					enforcer.SubmitBatch(batch, b.now, b.pkts, verdicts[:len(b.pkts)])
					for k, p := range b.pkts {
						want := single.Submit(b.now, p)
						if verdicts[k] != want {
							t.Fatalf("burst %d pkt %d (t=%v class=%d size=%d): batch=%v single=%v",
								bi, k, b.now, p.Class, p.Size, verdicts[k], want)
						}
						if want == enforcer.Drop {
							drops++
						} else {
							accepts++
						}
					}
				}
				if drops == 0 || accepts == 0 {
					t.Fatalf("degenerate traffic: %d drops, %d accepts — pattern exercises nothing",
						drops, accepts)
				}
				ss, ok := single.(enforcer.StatsReader)
				bs, ok2 := batch.(enforcer.StatsReader)
				if ok && ok2 {
					if s, b := ss.EnforcerStats(), bs.EnforcerStats(); s != b {
						t.Fatalf("stats diverge: single=%+v batch=%+v", s, b)
					}
				}
			})
		}
	}
}

// TestBatchedFallbackWrapper proves the generic loop wrapper is transparent:
// wrapping a batch-unaware enforcer yields the same verdicts as driving it
// directly, and Batched returns native implementations unchanged.
func TestBatchedFallbackWrapper(t *testing.T) {
	native := tbf.MustNew(eqRate, tbf.PlusBucket(eqRate, eqMaxRTT))
	if got := enforcer.Batched(native); got != enforcer.BatchSubmitter(native) {
		t.Error("Batched re-wrapped a native BatchSubmitter")
	}

	direct := submitOnly{tbf.MustNew(eqRate, tbf.PlusBucket(eqRate, eqMaxRTT))}
	wrapped := enforcer.Batched(submitOnly{tbf.MustNew(eqRate, tbf.PlusBucket(eqRate, eqMaxRTT))})
	traffic := equivalenceTraffic(7, 100)
	verdicts := make([]enforcer.Verdict, enforcer.DefaultBurst*2)
	for bi, b := range traffic {
		wrapped.SubmitBatch(b.now, b.pkts, verdicts[:len(b.pkts)])
		for k, p := range b.pkts {
			if want := direct.Submit(b.now, p); verdicts[k] != want {
				t.Fatalf("burst %d pkt %d: wrapper=%v direct=%v", bi, k, verdicts[k], want)
			}
		}
	}
}

// submitOnly hides every capability interface of the wrapped enforcer so
// Batched must take the fallback path.
type submitOnly struct{ e enforcer.Enforcer }

func (s submitOnly) Submit(now time.Duration, pkt packet.Packet) enforcer.Verdict {
	return s.e.Submit(now, pkt)
}
