package enforcer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Snapshotter is the warm-restart capability: enforcers that implement it
// can serialize their complete admission state — phantom-queue occupancy
// (real and magic segments in FIFO order), burst-control window accounting,
// token levels, per-class counters and statistics — into a self-contained
// versioned byte blob, and later restore it into a freshly constructed
// enforcer with the same configuration.
//
// The point of warm restart is Theorem 1 across a process restart: a
// rebuilt enforcer starts empty (phantom queues drained, token buckets
// full), which re-admits up to a full burst budget B per aggregate — a
// restart-synchronized slow-start storm at middlebox scale. Restoring the
// snapshot resumes enforcement exactly where it stopped: replaying the same
// trace against a restored enforcer yields byte-identical verdicts to an
// uninterrupted run.
//
// Encoding contract:
//
//   - The first byte of every blob is the enforcer's own format version.
//     RestoreState must reject versions it does not understand.
//   - Blobs are configuration-free: they capture run state only, and
//     RestoreState validates the blob against the receiver's configuration
//     (queue counts, bucket sizes). Restoring into a different
//     configuration is an error, never a silent truncation.
//   - RestoreState must validate untrusted input: decoding is fuzzed, so
//     structural invariants (non-negative counters, occupancy within the
//     simulated buffer, token levels within the bucket) are checked and
//     violations reported as errors with the receiver left usable.
//
// Snapshotting is NOT safe concurrently with Submit; callers serialize it
// onto the enforcer's execution domain exactly as they do reconfiguration.
type Snapshotter interface {
	// SnapshotState serializes the enforcer's admission state.
	SnapshotState() ([]byte, error)
	// RestoreState loads a blob produced by SnapshotState on an enforcer
	// with the same configuration. On error the receiver's state is
	// unspecified but structurally intact (safe to discard or reuse).
	RestoreState(data []byte) error
}

// ErrNoPolicy reports that an enforcer has no intra-aggregate rate-sharing
// policy dimension to reconfigure (e.g. a plain token bucket).
var ErrNoPolicy = errors.New("enforcer: no intra-aggregate policy dimension")

// ErrSnapshotTooShort reports a truncated snapshot blob.
var ErrSnapshotTooShort = errors.New("enforcer: snapshot truncated")

// ErrSnapshotTrailing reports unconsumed bytes after a complete decode —
// almost always a version- or configuration-mismatch symptom.
var ErrSnapshotTrailing = errors.New("enforcer: trailing bytes after snapshot")

// Enc builds a little-endian binary snapshot blob. The zero value is ready
// to use. Enc never fails; errors surface on the decode side.
type Enc struct {
	buf []byte
}

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 as its two's-complement uint64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Dur appends a time.Duration as nanoseconds.
func (e *Enc) Dur(d time.Duration) { e.I64(int64(d)) }

// Bytes appends a u32 length prefix followed by the raw bytes.
func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Stats appends the four Stats counters.
func (e *Enc) Stats(s Stats) {
	e.I64(s.AcceptedPackets)
	e.I64(s.AcceptedBytes)
	e.I64(s.DroppedPackets)
	e.I64(s.DroppedBytes)
}

// Out returns the encoded blob.
func (e *Enc) Out() []byte { return e.buf }

// Dec decodes a blob produced by Enc. The first decode error sticks: all
// subsequent reads return zero values, so decoders can run straight-line
// and check Err (or Finish) once at the end.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over data.
func NewDec(data []byte) *Dec { return &Dec{buf: data} }

// take reserves n bytes, recording an error on underflow.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d",
			ErrSnapshotTooShort, n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool, rejecting encodings other than 0 and 1.
func (d *Dec) Bool() bool {
	switch v := d.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("enforcer: invalid bool byte %#x in snapshot", v)
		}
		return false
	}
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads a float64, rejecting NaNs (no enforcer state is legitimately
// NaN, and a NaN token level would poison every subsequent comparison).
func (d *Dec) F64() float64 {
	v := math.Float64frombits(d.U64())
	if math.IsNaN(v) && d.err == nil {
		d.err = fmt.Errorf("enforcer: NaN in snapshot")
	}
	return v
}

// Dur reads a time.Duration.
func (d *Dec) Dur() time.Duration { return time.Duration(d.I64()) }

// Bytes reads a u32-length-prefixed byte slice. The returned slice aliases
// the input buffer. Lengths beyond the remaining input fail immediately, so
// a hostile length prefix cannot drive a large allocation.
func (d *Dec) Bytes() []byte {
	n := d.U32()
	if d.err == nil && int(n) > len(d.buf)-d.off {
		d.err = fmt.Errorf("%w: length prefix %d exceeds remaining %d",
			ErrSnapshotTooShort, n, len(d.buf)-d.off)
		return nil
	}
	return d.take(int(n))
}

// Stats reads the four Stats counters, validating non-negativity.
func (d *Dec) Stats() Stats {
	s := Stats{
		AcceptedPackets: d.I64(),
		AcceptedBytes:   d.I64(),
		DroppedPackets:  d.I64(),
		DroppedBytes:    d.I64(),
	}
	if d.err == nil &&
		(s.AcceptedPackets < 0 || s.AcceptedBytes < 0 ||
			s.DroppedPackets < 0 || s.DroppedBytes < 0) {
		d.err = fmt.Errorf("enforcer: negative stats counter in snapshot")
	}
	return s
}

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Fail records an application-level validation error (first error wins).
func (d *Dec) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Finish returns the first decode error, or ErrSnapshotTrailing when the
// blob was not fully consumed.
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d of %d bytes unread", ErrSnapshotTrailing, len(d.buf)-d.off, len(d.buf))
	}
	return nil
}
