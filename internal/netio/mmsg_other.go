//go:build !linux || (!amd64 && !arm64)

package netio

import (
	"errors"
	"syscall"
)

// Portable stub: no batched backend on this platform — every Conn uses the
// single-datagram fallback, and SO_REUSEPORT listeners are refused in
// Listen before this hook is ever reached.

const supportsBatch = false

func reusePortControl(network, address string, c syscall.RawConn) error {
	return errors.New("netio: SO_REUSEPORT not supported on this platform")
}

func newBatchBackend(c *Conn) (backend, error) {
	return nil, errors.New("netio: batched backend not supported on this platform")
}
