//go:build linux && amd64

package netio

// recvmmsg/sendmmsg syscall numbers for linux/amd64 (the toolchain's frozen
// syscall package predates sendmmsg; see arch/x86/entry/syscalls).
const (
	sysRecvmmsg uintptr = 299
	sysSendmmsg uintptr = 307
)
