//go:build linux

package netio

import (
	"bytes"
	"os"
	"strconv"
	"syscall"
)

// KernelDrops reads the kernel's receive-drop counter for this socket: the
// datagrams the NIC delivered but the kernel discarded because the socket
// buffer was full — packets the datapath never saw and no engine counter
// can account for. Reconciling it against the engine's received totals is
// the only way to tell "the offered load was lower" from "we were too slow
// to drain the ring".
//
// The counter is the drops column of /proc/net/udp{,6}, matched to this
// socket by inode. ok=false when the socket row cannot be found (socket
// closed, /proc unavailable, non-UDP).
func (c *Conn) KernelDrops() (int64, bool) {
	sc, err := c.pc.SyscallConn()
	if err != nil {
		return 0, false
	}
	var ino uint64
	var statErr error
	if err := sc.Control(func(fd uintptr) {
		var st syscall.Stat_t
		statErr = syscall.Fstat(int(fd), &st)
		ino = st.Ino
	}); err != nil || statErr != nil {
		return 0, false
	}
	for _, table := range []string{"/proc/net/udp", "/proc/net/udp6"} {
		if d, ok := scanSockTable(table, ino); ok {
			return d, true
		}
	}
	return 0, false
}

// scanSockTable finds the row with the given inode in a /proc/net socket
// table and returns its trailing drops column.
func scanSockTable(path string, ino uint64) (int64, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	want := strconv.FormatUint(ino, 10)
	for _, line := range bytes.Split(data, []byte("\n"))[1:] {
		f := bytes.Fields(line)
		// sl local rem st queues timers retrnsmt uid timeout inode ref ptr drops
		if len(f) < 13 || string(f[9]) != want {
			continue
		}
		d, err := strconv.ParseInt(string(f[len(f)-1]), 10, 64)
		if err != nil {
			return 0, false
		}
		return d, true
	}
	return 0, false
}
